// Package editor implements the Application Editor back end (paper §2.1).
//
// The paper's editor is a Java applet loaded into the user's browser after
// authentication; its essential function is producing a valid Application
// Flow Graph from menu-driven task-library selections, with per-task
// property panels. This package preserves that contract programmatically:
// a Builder with the editor's three operating modes (task, link, run), menu
// enumeration straight from the task registry, parameter-derived cost
// metadata, and the JSON wire format for storing/submitting graphs. An
// accompanying HTTP service (http.go) stands in for the web front end.
package editor

import (
	"errors"
	"fmt"

	"repro/internal/afg"
	"repro/internal/tasklib"
)

// Mode is the editor's operating mode: "the Application Editor can be in
// task mode, link mode, or run mode".
type Mode int

// Editor modes.
const (
	TaskMode Mode = iota // add/position tasks
	LinkMode             // connect tasks
	RunMode              // submit / store
)

func (m Mode) String() string {
	switch m {
	case TaskMode:
		return "task"
	case LinkMode:
		return "link"
	case RunMode:
		return "run"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Common errors.
var (
	ErrWrongMode = errors.New("editor: operation not allowed in current mode")
	ErrNoTask    = errors.New("editor: no such task in graph")
)

// Builder constructs an application flow graph the way the editor does.
// The zero Builder is not usable; call New.
type Builder struct {
	g    *afg.Graph
	reg  *tasklib.Registry
	mode Mode
}

// New starts a fresh application in task mode.
func New(appName string, reg *tasklib.Registry) *Builder {
	if reg == nil {
		reg = tasklib.Default()
	}
	return &Builder{g: afg.New(appName), reg: reg, mode: TaskMode}
}

// Mode returns the current editor mode.
func (b *Builder) Mode() Mode { return b.mode }

// SetMode switches the editor mode.
func (b *Builder) SetMode(m Mode) { b.mode = m }

// Libraries lists the task-library menu groups.
func (b *Builder) Libraries() []string { return b.reg.Libraries() }

// Menu lists the task functions in a library group.
func (b *Builder) Menu(library string) []string { return b.reg.ByLibrary(library) }

// AddTask places a library task on the canvas (task mode only). The task's
// cost metadata is derived from the registry spec scaled by params — the
// numbers the scheduler will later read from the task-performance database.
func (b *Builder) AddTask(id afg.TaskID, function string, params map[string]string) error {
	if b.mode != TaskMode {
		return fmt.Errorf("%w: AddTask in %s mode", ErrWrongMode, b.mode)
	}
	spec, err := b.reg.Get(function)
	if err != nil {
		return err
	}
	scale := spec.Scale(params)
	return b.g.AddTask(&afg.Task{
		ID:          id,
		Function:    function,
		Params:      params,
		ComputeCost: spec.BaseTime * scale,
		MemReq:      int64(float64(spec.MemReq) * scale),
		OutputBytes: int64(float64(spec.OutputBytes) * scale),
	})
}

// SetProperties fills in the task-properties pop-up panel: computational
// mode, processor count, and machine-type preference (paper Fig 3, right).
func (b *Builder) SetProperties(id afg.TaskID, mode afg.Mode, processors int, machineType string) error {
	t := b.g.Task(id)
	if t == nil {
		return fmt.Errorf("%w: %q", ErrNoTask, id)
	}
	t.Mode = mode
	if processors >= 1 {
		t.Processors = processors
	}
	t.MachineType = machineType
	return nil
}

// SetParams replaces a task's parameters and recomputes its cost metadata.
func (b *Builder) SetParams(id afg.TaskID, params map[string]string) error {
	t := b.g.Task(id)
	if t == nil {
		return fmt.Errorf("%w: %q", ErrNoTask, id)
	}
	spec, err := b.reg.Get(t.Function)
	if err != nil {
		return err
	}
	scale := spec.Scale(params)
	t.Params = params
	t.ComputeCost = spec.BaseTime * scale
	t.MemReq = int64(float64(spec.MemReq) * scale)
	t.OutputBytes = int64(float64(spec.OutputBytes) * scale)
	return nil
}

// Connect draws a link between two placed tasks (link mode only); the link
// volume defaults to the producer's output size.
func (b *Builder) Connect(from, to afg.TaskID) error {
	if b.mode != LinkMode {
		return fmt.Errorf("%w: Connect in %s mode", ErrWrongMode, b.mode)
	}
	p := b.g.Task(from)
	if p == nil {
		return fmt.Errorf("%w: %q", ErrNoTask, from)
	}
	return b.g.AddLink(afg.Link{From: from, To: to, Bytes: p.OutputBytes})
}

// Graph validates and returns the built application flow graph (run mode
// only — the editor's "submit the graph for execution" step).
func (b *Builder) Graph() (*afg.Graph, error) {
	if b.mode != RunMode {
		return nil, fmt.Errorf("%w: Graph in %s mode", ErrWrongMode, b.mode)
	}
	if err := b.g.Validate(); err != nil {
		return nil, err
	}
	return b.g, nil
}

// Store serialises the current graph ("the user may store the application
// flow graph for future use"), valid in any mode.
func (b *Builder) Store() ([]byte, error) {
	return b.g.Encode()
}

// Load restores a stored graph into a fresh builder in task mode.
func Load(data []byte, reg *tasklib.Registry) (*Builder, error) {
	g, err := afg.Decode(data)
	if err != nil {
		return nil, err
	}
	if reg == nil {
		reg = tasklib.Default()
	}
	return &Builder{g: g, reg: reg, mode: TaskMode}, nil
}
