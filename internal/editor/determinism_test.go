package editor

import (
	"bytes"
	"io"
	"net/http"
	"testing"
)

// TestHTTPValidateDeterministic requires /validate to return byte-identical
// JSON for the same document. The reply folds map-backed state (task set,
// entry/exit sets, total work) into one payload, so any order-dependent
// traversal — including the float64 summation order inside TotalWork —
// shows up here as response flicker.
func TestHTTPValidateDeterministic(t *testing.T) {
	srv, _ := newHTTP(t)
	b := buildSolver(t)
	data, err := b.Store()
	if err != nil {
		t.Fatal(err)
	}
	var first []byte
	for i := 0; i < 30; i++ {
		resp, err := http.Post(srv.URL+"/validate", "application/json", bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d, body = %s", resp.StatusCode, body)
		}
		if first == nil {
			first = body
			continue
		}
		if !bytes.Equal(body, first) {
			t.Fatalf("reply #%d differs:\n  first: %s\n  now:   %s", i, first, body)
		}
	}
}
