package editor

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/afg"
	"repro/internal/repository"
)

// buildSolver drives the Builder through the paper's Fig 3 flow.
func buildSolver(t *testing.T) *Builder {
	t.Helper()
	b := New("linsolver", nil)
	for _, task := range []struct {
		id afg.TaskID
		fn string
		p  map[string]string
	}{
		{"genA", "matrix.generate", map[string]string{"n": "64", "seed": "1"}},
		{"genB", "matrix.vector", map[string]string{"n": "64", "seed": "2"}},
		{"lu", "matrix.lu", map[string]string{"n": "64"}},
		{"solve", "matrix.solve", map[string]string{"n": "64"}},
	} {
		if err := b.AddTask(task.id, task.fn, task.p); err != nil {
			t.Fatal(err)
		}
	}
	b.SetMode(LinkMode)
	for _, l := range [][2]afg.TaskID{{"genA", "lu"}, {"lu", "solve"}, {"genB", "solve"}} {
		if err := b.Connect(l[0], l[1]); err != nil {
			t.Fatal(err)
		}
	}
	return b
}

func TestBuilderFullFlow(t *testing.T) {
	b := buildSolver(t)
	b.SetMode(RunMode)
	g, err := b.Graph()
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 4 || len(g.Links()) != 3 {
		t.Fatalf("graph %d tasks %d links", g.Len(), len(g.Links()))
	}
	if g.Task("lu").ComputeCost <= 0 || g.Task("lu").OutputBytes <= 0 {
		t.Fatal("cost metadata not derived")
	}
}

func TestBuilderModeEnforcement(t *testing.T) {
	b := New("x", nil)
	if err := b.Connect("a", "b"); !errors.Is(err, ErrWrongMode) {
		t.Fatalf("err = %v", err)
	}
	if _, err := b.Graph(); !errors.Is(err, ErrWrongMode) {
		t.Fatalf("err = %v", err)
	}
	b.SetMode(LinkMode)
	if err := b.AddTask("a", "synthetic.noop", nil); !errors.Is(err, ErrWrongMode) {
		t.Fatalf("err = %v", err)
	}
	if b.Mode() != LinkMode {
		t.Fatalf("mode = %v", b.Mode())
	}
}

func TestBuilderRejectsUnknownFunction(t *testing.T) {
	b := New("x", nil)
	if err := b.AddTask("a", "matrix.explode", nil); err == nil {
		t.Fatal("unknown function accepted")
	}
}

func TestBuilderMenus(t *testing.T) {
	b := New("x", nil)
	libs := b.Libraries()
	if len(libs) != 4 {
		t.Fatalf("libs = %v", libs)
	}
	menu := b.Menu("matrix")
	found := false
	for _, m := range menu {
		if m == "matrix.lu" {
			found = true
		}
	}
	if !found {
		t.Fatalf("matrix menu = %v", menu)
	}
}

func TestSetPropertiesPanel(t *testing.T) {
	b := buildSolver(t)
	if err := b.SetProperties("lu", afg.Parallel, 2, "solaris"); err != nil {
		t.Fatal(err)
	}
	b.SetMode(RunMode)
	g, err := b.Graph()
	if err != nil {
		t.Fatal(err)
	}
	lu := g.Task("lu")
	if lu.Mode != afg.Parallel || lu.Processors != 2 || lu.MachineType != "solaris" {
		t.Fatalf("lu = %+v", lu)
	}
	if err := b.SetProperties("ghost", afg.Sequential, 1, ""); !errors.Is(err, ErrNoTask) {
		t.Fatalf("err = %v", err)
	}
}

func TestSetParamsRecomputesCost(t *testing.T) {
	b := buildSolver(t)
	before := b.g.Task("lu").ComputeCost
	if err := b.SetParams("lu", map[string]string{"n": "128"}); err != nil {
		t.Fatal(err)
	}
	after := b.g.Task("lu").ComputeCost
	if after <= before*7 {
		t.Fatalf("cost not rescaled: %v -> %v", before, after)
	}
	if err := b.SetParams("ghost", nil); !errors.Is(err, ErrNoTask) {
		t.Fatalf("err = %v", err)
	}
}

func TestStoreAndLoad(t *testing.T) {
	b := buildSolver(t)
	data, err := b.Store()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Load(data, nil)
	if err != nil {
		t.Fatal(err)
	}
	back.SetMode(RunMode)
	g, err := back.Graph()
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 4 {
		t.Fatalf("restored %d tasks", g.Len())
	}
	if _, err := Load([]byte("{"), nil); err == nil {
		t.Fatal("garbage accepted")
	}
}

// --- HTTP service ------------------------------------------------------------

func newHTTP(t *testing.T) (*httptest.Server, *repository.UserAccountsDB) {
	t.Helper()
	users := repository.NewUserAccountsDB()
	users.Add(repository.UserAccount{UserName: "haluk", Password: "pw", Priority: 3, AccessDomain: "wide-area"})
	srv := httptest.NewServer(NewServer(nil, users).Handler())
	t.Cleanup(srv.Close)
	return srv, users
}

func TestHTTPLibraries(t *testing.T) {
	srv, _ := newHTTP(t)
	resp, err := http.Get(srv.URL + "/libraries")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var libs map[string][]string
	if err := json.NewDecoder(resp.Body).Decode(&libs); err != nil {
		t.Fatal(err)
	}
	if len(libs["matrix"]) < 8 {
		t.Fatalf("libs = %v", libs)
	}
}

func TestHTTPTaskInfo(t *testing.T) {
	srv, _ := newHTTP(t)
	resp, err := http.Get(srv.URL + "/tasks?name=matrix.lu")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var info struct {
		Name     string  `json:"name"`
		BaseTime float64 `json:"baseTime"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if info.Name != "matrix.lu" || info.BaseTime <= 0 {
		t.Fatalf("info = %+v", info)
	}
	resp2, err := http.Get(srv.URL + "/tasks?name=matrix.unknown")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d", resp2.StatusCode)
	}
}

func TestHTTPValidate(t *testing.T) {
	srv, _ := newHTTP(t)
	b := buildSolver(t)
	data, err := b.Store()
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/validate", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rep struct {
		OK           bool    `json:"ok"`
		Tasks        int     `json:"tasks"`
		CriticalPath float64 `json:"criticalPath"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if !rep.OK || rep.Tasks != 4 || rep.CriticalPath <= 0 {
		t.Fatalf("rep = %+v", rep)
	}
}

func TestHTTPValidateRejectsUnknownFunction(t *testing.T) {
	srv, _ := newHTTP(t)
	bad := []byte(`{"name":"x","tasks":[{"id":"a","function":"nope.nope"}],"links":[]}`)
	resp, err := http.Post(srv.URL+"/validate", "application/json", bytes.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rep struct {
		OK    bool   `json:"ok"`
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if rep.OK || rep.Error == "" {
		t.Fatalf("rep = %+v", rep)
	}
}

func TestHTTPLogin(t *testing.T) {
	srv, _ := newHTTP(t)
	good := bytes.NewReader([]byte(`{"User":"haluk","Password":"pw"}`))
	resp, err := http.Post(srv.URL+"/login", "application/json", good)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	bad := bytes.NewReader([]byte(`{"User":"haluk","Password":"wrong"}`))
	resp, err = http.Post(srv.URL+"/login", "application/json", bad)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestHTTPMethodGuards(t *testing.T) {
	srv, _ := newHTTP(t)
	resp, err := http.Get(srv.URL + "/validate")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	resp, err = http.Get(srv.URL + "/login")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}
