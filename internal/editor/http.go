package editor

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"repro/internal/afg"
	"repro/internal/repository"
	"repro/internal/tasklib"
)

// Server is the web face of the Application Editor: the stand-in for the
// paper's Java-servlet Site Manager front end. It authenticates users
// against a user-accounts database, serves the task-library menus,
// validates submitted application flow graphs, and stores/retrieves graphs
// in the site repository's application shelf.
type Server struct {
	Registry *tasklib.Registry
	Users    *repository.UserAccountsDB // nil disables authentication
	Apps     *repository.AppStore       // nil disables /apps endpoints
}

// NewServer builds an editor HTTP service.
func NewServer(reg *tasklib.Registry, users *repository.UserAccountsDB) *Server {
	if reg == nil {
		reg = tasklib.Default()
	}
	return &Server{Registry: reg, Users: users, Apps: repository.NewAppStore()}
}

// Handler returns the route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/libraries", s.handleLibraries)
	mux.HandleFunc("/tasks", s.handleTasks)
	mux.HandleFunc("/validate", s.handleValidate)
	mux.HandleFunc("/login", s.handleLogin)
	mux.HandleFunc("/apps", s.handleApps)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// handleLibraries lists the menu groups and their task functions.
func (s *Server) handleLibraries(w http.ResponseWriter, r *http.Request) {
	out := map[string][]string{}
	for _, lib := range s.Registry.Libraries() {
		out[lib] = s.Registry.ByLibrary(lib)
	}
	writeJSON(w, http.StatusOK, out)
}

// taskInfo is the menu tooltip payload for one task.
type taskInfo struct {
	Name        string  `json:"name"`
	Library     string  `json:"library"`
	Description string  `json:"description"`
	BaseTime    float64 `json:"baseTime"`
	MemReq      int64   `json:"memReq"`
	OutputBytes int64   `json:"outputBytes"`
}

// handleTasks describes one task (?name=matrix.lu) or all tasks.
func (s *Server) handleTasks(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	if name != "" {
		spec, err := s.Registry.Get(name)
		if err != nil {
			writeJSON(w, http.StatusNotFound, map[string]string{"error": err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, toInfo(spec))
		return
	}
	var out []taskInfo
	for _, n := range s.Registry.Names() {
		spec, err := s.Registry.Get(n)
		if err != nil {
			continue
		}
		out = append(out, toInfo(spec))
	}
	writeJSON(w, http.StatusOK, out)
}

func toInfo(spec tasklib.Spec) taskInfo {
	return taskInfo{
		Name: spec.Name, Library: spec.Library, Description: spec.Description,
		BaseTime: spec.BaseTime, MemReq: spec.MemReq, OutputBytes: spec.OutputBytes,
	}
}

// validateReply reports a submitted graph's structural health plus the
// derived scheduling metadata (critical path, total work).
type validateReply struct {
	OK           bool     `json:"ok"`
	Error        string   `json:"error,omitempty"`
	Tasks        int      `json:"tasks"`
	Links        int      `json:"links"`
	CriticalPath float64  `json:"criticalPath"`
	TotalWork    float64  `json:"totalWork"`
	Entries      []string `json:"entries,omitempty"`
	Exits        []string `json:"exits,omitempty"`
}

// handleValidate checks an AFG JSON document.
func (s *Server) handleValidate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "POST required"})
		return
	}
	var body json.RawMessage
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeJSON(w, http.StatusBadRequest, validateReply{Error: err.Error()})
		return
	}
	g, err := afg.Decode(body)
	if err != nil {
		writeJSON(w, http.StatusOK, validateReply{Error: err.Error()})
		return
	}
	// Reject tasks that reference unknown library functions.
	for _, id := range g.TaskIDs() {
		if _, err := s.Registry.Get(g.Task(id).Function); err != nil {
			writeJSON(w, http.StatusOK, validateReply{
				Error: fmt.Sprintf("task %q: %v", id, err),
			})
			return
		}
	}
	cp, _ := g.CriticalPathLength()
	rep := validateReply{
		OK: true, Tasks: g.Len(), Links: len(g.Links()),
		CriticalPath: cp, TotalWork: g.TotalWork(),
	}
	for _, e := range g.Entries() {
		rep.Entries = append(rep.Entries, string(e))
	}
	for _, e := range g.Exits() {
		rep.Exits = append(rep.Exits, string(e))
	}
	writeJSON(w, http.StatusOK, rep)
}

// handleApps implements the stored-application shelf:
//
//	GET  /apps?owner=U            list U's stored applications
//	GET  /apps?owner=U&name=N     fetch one stored AFG (raw JSON)
//	POST /apps?owner=U&name=N     store the posted AFG after validation
func (s *Server) handleApps(w http.ResponseWriter, r *http.Request) {
	if s.Apps == nil {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "app store disabled"})
		return
	}
	owner := r.URL.Query().Get("owner")
	name := r.URL.Query().Get("name")
	switch r.Method {
	case http.MethodGet:
		if name == "" {
			writeJSON(w, http.StatusOK, map[string][]string{"apps": s.Apps.List(owner)})
			return
		}
		app, err := s.Apps.Load(owner, name)
		if err != nil {
			writeJSON(w, http.StatusNotFound, map[string]string{"error": err.Error()})
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(app.AFG)
	case http.MethodPost:
		var body json.RawMessage
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
			return
		}
		if _, err := afg.Decode(body); err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
			return
		}
		if err := s.Apps.Save(owner, name, body, time.Now()); err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
	default:
		writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "GET or POST"})
	}
}

// handleLogin authenticates the 5-tuple user account (§2: "user
// authentication" precedes loading the editor).
func (s *Server) handleLogin(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "POST required"})
		return
	}
	var creds struct{ User, Password string }
	if err := json.NewDecoder(r.Body).Decode(&creds); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	if s.Users == nil {
		writeJSON(w, http.StatusOK, map[string]any{"ok": true, "note": "authentication disabled"})
		return
	}
	acct, err := s.Users.Authenticate(creds.User, creds.Password)
	if err != nil {
		writeJSON(w, http.StatusUnauthorized, map[string]string{"error": "authentication failed"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"ok": true, "userID": acct.UserID, "priority": acct.Priority, "accessDomain": acct.AccessDomain,
	})
}
