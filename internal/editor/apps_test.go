package editor

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"
)

func TestHTTPAppsStoreAndRetrieve(t *testing.T) {
	srv, _ := newHTTP(t)
	b := buildSolver(t)
	data, err := b.Store()
	if err != nil {
		t.Fatal(err)
	}
	// Store under haluk/solver.
	resp, err := http.Post(srv.URL+"/apps?owner=haluk&name=solver", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("store status = %d", resp.StatusCode)
	}
	// List.
	resp, err = http.Get(srv.URL + "/apps?owner=haluk")
	if err != nil {
		t.Fatal(err)
	}
	var list struct{ Apps []string }
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list.Apps) != 1 || list.Apps[0] != "solver" {
		t.Fatalf("apps = %v", list.Apps)
	}
	// Retrieve and rebuild through the editor.
	resp, err = http.Get(srv.URL + "/apps?owner=haluk&name=solver")
	if err != nil {
		t.Fatal(err)
	}
	var raw json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	back, err := Load(raw, nil)
	if err != nil {
		t.Fatal(err)
	}
	back.SetMode(RunMode)
	g, err := back.Graph()
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 4 {
		t.Fatalf("restored graph has %d tasks", g.Len())
	}
}

func TestHTTPAppsRejectsInvalidGraph(t *testing.T) {
	srv, _ := newHTTP(t)
	bad := []byte(`{"name":"cyc","tasks":[{"id":"a","function":"f"},{"id":"b","function":"f"}],
		"links":[{"From":"a","To":"b"},{"From":"b","To":"a"}]}`)
	resp, err := http.Post(srv.URL+"/apps?owner=u&name=bad", "application/json", bytes.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestHTTPAppsMissing(t *testing.T) {
	srv, _ := newHTTP(t)
	resp, err := http.Get(srv.URL + "/apps?owner=u&name=ghost")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	// Method guard.
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/apps?owner=u&name=x", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}
