// Package dsm implements the distributed shared memory model the paper
// names as work in progress (§3: "We are also implementing a distributed
// shared memory model that will allow VDCE users to describe their
// applications using shared-memory paradigm").
//
// The design is a home-based write-invalidate protocol: every named region
// has a home manager that serialises writes and owns the authoritative
// version number. Nodes cache region contents; a cached entry is used only
// while its version is current. Version currency is established either by
// push invalidation (in-process subscribers) or by validate-on-read (a
// Stat round-trip — the mode that works across RPC, where the home cannot
// call back into clients). Because all writes serialise at the home, the
// resulting history is sequentially consistent per region.
package dsm

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Version is a region's monotonically increasing write counter.
type Version uint64

// Common errors.
var (
	ErrNoRegion = errors.New("dsm: no such region")
	ErrClosed   = errors.New("dsm: node closed")
)

// HomeAPI is what a node needs from a region's home: the minimal protocol
// surface (implemented in-process by *Home and over the wire by *RPCClient).
type HomeAPI interface {
	// Stat returns the current version of a region.
	Stat(name string) (Version, error)
	// Fetch returns a region's contents and version.
	Fetch(name string) ([]byte, Version, error)
	// Store replaces a region's contents, returning the new version.
	// Creating a region is a Store to a new name.
	Store(name string, data []byte) (Version, error)
}

// Home is the authoritative manager for a set of regions.
type Home struct {
	mu      sync.Mutex
	regions map[string]*region                   // guarded by mu
	subs    map[int]func(name string, v Version) // guarded by mu
	nextSub int                                  // guarded by mu

	// stats
	stores, fetches, stats int // guarded by mu
}

type region struct {
	data    []byte
	version Version
}

// NewHome returns an empty home manager.
func NewHome() *Home {
	return &Home{
		regions: make(map[string]*region),
		subs:    make(map[int]func(string, Version)),
	}
}

// Stat implements HomeAPI.
func (h *Home) Stat(name string) (Version, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.stats++
	r, ok := h.regions[name]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNoRegion, name)
	}
	return r.version, nil
}

// Fetch implements HomeAPI.
func (h *Home) Fetch(name string) ([]byte, Version, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.fetches++
	r, ok := h.regions[name]
	if !ok {
		return nil, 0, fmt.Errorf("%w: %q", ErrNoRegion, name)
	}
	cp := append([]byte(nil), r.data...)
	return cp, r.version, nil
}

// Store implements HomeAPI: writes serialise here, giving per-region
// sequential consistency; push subscribers are invalidated after the
// version bump.
func (h *Home) Store(name string, data []byte) (Version, error) {
	h.mu.Lock()
	h.stores++
	r, ok := h.regions[name]
	if !ok {
		r = &region{}
		h.regions[name] = r
	}
	r.data = append([]byte(nil), data...)
	r.version++
	v := r.version
	// Snapshot subscribers so callbacks run outside the lock, in
	// subscription order so invalidations fire deterministically.
	ids := make([]int, 0, len(h.subs))
	for id := range h.subs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	cbs := make([]func(string, Version), 0, len(ids))
	for _, id := range ids {
		cbs = append(cbs, h.subs[id])
	}
	h.mu.Unlock()
	for _, cb := range cbs {
		cb(name, v)
	}
	return v, nil
}

// Subscribe registers a push-invalidation callback (in-process nodes) and
// returns an unsubscribe function.
func (h *Home) Subscribe(cb func(name string, v Version)) func() {
	h.mu.Lock()
	defer h.mu.Unlock()
	id := h.nextSub
	h.nextSub++
	h.subs[id] = cb
	return func() {
		h.mu.Lock()
		defer h.mu.Unlock()
		delete(h.subs, id)
	}
}

// Regions lists region names, sorted.
func (h *Home) Regions() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]string, 0, len(h.regions))
	for n := range h.regions {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Stats returns (stores, fetches, stats) counters.
func (h *Home) Stats() (int, int, int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.stores, h.fetches, h.stats
}

// ---------------------------------------------------------------------------
// Node: the client-side cache
// ---------------------------------------------------------------------------

// Mode selects how a node establishes cache currency.
type Mode int

// Cache-coherence modes.
const (
	// Validate checks the region version with a Stat on every read —
	// works over any HomeAPI transport, saves data transfer for large
	// regions.
	Validate Mode = iota
	// Push trusts in-process invalidation callbacks and skips Stat;
	// requires the home to be a *Home in this process.
	Push
)

type cached struct {
	data    []byte
	version Version
	valid   bool
}

// Node is one sharer of the memory: a read-through, write-through cache
// over a HomeAPI.
type Node struct {
	home HomeAPI
	mode Mode

	mu     sync.Mutex
	cache  map[string]cached
	closed bool
	unsub  func()

	hits, misses int
}

// NewNode attaches a node to a home. Push mode requires home to be a *Home
// (it falls back to Validate otherwise).
func NewNode(home HomeAPI, mode Mode) *Node {
	n := &Node{home: home, mode: mode, cache: make(map[string]cached)}
	if mode == Push {
		if h, ok := home.(*Home); ok {
			n.unsub = h.Subscribe(n.invalidate)
		} else {
			n.mode = Validate
		}
	}
	return n
}

// invalidate is the push-invalidation callback.
func (n *Node) invalidate(name string, v Version) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if c, ok := n.cache[name]; ok && c.version < v {
		c.valid = false
		n.cache[name] = c
	}
}

// Read returns the region's current contents, from cache when current.
func (n *Node) Read(name string) ([]byte, error) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil, ErrClosed
	}
	c, ok := n.cache[name]
	n.mu.Unlock()

	if ok && c.valid {
		if n.mode == Push {
			n.recordHit()
			return append([]byte(nil), c.data...), nil
		}
		// Validate mode: one Stat round-trip establishes currency.
		v, err := n.home.Stat(name)
		if err != nil {
			return nil, err
		}
		if v == c.version {
			n.recordHit()
			return append([]byte(nil), c.data...), nil
		}
	}
	n.recordMiss()
	data, v, err := n.home.Fetch(name)
	if err != nil {
		return nil, err
	}
	n.mu.Lock()
	n.cache[name] = cached{data: data, version: v, valid: true}
	n.mu.Unlock()
	return append([]byte(nil), data...), nil
}

// Write stores new contents through to the home and updates the local
// cache (read-your-writes).
func (n *Node) Write(name string, data []byte) error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return ErrClosed
	}
	n.mu.Unlock()
	v, err := n.home.Store(name, data)
	if err != nil {
		return err
	}
	n.mu.Lock()
	// Only install if newer: a concurrent writer may already have
	// advanced the region past our version.
	if c, ok := n.cache[name]; !ok || c.version <= v {
		n.cache[name] = cached{data: append([]byte(nil), data...), version: v, valid: true}
	}
	n.mu.Unlock()
	return nil
}

// HitRate returns cache hits and misses.
func (n *Node) HitRate() (hits, misses int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.hits, n.misses
}

func (n *Node) recordHit() {
	n.mu.Lock()
	n.hits++
	n.mu.Unlock()
}

func (n *Node) recordMiss() {
	n.mu.Lock()
	n.misses++
	n.mu.Unlock()
}

// Close detaches the node.
func (n *Node) Close() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return
	}
	n.closed = true
	if n.unsub != nil {
		n.unsub()
	}
}
