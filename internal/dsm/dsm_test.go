package dsm

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestStoreFetchStat(t *testing.T) {
	h := NewHome()
	if _, err := h.Stat("x"); !errors.Is(err, ErrNoRegion) {
		t.Fatalf("err = %v", err)
	}
	if _, _, err := h.Fetch("x"); !errors.Is(err, ErrNoRegion) {
		t.Fatalf("err = %v", err)
	}
	v, err := h.Store("x", []byte("one"))
	if err != nil || v != 1 {
		t.Fatalf("v=%d err=%v", v, err)
	}
	data, v2, err := h.Fetch("x")
	if err != nil || v2 != 1 || string(data) != "one" {
		t.Fatalf("fetch = %q v%d err=%v", data, v2, err)
	}
	v3, _ := h.Store("x", []byte("two"))
	if v3 != 2 {
		t.Fatalf("v3 = %d", v3)
	}
	if got, _ := h.Stat("x"); got != 2 {
		t.Fatalf("stat = %d", got)
	}
	if regions := h.Regions(); len(regions) != 1 || regions[0] != "x" {
		t.Fatalf("regions = %v", regions)
	}
}

func TestHomeCopiesData(t *testing.T) {
	h := NewHome()
	buf := []byte("mutable")
	h.Store("r", buf)
	buf[0] = 'X'
	data, _, _ := h.Fetch("r")
	if string(data) != "mutable" {
		t.Fatal("home aliased caller buffer")
	}
	data[0] = 'Y'
	again, _, _ := h.Fetch("r")
	if string(again) != "mutable" {
		t.Fatal("fetch aliased home buffer")
	}
}

func TestNodeReadYourWrites(t *testing.T) {
	h := NewHome()
	n := NewNode(h, Validate)
	defer n.Close()
	if err := n.Write("r", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	data, err := n.Read("r")
	if err != nil || string(data) != "v1" {
		t.Fatalf("read = %q err=%v", data, err)
	}
	hits, misses := n.HitRate()
	if hits != 1 || misses != 0 {
		t.Fatalf("hits=%d misses=%d (write-through should have primed the cache)", hits, misses)
	}
}

func TestNodesSeeEachOthersWrites(t *testing.T) {
	for _, mode := range []Mode{Validate, Push} {
		h := NewHome()
		a := NewNode(h, mode)
		b := NewNode(h, mode)
		a.Write("r", []byte("from-a"))
		got, err := b.Read("r")
		if err != nil || string(got) != "from-a" {
			t.Fatalf("mode %v: b read %q err=%v", mode, got, err)
		}
		b.Write("r", []byte("from-b"))
		got, err = a.Read("r")
		if err != nil || string(got) != "from-b" {
			t.Fatalf("mode %v: a read %q err=%v", mode, got, err)
		}
		a.Close()
		b.Close()
	}
}

func TestPushModeAvoidsStatTraffic(t *testing.T) {
	h := NewHome()
	n := NewNode(h, Push)
	defer n.Close()
	n.Write("r", []byte("v"))
	for i := 0; i < 10; i++ {
		if _, err := n.Read("r"); err != nil {
			t.Fatal(err)
		}
	}
	_, _, stats := h.Stats()
	if stats != 0 {
		t.Fatalf("push mode issued %d Stat calls", stats)
	}
	hits, _ := n.HitRate()
	if hits != 10 {
		t.Fatalf("hits = %d", hits)
	}
}

func TestValidateModeRevalidates(t *testing.T) {
	h := NewHome()
	n := NewNode(h, Validate)
	defer n.Close()
	n.Write("r", []byte("v"))
	n.Read("r")
	_, _, statsBefore := h.Stats()
	n.Read("r")
	_, _, statsAfter := h.Stats()
	if statsAfter != statsBefore+1 {
		t.Fatalf("validate mode should Stat per read: %d -> %d", statsBefore, statsAfter)
	}
}

func TestPushInvalidation(t *testing.T) {
	h := NewHome()
	a := NewNode(h, Push)
	b := NewNode(h, Push)
	defer a.Close()
	defer b.Close()
	a.Write("r", []byte("old"))
	b.Read("r") // b caches "old"
	a.Write("r", []byte("new"))
	got, err := b.Read("r")
	if err != nil || string(got) != "new" {
		t.Fatalf("stale read after invalidation: %q err=%v", got, err)
	}
}

func TestClosedNode(t *testing.T) {
	h := NewHome()
	n := NewNode(h, Push)
	n.Close()
	n.Close() // idempotent
	if _, err := n.Read("r"); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v", err)
	}
	if err := n.Write("r", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v", err)
	}
}

func TestUnsubscribeOnClose(t *testing.T) {
	h := NewHome()
	n := NewNode(h, Push)
	n.Close()
	// A write after close must not panic or deadlock on the dead
	// subscriber.
	if _, err := h.Store("r", []byte("x")); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentWritersSequentiallyConsistent(t *testing.T) {
	h := NewHome()
	const writers, rounds = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			n := NewNode(h, Push)
			defer n.Close()
			for i := 0; i < rounds; i++ {
				if err := n.Write("shared", []byte(fmt.Sprintf("w%d-%d", w, i))); err != nil {
					t.Error(err)
					return
				}
				if _, err := n.Read("shared"); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if v, _ := h.Stat("shared"); v != writers*rounds {
		t.Fatalf("version = %d, want %d (every write must bump exactly once)", v, writers*rounds)
	}
}

// Property: after any interleaving of writes through two nodes, a fresh
// read from either node returns the last written value, and versions are
// strictly monotone.
func TestPropertyLastWriteWins(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := NewHome()
		nodes := []*Node{NewNode(h, Push), NewNode(h, Validate)}
		defer nodes[0].Close()
		defer nodes[1].Close()
		var last []byte
		var lastVer Version
		for i := 0; i < 30; i++ {
			n := nodes[rng.Intn(2)]
			val := []byte(fmt.Sprintf("v%d", i))
			if err := n.Write("r", val); err != nil {
				return false
			}
			last = val
			v, err := h.Stat("r")
			if err != nil || v <= lastVer {
				return false
			}
			lastVer = v
		}
		for _, n := range nodes {
			got, err := n.Read("r")
			if err != nil || !bytes.Equal(got, last) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRPCTransport(t *testing.T) {
	h := NewHome()
	addr, stop, err := h.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	client := DialHome(addr)
	defer client.Close()

	// A remote node (validate mode forced over RPC, even if Push asked).
	n := NewNode(client, Push)
	defer n.Close()
	if err := n.Write("r", []byte("over-rpc")); err != nil {
		t.Fatal(err)
	}
	got, err := n.Read("r")
	if err != nil || string(got) != "over-rpc" {
		t.Fatalf("read = %q err=%v", got, err)
	}
	// A local in-process node shares with the remote one.
	local := NewNode(h, Push)
	defer local.Close()
	lv, err := local.Read("r")
	if err != nil || string(lv) != "over-rpc" {
		t.Fatalf("local read = %q err=%v", lv, err)
	}
	local.Write("r", []byte("updated-locally"))
	got, err = n.Read("r")
	if err != nil || string(got) != "updated-locally" {
		t.Fatalf("remote read after local write = %q err=%v", got, err)
	}
	// Missing regions error across the wire too.
	if _, err := n.Read("ghost"); err == nil {
		t.Fatal("missing region accepted over RPC")
	}
}
