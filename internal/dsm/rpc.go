package dsm

import (
	"fmt"
	"net"
	"net/rpc"
	"sync"
)

// RPC transport: a Home served over TCP so nodes in other processes (other
// VDCE sites) can share regions. Validate-mode nodes work unchanged over
// this transport — currency is established by the Stat round-trip, so no
// server-to-client callback channel is needed.

// RPCService adapts a Home to net/rpc.
type RPCService struct{ h *Home }

// StatArgs/StatReply carry the Stat call.
type StatArgs struct{ Name string }

// StatReply returns the version.
type StatReply struct{ Version Version }

// Stat is the RPC Stat endpoint.
func (s *RPCService) Stat(args StatArgs, reply *StatReply) error {
	v, err := s.h.Stat(args.Name)
	if err != nil {
		return err
	}
	reply.Version = v
	return nil
}

// FetchArgs/FetchReply carry the Fetch call.
type FetchArgs struct{ Name string }

// FetchReply returns contents and version.
type FetchReply struct {
	Data    []byte
	Version Version
}

// Fetch is the RPC Fetch endpoint.
func (s *RPCService) Fetch(args FetchArgs, reply *FetchReply) error {
	data, v, err := s.h.Fetch(args.Name)
	if err != nil {
		return err
	}
	reply.Data = data
	reply.Version = v
	return nil
}

// StoreArgs/StoreReply carry the Store call.
type StoreArgs struct {
	Name string
	Data []byte
}

// StoreReply returns the new version.
type StoreReply struct{ Version Version }

// Store is the RPC Store endpoint.
func (s *RPCService) Store(args StoreArgs, reply *StoreReply) error {
	v, err := s.h.Store(args.Name, args.Data)
	if err != nil {
		return err
	}
	reply.Version = v
	return nil
}

// Serve exposes the home on addr; returns the bound address and a stop
// function.
func (h *Home) Serve(addr string) (string, func(), error) {
	srv := rpc.NewServer()
	if err := srv.RegisterName("DSM", &RPCService{h: h}); err != nil {
		return "", nil, err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("dsm: listen %s: %w", addr, err)
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go srv.ServeConn(conn)
		}
	}()
	return ln.Addr().String(), func() { ln.Close() }, nil
}

// RPCClient is a HomeAPI over a TCP connection to a served Home.
type RPCClient struct {
	addr string

	mu     sync.Mutex
	client *rpc.Client
}

// DialHome connects to a served home.
func DialHome(addr string) *RPCClient {
	return &RPCClient{addr: addr}
}

func (c *RPCClient) conn() (*rpc.Client, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.client != nil {
		return c.client, nil
	}
	cl, err := rpc.Dial("tcp", c.addr)
	if err != nil {
		return nil, fmt.Errorf("dsm: dial %s: %w", c.addr, err)
	}
	c.client = cl
	return cl, nil
}

// Stat implements HomeAPI.
func (c *RPCClient) Stat(name string) (Version, error) {
	cl, err := c.conn()
	if err != nil {
		return 0, err
	}
	var reply StatReply
	if err := cl.Call("DSM.Stat", StatArgs{Name: name}, &reply); err != nil {
		return 0, err
	}
	return reply.Version, nil
}

// Fetch implements HomeAPI.
func (c *RPCClient) Fetch(name string) ([]byte, Version, error) {
	cl, err := c.conn()
	if err != nil {
		return nil, 0, err
	}
	var reply FetchReply
	if err := cl.Call("DSM.Fetch", FetchArgs{Name: name}, &reply); err != nil {
		return nil, 0, err
	}
	return reply.Data, reply.Version, nil
}

// Store implements HomeAPI.
func (c *RPCClient) Store(name string, data []byte) (Version, error) {
	cl, err := c.conn()
	if err != nil {
		return 0, err
	}
	var reply StoreReply
	if err := cl.Call("DSM.Store", StoreArgs{Name: name, Data: data}, &reply); err != nil {
		return 0, err
	}
	return reply.Version, nil
}

// Close shuts the connection.
func (c *RPCClient) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.client != nil {
		c.client.Close()
		c.client = nil
	}
}

var _ HomeAPI = (*RPCClient)(nil)
var _ HomeAPI = (*Home)(nil)
