package workload

import (
	"testing"
	"testing/quick"

	"repro/internal/afg"
)

func TestLinearSolverShape(t *testing.T) {
	g, err := LinearSolver(nil, 64, 1, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Len() != 5 {
		t.Fatalf("tasks = %d", g.Len())
	}
	if ex := g.Exits(); len(ex) != 1 || ex[0] != "check" {
		t.Fatalf("exits = %v", ex)
	}
	if en := g.Entries(); len(en) != 2 {
		t.Fatalf("entries = %v", en)
	}
	// Costs scale with n (cubic for LU).
	small, _ := LinearSolver(nil, 64, 1, false, 0)
	big, _ := LinearSolver(nil, 128, 1, false, 0)
	if big.Task("lu").ComputeCost <= small.Task("lu").ComputeCost*7 {
		t.Fatalf("LU cost scaling wrong: %v vs %v",
			small.Task("lu").ComputeCost, big.Task("lu").ComputeCost)
	}
}

func TestLinearSolverParallelMode(t *testing.T) {
	g, err := LinearSolver(nil, 64, 1, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	lu := g.Task("lu")
	if lu.Mode != afg.Parallel || lu.Processors != 2 {
		t.Fatalf("lu = %+v", lu)
	}
}

func TestC3IScenarioShape(t *testing.T) {
	g, err := C3IScenario(nil, 4, 512, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Len() != 6 {
		t.Fatalf("tasks = %d", g.Len())
	}
	if g.Task("correlate") == nil || g.Task("threat") == nil {
		t.Fatal("missing C3I stages")
	}
	// Sensor clamping.
	g2, err := C3IScenario(nil, 0, 128, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Task("sensors0").Params["sensors"] != "2" {
		t.Fatalf("sensors param = %v", g2.Task("sensors0").Params)
	}
}

func TestFourierPipelineShape(t *testing.T) {
	g, err := FourierPipeline(nil, 1024, 17, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Len() != 3 || len(g.Exits()) != 2 {
		t.Fatalf("shape: %d tasks, exits %v", g.Len(), g.Exits())
	}
}

func TestPipelineShape(t *testing.T) {
	g := Pipeline(10, 0.5, 100)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Len() != 10 || len(g.Entries()) != 1 || len(g.Exits()) != 1 {
		t.Fatal("pipeline malformed")
	}
	cp, _ := g.CriticalPathLength()
	if cp != 5 {
		t.Fatalf("critical path = %v, want 5", cp)
	}
}

func TestForkJoinShape(t *testing.T) {
	g := ForkJoin(8, 1, 10)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Len() != 10 {
		t.Fatalf("tasks = %d", g.Len())
	}
	if len(g.Children("source")) != 8 || len(g.Parents("sink")) != 8 {
		t.Fatal("branches miswired")
	}
}

func TestLayeredRandomDeterministicAndValid(t *testing.T) {
	cfg := LayeredConfig{Layers: 6, Width: 5, Density: 0.4, MinCost: 1, MaxCost: 5, MaxBytes: 1 << 16, Seed: 42}
	a := LayeredRandom(cfg)
	b := LayeredRandom(cfg)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() || len(a.Links()) != len(b.Links()) {
		t.Fatal("not deterministic")
	}
	// Every non-entry task has at least one parent by construction, so the
	// entry set is exactly layer 0.
	for _, id := range a.TaskIDs() {
		if len(a.Parents(id)) == 0 && id[:3] != "t00" {
			t.Fatalf("task %s disconnected", id)
		}
	}
}

func TestLayeredRandomClamps(t *testing.T) {
	g := LayeredRandom(LayeredConfig{Layers: 0, Width: 0, Seed: 1})
	if g.Len() != 1 {
		t.Fatalf("len = %d", g.Len())
	}
}

// Property: all generated graphs validate and have positive total work.
func TestPropertyGeneratorsValid(t *testing.T) {
	f := func(seed int64) bool {
		cfg := LayeredConfig{
			Layers: 1 + int(seed%7+7)%7, Width: 4, Density: 0.5,
			MinCost: 0.5, MaxCost: 3, MaxBytes: 1 << 12, Seed: seed,
		}
		g := LayeredRandom(cfg)
		if g.Validate() != nil || g.TotalWork() <= 0 {
			return false
		}
		levels, err := g.Levels()
		if err != nil {
			return false
		}
		cp, _ := g.CriticalPathLength()
		for _, l := range levels {
			if l > cp+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
