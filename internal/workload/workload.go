// Package workload generates the synthetic applications used by the
// examples and the evaluation benchmarks: the paper's flagship Linear
// Equation Solver (Fig 3), a C3I command-and-control scenario, and the
// parameterised DAG families (pipelines, fork-joins, layered random graphs)
// that exercise the Application Scheduler.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/afg"
	"repro/internal/dagen"
	"repro/internal/tasklib"
)

// costFor derives a task's scheduler-visible cost metadata from the task
// registry, scaled by the task's parameters — exactly what the Application
// Editor computes when a task is configured.
func costFor(reg *tasklib.Registry, fn string, params map[string]string) (cost float64, mem, out int64) {
	spec, err := reg.Get(fn)
	if err != nil {
		return 0.001, 1 << 10, 64
	}
	s := spec.Scale(params)
	return spec.BaseTime * s, int64(float64(spec.MemReq) * s), int64(float64(spec.OutputBytes) * s)
}

func addTask(g *afg.Graph, reg *tasklib.Registry, id afg.TaskID, fn string, params map[string]string) error {
	cost, mem, out := costFor(reg, fn, params)
	return g.AddTask(&afg.Task{
		ID: id, Function: fn, Params: params,
		ComputeCost: cost, MemReq: mem, OutputBytes: out,
	})
}

func link(g *afg.Graph, from, to afg.TaskID) error {
	return g.AddLink(afg.Link{From: from, To: to, Bytes: g.Task(from).OutputBytes})
}

// LinearSolver builds the paper's Fig 3 application: solve A·x = b via LU
// decomposition, with a residual check as the exit task. parallelLU runs
// the LU task in parallel mode on `procs` machines, mirroring the paper's
// property panel ("parallel execution mode using two nodes").
func LinearSolver(reg *tasklib.Registry, n, seed int, parallelLU bool, procs int) (*afg.Graph, error) {
	if reg == nil {
		reg = tasklib.Default()
	}
	g := afg.New(fmt.Sprintf("linear-solver-n%d", n))
	ns := fmt.Sprintf("%d", n)
	steps := []struct {
		id     afg.TaskID
		fn     string
		params map[string]string
	}{
		{"genA", "matrix.generate", map[string]string{"n": ns, "seed": fmt.Sprintf("%d", seed)}},
		{"genB", "matrix.vector", map[string]string{"n": ns, "seed": fmt.Sprintf("%d", seed+1)}},
		{"lu", "matrix.lu", map[string]string{"n": ns}},
		{"solve", "matrix.solve", map[string]string{"n": ns}},
		{"check", "matrix.residual", map[string]string{"n": ns}},
	}
	for _, s := range steps {
		if err := addTask(g, reg, s.id, s.fn, s.params); err != nil {
			return nil, err
		}
	}
	if parallelLU {
		lu := g.Task("lu")
		lu.Mode = afg.Parallel
		if procs < 2 {
			procs = 2
		}
		lu.Processors = procs
	}
	for _, l := range [][2]afg.TaskID{
		{"genA", "lu"}, {"lu", "solve"}, {"genB", "solve"},
		{"genA", "check"}, {"solve", "check"}, {"genB", "check"},
	} {
		if err := link(g, l[0], l[1]); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// C3IScenario builds a command-control-communication-information pipeline:
// several sensor feeds are fused, correlated pairwise, and scored for
// threat — the application family the paper's C3I library serves.
func C3IScenario(reg *tasklib.Registry, sensors, samples, seed int) (*afg.Graph, error) {
	if reg == nil {
		reg = tasklib.Default()
	}
	if sensors < 2 {
		sensors = 2
	}
	g := afg.New(fmt.Sprintf("c3i-%dsensors", sensors))
	sam := fmt.Sprintf("%d", samples)
	// Two independent sensor clusters feed two fusion nodes.
	for c := 0; c < 2; c++ {
		data := afg.TaskID(fmt.Sprintf("sensors%d", c))
		fuse := afg.TaskID(fmt.Sprintf("fusion%d", c))
		err := addTask(g, reg, data, "c3i.sensordata", map[string]string{
			"sensors": fmt.Sprintf("%d", sensors),
			"samples": sam,
			"seed":    fmt.Sprintf("%d", seed+c),
		})
		if err != nil {
			return nil, err
		}
		if err := addTask(g, reg, fuse, "c3i.fusion", map[string]string{"samples": sam}); err != nil {
			return nil, err
		}
		if err := link(g, data, fuse); err != nil {
			return nil, err
		}
	}
	// Track correlation across the clusters, then threat assessment.
	if err := addTask(g, reg, "correlate", "c3i.correlate", map[string]string{"samples": sam}); err != nil {
		return nil, err
	}
	if err := addTask(g, reg, "threat", "c3i.threat", map[string]string{"samples": sam}); err != nil {
		return nil, err
	}
	for _, l := range [][2]afg.TaskID{
		{"fusion0", "correlate"}, {"fusion1", "correlate"}, {"fusion0", "threat"},
	} {
		if err := link(g, l[0], l[1]); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// FourierPipeline chains signal generation → spectrum → dominant-frequency
// detection, the classic streaming signal-intelligence shape.
func FourierPipeline(reg *tasklib.Registry, n, tone, seed int) (*afg.Graph, error) {
	if reg == nil {
		reg = tasklib.Default()
	}
	g := afg.New(fmt.Sprintf("fourier-n%d", n))
	params := map[string]string{
		"n": fmt.Sprintf("%d", n), "tone": fmt.Sprintf("%d", tone), "seed": fmt.Sprintf("%d", seed),
	}
	if err := addTask(g, reg, "signal", "fourier.signal", params); err != nil {
		return nil, err
	}
	if err := addTask(g, reg, "spectrum", "fourier.spectrum", map[string]string{"n": params["n"]}); err != nil {
		return nil, err
	}
	if err := addTask(g, reg, "dominant", "fourier.dominant", map[string]string{"n": params["n"]}); err != nil {
		return nil, err
	}
	if err := link(g, "signal", "spectrum"); err != nil {
		return nil, err
	}
	if err := link(g, "signal", "dominant"); err != nil {
		return nil, err
	}
	return g, nil
}

// Synthetic DAG families ------------------------------------------------------

// Pipeline builds a depth-stage chain of synthetic tasks with the given
// per-stage cost (seconds on the base processor) and link volume.
func Pipeline(depth int, cost float64, bytes int64) *afg.Graph {
	g := afg.New(fmt.Sprintf("pipeline-%d", depth))
	var prev afg.TaskID
	for i := 0; i < depth; i++ {
		id := afg.TaskID(fmt.Sprintf("s%03d", i))
		g.AddTask(&afg.Task{ID: id, Function: "synthetic.noop", ComputeCost: cost, OutputBytes: bytes})
		if i > 0 {
			g.AddLink(afg.Link{From: prev, To: id, Bytes: bytes})
		}
		prev = id
	}
	return g
}

// ForkJoin builds source → width parallel branches → sink.
func ForkJoin(width int, branchCost float64, bytes int64) *afg.Graph {
	g := afg.New(fmt.Sprintf("forkjoin-%d", width))
	g.AddTask(&afg.Task{ID: "source", Function: "synthetic.noop", ComputeCost: branchCost / 10, OutputBytes: bytes})
	g.AddTask(&afg.Task{ID: "sink", Function: "synthetic.noop", ComputeCost: branchCost / 10, OutputBytes: bytes})
	for i := 0; i < width; i++ {
		id := afg.TaskID(fmt.Sprintf("b%03d", i))
		g.AddTask(&afg.Task{ID: id, Function: "synthetic.noop", ComputeCost: branchCost, OutputBytes: bytes})
		g.AddLink(afg.Link{From: "source", To: id, Bytes: bytes})
		g.AddLink(afg.Link{From: id, To: "sink", Bytes: bytes})
	}
	return g
}

// LayeredConfig parameterises LayeredRandom.
type LayeredConfig struct {
	Layers   int     // number of ranks
	Width    int     // max tasks per rank
	Density  float64 // probability of a link between adjacent ranks
	MinCost  float64 // per-task cost lower bound (seconds)
	MaxCost  float64 // per-task cost upper bound
	MaxBytes int64   // link volume upper bound
	Seed     int64
}

// LayeredRandom builds a random layered DAG, the standard scheduling
// benchmark family. It is always connected rank-to-rank: every non-entry
// task gets at least one parent.
func LayeredRandom(cfg LayeredConfig) *afg.Graph {
	if cfg.Layers < 1 {
		cfg.Layers = 1
	}
	if cfg.Width < 1 {
		cfg.Width = 1
	}
	if cfg.MaxCost <= cfg.MinCost {
		cfg.MaxCost = cfg.MinCost + 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := afg.New(fmt.Sprintf("layered-%dx%d", cfg.Layers, cfg.Width))
	var prev []afg.TaskID
	for l := 0; l < cfg.Layers; l++ {
		n := 1 + rng.Intn(cfg.Width)
		var cur []afg.TaskID
		for i := 0; i < n; i++ {
			id := afg.TaskID(fmt.Sprintf("t%02d-%02d", l, i))
			cost := cfg.MinCost + rng.Float64()*(cfg.MaxCost-cfg.MinCost)
			var bytes int64
			if cfg.MaxBytes > 0 {
				bytes = rng.Int63n(cfg.MaxBytes)
			}
			g.AddTask(&afg.Task{ID: id, Function: "synthetic.noop", ComputeCost: cost, OutputBytes: bytes})
			cur = append(cur, id)
		}
		for _, c := range cur {
			if len(prev) == 0 {
				continue
			}
			linked := false
			for _, p := range prev {
				if rng.Float64() < cfg.Density {
					g.AddLink(afg.Link{From: p, To: c, Bytes: g.Task(p).OutputBytes})
					linked = true
				}
			}
			if !linked {
				p := prev[rng.Intn(len(prev))]
				g.AddLink(afg.Link{From: p, To: c, Bytes: g.Task(p).OutputBytes})
			}
		}
		prev = cur
	}
	return g
}

// Scale builds the task-library-shaped layered DAG the scale benchmarks
// use.
//
// Deprecated: the construction moved to the seeded-generator package — call
// dagen.Scale directly. This wrapper delegates (graphs are bit-identical)
// and remains for callers that only know the workload families.
func Scale(tasks, width, kinds int, seed int64) *afg.Graph {
	return dagen.Scale(tasks, width, kinds, seed)
}
