// Package netsim models the wide-area network that interconnects VDCE
// sites. The paper's testbed was the NYNET ATM network; we substitute a
// configurable latency/bandwidth matrix. It serves two roles:
//
//  1. Estimation: the Site Scheduler Algorithm (Fig 4) charges
//     transfer_time(Sparent, Sj) × file_size when placing a task away from
//     its parent's site; TransferTime supplies that estimate.
//  2. Injection: the Data Manager delays real socket transfers between
//     co-simulated sites by the modelled WAN time (scaled, so benchmarks
//     stay fast) to make co-location measurably better, as the paper claims.
package netsim

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// PathSpec describes one directed site-to-site path.
type PathSpec struct {
	Latency   time.Duration // one-way propagation + switching latency
	Bandwidth float64       // bytes per second
}

// Network is a site-level latency/bandwidth matrix. Intra-site paths are
// modelled separately (LANSpec) since the paper distinguishes intra-group
// measurement (Group Manager echo packets) from inter-site transfers.
type Network struct {
	mu    sync.RWMutex
	paths map[string]map[string]PathSpec // guarded by mu
	lan   PathSpec                       // guarded by mu
	scale float64                        // wall-clock scale for injected delays (1.0 = real time); guarded by mu
}

// DefaultLAN approximates the paper's campus ATM LAN: OC-3-class bandwidth
// with sub-millisecond latency, so co-located tasks communicate strictly
// faster than tasks split across WAN sites.
var DefaultLAN = PathSpec{Latency: 500 * time.Microsecond, Bandwidth: 19.4e6}

// New creates an empty network with the given LAN model. scale < 1
// compresses injected delays (e.g. 0.001 simulates a 40 ms WAN hop as 40 µs
// of real sleeping); estimates returned by TransferTime are always in
// modelled (unscaled) time.
func New(lan PathSpec, scale float64) *Network {
	if scale <= 0 {
		scale = 1
	}
	return &Network{
		paths: make(map[string]map[string]PathSpec),
		lan:   lan,
		scale: scale,
	}
}

// SetPath installs the directed path a→b. Use Connect for symmetric links.
func (n *Network) SetPath(a, b string, spec PathSpec) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.paths[a] == nil {
		n.paths[a] = make(map[string]PathSpec)
	}
	n.paths[a][b] = spec
}

// Connect installs a symmetric path between a and b.
func (n *Network) Connect(a, b string, spec PathSpec) {
	n.SetPath(a, b, spec)
	n.SetPath(b, a, spec)
}

// Path returns the directed path spec a→b. Same-site pairs return the LAN
// spec; unknown pairs return a conservative default WAN path.
func (n *Network) Path(a, b string) PathSpec {
	if a == b {
		n.mu.RLock()
		defer n.mu.RUnlock()
		return n.lan
	}
	n.mu.RLock()
	defer n.mu.RUnlock()
	//vdce:ignore allocflow the path matrix is site-name-keyed by contract; sites number in the handfuls and the lookup is two probes with no allocation
	if m, ok := n.paths[a]; ok {
		if p, ok := m[b]; ok {
			return p
		}
	}
	return PathSpec{Latency: 100 * time.Millisecond, Bandwidth: 1e5}
}

// TransferTime estimates the modelled time to move `bytes` from site a to
// site b: latency + bytes/bandwidth. For a == b it uses the LAN model; the
// Site Scheduler's "if the site is the same as the parent site, then the
// total inter-task transfer time will be zero" is realised by the LAN cost
// being orders of magnitude below WAN cost (we keep the small LAN term so
// intra-site transfers are still accounted, which is strictly more accurate
// than the paper's simplification).
//
//vdce:unit bytes=bytes
func (n *Network) TransferTime(a, b string, bytes int64) time.Duration {
	p := n.Path(a, b)
	if bytes < 0 {
		bytes = 0
	}
	xfer := time.Duration(float64(bytes) / p.Bandwidth * float64(time.Second))
	return p.Latency + xfer
}

// InjectDelay sleeps for the scaled modelled transfer time. The Data
// Manager calls this around real socket writes between co-simulated sites.
//
//vdce:unit bytes=bytes
func (n *Network) InjectDelay(a, b string, bytes int64) {
	d := n.TransferTime(a, b, bytes)
	n.mu.RLock()
	s := n.scale
	n.mu.RUnlock()
	scaled := time.Duration(float64(d) * s)
	if scaled > 0 {
		time.Sleep(scaled)
	}
}

// Scale returns the wall-clock compression factor.
func (n *Network) Scale() float64 {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.scale
}

// Sites returns the set of sites with at least one configured path.
func (n *Network) Sites() []string {
	n.mu.RLock()
	defer n.mu.RUnlock()
	seen := map[string]bool{}
	for a, m := range n.paths {
		seen[a] = true
		for b := range m {
			seen[b] = true
		}
	}
	out := make([]string, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Nearest returns up to k other sites sorted by ascending latency from
// `from`. This implements the Site Scheduler's "select k nearest VDCE
// neighbor sites" step (Fig 4, step 2).
//
//vdce:ignore allocflow site selection runs once per Fig 4 walk: O(S log S) over a handful of sites, amortized across every task scheduled
func (n *Network) Nearest(from string, k int) []string {
	n.mu.RLock()
	defer n.mu.RUnlock()
	type cand struct {
		site string
		lat  time.Duration
	}
	var cands []cand
	for b, p := range n.paths[from] {
		if b != from {
			cands = append(cands, cand{b, p.Latency})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].lat != cands[j].lat {
			return cands[i].lat < cands[j].lat
		}
		return cands[i].site < cands[j].site
	})
	if k > len(cands) {
		k = len(cands)
	}
	out := make([]string, 0, k)
	for i := 0; i < k; i++ {
		out = append(out, cands[i].site)
	}
	return out
}

// Topology presets ----------------------------------------------------------

// StarTopology connects every pair of the named sites with latencies that
// grow with index distance (site 0 is the hub region). Deterministic, used
// by benchmarks.
//
//vdce:unit bandwidth=bytes/s
func StarTopology(sites []string, baseLatency time.Duration, bandwidth float64, scale float64) *Network {
	n := New(DefaultLAN, scale)
	for i, a := range sites {
		for j, b := range sites {
			if i >= j {
				continue
			}
			dist := j - i
			n.Connect(a, b, PathSpec{
				Latency:   baseLatency * time.Duration(dist),
				Bandwidth: bandwidth,
			})
		}
	}
	return n
}

// NYNET returns a small topology named after the paper's testbed: Syracuse
// and Rome close together (the paper's two labelled sites in Fig 6), with a
// farther NYC site. Latencies are plausible mid-90s ATM WAN numbers.
func NYNET(scale float64) *Network {
	n := New(DefaultLAN, scale)
	n.Connect("syracuse", "rome", PathSpec{Latency: 5 * time.Millisecond, Bandwidth: 19.4e6}) // ~155 Mb/s OC-3
	n.Connect("syracuse", "nyc", PathSpec{Latency: 15 * time.Millisecond, Bandwidth: 19.4e6})
	n.Connect("rome", "nyc", PathSpec{Latency: 18 * time.Millisecond, Bandwidth: 19.4e6})
	return n
}

func (p PathSpec) String() string {
	return fmt.Sprintf("latency=%v bw=%.1fMB/s", p.Latency, p.Bandwidth/1e6)
}
