package netsim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestPathSameSiteUsesLAN(t *testing.T) {
	n := New(DefaultLAN, 1)
	p := n.Path("syr", "syr")
	if p != DefaultLAN {
		t.Fatalf("p = %v", p)
	}
}

func TestPathUnknownIsConservative(t *testing.T) {
	n := New(DefaultLAN, 1)
	p := n.Path("a", "b")
	if p.Latency < 50*time.Millisecond {
		t.Fatalf("unknown path should be slow, got %v", p)
	}
}

func TestConnectSymmetric(t *testing.T) {
	n := New(DefaultLAN, 1)
	spec := PathSpec{Latency: 7 * time.Millisecond, Bandwidth: 1e6}
	n.Connect("a", "b", spec)
	if n.Path("a", "b") != spec || n.Path("b", "a") != spec {
		t.Fatal("asymmetric after Connect")
	}
}

func TestTransferTime(t *testing.T) {
	n := New(DefaultLAN, 1)
	n.Connect("a", "b", PathSpec{Latency: 10 * time.Millisecond, Bandwidth: 1e6})
	// 1 MB over 1 MB/s = 1 s + 10 ms.
	got := n.TransferTime("a", "b", 1e6)
	want := time.Second + 10*time.Millisecond
	if got != want {
		t.Fatalf("got %v, want %v", got, want)
	}
	// Zero bytes = pure latency; negative bytes are clamped.
	if n.TransferTime("a", "b", 0) != 10*time.Millisecond {
		t.Fatal("zero-byte transfer should be latency only")
	}
	if n.TransferTime("a", "b", -5) != 10*time.Millisecond {
		t.Fatal("negative bytes should clamp to zero")
	}
}

func TestIntraSiteCheaperThanWAN(t *testing.T) {
	n := NYNET(1)
	local := n.TransferTime("syracuse", "syracuse", 1<<20)
	remote := n.TransferTime("syracuse", "rome", 1<<20)
	if local >= remote {
		t.Fatalf("LAN (%v) should beat WAN (%v)", local, remote)
	}
}

func TestInjectDelayScales(t *testing.T) {
	n := New(DefaultLAN, 0.001)
	n.Connect("a", "b", PathSpec{Latency: 100 * time.Millisecond, Bandwidth: 1e9})
	start := time.Now()
	n.InjectDelay("a", "b", 0)
	elapsed := time.Since(start)
	if elapsed > 50*time.Millisecond {
		t.Fatalf("scaled delay too long: %v", elapsed)
	}
}

func TestScaleDefaultsToOne(t *testing.T) {
	n := New(DefaultLAN, -3)
	if n.Scale() != 1 {
		t.Fatalf("scale = %v", n.Scale())
	}
}

func TestNearestOrdering(t *testing.T) {
	n := New(DefaultLAN, 1)
	n.Connect("home", "far", PathSpec{Latency: 50 * time.Millisecond, Bandwidth: 1e6})
	n.Connect("home", "near", PathSpec{Latency: 5 * time.Millisecond, Bandwidth: 1e6})
	n.Connect("home", "mid", PathSpec{Latency: 20 * time.Millisecond, Bandwidth: 1e6})
	got := n.Nearest("home", 2)
	if len(got) != 2 || got[0] != "near" || got[1] != "mid" {
		t.Fatalf("nearest = %v", got)
	}
	all := n.Nearest("home", 10)
	if len(all) != 3 || all[2] != "far" {
		t.Fatalf("nearest(10) = %v", all)
	}
	if len(n.Nearest("isolated", 3)) != 0 {
		t.Fatal("isolated site should have no neighbours")
	}
}

func TestNearestTieBreaksByName(t *testing.T) {
	n := New(DefaultLAN, 1)
	spec := PathSpec{Latency: 5 * time.Millisecond, Bandwidth: 1e6}
	n.Connect("home", "zeta", spec)
	n.Connect("home", "alpha", spec)
	got := n.Nearest("home", 2)
	if got[0] != "alpha" || got[1] != "zeta" {
		t.Fatalf("tie break wrong: %v", got)
	}
}

func TestStarTopologyDistances(t *testing.T) {
	sites := []string{"s0", "s1", "s2", "s3"}
	n := StarTopology(sites, 10*time.Millisecond, 1e6, 1)
	if n.Path("s0", "s1").Latency != 10*time.Millisecond {
		t.Fatal("adjacent latency wrong")
	}
	if n.Path("s0", "s3").Latency != 30*time.Millisecond {
		t.Fatal("distant latency wrong")
	}
	near := n.Nearest("s0", 3)
	if len(near) != 3 || near[0] != "s1" {
		t.Fatalf("near = %v", near)
	}
}

func TestNYNETSites(t *testing.T) {
	n := NYNET(1)
	sites := n.Sites()
	if len(sites) != 3 {
		t.Fatalf("sites = %v", sites)
	}
	if n.Path("syracuse", "rome").Latency >= n.Path("syracuse", "nyc").Latency {
		t.Fatal("rome should be nearer syracuse than nyc")
	}
}

// Property: TransferTime is monotone in bytes and always >= latency.
func TestPropertyTransferMonotone(t *testing.T) {
	n := NYNET(1)
	f := func(b1, b2 int64) bool {
		if b1 < 0 {
			b1 = -b1
		}
		if b2 < 0 {
			b2 = -b2
		}
		b1 %= 1 << 30
		b2 %= 1 << 30
		if b1 > b2 {
			b1, b2 = b2, b1
		}
		t1 := n.TransferTime("syracuse", "rome", b1)
		t2 := n.TransferTime("syracuse", "rome", b2)
		return t1 <= t2 && t1 >= n.Path("syracuse", "rome").Latency
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
