package netsim

import (
	"reflect"
	"testing"
	"time"
)

// The site scheduler's neighbor selection and the monitor's site listing
// both feed user-visible output; both must be stable across runs even
// though the underlying topology lives in maps.

func TestSitesDeterministic(t *testing.T) {
	n := New(DefaultLAN, 1)
	for _, s := range []string{"zurich", "ankara", "miami", "boston"} {
		n.Connect("hub", s, PathSpec{Latency: time.Millisecond, Bandwidth: 1e6})
	}
	want := []string{"ankara", "boston", "hub", "miami", "zurich"}
	for i := 0; i < 50; i++ {
		if got := n.Sites(); !reflect.DeepEqual(got, want) {
			t.Fatalf("Sites() = %v, want %v", got, want)
		}
	}
}

func TestNearestBreaksLatencyTiesByName(t *testing.T) {
	n := New(DefaultLAN, 1)
	// Three sites at identical latency: map order must not decide who the
	// "nearest" neighbors are.
	for _, s := range []string{"carol", "alice", "bob"} {
		n.Connect("hub", s, PathSpec{Latency: 5 * time.Millisecond, Bandwidth: 1e6})
	}
	n.Connect("hub", "zed", PathSpec{Latency: time.Millisecond, Bandwidth: 1e6})
	want := []string{"zed", "alice", "bob"}
	for i := 0; i < 50; i++ {
		if got := n.Nearest("hub", 3); !reflect.DeepEqual(got, want) {
			t.Fatalf("Nearest() = %v, want %v", got, want)
		}
	}
}
