// Package core is the top-level VDCE facade: it assembles a multi-site
// Virtual Distributed Computing Environment (Fig 1) and exposes the full
// software-development cycle the paper describes — build an application
// flow graph (Application Editor), map it onto the best available
// resources (Application Scheduler), and execute it under the Runtime
// System's control — behind a small API:
//
//	env, _ := core.NewEnvironment(core.Options{})
//	env.AddSite("syracuse", 8)
//	env.AddSite("rome", 8)
//	g, _ := workload.LinearSolver(nil, 128, 1, false, 0)
//	res, _ := env.Submit(ctx, "syracuse", g)
package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/afg"
	"repro/internal/netsim"
	"repro/internal/resource"
	"repro/internal/runtime"
	"repro/internal/scheduler"
	"repro/internal/site"
	"repro/internal/tasklib"
)

// Common errors.
var (
	ErrUnknownSite   = errors.New("core: unknown site")
	ErrDuplicateSite = errors.New("core: duplicate site")
)

// Options configures an environment.
type Options struct {
	// Net is the WAN model; nil builds a star topology over the sites as
	// they are added (10 ms base latency) with delays compressed by
	// DelayScale.
	Net *netsim.Network
	// DelayScale compresses injected WAN delays when Net is nil
	// (default 0.001: a 10 ms hop sleeps 10 µs).
	DelayScale float64
	// Registry is the task library (nil = tasklib.Default()).
	Registry *tasklib.Registry
	// SiteConfig is applied to every site.
	SiteConfig site.Config
	// SpeedSpread is the host heterogeneity within a site (default 4).
	SpeedSpread float64
	// Seed makes host generation deterministic (default 1).
	Seed int64
	// K is the Site Scheduler's neighbour fan-out (0 = all sites).
	K int
}

// Environment is a running multi-site VDCE.
type Environment struct {
	opts  Options
	net   *netsim.Network
	sites map[string]*site.Manager
	order []string
}

// NewEnvironment creates an empty environment.
func NewEnvironment(opts Options) *Environment {
	if opts.Registry == nil {
		opts.Registry = tasklib.Default()
	}
	if opts.DelayScale <= 0 {
		opts.DelayScale = 0.001
	}
	if opts.SpeedSpread <= 0 {
		opts.SpeedSpread = 4
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	env := &Environment{opts: opts, sites: make(map[string]*site.Manager)}
	if opts.Net != nil {
		env.net = opts.Net
	} else {
		env.net = netsim.New(netsim.DefaultLAN, opts.DelayScale)
	}
	return env
}

// Net exposes the WAN model.
func (e *Environment) Net() *netsim.Network { return e.net }

// AddSite generates `hosts` heterogeneous machines, wires the site into the
// WAN (10 ms × distance to each existing site when the caller did not
// provide a topology), and starts its repository/monitoring plane.
func (e *Environment) AddSite(name string, hosts int) (*site.Manager, error) {
	if _, ok := e.sites[name]; ok {
		return nil, fmt.Errorf("%w: %q", ErrDuplicateSite, name)
	}
	pool := resource.GenerateSite(name, hosts, e.opts.SpeedSpread, e.opts.Seed+int64(len(e.order))*7919)
	m, err := site.NewManager(name, pool, e.net, e.opts.Registry, e.opts.SiteConfig)
	if err != nil {
		return nil, err
	}
	if e.opts.Net == nil {
		for i, other := range e.order {
			e.net.Connect(name, other, netsim.PathSpec{
				Latency:   time.Duration(i+1) * 10 * time.Millisecond,
				Bandwidth: 19.4e6,
			})
		}
	}
	e.sites[name] = m
	e.order = append(e.order, name)
	// Prime the repository with one monitoring round so the scheduler has
	// dynamic data from the start.
	m.TickMonitors()
	return m, nil
}

// Site returns a site manager by name.
func (e *Environment) Site(name string) (*site.Manager, error) {
	m, ok := e.sites[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownSite, name)
	}
	return m, nil
}

// Sites lists site names in creation order.
func (e *Environment) Sites() []string {
	return append([]string(nil), e.order...)
}

// TickMonitors runs one synchronous monitoring round everywhere.
func (e *Environment) TickMonitors() {
	for _, name := range e.order {
		e.sites[name].TickMonitors()
	}
}

// StartMonitors runs all sites' group managers until ctx is done.
func (e *Environment) StartMonitors(ctx context.Context, period time.Duration) {
	for _, name := range e.order {
		e.sites[name].StartMonitors(ctx, period)
	}
}

// ResolveHost finds a host handle anywhere in the environment.
func (e *Environment) ResolveHost(name string) *resource.Host {
	for _, s := range e.sites {
		if h := s.Pool.Get(name); h != nil {
			return h
		}
	}
	return nil
}

// Scheduler builds the distributed Site Scheduler as seen from localSite:
// the local selector plus every other site as a remote selector (the
// in-process equivalent of the AFG multicast; cmd/vdce-server wires the
// same thing over RPC).
func (e *Environment) Scheduler(localSite string) (*scheduler.SiteScheduler, error) {
	local, err := e.Site(localSite)
	if err != nil {
		return nil, err
	}
	var remotes []scheduler.HostSelector
	for _, name := range e.order {
		if name != localSite {
			remotes = append(remotes, e.sites[name].Selector)
		}
	}
	return scheduler.NewSiteScheduler(local.Selector, remotes, e.net, e.opts.K), nil
}

// Submit runs the full cycle for an application arriving at localSite:
// distributed scheduling, then execution across the chosen hosts with the
// local site's QoS/fault policies.
func (e *Environment) Submit(ctx context.Context, localSite string, g *afg.Graph) (*runtime.Result, *scheduler.AllocationTable, error) {
	local, err := e.Site(localSite)
	if err != nil {
		return nil, nil, err
	}
	var remotes []scheduler.HostSelector
	for _, name := range e.order {
		if name != localSite {
			remotes = append(remotes, e.sites[name].Selector)
		}
	}
	return local.ExecuteLocal(ctx, g, remotes, e.ResolveHost)
}

// HostCount sums hosts across sites.
func (e *Environment) HostCount() int {
	n := 0
	for _, s := range e.sites {
		n += s.Pool.Len()
	}
	return n
}

// TruthModel returns the ground-truth execution model over the live hosts:
// base cost × weight(speed) × (1 + current actual load). Benchmarks score
// allocation tables against it via scheduler.Simulate.
func (e *Environment) TruthModel() scheduler.TimeModel {
	return func(task *afg.Task, host string) float64 {
		h := e.ResolveHost(host)
		if h == nil {
			return task.ComputeCost
		}
		return h.EffectiveSeconds(task.ComputeCost, 1/h.Spec.SpeedFactor)
	}
}

// SortedHostNames lists every host in the environment, sorted.
func (e *Environment) SortedHostNames() []string {
	var out []string
	for _, s := range e.sites {
		out = append(out, s.Pool.Names()...)
	}
	sort.Strings(out)
	return out
}
