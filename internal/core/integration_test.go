package core

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/afg"
	"repro/internal/site"
	"repro/internal/workload"
)

// TestEnvironmentUnderChurn is the repository's end-to-end stress test:
// live monitors, concurrent application submissions from different sites,
// socket-mode data movement, and a host failure in the middle — everything
// the paper's runtime is supposed to absorb, all at once, under -race.
func TestEnvironmentUnderChurn(t *testing.T) {
	env := NewEnvironment(Options{
		Seed:       99,
		SiteConfig: site.Config{UseSockets: true, GroupSize: 2},
	})
	for _, s := range []string{"syracuse", "rome", "nyc"} {
		if _, err := env.AddSite(s, 4); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	env.StartMonitors(ctx, 2*time.Millisecond)

	// Fail one host shortly after submissions begin.
	m, _ := env.Site("rome")
	victim := m.Pool.Names()[0]
	go func() {
		time.Sleep(5 * time.Millisecond)
		m.Pool.Get(victim).SetDown(true)
	}()

	const apps = 5
	var wg sync.WaitGroup
	errs := make([]error, apps)
	sites := env.Sites()
	for i := 0; i < apps; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			g := mustGraph(t, i)
			_, _, err := env.Submit(context.Background(), sites[i%len(sites)], g)
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("app %d failed under churn: %v", i, err)
		}
	}
	// After a monitoring round the repository must reflect the failure.
	deadline := time.After(2 * time.Second)
	for {
		rec, err := m.Repo.Resources.Get(victim)
		if err != nil {
			t.Fatal(err)
		}
		if rec.Dynamic.Down {
			break
		}
		select {
		case <-deadline:
			t.Fatal("failure never reached the repository")
		case <-time.After(2 * time.Millisecond):
		}
	}
}

func mustGraph(t *testing.T, i int) *afg.Graph {
	t.Helper()
	switch i % 3 {
	case 0:
		g, err := workload.LinearSolver(nil, 16, i, false, 0)
		if err != nil {
			t.Fatal(err)
		}
		return g
	case 1:
		g, err := workload.C3IScenario(nil, 3, 128, i)
		if err != nil {
			t.Fatal(err)
		}
		return g
	default:
		g, err := workload.FourierPipeline(nil, 256, 5+i, i)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
}
