package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/scheduler"
	"repro/internal/tasklib"
	"repro/internal/workload"
)

func newEnv(t *testing.T, sites ...string) *Environment {
	t.Helper()
	env := NewEnvironment(Options{Seed: 42})
	for _, s := range sites {
		if _, err := env.AddSite(s, 4); err != nil {
			t.Fatal(err)
		}
	}
	return env
}

func TestAddSiteAndLookup(t *testing.T) {
	env := newEnv(t, "syracuse", "rome")
	if _, err := env.AddSite("syracuse", 2); !errors.Is(err, ErrDuplicateSite) {
		t.Fatalf("err = %v", err)
	}
	if _, err := env.Site("nowhere"); !errors.Is(err, ErrUnknownSite) {
		t.Fatalf("err = %v", err)
	}
	if got := env.Sites(); len(got) != 2 || got[0] != "syracuse" {
		t.Fatalf("sites = %v", got)
	}
	if env.HostCount() != 8 {
		t.Fatalf("hosts = %d", env.HostCount())
	}
	if len(env.SortedHostNames()) != 8 {
		t.Fatal("host names incomplete")
	}
}

func TestWANWiredAutomatically(t *testing.T) {
	env := newEnv(t, "a", "b", "c")
	p := env.Net().Path("a", "b")
	if p.Latency <= 0 || p.Latency >= 100*time.Millisecond {
		t.Fatalf("a-b path = %v", p)
	}
	// c was added last: 10ms to a... distances grow with order.
	if env.Net().Path("c", "a").Latency != 10*time.Millisecond {
		t.Fatalf("c-a = %v", env.Net().Path("c", "a"))
	}
}

func TestSubmitLinearSolverAcrossSites(t *testing.T) {
	env := newEnv(t, "syracuse", "rome")
	g, err := workload.LinearSolver(nil, 32, 1, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, table, err := env.Submit(context.Background(), "syracuse", g)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Entries) != 5 {
		t.Fatalf("table = %d entries", len(table.Entries))
	}
	check := res.Outputs["check"]
	if check.Kind != tasklib.KindScalar || check.Scalar > 1e-8 {
		t.Fatalf("residual = %+v", check)
	}
	for _, a := range table.Entries {
		if env.ResolveHost(a.Host) == nil {
			t.Fatalf("assignment to unknown host %q", a.Host)
		}
	}
}

func TestSubmitC3IScenario(t *testing.T) {
	env := newEnv(t, "syracuse", "rome", "nyc")
	g, err := workload.C3IScenario(nil, 4, 256, 9)
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := env.Submit(context.Background(), "rome", g)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs["threat"].Kind != tasklib.KindScalar {
		t.Fatalf("threat output = %+v", res.Outputs["threat"])
	}
}

func TestSubmitUnknownSite(t *testing.T) {
	env := newEnv(t, "syracuse")
	g, _ := workload.LinearSolver(nil, 16, 1, false, 0)
	if _, _, err := env.Submit(context.Background(), "mars", g); !errors.Is(err, ErrUnknownSite) {
		t.Fatalf("err = %v", err)
	}
}

func TestSchedulerConstruction(t *testing.T) {
	env := newEnv(t, "syracuse", "rome")
	s, err := env.Scheduler("syracuse")
	if err != nil {
		t.Fatal(err)
	}
	g := workload.Pipeline(5, 0.1, 1024)
	table, err := s.Schedule(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Entries) != 5 {
		t.Fatalf("entries = %d", len(table.Entries))
	}
	mk, err := scheduler.Simulate(g, table, env.TruthModel(), env.Net())
	if err != nil {
		t.Fatal(err)
	}
	if mk <= 0 {
		t.Fatalf("makespan = %v", mk)
	}
}

func TestTruthModelFallsBackForUnknownHost(t *testing.T) {
	env := newEnv(t, "syracuse")
	g := workload.Pipeline(1, 2.5, 0)
	model := env.TruthModel()
	if got := model(g.Task("s000"), "ghost"); got != 2.5 {
		t.Fatalf("fallback = %v", got)
	}
}

func TestMonitoringAcrossEnvironment(t *testing.T) {
	env := newEnv(t, "syracuse", "rome")
	env.TickMonitors()
	for _, name := range env.Sites() {
		m, _ := env.Site(name)
		for _, rec := range m.Repo.Resources.List() {
			if rec.Dynamic.UpdatedAt.IsZero() {
				t.Fatalf("site %s host %s never measured", name, rec.Static.HostName)
			}
		}
	}
}

func TestFaultToleranceEndToEnd(t *testing.T) {
	env := newEnv(t, "syracuse")
	m, _ := env.Site("syracuse")
	// Fail half the site after the scheduler has seen it healthy.
	names := m.Pool.Names()
	for _, n := range names[:2] {
		m.Pool.Get(n).SetDown(true)
	}
	g, _ := workload.LinearSolver(nil, 16, 1, false, 0)
	res, _, err := env.Submit(context.Background(), "syracuse", g)
	if err != nil {
		t.Fatalf("execution should survive failures: %v", err)
	}
	for id, tr := range res.TaskResults {
		if tr.Host == names[0] || tr.Host == names[1] {
			t.Fatalf("task %s ran on failed host %s", id, tr.Host)
		}
	}
}
