package core

import (
	"context"
	"sort"
	"testing"

	"repro/internal/predict"
	"repro/internal/workload"
)

// Regression test for the failure mode examples/faulttolerance used to
// expose with a literal "<-- BUG" print: once a monitoring round has
// reported hosts down, (1) a new schedule must never place a task on a down
// host, and (2) the prediction cache must have evicted the down hosts'
// entries — not merely re-weighted them with downtime-era load.
func TestMonitorRoundExcludesDownHostsFromPlacement(t *testing.T) {
	env := NewEnvironment(Options{Seed: 13})
	m, err := env.AddSite("syracuse", 6)
	if err != nil {
		t.Fatal(err)
	}
	g, err := workload.LinearSolver(nil, 64, 2, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	_, table, err := env.Submit(ctx, "syracuse", g)
	if err != nil {
		t.Fatal(err)
	}

	// Fail the two hosts the scheduler liked best.
	used := map[string]bool{}
	for _, a := range table.Entries {
		used[a.Host] = true
	}
	victims := make([]string, 0, len(used))
	for h := range used {
		victims = append(victims, h)
	}
	sort.Strings(victims)
	if len(victims) > 2 {
		victims = victims[:2]
	}

	// Plant one sentinel cache entry per victim so eviction is directly
	// observable regardless of which keys the schedulers populated.
	gens := m.Cache.Generations()
	for _, h := range victims {
		k := predict.CacheKey{Kind: "sentinel", Resource: h}
		m.Cache.Store(k, predict.Inputs{BaseTime: 1}, gens[h])
		if _, ok := m.Cache.Lookup(k); !ok {
			t.Fatalf("sentinel for %s not stored", h)
		}
	}

	for _, h := range victims {
		m.Pool.Get(h).SetDown(true)
	}
	env.TickMonitors() // Fig 6 keep-alive: the repository learns of the failures

	res, table2, err := env.Submit(ctx, "syracuse", g)
	if err != nil {
		t.Fatal(err)
	}
	for id, a := range table2.Entries {
		if m.Pool.Get(a.Host).IsDown() {
			t.Errorf("task %s placed on down host %s after a monitoring round", id, a.Host)
		}
	}
	// The repository already knew, so the run needs no runtime retries.
	if res.Rescheduled != 0 || res.FrontierReplans != 0 {
		t.Errorf("informed schedule still rescheduled: per-task %d, frontier %d",
			res.Rescheduled, res.FrontierReplans)
	}

	for _, h := range victims {
		if _, ok := m.Cache.Lookup(predict.CacheKey{Kind: "sentinel", Resource: h}); ok {
			t.Errorf("prediction-cache entry for down host %s survived the monitoring round", h)
		}
	}
}

// TestMidFlightFailureRecoversViaFrontierReplan pins the other half of the
// story: hosts dying mid-flight — before any monitoring round — are handled
// by the runtime's frontier re-plan and the application still completes.
func TestMidFlightFailureRecoversViaFrontierReplan(t *testing.T) {
	env := NewEnvironment(Options{Seed: 13})
	m, err := env.AddSite("syracuse", 6)
	if err != nil {
		t.Fatal(err)
	}
	g, err := workload.LinearSolver(nil, 64, 2, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	_, table, err := env.Submit(ctx, "syracuse", g)
	if err != nil {
		t.Fatal(err)
	}
	used := map[string]bool{}
	for _, a := range table.Entries {
		used[a.Host] = true
	}
	victims := make([]string, 0, len(used))
	for h := range used {
		victims = append(victims, h)
	}
	sort.Strings(victims)
	if len(victims) > 2 {
		victims = victims[:2]
	}
	// Fail them without telling the repository: the next schedule walks
	// straight into the dead hosts and must recover at runtime.
	for _, h := range victims {
		m.Pool.Get(h).SetDown(true)
	}

	res, _, err := env.Submit(ctx, "syracuse", g)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rescheduled+res.FrontierReplans == 0 {
		t.Fatal("no rescheduling recorded despite dead hosts in the plan")
	}
	for id, tr := range res.TaskResults {
		if m.Pool.Get(tr.Host) != nil && m.Pool.Get(tr.Host).IsDown() {
			t.Errorf("task %s reported success on down host %s", id, tr.Host)
		}
	}
	if out := res.Outputs["check"]; out.Scalar > 1e-8 {
		t.Errorf("residual after recovery = %v", out.Scalar)
	}
}
