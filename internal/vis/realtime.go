package vis

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/runtime"
)

// Collector is the real-time visualization feed (§2.3.2: "real-time or
// post-mortem visualizations"): plug its Observe method into
// runtime.Options.OnTaskDone and render progress while the application is
// still running.
type Collector struct {
	mu      sync.Mutex
	total   int
	done    []runtime.TaskResult
	started time.Time
}

// NewCollector creates a feed for an application with total tasks.
func NewCollector(total int) *Collector {
	return &Collector{total: total, started: time.Now()}
}

// Observe records one task completion (safe for concurrent use; pass it as
// runtime.Options.OnTaskDone).
func (c *Collector) Observe(tr runtime.TaskResult) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.done = append(c.done, tr)
}

// Progress returns completed count, total, and elapsed wall time.
func (c *Collector) Progress() (done, total int, elapsed time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.done), c.total, time.Since(c.started)
}

// Render draws the live progress view.
func (c *Collector) Render() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var b strings.Builder
	frac := 0.0
	if c.total > 0 {
		frac = float64(len(c.done)) / float64(c.total)
	}
	fmt.Fprintf(&b, "progress %d/%d |%s| %v\n",
		len(c.done), c.total, bar(frac), time.Since(c.started).Round(time.Millisecond))
	for _, tr := range c.done {
		fmt.Fprintf(&b, "  done %-12s on %-14s in %v\n",
			tr.Task, tr.Host, tr.Elapsed.Round(time.Microsecond))
	}
	return b.String()
}
