package vis

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/afg"
	"repro/internal/repository"
	"repro/internal/runtime"
)

func sampleResult() *runtime.Result {
	return &runtime.Result{
		App:      "demo",
		Makespan: 3 * time.Millisecond,
		TaskResults: map[afg.TaskID]runtime.TaskResult{
			"a": {Task: "a", Host: "h1", Site: "syr", Elapsed: 2 * time.Millisecond, Attempts: 1},
			"b": {Task: "b", Host: "h2", Site: "syr", Elapsed: time.Millisecond, Attempts: 2},
			"c": {Task: "c", Host: "h1", Site: "syr", Attempts: 1, Err: errors.New("boom")},
		},
		Rescheduled: 1,
	}
}

func TestApplicationPerformance(t *testing.T) {
	out := ApplicationPerformance(sampleResult())
	for _, want := range []string{"demo", "h1", "h2", "rescheduled ×1", "ERROR: boom", "makespan"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// Task order is sorted.
	if strings.Index(out, "\na ") > strings.Index(out, "\nb ") {
		t.Fatalf("tasks unsorted:\n%s", out)
	}
}

func TestApplicationPerformanceCSV(t *testing.T) {
	out := ApplicationPerformanceCSV(sampleResult())
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if lines[0] != "task,host,site,elapsed_us,attempts,error" {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "a,h1,syr,2000,1,") {
		t.Fatalf("row = %q", lines[1])
	}
	if !strings.Contains(out, "boom") {
		t.Fatal("error column lost")
	}
}

func TestWorkload(t *testing.T) {
	recs := []repository.ResourceRecord{
		{Static: repository.ResourceStatic{HostName: "n1", Arch: "sgi"},
			Dynamic: repository.ResourceDynamic{Load: 1.5, AvailableMemory: 64 << 20}},
		{Static: repository.ResourceStatic{HostName: "n2", Arch: "alpha"},
			Dynamic: repository.ResourceDynamic{Load: 0.2, AvailableMemory: 128 << 20, Down: true}},
	}
	out := Workload(recs)
	for _, want := range []string{"n1", "sgi", "1.50", "DOWN", "64", "128"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestComparative(t *testing.T) {
	runs := []ComparativeRun{
		{Label: "1 host", Makespan: 8 * time.Second},
		{Label: "4 hosts", Makespan: 2 * time.Second},
	}
	out := Comparative("linsolver", runs)
	if !strings.Contains(out, "4.00x") {
		t.Fatalf("speedup missing:\n%s", out)
	}
	if !strings.Contains(out, "1.00x") {
		t.Fatalf("baseline speedup missing:\n%s", out)
	}
	if Comparative("x", nil) != "no runs\n" {
		t.Fatal("empty runs not handled")
	}
}

func TestSeriesRenderAndCSV(t *testing.T) {
	s := Series{
		Title:   "Fig 5 — host selection",
		XLabel:  "hosts",
		YLabels: []string{"vdce", "random"},
		Rows:    [][]float64{{4, 1.5, 3.2}, {8, 1.1, 3.0}},
	}
	out := s.Render()
	if !strings.Contains(out, "Fig 5") || !strings.Contains(out, "random") {
		t.Fatalf("render:\n%s", out)
	}
	csv := s.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if lines[0] != "hosts,vdce,random" {
		t.Fatalf("csv header = %q", lines[0])
	}
	if lines[1] != "4,1.5,3.2" {
		t.Fatalf("csv row = %q", lines[1])
	}
}

func TestBarClamping(t *testing.T) {
	if len(bar(2)) != barWidth {
		t.Fatal("bar over 1 should clamp")
	}
	if bar(-1) != strings.Repeat(".", barWidth) {
		t.Fatal("bar under 0 should be empty")
	}
	if bar(1) != strings.Repeat("#", barWidth) {
		t.Fatal("bar at 1 should be full")
	}
}
