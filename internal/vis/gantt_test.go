package vis

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/afg"
	"repro/internal/resource"
	"repro/internal/runtime"
	"repro/internal/scheduler"
	"repro/internal/workload"
)

func TestGanttKnownTimeline(t *testing.T) {
	base := time.Unix(1000, 0)
	res := &runtime.Result{
		App: "demo",
		TaskResults: map[afg.TaskID]runtime.TaskResult{
			"a": {Task: "a", Host: "h1", Started: base, Elapsed: 10 * time.Millisecond},
			"b": {Task: "b", Host: "h1", Started: base.Add(10 * time.Millisecond), Elapsed: 10 * time.Millisecond},
			"c": {Task: "c", Host: "h2", Started: base, Elapsed: 20 * time.Millisecond},
		},
	}
	out := Gantt(res, 40)
	if !strings.Contains(out, "h1") || !strings.Contains(out, "h2") {
		t.Fatalf("hosts missing:\n%s", out)
	}
	if !strings.Contains(out, "a = a") || !strings.Contains(out, "b = b") {
		t.Fatalf("legend missing:\n%s", out)
	}
	// h2's single task spans the whole width: no leading/trailing dots.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "h2") {
			if strings.Contains(line, ".") {
				t.Fatalf("h2 row should be fully busy: %q", line)
			}
		}
	}
}

func TestGanttEmptyAndErrored(t *testing.T) {
	out := Gantt(&runtime.Result{App: "x"}, 40)
	if out != "no completed tasks\n" {
		t.Fatalf("out = %q", out)
	}
	res := &runtime.Result{
		App: "y",
		TaskResults: map[afg.TaskID]runtime.TaskResult{
			"bad": {Task: "bad", Host: "h", Err: context.Canceled},
		},
	}
	if Gantt(res, 40) != "no completed tasks\n" {
		t.Fatal("errored tasks should not be drawn")
	}
}

func TestGanttFromRealExecution(t *testing.T) {
	g, err := workload.LinearSolver(nil, 32, 1, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	hosts := map[string]*resource.Host{
		"h1": resource.NewHost(resource.HostSpec{Name: "h1", TotalMemory: 1 << 30}, resource.LoadModel{}, 1),
		"h2": resource.NewHost(resource.HostSpec{Name: "h2", TotalMemory: 1 << 30}, resource.LoadModel{}, 2),
	}
	table := scheduler.NewAllocationTable(g.Name)
	for i, id := range g.TaskIDs() {
		h := "h1"
		if i%2 == 1 {
			h = "h2"
		}
		table.Set(scheduler.Assignment{Task: id, Site: "s", Host: h})
	}
	res, err := runtime.Execute(context.Background(), g, table, runtime.Options{
		Hosts: func(n string) *resource.Host { return hosts[n] },
	})
	if err != nil {
		t.Fatal(err)
	}
	out := Gantt(res, 60)
	for _, want := range []string{"h1", "h2", "lu", "solve"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
}
