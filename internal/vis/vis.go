// Package vis implements the VDCE visualization service (paper §2.3.2):
// application performance visualization (per-task execution times),
// workload visualization (up-to-date resource loads), and comparative
// visualization (the same application across hardware/software
// configurations). Rendering targets are plain text and CSV — the
// post-mortem path; the real-time path feeds from runtime.Options.OnTaskDone.
package vis

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/afg"
	"repro/internal/repository"
	"repro/internal/runtime"
)

// barWidth is the width of ASCII bars.
const barWidth = 40

func bar(frac float64) string {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	n := int(frac*barWidth + 0.5)
	return strings.Repeat("#", n) + strings.Repeat(".", barWidth-n)
}

// ApplicationPerformance renders the per-task execution-time view of one
// completed run ("the execution time of tasks in application ... is
// visualized").
func ApplicationPerformance(res *runtime.Result) string {
	var ids []afg.TaskID
	for id := range res.TaskResults {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var max time.Duration
	for _, id := range ids {
		if e := res.TaskResults[id].Elapsed; e > max {
			max = e
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Application %q — makespan %v, %d reschedules\n", res.App, res.Makespan.Round(time.Microsecond), res.Rescheduled)
	fmt.Fprintf(&b, "%-12s %-14s %12s  %s\n", "TASK", "HOST", "ELAPSED", "")
	for _, id := range ids {
		tr := res.TaskResults[id]
		frac := 0.0
		if max > 0 {
			frac = float64(tr.Elapsed) / float64(max)
		}
		status := ""
		if tr.Err != nil {
			status = " ERROR: " + tr.Err.Error()
		} else if tr.Attempts > 1 {
			status = fmt.Sprintf(" (rescheduled ×%d)", tr.Attempts-1)
		}
		fmt.Fprintf(&b, "%-12s %-14s %12v  |%s|%s\n",
			id, tr.Host, tr.Elapsed.Round(time.Microsecond), bar(frac), status)
	}
	return b.String()
}

// ApplicationPerformanceCSV renders the same data as CSV.
func ApplicationPerformanceCSV(res *runtime.Result) string {
	var ids []afg.TaskID
	for id := range res.TaskResults {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var b strings.Builder
	b.WriteString("task,host,site,elapsed_us,attempts,error\n")
	for _, id := range ids {
		tr := res.TaskResults[id]
		errStr := ""
		if tr.Err != nil {
			errStr = strings.ReplaceAll(tr.Err.Error(), ",", ";")
		}
		fmt.Fprintf(&b, "%s,%s,%s,%d,%d,%s\n",
			id, tr.Host, tr.Site, tr.Elapsed.Microseconds(), tr.Attempts, errStr)
	}
	return b.String()
}

// Workload renders the up-to-date load of every resource in a repository
// ("up-to-date workload information on VDCE resources is visualized").
func Workload(records []repository.ResourceRecord) string {
	var max float64 = 1
	for _, r := range records {
		if r.Dynamic.Load > max {
			max = r.Dynamic.Load
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %-9s %7s %9s  %s\n", "HOST", "ARCH", "LOAD", "MEM(MB)", "")
	for _, r := range records {
		state := ""
		if r.Dynamic.Down {
			state = " DOWN"
		}
		fmt.Fprintf(&b, "%-16s %-9s %7.2f %9d  |%s|%s\n",
			r.Static.HostName, r.Static.Arch, r.Dynamic.Load,
			r.Dynamic.AvailableMemory>>20, bar(r.Dynamic.Load/max), state)
	}
	return b.String()
}

// ComparativeRun is one configuration's outcome in a comparative view.
type ComparativeRun struct {
	Label    string        // configuration, e.g. "sequential 1 host"
	Makespan time.Duration // measured
}

// Comparative renders the paper's comparative performance visualization:
// "experiment and evaluate his/her application for different combinations
// of hardware and software medium". Speedup is relative to the first run.
func Comparative(app string, runs []ComparativeRun) string {
	if len(runs) == 0 {
		return "no runs\n"
	}
	base := runs[0].Makespan.Seconds()
	var max float64
	for _, r := range runs {
		if s := r.Makespan.Seconds(); s > max {
			max = s
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Comparative visualization — %s\n", app)
	fmt.Fprintf(&b, "%-28s %12s %8s  %s\n", "CONFIGURATION", "MAKESPAN", "SPEEDUP", "")
	for _, r := range runs {
		s := r.Makespan.Seconds()
		speedup := 0.0
		if s > 0 {
			speedup = base / s
		}
		frac := 0.0
		if max > 0 {
			frac = s / max
		}
		fmt.Fprintf(&b, "%-28s %12v %7.2fx  |%s|\n",
			r.Label, r.Makespan.Round(time.Microsecond), speedup, bar(frac))
	}
	return b.String()
}

// Series renders a generic (x, y) benchmark series as an aligned table —
// the common shape of the cmd/vdce-bench experiment reports.
type Series struct {
	Title   string
	XLabel  string
	YLabels []string
	Rows    [][]float64 // each row: x followed by len(YLabels) values
}

// Render formats the series.
func (s Series) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", s.Title)
	fmt.Fprintf(&b, "%-14s", s.XLabel)
	for _, y := range s.YLabels {
		fmt.Fprintf(&b, " %14s", y)
	}
	b.WriteByte('\n')
	for _, row := range s.Rows {
		if len(row) == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-14.4g", row[0])
		for _, v := range row[1:] {
			fmt.Fprintf(&b, " %14.5g", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the series as CSV.
func (s Series) CSV() string {
	var b strings.Builder
	b.WriteString(strings.ReplaceAll(s.XLabel, ",", ";"))
	for _, y := range s.YLabels {
		b.WriteByte(',')
		b.WriteString(strings.ReplaceAll(y, ",", ";"))
	}
	b.WriteByte('\n')
	for _, row := range s.Rows {
		for i, v := range row {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%g", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
