package vis

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/resource"
	"repro/internal/runtime"
	"repro/internal/scheduler"
	"repro/internal/workload"
)

func TestCollectorStandalone(t *testing.T) {
	c := NewCollector(3)
	done, total, _ := c.Progress()
	if done != 0 || total != 3 {
		t.Fatalf("progress = %d/%d", done, total)
	}
	c.Observe(runtime.TaskResult{Task: "a", Host: "h1", Elapsed: time.Millisecond})
	c.Observe(runtime.TaskResult{Task: "b", Host: "h2", Elapsed: 2 * time.Millisecond})
	out := c.Render()
	if !strings.Contains(out, "progress 2/3") {
		t.Fatalf("render:\n%s", out)
	}
	if !strings.Contains(out, "done a") || !strings.Contains(out, "h2") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestCollectorConcurrent(t *testing.T) {
	c := NewCollector(100)
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				c.Observe(runtime.TaskResult{Task: "t"})
				c.Render()
			}
		}()
	}
	wg.Wait()
	if done, _, _ := c.Progress(); done != 100 {
		t.Fatalf("done = %d", done)
	}
}

// TestCollectorAsRuntimeFeed wires the collector into a real execution.
func TestCollectorAsRuntimeFeed(t *testing.T) {
	g, err := workload.LinearSolver(nil, 16, 1, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	host := resource.NewHost(resource.HostSpec{Name: "h", TotalMemory: 1 << 30},
		resource.LoadModel{}, 1)
	table := scheduler.NewAllocationTable(g.Name)
	for _, id := range g.TaskIDs() {
		table.Set(scheduler.Assignment{Task: id, Site: "s", Host: "h"})
	}
	c := NewCollector(g.Len())
	_, err = runtime.Execute(context.Background(), g, table, runtime.Options{
		Hosts:      func(string) *resource.Host { return host },
		OnTaskDone: c.Observe,
	})
	if err != nil {
		t.Fatal(err)
	}
	done, total, _ := c.Progress()
	if done != total || done != g.Len() {
		t.Fatalf("collector saw %d/%d", done, total)
	}
}
