package vis

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/runtime"
)

// Gantt renders the post-mortem timeline view of one application run: one
// row per host, task execution intervals drawn to scale. This is the
// "post-mortem visualization" half of the paper's visualization service —
// it makes host serialisation, overlap, and reschedule delays visible.
func Gantt(res *runtime.Result, width int) string {
	if width < 20 {
		width = 60
	}
	type span struct {
		task       string
		start, end time.Duration
	}
	// Collect spans relative to the earliest start.
	var t0 time.Time
	first := true
	//vdce:ignore maporder earliest-start fold: the minimum of a set does not depend on visit order
	for _, tr := range res.TaskResults {
		if tr.Err != nil || tr.Started.IsZero() {
			continue
		}
		if first || tr.Started.Before(t0) {
			t0 = tr.Started
			first = false
		}
	}
	if first {
		return "no completed tasks\n"
	}
	byHost := map[string][]span{}
	var total time.Duration
	//vdce:ignore maporder per-host span lists are sorted by start before rendering; total is a max fold
	for _, tr := range res.TaskResults {
		if tr.Err != nil || tr.Started.IsZero() {
			continue
		}
		s := tr.Started.Sub(t0)
		e := s + tr.Elapsed
		byHost[tr.Host] = append(byHost[tr.Host], span{string(tr.Task), s, e})
		if e > total {
			total = e
		}
	}
	if total <= 0 {
		total = time.Microsecond
	}
	hosts := make([]string, 0, len(byHost))
	for h := range byHost {
		hosts = append(hosts, h)
	}
	sort.Strings(hosts)

	var b strings.Builder
	fmt.Fprintf(&b, "Timeline %q — %v total\n", res.App, total.Round(time.Microsecond))
	scale := func(d time.Duration) int {
		p := int(float64(d) / float64(total) * float64(width))
		if p < 0 {
			p = 0
		}
		if p > width {
			p = width
		}
		return p
	}
	for _, h := range hosts {
		spans := byHost[h]
		sort.Slice(spans, func(i, j int) bool {
			if spans[i].start != spans[j].start {
				return spans[i].start < spans[j].start
			}
			return spans[i].task < spans[j].task
		})
		row := []byte(strings.Repeat(".", width))
		for i, sp := range spans {
			lo, hi := scale(sp.start), scale(sp.end)
			if hi <= lo {
				hi = lo + 1
				if hi > width {
					lo, hi = width-1, width
				}
			}
			mark := byte('a' + i%26)
			for p := lo; p < hi; p++ {
				row[p] = mark
			}
		}
		fmt.Fprintf(&b, "%-16s |%s|\n", h, row)
		for i, sp := range spans {
			fmt.Fprintf(&b, "%16s   %c = %s [%v → %v]\n", "",
				byte('a'+i%26), sp.task,
				sp.start.Round(time.Microsecond), sp.end.Round(time.Microsecond))
		}
	}
	return b.String()
}
