// Package monitor implements the Resource Controller's monitoring plane
// (paper §2.3.1, Fig 6): a Monitor daemon per VDCE machine that periodically
// measures processor parameters, a Group Manager per host group that
// aggregates measurements, forwards only *significantly changed* workloads
// to the Site Manager (the confidence-interval rule), probes group members
// with echo packets to detect node failures, and measures intra-group
// network parameters.
package monitor

import (
	"context"
	"sync"
	"time"

	"repro/internal/netsim"
	"repro/internal/predict"
	"repro/internal/resource"
)

// Measurement is one Monitor-daemon reading: "up-to-date processor
// parameters, i.e., CPU load and memory availability".
type Measurement struct {
	Host     string
	Load     float64
	AvailMem int64
	At       time.Time
}

// Daemon is the per-host Monitor daemon. Measure advances the host's
// synthetic background-load process and reports the current parameters;
// the Group Manager polls it every period.
type Daemon struct {
	Host *resource.Host
}

// Measure takes one reading at the given timestamp.
func (d *Daemon) Measure(at time.Time) Measurement {
	load := d.Host.StepLoad()
	return Measurement{
		Host:     d.Host.Spec.Name,
		Load:     load,
		AvailMem: d.Host.AvailableMemory(),
		At:       at,
	}
}

// Sink receives the Group Manager's filtered output; the Site Manager
// implements it by updating the site repository.
type Sink interface {
	// UpdateWorkload delivers a significantly changed measurement.
	UpdateWorkload(m Measurement)
	// HostDown reports a detected node failure.
	HostDown(host string, at time.Time)
	// HostUp reports a node answering echoes again after being down.
	HostUp(host string, at time.Time)
}

// Stats counts monitoring traffic; the Fig 6 benchmark reads these to
// quantify how much update traffic the change filter saves.
type Stats struct {
	Measurements int // readings taken by Monitor daemons
	Forwarded    int // measurements forwarded to the Site Manager
	EchoProbes   int // echo packets sent
	FailuresSeen int // host-down transitions detected
	RecoverySeen int // host-up transitions detected
}

// Config tunes the Group Manager.
type Config struct {
	// WindowSize is the number of recent measurements kept per host for
	// the confidence-interval computation.
	WindowSize int
	// ConfidenceZ is the z-multiplier for the interval half-width
	// (1.96 ≈ 95%).
	ConfidenceZ float64
	// DisableFilter forwards every measurement (the ablation baseline).
	DisableFilter bool
}

// DefaultConfig matches the paper's description with a 95% interval.
var DefaultConfig = Config{WindowSize: 16, ConfidenceZ: 1.96}

type hostState struct {
	daemon    *Daemon
	window    *predict.Window
	lastSent  float64
	sentOnce  bool
	down      bool
	netLat    time.Duration // last measured intra-group latency
	netRateBs float64       // last measured intra-group transfer rate
}

// resetFilter discards the change-filter state. Called on a down→up
// recovery: the window, lastSent, and sentOnce all describe the pre-failure
// workload, and keeping them can suppress the first post-recovery
// measurement as "insignificant" while the repository still holds
// downtime-era values. A rebooted machine is a fresh population — the first
// fresh measurement must always forward.
func (st *hostState) resetFilter(windowSize int) {
	st.window = predict.NewWindow(windowSize)
	st.lastSent = 0
	st.sentOnce = false
}

// PathProber measures one site-to-site network path. *netsim.Network
// implements it; tests substitute call-counting stubs via SetPathProber.
type PathProber interface {
	Path(a, b string) netsim.PathSpec
}

// GroupManager aggregates one host group. The group-leader machine runs it;
// the Site Manager receives its filtered updates and failure reports.
type GroupManager struct {
	Name string

	mu     sync.Mutex
	cfg    Config
	sink   Sink
	net    PathProber
	site   string
	hosts  map[string]*hostState
	order  []string
	stats  Stats
	nowFun func() time.Time
}

// NewGroupManager builds a manager for the given hosts. net may be nil
// (network parameter measurement then reports zeros).
func NewGroupManager(name, site string, hosts []*resource.Host, sink Sink, cfg Config, net *netsim.Network) *GroupManager {
	if cfg.WindowSize <= 0 {
		cfg.WindowSize = DefaultConfig.WindowSize
	}
	if cfg.ConfidenceZ <= 0 {
		cfg.ConfidenceZ = DefaultConfig.ConfidenceZ
	}
	gm := &GroupManager{
		Name:   name,
		cfg:    cfg,
		sink:   sink,
		site:   site,
		hosts:  make(map[string]*hostState, len(hosts)),
		nowFun: time.Now,
	}
	if net != nil { // avoid a typed-nil PathProber
		gm.net = net
	}
	for _, h := range hosts {
		gm.hosts[h.Spec.Name] = &hostState{
			daemon: &Daemon{Host: h},
			window: predict.NewWindow(cfg.WindowSize),
		}
		gm.order = append(gm.order, h.Spec.Name)
	}
	return gm
}

// SetPathProber overrides the network-path source (call-counting test
// stubs). Passing nil disables network measurement.
func (gm *GroupManager) SetPathProber(p PathProber) {
	gm.mu.Lock()
	defer gm.mu.Unlock()
	gm.net = p
}

// SetClock overrides the time source (deterministic tests).
func (gm *GroupManager) SetClock(now func() time.Time) {
	gm.mu.Lock()
	defer gm.mu.Unlock()
	gm.nowFun = now
}

// Tick performs one monitoring round synchronously:
//  1. every Monitor daemon measures its host,
//  2. significantly changed workloads are forwarded to the sink,
//  3. echo probes detect failures/recoveries,
//  4. intra-group network parameters are refreshed.
//
// Run calls Tick on a period; benchmarks call it directly.
func (gm *GroupManager) Tick() {
	gm.mu.Lock()
	defer gm.mu.Unlock()
	now := gm.nowFun()
	// Echo round-trips double as network measurement within the group
	// ("these packets are used ... to measure the network parameters").
	// The probes all traverse the same intra-group path, so one measurement
	// per round covers every alive host — not one per host.
	var path netsim.PathSpec
	if gm.net != nil {
		path = gm.net.Path(gm.site, gm.site)
	}
	for _, name := range gm.order {
		st := gm.hosts[name]

		// Echo probe first: a down host cannot report measurements.
		gm.stats.EchoProbes++
		if st.daemon.Host.IsDown() {
			if !st.down {
				st.down = true
				gm.stats.FailuresSeen++
				gm.sink.HostDown(name, now)
			}
			continue
		}
		if st.down {
			st.down = false
			st.resetFilter(gm.cfg.WindowSize)
			gm.stats.RecoverySeen++
			gm.sink.HostUp(name, now)
		}

		m := st.daemon.Measure(now)
		gm.stats.Measurements++

		if gm.net != nil {
			st.netLat = path.Latency
			st.netRateBs = path.Bandwidth
		}

		width := st.window.ConfidenceWidth(gm.cfg.ConfidenceZ)
		significant := gm.cfg.DisableFilter || !st.sentOnce ||
			predict.SignificantChange(st.lastSent, m.Load, width)
		st.window.Observe(m.Load)
		if significant {
			st.lastSent = m.Load
			st.sentOnce = true
			gm.stats.Forwarded++
			gm.sink.UpdateWorkload(m)
		}
	}
}

// Run ticks until the context is cancelled.
func (gm *GroupManager) Run(ctx context.Context, period time.Duration) {
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			gm.Tick()
		}
	}
}

// Stats returns a copy of the traffic counters.
func (gm *GroupManager) Stats() Stats {
	gm.mu.Lock()
	defer gm.mu.Unlock()
	return gm.stats
}

// NetworkParams returns the last measured intra-group latency and transfer
// rate for a host (zero values when unmeasured).
func (gm *GroupManager) NetworkParams(host string) (time.Duration, float64) {
	gm.mu.Lock()
	defer gm.mu.Unlock()
	st, ok := gm.hosts[host]
	if !ok {
		return 0, 0
	}
	return st.netLat, st.netRateBs
}

// Hosts returns the group's host names in order.
func (gm *GroupManager) Hosts() []string {
	gm.mu.Lock()
	defer gm.mu.Unlock()
	return append([]string(nil), gm.order...)
}
