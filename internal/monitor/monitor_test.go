package monitor

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/resource"
)

// recordingSink captures everything the Group Manager forwards.
type recordingSink struct {
	mu        sync.Mutex
	updates   []Measurement
	downs     []string
	ups       []string
	downTimes []time.Time
}

func (s *recordingSink) UpdateWorkload(m Measurement) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.updates = append(s.updates, m)
}
func (s *recordingSink) HostDown(h string, at time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.downs = append(s.downs, h)
	s.downTimes = append(s.downTimes, at)
}
func (s *recordingSink) HostUp(h string, at time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ups = append(s.ups, h)
}
func (s *recordingSink) counts() (int, int, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.updates), len(s.downs), len(s.ups)
}

func quietHost(name string, seed int64) *resource.Host {
	// Zero volatility: load is exactly constant, so after the first
	// forwarded measurement every subsequent one must be filtered.
	return resource.NewHost(resource.HostSpec{Name: name, Site: "syr", TotalMemory: 1 << 26},
		resource.LoadModel{Baseline: 0.5, Volatility: 0, Rho: 0.9}, seed)
}

func noisyHost(name string, seed int64) *resource.Host {
	return resource.NewHost(resource.HostSpec{Name: name, Site: "syr", TotalMemory: 1 << 26},
		resource.LoadModel{Baseline: 0.5, Volatility: 0.6, Rho: 0.2}, seed)
}

func TestDaemonMeasure(t *testing.T) {
	h := quietHost("h1", 1)
	d := &Daemon{Host: h}
	at := time.Unix(42, 0)
	m := d.Measure(at)
	if m.Host != "h1" || !m.At.Equal(at) {
		t.Fatalf("m = %+v", m)
	}
	if m.AvailMem != 1<<26 {
		t.Fatalf("mem = %d", m.AvailMem)
	}
	if m.Load < 0 {
		t.Fatalf("load = %v", m.Load)
	}
}

func TestFirstMeasurementAlwaysForwarded(t *testing.T) {
	sink := &recordingSink{}
	gm := NewGroupManager("g1", "syr", []*resource.Host{quietHost("h1", 1)}, sink, DefaultConfig, nil)
	gm.Tick()
	if u, _, _ := sink.counts(); u != 1 {
		t.Fatalf("updates = %d, want 1", u)
	}
}

func TestChangeFilterSuppressesQuietHosts(t *testing.T) {
	sink := &recordingSink{}
	hosts := []*resource.Host{quietHost("h1", 1), quietHost("h2", 2)}
	gm := NewGroupManager("g1", "syr", hosts, sink, DefaultConfig, nil)
	const rounds = 60
	for i := 0; i < rounds; i++ {
		gm.Tick()
	}
	st := gm.Stats()
	if st.Measurements != rounds*2 {
		t.Fatalf("measurements = %d", st.Measurements)
	}
	// A constant-load host forwards exactly its first measurement.
	if st.Forwarded != 2 {
		t.Fatalf("filter ineffective: %d of %d forwarded, want 2", st.Forwarded, st.Measurements)
	}
}

func TestDisableFilterForwardsEverything(t *testing.T) {
	sink := &recordingSink{}
	cfg := DefaultConfig
	cfg.DisableFilter = true
	gm := NewGroupManager("g1", "syr", []*resource.Host{quietHost("h1", 1)}, sink, cfg, nil)
	for i := 0; i < 20; i++ {
		gm.Tick()
	}
	st := gm.Stats()
	if st.Forwarded != st.Measurements {
		t.Fatalf("forwarded %d of %d with filter disabled", st.Forwarded, st.Measurements)
	}
}

func TestNoisyHostForwardsMore(t *testing.T) {
	quiet := &recordingSink{}
	gmQ := NewGroupManager("g", "syr", []*resource.Host{quietHost("h", 1)}, quiet, DefaultConfig, nil)
	noisy := &recordingSink{}
	gmN := NewGroupManager("g", "syr", []*resource.Host{noisyHost("h", 1)}, noisy, DefaultConfig, nil)
	for i := 0; i < 80; i++ {
		gmQ.Tick()
		gmN.Tick()
	}
	q, n := gmQ.Stats().Forwarded, gmN.Stats().Forwarded
	if n <= q {
		t.Fatalf("noisy host (%d) should forward more than quiet host (%d)", n, q)
	}
}

func TestFailureDetectionAndRecovery(t *testing.T) {
	sink := &recordingSink{}
	h := quietHost("h1", 1)
	gm := NewGroupManager("g1", "syr", []*resource.Host{h}, sink, DefaultConfig, nil)
	gm.Tick()
	h.SetDown(true)
	gm.Tick()
	gm.Tick() // second tick must not re-report
	_, downs, ups := sink.counts()
	if downs != 1 {
		t.Fatalf("downs = %d, want 1", downs)
	}
	if ups != 0 {
		t.Fatalf("ups = %d", ups)
	}
	h.SetDown(false)
	gm.Tick()
	_, downs, ups = sink.counts()
	if downs != 1 || ups != 1 {
		t.Fatalf("downs=%d ups=%d after recovery", downs, ups)
	}
	st := gm.Stats()
	if st.FailuresSeen != 1 || st.RecoverySeen != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// A recovered host must forward its first fresh measurement: the change
// filter's pre-failure state (window, lastSent, sentOnce) describes a
// workload from before the outage and may not suppress the first
// post-recovery reading — the repository still holds downtime-era values.
func TestRecoveryResetsFilterState(t *testing.T) {
	sink := &recordingSink{}
	h := quietHost("h1", 1)
	gm := NewGroupManager("g1", "syr", []*resource.Host{h}, sink, DefaultConfig, nil)
	// Settle the filter: first tick forwards, the rest are suppressed
	// (the host's load is exactly constant).
	for i := 0; i < 20; i++ {
		gm.Tick()
	}
	before, _, _ := sink.counts()
	if before != 1 {
		t.Fatalf("pre-failure updates = %d, want 1", before)
	}

	h.SetDown(true)
	gm.Tick() // failure detected
	h.SetDown(false)
	gm.Tick() // recovery: the first fresh measurement must forward

	after, downs, ups := sink.counts()
	if downs != 1 || ups != 1 {
		t.Fatalf("downs=%d ups=%d", downs, ups)
	}
	if after != before+1 {
		t.Fatalf("first post-recovery measurement suppressed: updates %d, want %d", after, before+1)
	}
	// The forwarded measurement is the recovery-tick reading.
	sink.mu.Lock()
	last := sink.updates[len(sink.updates)-1]
	sink.mu.Unlock()
	if last.Host != "h1" {
		t.Fatalf("forwarded measurement %+v", last)
	}
}

// countingProber counts Path calls; the Group Manager's echo probes all
// traverse the same intra-group path, so Tick must measure it once per
// round, not once per alive host.
type countingProber struct {
	calls int
	spec  netsim.PathSpec
}

func (p *countingProber) Path(a, b string) netsim.PathSpec {
	p.calls++
	return p.spec
}

func TestNetworkMeasuredOncePerTick(t *testing.T) {
	sink := &recordingSink{}
	hosts := []*resource.Host{
		quietHost("h1", 1), quietHost("h2", 2), quietHost("h3", 3), quietHost("h4", 4),
	}
	gm := NewGroupManager("g1", "syr", hosts, sink, DefaultConfig, nil)
	probe := &countingProber{spec: netsim.PathSpec{Latency: time.Millisecond, Bandwidth: 5e6}}
	gm.SetPathProber(probe)

	const rounds = 3
	for i := 0; i < rounds; i++ {
		gm.Tick()
	}
	if probe.calls != rounds {
		t.Fatalf("Path called %d times over %d rounds with %d hosts, want once per round",
			probe.calls, rounds, len(hosts))
	}
	// Every alive host still carries the measured parameters.
	for _, h := range []string{"h1", "h2", "h3", "h4"} {
		lat, rate := gm.NetworkParams(h)
		//vdce:ignore floateq pass-through assertion: the stubbed bandwidth is copied, never recomputed
		if lat != probe.spec.Latency || rate != probe.spec.Bandwidth {
			t.Fatalf("host %s: lat=%v rate=%v", h, lat, rate)
		}
	}
}

func TestDownHostNotMeasured(t *testing.T) {
	sink := &recordingSink{}
	h := quietHost("h1", 1)
	h.SetDown(true)
	gm := NewGroupManager("g1", "syr", []*resource.Host{h}, sink, DefaultConfig, nil)
	gm.Tick()
	st := gm.Stats()
	if st.Measurements != 0 {
		t.Fatalf("down host was measured: %+v", st)
	}
	if st.EchoProbes != 1 {
		t.Fatalf("echo probes = %d", st.EchoProbes)
	}
}

func TestNetworkParamsMeasured(t *testing.T) {
	sink := &recordingSink{}
	net := netsim.New(netsim.DefaultLAN, 1)
	gm := NewGroupManager("g1", "syr", []*resource.Host{quietHost("h1", 1)}, sink, DefaultConfig, net)
	gm.Tick()
	lat, rate := gm.NetworkParams("h1")
	//vdce:ignore floateq pass-through assertion: the configured bandwidth is copied, never recomputed
	if lat != netsim.DefaultLAN.Latency || rate != netsim.DefaultLAN.Bandwidth {
		t.Fatalf("lat=%v rate=%v", lat, rate)
	}
	if l, r := gm.NetworkParams("ghost"); l != 0 || r != 0 {
		t.Fatal("unknown host should report zeros")
	}
}

func TestSetClock(t *testing.T) {
	sink := &recordingSink{}
	h := quietHost("h1", 1)
	gm := NewGroupManager("g1", "syr", []*resource.Host{h}, sink, DefaultConfig, nil)
	fixed := time.Unix(1000, 0)
	gm.SetClock(func() time.Time { return fixed })
	h.SetDown(true)
	gm.Tick()
	sink.mu.Lock()
	defer sink.mu.Unlock()
	if len(sink.downTimes) != 1 || !sink.downTimes[0].Equal(fixed) {
		t.Fatalf("down time = %v", sink.downTimes)
	}
}

func TestRunLoop(t *testing.T) {
	sink := &recordingSink{}
	gm := NewGroupManager("g1", "syr", []*resource.Host{noisyHost("h1", 1)}, sink, DefaultConfig, nil)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		gm.Run(ctx, time.Millisecond)
		close(done)
	}()
	deadline := time.After(2 * time.Second)
	for gm.Stats().Measurements < 5 {
		select {
		case <-deadline:
			t.Fatal("Run did not tick")
		case <-time.After(time.Millisecond):
		}
	}
	cancel()
	<-done
}

func TestHostsOrder(t *testing.T) {
	hosts := []*resource.Host{quietHost("b", 1), quietHost("a", 2)}
	gm := NewGroupManager("g1", "syr", hosts, &recordingSink{}, DefaultConfig, nil)
	got := gm.Hosts()
	if len(got) != 2 || got[0] != "b" || got[1] != "a" {
		t.Fatalf("hosts = %v (insertion order expected)", got)
	}
}
