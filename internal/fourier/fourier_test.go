package fourier

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func approxEqual(a, b []complex128, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if cmplx.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}

func TestIsPowerOfTwo(t *testing.T) {
	for _, n := range []int{1, 2, 4, 1024} {
		if !IsPowerOfTwo(n) {
			t.Errorf("IsPowerOfTwo(%d) = false", n)
		}
	}
	for _, n := range []int{0, -2, 3, 6, 1000} {
		if IsPowerOfTwo(n) {
			t.Errorf("IsPowerOfTwo(%d) = true", n)
		}
	}
}

func TestNextPowerOfTwo(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 5: 8, 1023: 1024, 1024: 1024}
	for in, want := range cases {
		if got := NextPowerOfTwo(in); got != want {
			t.Errorf("NextPowerOfTwo(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestFFTMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 4, 8, 16, 64} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		fast, err := FFT(x)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		slow := DFTNaive(x)
		if !approxEqual(fast, slow, 1e-9*float64(n)) {
			t.Fatalf("n=%d: FFT != DFT", n)
		}
	}
}

func TestFFTRejectsNonPowerOfTwo(t *testing.T) {
	if _, err := FFT(make([]complex128, 3)); err != ErrLength {
		t.Fatalf("err = %v, want ErrLength", err)
	}
	if _, err := FFT(nil); err != ErrLength {
		t.Fatalf("err = %v, want ErrLength", err)
	}
}

func TestFFTDoesNotModifyInput(t *testing.T) {
	x := []complex128{1, 2, 3, 4}
	orig := append([]complex128(nil), x...)
	if _, err := FFT(x); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if x[i] != orig[i] {
			t.Fatal("FFT modified its input")
		}
	}
}

func TestIFFTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := make([]complex128, 128)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	f, err := FFT(x)
	if err != nil {
		t.Fatal(err)
	}
	back, err := IFFT(f)
	if err != nil {
		t.Fatal(err)
	}
	if !approxEqual(back, x, 1e-9) {
		t.Fatal("IFFT(FFT(x)) != x")
	}
}

func TestFFTImpulse(t *testing.T) {
	// FFT of a unit impulse is flat ones.
	x := make([]complex128, 8)
	x[0] = 1
	f, err := FFT(x)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range f {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("bin %d = %v, want 1", i, v)
		}
	}
}

func TestFFTParsevalTheorem(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 256
	x := make([]complex128, n)
	var timeEnergy float64
	for i := range x {
		x[i] = complex(rng.NormFloat64(), 0)
		timeEnergy += real(x[i]) * real(x[i])
	}
	f, err := FFT(x)
	if err != nil {
		t.Fatal(err)
	}
	var freqEnergy float64
	for _, v := range f {
		freqEnergy += real(v)*real(v) + imag(v)*imag(v)
	}
	freqEnergy /= float64(n)
	if math.Abs(timeEnergy-freqEnergy) > 1e-8*timeEnergy {
		t.Fatalf("Parseval violated: %g vs %g", timeEnergy, freqEnergy)
	}
}

func TestFFTRealPadsToPowerOfTwo(t *testing.T) {
	f, err := FFTReal([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(f) != 4 {
		t.Fatalf("len = %d, want 4", len(f))
	}
	if _, err := FFTReal(nil); err != ErrLength {
		t.Fatalf("err = %v", err)
	}
}

func TestConvolveKnown(t *testing.T) {
	// (1 + 2x) * (3 + 4x) = 3 + 10x + 8x²
	out, err := Convolve([]float64{1, 2}, []float64{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 10, 8}
	if len(out) != len(want) {
		t.Fatalf("len = %d", len(out))
	}
	for i := range want {
		if math.Abs(out[i]-want[i]) > 1e-9 {
			t.Fatalf("out[%d] = %v, want %v", i, out[i], want[i])
		}
	}
}

func TestConvolveMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := make([]float64, 17)
	b := make([]float64, 9)
	for i := range a {
		a[i] = rng.NormFloat64()
	}
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	fast, err := Convolve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	direct := make([]float64, len(a)+len(b)-1)
	for i := range a {
		for j := range b {
			direct[i+j] += a[i] * b[j]
		}
	}
	for i := range direct {
		if math.Abs(fast[i]-direct[i]) > 1e-8 {
			t.Fatalf("bin %d: %v vs %v", i, fast[i], direct[i])
		}
	}
}

func TestConvolveEmpty(t *testing.T) {
	if _, err := Convolve(nil, []float64{1}); err != ErrLength {
		t.Fatalf("err = %v", err)
	}
}

func TestPowerSpectrumAndDominantFrequency(t *testing.T) {
	// Pure tone at bin 5 of a 64-sample frame.
	n := 64
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * 5 * float64(i) / float64(n))
	}
	k, err := DominantFrequency(x)
	if err != nil {
		t.Fatal(err)
	}
	if k != 5 {
		t.Fatalf("dominant bin = %d, want 5", k)
	}
	ps, err := PowerSpectrum(x)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != n/2+1 {
		t.Fatalf("spectrum length %d", len(ps))
	}
}

// Property: FFT is linear — FFT(a*x + b*y) == a*FFT(x) + b*FFT(y).
func TestPropertyFFTLinearity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (1 + rng.Intn(6))
		x := make([]complex128, n)
		y := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			y[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		a := complex(rng.NormFloat64(), 0)
		b := complex(rng.NormFloat64(), 0)
		mix := make([]complex128, n)
		for i := range mix {
			mix[i] = a*x[i] + b*y[i]
		}
		fm, err := FFT(mix)
		if err != nil {
			return false
		}
		fx, _ := FFT(x)
		fy, _ := FFT(y)
		for i := range fm {
			if cmplx.Abs(fm[i]-(a*fx[i]+b*fy[i])) > 1e-8*float64(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: round trip holds for arbitrary power-of-two lengths.
func TestPropertyRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << rng.Intn(9)
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		fw, err := FFT(x)
		if err != nil {
			return false
		}
		back, err := IFFT(fw)
		if err != nil {
			return false
		}
		return approxEqual(back, x, 1e-8*float64(n+1))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFFT1024(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	x := make([]complex128, 1024)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FFT(x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConvolve4096(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	x := make([]float64, 4096)
	y := make([]float64, 512)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	for i := range y {
		y[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Convolve(x, y); err != nil {
			b.Fatal(err)
		}
	}
}
