// Package fourier provides the Fourier-analysis substrate for the VDCE task
// libraries: an iterative radix-2 FFT, inverse FFT, convolution via FFT, and
// power-spectrum computation. The paper lists "Fourier analysis" among the
// functional task-library groups the Application Editor exposes.
package fourier

import (
	"errors"
	"math"
	"math/cmplx"
)

// ErrLength is returned when an input length is not a power of two (for the
// radix-2 transform) or operands disagree in length.
var ErrLength = errors.New("fourier: length must be a nonzero power of two")

// IsPowerOfTwo reports whether n is a positive power of two.
func IsPowerOfTwo(n int) bool { return n > 0 && n&(n-1) == 0 }

// NextPowerOfTwo returns the smallest power of two >= n (n >= 1).
func NextPowerOfTwo(n int) int {
	if n <= 1 {
		return 1
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// FFT computes the in-order discrete Fourier transform of x using an
// iterative radix-2 Cooley-Tukey algorithm. len(x) must be a power of two.
// The input slice is not modified.
func FFT(x []complex128) ([]complex128, error) {
	return transform(x, false)
}

// IFFT computes the inverse DFT (including the 1/N scaling).
func IFFT(x []complex128) ([]complex128, error) {
	out, err := transform(x, true)
	if err != nil {
		return nil, err
	}
	n := complex(float64(len(out)), 0)
	for i := range out {
		out[i] /= n
	}
	return out, nil
}

func transform(x []complex128, inverse bool) ([]complex128, error) {
	n := len(x)
	if !IsPowerOfTwo(n) {
		return nil, ErrLength
	}
	out := make([]complex128, n)
	// Bit-reversal permutation.
	bits := 0
	for 1<<bits < n {
		bits++
	}
	for i := 0; i < n; i++ {
		out[reverseBits(i, bits)] = x[i]
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		step := sign * 2 * math.Pi / float64(size)
		wstep := cmplx.Exp(complex(0, step))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				even := out[start+k]
				odd := out[start+k+half] * w
				out[start+k] = even + odd
				out[start+k+half] = even - odd
				w *= wstep
			}
		}
	}
	return out, nil
}

func reverseBits(v, bits int) int {
	r := 0
	for i := 0; i < bits; i++ {
		r = (r << 1) | (v & 1)
		v >>= 1
	}
	return r
}

// FFTReal transforms a real-valued signal, zero-padding to the next power of
// two if necessary.
func FFTReal(x []float64) ([]complex128, error) {
	n := NextPowerOfTwo(len(x))
	if len(x) == 0 {
		return nil, ErrLength
	}
	c := make([]complex128, n)
	for i, v := range x {
		c[i] = complex(v, 0)
	}
	return FFT(c)
}

// Convolve computes the linear convolution of a and b via FFT
// (zero-padded to avoid circular wrap-around). Result length is
// len(a)+len(b)-1.
func Convolve(a, b []float64) ([]float64, error) {
	if len(a) == 0 || len(b) == 0 {
		return nil, ErrLength
	}
	outLen := len(a) + len(b) - 1
	n := NextPowerOfTwo(outLen)
	ca := make([]complex128, n)
	cb := make([]complex128, n)
	for i, v := range a {
		ca[i] = complex(v, 0)
	}
	for i, v := range b {
		cb[i] = complex(v, 0)
	}
	fa, err := FFT(ca)
	if err != nil {
		return nil, err
	}
	fb, err := FFT(cb)
	if err != nil {
		return nil, err
	}
	for i := range fa {
		fa[i] *= fb[i]
	}
	inv, err := IFFT(fa)
	if err != nil {
		return nil, err
	}
	out := make([]float64, outLen)
	for i := range out {
		out[i] = real(inv[i])
	}
	return out, nil
}

// PowerSpectrum returns |X[k]|² for the first N/2+1 bins of the real signal x.
func PowerSpectrum(x []float64) ([]float64, error) {
	f, err := FFTReal(x)
	if err != nil {
		return nil, err
	}
	half := len(f)/2 + 1
	out := make([]float64, half)
	for i := 0; i < half; i++ {
		re, im := real(f[i]), imag(f[i])
		out[i] = re*re + im*im
	}
	return out, nil
}

// DominantFrequency returns the index of the largest non-DC power-spectrum
// bin, the typical "detect the tone" task in C3I signal processing chains.
func DominantFrequency(x []float64) (int, error) {
	ps, err := PowerSpectrum(x)
	if err != nil {
		return 0, err
	}
	best, bestV := 0, -1.0
	for i := 1; i < len(ps); i++ {
		if ps[i] > bestV {
			best, bestV = i, ps[i]
		}
	}
	return best, nil
}

// DFTNaive is the O(n²) reference transform used by tests to validate FFT.
func DFTNaive(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var s complex128
		for t := 0; t < n; t++ {
			angle := -2 * math.Pi * float64(k) * float64(t) / float64(n)
			s += x[t] * cmplx.Exp(complex(0, angle))
		}
		out[k] = s
	}
	return out
}
