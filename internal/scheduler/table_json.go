package scheduler

import (
	"encoding/json"
	"sort"

	"repro/internal/afg"
)

// AllocationTable serialisation. The assignment order is scheduling state —
// PerSite slices, experiment merges, and batch clients all replay it — but
// the field is unexported, so a naive struct marshal dropped it and Order()
// came back empty on the receiving side of every RPC round-trip. The
// marshalers below carry it explicitly.

// tableJSON is the wire form of an AllocationTable.
type tableJSON struct {
	App     string                    `json:"app"`
	Entries map[afg.TaskID]Assignment `json:"entries"`
	Order   []afg.TaskID              `json:"order,omitempty"`
}

// MarshalJSON implements json.Marshaler, including the assignment order.
func (t *AllocationTable) MarshalJSON() ([]byte, error) {
	return json.Marshal(tableJSON{App: t.App, Entries: t.Entries, Order: t.order})
}

// UnmarshalJSON implements json.Unmarshaler. The order list is sanitised —
// unknown and duplicate ids are dropped — and entries a legacy payload
// omitted from the order are appended in sorted-id order, so Order() always
// covers exactly the table's entries.
func (t *AllocationTable) UnmarshalJSON(data []byte) error {
	var raw tableJSON
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	t.App = raw.App
	t.Entries = raw.Entries
	if t.Entries == nil {
		t.Entries = make(map[afg.TaskID]Assignment)
	}
	t.order = orderedIDs(t.Entries, raw.Order)
	return nil
}

// Encode serialises the table to JSON (the batch RPC wire format).
func (t *AllocationTable) Encode() ([]byte, error) { return json.Marshal(t) }

// DecodeTable parses a JSON-encoded allocation table.
func DecodeTable(data []byte) (*AllocationTable, error) {
	var t AllocationTable
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, err
	}
	return &t, nil
}

// RebuildTable reconstructs an ordered table from its wire pieces — the
// entries map plus the order slice RPC replies carry alongside it.
func RebuildTable(app string, entries map[afg.TaskID]Assignment, order []afg.TaskID) *AllocationTable {
	t := NewAllocationTable(app)
	for id, a := range entries {
		t.Entries[id] = a
	}
	t.order = orderedIDs(t.Entries, order)
	return t
}

// orderedIDs returns order filtered to ids present in entries (first
// occurrence wins), with any entries missing from order appended in sorted
// id order.
func orderedIDs(entries map[afg.TaskID]Assignment, order []afg.TaskID) []afg.TaskID {
	out := make([]afg.TaskID, 0, len(entries))
	seen := make(map[afg.TaskID]bool, len(entries))
	for _, id := range order {
		if _, ok := entries[id]; ok && !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	if len(out) < len(entries) {
		var rest []afg.TaskID
		for id := range entries {
			if !seen[id] {
				rest = append(rest, id)
			}
		}
		sort.Slice(rest, func(i, j int) bool { return rest[i] < rest[j] })
		out = append(out, rest...)
	}
	return out
}
