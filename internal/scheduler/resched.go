package scheduler

// resched.go is the frontier rescheduler (ROADMAP item 2, paper §2.3.1):
// when the monitoring plane reports a deviation — a host down, or a task
// overrunning its prediction past a threshold — the *unstarted frontier*
// of an in-flight application is re-planned against the committed ledger
// timelines instead of re-solving the whole application. Completed and
// running tasks keep their assignments verbatim; only tasks that have not
// started may move.
//
// Re-planners are pluggable behind a registry mirroring the policy
// registry's conventions (registry.go): RegisterReplanner at init,
// LookupReplanner by name, sorted Replanners() for error messages and
// flag help. Three comparable built-ins ship:
//
//	heft — full HEFT rescan of the frontier: upward ranks over the
//	       frontier subgraph, insertion-based EFT placement
//	eft  — cheap patch: only frontier tasks touching a suspect host are
//	       re-placed (append-based EFT); everything else stays put
//	dup  — the eft patch plus duplicate copies of the re-placed tasks on
//	       idle hosts, a hedge the churn harness may promote if the
//	       primary copy's host fails too
//
// Every re-planned table is certified by CertifyReplan: Simulate and
// ValidateSchedule must replay it without violations and agree bit-for-bit
// on the makespan.

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"repro/internal/afg"
	"repro/internal/netsim"
)

// DeviationKind classifies what the monitoring plane observed.
type DeviationKind int

const (
	// DeviationHostDown is a Group Manager failure report: echo probes
	// stopped answering and the host was marked down.
	DeviationHostDown DeviationKind = iota
	// DeviationOverrun is a straggler report: a running task exceeded its
	// predicted execution time by the configured threshold.
	DeviationOverrun
)

func (k DeviationKind) String() string {
	switch k {
	case DeviationHostDown:
		return "host-down"
	case DeviationOverrun:
		return "overrun"
	}
	return fmt.Sprintf("DeviationKind(%d)", int(k))
}

// Deviation is one monitoring-plane signal that triggers a re-plan.
type Deviation struct {
	Kind DeviationKind
	Host string     // the failed or straggling host
	Task afg.TaskID // overrun only: the straggling task
	//vdce:unit seconds
	At float64 // detection time, seconds since schedule start
	// Ratio is observed/predicted execution time at detection (overrun
	// only; ≥ the configured threshold by construction).
	Ratio float64
}

// ReplanRequest is the full context a re-planner sees: the application,
// its committed table, execution progress, and the environment.
type ReplanRequest struct {
	Graph *afg.Graph
	Table *AllocationTable // the committed plan being repaired

	// Done maps finished tasks to their actual finish time; Running maps
	// started-but-unfinished tasks to their expected finish. Every other
	// task is the unstarted frontier and may be re-placed.
	//vdce:unit seconds
	Done map[afg.TaskID]float64
	//vdce:unit seconds
	Running map[afg.TaskID]float64

	// Down marks hosts that must receive no further mappings (§2.3.1:
	// "the machine is marked as 'down' ... to prevent further task
	// mappings").
	Down map[string]bool

	Event Deviation

	// Costs predicts execution seconds per (task, host); Hosts is the
	// candidate pool in dense-column order (site asc, host asc). Net and
	// Ledger mirror the initial scheduling environment; both may be nil.
	Costs  TimeModel
	Hosts  []HostRef
	Net    *netsim.Network
	Ledger *LoadLedger
}

// Replan is a re-planner's output: the complete repaired table (settled
// assignments copied verbatim, frontier re-placed), the number of frontier
// tasks whose primary host changed, and optional duplicate assignments —
// hedge copies on idle hosts that are NOT part of the certified table.
type Replan struct {
	Table      *AllocationTable
	Moved      int
	Duplicates []Assignment
}

// Replanner re-plans the unstarted frontier after a deviation.
type Replanner interface {
	Name() string
	Replan(req *ReplanRequest) (*Replan, error)
}

// ErrUnknownReplanner reports a LookupReplanner for a name nothing
// registered.
var ErrUnknownReplanner = errors.New("scheduler: unknown replanner")

var (
	replannerMu  sync.RWMutex
	replannerReg = map[string]Replanner{}
)

// RegisterReplanner installs a re-planner under r.Name(). It panics on an
// empty name or a duplicate registration — programming errors caught at
// init, exactly like the policy registry.
func RegisterReplanner(r Replanner) {
	name := r.Name()
	if name == "" {
		panic("scheduler: RegisterReplanner with empty name")
	}
	replannerMu.Lock()
	defer replannerMu.Unlock()
	if _, dup := replannerReg[name]; dup {
		panic(fmt.Sprintf("scheduler: replanner %q registered twice", name))
	}
	replannerReg[name] = r
}

// LookupReplanner resolves a re-planner by name. Unknown names return an
// error wrapping ErrUnknownReplanner that lists every registered one.
func LookupReplanner(name string) (Replanner, error) {
	replannerMu.RLock()
	r, ok := replannerReg[name]
	replannerMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w %q (available: %s)",
			ErrUnknownReplanner, name, strings.Join(Replanners(), ", "))
	}
	return r, nil
}

// Replanners returns the registered re-planner names, sorted.
func Replanners() []string {
	replannerMu.RLock()
	defer replannerMu.RUnlock()
	out := make([]string, 0, len(replannerReg))
	for name := range replannerReg {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func init() {
	RegisterReplanner(heftReplanner{})
	RegisterReplanner(eftReplanner{})
	RegisterReplanner(dupReplanner{})
}

// frontierSet returns the unstarted tasks: everything not Done and not
// Running.
func (req *ReplanRequest) frontierSet() map[afg.TaskID]bool {
	front := make(map[afg.TaskID]bool, req.Graph.Len())
	for _, id := range req.Graph.TaskIDs() {
		if _, done := req.Done[id]; done {
			continue
		}
		if _, run := req.Running[id]; run {
			continue
		}
		front[id] = true
	}
	return front
}

// eligibleHosts filters Down hosts out of the candidate pool, sorted by
// (site, host) — the dense-column order every re-planner iterates.
func (req *ReplanRequest) eligibleHosts() []HostRef {
	out := make([]HostRef, 0, len(req.Hosts))
	for _, h := range req.Hosts {
		if req.Down[h.Host] {
			continue
		}
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Site != out[j].Site {
			return out[i].Site < out[j].Site
		}
		return out[i].Host < out[j].Host
	})
	return out
}

func (req *ReplanRequest) validate() error {
	if req.Graph == nil || req.Graph.Len() == 0 {
		return errors.New("scheduler: replan: empty graph")
	}
	if req.Table == nil {
		return errors.New("scheduler: replan: nil table")
	}
	if req.Costs == nil {
		return errors.New("scheduler: replan: nil cost model")
	}
	// Sorted walks so the same malformed request surfaces the same error.
	for _, id := range sortedIDs(req.Done) {
		if _, run := req.Running[id]; run {
			return fmt.Errorf("scheduler: replan: task %s both done and running", id)
		}
		if _, ok := req.Table.Get(id); !ok {
			return fmt.Errorf("scheduler: replan: done task %s missing from table", id)
		}
	}
	for _, id := range sortedIDs(req.Running) {
		if _, ok := req.Table.Get(id); !ok {
			return fmt.Errorf("scheduler: replan: running task %s missing from table", id)
		}
	}
	return nil
}

// sortedIDs returns a map's task keys in ascending order.
func sortedIDs(m map[afg.TaskID]float64) []afg.TaskID {
	out := make([]afg.TaskID, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// replanState is the shared placement machinery: host timelines seeded
// from settled work and the ledger, per-task finish estimates, and the
// repaired table under construction. All iteration that reaches the table
// runs over sorted slices; the maps here are keyed lookups only.
type replanState struct {
	req    *ReplanRequest
	lines  map[string]*timeline
	seed   map[string]float64 // host -> settled busy horizon
	finish map[afg.TaskID]float64
	place  map[afg.TaskID]Assignment // settled + placed-so-far
	table  *AllocationTable
	moved  int
}

// newReplanState copies the settled (done + running) assignments verbatim
// into the repaired table, records their finishes, and computes each
// host's settled busy horizon: a host is treated as unavailable until the
// last settled task mapped to it finishes (and, when a ledger is present,
// until its committed cross-application seconds drain).
func newReplanState(req *ReplanRequest) *replanState {
	st := &replanState{
		req:    req,
		lines:  make(map[string]*timeline),
		seed:   make(map[string]float64),
		finish: make(map[afg.TaskID]float64, len(req.Done)+len(req.Running)),
		place:  make(map[afg.TaskID]Assignment, req.Graph.Len()),
		table:  NewAllocationTableSized(req.Table.App, req.Graph.Len()),
	}
	for _, id := range req.Graph.TaskIDs() {
		f, settled := req.Done[id]
		if !settled {
			f, settled = req.Running[id]
		}
		if !settled {
			continue
		}
		a, _ := req.Table.Get(id)
		st.table.Set(a)
		st.finish[id] = f
		st.place[id] = a
		for _, h := range effectiveHosts(a) {
			if f > st.seed[h] {
				st.seed[h] = f
			}
		}
	}
	return st
}

// line returns the host's timeline, creating it seeded with the settled
// busy horizon and the ledger's committed seconds on first use.
func (st *replanState) line(host string) *timeline {
	t, ok := st.lines[host]
	if !ok {
		t = &timeline{}
		busy := st.seed[host]
		if st.req.Ledger != nil {
			if b := st.req.Ledger.Busy(host); b > busy {
				busy = b
			}
		}
		if busy > 0 {
			t.busy = append(t.busy, span{0, busy})
		}
		st.lines[host] = t
	}
	return t
}

// readyOn estimates when id's inputs are available on the given host:
// the max over parents of finish plus the cross-host transfer time.
// Parents without a finish estimate yet (possible only under zero-cost
// rank ties) are skipped, mirroring the HEFT placement's readyAt.
func (st *replanState) readyOn(id afg.TaskID, site, host string) float64 {
	var ready float64
	for _, l := range st.req.Graph.Parents(id) {
		pf, ok := st.finish[l.From]
		if !ok {
			continue
		}
		arrive := pf
		if st.req.Net != nil {
			if b := transferBytes(st.req.Graph, l); b > 0 {
				pa := st.place[l.From]
				if !hostIn(effectiveHosts(pa), host) {
					arrive += st.req.Net.TransferTime(pa.Site, site, b).Seconds()
				}
			}
		}
		if arrive > ready {
			ready = arrive
		}
	}
	return ready
}

// commit records a placement: table entry, finish estimate, and timeline
// reservations on every occupied host.
func (st *replanState) commit(a Assignment, start, fin float64, moved bool) {
	st.table.Set(a)
	st.finish[a.Task] = fin
	st.place[a.Task] = a
	for _, h := range effectiveHosts(a) {
		st.line(h).add(start, fin)
	}
	if moved {
		st.moved++
	}
}

// keep re-commits a frontier task on its current assignment, charging its
// timelines so later placements see the occupancy.
func (st *replanState) keep(id afg.TaskID, a Assignment) {
	task := st.req.Graph.Task(id)
	hosts := effectiveHosts(a)
	dur := a.Predicted
	if len(hosts) == 1 {
		if c := st.req.Costs(task, a.Host); validCost(c) {
			dur = c
		}
	}
	start := st.readyOn(id, a.Site, a.Host)
	for _, h := range hosts {
		if e := st.line(h).end(); e > start {
			start = e
		}
	}
	st.commit(a, start, start+dur, false)
}

func validCost(c float64) bool {
	return !math.IsNaN(c) && !math.IsInf(c, 0) && c >= 0
}

// placeBest EFT-places one frontier task over the candidate pool:
// insertion-based (idle-gap) start when insertion is true, append-based
// otherwise. Tie-break matches the HEFT placement: earliest finish, then
// site name, then host name.
func (st *replanState) placeBest(id afg.TaskID, cands []HostRef, insertion bool) error {
	task := st.req.Graph.Task(id)
	old, _ := st.req.Table.Get(id)
	var (
		found              bool
		best               HostRef
		bestCost           float64
		bestStart, bestFin float64
	)
	for _, c := range cands {
		cost := st.req.Costs(task, c.Host)
		if !validCost(cost) {
			continue
		}
		ready := st.readyOn(id, c.Site, c.Host)
		line := st.line(c.Host)
		start := ready
		if insertion {
			start = line.earliest(ready, cost)
		} else if e := line.end(); e > start {
			start = e
		}
		fin := start + cost
		better := !found || fin < bestFin
		if found && fin == bestFin { // tie-break adjacent to the ordering above
			better = c.Site < best.Site || (c.Site == best.Site && c.Host < best.Host)
		}
		if better {
			found, best, bestCost, bestStart, bestFin = true, c, cost, start, fin
		}
	}
	if !found {
		return fmt.Errorf("scheduler: replan task %s: %w", id, ErrNoEligibleHost)
	}
	a := Assignment{Task: id, Site: best.Site, Host: best.Host,
		Hosts: []string{best.Host}, Predicted: bestCost}
	st.commit(a, bestStart, bestFin, a.Host != old.Host)
	return nil
}

// placeFrontier places one frontier task, preserving a parallel task's
// host set when every member is still eligible (re-placing a parallel
// task single-host only when one of its machines went down).
func (st *replanState) placeFrontier(id afg.TaskID, cands []HostRef, insertion bool) error {
	old, ok := st.req.Table.Get(id)
	if ok && len(old.Hosts) > 1 {
		anyDown := false
		for _, h := range old.Hosts {
			if st.req.Down[h] {
				anyDown = true
				break
			}
		}
		if !anyDown {
			st.keep(id, old)
			return nil
		}
	}
	return st.placeBest(id, cands, insertion)
}

func startReplan(req *ReplanRequest) (*replanState, map[afg.TaskID]bool, []HostRef, error) {
	if err := req.validate(); err != nil {
		return nil, nil, nil, err
	}
	cands := req.eligibleHosts()
	if len(cands) == 0 {
		return nil, nil, nil, fmt.Errorf("scheduler: replan: %w", ErrNoEligibleHost)
	}
	return newReplanState(req), req.frontierSet(), cands, nil
}

// heftReplanner is the full HEFT rescan: upward ranks over the frontier
// subgraph (mean cost over eligible hosts, environment-average comm), then
// rank-descending insertion-based EFT placement.
type heftReplanner struct{}

func (heftReplanner) Name() string { return "heft" }

func (heftReplanner) Replan(req *ReplanRequest) (*Replan, error) {
	st, front, cands, err := startReplan(req)
	if err != nil {
		return nil, err
	}
	var sites []string
	seenSite := map[string]bool{}
	for _, c := range cands {
		if !seenSite[c.Site] {
			seenSite[c.Site] = true
			sites = append(sites, c.Site)
		}
	}
	sort.Strings(sites)
	cm := averageComm(req.Net, sites)

	order, err := req.Graph.TopoOrder()
	if err != nil {
		return nil, fmt.Errorf("scheduler: replan: %w", err)
	}
	rank := make(map[afg.TaskID]float64, len(front))
	ids := make([]afg.TaskID, 0, len(front))
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		if !front[id] {
			continue
		}
		ids = append(ids, id)
		task := req.Graph.Task(id)
		var w float64
		n := 0
		for _, c := range cands {
			if cost := req.Costs(task, c.Host); validCost(cost) {
				w += cost
				n++
			}
		}
		if n > 0 {
			w /= float64(n)
		}
		var up float64
		for _, l := range req.Graph.Children(id) {
			if !front[l.To] {
				continue
			}
			if v := cm.cost(transferBytes(req.Graph, l)) + rank[l.To]; v > up {
				up = v
			}
		}
		rank[id] = w + up
	}
	// Rank-descending order, ascending id on ties (ids currently holds
	// reverse topological order; sort fully for the deterministic walk).
	sort.Slice(ids, func(i, j int) bool {
		ri, rj := rank[ids[i]], rank[ids[j]]
		if ri != rj { // tie-break adjacent to the ordering
			return ri > rj
		}
		return ids[i] < ids[j]
	})
	for _, id := range ids {
		if err := st.placeFrontier(id, cands, true); err != nil {
			return nil, err
		}
	}
	return &Replan{Table: st.table, Moved: st.moved}, nil
}

// suspectHosts is the set a patch-style re-planner routes around: every
// down host plus, for an overrun event, the straggling host.
func (req *ReplanRequest) suspectHosts() map[string]bool {
	suspect := make(map[string]bool, len(req.Down)+1)
	for h, d := range req.Down {
		if d {
			suspect[h] = true
		}
	}
	if req.Event.Kind == DeviationOverrun && req.Event.Host != "" {
		suspect[req.Event.Host] = true
	}
	return suspect
}

// eftPatch is the shared cheap repair: walk the frontier in topological
// order, keep every task whose hosts are all above suspicion, and EFT
// re-place (append-based) only the tasks touching a suspect host. Returns
// the state and the re-placed task ids in placement order.
func eftPatch(req *ReplanRequest) (*replanState, []afg.TaskID, error) {
	st, front, cands, err := startReplan(req)
	if err != nil {
		return nil, nil, err
	}
	suspect := req.suspectHosts()
	safe := make([]HostRef, 0, len(cands))
	for _, c := range cands {
		if !suspect[c.Host] {
			safe = append(safe, c)
		}
	}
	if len(safe) == 0 {
		// Every up host is suspect (e.g. the sole survivor straggles):
		// degrade to the full eligible pool rather than fail the repair.
		safe = cands
	}
	order, err := req.Graph.TopoOrder()
	if err != nil {
		return nil, nil, fmt.Errorf("scheduler: replan: %w", err)
	}
	var moved []afg.TaskID
	for _, id := range order {
		if !front[id] {
			continue
		}
		old, ok := req.Table.Get(id)
		touches := !ok
		for _, h := range effectiveHosts(old) {
			if suspect[h] {
				touches = true
				break
			}
		}
		if ok && !touches {
			st.keep(id, old)
			continue
		}
		if err := st.placeBest(id, safe, false); err != nil {
			return nil, nil, err
		}
		moved = append(moved, id)
	}
	return st, moved, nil
}

// eftReplanner is the cheap patch alone.
type eftReplanner struct{}

func (eftReplanner) Name() string { return "eft" }

func (eftReplanner) Replan(req *ReplanRequest) (*Replan, error) {
	st, _, err := eftPatch(req)
	if err != nil {
		return nil, err
	}
	return &Replan{Table: st.table, Moved: st.moved}, nil
}

// dupReplanner is the eft patch plus task duplication: each re-placed
// frontier task (and, on an overrun, each frontier child of the straggling
// task) gets a hedge copy on an idle host — a host running nothing and
// hosting no frontier assignment. Each idle host carries at most one
// duplicate. Duplicates are NOT part of the certified table; the churn
// harness promotes one only if the primary copy's host fails.
type dupReplanner struct{}

func (dupReplanner) Name() string { return "dup" }

func (dupReplanner) Replan(req *ReplanRequest) (*Replan, error) {
	st, movedIDs, err := eftPatch(req)
	if err != nil {
		return nil, err
	}
	suspect := req.suspectHosts()
	used := map[string]bool{}
	for _, id := range st.table.Order() {
		if _, done := req.Done[id]; done {
			continue // a finished task's host is free again
		}
		a, _ := st.table.Get(id)
		for _, h := range effectiveHosts(a) {
			used[h] = true
		}
	}
	var idle []HostRef
	for _, c := range req.eligibleHosts() {
		if !used[c.Host] && !suspect[c.Host] {
			idle = append(idle, c)
		}
	}

	targets := append([]afg.TaskID(nil), movedIDs...)
	if req.Event.Kind == DeviationOverrun {
		front := req.frontierSet()
		kids := make([]afg.TaskID, 0, 4)
		for _, l := range req.Graph.Children(req.Event.Task) {
			if front[l.To] {
				kids = append(kids, l.To)
			}
		}
		sort.Slice(kids, func(i, j int) bool { return kids[i] < kids[j] })
		targets = append(targets, kids...)
	}

	seen := map[afg.TaskID]bool{}
	var dups []Assignment
	for _, id := range targets {
		if len(idle) == 0 {
			break
		}
		if seen[id] {
			continue
		}
		seen[id] = true
		task := req.Graph.Task(id)
		bestIx := -1
		var bestCost float64
		for i, c := range idle {
			cost := req.Costs(task, c.Host)
			if !validCost(cost) {
				continue
			}
			if bestIx < 0 || cost < bestCost {
				bestIx, bestCost = i, cost
			}
		}
		if bestIx < 0 {
			continue
		}
		h := idle[bestIx]
		idle = append(idle[:bestIx], idle[bestIx+1:]...)
		dups = append(dups, Assignment{Task: id, Site: h.Site, Host: h.Host,
			Hosts: []string{h.Host}, Predicted: bestCost})
	}
	return &Replan{Table: st.table, Moved: st.moved, Duplicates: dups}, nil
}

// CertifyReplan certifies a repaired table: Simulate and ValidateSchedule
// must both replay it without violations and agree on the makespan
// bit-for-bit — the same equivalence the property tests pin for initial
// schedules. Every adopted re-plan goes through this gate.
func CertifyReplan(g *afg.Graph, table *AllocationTable, model TimeModel, net *netsim.Network) (*ScheduleAudit, error) {
	mk, err := Simulate(g, table, model, net)
	if err != nil {
		return nil, fmt.Errorf("scheduler: certify replan: simulate: %w", err)
	}
	audit, err := ValidateSchedule(g, table, model, net)
	if err != nil {
		return nil, fmt.Errorf("scheduler: certify replan: %w", err)
	}
	if audit.Makespan != mk { //vdce:ignore floateq bit-identity between the replay paths is the certification contract, not an approximate comparison
		return nil, fmt.Errorf("scheduler: certify replan: validator makespan %v != simulator %v", audit.Makespan, mk)
	}
	return audit, nil
}
