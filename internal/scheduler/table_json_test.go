package scheduler

import (
	"encoding/json"
	"testing"

	"repro/internal/afg"
)

func orderedTestTable() *AllocationTable {
	table := NewAllocationTable("app")
	// Deliberately non-alphabetical assignment order: a sorted fallback
	// would be caught by the round-trip checks below.
	for _, id := range []afg.TaskID{"c", "a", "b"} {
		table.Set(Assignment{Task: id, Site: "syr", Host: "h-" + string(id), Predicted: 1})
	}
	return table
}

// The assignment order must survive a JSON round-trip — it used to live in
// an unexported field only, so RPC clients always saw an empty Order().
func TestAllocationTableJSONRoundTripKeepsOrder(t *testing.T) {
	table := orderedTestTable()
	data, err := json.Marshal(table)
	if err != nil {
		t.Fatal(err)
	}
	var back AllocationTable
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.App != "app" || len(back.Entries) != 3 {
		t.Fatalf("round-trip lost data: %+v", back)
	}
	want := []afg.TaskID{"c", "a", "b"}
	got := back.Order()
	if len(got) != len(want) {
		t.Fatalf("Order() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Order() = %v, want %v", got, want)
		}
	}
	// Encode/DecodeTable is the same contract as a convenience pair.
	raw, err := table.Encode()
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeTable(raw)
	if err != nil {
		t.Fatal(err)
	}
	if o := decoded.Order(); len(o) != 3 || o[0] != "c" {
		t.Fatalf("DecodeTable order = %v", o)
	}
	// PerSite depends on the order — it must work on the decoded side.
	if per := decoded.PerSite("syr"); len(per) != 3 || per[0].Task != "c" {
		t.Fatalf("PerSite after decode = %+v", per)
	}
}

// Legacy payloads (no order field) still decode, with a deterministic
// sorted-id order synthesised for the entries.
func TestAllocationTableJSONLegacyPayload(t *testing.T) {
	raw := []byte(`{"app":"old","entries":{"b":{"task":"b","site":"s","host":"h","predicted":1},` +
		`"a":{"task":"a","site":"s","host":"h","predicted":1}}}`)
	var table AllocationTable
	if err := json.Unmarshal(raw, &table); err != nil {
		t.Fatal(err)
	}
	o := table.Order()
	if len(o) != 2 || o[0] != "a" || o[1] != "b" {
		t.Fatalf("legacy order = %v, want [a b]", o)
	}
}

// RebuildTable reconstructs an ordered table from the entries+order pieces
// the batch RPC reply ships.
func TestRebuildTable(t *testing.T) {
	src := orderedTestTable()
	rebuilt := RebuildTable(src.App, src.Entries, src.Order())
	if len(rebuilt.Entries) != 3 {
		t.Fatalf("rebuilt entries = %d", len(rebuilt.Entries))
	}
	o := rebuilt.Order()
	if len(o) != 3 || o[0] != "c" || o[1] != "a" || o[2] != "b" {
		t.Fatalf("rebuilt order = %v", o)
	}
	// A stale order mentioning unknown ids, with entries it misses, still
	// yields a complete, deduplicated order.
	partial := RebuildTable(src.App, src.Entries, []afg.TaskID{"b", "ghost", "b"})
	o = partial.Order()
	if len(o) != 3 || o[0] != "b" || o[1] != "a" || o[2] != "c" {
		t.Fatalf("sanitised order = %v", o)
	}
}
