package scheduler

import (
	"runtime"
	"sync"

	"repro/internal/afg"
)

// BatchItem is one application's outcome within a batch: either its
// allocation table or the error that stopped its scheduling. Exactly one of
// Table/Err is set.
type BatchItem struct {
	Graph *afg.Graph
	Table *AllocationTable
	Err   error
}

// Batch schedules many application flow graphs concurrently against shared
// site state. The underlying Scheduler is invoked from multiple goroutines
// at once, which is safe for SiteScheduler/LocalSelector (their per-run
// state is local; the repositories, network model, and prediction cache are
// all concurrency-safe) and for the baseline schedulers.
//
// Results come back in input order regardless of completion order. For
// stateless schedulers (SiteScheduler and every baseline except round-
// robin) the tables are also independent of the worker count; round-robin
// keeps a cursor across calls, so its per-graph starting offset follows
// completion order.
type Batch struct {
	// Scheduler maps one AFG to resources; it must tolerate concurrent
	// Schedule calls.
	Scheduler Scheduler
	// Workers bounds concurrent Schedule calls (0 = GOMAXPROCS, 1 =
	// serial — the baseline the scale benchmark compares against).
	Workers int
	// Ledger, when non-nil and the Scheduler is a *SiteScheduler or a
	// Bind-wrapped policy, is the shared cross-application load ledger
	// threaded through every Schedule call (forcing availability-aware
	// placement for the site policies; HEFT/CPOP seed their host
	// timelines with it): each graph's walk sees the predicted busy time
	// the batch's other graphs have already placed per host, so the
	// batch spreads instead of every graph dog-piling the same machines.
	// Note the resulting tables then depend on completion order when
	// Workers > 1 — cross-application awareness trades away the
	// ledger-free mode's worker-count invariance.
	Ledger *LoadLedger
}

// Schedule maps every graph and returns one item per input, in input order.
func (b *Batch) Schedule(graphs []*afg.Graph) []BatchItem {
	items := make([]BatchItem, len(graphs))
	for i, g := range graphs {
		items[i].Graph = g
	}
	sched := b.Scheduler
	ledger := b.Ledger
	if ledger == nil {
		// The "ledger" policy exists to share placements ACROSS a batch;
		// without a caller-supplied ledger it would mint a private one per
		// graph and degenerate to plain EFT, so the batch supplies the
		// shared one itself.
		if bp, ok := sched.(*boundPolicy); ok && bp.policy.Name() == "ledger" && bp.env.Config.Ledger == nil {
			ledger = NewLoadLedger()
		}
	}
	if ledger != nil {
		switch s := sched.(type) {
		case *SiteScheduler:
			sched = s.WithLedger(ledger)
		case *boundPolicy:
			sched = s.withLedger(ledger)
		}
	}
	// One cost-matrix cache per batch: a policy scheduling the same graph
	// twice (or several bound policies sharing a Config-supplied cache)
	// gathers per-(task, host) costs once. Harmless for policies that
	// never read it.
	if bp, ok := sched.(*boundPolicy); ok && bp.env.Config.Costs == nil {
		sched = bp.withCosts(NewCostCache())
	}
	workers := b.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(graphs) {
		workers = len(graphs)
	}
	if workers <= 1 {
		for i, g := range graphs {
			items[i].Table, items[i].Err = sched.Schedule(g)
		}
		return items
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				items[i].Table, items[i].Err = sched.Schedule(graphs[i])
			}
		}()
	}
	for i := range graphs {
		next <- i
	}
	close(next)
	wg.Wait()
	return items
}

// ScheduleBatch is the convenience form: schedule graphs with s across
// `workers` goroutines and return the items in input order.
func ScheduleBatch(s Scheduler, graphs []*afg.Graph, workers int) []BatchItem {
	return (&Batch{Scheduler: s, Workers: workers}).Schedule(graphs)
}
