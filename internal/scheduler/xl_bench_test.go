package scheduler

// The XL scale point: one 100k-task dagen DAG placed across 1000 hosts
// (8 sites × 125). This is the benchmark the pooled scratch arena and the
// cache-blocked readyAt memo exist for — at this scale the former
// per-schedule allocations dominate and the former O(hosts × parents)
// transfer-time rescan in the EFT inner loop is the top of the CPU
// profile. CI runs it once per scheduled XL job with -benchtime=1x; a
// regression of an order of magnitude surfaces there between PRs.

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/dagen"
	"repro/internal/netsim"
	"repro/internal/repository"
)

const (
	xlTasks        = 100_000
	xlSites        = 8
	xlHostsPerSite = 125
)

// xlEnv builds the 1000-host environment: xlSites sites of xlHostsPerSite
// idle hosts whose speed factors come from the dagen β knob, joined by a
// star WAN — the RANKING environment, scaled up.
func xlEnv(b testing.TB) *Request {
	b.Helper()
	repos := map[string]*repository.Repository{}
	names := make([]string, xlSites)
	for s := 0; s < xlSites; s++ {
		name := fmt.Sprintf("site%02d", s)
		names[s] = name
		repo := repository.New()
		speeds := dagen.SpeedFactors(xlHostsPerSite, 1, 1000+int64(s)*101)
		for h, sp := range speeds {
			host := fmt.Sprintf("%s-%03d", name, h)
			err := repo.Resources.Register(repository.ResourceStatic{
				HostName: host, Site: name, Arch: "solaris",
				TotalMemory: 1 << 30, SpeedFactor: sp,
			})
			if err != nil {
				b.Fatal(err)
			}
			if err := repo.Resources.UpdateDynamic(host, 0, 1<<30, time.Now()); err != nil {
				b.Fatal(err)
			}
		}
		repos[name] = repo
	}
	net := netsim.StarTopology(names, 5*time.Millisecond, 1e7, 1)
	local := &LocalSelector{Site: names[0], Repo: repos[names[0]]}
	var remotes []HostSelector
	for _, n := range names[1:] {
		remotes = append(remotes, &LocalSelector{Site: n, Repo: repos[n]})
	}
	req := NewRequest(nil, local, remotes, net)
	req.Sites = repos
	return req
}

// BenchmarkXLSchedule — HEFT over the 100k × 1000 cell. The ~0.8 GB cost
// matrix is gathered once in setup (PrewarmCosts into a shared CostCache),
// so the measured region is ranking plus insertion-based placement — the
// part the scratch arena and the per-site-block ready memo make scale.
func BenchmarkXLSchedule(b *testing.B) {
	req := xlEnv(b)
	req.Graph = dagen.Random(dagen.Params{
		Tasks: xlTasks, CCR: 1, Alpha: 1, OutDegree: 4, Beta: 1,
		CommBandwidth: 1e7, Seed: 42,
	})
	req.Config.Costs = NewCostCache()
	if err := req.PrewarmCosts(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		table, err := heftPolicy{}.Schedule(context.Background(), req)
		if err != nil {
			b.Fatal(err)
		}
		if len(table.Entries) != xlTasks {
			b.Fatalf("short table: %d entries", len(table.Entries))
		}
	}
}
