package scheduler

// Pool-correctness stress: every registered policy scheduling a batch of
// graphs concurrently, all drawing scratch from the one shared sync.Pool,
// must produce tables identical to fresh-allocation runs (scratchPoolOff).
// Under -race this is also the data-race proof for the arena: buffers are
// function-scoped, so two goroutines must never see the same scratch.
//
// The ledger policy runs its batch at Workers=1 in BOTH runs — its tables
// legitimately depend on completion order under concurrency (see Batch),
// which is a determinism property of the policy, not of the pool.

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/afg"
)

func TestScratchPoolStressEquivalence(t *testing.T) {
	req, _, _ := equivEnv(t, 11)
	const nGraphs = 6
	graphs := make([]*afg.Graph, nGraphs)
	for i := range graphs {
		graphs[i] = equivGraph(t, 120, 10, int64(500+i*7))
	}
	// The nine production policies, pinned explicitly: Policies() would
	// also pick up stubs other tests register into the global registry.
	names := []string{
		"faithful", "eft", "ledger", "heft", "cpop",
		"random", "roundrobin", "minload", "fastest",
	}

	// run schedules every policy's batch concurrently (one goroutine per
	// policy, Workers inside each batch) and returns tables[policy][graph].
	run := func(workers int) map[string][]*AllocationTable {
		out := make(map[string][]*AllocationTable, len(names))
		var mu sync.Mutex
		var wg sync.WaitGroup
		for _, name := range names {
			w := workers
			if name == "ledger" {
				w = 1
			}
			wg.Add(1)
			go func(name string, w int) {
				defer wg.Done()
				p, err := Lookup(name)
				if err != nil {
					t.Errorf("%s: %v", name, err)
					return
				}
				items := (&Batch{Scheduler: Bind(p, *req), Workers: w}).Schedule(graphs)
				tables := make([]*AllocationTable, len(items))
				for i, it := range items {
					if it.Err != nil {
						t.Errorf("%s graph %d: %v", name, i, it.Err)
						return
					}
					tables[i] = it.Table
				}
				mu.Lock()
				out[name] = tables
				mu.Unlock()
			}(name, w)
		}
		wg.Wait()
		return out
	}

	// Reference first, with recycling disabled: every schedule call gets
	// fresh allocations. scratchPoolOff is written before any scheduling
	// goroutine starts and restored after they all join.
	scratchPoolOff = true
	want := run(4)
	scratchPoolOff = false
	got := run(4)
	if t.Failed() {
		t.Fatal("scheduling failed; skipping table comparison")
	}
	for _, name := range names {
		for i := range graphs {
			tablesEqual(t, fmt.Sprintf("%s graph %d pooled-vs-fresh", name, i), got[name][i], want[name][i])
		}
	}
}
