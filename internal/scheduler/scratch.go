package scheduler

// The per-schedule scratch arena. Every hot scheduling path used to pay a
// fixed set of O(V) / O(H) allocations per Schedule or Simulate call: rank
// vectors, priority-heap backing arrays, host timelines and their span
// slabs, dense per-task placement columns, the simulator's event-loop
// state. PR 4's allocflow triage certified all of them as "caller-owned
// scratch" — nothing in them survives the call — so they now live in one
// pooled scratch struct recycled through a sync.Pool and repeated
// Batch.Schedule calls stop reallocating them.
//
// The pooling contract, in order of importance:
//
//  1. Schedule OUTPUT is never pooled. Anything reachable from a returned
//     AllocationTable — the table itself, committed host sets and their
//     backing slabs, Choice slices handed to callers — is allocated fresh
//     per schedule. Pool reuse of output would corrupt live tables.
//  2. Every pooled buffer is either fully overwritten before it is read
//     (rank vectors, dense columns, bulk heap loads: plain grow) or
//     explicitly reset by growZero / growTimelines (site markers back to
//     "" = unplaced, host-free and data-ready columns back to 0, span
//     slabs back to length zero). A read-before-write buffer acquired with
//     plain grow is a correctness bug, not just a leak.
//  3. Scratch is function-scoped: a holder Gets at entry and releases on
//     exit. Concurrent Batch workers, gather goroutines, and parallel
//     RankingCells workers each draw their own scratch from the pool, so
//     no synchronisation happens inside one.
//
// A pooled scratch retains references from its last use (assignment
// strings, parent host lists) until its next growZero or until the GC
// clears the pool's victim cache. That retention is bounded by one
// schedule's working set per pooled scratch and is the price of reuse.

import "sync"

// scratch is the arena. Fields group by consumer; consumers sharing a
// field (CPOP's pending counters and the simulator's, say) never coexist
// in one holder, because a holder runs exactly one of those paths.
type scratch struct {
	// Rank and priority state (HEFT, CPOP, dense site walks).
	rankU   []float64  // upward ranks / combined CPOP priority
	rankD   []float64  // downward ranks
	order   []int32    // rank-sorted task order
	pending []int32    // unfinished-parent counters (CPOP walk, simulator)
	heap    []prioItem // ready-heap backing array (CPOP)
	cp      []bool     // critical-path membership (CPOP)

	// Placement state (HEFT/CPOP earliest-finish insertion placement).
	lines       []timeline // per-host-column timelines; span slabs retained
	canon       []int32    // column -> canonical column per host name
	finish      []float64  // estimated finish per task
	siteOf      []string   // assigned site per task; "" = unplaced marker
	hostSets    [][]string // assigned host set per task (refs dropped on reset)
	blockReady  []float64  // per-site-block data-ready memo
	parentHosts []string   // hosts of the current task's byte-carrying parents
	choiceBuf   []Choice   // candidate row scratch (parallel placement, CPOP pin)

	// Site-walk state (selectHostsDense).
	scored []scored // candidate scratch for selectFor

	// Simulator state (Simulate's event loop).
	assigns   []Assignment     // dense assignment copies
	hostCols  [][]int32        // dense host columns per task
	colArena  []int32          // one backing array for every column entry
	hostFree  []float64        // column -> host-free time (reset to 0)
	dataReady []float64        // per-task data-ready time (reset to 0)
	simHeap   []pqItem         // event-queue backing array
	hostCol   map[string]int32 // host name -> dense column (cleared per use)
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

// scratchPoolOff disables recycling so equivalence tests can compare pooled
// runs against fresh-allocation runs. Written only by tests, before the
// goroutines under test start.
var scratchPoolOff bool

// getScratch draws a scratch from the pool (or allocates one on a miss or
// when the pool is disabled by tests).
//
//vdce:ignore allocflow pool refill: one scratch struct per pool miss, amortized across every schedule thereafter
func getScratch() *scratch {
	if scratchPoolOff {
		return new(scratch)
	}
	return scratchPool.Get().(*scratch)
}

// release returns s to the pool. Buffers keep their high-water capacity;
// the next holder's grow/growZero calls re-establish lengths and resets.
func (s *scratch) release() {
	if s == nil || scratchPoolOff {
		return
	}
	scratchPool.Put(s)
}

// grow returns buf with length n, reusing its capacity when it suffices.
// Contents are NOT cleared: grow is only for buffers every element of which
// is written before it is read. Anything with read-before-write or
// sentinel semantics must use growZero instead (contract 2 above).
//
//vdce:ignore allocflow pool-backed growth: the make runs only until the buffer reaches its high-water mark, after which every schedule reuses it
func grow[T any](buf []T, n int) []T {
	if cap(buf) < n {
		return make([]T, n)
	}
	return buf[:n]
}

// growZero is grow plus an explicit clear. For buffers whose zero value is
// load-bearing under reuse — "" as the unplaced-site marker, 0 as the
// host-free and data-ready baseline, false for path membership — the reset
// IS the correctness contract, and it also drops stale references (old
// host sets, strings) a recycled scratch would otherwise pin.
func growZero[T any](buf []T, n int) []T {
	buf = grow(buf, n)
	clear(buf)
	return buf
}

// growTimelines returns a timeline slice of length n with every span slab
// reset to length zero but its capacity retained: the per-host insertion
// lists reach a schedule's high-water mark once and are reused thereafter.
//
//vdce:ignore allocflow pool-backed growth, same amortization as grow: one make until the host count's high-water mark
func growTimelines(buf []timeline, n int) []timeline {
	if cap(buf) < n {
		next := make([]timeline, n)
		copy(next, buf[:cap(buf)]) // keep the old span slabs' capacity
		buf = next
	} else {
		buf = buf[:n]
	}
	for i := range buf {
		buf[i].busy = buf[i].busy[:0]
	}
	return buf
}
