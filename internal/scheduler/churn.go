package scheduler

// churn.go is the seeded fault-injection harness behind the CHURN
// experiment: a deterministic discrete-event executor that replays a
// committed allocation table under a scripted churn trace — hosts going
// down (killing their running tasks), coming back, and straggler hosts
// running slower than predicted — and drives the frontier rescheduler
// (resched.go) on every deviation. The scheduler side only ever sees
// predicted costs; the trace's straggle multipliers are ground truth it
// discovers through overrun detection, exactly the information asymmetry
// of the live monitoring plane.
//
// Determinism contract: for a fixed graph, table, trace, and config the
// run is bit-identical — every set iterated here goes through sorted
// slices, the only randomness is the caller's explicit trace seed, and
// every adopted re-plan is certified by CertifyReplan first.

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/afg"
	"repro/internal/netsim"
)

// ChurnEvent is one scripted availability transition.
type ChurnEvent struct {
	//vdce:unit seconds
	At   float64 `json:"at"`
	Host string  `json:"host"`
	Down bool    `json:"down"`
}

// ChurnTrace scripts one fault-injection run: availability transitions in
// ascending time order plus per-host straggle multipliers (actual
// execution time = predicted × multiplier; absent hosts run true to
// prediction).
type ChurnTrace struct {
	Events   []ChurnEvent       `json:"events"`
	Straggle map[string]float64 `json:"straggle,omitempty"`
}

// ChurnTraceConfig tunes the seeded trace generator.
type ChurnTraceConfig struct {
	// FailFraction of the hosts fail once, at a uniform random time in
	// [0.1, 0.6] × horizon. At least one host never fails.
	FailFraction float64
	// RepairAfter > 0 brings each failed host back after that many
	// seconds; 0 means failures are permanent for the run.
	//vdce:unit seconds
	RepairAfter float64
	// StraggleFraction of the remaining hosts run slow by
	// StraggleFactor (> 1). Straggler and failed sets are disjoint.
	StraggleFraction float64
	StraggleFactor   float64
}

// DefaultChurnTrace is a quarter of the fleet failing permanently and
// another quarter running at half speed.
var DefaultChurnTrace = ChurnTraceConfig{
	FailFraction:     0.25,
	StraggleFraction: 0.25,
	StraggleFactor:   2.0,
}

// GenerateChurnTrace scripts a deterministic trace over the given hosts
// from an explicit seed. horizon scales the failure times and should be
// on the order of the fault-free makespan.
func GenerateChurnTrace(hosts []string, horizon float64, cfg ChurnTraceConfig, seed int64) ChurnTrace {
	names := append([]string(nil), hosts...)
	sort.Strings(names)
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(len(names))

	nFail := int(math.Round(cfg.FailFraction * float64(len(names))))
	if nFail >= len(names) {
		nFail = len(names) - 1 // at least one survivor
	}
	if nFail < 0 {
		nFail = 0
	}
	nSlow := int(math.Round(cfg.StraggleFraction * float64(len(names))))
	if nFail+nSlow > len(names) {
		nSlow = len(names) - nFail
	}

	var tr ChurnTrace
	for i := 0; i < nFail; i++ {
		h := names[perm[i]]
		at := (0.1 + 0.5*rng.Float64()) * horizon
		tr.Events = append(tr.Events, ChurnEvent{At: at, Host: h, Down: true})
		if cfg.RepairAfter > 0 {
			tr.Events = append(tr.Events, ChurnEvent{At: at + cfg.RepairAfter, Host: h, Down: false})
		}
	}
	if nSlow > 0 && cfg.StraggleFactor > 1 {
		tr.Straggle = make(map[string]float64, nSlow)
		for i := nFail; i < nFail+nSlow; i++ {
			tr.Straggle[names[perm[i]]] = cfg.StraggleFactor
		}
	}
	sort.SliceStable(tr.Events, func(i, j int) bool {
		if tr.Events[i].At != tr.Events[j].At { // tie-break adjacent to the ordering
			return tr.Events[i].At < tr.Events[j].At
		}
		return tr.Events[i].Host < tr.Events[j].Host
	})
	return tr
}

// ChurnConfig tunes the deviation handling.
type ChurnConfig struct {
	// OverrunThreshold triggers an overrun deviation when a task's actual
	// running time exceeds threshold × predicted. ≤ 1 disables overrun
	// detection; the default is 1.5.
	OverrunThreshold float64
	// Replanner names the registered frontier re-planner; default "eft".
	Replanner string
	// MaxReplans caps re-planning rounds; 0 = unlimited.
	MaxReplans int
}

func (c ChurnConfig) withDefaults() ChurnConfig {
	if c.OverrunThreshold == 0 {
		c.OverrunThreshold = 1.5
	}
	if c.Replanner == "" {
		c.Replanner = "eft"
	}
	return c
}

// ChurnOutcome summarizes one fault-injection run.
type ChurnOutcome struct {
	//vdce:unit seconds
	Makespan        float64 `json:"makespan"`
	Replans         int     `json:"replans"`
	HostDownReplans int     `json:"host_down_replans"`
	OverrunReplans  int     `json:"overrun_replans"`
	Moved           int     `json:"moved"`    // frontier tasks re-placed across all re-plans
	DupRuns         int     `json:"dup_runs"` // duplicate copies promoted to primary
	Killed          int     `json:"killed"`   // task executions lost to host failures
}

type churnRun struct {
	host  string // primary host
	hosts []string
	start float64
	pred  float64 // predicted duration as scheduled
	//vdce:unit seconds
	predFin   float64 // start + pred: the finish the scheduler expects
	actualFin float64
	detected  bool // overrun deviation already raised
}

// RunChurn replays table under the churn trace, re-planning the unstarted
// frontier through the named re-planner on every deviation. predicted is
// the scheduler-visible cost model; the trace's straggle multipliers turn
// it into ground truth. Every adopted re-plan is certified by
// CertifyReplan against the predicted model first.
func RunChurn(g *afg.Graph, table *AllocationTable, predicted TimeModel, net *netsim.Network, hosts []HostRef, trace ChurnTrace, cfg ChurnConfig) (*ChurnOutcome, error) {
	cfg = cfg.withDefaults()
	rp, err := LookupReplanner(cfg.Replanner)
	if err != nil {
		return nil, err
	}
	ids := g.TaskIDs()
	for _, id := range ids {
		if _, ok := table.Get(id); !ok {
			return nil, fmt.Errorf("scheduler: churn: task %s missing from table", id)
		}
	}

	cur := NewAllocationTableSized(table.App, len(ids))
	for _, id := range ids {
		a, _ := table.Get(id)
		cur.Set(a)
	}

	var (
		out      ChurnOutcome
		now      float64
		done     = make(map[afg.TaskID]float64, len(ids))
		running  = make(map[afg.TaskID]*churnRun)
		down     = make(map[string]bool)
		hostFree = make(map[string]float64)
		dupOf    = make(map[afg.TaskID]Assignment)
		traceIx  = 0
	)
	straggleOf := func(hs []string) float64 {
		m := 1.0
		for _, h := range hs {
			if s, ok := trace.Straggle[h]; ok && s > m {
				m = s
			}
		}
		return m
	}
	runningIDs := func() []afg.TaskID {
		rs := make([]afg.TaskID, 0, len(running))
		for id := range running {
			rs = append(rs, id)
		}
		sort.Slice(rs, func(i, j int) bool { return rs[i] < rs[j] })
		return rs
	}

	replan := func(ev Deviation) error {
		if cfg.MaxReplans > 0 && out.Replans >= cfg.MaxReplans {
			return nil
		}
		req := &ReplanRequest{
			Graph: g,
			Table: cur,
			Done:  done,
			// The scheduler's view of a running task is its expected
			// finish, floored at the present — it knows an overrunning
			// task has not finished yet, not when it will.
			Running: make(map[afg.TaskID]float64, len(running)),
			Down:    down,
			Event:   ev,
			Costs:   predicted,
			Hosts:   hosts,
			Net:     net,
		}
		for _, id := range runningIDs() {
			f := running[id].predFin
			if now > f {
				f = now
			}
			req.Running[id] = f
		}
		pl, err := rp.Replan(req)
		if err != nil {
			// An unrepairable moment (e.g. every eligible host down) is
			// not fatal: execution continues on the stale plan and a
			// later recovery or deviation may retry.
			return nil
		}
		if _, err := CertifyReplan(g, pl.Table, predicted, net); err != nil {
			return fmt.Errorf("churn replan (%s, %s): %w", cfg.Replanner, ev.Kind, err)
		}
		// Settled assignments must survive verbatim: the frontier
		// rescheduler may only move unstarted tasks.
		for _, id := range ids {
			_, isDone := done[id]
			_, isRun := running[id]
			if !isDone && !isRun {
				continue
			}
			was, _ := cur.Get(id)
			is, ok := pl.Table.Get(id)
			if !ok || was.Host != is.Host || was.Site != is.Site {
				return fmt.Errorf("churn replan (%s): settled task %s moved from %s to %s",
					cfg.Replanner, id, was.Host, is.Host)
			}
		}
		cur = pl.Table
		out.Replans++
		out.Moved += pl.Moved
		switch ev.Kind {
		case DeviationHostDown:
			out.HostDownReplans++
		case DeviationOverrun:
			out.OverrunReplans++
		}
		for _, d := range pl.Duplicates {
			if _, isDone := done[d.Task]; isDone {
				continue
			}
			if _, isRun := running[d.Task]; isRun {
				continue
			}
			dupOf[d.Task] = d
		}
		return nil
	}

	for len(done) < len(ids) {
		// Earliest pending start: parents done, every host up, clamped to
		// the present.
		const none = math.MaxFloat64
		startAt, startID := none, afg.TaskID("")
		for _, id := range ids {
			if _, isDone := done[id]; isDone {
				continue
			}
			if _, isRun := running[id]; isRun {
				continue
			}
			a, _ := cur.Get(id)
			hs := effectiveHosts(a)
			ok := true
			for _, h := range hs {
				if down[h] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			at := now
			for _, l := range g.Parents(id) {
				pf, isDone := done[l.From]
				if !isDone {
					ok = false
					break
				}
				arrive := pf
				if net != nil {
					pa, _ := cur.Get(l.From)
					// Simulate's transfer rule exactly: a link between
					// tasks sharing any host moves no data.
					if !sharesHost(effectiveHosts(pa), hs) {
						arrive += net.TransferTime(pa.Site, a.Site, transferBytes(g, l)).Seconds()
					}
				}
				if arrive > at {
					at = arrive
				}
			}
			if !ok {
				continue
			}
			for _, h := range hs {
				if f := hostFree[h]; f > at {
					at = f
				}
			}
			if at < startAt {
				startAt, startID = at, id
			}
		}

		finAt, finID := none, afg.TaskID("")
		detAt, detID := none, afg.TaskID("")
		for _, id := range runningIDs() {
			r := running[id]
			if r.actualFin < finAt {
				finAt, finID = r.actualFin, id
			}
			if cfg.OverrunThreshold > 1 && !r.detected {
				d := r.start + cfg.OverrunThreshold*r.pred
				if r.actualFin > d && d < detAt {
					detAt, detID = d, id
				}
			}
		}
		traceAt := none
		if traceIx < len(trace.Events) {
			traceAt = trace.Events[traceIx].At
		}

		// Priority at equal times: finishes land first, then availability
		// transitions, then overrun detections, then new starts — so a
		// re-plan always sees the freshest settled/down state, and no task
		// starts on a host in the same instant it goes down.
		switch {
		case finAt <= traceAt && finAt <= detAt && finAt <= startAt && finID != "":
			r := running[finID]
			now = finAt
			done[finID] = r.actualFin
			delete(running, finID)
			delete(dupOf, finID)

		case traceAt <= detAt && traceAt <= startAt && traceAt < none:
			ev := trace.Events[traceIx]
			traceIx++
			now = ev.At
			if !ev.Down {
				if down[ev.Host] {
					delete(down, ev.Host)
					if hostFree[ev.Host] < now {
						hostFree[ev.Host] = now
					}
				}
				break
			}
			if down[ev.Host] {
				break
			}
			down[ev.Host] = true
			hostFree[ev.Host] = now
			for _, id := range runningIDs() {
				r := running[id]
				if !hostIn(r.hosts, ev.Host) {
					continue
				}
				// Work lost: the task returns to the frontier. A live
				// registered duplicate becomes its new primary placement.
				delete(running, id)
				out.Killed++
				if d, ok := dupOf[id]; ok && !down[d.Host] {
					cur.Set(d)
					delete(dupOf, id)
					out.DupRuns++
				}
			}
			if err := replan(Deviation{Kind: DeviationHostDown, Host: ev.Host, At: now}); err != nil {
				return nil, err
			}

		case detAt <= startAt && detID != "":
			r := running[detID]
			now = detAt
			r.detected = true
			ratio := 0.0
			if r.pred > 0 {
				ratio = (r.actualFin - r.start) / r.pred
			}
			if err := replan(Deviation{
				Kind: DeviationOverrun, Host: r.host, Task: detID, At: now, Ratio: ratio,
			}); err != nil {
				return nil, err
			}

		case startID != "":
			now = startAt
			a, _ := cur.Get(startID)
			hs := effectiveHosts(a)
			task := g.Task(startID)
			pred := predicted(task, a.Host)
			if len(hs) > 1 {
				pred /= float64(len(hs)) // Simulate's parallel split
			}
			r := &churnRun{
				host: a.Host, hosts: hs, start: startAt, pred: pred,
				predFin:   startAt + pred,
				actualFin: startAt + pred*straggleOf(hs),
			}
			running[startID] = r
			for _, h := range hs {
				hostFree[h] = r.actualFin
			}

		default:
			return nil, errors.New("scheduler: churn: execution stuck (every runnable path is down and no recovery is scripted)")
		}
	}

	for _, id := range ids {
		if f := done[id]; f > out.Makespan {
			out.Makespan = f
		}
	}
	return &out, nil
}
