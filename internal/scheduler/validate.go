package scheduler

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/afg"
	"repro/internal/netsim"
)

// This file is the independent schedule validator: an oracle-grade audit of
// an AllocationTable against the simulator's execution semantics. It is
// deliberately written against the map-keyed Graph API with a naive
// quadratic ready-scan — no dense Index, no event heap, no shared code with
// Simulate — so a bug in the optimized scheduling or simulation core cannot
// hide from it. Experiments call it on every schedule they score, and the
// policy property tests use it as their backbone: whatever a policy emits
// must replay without precedence violations, without two tasks overlapping
// on one host, and with every inter-site transfer accounted.

// ScheduledSpan is one task's realized execution interval in the audit.
type ScheduledSpan struct {
	Task  afg.TaskID
	Site  string
	Hosts []string
	Start float64
	End   float64
}

// ScheduleAudit is the validator's reconstruction of the schedule: every
// task's interval (ascending by start time, task id on ties) plus the
// resulting makespan. Makespan equals Simulate's result exactly — the
// equivalence the property tests pin.
type ScheduleAudit struct {
	Spans    []ScheduledSpan
	Makespan float64
}

// Span returns the audited interval of one task.
func (a *ScheduleAudit) Span(id afg.TaskID) (ScheduledSpan, bool) {
	for _, s := range a.Spans {
		if s.Task == id {
			return s, true
		}
	}
	return ScheduledSpan{}, false
}

// ValidateSchedule audits table against the graph, ground-truth time model,
// and network: it checks the table is complete and well-formed, replays it
// under the documented execution semantics (a task starts when every parent
// has finished, transfers have arrived, and its hosts are free; among ready
// tasks the earliest start runs first, ties by id), and then re-verifies the
// realized intervals independently — precedence plus transfer accounting
// link by link, and per-host mutual exclusion interval by interval. Any
// violation is an error naming the offending tasks.
func ValidateSchedule(g *afg.Graph, table *AllocationTable, model TimeModel, net *netsim.Network) (*ScheduleAudit, error) {
	if g == nil || g.Len() == 0 {
		return nil, afg.ErrEmpty
	}
	if table == nil {
		return nil, fmt.Errorf("scheduler: validate: nil allocation table")
	}
	ids := g.TaskIDs()
	if err := checkTableShape(g, table, ids); err != nil {
		return nil, err
	}
	audit, err := replay(g, table, model, net, ids)
	if err != nil {
		return nil, err
	}
	if err := checkPrecedence(g, net, audit); err != nil {
		return nil, err
	}
	if err := checkHostExclusive(audit); err != nil {
		return nil, err
	}
	return audit, nil
}

// checkTableShape verifies the table covers the graph exactly: every task
// assigned once, no assignments for unknown tasks, and each assignment
// naming a primary host that belongs to its host set.
func checkTableShape(g *afg.Graph, table *AllocationTable, ids []afg.TaskID) error {
	// Sorted entry walk: a malformed table must produce the same error
	// every run, not whichever violation map order reaches first.
	entryIDs := make([]afg.TaskID, 0, len(table.Entries))
	for id := range table.Entries {
		entryIDs = append(entryIDs, id)
	}
	sort.Slice(entryIDs, func(i, j int) bool { return entryIDs[i] < entryIDs[j] })
	for _, id := range entryIDs {
		a := table.Entries[id]
		if g.Task(id) == nil {
			return fmt.Errorf("scheduler: validate: assignment for unknown task %q", id)
		}
		if a.Task != id {
			return fmt.Errorf("scheduler: validate: entry %q names task %q", id, a.Task)
		}
		if a.Host == "" {
			return fmt.Errorf("scheduler: validate: task %q has no host", id)
		}
		if len(a.Hosts) > 0 {
			member := false
			for _, h := range a.Hosts {
				if h == "" {
					return fmt.Errorf("scheduler: validate: task %q has an empty host in its host set", id)
				}
				if h == a.Host {
					member = true
				}
			}
			if !member {
				return fmt.Errorf("scheduler: validate: task %q primary host %q not in host set %v", id, a.Host, a.Hosts)
			}
		}
	}
	for _, id := range ids {
		if _, ok := table.Get(id); !ok {
			return fmt.Errorf("scheduler: validate: task %q missing from allocation table", id)
		}
	}
	return nil
}

// replay executes the table under the simulator's semantics with a naive
// quadratic ready-scan: every iteration rescans all unfinished tasks whose
// parents are done, computes each one's earliest start from scratch, and
// runs the (start, id)-minimal one. Identical arithmetic to Simulate —
// start = max(parent finish + transfer, host free) and duration split
// across a parallel host set — so the realized times match it bit for bit.
func replay(g *afg.Graph, table *AllocationTable, model TimeModel, net *netsim.Network, ids []afg.TaskID) (*ScheduleAudit, error) {
	finish := make(map[afg.TaskID]float64, len(ids))
	done := make(map[afg.TaskID]bool, len(ids))
	hostFree := map[string]float64{}

	startOf := func(id afg.TaskID) float64 {
		a, _ := table.Get(id)
		hosts := effectiveHosts(a)
		var start float64
		for _, l := range g.Parents(id) {
			p, _ := table.Get(l.From)
			arrive := finish[l.From]
			if net != nil && !sharesHost(effectiveHosts(p), hosts) {
				arrive += net.TransferTime(p.Site, a.Site, transferBytes(g, l)).Seconds()
			}
			start = math.Max(start, arrive)
		}
		for _, h := range hosts {
			start = math.Max(start, hostFree[h])
		}
		return start
	}

	audit := &ScheduleAudit{Spans: make([]ScheduledSpan, 0, len(ids))}
	for completed := 0; completed < len(ids); completed++ {
		pick := afg.TaskID("")
		var pickStart float64
		for _, id := range ids {
			if done[id] {
				continue
			}
			ready := true
			for _, l := range g.Parents(id) {
				if !done[l.From] {
					ready = false
					break
				}
			}
			if !ready {
				continue
			}
			s := startOf(id)
			if pick == "" || s < pickStart {
				pick, pickStart = id, s
			}
		}
		if pick == "" {
			return nil, fmt.Errorf("scheduler: validate: deadlock with %d tasks pending", len(ids)-completed)
		}
		a, _ := table.Get(pick)
		hosts := effectiveHosts(a)
		dur := model(g.Task(pick), a.Host)
		if dur < 0 || math.IsNaN(dur) || math.IsInf(dur, 0) {
			return nil, fmt.Errorf("scheduler: validate: invalid duration %v for task %q", dur, pick)
		}
		if len(hosts) > 1 {
			dur /= float64(len(hosts))
		}
		end := pickStart + dur
		finish[pick] = end
		done[pick] = true
		for _, h := range hosts {
			hostFree[h] = end
		}
		audit.Spans = append(audit.Spans, ScheduledSpan{
			Task: pick, Site: a.Site, Hosts: hosts, Start: pickStart, End: end,
		})
		audit.Makespan = math.Max(audit.Makespan, end)
	}
	sort.Slice(audit.Spans, func(i, j int) bool {
		if audit.Spans[i].Start != audit.Spans[j].Start {
			return audit.Spans[i].Start < audit.Spans[j].Start
		}
		return audit.Spans[i].Task < audit.Spans[j].Task
	})
	return audit, nil
}

// checkPrecedence re-verifies every link against the realized intervals
// alone (the audit spans carry the sites and host sets): the child may not
// start before the parent's finish plus the inter-site transfer (zero when
// the two assignments share a host).
func checkPrecedence(g *afg.Graph, net *netsim.Network, audit *ScheduleAudit) error {
	span := make(map[afg.TaskID]ScheduledSpan, len(audit.Spans))
	for _, s := range audit.Spans {
		span[s.Task] = s
	}
	for _, l := range g.Links() {
		parent, child := span[l.From], span[l.To]
		need := parent.End
		if net != nil && !sharesHost(parent.Hosts, child.Hosts) {
			need += net.TransferTime(parent.Site, child.Site, transferBytes(g, l)).Seconds()
		}
		if child.Start < need {
			return fmt.Errorf("scheduler: validate: precedence violation %s -> %s: child starts %v before data ready %v",
				l.From, l.To, child.Start, need)
		}
	}
	return nil
}

// checkHostExclusive re-verifies per-host mutual exclusion: on every host,
// the realized intervals must be disjoint (a host is a single workstation;
// parallel tasks occupy their whole host set for their full interval).
func checkHostExclusive(audit *ScheduleAudit) error {
	type interval struct {
		task       afg.TaskID
		start, end float64
	}
	byHost := map[string][]interval{}
	for _, s := range audit.Spans {
		for _, h := range s.Hosts {
			byHost[h] = append(byHost[h], interval{s.Task, s.Start, s.End})
		}
	}
	hosts := make([]string, 0, len(byHost))
	for h := range byHost {
		hosts = append(hosts, h)
	}
	sort.Strings(hosts)
	for _, host := range hosts {
		iv := byHost[host]
		sort.Slice(iv, func(i, j int) bool {
			if iv[i].start != iv[j].start {
				return iv[i].start < iv[j].start
			}
			return iv[i].task < iv[j].task
		})
		for i := 1; i < len(iv); i++ {
			if iv[i].start < iv[i-1].end {
				return fmt.Errorf("scheduler: validate: host %s double-booked: %s [%v, %v) overlaps %s [%v, %v)",
					host, iv[i-1].task, iv[i-1].start, iv[i-1].end, iv[i].task, iv[i].start, iv[i].end)
			}
		}
	}
	return nil
}
