package scheduler

import (
	"context"
	"errors"
	"sort"
	"strings"
	"testing"
)

// stubPolicy is a registerable no-op for registry tests.
type stubPolicy struct{ name string }

func (p stubPolicy) Name() string { return p.name }
func (p stubPolicy) Schedule(context.Context, *Request) (*AllocationTable, error) {
	return nil, errors.New("stub")
}

func TestRegisterDuplicatePanics(t *testing.T) {
	Register(stubPolicy{name: "test-registry-dup"})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	Register(stubPolicy{name: "test-registry-dup"})
}

func TestRegisterEmptyNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty-name Register did not panic")
		}
	}()
	Register(stubPolicy{})
}

func TestLookupUnknownNamesAvailablePolicies(t *testing.T) {
	_, err := Lookup("no-such-policy")
	if err == nil {
		t.Fatal("unknown policy did not error")
	}
	if !errors.Is(err, ErrUnknownPolicy) {
		t.Fatalf("error %v does not wrap ErrUnknownPolicy", err)
	}
	for _, want := range []string{"faithful", "eft", "heft", "cpop"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not list registered policy %q", err, want)
		}
	}
}

func TestPoliciesSortedAndComplete(t *testing.T) {
	names := Policies()
	if !sort.StringsAreSorted(names) {
		t.Fatalf("Policies() not sorted: %v", names)
	}
	have := map[string]bool{}
	for _, n := range names {
		have[n] = true
	}
	for _, want := range []string{
		"faithful", "eft", "ledger", "heft", "cpop",
		"random", "roundrobin", "minload", "fastest",
	} {
		if !have[want] {
			t.Fatalf("built-in policy %q not registered (have %v)", want, names)
		}
	}
	// Deterministic across calls.
	again := Policies()
	if len(again) != len(names) {
		t.Fatalf("Policies() changed size between calls")
	}
	for i := range names {
		if names[i] != again[i] {
			t.Fatalf("Policies() order unstable: %v vs %v", names, again)
		}
	}
	// Every registered policy resolves and reports its own name.
	for _, n := range names {
		p, err := Lookup(n)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", n, err)
		}
		if p.Name() != n {
			t.Fatalf("policy %q reports name %q", n, p.Name())
		}
	}
}
