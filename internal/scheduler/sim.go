package scheduler

import (
	"fmt"
	"math"

	"repro/internal/afg"
	"repro/internal/minheap"
	"repro/internal/netsim"
)

// TimeModel returns the ground-truth execution seconds of a task on a host.
// The evaluation benchmarks use it to score allocation tables: schedulers
// see (possibly stale) repository data, the simulator charges actual times.
type TimeModel func(task *afg.Task, host string) float64

// Simulate replays an allocation table with an event-driven simulator and
// returns the makespan (schedule length) in modelled seconds.
//
// Semantics:
//   - a task starts when all parents have finished AND their output has
//     arrived (inter-site transfer time from the network model) AND its
//     assigned host is free;
//   - each host executes one task at a time (the paper's hosts are single
//     workstations; parallel tasks occupy all their hosts);
//   - transfer between tasks sharing a host is free — parallel tasks
//     compare their full host sets, not just the primary — same site pays
//     the LAN cost, cross-site pays the WAN cost;
//   - among the tasks whose parents have finished, the one with the
//     earliest possible start runs next (ties broken by task id).
//
// The simulator is incremental: a ready-tracker derived from the graph
// feeds a min-heap of candidate starts, and a completion only recomputes
// the starts of tasks it actually unblocks (children gaining their last
// parent, plus heap entries made stale by the host timeline moving).
// Start times only ever move later, so a popped candidate whose start is
// stale is re-pushed with its current value — the classic lazy-update
// event queue. Total work is O((V+E)·log V) plus one re-push per
// (completion, co-hosted ready task) pair, versus the former full
// ready-set rebuild each iteration, O(V²·log V).
//
// All per-task state is slice-indexed through the graph's dense Index —
// task and host identities resolve to integers once, up front, and the
// event loop itself runs map-free.
//
//vdce:hot
func Simulate(g *afg.Graph, table *AllocationTable, model TimeModel, net *netsim.Network) (float64, error) {
	if g.Len() == 0 {
		return 0, afg.ErrEmpty
	}
	ix, err := g.Index()
	if err != nil {
		return 0, err
	}
	n := ix.Len()
	// All event-loop state is pooled scratch (scratch.go): the columns and
	// bulk loads are fully overwritten, the host-free and data-ready
	// vectors are growZero-reset because the loop folds maxima into them.
	sc := getScratch()
	defer sc.release()
	sc.assigns = grow(sc.assigns, n)
	assigns := sc.assigns
	total := 0
	for i := 0; i < n; i++ {
		a, ok := table.Get(ix.ID(i))
		if !ok {
			//vdce:ignore allocflow cold failure path: the error is built once and aborts the simulation
			return 0, fmt.Errorf("scheduler: task %q missing from allocation table", ix.ID(i))
		}
		assigns[i] = a
		if len(a.Hosts) > 0 { // count without materialising effectiveHosts
			total += len(a.Hosts)
		} else {
			total++
		}
	}
	sc.hostCols = grow(sc.hostCols, n)
	hostCols := sc.hostCols // dense host columns per task
	if sc.hostCol == nil {
		sc.hostCol = map[string]int32{}
	} else {
		clear(sc.hostCol)
	}
	hostCol := sc.hostCol // host name -> dense column
	sc.colArena = grow(sc.colArena, total)
	colArena := sc.colArena // one backing array for every entry; sc keeps the head
	colFor := func(h string) int32 {
		c, ok := hostCol[h]
		if !ok {
			c = int32(len(hostCol))
			hostCol[h] = c
		}
		return c
	}
	for i := 0; i < n; i++ {
		a := assigns[i]
		if len(a.Hosts) == 0 { // single-host: no effectiveHosts slice
			cols := colArena[:1:1]
			colArena = colArena[1:]
			cols[0] = colFor(a.Host)
			hostCols[i] = cols
			continue
		}
		cols := colArena[:len(a.Hosts):len(a.Hosts)]
		colArena = colArena[len(a.Hosts):]
		for k, h := range a.Hosts {
			cols[k] = colFor(h)
		}
		hostCols[i] = cols
	}

	sc.hostFree = growZero(sc.hostFree, len(hostCol))
	hostFree := sc.hostFree // column -> time host is free
	sc.pending = grow(sc.pending, n)
	pendingParents := sc.pending // unfinished-parent counts (bulk-loaded below)
	sc.dataReady = growZero(sc.dataReady, n)
	dataReady := sc.dataReady // max over finished parents of arrival time

	// startOf is the earliest time task i can begin given the current host
	// timeline. Valid only once all parents have finished (dataReady final).
	startOf := func(i int32) float64 {
		st := dataReady[i]
		for _, c := range hostCols[i] {
			st = math.Max(st, hostFree[c])
		}
		return st
	}

	// The event queue never holds more than one entry per task plus the
	// in-flight lazy re-pushes; capacity n keeps Push growth-free.
	sc.simHeap = grow(sc.simHeap, n)
	q := pq(sc.simHeap[:0])
	for i := 0; i < n; i++ {
		pendingParents[i] = int32(ix.NumParents(i))
		if pendingParents[i] == 0 {
			//vdce:ignore allocflow appends into the capacity-n backing array made above: the bulk load never grows it
			q = append(q, pqItem{i: int32(i)})
		}
	}
	q.Init()

	var makespan float64
	completed := 0
	for len(q) > 0 {
		it := q.Pop()
		if cur := startOf(it.i); cur > it.start {
			// A completion since this entry was pushed moved one of the
			// task's hosts further out; re-queue at the current start.
			it.start = cur
			q.Push(it)
			continue
		}
		a := assigns[it.i]
		dur := model(ix.Task(int(it.i)), a.Host)
		if dur < 0 || math.IsNaN(dur) || math.IsInf(dur, 0) {
			//vdce:ignore allocflow cold failure path: the error is built once and aborts the simulation
			return 0, fmt.Errorf("scheduler: invalid duration %v for task %q", dur, ix.ID(int(it.i)))
		}
		// Parallel tasks run across all hosts for duration/#hosts.
		cols := hostCols[it.i]
		if len(cols) > 1 {
			dur /= float64(len(cols))
		}
		end := it.start + dur
		for _, c := range cols {
			hostFree[c] = end
		}
		completed++
		makespan = math.Max(makespan, end)

		// Completion unblocks children: fold this task's finish (plus any
		// transfer) into each child's data-ready time; a child losing its
		// last pending parent enters the candidate heap.
		for _, arc := range ix.Children(int(it.i)) {
			ci := arc.Peer
			arrive := end
			if net != nil && !sharesCol(cols, hostCols[ci]) {
				arrive += net.TransferTime(a.Site, assigns[ci].Site, arc.Bytes).Seconds()
			}
			dataReady[ci] = math.Max(dataReady[ci], arrive)
			pendingParents[ci]--
			if pendingParents[ci] == 0 {
				q.Push(pqItem{i: ci, start: startOf(ci)})
			}
		}
	}
	if completed != n {
		return 0, fmt.Errorf("scheduler: simulation deadlock with %d tasks pending", n-completed)
	}
	return makespan, nil
}

// sharesCol reports whether two dense host-column sets intersect (the
// integer twin of sharesHost; host sets are tiny, so the quadratic scan
// beats building a set).
func sharesCol(a, b []int32) bool {
	for _, x := range a {
		for _, y := range b {
			if x == y {
				return true
			}
		}
	}
	return false
}

// CommVolume sums the modelled inter-host communication time of a table —
// the quantity the paper's co-location argument minimises ("to decrease the
// inter-task communication time"). A link between tasks sharing any host
// (parallel tasks occupy several) moves no data and costs nothing.
func CommVolume(g *afg.Graph, table *AllocationTable, net *netsim.Network) float64 {
	var total float64
	for _, l := range g.Links() {
		from, ok1 := table.Get(l.From)
		to, ok2 := table.Get(l.To)
		if !ok1 || !ok2 || net == nil || sharesHost(effectiveHosts(from), effectiveHosts(to)) {
			continue
		}
		total += net.TransferTime(from.Site, to.Site, transferBytes(g, l)).Seconds()
	}
	return total
}

// effectiveHosts returns the hosts an assignment occupies: the parallel
// host set when present, else the single primary host.
func effectiveHosts(a Assignment) []string {
	if len(a.Hosts) > 0 {
		return a.Hosts
	}
	//vdce:ignore allocflow the single-host literal usually stays on the stack (non-escaping callers); dense hot paths precompute hostCols instead
	return []string{a.Host}
}

// sharesHost reports whether two host sets intersect. Host sets are tiny
// (the paper's parallel tasks span a few workstations), so the quadratic
// scan beats building a map.
func sharesHost(a, b []string) bool {
	for _, x := range a {
		for _, y := range b {
			if x == y {
				return true
			}
		}
	}
	return false
}

// pq is the simulator's event queue: a min-heap of candidate task starts.
// Ties break on the dense task index, which equals ascending TaskID order
// by the Index invariant.
type pqItem struct {
	i     int32 // dense task index
	start float64
}

// LessThan implements minheap.Ordered.
func (a pqItem) LessThan(b pqItem) bool {
	if a.start != b.start {
		return a.start < b.start
	}
	return a.i < b.i
}

type pq = minheap.Heap[pqItem]
