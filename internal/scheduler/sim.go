package scheduler

import (
	"container/heap"
	"fmt"
	"math"

	"repro/internal/afg"
	"repro/internal/netsim"
)

// TimeModel returns the ground-truth execution seconds of a task on a host.
// The evaluation benchmarks use it to score allocation tables: schedulers
// see (possibly stale) repository data, the simulator charges actual times.
type TimeModel func(task *afg.Task, host string) float64

// Simulate replays an allocation table with an event-driven simulator and
// returns the makespan (schedule length) in modelled seconds.
//
// Semantics:
//   - a task starts when all parents have finished AND their output has
//     arrived (inter-site transfer time from the network model) AND its
//     assigned host is free;
//   - each host executes one task at a time (the paper's hosts are single
//     workstations; parallel tasks occupy all their hosts);
//   - transfer between tasks on the same host is free, same site pays the
//     LAN cost, cross-site pays the WAN cost.
func Simulate(g *afg.Graph, table *AllocationTable, model TimeModel, net *netsim.Network) (float64, error) {
	if err := g.Validate(); err != nil {
		return 0, err
	}
	order, err := g.TopoOrder()
	if err != nil {
		return 0, err
	}
	hostFree := map[string]float64{}   // host -> time it becomes free
	finish := map[afg.TaskID]float64{} // task -> finish time

	// Process tasks in an earliest-start-first event order: repeatedly pick
	// the schedulable task (all parents done) with the earliest possible
	// start. A simple priority queue over candidate starts suffices
	// because starts only move later, never earlier.
	pending := map[afg.TaskID]bool{}
	for _, id := range order {
		pending[id] = true
	}
	ready := func(id afg.TaskID) bool {
		for _, l := range g.Parents(id) {
			if _, ok := finish[l.From]; !ok {
				return false
			}
		}
		return true
	}
	startTime := func(id afg.TaskID) (float64, error) {
		a, ok := table.Get(id)
		if !ok {
			return 0, fmt.Errorf("scheduler: task %q missing from allocation table", id)
		}
		var earliest float64
		for _, l := range g.Parents(id) {
			p, _ := table.Get(l.From)
			arrive := finish[l.From]
			if net != nil && p.Host != a.Host {
				arrive += net.TransferTime(p.Site, a.Site, transferBytes(g, l)).Seconds()
			}
			earliest = math.Max(earliest, arrive)
		}
		hosts := a.Hosts
		if len(hosts) == 0 {
			hosts = []string{a.Host}
		}
		for _, h := range hosts {
			earliest = math.Max(earliest, hostFree[h])
		}
		return earliest, nil
	}

	var makespan float64
	for len(pending) > 0 {
		// Collect schedulable tasks.
		var q pq
		heap.Init(&q)
		for _, id := range order {
			if pending[id] && ready(id) {
				st, err := startTime(id)
				if err != nil {
					return 0, err
				}
				heap.Push(&q, pqItem{id: id, start: st})
			}
		}
		if q.Len() == 0 {
			return 0, fmt.Errorf("scheduler: simulation deadlock with %d tasks pending", len(pending))
		}
		it := heap.Pop(&q).(pqItem)
		a, _ := table.Get(it.id)
		dur := model(g.Task(it.id), a.Host)
		if dur < 0 || math.IsNaN(dur) || math.IsInf(dur, 0) {
			return 0, fmt.Errorf("scheduler: invalid duration %v for task %q", dur, it.id)
		}
		// Parallel tasks run across all hosts for duration/#hosts.
		hosts := a.Hosts
		if len(hosts) == 0 {
			hosts = []string{a.Host}
		}
		if len(hosts) > 1 {
			dur /= float64(len(hosts))
		}
		end := it.start + dur
		for _, h := range hosts {
			hostFree[h] = end
		}
		finish[it.id] = end
		delete(pending, it.id)
		makespan = math.Max(makespan, end)
	}
	return makespan, nil
}

// CommVolume sums the modelled inter-host communication time of a table —
// the quantity the paper's co-location argument minimises ("to decrease the
// inter-task communication time").
func CommVolume(g *afg.Graph, table *AllocationTable, net *netsim.Network) float64 {
	var total float64
	for _, l := range g.Links() {
		from, ok1 := table.Get(l.From)
		to, ok2 := table.Get(l.To)
		if !ok1 || !ok2 || from.Host == to.Host || net == nil {
			continue
		}
		total += net.TransferTime(from.Site, to.Site, transferBytes(g, l)).Seconds()
	}
	return total
}

// pq is a min-heap of candidate task starts.
type pqItem struct {
	id    afg.TaskID
	start float64
}

type pq []pqItem

func (q pq) Len() int { return len(q) }
func (q pq) Less(i, j int) bool {
	if q[i].start != q[j].start {
		return q[i].start < q[j].start
	}
	return q[i].id < q[j].id
}
func (q pq) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x any)   { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}
