package scheduler

import (
	"container/heap"
	"fmt"
	"math"

	"repro/internal/afg"
	"repro/internal/netsim"
)

// TimeModel returns the ground-truth execution seconds of a task on a host.
// The evaluation benchmarks use it to score allocation tables: schedulers
// see (possibly stale) repository data, the simulator charges actual times.
type TimeModel func(task *afg.Task, host string) float64

// Simulate replays an allocation table with an event-driven simulator and
// returns the makespan (schedule length) in modelled seconds.
//
// Semantics:
//   - a task starts when all parents have finished AND their output has
//     arrived (inter-site transfer time from the network model) AND its
//     assigned host is free;
//   - each host executes one task at a time (the paper's hosts are single
//     workstations; parallel tasks occupy all their hosts);
//   - transfer between tasks sharing a host is free — parallel tasks
//     compare their full host sets, not just the primary — same site pays
//     the LAN cost, cross-site pays the WAN cost;
//   - among the tasks whose parents have finished, the one with the
//     earliest possible start runs next (ties broken by task id).
//
// The simulator is incremental: a ready-tracker derived from the graph
// feeds a min-heap of candidate starts, and a completion only recomputes
// the starts of tasks it actually unblocks (children gaining their last
// parent, plus heap entries made stale by the host timeline moving).
// Start times only ever move later, so a popped candidate whose start is
// stale is re-pushed with its current value — the classic lazy-update
// event queue. Total work is O((V+E)·log V) plus one re-push per
// (completion, co-hosted ready task) pair, versus the former full
// ready-set rebuild each iteration, O(V²·log V).
func Simulate(g *afg.Graph, table *AllocationTable, model TimeModel, net *netsim.Network) (float64, error) {
	if err := g.Validate(); err != nil {
		return 0, err
	}
	order, err := g.TopoOrder()
	if err != nil {
		return 0, err
	}
	n := len(order)
	idx := make(map[afg.TaskID]int, n)
	for i, id := range order {
		idx[id] = i
	}
	assigns := make([]Assignment, n)
	hostsOf := make([][]string, n)
	for i, id := range order {
		a, ok := table.Get(id)
		if !ok {
			return 0, fmt.Errorf("scheduler: task %q missing from allocation table", id)
		}
		assigns[i] = a
		hostsOf[i] = effectiveHosts(a)
	}

	hostFree := map[string]float64{} // host -> time it becomes free
	pendingParents := make([]int, n) // unfinished-parent counts
	dataReady := make([]float64, n)  // max over finished parents of arrival time

	// startOf is the earliest time task i can begin given the current host
	// timeline. Valid only once all parents have finished (dataReady final).
	startOf := func(i int) float64 {
		st := dataReady[i]
		for _, h := range hostsOf[i] {
			st = math.Max(st, hostFree[h])
		}
		return st
	}

	var q pq
	for i, id := range order {
		pendingParents[i] = len(g.Parents(id))
		if pendingParents[i] == 0 {
			heap.Push(&q, pqItem{id: id, i: i, start: 0})
		}
	}

	var makespan float64
	completed := 0
	for q.Len() > 0 {
		it := heap.Pop(&q).(pqItem)
		if cur := startOf(it.i); cur > it.start {
			// A completion since this entry was pushed moved one of the
			// task's hosts further out; re-queue at the current start.
			it.start = cur
			heap.Push(&q, it)
			continue
		}
		a := assigns[it.i]
		dur := model(g.Task(it.id), a.Host)
		if dur < 0 || math.IsNaN(dur) || math.IsInf(dur, 0) {
			return 0, fmt.Errorf("scheduler: invalid duration %v for task %q", dur, it.id)
		}
		// Parallel tasks run across all hosts for duration/#hosts.
		hosts := hostsOf[it.i]
		if len(hosts) > 1 {
			dur /= float64(len(hosts))
		}
		end := it.start + dur
		for _, h := range hosts {
			hostFree[h] = end
		}
		completed++
		makespan = math.Max(makespan, end)

		// Completion unblocks children: fold this task's finish (plus any
		// transfer) into each child's data-ready time; a child losing its
		// last pending parent enters the candidate heap.
		for _, l := range g.Children(it.id) {
			ci := idx[l.To]
			arrive := end
			if net != nil && !sharesHost(hostsOf[it.i], hostsOf[ci]) {
				arrive += net.TransferTime(a.Site, assigns[ci].Site, transferBytes(g, l)).Seconds()
			}
			dataReady[ci] = math.Max(dataReady[ci], arrive)
			pendingParents[ci]--
			if pendingParents[ci] == 0 {
				heap.Push(&q, pqItem{id: l.To, i: ci, start: startOf(ci)})
			}
		}
	}
	if completed != n {
		return 0, fmt.Errorf("scheduler: simulation deadlock with %d tasks pending", n-completed)
	}
	return makespan, nil
}

// CommVolume sums the modelled inter-host communication time of a table —
// the quantity the paper's co-location argument minimises ("to decrease the
// inter-task communication time"). A link between tasks sharing any host
// (parallel tasks occupy several) moves no data and costs nothing.
func CommVolume(g *afg.Graph, table *AllocationTable, net *netsim.Network) float64 {
	var total float64
	for _, l := range g.Links() {
		from, ok1 := table.Get(l.From)
		to, ok2 := table.Get(l.To)
		if !ok1 || !ok2 || net == nil || sharesHost(effectiveHosts(from), effectiveHosts(to)) {
			continue
		}
		total += net.TransferTime(from.Site, to.Site, transferBytes(g, l)).Seconds()
	}
	return total
}

// effectiveHosts returns the hosts an assignment occupies: the parallel
// host set when present, else the single primary host.
func effectiveHosts(a Assignment) []string {
	if len(a.Hosts) > 0 {
		return a.Hosts
	}
	return []string{a.Host}
}

// sharesHost reports whether two host sets intersect. Host sets are tiny
// (the paper's parallel tasks span a few workstations), so the quadratic
// scan beats building a map.
func sharesHost(a, b []string) bool {
	for _, x := range a {
		for _, y := range b {
			if x == y {
				return true
			}
		}
	}
	return false
}

// pq is a min-heap of candidate task starts.
type pqItem struct {
	id    afg.TaskID
	i     int // topological index into the simulator's task arrays
	start float64
}

type pq []pqItem

func (q pq) Len() int { return len(q) }
func (q pq) Less(i, j int) bool {
	if q[i].start != q[j].start {
		return q[i].start < q[j].start
	}
	return q[i].id < q[j].id
}
func (q pq) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x any)   { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}
