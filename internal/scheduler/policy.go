package scheduler

import (
	"context"

	"repro/internal/afg"
	"repro/internal/netsim"
	"repro/internal/repository"
)

// Policy is the pluggable scheduling-heuristic contract: every scheduling
// algorithm in the system — the paper-faithful Site Scheduler, its
// availability-aware variants, the HEFT/CPOP list heuristics, and the naive
// baselines — maps an application flow graph to a resource allocation table
// through this one interface. Policies are stateless singletons registered
// by name (Register/Lookup/Policies); everything a run needs travels in the
// Request, so one Policy value may serve concurrent Schedule calls.
type Policy interface {
	// Name is the registry key ("faithful", "eft", "heft", ...).
	Name() string
	// Schedule maps req.Graph onto the environment described by req.
	Schedule(ctx context.Context, req *Request) (*AllocationTable, error)
}

// PriorityFunc orders a set of ready tasks given the graph's level values.
// ByLevel is the paper's rule; FIFOPriority is the ablation.
type PriorityFunc func([]afg.TaskID, map[afg.TaskID]float64) []afg.TaskID

// Request carries one scheduling problem: the application flow graph, the
// predictor services of the participating sites (the local Host Selection
// service plus remote peers), the network model, and the tuning Config.
type Request struct {
	// Graph is the application flow graph to place.
	Graph *afg.Graph

	// Local is the local site's Host Selection service (the predictor the
	// paper's Fig 5 algorithm runs against). Policies that want per-host
	// costs use the HostCoster extension when the selector offers it.
	Local HostSelector

	// Remotes are the other known sites; Config.K bounds the fan-out.
	Remotes []HostSelector

	// Net supplies transfer_time(Si, Sj); nil means communication is free.
	Net *netsim.Network

	// Sites optionally exposes the raw site repositories for policies that
	// need host inventories rather than predictions (the naive baselines).
	// When nil, repositories are recovered from any in-process
	// LocalSelector among Local/Remotes.
	Sites map[string]*repository.Repository

	// Diag, when non-nil, collects per-site gather diagnostics: which
	// sites were dropped from the multicast and whether the drop was a
	// capacity refusal (the site cannot host some task) or a transient
	// failure (RPC or repository error) — lost capacity that previously
	// vanished without trace.
	Diag *Diagnostics

	// Config tunes the run; build it with NewConfig and the With* options.
	Config Config
}

// NewRequest assembles a Request over the given environment with the
// functional options applied on top of the defaults.
func NewRequest(g *afg.Graph, local HostSelector, remotes []HostSelector, net *netsim.Network, opts ...Option) *Request {
	return &Request{
		Graph:   g,
		Local:   local,
		Remotes: remotes,
		Net:     net,
		Config:  NewConfig(opts...),
	}
}

// siteRepos returns the repositories visible to this request: the explicit
// Sites map when set, else whatever the in-process selectors expose.
func (r *Request) siteRepos() map[string]*repository.Repository {
	if len(r.Sites) > 0 {
		return r.Sites
	}
	out := map[string]*repository.Repository{}
	add := func(sel HostSelector) {
		if ls, ok := sel.(*LocalSelector); ok && ls.Repo != nil {
			out[ls.Site] = ls.Repo
		}
	}
	if r.Local != nil {
		add(r.Local)
	}
	for _, sel := range r.Remotes {
		add(sel)
	}
	return out
}

// Config is the one knob block shared by every policy, replacing the
// scattered booleans and builder methods of the pre-policy API. The zero
// value is NOT the default — use NewConfig so defaults (transfer-aware
// placement) apply.
type Config struct {
	// EFT switches site policies from the paper-faithful objective
	// (predicted + transfer) to earliest-finish-time placement over
	// estimated host-free timelines.
	EFT bool

	// Ledger is the shared cross-application load ledger; non-nil implies
	// availability-aware placement for the site policies and seeds the
	// HEFT/CPOP host timelines with other applications' reservations.
	Ledger *LoadLedger

	// Concurrency bounds the per-site fan-out worker pool
	// (0 = GOMAXPROCS, 1 = serial).
	Concurrency int

	// Priority orders the ready set; nil uses the paper's level rule.
	Priority PriorityFunc

	// TransferAware toggles the transfer-time term of the faithful
	// objective (default true; false is the Fig 4 ablation).
	TransferAware bool

	// K bounds the neighbour-site fan-out (0 = all remotes).
	K int

	// Seed feeds the randomized policies ("random").
	Seed int64

	// Costs, when non-nil, shares batched cost-matrix gathers across
	// schedules of the same graph (HEFT/CPOP): a policy-comparison run
	// gathers each graph once instead of once per policy. The cache is
	// keyed by graph identity and must not outlive the environment.
	Costs *CostCache
}

// Option mutates a Config (functional options).
type Option func(*Config)

// NewConfig returns the default configuration with opts applied.
func NewConfig(opts ...Option) Config {
	c := Config{TransferAware: true}
	for _, o := range opts {
		o(&c)
	}
	return c
}

// WithEFT selects earliest-finish-time placement (availability-aware).
func WithEFT() Option { return func(c *Config) { c.EFT = true } }

// WithLedger threads the shared cross-application load ledger through the
// run (implying availability-aware placement for the site policies).
func WithLedger(l *LoadLedger) Option {
	return func(c *Config) {
		c.Ledger = l
		if l != nil {
			c.EFT = true
		}
	}
}

// WithConcurrency bounds the per-site fan-out workers (0 = GOMAXPROCS).
func WithConcurrency(n int) Option { return func(c *Config) { c.Concurrency = n } }

// WithPriority installs a ready-set ordering rule (nil = the level rule).
func WithPriority(p PriorityFunc) Option { return func(c *Config) { c.Priority = p } }

// WithTransferAware toggles the transfer-time term (default on).
func WithTransferAware(on bool) Option { return func(c *Config) { c.TransferAware = on } }

// WithK bounds the neighbour-site fan-out (0 = all remotes).
func WithK(k int) Option { return func(c *Config) { c.K = k } }

// WithSeed seeds the randomized policies.
func WithSeed(seed int64) Option { return func(c *Config) { c.Seed = seed } }

// WithCostCache shares one cost-matrix cache across requests built from
// this config (one batched candidate gather per graph, however many
// policies schedule it).
func WithCostCache(cc *CostCache) Option { return func(c *Config) { c.Costs = cc } }

// Bind fixes a policy to an environment, yielding the legacy Scheduler
// interface: each Schedule(g) call copies env, installs g, and runs the
// policy. The env's Graph field is ignored. This is how scheduler.Batch and
// site.Manager run policies selected by name.
func Bind(p Policy, env Request) Scheduler {
	return &boundPolicy{policy: p, env: env}
}

// boundPolicy adapts (Policy, environment) to the Scheduler interface.
type boundPolicy struct {
	policy Policy
	env    Request
}

// Schedule implements Scheduler.
func (b *boundPolicy) Schedule(g *afg.Graph) (*AllocationTable, error) {
	req := b.env
	req.Graph = g
	return b.policy.Schedule(context.Background(), &req)
}

// withLedger returns a copy whose runs share the given ledger (and, for the
// site policies, availability-aware placement — the ledger requires it).
func (b *boundPolicy) withLedger(l *LoadLedger) *boundPolicy {
	c := *b
	c.env.Config.Ledger = l
	c.env.Config.EFT = true
	return &c
}

// withCosts returns a copy whose runs share the given cost-matrix cache.
func (b *boundPolicy) withCosts(cc *CostCache) *boundPolicy {
	c := *b
	c.env.Config.Costs = cc
	return &c
}
