//vdce:ignore-file floateq policy equivalence file: HEFT variants are asserted to produce bit-identical predictions
package scheduler

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/afg"
	"repro/internal/netsim"
	"repro/internal/repository"
)

// heftEnv builds a 3-site heterogeneous environment: site speeds differ so
// the heuristics have real choices to make.
func heftEnv(t testing.TB) (*Request, map[string]*repository.Repository, *netsim.Network) {
	t.Helper()
	repos := map[string]*repository.Repository{
		"alpha": makeRepo(t, "alpha", map[string][2]float64{
			"alpha-0": {4, 0}, "alpha-1": {2, 0.5}, "alpha-2": {1, 0},
		}),
		"beta": makeRepo(t, "beta", map[string][2]float64{
			"beta-0": {3, 0}, "beta-1": {3, 2}, "beta-2": {1, 1},
		}),
		"gamma": makeRepo(t, "gamma", map[string][2]float64{
			"gamma-0": {2, 0}, "gamma-1": {2, 0}, "gamma-2": {2, 0},
		}),
	}
	net := netsim.StarTopology([]string{"alpha", "beta", "gamma"}, 5*time.Millisecond, 1e7, 1)
	local := &LocalSelector{Site: "alpha", Repo: repos["alpha"]}
	remotes := []HostSelector{
		&LocalSelector{Site: "beta", Repo: repos["beta"]},
		&LocalSelector{Site: "gamma", Repo: repos["gamma"]},
	}
	req := NewRequest(nil, local, remotes, net)
	req.Sites = repos
	return req, repos, net
}

// layeredDAG builds a deterministic random layered DAG for precedence
// validation: every task in layer i draws parents from layer i-1.
func layeredDAG(t testing.TB, layers, width int, seed int64) *afg.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := afg.New(fmt.Sprintf("layered-%d", seed))
	var prev []afg.TaskID
	for l := 0; l < layers; l++ {
		var cur []afg.TaskID
		for w := 0; w < width; w++ {
			id := afg.TaskID(fmt.Sprintf("l%02dw%02d", l, w))
			err := g.AddTask(&afg.Task{
				ID: id, Function: "synthetic.noop",
				ComputeCost: 0.2 + rng.Float64()*3,
				OutputBytes: int64(rng.Intn(1 << 14)),
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range prev {
				if rng.Float64() < 0.4 {
					if err := g.AddLink(afg.Link{From: p, To: id}); err != nil {
						t.Fatal(err)
					}
				}
			}
			cur = append(cur, id)
		}
		prev = cur
	}
	return g
}

// heftTruth scores tables against the recorded repository state.
func heftTruth(repos map[string]*repository.Repository) TimeModel {
	specs := map[string]repository.ResourceRecord{}
	for _, repo := range repos {
		for _, rec := range repo.Resources.List() {
			specs[rec.Static.HostName] = rec
		}
	}
	return func(task *afg.Task, host string) float64 {
		rec, ok := specs[host]
		if !ok {
			return task.ComputeCost
		}
		return task.ComputeCost / rec.Static.SpeedFactor * (1 + rec.Dynamic.Load)
	}
}

// validateSchedule asserts the policy's table covers every task, respects
// precedence in its assignment order, and replays to a finite makespan.
func validateSchedule(t *testing.T, g *afg.Graph, table *AllocationTable, repos map[string]*repository.Repository, net *netsim.Network) float64 {
	t.Helper()
	if len(table.Entries) != g.Len() {
		t.Fatalf("table covers %d of %d tasks", len(table.Entries), g.Len())
	}
	pos := map[afg.TaskID]int{}
	for i, id := range table.Order() {
		pos[id] = i
	}
	if len(pos) != g.Len() {
		t.Fatalf("assignment order covers %d of %d tasks", len(pos), g.Len())
	}
	for _, l := range g.Links() {
		if pos[l.From] >= pos[l.To] {
			t.Fatalf("precedence violated in assignment order: %q (pos %d) scheduled after child %q (pos %d)",
				l.From, pos[l.From], l.To, pos[l.To])
		}
	}
	mk, err := Simulate(g, table, heftTruth(repos), net)
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	if mk <= 0 || math.IsInf(mk, 0) || math.IsNaN(mk) {
		t.Fatalf("bad makespan %v", mk)
	}
	return mk
}

func TestHEFTRespectsPrecedenceOnRandomDAGs(t *testing.T) {
	p, err := Lookup("heft")
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed <= 5; seed++ {
		req, repos, net := heftEnv(t)
		req.Graph = layeredDAG(t, 6, 8, seed)
		table, err := p.Schedule(context.Background(), req)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		validateSchedule(t, req.Graph, table, repos, net)
	}
}

func TestCPOPRespectsPrecedenceOnRandomDAGs(t *testing.T) {
	p, err := Lookup("cpop")
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed <= 5; seed++ {
		req, repos, net := heftEnv(t)
		req.Graph = layeredDAG(t, 6, 8, seed)
		table, err := p.Schedule(context.Background(), req)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		validateSchedule(t, req.Graph, table, repos, net)
	}
}

// A pure chain IS its own critical path: CPOP must pin every task of the
// chain onto one host (the critical-path processor).
func TestCPOPPinsCriticalPathToOneHost(t *testing.T) {
	p, err := Lookup("cpop")
	if err != nil {
		t.Fatal(err)
	}
	req, repos, net := heftEnv(t)
	req.Graph = chainGraph(t, []float64{2, 3, 1, 4, 2}, 1<<12)
	table, err := p.Schedule(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	validateSchedule(t, req.Graph, table, repos, net)
	hosts := map[string]bool{}
	for _, a := range table.Entries {
		hosts[a.Host] = true
	}
	if len(hosts) != 1 {
		t.Fatalf("critical-path chain spread over %d hosts: %v", len(hosts), hosts)
	}
	// And the pin must be the fastest idle machine (alpha-0, speed 4).
	for _, a := range table.Entries {
		if a.Host != "alpha-0" {
			t.Fatalf("critical path pinned to %q, want alpha-0", a.Host)
		}
	}
}

// HEFT prices host contention (via its timelines) that the faithful
// objective cannot see: on a wide layer of identical tasks the faithful
// walk dog-piles the per-prediction-best hosts, while HEFT spreads — the
// simulated makespan must not be worse.
func TestHEFTNotWorseThanFaithfulUnderContention(t *testing.T) {
	heft, err := Lookup("heft")
	if err != nil {
		t.Fatal(err)
	}
	faithful, err := Lookup("faithful")
	if err != nil {
		t.Fatal(err)
	}
	g := afg.New("wide")
	for i := 0; i < 24; i++ {
		id := afg.TaskID(fmt.Sprintf("t%02d", i))
		if err := g.AddTask(&afg.Task{ID: id, Function: "synthetic.noop", ComputeCost: 2}); err != nil {
			t.Fatal(err)
		}
	}
	var mks [2]float64
	for i, p := range []Policy{heft, faithful} {
		req, repos, net := heftEnv(t)
		req.Graph = g
		table, err := p.Schedule(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		mks[i] = validateSchedule(t, g, table, repos, net)
	}
	if mks[0] > mks[1] {
		t.Fatalf("heft (%v) worse than faithful (%v) under contention", mks[0], mks[1])
	}
}

// Parallel-mode tasks take a machine set, not one host, under HEFT too.
func TestHEFTHandlesParallelTasks(t *testing.T) {
	p, err := Lookup("heft")
	if err != nil {
		t.Fatal(err)
	}
	req, repos, net := heftEnv(t)
	g := afg.New("par")
	if err := g.AddTask(&afg.Task{ID: "pre", Function: "synthetic.noop", ComputeCost: 1}); err != nil {
		t.Fatal(err)
	}
	err = g.AddTask(&afg.Task{
		ID: "wide", Function: "synthetic.noop", ComputeCost: 8,
		Mode: afg.Parallel, Processors: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.AddLink(afg.Link{From: "pre", To: "wide", Bytes: 1 << 10}); err != nil {
		t.Fatal(err)
	}
	req.Graph = g
	table, err := p.Schedule(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	validateSchedule(t, g, table, repos, net)
	a, _ := table.Get("wide")
	if len(a.Hosts) != 3 {
		t.Fatalf("parallel task got %d hosts: %v", len(a.Hosts), a.Hosts)
	}
	site := a.Site
	for _, h := range a.Hosts {
		if h[:len(site)] != site {
			t.Fatalf("parallel host set crosses sites: %v", a.Hosts)
		}
	}
}

// The insertion-based timeline must slide a short task into an idle gap
// rather than appending after the last reservation.
func TestTimelineInsertionFillsGaps(t *testing.T) {
	var tl timeline
	tl.add(0, 2)
	tl.add(5, 8)
	if got := tl.earliest(0, 3); got != 2 {
		t.Fatalf("3s task: start %v, want 2 (the [2,5) gap)", got)
	}
	if got := tl.earliest(0, 4); got != 8 {
		t.Fatalf("4s task: start %v, want 8 (gap too small)", got)
	}
	if got := tl.earliest(6, 1); got != 8 {
		t.Fatalf("ready mid-reservation: start %v, want 8", got)
	}
	tl.add(2, 5)
	if got := tl.end(); got != 8 {
		t.Fatalf("end = %v, want 8", got)
	}
}

// Two applications scheduled through the policy API with one shared ledger
// must spread around each other — the WithLedger option on the request.
func TestHEFTSharedLedgerSpreadsApplications(t *testing.T) {
	p, err := Lookup("heft")
	if err != nil {
		t.Fatal(err)
	}
	ledger := NewLoadLedger()
	hosts := map[string]bool{}
	for i := 0; i < 3; i++ {
		req, _, _ := heftEnv(t)
		req.Config = NewConfig(WithLedger(ledger))
		g := afg.New(fmt.Sprintf("app%d", i))
		if err := g.AddTask(&afg.Task{ID: "t", Function: "synthetic.noop", ComputeCost: 5}); err != nil {
			t.Fatal(err)
		}
		req.Graph = g
		table, err := p.Schedule(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		a, _ := table.Get("t")
		hosts[a.Host] = true
	}
	if len(hosts) < 2 {
		t.Fatalf("shared ledger did not spread identical apps: %v", hosts)
	}
}

// The deprecated SiteScheduler.Schedule entry point must produce the same
// table as the policy it now delegates to.
func TestDeprecatedScheduleMatchesPolicyAPI(t *testing.T) {
	for _, eft := range []bool{false, true} {
		req, _, net := heftEnv(t)
		req.Graph = layeredDAG(t, 4, 6, 7)
		name := "faithful"
		if eft {
			name = "eft"
			req.Config.EFT = true
		}
		p, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		viaPolicy, err := p.Schedule(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		old := NewSiteScheduler(req.Local, req.Remotes, net, 0)
		old.AvailabilityAware = eft
		viaOld, err := old.Schedule(req.Graph)
		if err != nil {
			t.Fatal(err)
		}
		if len(viaOld.Entries) != len(viaPolicy.Entries) {
			t.Fatalf("%s: legacy table has %d entries, policy %d", name, len(viaOld.Entries), len(viaPolicy.Entries))
		}
		for id, a := range viaOld.Entries {
			b := viaPolicy.Entries[id]
			if a.Site != b.Site || a.Host != b.Host || a.Predicted != b.Predicted {
				t.Fatalf("%s: task %q diverges: legacy %+v vs policy %+v", name, id, a, b)
			}
		}
	}
}

// Legacy semantics: a ledger installed on a SiteScheduler WITHOUT the
// AvailabilityAware flag stays ignored (the faithful walk), exactly as the
// pre-policy engine behaved — and nothing is reserved into it.
func TestDeprecatedScheduleIgnoresLedgerWhenNotAvailabilityAware(t *testing.T) {
	req, _, net := heftEnv(t)
	g := layeredDAG(t, 4, 6, 11)

	plain := NewSiteScheduler(req.Local, req.Remotes, net, 0)
	want, err := plain.Schedule(g)
	if err != nil {
		t.Fatal(err)
	}

	ledger := NewLoadLedger()
	withLedger := NewSiteScheduler(req.Local, req.Remotes, net, 0)
	withLedger.Ledger = ledger // AvailabilityAware deliberately left false
	got, err := withLedger.Schedule(g)
	if err != nil {
		t.Fatal(err)
	}
	for id, a := range want.Entries {
		b := got.Entries[id]
		if a.Host != b.Host || a.Predicted != b.Predicted {
			t.Fatalf("ledger-without-flag changed faithful placement at %q: %+v vs %+v", id, a, b)
		}
	}
	if snap := ledger.Snapshot(); len(snap) != 0 {
		t.Fatalf("faithful walk reserved into the ignored ledger: %v", snap)
	}
}
