//vdce:ignore-file floateq concurrency equivalence file: concurrent batch results must match the serial walk bit for bit
package scheduler

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/afg"
	"repro/internal/predict"
	"repro/internal/repository"
)

// multiSiteScheduler builds an n-site scheduler over fresh repositories;
// cached attaches a prediction cache to every selector.
func multiSiteScheduler(t testing.TB, n int, cached bool) (*SiteScheduler, []*LocalSelector) {
	t.Helper()
	var sels []*LocalSelector
	mk := func(i int) *LocalSelector {
		site := fmt.Sprintf("site%02d", i)
		repo := makeRepo(t, site, map[string][2]float64{
			site + "-a": {1 + float64(i%5), float64(i % 3)},
			site + "-b": {2, 0.5},
			site + "-c": {4, 2},
		})
		sel := &LocalSelector{Site: site, Repo: repo}
		if cached {
			sel.Cache = predict.NewCache()
		}
		sels = append(sels, sel)
		return sel
	}
	local := mk(0)
	var remotes []HostSelector
	for i := 1; i < n; i++ {
		remotes = append(remotes, mk(i))
	}
	return NewSiteScheduler(local, remotes, nil, 0), sels
}

func randomGraphs(n, tasks int, seed int64) []*afg.Graph {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*afg.Graph, n)
	for i := range out {
		g := afg.New(fmt.Sprintf("g%02d", i))
		var prev afg.TaskID
		for j := 0; j < tasks; j++ {
			id := afg.TaskID(fmt.Sprintf("t%03d", j))
			g.AddTask(&afg.Task{
				ID: id, Function: "synthetic.noop",
				ComputeCost: 0.1 + rng.Float64()*3,
				OutputBytes: rng.Int63n(1 << 12),
			})
			if j > 0 && rng.Intn(3) > 0 {
				g.AddLink(afg.Link{From: prev, To: id, Bytes: 1 << 10})
			}
			prev = id
		}
		out[i] = g
	}
	return out
}

func assertSameTable(t *testing.T, want, got *AllocationTable) {
	t.Helper()
	wo, go_ := want.Order(), got.Order()
	if len(wo) != len(go_) {
		t.Fatalf("order length %d != %d", len(wo), len(go_))
	}
	for i := range wo {
		if wo[i] != go_[i] {
			t.Fatalf("order[%d] = %q, want %q", i, go_[i], wo[i])
		}
		w, _ := want.Get(wo[i])
		g, _ := got.Get(wo[i])
		if w.Site != g.Site || w.Host != g.Host || w.Predicted != g.Predicted {
			t.Fatalf("task %q: got %+v, want %+v", wo[i], g, w)
		}
	}
}

// TestConcurrentFanOutMatchesSerial is the determinism contract of the
// tentpole: the parallel site fan-out (with prediction caches) must produce
// exactly the allocation table the serial walk produces.
func TestConcurrentFanOutMatchesSerial(t *testing.T) {
	graphs := randomGraphs(4, 40, 7)
	serial, _ := multiSiteScheduler(t, 8, false)
	serial.Concurrency = 1
	conc, _ := multiSiteScheduler(t, 8, true)
	conc.Concurrency = 4
	for i, g := range graphs {
		want, err := serial.Schedule(g)
		if err != nil {
			t.Fatalf("serial graph %d: %v", i, err)
		}
		got, err := conc.Schedule(g)
		if err != nil {
			t.Fatalf("concurrent graph %d: %v", i, err)
		}
		assertSameTable(t, want, got)
	}
}

// TestCachedSelectorMatchesUncached checks the cache is transparent: the
// same selector with and without a cache yields bitwise-identical choices,
// including on repeated walks (the all-hits path).
func TestCachedSelectorMatchesUncached(t *testing.T) {
	repo := makeRepo(t, "syr", map[string][2]float64{
		"fast": {4, 0.2}, "slow": {1, 0}, "mid": {2, 1.5},
	})
	repo.Tasks.Put(repository.TaskRecord{Function: "synthetic.noop", BaseTime: 0.7, MemReq: 1 << 20})
	repo.Tasks.SetWeight("synthetic.noop", "fast", 0.3)
	plain := &LocalSelector{Site: "syr", Repo: repo}
	cached := &LocalSelector{Site: "syr", Repo: repo, Cache: predict.NewCache()}
	g := randomGraphs(1, 30, 11)[0]
	want, err := plain.SelectHosts(g)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		got, err := cached.SelectHosts(g)
		if err != nil {
			t.Fatal(err)
		}
		for id, w := range want {
			c := got[id]
			if c.Host != w.Host || c.Predicted != w.Predicted {
				t.Fatalf("round %d task %q: cached %+v, uncached %+v", round, id, c, w)
			}
		}
	}
	if st := cached.Cache.Stats(); st.Hits == 0 {
		t.Fatalf("cache never hit: %+v", st)
	}
}

// TestCacheInvalidationChangesSelection checks the cache does NOT outlive a
// monitor update: after a load update + invalidation the cached selector
// must re-read the repository and move to the newly attractive host.
func TestCacheInvalidationChangesSelection(t *testing.T) {
	repo := makeRepo(t, "syr", map[string][2]float64{
		"a": {2, 0}, "b": {2, 5},
	})
	cache := predict.NewCache()
	sel := &LocalSelector{Site: "syr", Repo: repo, Cache: cache}
	g := chainGraph(t, []float64{1}, 0)
	choices, err := sel.SelectHosts(g)
	if err != nil {
		t.Fatal(err)
	}
	if choices["a"].Host != "a" {
		t.Fatalf("expected idle host a first, got %q", choices["a"].Host)
	}
	// Loads flip: a gets slammed, b goes idle. Without invalidation the
	// memoized inputs would keep sending tasks to a.
	repo.Resources.UpdateDynamic("a", 5, 1<<30, time.Now())
	repo.Resources.UpdateDynamic("b", 0, 1<<30, time.Now())
	cache.Invalidate("a")
	cache.Invalidate("b")
	choices, err = sel.SelectHosts(g)
	if err != nil {
		t.Fatal(err)
	}
	if choices["a"].Host != "b" {
		t.Fatalf("after invalidation expected host b, got %q", choices["a"].Host)
	}
}

// TestCacheDoesNotBakeInForecast pins the forecast-at-lookup contract: the
// prediction cache stores the raw recorded load, and Forecast is applied
// per prediction. A forecaster whose view changes between walks must steer
// the cached selector WITHOUT any cache invalidation — the old behaviour
// (forecast applied before Cache.Store) froze the store-time value and
// kept routing tasks to a host the forecaster no longer favoured.
func TestCacheDoesNotBakeInForecast(t *testing.T) {
	repo := makeRepo(t, "syr", map[string][2]float64{
		"a": {1, 5}, "b": {1, 5},
	})
	forecast := map[string]float64{"a": 0, "b": 9} // a looks idle at first
	sel := &LocalSelector{
		Site: "syr", Repo: repo, Cache: predict.NewCache(),
		Forecast: func(h string, recorded float64) float64 { return forecast[h] },
	}
	g := chainGraph(t, []float64{1}, 0)
	choices, err := sel.SelectHosts(g)
	if err != nil {
		t.Fatal(err)
	}
	if choices["a"].Host != "a" {
		t.Fatalf("initial forecast ignored: %+v", choices["a"])
	}
	// The forecaster changes its mind; the repository (and therefore the
	// cache generation) does not move at all.
	forecast["a"], forecast["b"] = 9, 0
	choices, err = sel.SelectHosts(g)
	if err != nil {
		t.Fatal(err)
	}
	if choices["a"].Host != "b" {
		t.Fatalf("cached inputs baked in the old forecast: %+v", choices["a"])
	}
	if st := sel.Cache.Stats(); st.Hits == 0 {
		t.Fatalf("second walk should have hit the cache: %+v", st)
	}
}

// TestBatchSchedulesInInputOrder checks items line up with inputs and that
// worker count does not change any table.
func TestBatchSchedulesInInputOrder(t *testing.T) {
	graphs := randomGraphs(9, 25, 3)
	s, _ := multiSiteScheduler(t, 4, true)
	serialItems := ScheduleBatch(s, graphs, 1)
	concItems := ScheduleBatch(s, graphs, 8)
	if len(serialItems) != len(graphs) || len(concItems) != len(graphs) {
		t.Fatalf("item counts %d/%d, want %d", len(serialItems), len(concItems), len(graphs))
	}
	for i := range graphs {
		if concItems[i].Graph != graphs[i] {
			t.Fatalf("item %d carries wrong graph", i)
		}
		if serialItems[i].Err != nil || concItems[i].Err != nil {
			t.Fatalf("item %d errs: %v / %v", i, serialItems[i].Err, concItems[i].Err)
		}
		assertSameTable(t, serialItems[i].Table, concItems[i].Table)
	}
}

// TestBatchReportsPerItemErrors checks one unschedulable graph fails alone.
func TestBatchReportsPerItemErrors(t *testing.T) {
	graphs := randomGraphs(3, 10, 5)
	bad := afg.New("bad")
	bad.AddTask(&afg.Task{ID: "x", Function: "f", MachineType: "cray", ComputeCost: 1})
	graphs[1] = bad
	s, _ := multiSiteScheduler(t, 2, false)
	items := ScheduleBatch(s, graphs, 4)
	if items[0].Err != nil || items[2].Err != nil {
		t.Fatalf("good graphs errored: %v / %v", items[0].Err, items[2].Err)
	}
	if items[1].Err == nil {
		t.Fatal("unschedulable graph did not error")
	}
}

// TestConcurrentSchedulingUnderMonitorUpdates races batch scheduling with
// the fan-out worker pool against live repository updates and cache
// invalidations — the -race exercise for the whole concurrent subsystem.
func TestConcurrentSchedulingUnderMonitorUpdates(t *testing.T) {
	s, sels := multiSiteScheduler(t, 6, true)
	s.Concurrency = 4
	graphs := randomGraphs(8, 30, 13)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(99))
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			sel := sels[i%len(sels)]
			for _, rec := range sel.Repo.Resources.List() {
				if rng.Intn(2) == 0 {
					sel.Repo.Resources.UpdateDynamic(rec.Static.HostName, rng.Float64()*4, 1<<30, time.Now())
					sel.Cache.Invalidate(rec.Static.HostName)
				}
			}
		}
	}()

	items := ScheduleBatch(s, graphs, 4)
	close(stop)
	wg.Wait()
	for i, it := range items {
		if it.Err != nil {
			t.Fatalf("graph %d: %v", i, it.Err)
		}
		if len(it.Table.Order()) != graphs[i].Len() {
			t.Fatalf("graph %d: table has %d of %d tasks", i, len(it.Table.Order()), graphs[i].Len())
		}
	}
}

// TestAllocationTableOrdering pins the Order/Get contracts the concurrent
// merge relies on.
func TestAllocationTableOrdering(t *testing.T) {
	table := NewAllocationTable("app")
	for _, id := range []afg.TaskID{"c", "a", "b"} {
		table.Set(Assignment{Task: id, Site: "syr", Host: "h"})
	}
	if o := table.Order(); len(o) != 3 || o[0] != "c" || o[1] != "a" || o[2] != "b" {
		t.Fatalf("order = %v, want assignment order [c a b]", o)
	}
	// Order returns a copy: mutating it must not corrupt the table.
	o := table.Order()
	o[0] = "zzz"
	if table.Order()[0] != "c" {
		t.Fatal("Order exposed internal state")
	}
	if _, ok := table.Get("missing"); ok {
		t.Fatal("Get on missing task reported ok")
	}
	if ps := table.PerSite("nowhere"); len(ps) != 0 {
		t.Fatalf("PerSite(nowhere) = %v", ps)
	}
}
