package scheduler

// Equivalence proofs for the dense-index rewrite: every policy that moved
// from map-keyed to slice-indexed state — HEFT, CPOP, and the site walks
// (faithful/EFT/ledger) — must produce identical allocation tables (same
// assignments, same order, same predictions) and identical simulated
// makespans against the original implementations retained in
// oracle_test.go.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/afg"
	"repro/internal/netsim"
	"repro/internal/repository"
	"repro/internal/workload"
)

// equivEnv builds a 4-site heterogeneous environment with per-host speed
// and load spread, so placements have real ties to break and real choices
// to make.
func equivEnv(t testing.TB, seed int64) (*Request, map[string]*repository.Repository, *netsim.Network) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	repos := map[string]*repository.Repository{}
	names := []string{"ames", "kyoto", "oslo", "syr"}
	for _, name := range names {
		hosts := map[string][2]float64{}
		for i := 0; i < 2+rng.Intn(3); i++ {
			hosts[fmt.Sprintf("%s-%02d", name, i)] = [2]float64{1 + rng.Float64()*4, rng.Float64() * 2}
		}
		repos[name] = makeRepo(t, name, hosts)
	}
	net := netsim.StarTopology(names, 5*time.Millisecond, 1e7, 1)
	local := &LocalSelector{Site: names[0], Repo: repos[names[0]]}
	var remotes []HostSelector
	for _, n := range names[1:] {
		remotes = append(remotes, &LocalSelector{Site: n, Repo: repos[n]})
	}
	req := NewRequest(nil, local, remotes, net)
	req.Sites = repos
	return req, repos, net
}

// equivGraph mixes the scale workload's DAG shapes with a few injected
// parallel-mode tasks so the machine-set placement path is exercised.
func equivGraph(t testing.TB, tasks, width int, seed int64) *afg.Graph {
	t.Helper()
	g := workload.Scale(tasks, width, 6, seed)
	rng := rand.New(rand.NewSource(seed * 31))
	for _, id := range g.TaskIDs() {
		if rng.Intn(12) == 0 {
			task := g.Task(id)
			task.Mode = afg.Parallel
			task.Processors = 2 + rng.Intn(2)
		}
	}
	return g
}

// tablesEqual fails the test unless the two tables assign every task
// identically, in the same order.
func tablesEqual(t *testing.T, label string, got, want *AllocationTable) {
	t.Helper()
	go_, wo := got.Order(), want.Order()
	if len(go_) != len(wo) {
		t.Fatalf("%s: %d assignments, oracle %d", label, len(go_), len(wo))
	}
	for i := range wo {
		if go_[i] != wo[i] {
			t.Fatalf("%s: assignment order diverges at %d: %q vs oracle %q", label, i, go_[i], wo[i])
		}
		a, _ := got.Get(go_[i])
		b, _ := want.Get(wo[i])
		if a.Site != b.Site || a.Host != b.Host || a.Predicted != b.Predicted {
			t.Fatalf("%s: task %q diverges: %+v vs oracle %+v", label, wo[i], a, b)
		}
		if len(a.Hosts) != len(b.Hosts) {
			t.Fatalf("%s: task %q host sets diverge: %v vs oracle %v", label, wo[i], a.Hosts, b.Hosts)
		}
		for k := range a.Hosts {
			if a.Hosts[k] != b.Hosts[k] {
				t.Fatalf("%s: task %q host sets diverge: %v vs oracle %v", label, wo[i], a.Hosts, b.Hosts)
			}
		}
	}
}

// makespansEqual replays both tables and fails unless the simulated
// makespans are bit-identical.
func makespansEqual(t *testing.T, label string, g *afg.Graph, got, want *AllocationTable, repos map[string]*repository.Repository, net *netsim.Network) {
	t.Helper()
	model := heftTruth(repos)
	mg, err := Simulate(g, got, model, net)
	if err != nil {
		t.Fatalf("%s: simulate dense: %v", label, err)
	}
	mw, err := Simulate(g, want, model, net)
	if err != nil {
		t.Fatalf("%s: simulate oracle: %v", label, err)
	}
	if mg != mw {
		t.Fatalf("%s: makespan %v != oracle %v", label, mg, mw)
	}
}

func TestDenseHEFTMatchesOracle(t *testing.T) {
	p, err := Lookup("heft")
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed <= 6; seed++ {
		req, repos, net := equivEnv(t, seed)
		req.Graph = equivGraph(t, 120, 8, seed)
		dense, err := p.Schedule(context.Background(), req)
		if err != nil {
			t.Fatalf("seed %d: dense: %v", seed, err)
		}
		want, err := oracleHEFT(context.Background(), req)
		if err != nil {
			t.Fatalf("seed %d: oracle: %v", seed, err)
		}
		tablesEqual(t, fmt.Sprintf("heft seed %d", seed), dense, want)
		makespansEqual(t, fmt.Sprintf("heft seed %d", seed), req.Graph, dense, want, repos, net)
	}
}

func TestDenseCPOPMatchesOracle(t *testing.T) {
	p, err := Lookup("cpop")
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed <= 6; seed++ {
		req, repos, net := equivEnv(t, seed)
		req.Graph = equivGraph(t, 120, 8, seed)
		dense, err := p.Schedule(context.Background(), req)
		if err != nil {
			t.Fatalf("seed %d: dense: %v", seed, err)
		}
		want, err := oracleCPOP(context.Background(), req)
		if err != nil {
			t.Fatalf("seed %d: oracle: %v", seed, err)
		}
		tablesEqual(t, fmt.Sprintf("cpop seed %d", seed), dense, want)
		makespansEqual(t, fmt.Sprintf("cpop seed %d", seed), req.Graph, dense, want, repos, net)
	}
}

// The HEFT ledger path: timelines seeded from shared cross-application
// reservations must seed identically in the dense rewrite.
func TestDenseHEFTWithLedgerMatchesOracle(t *testing.T) {
	p, err := Lookup("heft")
	if err != nil {
		t.Fatal(err)
	}
	denseLedger, oracleLedger := NewLoadLedger(), NewLoadLedger()
	for seed := int64(1); seed <= 3; seed++ {
		req, _, _ := equivEnv(t, 2)
		req.Graph = equivGraph(t, 60, 6, seed)

		req.Config.Ledger = denseLedger
		dense, err := p.Schedule(context.Background(), req)
		if err != nil {
			t.Fatalf("seed %d: dense: %v", seed, err)
		}
		req.Config.Ledger = oracleLedger
		want, err := oracleHEFT(context.Background(), req)
		if err != nil {
			t.Fatalf("seed %d: oracle: %v", seed, err)
		}
		tablesEqual(t, fmt.Sprintf("heft+ledger seed %d", seed), dense, want)
	}
	// Both sequences reserved identical schedules, so the ledgers agree.
	ds, os := denseLedger.Snapshot(), oracleLedger.Snapshot()
	if len(ds) != len(os) {
		t.Fatalf("ledger snapshots diverge: %v vs %v", ds, os)
	}
	for h, b := range os {
		if ds[h] != b {
			t.Fatalf("ledger busy diverges on %s: %v vs %v", h, ds[h], b)
		}
	}
}

// The dense site walks (faithful and EFT) against the retained map-keyed
// engine, including the EFT walk's ledger-view read path.
func TestDenseSiteWalksMatchOracle(t *testing.T) {
	for _, avail := range []bool{false, true} {
		name := "faithful"
		if avail {
			name = "eft"
		}
		for seed := int64(1); seed <= 6; seed++ {
			req, repos, net := equivEnv(t, seed)
			g := equivGraph(t, 120, 8, seed)

			s := &SiteScheduler{
				Local: req.Local, Remotes: req.Remotes, Net: net,
				TransferAware: true, AvailabilityAware: avail, Concurrency: 1,
			}
			dense, err := s.run(g)
			if err != nil {
				t.Fatalf("%s seed %d: dense: %v", name, seed, err)
			}
			want, err := oracleSiteRun(s, g)
			if err != nil {
				t.Fatalf("%s seed %d: oracle: %v", name, seed, err)
			}
			tablesEqual(t, fmt.Sprintf("%s seed %d", name, seed), dense, want)
			makespansEqual(t, fmt.Sprintf("%s seed %d", name, seed), g, dense, want, repos, net)
		}
	}
}

// The ledger policy: a serial sequence of applications threaded through
// one shared ledger must place identically under the dense walk (bulk
// per-task view refresh) and the oracle (live per-candidate probes).
func TestDenseLedgerPolicyMatchesOracle(t *testing.T) {
	denseLedger, oracleLedger := NewLoadLedger(), NewLoadLedger()
	req, _, net := equivEnv(t, 3)
	for seed := int64(1); seed <= 4; seed++ {
		g := equivGraph(t, 80, 10, seed)

		ds := &SiteScheduler{
			Local: req.Local, Remotes: req.Remotes, Net: net,
			TransferAware: true, AvailabilityAware: true, Ledger: denseLedger, Concurrency: 1,
		}
		dense, err := ds.run(g)
		if err != nil {
			t.Fatalf("seed %d: dense: %v", seed, err)
		}
		os := &SiteScheduler{
			Local: req.Local, Remotes: req.Remotes, Net: net,
			TransferAware: true, AvailabilityAware: true, Ledger: oracleLedger, Concurrency: 1,
		}
		want, err := oracleSiteRun(os, g)
		if err != nil {
			t.Fatalf("seed %d: oracle: %v", seed, err)
		}
		tablesEqual(t, fmt.Sprintf("ledger app %d", seed), dense, want)
	}
	ds, os := denseLedger.Snapshot(), oracleLedger.Snapshot()
	for h, b := range os {
		if ds[h] != b {
			t.Fatalf("ledger busy diverges on %s: %v vs %v", h, ds[h], b)
		}
	}
}

// Two sites exposing the SAME host name must share one timeline — the
// map-keyed path keyed timelines by name, so the dense path's canonical
// columns must reproduce it exactly.
func TestDenseHEFTSharedHostNameAcrossSites(t *testing.T) {
	for _, policy := range []string{"heft", "cpop"} {
		p, err := Lookup(policy)
		if err != nil {
			t.Fatal(err)
		}
		for seed := int64(1); seed <= 3; seed++ {
			repos := map[string]*repository.Repository{
				"ames": makeRepo(t, "ames", map[string][2]float64{
					"shared-00": {3, 0}, "ames-01": {1, 1},
				}),
				"oslo": makeRepo(t, "oslo", map[string][2]float64{
					"shared-00": {3, 0.5}, "oslo-01": {2, 0},
				}),
			}
			net := netsim.StarTopology([]string{"ames", "oslo"}, 5*time.Millisecond, 1e7, 1)
			req := NewRequest(equivGraph(t, 60, 6, seed),
				&LocalSelector{Site: "ames", Repo: repos["ames"]},
				[]HostSelector{&LocalSelector{Site: "oslo", Repo: repos["oslo"]}}, net)
			req.Sites = repos
			dense, err := p.Schedule(context.Background(), req)
			if err != nil {
				t.Fatalf("%s seed %d: dense: %v", policy, seed, err)
			}
			var want *AllocationTable
			if policy == "heft" {
				want, err = oracleHEFT(context.Background(), req)
			} else {
				want, err = oracleCPOP(context.Background(), req)
			}
			if err != nil {
				t.Fatalf("%s seed %d: oracle: %v", policy, seed, err)
			}
			tablesEqual(t, fmt.Sprintf("%s shared-host seed %d", policy, seed), dense, want)
		}
	}
}

// The dense per-site selector walk against the public map walk.
func TestSelectHostsDenseMatchesMap(t *testing.T) {
	for _, avail := range []bool{false, true} {
		for seed := int64(1); seed <= 4; seed++ {
			req, _, _ := equivEnv(t, seed)
			g := equivGraph(t, 100, 8, seed)
			ix, err := g.Index()
			if err != nil {
				t.Fatal(err)
			}
			sel := req.Local.(*LocalSelector)
			c := *sel
			c.AvailabilityAware = avail
			denseOut, err := c.selectHostsDense(g)
			if err != nil {
				t.Fatal(err)
			}
			mapOut, err := c.SelectHosts(g)
			if err != nil {
				t.Fatal(err)
			}
			if len(mapOut) != ix.Len() {
				t.Fatalf("map walk covered %d of %d tasks", len(mapOut), ix.Len())
			}
			for id, want := range mapOut {
				got := denseOut[ix.Of(id)]
				if got.Site != want.Site || got.Host != want.Host || got.Predicted != want.Predicted {
					t.Fatalf("avail=%v seed %d: task %q: dense %+v vs map %+v", avail, seed, id, got, want)
				}
			}
		}
	}
}

// The binary-search gap lookup against the original linear scan, over
// randomized timelines and probes.
func TestTimelineEarliestMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		var tl timeline
		cursor := 0.0
		for len(tl.busy) < rng.Intn(12) {
			cursor += rng.Float64() * 3
			end := cursor + 0.1 + rng.Float64()*2
			tl.add(cursor, end)
			cursor = end
		}
		for probe := 0; probe < 20; probe++ {
			ready := rng.Float64() * (cursor + 2)
			dur := rng.Float64() * 3
			got := tl.earliest(ready, dur)
			want := oracleEarliest(&tl, ready, dur)
			if got != want {
				t.Fatalf("trial %d: earliest(%v, %v) = %v, linear scan %v (busy %v)",
					trial, ready, dur, got, want, tl.busy)
			}
		}
	}
}

// failingSelector is a plain HostSelector whose gather always fails —
// the shape of an RPC remote with a dead peer.
type failingSelector struct{ site string }

func (f failingSelector) SiteName() string { return f.site }
func (f failingSelector) SelectHosts(*afg.Graph) (map[afg.TaskID]Choice, error) {
	return nil, errors.New("rpc: connection refused")
}

// A transiently failing site must be dropped AND surfaced; a site that
// cannot host a task stays a silent (but classified) capacity refusal.
func TestGatherDiagnosticsClassifySiteErrors(t *testing.T) {
	req, _, _ := equivEnv(t, 5)
	req.Graph = equivGraph(t, 40, 6, 5)

	// One dead remote, one capacity-refusing remote: constraining each
	// function to a host the site does not have makes every task
	// ineligible there.
	blocked := makeRepo(t, "zrh", map[string][2]float64{"zrh-00": {2, 0}})
	for _, id := range req.Graph.TaskIDs() {
		blocked.Constraints.SetLocation(req.Graph.Task(id).Function, "elsewhere", "/bin/x")
	}
	req.Remotes = append(req.Remotes,
		failingSelector{site: "dead"},
		&LocalSelector{Site: "zrh", Repo: blocked},
	)
	req.Diag = &Diagnostics{}

	for _, name := range []string{"heft", "eft"} {
		req.Diag = &Diagnostics{}
		p, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.Schedule(context.Background(), req); err != nil {
			t.Fatalf("%s: schedule failed despite healthy sites: %v", name, err)
		}
		trans := req.Diag.Transient()
		if len(trans) != 1 || trans[0].Site != "dead" {
			t.Fatalf("%s: transient drops = %v, want one for site dead", name, trans)
		}
		refused := req.Diag.CannotHost()
		if len(refused) != 1 || refused[0].Site != "zrh" {
			t.Fatalf("%s: cannot-host drops = %v, want one for site zrh", name, refused)
		}
		if !errors.Is(refused[0], ErrNoEligibleHost) {
			t.Fatalf("%s: cannot-host error lost its class: %v", name, refused[0])
		}
	}
}

// When every site fails and any failure was transient, the terminal error
// must carry it instead of reporting a bare "no sites".
func TestGatherErrSurfacesTransientLosses(t *testing.T) {
	req, _, _ := equivEnv(t, 6)
	req.Graph = equivGraph(t, 10, 4, 6)
	req.Local = failingSelector{site: "dead0"}
	req.Remotes = []HostSelector{failingSelector{site: "dead1"}}
	req.Diag = &Diagnostics{}
	p, err := Lookup("heft")
	if err != nil {
		t.Fatal(err)
	}
	_, err = p.Schedule(context.Background(), req)
	if !errors.Is(err, ErrNoSites) {
		t.Fatalf("err = %v, want ErrNoSites", err)
	}
	if want := "connection refused"; err == nil || !containsStr(err.Error(), want) {
		t.Fatalf("terminal error hides the transient cause: %v", err)
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// One shared CostCache across policies: the second policy's gather must
// come from the cache (pointer-identical matrix), and cached scheduling
// must equal uncached.
func TestCostCacheSharedAcrossPolicies(t *testing.T) {
	req, _, _ := equivEnv(t, 9)
	req.Graph = equivGraph(t, 60, 6, 9)
	cc := NewCostCache()
	req.Config.Costs = cc

	heft, _ := Lookup("heft")
	cpop, _ := Lookup("cpop")
	t1, err := heft.Schedule(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if len(cc.m) != 1 {
		t.Fatalf("cache holds %d matrices after first schedule, want 1", len(cc.m))
	}
	cm := cc.m[req.Graph]
	if _, err := cpop.Schedule(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	if cc.m[req.Graph] != cm {
		t.Fatal("second policy re-gathered instead of reading the shared cache")
	}

	// And a cached schedule equals an uncached one.
	req2, _, _ := equivEnv(t, 9)
	req2.Graph = req.Graph
	plain, err := heft.Schedule(context.Background(), req2)
	if err != nil {
		t.Fatal(err)
	}
	tablesEqual(t, "cached vs uncached", t1, plain)
}
