package scheduler

import (
	"sync"
	"testing"
)

// A view absorbs its own writes without re-snapshotting, and picks up
// foreign writes on the next Refresh.
func TestLedgerViewTracksOwnAndForeignWrites(t *testing.T) {
	l := NewLoadLedger()
	l.Reserve("a", 2)
	v := l.View()
	v.Refresh()
	if got := v.Busy("a"); got != 2 {
		t.Fatalf("Busy(a) = %v, want 2", got)
	}

	// Own write: visible immediately, no staleness.
	v.Reserve("a", 3)
	if got := v.Busy("a"); got != 5 {
		t.Fatalf("after own Reserve: Busy(a) = %v, want 5", got)
	}
	v.Refresh()
	if got := v.Busy("a"); got != 5 {
		t.Fatalf("after Refresh: Busy(a) = %v, want 5", got)
	}

	// Foreign write: invisible until the next Refresh, then picked up.
	l.Reserve("b", 7)
	if got := v.Busy("b"); got != 0 {
		t.Fatalf("foreign write leaked into stale view: Busy(b) = %v", got)
	}
	v.Refresh()
	if got := v.Busy("b"); got != 7 {
		t.Fatalf("Refresh missed the foreign write: Busy(b) = %v, want 7", got)
	}
	if got := l.Busy("a"); got != 5 {
		t.Fatalf("ledger Busy(a) = %v, want 5", got)
	}
}

// Version advances on every mutation and is stable across reads.
func TestLedgerVersionAdvancesOnMutation(t *testing.T) {
	l := NewLoadLedger()
	v0 := l.Version()
	l.Reserve("a", 1)
	if l.Version() == v0 {
		t.Fatal("Reserve did not advance the version")
	}
	v1 := l.Version()
	_ = l.Busy("a")
	_ = l.Snapshot()
	if l.Version() != v1 {
		t.Fatal("reads advanced the version")
	}
	l.Release("a", 1)
	if l.Version() == v1 {
		t.Fatal("Release did not advance the version")
	}
}

// The striped ledger must keep per-host totals exact under concurrent
// Reserve/Release/Busy traffic (run with -race in CI).
func TestLedgerConcurrentReserveRelease(t *testing.T) {
	l := NewLoadLedger()
	hosts := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	const workers = 8
	const rounds = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				h := hosts[(w+r)%len(hosts)]
				l.Reserve(h, 2)
				_ = l.Busy(h)
				l.Release(h, 1)
			}
		}(w)
	}
	wg.Wait()
	// Every round leaves +1 second behind: workers × rounds total.
	var total float64
	for _, b := range l.Snapshot() {
		total += b
	}
	if total != workers*rounds {
		t.Fatalf("concurrent traffic lost reservations: total %v, want %v", total, workers*rounds)
	}
}
