package scheduler

// Dynamic enforcement of the //vdce:hot allocs=N budgets. The static side
// (allocflow, internal/lint) proves no allocation *sites* sit on the hot
// cone; this test closes the loop at runtime with testing.AllocsPerRun, so
// a budget annotation is a checked contract, not a comment. Budgets are
// parsed from this package's sources — editing an annotation and editing
// the assertion are the same change.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strconv"
	"strings"
	"testing"
)

// hotAllocBudgets parses every non-test source file in this package and
// returns the //vdce:hot allocs=N budgets keyed by "Func" or "Recv.Func".
// Only annotations with an explicit budget are returned; bare //vdce:hot
// marks a cone root without a per-call allocation contract.
func hotAllocBudgets(t *testing.T) map[string]int {
	t.Helper()
	fset := token.NewFileSet()
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	budgets := map[string]int{}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		file, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Doc == nil {
				continue
			}
			for _, c := range fn.Doc.List {
				fields := strings.Fields(strings.TrimPrefix(c.Text, "//vdce:hot"))
				if !strings.HasPrefix(c.Text, "//vdce:hot ") && c.Text != "//vdce:hot" {
					continue
				}
				for _, f := range fields {
					val, ok := strings.CutPrefix(f, "allocs=")
					if !ok {
						continue
					}
					n, err := strconv.Atoi(val)
					if err != nil {
						t.Fatalf("%s: bad budget %q on %s", name, val, fn.Name.Name)
					}
					key := fn.Name.Name
					if fn.Recv != nil && len(fn.Recv.List) == 1 {
						recv := fn.Recv.List[0].Type
						if star, ok := recv.(*ast.StarExpr); ok {
							recv = star.X
						}
						if id, ok := recv.(*ast.Ident); ok {
							key = id.Name + "." + key
						}
					}
					budgets[key] = n
				}
			}
		}
	}
	return budgets
}

// budget fails the test if fn carries no allocs=N annotation: a function
// measured here must declare its contract at the definition site.
func budget(t *testing.T, budgets map[string]int, fn string) float64 {
	t.Helper()
	n, ok := budgets[fn]
	if !ok {
		t.Fatalf("%s has no //vdce:hot allocs=N annotation; budgets found: %v", fn, budgets)
	}
	return float64(n)
}

// TestHotAllocBudgets measures the annotated hot-path entry points with
// testing.AllocsPerRun and holds each to its declared budget. The
// workloads mirror the micro-benchmarks (BenchmarkRankU,
// BenchmarkTimelineInsertion, BenchmarkLedgerViewWalk) so a regression
// shows up in both places with the same shape.
func TestHotAllocBudgets(t *testing.T) {
	if testing.Short() {
		t.Skip("AllocsPerRun workloads are not -short sized")
	}
	budgets := hotAllocBudgets(t)

	t.Run("upwardRanks", func(t *testing.T) {
		cm := rankBenchSetup(t)
		c := commModel{latency: 5e-3, perByte: 1e-7}
		buf := make([]float64, cm.ix.Len()) // warm scratch, as a pooled holder provides
		got := testing.AllocsPerRun(10, func() {
			if r := upwardRanks(cm, c, buf); len(r) != cm.ix.Len() {
				t.Fatal("short rank vector")
			}
		})
		if want := budget(t, budgets, "upwardRanks"); got > want {
			t.Errorf("upwardRanks: %.1f allocs/run, budget %v (a warm scratch buffer makes the sweep allocation-free)", got, want)
		}
	})

	t.Run("timeline.earliest", func(t *testing.T) {
		var tl timeline
		for k := 0; k < 256; k++ {
			tl.add(float64(2*k), float64(2*k)+1)
		}
		var sink float64
		got := testing.AllocsPerRun(100, func() {
			for ready := 0.0; ready < 512; ready += 7 {
				sink += tl.earliest(ready, 0.5)
			}
		})
		if sink < 0 {
			t.Fatal("impossible")
		}
		if want := budget(t, budgets, "timeline.earliest"); got > want {
			t.Errorf("timeline.earliest: %.1f allocs/run, budget %v (gap probe must stay on the stack)", got, want)
		}
	})

	t.Run("LedgerView warm walk", func(t *testing.T) {
		hosts := make([]string, 128)
		l := NewLoadLedger()
		for i := range hosts {
			hosts[i] = "host" + strconv.Itoa(i)
			l.Reserve(hosts[i], float64(i))
		}
		v := l.View()
		v.Refresh() // cold snapshot: pays the map copy once, outside the measured region
		task := 0
		got := testing.AllocsPerRun(100, func() {
			v.Refresh() // warm: version unchanged through the view's own writes
			var sink float64
			for _, h := range hosts[:32] {
				sink += v.Busy(h)
			}
			v.Reserve(hosts[task%len(hosts)], 0.25)
			task++
			if sink < 0 {
				t.Fatal("impossible")
			}
		})
		for _, fn := range []string{"LedgerView.Refresh", "LedgerView.Busy", "LedgerView.Reserve"} {
			if want := budget(t, budgets, fn); got > want {
				t.Errorf("warm view walk: %.1f allocs/run, budget %v on %s", got, want, fn)
			}
		}
	})
}
