package scheduler

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"repro/internal/afg"
	"repro/internal/netsim"
)

// SiteScheduler implements the Site Scheduler Algorithm (paper Fig 4) at
// the local site — the site where the execution request arrived.
//
// Steps (numbering follows the figure):
//  1. receive the AFG,
//  2. select the k nearest neighbour sites,
//  3. multicast the AFG to them,
//  4. run the Host Selection Algorithm locally and remotely,
//  5. collect (machine, predicted time) pairs per task per site,
//  6. initialise the ready set with entry tasks,
//  7. walk the ready set in level-priority order, assigning each task to
//     the site minimising predicted time (entry tasks) or
//     transfer time from the parents' sites + predicted time (others).
type SiteScheduler struct {
	Local   HostSelector
	Remotes []HostSelector  // all known remote sites (k nearest selected per run)
	Net     *netsim.Network // supplies transfer_time(Sparent, Sj)
	K       int             // neighbour fan-out (0 = all remotes)

	// TransferAware toggles the transfer-time term in step 7; disabling
	// it is the Fig 4 ablation (site choice by prediction only).
	TransferAware bool

	// AvailabilityAware replaces step 7's predicted+transfer objective
	// with earliest finish time: the walk tracks an estimated free-time
	// timeline for every host across all sites and places each task on
	// the site/host set minimising
	//
	//	max(parent finishes + transfer, host free, ledger wait) + predicted.
	//
	// Off by default — the paper-faithful Fig 4 walk is the ablation
	// baseline the evaluation compares against.
	//
	// Deprecated: select the "eft" policy (Lookup("eft"), or WithEFT on a
	// Request) instead of toggling this boolean.
	AvailabilityAware bool

	// Ledger, when non-nil, is the shared cross-application load ledger
	// consulted and updated by the availability-aware walk: placements
	// from concurrent Schedule calls (scheduler.Batch) reserve predicted
	// busy seconds per host, so applications scheduled in the same batch
	// spread around each other instead of dog-piling the fastest
	// machines. Ignored when AvailabilityAware is off.
	Ledger *LoadLedger

	// Priority orders the ready set each step; nil means the paper's
	// level rule (ByLevel). FIFOPriority is the ablation alternative.
	Priority PriorityFunc

	// Concurrency bounds the worker pool fanning Host Selection out
	// across sites (steps 3–5): 0 uses GOMAXPROCS workers, 1 keeps the
	// fully serial walk (the baseline the scale benchmark measures
	// against), and any n > 1 runs at most n selections at once. The
	// merge is deterministic — results are ordered by site name before
	// the ready-set walk — so the allocation table does not depend on
	// goroutine scheduling.
	Concurrency int

	// Diag, when non-nil, receives per-site gather diagnostics (dropped
	// sites classified as capacity refusals vs transient failures).
	// Installed from Request.Diag by the registered site policies.
	Diag *Diagnostics
}

// NewSiteScheduler builds a transfer-aware scheduler with fan-out k.
func NewSiteScheduler(local HostSelector, remotes []HostSelector, net *netsim.Network, k int) *SiteScheduler {
	return &SiteScheduler{Local: local, Remotes: remotes, Net: net, K: k, TransferAware: true}
}

// Schedule produces a resource allocation table for g.
//
// Deprecated: Schedule delegates to the policy API — Lookup("faithful") or
// Lookup("eft") with a Request built by NewRequest expresses the same run
// and composes with the registry; this method remains for existing callers.
func (s *SiteScheduler) Schedule(g *afg.Graph) (*AllocationTable, error) {
	// Mode follows the AvailabilityAware flag alone, exactly as the old
	// engine did: a ledger installed without the flag stays ignored.
	name := "faithful"
	if s.AvailabilityAware {
		name = "eft"
	}
	p, err := Lookup(name)
	if err != nil {
		return nil, err
	}
	return p.Schedule(context.Background(), &Request{
		Graph:   g,
		Local:   s.Local,
		Remotes: s.Remotes,
		Net:     s.Net,
		Config: Config{
			EFT:           s.AvailabilityAware,
			Ledger:        s.Ledger,
			Concurrency:   s.Concurrency,
			Priority:      s.Priority,
			TransferAware: s.TransferAware,
			K:             s.K,
		},
	})
}

// sitePolicy wraps the Site Scheduler engine as a registered Policy:
// "faithful" is the paper's Fig 4 walk, "eft" the earliest-finish-time
// variant, and "ledger" eft with a cross-application load ledger (the
// request's shared ledger when provided, else a private one).
type sitePolicy struct {
	name   string
	eft    bool
	ledger bool
}

// Name implements Policy.
func (p sitePolicy) Name() string { return p.name }

// Schedule implements Policy by assembling the engine from the request.
func (p sitePolicy) Schedule(ctx context.Context, req *Request) (*AllocationTable, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cfg := req.Config
	// Availability mode comes from the policy name or an explicit WithEFT;
	// WithLedger sets EFT itself, so a bare Config.Ledger (the deprecated
	// Schedule shim passing legacy fields through) does not force it.
	s := &SiteScheduler{
		Local:             req.Local,
		Remotes:           req.Remotes,
		Net:               req.Net,
		K:                 cfg.K,
		TransferAware:     cfg.TransferAware,
		AvailabilityAware: p.eft || cfg.EFT,
		Ledger:            cfg.Ledger,
		Priority:          cfg.Priority,
		Concurrency:       cfg.Concurrency,
		Diag:              req.Diag,
	}
	if p.ledger && s.Ledger == nil {
		s.Ledger = NewLoadLedger()
	}
	return s.run(req.Graph)
}

// run is the Site Scheduler engine (the former Schedule body); both the
// deprecated method and the registered site policies funnel through it.
// The walk is slice-indexed end to end: site results address tasks by
// dense index, the ready set is a priority heap over dense levels, and
// the transfer term reads CSR parent arcs. The original map-keyed walk is
// retained in oracle_test.go; equivalence tests pin the tables.
func (s *SiteScheduler) run(g *afg.Graph) (*AllocationTable, error) {
	if s.Local == nil {
		return nil, ErrNoSites
	}
	if g.Len() == 0 {
		return nil, afg.ErrEmpty
	}
	ix, err := g.Index()
	if err != nil {
		return nil, err
	}

	// Steps 2–3: pick the k nearest neighbours and "multicast" the AFG.
	selectors := []HostSelector{s.Local}
	selectors = append(selectors, s.nearestRemotes()...)

	// Steps 4–5: gather host selections per site, fanning out across the
	// worker pool. A site that cannot host some task (constraints) is
	// skipped for that task rather than failing the whole application:
	// a failed site is dropped entirely (recorded on Diag when set); the
	// local site failing is fatal only if no site can host a task.
	results, transient := s.collectSelections(ix, g, selectors)
	if len(results) == 0 {
		return nil, noSitesErr(transient)
	}

	if s.AvailabilityAware {
		return s.scheduleAvailabilityAware(ix, g, results)
	}

	table := NewAllocationTable(g.Name)

	// Steps 6–7: ready-set walk in level-priority order.
	walk, err := newReadyWalk(ix, g, s.Priority)
	if err != nil {
		return nil, err
	}
	n := ix.Len()
	site := make([]string, n) // assigned site per task; "" = unplaced
	for done := 0; done < n; done++ {
		t, err := walk.next(done)
		if err != nil {
			return nil, err
		}

		best := Choice{Predicted: math.Inf(1)}
		bestTotal := math.Inf(1)
		found := false
		entryLike := isEntryLikeDense(ix, t)
		for si := range results {
			sr := &results[si]
			choice := sr.choices[t]
			if choice.Host == "" {
				continue
			}
			total := choice.Predicted
			if s.TransferAware && !entryLike {
				total += s.transferCostDense(ix, t, sr.name, site)
			}
			if total < bestTotal || (total == bestTotal && sr.name < best.Site) {
				best, bestTotal, found = choice, total, true
			}
		}
		if !found {
			return nil, fmt.Errorf("%w: %q", ErrNoEligibleHost, ix.ID(t))
		}
		table.Set(Assignment{
			Task:      ix.ID(t),
			Site:      best.Site,
			Host:      best.Host,
			Hosts:     best.Hosts,
			Predicted: best.Predicted,
		})
		site[t] = best.Site
		walk.complete(t)
	}
	return table, nil
}

// scheduleAvailabilityAware is the earliest-finish-time variant of steps
// 6–7: the ready-set walk keeps an estimated free-time timeline for every
// host it has placed work on (seeded, per task, from one bulk snapshot of
// the shared ledger's cross-application reservations) and an estimated
// finish time per scheduled task, and sends each task to the site/host
// set whose estimated finish — parents' data arrival plus queueing wait
// plus predicted execution — is smallest.
//
//vdce:hot
func (s *SiteScheduler) scheduleAvailabilityAware(ix *afg.Index, g *afg.Graph, results []siteResult) (*AllocationTable, error) {
	table := NewAllocationTable(g.Name)
	n := ix.Len()
	estFinish := make([]float64, n)
	site := make([]string, n)        // assigned site per task; "" = unplaced
	phosts := make([][]string, n)    // assigned host set per task
	hostFree := map[string]float64{} // this walk's own host timeline
	own := map[string]float64{}      // busy seconds this walk reserved in the ledger
	// view folds the ledger's view of OTHER applications' in-flight work
	// into this walk's own timeline. Refreshed once per task — one bulk
	// snapshot revalidation instead of a ledger lock per candidate — so a
	// placement made by a concurrent Schedule goroutine moves this walk
	// off the host it just claimed from the next task onward.
	view := s.Ledger.View()
	freeAt := func(h string) float64 {
		f := hostFree[h]
		if view != nil {
			if other := view.Busy(h) - own[h]; other > f {
				f = other
			}
		}
		return f
	}
	releaseOwn := func() {
		if s.Ledger == nil {
			return
		}
		//vdce:ignore maporder one Release per distinct host key: updates touch disjoint ledger entries, so order commutes
		for h, sec := range own {
			s.Ledger.Release(h, sec)
		}
	}

	walk, err := newReadyWalk(ix, g, s.Priority)
	if err != nil {
		return nil, err
	}
	for done := 0; done < n; done++ {
		t, err := walk.next(done)
		if err != nil {
			releaseOwn()
			return nil, err
		}
		view.Refresh()

		var best Choice
		var bestHosts []string
		bestFinish := math.Inf(1)
		found := false
		for si := range results {
			sr := &results[si]
			choice := sr.choices[t]
			if choice.Host == "" {
				continue
			}
			hosts := effectiveHosts(Assignment{Host: choice.Host, Hosts: choice.Hosts})
			// Data arrival: every scheduled parent's estimated finish,
			// plus the site-to-site transfer unless a host is shared.
			start := 0.0
			for _, a := range ix.Parents(t) {
				arrive := estFinish[a.Peer]
				if s.Net != nil && site[a.Peer] != "" {
					if a.Bytes > 0 && !sharesHost(phosts[a.Peer], hosts) {
						arrive += s.Net.TransferTime(site[a.Peer], sr.name, a.Bytes).Seconds()
					}
				}
				start = math.Max(start, arrive)
			}
			for _, h := range hosts {
				start = math.Max(start, freeAt(h))
			}
			finish := start + choice.Predicted
			if finish < bestFinish || (finish == bestFinish && sr.name < best.Site) {
				best, bestHosts, bestFinish, found = choice, hosts, finish, true
			}
		}
		if !found {
			releaseOwn()
			//vdce:ignore allocflow cold failure path: the error aborts the walk
			return nil, fmt.Errorf("%w: %q", ErrNoEligibleHost, ix.ID(t))
		}
		table.Set(Assignment{
			Task:      ix.ID(t),
			Site:      best.Site,
			Host:      best.Host,
			Hosts:     best.Hosts,
			Predicted: best.Predicted,
		})
		estFinish[t] = bestFinish
		site[t] = best.Site
		phosts[t] = bestHosts
		//vdce:ignore allocflow hostFree and own are host-name-keyed walk state shared with the cross-application ledger: one probe per selected host, sized by the environment not the graph
		for _, h := range bestHosts {
			hostFree[h] = bestFinish
			if view != nil {
				view.Reserve(h, best.Predicted)
				own[h] += best.Predicted
			}
		}
		walk.complete(t)
	}
	return table, nil
}

// readyWalk yields dense task indices in ready-set priority order. With
// the default level rule the ready set is a priority heap over dense
// levels — O(V log V) for the whole walk instead of a full re-sort per
// step. A custom PriorityFunc keeps the original Tracker-and-re-sort walk
// (the rule sees the whole ready set, so there is nothing to incrementalise).
type readyWalk struct {
	ix *afg.Index

	// Dense path (nil PriorityFunc):
	heap    prioHeap
	dlevels []float64
	pending []int32

	// Generic path:
	tracker *afg.Tracker
	prio    PriorityFunc
	levels  map[afg.TaskID]float64
}

func newReadyWalk(ix *afg.Index, g *afg.Graph, prio PriorityFunc) (*readyWalk, error) {
	w := &readyWalk{ix: ix}
	if prio == nil {
		n := ix.Len()
		w.dlevels = ix.Levels()
		w.pending = make([]int32, n)
		// One entry per task ever enters the heap; capacity n keeps Push
		// growth-free.
		w.heap = make(prioHeap, 0, n)
		for i := 0; i < n; i++ {
			w.pending[i] = int32(ix.NumParents(i))
			if w.pending[i] == 0 {
				//vdce:ignore allocflow appends into the capacity-n backing array made above: the bulk load never grows it
				w.heap = append(w.heap, prioItem{w.dlevels[i], int32(i)})
			}
		}
		w.heap.Init()
		return w, nil
	}
	levels, err := g.Levels()
	if err != nil {
		return nil, err
	}
	w.tracker, w.prio, w.levels = afg.NewTracker(g), prio, levels
	return w, nil
}

// next returns the highest-priority ready task; done is the count of
// completed tasks (for the empty-ready-set diagnostic).
func (w *readyWalk) next(done int) (int, error) {
	if w.tracker == nil {
		if len(w.heap) == 0 {
			//vdce:ignore allocflow cold failure path: a non-empty DAG always has a ready task
			return 0, fmt.Errorf("scheduler: ready set empty with %d tasks remaining", w.ix.Len()-done)
		}
		return int(w.heap.Pop().idx), nil
	}
	ready := w.prio(w.tracker.Ready(), w.levels)
	if len(ready) == 0 {
		//vdce:ignore allocflow cold failure path: a non-empty DAG always has a ready task
		return 0, fmt.Errorf("scheduler: ready set empty with %d tasks remaining", w.tracker.Remaining())
	}
	return w.ix.Of(ready[0]), nil
}

// complete marks t scheduled, admitting children whose parents are done.
func (w *readyWalk) complete(t int) {
	if w.tracker == nil {
		for _, a := range w.ix.Children(t) {
			w.pending[a.Peer]--
			if w.pending[a.Peer] == 0 {
				w.heap.Push(prioItem{w.dlevels[a.Peer], a.Peer})
			}
		}
		return
	}
	w.tracker.Complete(w.ix.ID(t))
}

// isEntryLikeDense is isEntryLike over CSR arcs: the task has no parents
// or none of its input links moves data.
func isEntryLikeDense(ix *afg.Index, t int) bool {
	for _, a := range ix.Parents(t) {
		if a.Bytes > 0 {
			return false
		}
	}
	return true
}

// transferCostDense sums transfer_time(Sparent, Sj) over the task's
// already scheduled parents, reading CSR arcs and the dense site table.
func (s *SiteScheduler) transferCostDense(ix *afg.Index, t int, siteName string, site []string) float64 {
	if s.Net == nil {
		return 0
	}
	var total float64
	for _, a := range ix.Parents(t) {
		if site[a.Peer] == "" {
			continue // parent unscheduled (possible only for cross runs)
		}
		total += s.Net.TransferTime(site[a.Peer], siteName, a.Bytes).Seconds()
	}
	return total
}

// WithLedger returns a copy of the scheduler wired to the shared
// cross-application ledger (and availability-aware placement, which the
// ledger requires). scheduler.Batch uses it to thread one ledger through
// every concurrent Schedule call.
//
// Deprecated: use the WithLedger Option on a Request (or Batch.Ledger with
// a Bind-wrapped policy); this builder remains for existing callers.
func (s *SiteScheduler) WithLedger(l *LoadLedger) *SiteScheduler {
	c := *s
	c.Ledger = l
	c.AvailabilityAware = true
	return &c
}

// siteResult is one site's contribution to steps 4–5: the site's offer per
// task, addressed by dense task index (an empty Host marks "no offer").
type siteResult struct {
	name    string
	choices []Choice
	err     error
}

// collectSelections runs the Host Selection Algorithm on every selector —
// serially when Concurrency is 1, otherwise through a bounded worker pool —
// and merges the successful results deterministically by site name.
// In-process selectors run the dense slice-indexed walk; RPC remotes
// answer with maps that are flattened onto the dense index once. Failed
// sites are dropped and recorded on Diag, classified as capacity refusals
// vs transient losses.
//
// Availability-aware scheduling is propagated into in-process selectors:
// the EFT walk prices queueing itself, so the per-site walks must report
// pure predictions (a queued-load-bumped prediction would double-count the
// wait). Remote sites decide their own mode — the RPC selector cannot see
// this scheduler's flag — which only perturbs which host a remote site
// offers, not the EFT accounting.
func (s *SiteScheduler) collectSelections(ix *afg.Index, g *afg.Graph, selectors []HostSelector) ([]siteResult, []SiteError) {
	if s.AvailabilityAware {
		propagated := make([]HostSelector, len(selectors))
		for i, sel := range selectors {
			if ls, ok := sel.(*LocalSelector); ok {
				c := *ls
				c.AvailabilityAware = true
				if c.Ledger == nil {
					c.Ledger = s.Ledger
				}
				propagated[i] = &c
			} else {
				propagated[i] = sel
			}
		}
		selectors = propagated
	}
	gathered := make([]siteResult, len(selectors))
	gather := func(i int, sel HostSelector) {
		name := sel.SiteName()
		if ls, ok := sel.(*LocalSelector); ok {
			cs, err := ls.selectHostsDense(g)
			gathered[i] = siteResult{name: name, choices: cs, err: err}
			return
		}
		m, err := sel.SelectHosts(g)
		if err != nil {
			gathered[i] = siteResult{name: name, err: err}
			return
		}
		gathered[i] = siteResult{name: name, choices: denseChoices(ix, m)}
	}
	if s.Concurrency == 1 || len(selectors) == 1 {
		for i, sel := range selectors {
			gather(i, sel)
		}
	} else {
		workers := s.Concurrency
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		if workers > len(selectors) {
			workers = len(selectors)
		}
		sem := make(chan struct{}, workers)
		var wg sync.WaitGroup
		for i, sel := range selectors {
			wg.Add(1)
			go func(i int, sel HostSelector) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				gather(i, sel)
			}(i, sel)
		}
		wg.Wait()
	}
	results := gathered[:0]
	var transient []SiteError
	for _, r := range gathered {
		if r.err != nil {
			s.Diag.record(r.name, r.err)
			if !errors.Is(r.err, ErrNoEligibleHost) {
				transient = append(transient, SiteError{Site: r.name, Err: r.err})
			}
			continue
		}
		if r.choices != nil {
			results = append(results, r)
		}
	}
	sort.Slice(results, func(i, j int) bool { return results[i].name < results[j].name })
	return results, transient
}

// nearestRemotes returns the k nearest remote selectors by network latency
// from the local site (all remotes when no network or K <= 0).
func (s *SiteScheduler) nearestRemotes() []HostSelector {
	return nearestSelectors(s.Local, s.Remotes, s.Net, s.K)
}

// nearestSelectors is the neighbour-selection step shared by the site
// policies and the HEFT/CPOP candidate collection: the k remotes nearest to
// local by network latency (all remotes when no network or k <= 0).
//
//vdce:ignore allocflow neighbour selection runs once per schedule (Fig 4 step 2): the site-name interning map and result list are bounded by the remote count, a handful
func nearestSelectors(local HostSelector, remotes []HostSelector, net *netsim.Network, k int) []HostSelector {
	if len(remotes) == 0 {
		return nil
	}
	if k <= 0 || k > len(remotes) {
		k = len(remotes)
	}
	if net == nil {
		return remotes[:k]
	}
	names := net.Nearest(local.SiteName(), len(remotes))
	byName := make(map[string]HostSelector, len(remotes))
	for _, r := range remotes {
		byName[r.SiteName()] = r
	}
	var out []HostSelector
	for _, n := range names {
		if sel, ok := byName[n]; ok {
			out = append(out, sel)
			if len(out) == k {
				return out
			}
		}
	}
	// Remotes absent from the network map come last.
	for _, r := range remotes {
		if len(out) == k {
			break
		}
		known := false
		for _, o := range out {
			if o == r {
				known = true
				break
			}
		}
		if !known {
			out = append(out, r)
		}
	}
	return out
}

// isEntryLike reports whether the task "is an entry task or does not
// require any input file from its parent node tasks" (Fig 4, step 7).
func isEntryLike(g *afg.Graph, id afg.TaskID) bool {
	for _, l := range g.Parents(id) {
		if transferBytes(g, l) > 0 {
			return false
		}
	}
	return true
}

// transferBytes returns the data volume of one link: the link's explicit
// size, or the parent's declared output volume ("the input size of the
// application can be used for the transfer size parameter").
func transferBytes(g *afg.Graph, l afg.Link) int64 {
	if l.Bytes > 0 {
		return l.Bytes
	}
	if p := g.Task(l.From); p != nil {
		return p.OutputBytes
	}
	return 0
}

// transferCost sums transfer_time(Sparent, Sj) over the task's already
// scheduled parents. (The paper's formula names a single parent site; with
// several parents each contributes its own transfer, so we sum — a
// co-located parent contributes its cheap LAN term.)
func (s *SiteScheduler) transferCost(g *afg.Graph, id afg.TaskID, site string, table *AllocationTable) float64 {
	if s.Net == nil {
		return 0
	}
	var total float64
	for _, l := range g.Parents(id) {
		parent, ok := table.Get(l.From)
		if !ok {
			continue // parent unscheduled (possible only for cross runs)
		}
		bytes := transferBytes(g, l)
		total += s.Net.TransferTime(parent.Site, site, bytes).Seconds()
	}
	return total
}
