package scheduler

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// The policy registry: every scheduling heuristic registers itself by name
// so callers — site.Manager, the Site.ScheduleBatch RPC, vdce-server's
// -policy flag, the experiments harness — select algorithms as data. A new
// heuristic is a Policy implementation plus one Register call.

// ErrUnknownPolicy reports a Lookup for a name nothing registered.
var ErrUnknownPolicy = errors.New("scheduler: unknown policy")

var (
	registryMu sync.RWMutex
	registry   = map[string]Policy{}
)

// Register installs a policy under p.Name(). It panics on an empty name or
// a duplicate registration — both are programming errors caught at init.
func Register(p Policy) {
	name := p.Name()
	if name == "" {
		panic("scheduler: Register with empty policy name")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("scheduler: policy %q registered twice", name))
	}
	registry[name] = p
}

// Lookup resolves a policy by name. Unknown names return an error wrapping
// ErrUnknownPolicy that lists every registered policy.
func Lookup(name string) (Policy, error) {
	registryMu.RLock()
	p, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w %q (available: %s)",
			ErrUnknownPolicy, name, strings.Join(Policies(), ", "))
	}
	return p, nil
}

// Policies returns the registered policy names, sorted.
func Policies() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// The built-in policies. The site policies (faithful/eft/ledger) wrap the
// paper's Site Scheduler engine, heft/cpop are the headline list heuristics
// of Topcuoglu et al., and the rest are the naive evaluation baselines.
func init() {
	Register(sitePolicy{name: "faithful"})
	Register(sitePolicy{name: "eft", eft: true})
	Register(sitePolicy{name: "ledger", eft: true, ledger: true})
	Register(heftPolicy{})
	Register(cpopPolicy{})
	Register(baselinePolicy{kind: "random"})
	Register(baselinePolicy{kind: "roundrobin"})
	Register(baselinePolicy{kind: "minload"})
	Register(baselinePolicy{kind: "fastest"})
}
