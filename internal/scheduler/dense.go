package scheduler

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"repro/internal/afg"
)

// This file is the dense scheduling core: per-(task, host) predictions live
// in one contiguous matrix addressed by (dense task index × dense host
// column) instead of map[TaskID][]Choice, built in a single batched pass
// over the participating sites and shared — via CostCache — across every
// policy a Batch or policy-comparison run throws at the same graph.

// HostRef names one dense host column: the host and the site that owns it.
type HostRef struct {
	Site string
	Host string
}

// CostMatrix is the dense candidate table for one (graph, environment)
// pair: Pred[t*H+c] is the pure predicted execution seconds of task t on
// host column c, NaN where the host is ineligible. Columns are grouped by
// site in ascending site-name order and sorted by host name within a site —
// exactly the deterministic merge order of the map-keyed gather, so walks
// that iterate columns in order reproduce the map path's tie-breaks.
//
// Sites whose selector offers no per-host costs (RPC remotes without the
// HostCoster extension) contribute no columns; their single best offer per
// task sits in the site block's fallback slice instead.
type CostMatrix struct {
	ix    *afg.Index
	hosts []HostRef
	col   map[string]int32 // host name -> dense column
	//vdce:unit seconds
	pred   []float64   // V×H row-major; NaN = ineligible
	blocks []siteBlock // participating sites, ascending name
	sites  []string    // participating site names, ascending
}

// siteBlock is one site's contribution to the matrix: a column range for
// per-host-cost sites, or an index-addressed fallback offer table.
type siteBlock struct {
	name       string
	col0, col1 int32    // dense column range; col0 == col1 ⇒ fallback site
	fallback   []Choice // idx-indexed best offers (fallback sites only)
}

// Hosts returns the dense column → host table. Callers must not mutate it.
func (cm *CostMatrix) Hosts() []HostRef { return cm.hosts }

// Sites returns the participating site names, ascending.
func (cm *CostMatrix) Sites() []string { return cm.sites }

// Pred returns the predicted seconds for task index t on column c (NaN
// when ineligible).
func (cm *CostMatrix) Pred(t, c int) float64 {
	return cm.pred[t*len(cm.hosts)+c]
}

// row returns task t's prediction row.
func (cm *CostMatrix) row(t int) []float64 {
	h := len(cm.hosts)
	return cm.pred[t*h : (t+1)*h]
}

// meanExec is w̄(t): the prediction averaged over every candidate of task
// t, accumulated in the same site-then-host order as the map-keyed gather
// so the float result is bit-identical.
func (cm *CostMatrix) meanExec(t int) float64 {
	row := cm.row(t)
	var sum float64
	n := 0
	for _, b := range cm.blocks {
		if b.fallback != nil {
			if c := b.fallback[t]; c.Host != "" {
				sum += c.Predicted
				n++
			}
			continue
		}
		for c := b.col0; c < b.col1; c++ {
			if p := row[c]; !math.IsNaN(p) {
				sum += p
				n++
			}
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// choices materialises task t's candidate list in deterministic order
// (the map-keyed gather's order), appending to buf. Only the parallel
// placement path needs the slice form; the scalar walks iterate the
// matrix directly.
//
//vdce:ignore allocflow appends into a caller-owned scratch buffer that amortizes across the walk; only the rare parallel path and the once-per-schedule critical-host election call it
func (cm *CostMatrix) choices(t int, buf []Choice) []Choice {
	row := cm.row(t)
	for _, b := range cm.blocks {
		if b.fallback != nil {
			if c := b.fallback[t]; c.Host != "" {
				buf = append(buf, c)
			}
			continue
		}
		for c := b.col0; c < b.col1; c++ {
			if p := row[c]; !math.IsNaN(p) {
				buf = append(buf, Choice{Site: b.name, Host: cm.hosts[c].Host, Predicted: p})
			}
		}
	}
	return buf
}

// SiteError records one site dropped from a gather and why.
type SiteError struct {
	Site string
	Err  error
}

func (e SiteError) Error() string { return fmt.Sprintf("site %s: %v", e.Site, e.Err) }

// Unwrap exposes the underlying selector error to errors.Is/As.
func (e SiteError) Unwrap() error { return e.Err }

// Diagnostics collects per-site gather outcomes. Attach one to
// Request.Diag to observe which sites were dropped and whether the drop
// was structural (the site cannot host some task — the multicast
// semantics say skip it) or transient (an RPC failure, a repository
// error): transient drops silently lose capacity, so they are
// distinguished and surfaced instead of vanishing. Safe for the
// concurrent gather workers to record into. A collector accumulates
// across every schedule that shares the Request — attach a fresh one per
// episode when per-run attribution matters.
type Diagnostics struct {
	mu         sync.Mutex
	cannotHost []SiteError
	transient  []SiteError
}

// record classifies err: anything wrapping ErrNoEligibleHost is a
// capacity refusal, everything else is transient.
//
//vdce:ignore allocflow cold bookkeeping: runs only when a site drops out of the gather
func (d *Diagnostics) record(site string, err error) {
	if d == nil {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if errors.Is(err, ErrNoEligibleHost) {
		d.cannotHost = append(d.cannotHost, SiteError{Site: site, Err: err})
	} else {
		d.transient = append(d.transient, SiteError{Site: site, Err: err})
	}
}

// CannotHost returns the sites dropped because some task had no eligible
// host there, in record order.
func (d *Diagnostics) CannotHost() []SiteError {
	if d == nil {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]SiteError(nil), d.cannotHost...)
}

// Transient returns the sites dropped for non-capacity reasons (RPC or
// repository failures) — capacity the schedule lost without knowing.
func (d *Diagnostics) Transient() []SiteError {
	if d == nil {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]SiteError(nil), d.transient...)
}

// noSitesErr builds the terminal error for a gather that kept no site:
// plain ErrNoSites when every drop was structural, THIS gather's transient
// failures joined in when capacity was lost to them. (Request.Diag may
// span many schedules; the terminal error must only carry the current
// gather's losses.)
//
//vdce:ignore allocflow terminal error construction: the gather has already failed when this runs
func noSitesErr(transient []SiteError) error {
	if len(transient) == 0 {
		return ErrNoSites
	}
	errs := make([]error, 0, len(transient)+1)
	errs = append(errs, ErrNoSites)
	for _, e := range transient {
		errs = append(errs, e)
	}
	return errors.Join(errs...)
}

// CostCache shares cost matrices across schedules of the same graph: one
// batched gather per (graph, environment) instead of one per policy per
// graph. Keys are graph identities, so a cache must not outlive its
// environment — a repository or network change invalidates every entry.
// Batch installs one automatically for Bind-wrapped policies; comparison
// harnesses share one across policies explicitly (WithCostCache).
type CostCache struct {
	mu sync.Mutex
	m  map[*afg.Graph]*CostMatrix
}

// NewCostCache returns an empty cache.
func NewCostCache() *CostCache {
	return &CostCache{m: make(map[*afg.Graph]*CostMatrix)}
}

// costMatrix returns the request's cost matrix, from Config.Costs when the
// graph was already gathered, else via a fresh batched gather (published
// to the cache afterwards).
func (r *Request) costMatrix(ix *afg.Index) (*CostMatrix, error) {
	cache := r.Config.Costs
	if cache != nil {
		cache.mu.Lock()
		cm, ok := cache.m[r.Graph]
		cache.mu.Unlock()
		if ok && cm.ix == ix {
			return cm, nil
		}
	}
	cm, err := gatherCostMatrix(ix, r)
	if err != nil {
		return nil, err
	}
	if cache != nil {
		cache.mu.Lock()
		cache.m[r.Graph] = cm
		cache.mu.Unlock()
	}
	return cm, nil
}

// PrewarmCosts gathers the request graph's cost matrix into Config.Costs
// ahead of scheduling. Comparison harnesses that share one cache across
// policies call it before timing, so the batched gather is charged to
// setup rather than to whichever matrix-consuming policy happens to run
// first. A no-op without a cache.
func (r *Request) PrewarmCosts() error {
	if r.Config.Costs == nil {
		return nil
	}
	ix, err := r.Graph.Index()
	if err != nil {
		return err
	}
	_, err = r.costMatrix(ix)
	return err
}

// gatherCostMatrix is the dense successor of the map-keyed candidate
// gather: every site's per-task host offers — full per-host cost vectors
// from HostCosters, the single best choice from plain selectors — fanned
// out across Config.Concurrency workers and merged deterministically in
// site-name order into one contiguous matrix. A site that cannot host some
// task is dropped, mirroring the Site Scheduler's multicast semantics; a
// site failing for any other reason is dropped too, but recorded as a
// transient loss on Request.Diag rather than vanishing silently.
//
//vdce:hot
func gatherCostMatrix(ix *afg.Index, req *Request) (*CostMatrix, error) {
	if req.Local == nil {
		return nil, ErrNoSites
	}
	selectors := append([]HostSelector{req.Local},
		nearestSelectors(req.Local, req.Remotes, req.Net, req.Config.K)...)

	// One gathered block per selector; merged in site-name order below.
	type gathered struct {
		name     string
		hosts    []string  // per-host sites: column host names, ascending
		pred     []float64 // V×len(hosts), NaN = ineligible
		fallback []Choice  // plain sites: idx-addressed best offers
		err      error
	}
	per := make([]gathered, len(selectors))
	gather := func(i int, sel HostSelector) {
		per[i].name = sel.SiteName()
		if dc, ok := sel.(denseCoster); ok {
			per[i].hosts, per[i].pred, per[i].err = dc.denseHostCosts(ix)
			return
		}
		if hc, ok := sel.(HostCoster); ok {
			m, err := hc.HostCosts(req.Graph)
			if err != nil {
				per[i].err = err
				return
			}
			per[i].hosts, per[i].pred = denseFromCostMap(ix, m)
			return
		}
		m, err := sel.SelectHosts(req.Graph)
		if err != nil {
			per[i].err = err
			return
		}
		per[i].fallback = denseChoices(ix, m)
	}
	workers := req.Config.Concurrency
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(selectors) {
		workers = len(selectors)
	}
	if workers <= 1 {
		for i, sel := range selectors {
			gather(i, sel)
		}
	} else {
		sem := make(chan struct{}, workers)
		var wg sync.WaitGroup
		for i, sel := range selectors {
			wg.Add(1)
			//vdce:ignore allocflow one worker goroutine per site per gather: the fan-out cost is paid once and dwarfed by the per-site selector RPC it parallelises
			go func(i int, sel HostSelector) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				gather(i, sel)
			}(i, sel)
		}
		wg.Wait()
	}

	keep := per[:0]
	var transient []SiteError
	for _, g := range per {
		if g.err != nil {
			req.Diag.record(g.name, g.err)
			if !errors.Is(g.err, ErrNoEligibleHost) {
				//vdce:ignore allocflow cold drop path: grows only when a site fails the gather
				transient = append(transient, SiteError{Site: g.name, Err: g.err})
			}
			continue
		}
		//vdce:ignore allocflow filters in place over per's backing array: no growth possible
		keep = append(keep, g)
	}
	if len(keep) == 0 {
		return nil, noSitesErr(transient)
	}
	sort.Slice(keep, func(i, j int) bool { return keep[i].name < keep[j].name })

	v := ix.Len()
	cm := &CostMatrix{ix: ix, col: map[string]int32{}}
	total := 0
	for _, g := range keep {
		total += len(g.hosts)
	}
	cm.pred = make([]float64, v*total)
	for i := range cm.pred {
		cm.pred[i] = math.NaN()
	}
	//vdce:ignore allocflow matrix assembly runs once per gather: the site and column lists grow to O(S + H) and the col map interns host names for the schedule's lifetime
	for _, g := range keep {
		cm.sites = append(cm.sites, g.name)
		b := siteBlock{name: g.name, col0: int32(len(cm.hosts)), fallback: g.fallback}
		for _, h := range g.hosts {
			cm.col[h] = int32(len(cm.hosts))
			cm.hosts = append(cm.hosts, HostRef{Site: g.name, Host: h})
		}
		b.col1 = int32(len(cm.hosts))
		// Both sides are row-major, so each task's site block moves as
		// one contiguous copy.
		for t := 0; t < v; t++ {
			copy(cm.pred[t*total+int(b.col0):t*total+int(b.col1)],
				g.pred[t*len(g.hosts):(t+1)*len(g.hosts)])
		}
		cm.blocks = append(cm.blocks, b)
	}
	return cm, nil
}

// denseChoices flattens a per-task choice map onto the dense index (an
// empty Host marks "no offer"); ids the index does not know are dropped.
func denseChoices(ix *afg.Index, m map[afg.TaskID]Choice) []Choice {
	out := make([]Choice, ix.Len())
	//vdce:ignore maporder,detflow ix.Of is injective: every id writes its own dense slot, so visit order cannot be observed
	for id, c := range m {
		if t := ix.Of(id); t >= 0 {
			out[t] = c
		}
	}
	return out
}

// denseFromCostMap flattens a HostCosts map into a per-site dense block:
// the column set is the union of offered hosts (ascending), predictions
// fill in per task, NaN where a host was not offered.
//
//vdce:ignore allocflow flattening a remote site's HostCosts map runs once per (site, gather): the host union is O(H) and every map probe interns into the dense block
func denseFromCostMap(ix *afg.Index, m map[afg.TaskID][]Choice) (hosts []string, pred []float64) {
	seen := map[string]int{}
	for _, cs := range m {
		for _, c := range cs {
			if _, ok := seen[c.Host]; !ok {
				seen[c.Host] = 0
				hosts = append(hosts, c.Host)
			}
		}
	}
	sort.Strings(hosts)
	for k, h := range hosts {
		seen[h] = k
	}
	v := ix.Len()
	pred = make([]float64, v*len(hosts))
	for i := range pred {
		pred[i] = math.NaN()
	}
	//vdce:ignore maporder,detflow ix.Of is injective and host columns are fixed: each (task, host) cell is written once
	for id, cs := range m {
		t := ix.Of(id)
		if t < 0 {
			continue
		}
		for _, c := range cs {
			pred[t*len(hosts)+seen[c.Host]] = c.Predicted
		}
	}
	return hosts, pred
}

// denseCoster is the batched twin of HostCoster: per-task predictions for
// every eligible host at the site, written straight into a dense block
// (hosts ascending by name; V×H prediction slab, NaN = ineligible) with no
// per-task map or slice allocation. LocalSelector implements it; the
// gather falls back to HostCosts / SelectHosts for everything else.
type denseCoster interface {
	denseHostCosts(ix *afg.Index) (hosts []string, pred []float64, err error)
}
