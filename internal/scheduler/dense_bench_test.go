package scheduler

// Micro-benchmarks for the dense scheduling core's hot paths: rank
// computation, timeline insertion, cost-matrix assembly, and ledger
// contention. All report allocations — the dense rewrite's claim is as
// much about allocation pressure as about time.

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"

	"repro/internal/workload"
)

func rankBenchSetup(b testing.TB) *CostMatrix {
	b.Helper()
	req, _, _ := equivEnv(b, 1)
	req.Graph = workload.Scale(1000, 25, 12, 42)
	ix, err := req.Graph.Index()
	if err != nil {
		b.Fatal(err)
	}
	cm, err := req.costMatrix(ix)
	if err != nil {
		b.Fatal(err)
	}
	return cm
}

// BenchmarkRankU — rank_u over a 1000-task scale graph on the dense
// matrix: one reverse-topo sweep, no maps.
func BenchmarkRankU(b *testing.B) {
	cm := rankBenchSetup(b)
	c := commModel{latency: 5e-3, perByte: 1e-7}
	b.ReportAllocs()
	b.ResetTimer()
	var buf []float64
	for i := 0; i < b.N; i++ {
		buf = upwardRanks(cm, c, buf)
		if len(buf) != cm.ix.Len() {
			b.Fatal("short rank vector")
		}
	}
}

// BenchmarkTimelineInsertion — the insertion-scheduling pattern on one
// host timeline: reserve ahead, then probe gaps at interleaved ready
// times (binary-search entry + local scan).
func BenchmarkTimelineInsertion(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	starts := make([]float64, 512)
	for i := range starts {
		starts[i] = rng.Float64() * 1000
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var tl timeline
		cursor := 0.0
		for k := 0; k < 256; k++ {
			cursor += 2
			tl.add(cursor, cursor+1)
		}
		var sink float64
		for _, ready := range starts {
			sink += tl.earliest(ready, 0.5)
		}
		if sink < 0 {
			b.Fatal("impossible")
		}
	}
}

// BenchmarkCostMatrixBuild — the batched per-(task, host) gather for the
// POLICY experiment's graph shape against a 4-site environment.
func BenchmarkCostMatrixBuild(b *testing.B) {
	req, _, _ := equivEnv(b, 1)
	req.Graph = workload.Scale(1000, 25, 12, 42)
	ix, err := req.Graph.Index()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gatherCostMatrix(ix, req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLedgerContention — parallel Reserve/Busy/Release traffic over
// a 128-host pool: the workload the striped ledger exists for.
func BenchmarkLedgerContention(b *testing.B) {
	hosts := make([]string, 128)
	for i := range hosts {
		hosts[i] = fmt.Sprintf("site%02d-%02d", i/4, i%4)
	}
	l := NewLoadLedger()
	var cursor atomic.Uint64
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		seq := cursor.Add(1)
		rng := rand.New(rand.NewSource(int64(seq)))
		for pb.Next() {
			h := hosts[rng.Intn(len(hosts))]
			l.Reserve(h, 1.5)
			_ = l.Busy(h)
			l.Release(h, 1.5)
		}
	})
}

// BenchmarkLedgerViewWalk — the EFT walk's read pattern: one Refresh per
// task, then candidate probes against the local snapshot.
func BenchmarkLedgerViewWalk(b *testing.B) {
	hosts := make([]string, 128)
	l := NewLoadLedger()
	for i := range hosts {
		hosts[i] = fmt.Sprintf("site%02d-%02d", i/4, i%4)
		l.Reserve(hosts[i], float64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := l.View()
		var sink float64
		for task := 0; task < 1000; task++ {
			v.Refresh()
			for _, h := range hosts[:32] {
				sink += v.Busy(h)
			}
			v.Reserve(hosts[task%len(hosts)], 0.25)
		}
		l.ReleaseTable(nil) // keep the ledger from growing across iterations
		for task := 0; task < 1000; task++ {
			l.Release(hosts[task%len(hosts)], 0.25)
		}
		if sink < 0 {
			b.Fatal("impossible")
		}
	}
}
