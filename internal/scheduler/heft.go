package scheduler

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/afg"
	"repro/internal/minheap"
	"repro/internal/netsim"
)

// The paper's two headline list-scheduling heuristics, as registered
// policies:
//
//   - HEFT (Heterogeneous Earliest Finish Time): tasks ordered by upward
//     rank — mean execution cost plus the most expensive (communication +
//     rank) path to an exit — and placed one by one on the host minimising
//     earliest finish time, with insertion: a task may slide into an idle
//     gap between two already-scheduled tasks on the host.
//   - CPOP (Critical Path On a Processor): tasks prioritised by upward +
//     downward rank; the tasks forming the critical path are pinned to the
//     single host minimising the path's total execution, everything else
//     placed by earliest finish time.
//
// Both run on the dense scheduling core: per-(task, host) costs come from
// the request's CostMatrix (one batched gather, shared across policies via
// CostCache), ranks and placement state are slice-indexed through the
// graph's dense Index, and host timelines find insertion gaps by binary
// search. The original map-keyed implementations are retained in
// oracle_test.go; equivalence tests prove the dense paths produce
// identical allocation tables.

// commModel is the environment-average communication cost the rank
// computations use (the classic HEFT "average transfer rate" treatment):
// cost(bytes) = mean latency + bytes × mean per-byte seconds, averaged over
// every ordered pair of participating sites.
type commModel struct {
	latency float64
	perByte float64
}

func (m commModel) cost(bytes int64) float64 {
	return m.latency + float64(bytes)*m.perByte
}

// averageComm derives the commModel from the participating sites. No
// network, or a single site, means communication is free.
func averageComm(net *netsim.Network, sites []string) commModel {
	if net == nil || len(sites) < 2 {
		return commModel{}
	}
	return commFromNames(net, sites)
}

// commFromNames averages the probe-measured latency and per-byte cost over
// every ordered site pair. names must be sorted and len ≥ 2.
func commFromNames(net *netsim.Network, names []string) commModel {
	const probe = 1 << 20
	var lat, perByte float64
	pairs := 0
	for _, a := range names {
		for _, b := range names {
			if a == b {
				continue
			}
			l := net.TransferTime(a, b, 0).Seconds()
			lat += l
			perByte += (net.TransferTime(a, b, probe).Seconds() - l) / probe
			pairs++
		}
	}
	return commModel{latency: lat / float64(pairs), perByte: perByte / float64(pairs)}
}

// upwardRanks computes rank_u(t) = w̄(t) + max over children of
// (c̄(t, child) + rank_u(child)) — the length of the most expensive path
// from t to an exit, in mean costs — as a dense slice over the matrix.
// The rank vector is written into buf (grown only until its capacity
// reaches the graph size), so a warm scratch makes the sweep
// allocation-free; every element is overwritten before it is read.
//
//vdce:hot allocs=0
func upwardRanks(cm *CostMatrix, c commModel, buf []float64) []float64 {
	ix := cm.ix
	topo := ix.Topo()
	rank := grow(buf, ix.Len())
	for k := len(topo) - 1; k >= 0; k-- {
		i := topo[k]
		var best float64
		for _, a := range ix.Children(int(i)) {
			if v := c.cost(a.Bytes) + rank[a.Peer]; v > best {
				best = v
			}
		}
		rank[i] = cm.meanExec(int(i)) + best
	}
	return rank
}

// downwardRanks computes rank_d(t) = max over parents of
// (rank_d(parent) + w̄(parent) + c̄(parent, t)); entry tasks rank 0. Like
// upwardRanks, the vector reuses buf and every element is overwritten.
func downwardRanks(cm *CostMatrix, c commModel, buf []float64) []float64 {
	ix := cm.ix
	rank := grow(buf, ix.Len())
	for _, i := range ix.Topo() {
		var best float64
		for _, a := range ix.Parents(int(i)) {
			v := rank[a.Peer] + cm.meanExec(int(a.Peer)) + c.cost(a.Bytes)
			if v > best {
				best = v
			}
		}
		rank[i] = best
	}
	return rank
}

// rankOrderDesc fills buf with dense task indices by descending rank,
// index (= ascending TaskID) on ties, and returns it (grown when short).
//
//vdce:ignore allocflow rank ordering runs once per schedule: the sort closure lives for the O(V log V) call and the index buffer is pooled scratch
func rankOrderDesc(rank []float64, buf []int32) []int32 {
	out := grow(buf, len(rank))
	for i := range out {
		out[i] = int32(i)
	}
	sort.Slice(out, func(i, j int) bool {
		ri, rj := rank[out[i]], rank[out[j]]
		if ri != rj {
			return ri > rj
		}
		return out[i] < out[j]
	})
	return out
}

// span is one reserved busy interval on a host timeline.
type span struct {
	start, end float64
}

// timeline is one host's reserved intervals, sorted by start and disjoint.
type timeline struct {
	busy []span
}

// earliest returns the insertion-based earliest start at or after ready
// with room for dur: the first idle gap (or the end of the schedule) that
// fits the task. Spans ending at or before ready can neither host the gap
// nor push the start, so the scan begins at the first span still live at
// ready — found by binary search — instead of walking the whole timeline.
//
//vdce:hot allocs=0
func (t *timeline) earliest(ready, dur float64) float64 {
	//vdce:ignore allocflow the search closure captures only stack locals and does not escape sort.Search; the allocs=0 budget is enforced by AllocsPerRun
	i := sort.Search(len(t.busy), func(i int) bool { return t.busy[i].end > ready })
	start := ready
	for ; i < len(t.busy); i++ {
		s := t.busy[i]
		if start+dur <= s.start {
			break
		}
		if s.end > start {
			start = s.end
		}
	}
	return start
}

// end is the time the host's last reserved interval finishes.
func (t *timeline) end() float64 {
	if n := len(t.busy); n > 0 {
		return t.busy[n-1].end
	}
	return 0
}

// add reserves [start, end), keeping the interval list sorted.
//
//vdce:ignore allocflow one insertion per placement commit: the search closure is non-escaping and the interval list grows to the schedule's high-water mark, amortized
func (t *timeline) add(start, end float64) {
	i := sort.Search(len(t.busy), func(i int) bool { return t.busy[i].start >= start })
	t.busy = append(t.busy, span{})
	copy(t.busy[i+1:], t.busy[i:])
	t.busy[i] = span{start, end}
}

// placement is the shared HEFT/CPOP scheduling state, slice-indexed end to
// end: per-host-column timelines (seeded from one bulk ledger snapshot),
// per-task estimated finishes and assigned host sets by dense task index,
// and the allocation table under construction. Hosts offered only through
// a fallback site's opaque choices get map-keyed overflow timelines.
type placement struct {
	cm    *CostMatrix
	net   *netsim.Network
	ledg  *LoadLedger
	lines []timeline
	canon []int32 // column -> canonical column for its host NAME
	extra map[string]*timeline

	finish []float64
	site   []string   // assigned site per task; "" = unplaced
	hosts  [][]string // assigned host set per task
	table  *AllocationTable

	choiceBuf []Choice // scratch for the parallel placement path

	// hostSlab backs the committed single-host sets. It is schedule
	// OUTPUT — the carved sets escape into the allocation table — so it is
	// allocated fresh per placement and never returned to the pool.
	hostSlab []string

	blockReady  []float64 // per-site-block data-ready memo for the current task
	parentHosts []string  // hosts of the current task's byte-carrying placed parents
}

// newPlacement wires the placement state onto sc's pooled buffers. The
// timelines, columns, and per-task vectors are scratch (contract 2 in
// scratch.go: siteOf and hostSets are reset, finish is gated by the site
// marker); the table and hostSlab are output and allocated fresh.
//
//vdce:ignore allocflow per-schedule setup, O(V+H) once: the output slab and the seeded ledger spans are one-time, the rest is pooled scratch
func newPlacement(cm *CostMatrix, app string, net *netsim.Network, ledger *LoadLedger, sc *scratch) *placement {
	n := cm.ix.Len()
	sc.lines = growTimelines(sc.lines, len(cm.hosts))
	sc.canon = grow(sc.canon, len(cm.hosts))
	sc.finish = grow(sc.finish, n)         // gated by site == "" before reads
	sc.siteOf = growZero(sc.siteOf, n)     // "" = unplaced marker must reset
	sc.hostSets = growZero(sc.hostSets, n) // drop the prior schedule's refs
	sc.blockReady = grow(sc.blockReady, len(cm.blocks))
	p := &placement{
		cm:          cm,
		net:         net,
		ledg:        ledger,
		lines:       sc.lines,
		canon:       sc.canon,
		finish:      sc.finish,
		site:        sc.siteOf,
		hosts:       sc.hostSets,
		table:       NewAllocationTableSized(app, n),
		choiceBuf:   sc.choiceBuf,
		hostSlab:    make([]string, n),
		blockReady:  sc.blockReady,
		parentHosts: sc.parentHosts,
	}
	// A host NAME owns one timeline, however many sites offer it (the
	// map-keyed path keyed timelines by name): every column resolves to
	// the name's canonical column, and only canonical lines are used.
	for c := range p.canon {
		p.canon[c] = p.cm.col[cm.hosts[c].Host]
	}
	if ledger != nil {
		view := ledger.View()
		view.Refresh()
		for c := range p.lines {
			if int32(c) != p.canon[c] {
				continue
			}
			if busy := view.Busy(cm.hosts[c].Host); busy > 0 {
				p.lines[c].busy = append(p.lines[c].busy, span{0, busy})
			}
		}
	}
	return p
}

// line resolves a host name to its timeline: the dense column when the
// matrix knows the host, a lazily created overflow line otherwise.
//
//vdce:ignore allocflow host-name interning: a dense hit is one probe, and the allocating overflow branch exists only for fallback hosts outside the matrix
func (p *placement) line(host string) *timeline {
	if c, ok := p.cm.col[host]; ok {
		return &p.lines[c]
	}
	t, ok := p.extra[host]
	if !ok {
		t = &timeline{}
		if p.ledg != nil {
			if busy := p.ledg.Busy(host); busy > 0 {
				t.busy = append(t.busy, span{0, busy})
			}
		}
		if p.extra == nil {
			p.extra = map[string]*timeline{}
		}
		p.extra[host] = t
	}
	return t
}

// releaseScratch hands the placement's pooled buffers back to sc so any
// growth is retained for the next schedule. The table and hostSlab are
// schedule output and are never returned. Call before sc.release().
func (p *placement) releaseScratch(sc *scratch) {
	sc.lines, sc.canon = p.lines, p.canon
	sc.finish, sc.siteOf, sc.hostSets = p.finish, p.site, p.hosts
	sc.blockReady, sc.parentHosts = p.blockReady, p.parentHosts
	sc.choiceBuf = p.choiceBuf
}

// readyAt is the data-ready time of task t on the given host set at site:
// every scheduled parent's estimated finish, plus the inter-site transfer
// unless a host is shared with the parent.
func (p *placement) readyAt(t int, site string, hosts []string) float64 {
	var ready float64
	for _, a := range p.cm.ix.Parents(t) {
		if p.site[a.Peer] == "" {
			continue // unplaced parent (possible only on rank ties); skip
		}
		arrive := p.finish[a.Peer]
		if p.net != nil {
			if a.Bytes > 0 && !sharesHost(p.hosts[a.Peer], hosts) {
				arrive += p.net.TransferTime(p.site[a.Peer], site, a.Bytes).Seconds()
			}
		}
		if arrive > ready {
			ready = arrive
		}
	}
	return ready
}

// readyAtBase is readyAt with no candidate host set: the transfer is
// charged for every byte-carrying placed parent. Bit-identical to readyAt
// whenever the candidate shares no host with any such parent — the same
// float operations fold in the same order.
func (p *placement) readyAtBase(t int, site string) float64 {
	var ready float64
	for _, a := range p.cm.ix.Parents(t) {
		if p.site[a.Peer] == "" {
			continue
		}
		arrive := p.finish[a.Peer]
		if p.net != nil && a.Bytes > 0 {
			arrive += p.net.TransferTime(p.site[a.Peer], site, a.Bytes).Seconds()
		}
		if arrive > ready {
			ready = arrive
		}
	}
	return ready
}

// prepReady memoises, per dense site block, the current task's data-ready
// time assuming no host sharing, and collects the hosts of byte-carrying
// placed parents. Inside a block every host sees the same transfer terms
// except the few appearing in a parent's host set (a zero-byte parent's
// sharing never changes readyAt), so only those fall back to the full
// recompute. This is the cache-blocked CostMatrix traversal: the
// O(parents) TransferTime walk runs once per (task, site block) instead of
// once per (task, host) — O(S·P) against the former O(H·P) — which
// profiled far better at 1000 hosts than an indexed O(log H) structure,
// whose per-host heterogeneous ready times defeat any shared ordering.
func (p *placement) prepReady(t int) {
	p.parentHosts = p.parentHosts[:0]
	for _, a := range p.cm.ix.Parents(t) {
		if a.Bytes > 0 && p.site[a.Peer] != "" {
			//vdce:ignore allocflow appends into pooled scratch: the parent host list reaches the schedule's high-water mark and stays
			p.parentHosts = append(p.parentHosts, p.hosts[a.Peer]...)
		}
	}
	for bi := range p.cm.blocks {
		if p.cm.blocks[bi].fallback != nil {
			continue // single candidate per block: memoising buys nothing
		}
		p.blockReady[bi] = p.readyAtBase(t, p.cm.blocks[bi].name)
	}
}

// hostIn is a linear probe over the (tiny) parent host list.
func hostIn(hosts []string, h string) bool {
	for _, x := range hosts {
		if x == h {
			return true
		}
	}
	return false
}

// place schedules one task on the candidate minimising insertion-based
// earliest finish time, walking the matrix row in deterministic site/host
// order. restrict, when non-nil, limits the hosts considered (CPOP's
// critical-path pinning); if it excludes every candidate, placement
// retries unrestricted rather than failing the application.
func (p *placement) place(t int, restrict map[string]bool) error {
	task := p.cm.ix.Task(t)
	if task.Mode == afg.Parallel && task.Processors > 1 {
		return p.placeParallel(t, task, restrict)
	}
	var best Choice
	var bestStart float64
	bestFinish := math.Inf(1)
	found := false
	var hostBuf [1]string
	p.prepReady(t)
	row := p.cm.row(t)
	for bi, b := range p.cm.blocks {
		if b.fallback != nil {
			c := b.fallback[t]
			//vdce:ignore allocflow restrict is CPOP's host-name pin set (nil under HEFT): one probe per candidate, no allocation
			if c.Host == "" || (restrict != nil && !restrict[c.Host]) {
				continue
			}
			hostBuf[0] = c.Host
			ready := p.readyAt(t, c.Site, hostBuf[:])
			start := p.line(c.Host).earliest(ready, c.Predicted)
			p.consider(&best, &bestStart, &bestFinish, &found,
				Choice{Site: c.Site, Host: c.Host, Predicted: c.Predicted}, start)
			continue
		}
		base := p.blockReady[bi]
		for col := b.col0; col < b.col1; col++ {
			pr := row[col]
			if math.IsNaN(pr) {
				continue
			}
			host := p.cm.hosts[col].Host
			//vdce:ignore allocflow restrict is CPOP's host-name pin set (nil under HEFT): one probe per candidate, no allocation
			if restrict != nil && !restrict[host] {
				continue
			}
			ready := base
			if hostIn(p.parentHosts, host) {
				hostBuf[0] = host
				ready = p.readyAt(t, b.name, hostBuf[:])
			}
			start := p.lines[p.canon[col]].earliest(ready, pr)
			p.consider(&best, &bestStart, &bestFinish, &found,
				Choice{Site: b.name, Host: host, Predicted: pr}, start)
		}
	}
	if !found {
		if restrict != nil {
			return p.place(t, nil)
		}
		//vdce:ignore allocflow cold failure path: the error aborts the schedule
		return fmt.Errorf("%w: %q", ErrNoEligibleHost, p.cm.ix.ID(t))
	}
	// The committed host set is carved from hostSlab (schedule output; see
	// the placement struct): a full-capacity reslice, so the set can never
	// grow into its neighbour.
	hosts := p.hostSlab[:1:1]
	p.hostSlab = p.hostSlab[1:]
	hosts[0] = best.Host
	p.commit(t, Assignment{
		Task:      p.cm.ix.ID(t),
		Site:      best.Site,
		Host:      best.Host,
		Hosts:     hosts,
		Predicted: best.Predicted,
	}, bestStart, bestFinish)
	return nil
}

// consider folds one candidate into the running minimum with the map
// path's exact tie-break: earliest finish, then site name, then host name.
func (p *placement) consider(best *Choice, bestStart, bestFinish *float64, found *bool, c Choice, start float64) {
	fin := start + c.Predicted
	better := fin < *bestFinish
	if fin == *bestFinish {
		better = c.Site < best.Site || (c.Site == best.Site && c.Host < best.Host)
	}
	if better {
		*best, *bestStart, *bestFinish, *found = c, start, fin, true
	}
}

// placeParallel handles parallel-mode tasks: within each candidate site,
// take the task.Processors hosts that free up earliest (appending after
// their last reservation — gaps rarely align across a whole machine set),
// charge the slowest member's prediction split n ways, and pick the site
// with the earliest finish.
//
//vdce:ignore allocflow parallel-mode placement is the rare multi-processor path: per-site grouping is site/host-name-keyed, bounded by one candidate row, and the chosen host set is schedule output
func (p *placement) placeParallel(t int, task *afg.Task, restrict map[string]bool) error {
	p.choiceBuf = p.cm.choices(t, p.choiceBuf[:0])
	cands := p.choiceBuf
	bySite := map[string][]Choice{}
	var siteNames []string
	for _, c := range cands {
		if restrict != nil && !restrict[c.Host] {
			continue
		}
		if _, ok := bySite[c.Site]; !ok {
			siteNames = append(siteNames, c.Site)
		}
		bySite[c.Site] = append(bySite[c.Site], c)
	}
	if len(bySite) == 0 {
		if restrict != nil {
			return p.placeParallel(t, task, nil)
		}
		return fmt.Errorf("%w: %q", ErrNoEligibleHost, p.cm.ix.ID(t))
	}
	sort.Strings(siteNames)

	var bestAssign Assignment
	var bestStart float64
	bestFinish := math.Inf(1)
	for _, site := range siteNames {
		group := bySite[site]
		n := task.Processors
		if n > len(group) {
			n = len(group)
		}
		// Earliest-freeing hosts first; host name breaks ties.
		sort.Slice(group, func(i, j int) bool {
			ei, ej := p.line(group[i].Host).end(), p.line(group[j].Host).end()
			if ei != ej {
				return ei < ej
			}
			return group[i].Host < group[j].Host
		})
		chosen := group[:n]
		hosts := make([]string, n)
		var maxPred, free float64
		for i, c := range chosen {
			hosts[i] = c.Host
			if c.Predicted > maxPred {
				maxPred = c.Predicted
			}
			if e := p.line(c.Host).end(); e > free {
				free = e
			}
		}
		pred := maxPred / float64(n)
		start := math.Max(p.readyAt(t, site, hosts), free)
		fin := start + pred
		if fin < bestFinish || (fin == bestFinish && site < bestAssign.Site) {
			bestAssign = Assignment{Task: p.cm.ix.ID(t), Site: site, Host: hosts[0], Hosts: hosts, Predicted: pred}
			bestStart, bestFinish = start, fin
		}
	}
	p.commit(t, bestAssign, bestStart, bestFinish)
	return nil
}

func (p *placement) commit(t int, a Assignment, start, fin float64) {
	p.table.Set(a)
	p.finish[t] = fin
	p.site[t] = a.Site
	p.hosts[t] = effectiveHosts(a)
	for _, h := range p.hosts[t] {
		p.line(h).add(start, fin)
	}
}

// reserveLedger records the finished schedule's predicted busy seconds in
// the shared ledger, so concurrent applications in the same batch spread
// around this one. Done once, after the whole schedule succeeds.
func (p *placement) reserveLedger() {
	if p.ledg == nil {
		return
	}
	for _, id := range p.table.Order() {
		a, _ := p.table.Get(id)
		for _, h := range effectiveHosts(a) {
			p.ledg.Reserve(h, a.Predicted)
		}
	}
}

// densePrep validates the graph and assembles the dense inputs shared by
// HEFT and CPOP: the index, the (possibly cached) cost matrix, and the
// environment-average communication model.
func densePrep(req *Request) (*afg.Index, *CostMatrix, commModel, error) {
	if req.Graph.Len() == 0 {
		return nil, nil, commModel{}, afg.ErrEmpty
	}
	ix, err := req.Graph.Index()
	if err != nil {
		return nil, nil, commModel{}, err
	}
	cm, err := req.costMatrix(ix)
	if err != nil {
		return nil, nil, commModel{}, err
	}
	return ix, cm, averageComm(req.Net, cm.sites), nil
}

// heftPolicy is the registered "heft" policy.
type heftPolicy struct{}

// Name implements Policy.
func (heftPolicy) Name() string { return "heft" }

// Schedule implements Policy: upward-rank order, insertion-based earliest
// finish placement.
//
//vdce:hot
func (heftPolicy) Schedule(ctx context.Context, req *Request) (*AllocationTable, error) {
	_, cm, c, err := densePrep(req)
	if err != nil {
		return nil, err
	}
	sc := getScratch()
	defer sc.release()
	sc.rankU = upwardRanks(cm, c, sc.rankU)
	sc.order = rankOrderDesc(sc.rankU, sc.order)
	p := newPlacement(cm, req.Graph.Name, req.Net, req.Config.Ledger, sc)
	defer p.releaseScratch(sc)
	for _, t := range sc.order {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := p.place(int(t), nil); err != nil {
			return nil, err
		}
	}
	p.reserveLedger()
	return p.table, nil
}

// cpopPolicy is the registered "cpop" policy.
type cpopPolicy struct{}

// Name implements Policy.
func (cpopPolicy) Name() string { return "cpop" }

// Schedule implements Policy: priority = rank_u + rank_d; the critical path
// (the chain realising the maximum priority) is pinned to the host
// minimising its total execution; everything else places by earliest
// finish time in ready-set priority order.
//
//vdce:hot
func (cpopPolicy) Schedule(ctx context.Context, req *Request) (*AllocationTable, error) {
	ix, cm, c, err := densePrep(req)
	if err != nil {
		return nil, err
	}
	sc := getScratch()
	defer sc.release()
	sc.rankU = upwardRanks(cm, c, sc.rankU)
	sc.rankD = downwardRanks(cm, c, sc.rankD)
	prio := sc.rankU
	for i := range prio {
		prio[i] += sc.rankD[i]
	}

	sc.cp = criticalPath(ix, prio, sc.cp)
	cp := sc.cp
	restrict := criticalHost(cm, cp)

	p := newPlacement(cm, req.Graph.Name, req.Net, req.Config.Ledger, sc)
	defer p.releaseScratch(sc)
	n := ix.Len()
	sc.pending = grow(sc.pending, n) // fully written by the init loop below
	pending := sc.pending
	// One entry per task ever enters the heap; capacity n keeps Push
	// growth-free.
	sc.heap = grow(sc.heap, n)
	ready := prioHeap(sc.heap[:0])
	for i := 0; i < n; i++ {
		pending[i] = int32(ix.NumParents(i))
		if pending[i] == 0 {
			//vdce:ignore allocflow appends into the capacity-n backing array made above: the bulk load never grows it
			ready = append(ready, prioItem{prio[i], int32(i)})
		}
	}
	ready.Init()
	for done := 0; done < n; done++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if len(ready) == 0 {
			//vdce:ignore allocflow cold failure path: the error aborts the schedule
			return nil, fmt.Errorf("scheduler: ready set empty with %d tasks remaining", n-done)
		}
		t := int(ready.Pop().idx)
		var pin map[string]bool
		if cp[t] {
			pin = restrict
		}
		if err := p.place(t, pin); err != nil {
			return nil, err
		}
		for _, a := range ix.Children(t) {
			pending[a.Peer]--
			if pending[a.Peer] == 0 {
				ready.Push(prioItem{prio[a.Peer], a.Peer})
			}
		}
	}
	p.reserveLedger()
	return p.table, nil
}

// criticalPath walks one maximum-priority chain from the highest-priority
// entry task to an exit: at every step the child whose priority is largest
// (the critical child) extends the path. cp[i] marks membership; buf is
// pooled scratch and must be zeroed, because only members are written.
func criticalPath(ix *afg.Index, prio []float64, buf []bool) []bool {
	cp := growZero(buf, ix.Len())
	cur := -1
	best := math.Inf(-1)
	for i := 0; i < ix.Len(); i++ {
		if ix.NumParents(i) == 0 && prio[i] > best {
			cur, best = i, prio[i]
		}
	}
	if cur < 0 {
		return cp
	}
	cp[cur] = true
	for {
		children := ix.Children(cur)
		if len(children) == 0 {
			return cp
		}
		next := children[0].Peer
		for _, a := range children[1:] {
			if prio[a.Peer] > prio[next] || (prio[a.Peer] == prio[next] && a.Peer < next) {
				next = a.Peer
			}
		}
		cur = int(next)
		cp[cur] = true
	}
}

// criticalHost picks the critical-path processor: among hosts offered to
// every critical task, the one minimising the path's summed prediction
// (most-covering, then cheapest, then name, when no host covers them all).
// Returns a restrict set for placement, nil when there are no candidates.
//
//vdce:ignore allocflow critical-path host election runs once per CPOP schedule: the aggregation is host-name-keyed and bounded by (critical tasks x hosts)
func criticalHost(cm *CostMatrix, cp []bool) map[string]bool {
	type agg struct {
		sum float64
		cnt int
	}
	per := map[string]*agg{}
	var buf []Choice
	for t := range cp {
		if !cp[t] {
			continue
		}
		buf = cm.choices(t, buf[:0])
		for _, c := range buf {
			a := per[c.Host]
			if a == nil {
				a = &agg{}
				per[c.Host] = a
			}
			a.sum += c.Predicted
			a.cnt++
		}
	}
	var bestHost string
	bestCnt, bestSum := 0, math.Inf(1)
	hosts := make([]string, 0, len(per))
	for h := range per {
		hosts = append(hosts, h)
	}
	sort.Strings(hosts)
	for _, h := range hosts {
		a := per[h]
		if a.cnt > bestCnt || (a.cnt == bestCnt && a.sum < bestSum) {
			bestHost, bestCnt, bestSum = h, a.cnt, a.sum
		}
	}
	if bestHost == "" {
		return nil
	}
	return map[string]bool{bestHost: true}
}

// prioItem orders ready tasks by descending priority, dense index
// (= ascending TaskID) on ties — the order the map path realised by
// re-sorting the whole ready set every step. prioHeap is its min-heap.
type prioItem struct {
	prio float64
	idx  int32
}

// LessThan implements minheap.Ordered.
func (a prioItem) LessThan(b prioItem) bool {
	if a.prio != b.prio {
		return a.prio > b.prio
	}
	return a.idx < b.idx
}

type prioHeap = minheap.Heap[prioItem]
