package scheduler

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"repro/internal/afg"
	"repro/internal/netsim"
)

// The paper's two headline list-scheduling heuristics, as registered
// policies:
//
//   - HEFT (Heterogeneous Earliest Finish Time): tasks ordered by upward
//     rank — mean execution cost plus the most expensive (communication +
//     rank) path to an exit — and placed one by one on the host minimising
//     earliest finish time, with insertion: a task may slide into an idle
//     gap between two already-scheduled tasks on the host.
//   - CPOP (Critical Path On a Processor): tasks prioritised by upward +
//     downward rank; the tasks forming the critical path are pinned to the
//     single host minimising the path's total execution, everything else
//     placed by earliest finish time.
//
// Both gather per-(task, host) costs through the HostCoster extension when
// a site's selector supports it (every in-process LocalSelector does) and
// fall back to the site's single best SelectHosts offer otherwise (RPC
// remotes), and both charge inter-site communication through the netsim
// transfer model.

// collectCandidates gathers every site's per-task host offers — full
// per-host cost vectors from HostCosters, the single best choice from plain
// selectors — fanning out across Config.Concurrency workers and merging
// deterministically in site-name order. A site that fails (a task it cannot
// host) is dropped, mirroring the Site Scheduler's multicast semantics.
func collectCandidates(g *afg.Graph, req *Request) (map[afg.TaskID][]Choice, error) {
	if req.Local == nil {
		return nil, ErrNoSites
	}
	selectors := append([]HostSelector{req.Local},
		nearestSelectors(req.Local, req.Remotes, req.Net, req.Config.K)...)

	perSite := make([]map[afg.TaskID][]Choice, len(selectors))
	gather := func(i int, sel HostSelector) {
		if hc, ok := sel.(HostCoster); ok {
			if m, err := hc.HostCosts(g); err == nil {
				perSite[i] = m
			}
			return
		}
		if m, err := sel.SelectHosts(g); err == nil {
			cs := make(map[afg.TaskID][]Choice, len(m))
			for id, c := range m {
				cs[id] = []Choice{c}
			}
			perSite[i] = cs
		}
	}
	workers := req.Config.Concurrency
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(selectors) {
		workers = len(selectors)
	}
	if workers <= 1 {
		for i, sel := range selectors {
			gather(i, sel)
		}
	} else {
		sem := make(chan struct{}, workers)
		var wg sync.WaitGroup
		for i, sel := range selectors {
			wg.Add(1)
			go func(i int, sel HostSelector) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				gather(i, sel)
			}(i, sel)
		}
		wg.Wait()
	}

	type named struct {
		name string
		cs   map[afg.TaskID][]Choice
	}
	var sites []named
	for i, sel := range selectors {
		if perSite[i] != nil {
			sites = append(sites, named{sel.SiteName(), perSite[i]})
		}
	}
	if len(sites) == 0 {
		return nil, ErrNoSites
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i].name < sites[j].name })
	out := make(map[afg.TaskID][]Choice, g.Len())
	for _, s := range sites {
		for id, cs := range s.cs {
			out[id] = append(out[id], cs...)
		}
	}
	return out, nil
}

// commModel is the environment-average communication cost the rank
// computations use (the classic HEFT "average transfer rate" treatment):
// cost(bytes) = mean latency + bytes × mean per-byte seconds, averaged over
// every ordered pair of participating sites.
type commModel struct {
	latency float64
	perByte float64
}

func (m commModel) cost(bytes int64) float64 {
	return m.latency + float64(bytes)*m.perByte
}

// averageComm derives the commModel from the sites present in the
// candidate map. No network, or a single site, means communication is free.
func averageComm(net *netsim.Network, cands map[afg.TaskID][]Choice) commModel {
	if net == nil {
		return commModel{}
	}
	seen := map[string]bool{}
	var names []string
	for _, cs := range cands {
		for _, c := range cs {
			if !seen[c.Site] {
				seen[c.Site] = true
				names = append(names, c.Site)
			}
		}
	}
	if len(names) < 2 {
		return commModel{}
	}
	sort.Strings(names)
	const probe = 1 << 20
	var lat, perByte float64
	pairs := 0
	for _, a := range names {
		for _, b := range names {
			if a == b {
				continue
			}
			l := net.TransferTime(a, b, 0).Seconds()
			lat += l
			perByte += (net.TransferTime(a, b, probe).Seconds() - l) / probe
			pairs++
		}
	}
	return commModel{latency: lat / float64(pairs), perByte: perByte / float64(pairs)}
}

// meanExec is w̄(t): the predicted execution averaged over all candidates.
func meanExec(cs []Choice) float64 {
	if len(cs) == 0 {
		return 0
	}
	var sum float64
	for _, c := range cs {
		sum += c.Predicted
	}
	return sum / float64(len(cs))
}

// upwardRanks computes rank_u(t) = w̄(t) + max over children of
// (c̄(t, child) + rank_u(child)) — the length of the most expensive path
// from t to an exit, in mean costs.
func upwardRanks(g *afg.Graph, cands map[afg.TaskID][]Choice, cm commModel) (map[afg.TaskID]float64, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	rank := make(map[afg.TaskID]float64, len(order))
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		var best float64
		for _, l := range g.Children(id) {
			if v := cm.cost(transferBytes(g, l)) + rank[l.To]; v > best {
				best = v
			}
		}
		rank[id] = meanExec(cands[id]) + best
	}
	return rank, nil
}

// downwardRanks computes rank_d(t) = max over parents of
// (rank_d(parent) + w̄(parent) + c̄(parent, t)); entry tasks rank 0.
func downwardRanks(g *afg.Graph, cands map[afg.TaskID][]Choice, cm commModel) (map[afg.TaskID]float64, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	rank := make(map[afg.TaskID]float64, len(order))
	for _, id := range order {
		var best float64
		for _, l := range g.Parents(id) {
			v := rank[l.From] + meanExec(cands[l.From]) + cm.cost(transferBytes(g, l))
			if v > best {
				best = v
			}
		}
		rank[id] = best
	}
	return rank, nil
}

// byRankDesc orders task ids by descending rank, id ascending on ties.
// With strictly positive execution costs, rank_u strictly decreases along
// every edge, so this order schedules parents before children.
func byRankDesc(ids []afg.TaskID, rank map[afg.TaskID]float64) []afg.TaskID {
	out := append([]afg.TaskID(nil), ids...)
	sort.Slice(out, func(i, j int) bool {
		ri, rj := rank[out[i]], rank[out[j]]
		if ri != rj {
			return ri > rj
		}
		return out[i] < out[j]
	})
	return out
}

// span is one reserved busy interval on a host timeline.
type span struct {
	start, end float64
}

// timeline is one host's reserved intervals, sorted by start and disjoint.
type timeline struct {
	busy []span
}

// earliest returns the insertion-based earliest start at or after ready
// with room for dur: the first idle gap (or the end of the schedule) that
// fits the task.
func (t *timeline) earliest(ready, dur float64) float64 {
	start := ready
	for _, s := range t.busy {
		if start+dur <= s.start {
			break
		}
		if s.end > start {
			start = s.end
		}
	}
	return start
}

// end is the time the host's last reserved interval finishes.
func (t *timeline) end() float64 {
	if n := len(t.busy); n > 0 {
		return t.busy[n-1].end
	}
	return 0
}

// add reserves [start, end), keeping the interval list sorted.
func (t *timeline) add(start, end float64) {
	i := sort.Search(len(t.busy), func(i int) bool { return t.busy[i].start >= start })
	t.busy = append(t.busy, span{})
	copy(t.busy[i+1:], t.busy[i:])
	t.busy[i] = span{start, end}
}

// placement is the shared HEFT/CPOP scheduling state: per-host timelines
// (seeded lazily from the shared ledger's cross-application reservations),
// per-task estimated finishes, and the allocation table under construction.
type placement struct {
	g      *afg.Graph
	net    *netsim.Network
	ledger *LoadLedger
	lines  map[string]*timeline
	finish map[afg.TaskID]float64
	table  *AllocationTable
}

func newPlacement(g *afg.Graph, net *netsim.Network, ledger *LoadLedger) *placement {
	return &placement{
		g:      g,
		net:    net,
		ledger: ledger,
		lines:  make(map[string]*timeline),
		finish: make(map[afg.TaskID]float64, g.Len()),
		table:  NewAllocationTable(g.Name),
	}
}

func (p *placement) line(host string) *timeline {
	t, ok := p.lines[host]
	if !ok {
		t = &timeline{}
		if p.ledger != nil {
			if busy := p.ledger.Busy(host); busy > 0 {
				t.busy = append(t.busy, span{0, busy})
			}
		}
		p.lines[host] = t
	}
	return t
}

// readyAt is the data-ready time of a task on the given host set at site:
// every scheduled parent's estimated finish, plus the inter-site transfer
// unless a host is shared with the parent.
func (p *placement) readyAt(id afg.TaskID, site string, hosts []string) float64 {
	var ready float64
	for _, l := range p.g.Parents(id) {
		parent, ok := p.table.Get(l.From)
		if !ok {
			continue // impossible in rank/ready order; harmless if it were
		}
		arrive := p.finish[l.From]
		if p.net != nil {
			if bytes := transferBytes(p.g, l); bytes > 0 && !sharesHost(effectiveHosts(parent), hosts) {
				arrive += p.net.TransferTime(parent.Site, site, bytes).Seconds()
			}
		}
		if arrive > ready {
			ready = arrive
		}
	}
	return ready
}

// place schedules one task on the candidate minimising insertion-based
// earliest finish time. restrict, when non-nil, limits the hosts considered
// (CPOP's critical-path pinning); if it excludes every candidate, placement
// retries unrestricted rather than failing the application.
func (p *placement) place(id afg.TaskID, cands []Choice, restrict map[string]bool) error {
	task := p.g.Task(id)
	if task.Mode == afg.Parallel && task.Processors > 1 {
		return p.placeParallel(id, task, cands, restrict)
	}
	var best Choice
	var bestStart float64
	bestFinish := math.Inf(1)
	found := false
	for _, c := range cands {
		if restrict != nil && !restrict[c.Host] {
			continue
		}
		ready := p.readyAt(id, c.Site, []string{c.Host})
		start := p.line(c.Host).earliest(ready, c.Predicted)
		fin := start + c.Predicted
		better := fin < bestFinish
		if fin == bestFinish {
			better = c.Site < best.Site || (c.Site == best.Site && c.Host < best.Host)
		}
		if better {
			best, bestStart, bestFinish, found = c, start, fin, true
		}
	}
	if !found {
		if restrict != nil {
			return p.place(id, cands, nil)
		}
		return fmt.Errorf("%w: %q", ErrNoEligibleHost, id)
	}
	p.commit(id, Assignment{
		Task:      id,
		Site:      best.Site,
		Host:      best.Host,
		Hosts:     []string{best.Host},
		Predicted: best.Predicted,
	}, bestStart, bestFinish)
	return nil
}

// placeParallel handles parallel-mode tasks: within each candidate site,
// take the task.Processors hosts that free up earliest (appending after
// their last reservation — gaps rarely align across a whole machine set),
// charge the slowest member's prediction split n ways, and pick the site
// with the earliest finish.
func (p *placement) placeParallel(id afg.TaskID, task *afg.Task, cands []Choice, restrict map[string]bool) error {
	bySite := map[string][]Choice{}
	var siteNames []string
	for _, c := range cands {
		if restrict != nil && !restrict[c.Host] {
			continue
		}
		if _, ok := bySite[c.Site]; !ok {
			siteNames = append(siteNames, c.Site)
		}
		bySite[c.Site] = append(bySite[c.Site], c)
	}
	if len(bySite) == 0 {
		if restrict != nil {
			return p.placeParallel(id, task, cands, nil)
		}
		return fmt.Errorf("%w: %q", ErrNoEligibleHost, id)
	}
	sort.Strings(siteNames)

	var bestAssign Assignment
	var bestStart float64
	bestFinish := math.Inf(1)
	for _, site := range siteNames {
		group := bySite[site]
		n := task.Processors
		if n > len(group) {
			n = len(group)
		}
		// Earliest-freeing hosts first; host name breaks ties.
		sort.Slice(group, func(i, j int) bool {
			ei, ej := p.line(group[i].Host).end(), p.line(group[j].Host).end()
			if ei != ej {
				return ei < ej
			}
			return group[i].Host < group[j].Host
		})
		chosen := group[:n]
		hosts := make([]string, n)
		var maxPred, free float64
		for i, c := range chosen {
			hosts[i] = c.Host
			if c.Predicted > maxPred {
				maxPred = c.Predicted
			}
			if e := p.line(c.Host).end(); e > free {
				free = e
			}
		}
		pred := maxPred / float64(n)
		start := math.Max(p.readyAt(id, site, hosts), free)
		fin := start + pred
		if fin < bestFinish || (fin == bestFinish && site < bestAssign.Site) {
			bestAssign = Assignment{Task: id, Site: site, Host: hosts[0], Hosts: hosts, Predicted: pred}
			bestStart, bestFinish = start, fin
		}
	}
	p.commit(id, bestAssign, bestStart, bestFinish)
	return nil
}

func (p *placement) commit(id afg.TaskID, a Assignment, start, fin float64) {
	p.table.Set(a)
	p.finish[id] = fin
	for _, h := range effectiveHosts(a) {
		p.line(h).add(start, fin)
	}
}

// reserveLedger records the finished schedule's predicted busy seconds in
// the shared ledger, so concurrent applications in the same batch spread
// around this one. Done once, after the whole schedule succeeds.
func (p *placement) reserveLedger() {
	if p.ledger == nil {
		return
	}
	for _, id := range p.table.Order() {
		a, _ := p.table.Get(id)
		for _, h := range effectiveHosts(a) {
			p.ledger.Reserve(h, a.Predicted)
		}
	}
}

// heftPolicy is the registered "heft" policy.
type heftPolicy struct{}

// Name implements Policy.
func (heftPolicy) Name() string { return "heft" }

// Schedule implements Policy: upward-rank order, insertion-based earliest
// finish placement.
func (heftPolicy) Schedule(ctx context.Context, req *Request) (*AllocationTable, error) {
	g := req.Graph
	if err := g.Validate(); err != nil {
		return nil, err
	}
	cands, err := collectCandidates(g, req)
	if err != nil {
		return nil, err
	}
	cm := averageComm(req.Net, cands)
	rank, err := upwardRanks(g, cands, cm)
	if err != nil {
		return nil, err
	}
	p := newPlacement(g, req.Net, req.Config.Ledger)
	for _, id := range byRankDesc(g.TaskIDs(), rank) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := p.place(id, cands[id], nil); err != nil {
			return nil, err
		}
	}
	p.reserveLedger()
	return p.table, nil
}

// cpopPolicy is the registered "cpop" policy.
type cpopPolicy struct{}

// Name implements Policy.
func (cpopPolicy) Name() string { return "cpop" }

// Schedule implements Policy: priority = rank_u + rank_d; the critical path
// (the chain realising the maximum priority) is pinned to the host
// minimising its total execution; everything else places by earliest
// finish time in ready-set priority order.
func (cpopPolicy) Schedule(ctx context.Context, req *Request) (*AllocationTable, error) {
	g := req.Graph
	if err := g.Validate(); err != nil {
		return nil, err
	}
	cands, err := collectCandidates(g, req)
	if err != nil {
		return nil, err
	}
	cm := averageComm(req.Net, cands)
	up, err := upwardRanks(g, cands, cm)
	if err != nil {
		return nil, err
	}
	down, err := downwardRanks(g, cands, cm)
	if err != nil {
		return nil, err
	}
	prio := make(map[afg.TaskID]float64, g.Len())
	for _, id := range g.TaskIDs() {
		prio[id] = up[id] + down[id]
	}

	cp := criticalPath(g, prio)
	restrict := criticalHost(cands, cp)

	p := newPlacement(g, req.Net, req.Config.Ledger)
	tracker := afg.NewTracker(g)
	for !tracker.AllDone() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		ready := tracker.Ready()
		if len(ready) == 0 {
			return nil, fmt.Errorf("scheduler: ready set empty with %d tasks remaining", tracker.Remaining())
		}
		sort.Slice(ready, func(i, j int) bool {
			pi, pj := prio[ready[i]], prio[ready[j]]
			if pi != pj {
				return pi > pj
			}
			return ready[i] < ready[j]
		})
		id := ready[0]
		var pin map[string]bool
		if cp[id] {
			pin = restrict
		}
		if err := p.place(id, cands[id], pin); err != nil {
			return nil, err
		}
		tracker.Complete(id)
	}
	p.reserveLedger()
	return p.table, nil
}

// criticalPath walks one maximum-priority chain from the highest-priority
// entry task to an exit: at every step the child whose priority is largest
// (the critical child) extends the path.
func criticalPath(g *afg.Graph, prio map[afg.TaskID]float64) map[afg.TaskID]bool {
	var cur afg.TaskID
	best := math.Inf(-1)
	for _, id := range g.Entries() {
		if p := prio[id]; p > best || (p == best && id < cur) {
			cur, best = id, p
		}
	}
	cp := map[afg.TaskID]bool{}
	if best == math.Inf(-1) {
		return cp
	}
	cp[cur] = true
	for {
		children := g.Children(cur)
		if len(children) == 0 {
			return cp
		}
		next := children[0].To
		for _, l := range children[1:] {
			if prio[l.To] > prio[next] || (prio[l.To] == prio[next] && l.To < next) {
				next = l.To
			}
		}
		cur = next
		cp[cur] = true
	}
}

// criticalHost picks the critical-path processor: among hosts offered to
// every critical task, the one minimising the path's summed prediction
// (most-covering, then cheapest, then name, when no host covers them all).
// Returns a restrict set for placement, nil when there are no candidates.
func criticalHost(cands map[afg.TaskID][]Choice, cp map[afg.TaskID]bool) map[string]bool {
	type agg struct {
		sum float64
		cnt int
	}
	per := map[string]*agg{}
	for id := range cp {
		for _, c := range cands[id] {
			a := per[c.Host]
			if a == nil {
				a = &agg{}
				per[c.Host] = a
			}
			a.sum += c.Predicted
			a.cnt++
		}
	}
	var bestHost string
	bestCnt, bestSum := 0, math.Inf(1)
	hosts := make([]string, 0, len(per))
	for h := range per {
		hosts = append(hosts, h)
	}
	sort.Strings(hosts)
	for _, h := range hosts {
		a := per[h]
		if a.cnt > bestCnt || (a.cnt == bestCnt && a.sum < bestSum) {
			bestHost, bestCnt, bestSum = h, a.cnt, a.sum
		}
	}
	if bestHost == "" {
		return nil
	}
	return map[string]bool{bestHost: true}
}
