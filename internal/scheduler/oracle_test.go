package scheduler

// The pre-dense, map-keyed scheduling paths, retained verbatim (renamed)
// as test oracles: the dense-index rewrite of HEFT/CPOP/EFT/ledger must
// produce byte-identical allocation tables against these. Only mechanical
// renames and the removal of the worker fan-out (the oracle gathers
// serially; the merge order was deterministic either way) differ from the
// original implementations.

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/afg"
	"repro/internal/netsim"
)

// oracleCollectCandidates is the original map-keyed collectCandidates.
func oracleCollectCandidates(g *afg.Graph, req *Request) (map[afg.TaskID][]Choice, error) {
	if req.Local == nil {
		return nil, ErrNoSites
	}
	selectors := append([]HostSelector{req.Local},
		nearestSelectors(req.Local, req.Remotes, req.Net, req.Config.K)...)

	perSite := make([]map[afg.TaskID][]Choice, len(selectors))
	for i, sel := range selectors {
		if hc, ok := sel.(HostCoster); ok {
			if m, err := hc.HostCosts(g); err == nil {
				perSite[i] = m
			}
			continue
		}
		if m, err := sel.SelectHosts(g); err == nil {
			cs := make(map[afg.TaskID][]Choice, len(m))
			for id, c := range m {
				cs[id] = []Choice{c}
			}
			perSite[i] = cs
		}
	}

	type named struct {
		name string
		cs   map[afg.TaskID][]Choice
	}
	var sites []named
	for i, sel := range selectors {
		if perSite[i] != nil {
			sites = append(sites, named{sel.SiteName(), perSite[i]})
		}
	}
	if len(sites) == 0 {
		return nil, ErrNoSites
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i].name < sites[j].name })
	out := make(map[afg.TaskID][]Choice, g.Len())
	for _, s := range sites {
		for id, cs := range s.cs {
			out[id] = append(out[id], cs...)
		}
	}
	return out, nil
}

// oracleAverageComm derives the commModel from the candidate map.
func oracleAverageComm(net *netsim.Network, cands map[afg.TaskID][]Choice) commModel {
	if net == nil {
		return commModel{}
	}
	seen := map[string]bool{}
	var names []string
	for _, cs := range cands {
		for _, c := range cs {
			if !seen[c.Site] {
				seen[c.Site] = true
				names = append(names, c.Site)
			}
		}
	}
	if len(names) < 2 {
		return commModel{}
	}
	sort.Strings(names)
	return commFromNames(net, names)
}

// oracleMeanExec is w̄(t) over a map candidate list.
func oracleMeanExec(cs []Choice) float64 {
	if len(cs) == 0 {
		return 0
	}
	var sum float64
	for _, c := range cs {
		sum += c.Predicted
	}
	return sum / float64(len(cs))
}

// oracleUpwardRanks is the original map-keyed rank_u.
func oracleUpwardRanks(g *afg.Graph, cands map[afg.TaskID][]Choice, cm commModel) (map[afg.TaskID]float64, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	rank := make(map[afg.TaskID]float64, len(order))
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		var best float64
		for _, l := range g.Children(id) {
			if v := cm.cost(transferBytes(g, l)) + rank[l.To]; v > best {
				best = v
			}
		}
		rank[id] = oracleMeanExec(cands[id]) + best
	}
	return rank, nil
}

// oracleDownwardRanks is the original map-keyed rank_d.
func oracleDownwardRanks(g *afg.Graph, cands map[afg.TaskID][]Choice, cm commModel) (map[afg.TaskID]float64, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	rank := make(map[afg.TaskID]float64, len(order))
	for _, id := range order {
		var best float64
		for _, l := range g.Parents(id) {
			v := rank[l.From] + oracleMeanExec(cands[l.From]) + cm.cost(transferBytes(g, l))
			if v > best {
				best = v
			}
		}
		rank[id] = best
	}
	return rank, nil
}

// oracleByRankDesc orders ids by descending rank, id ascending on ties.
func oracleByRankDesc(ids []afg.TaskID, rank map[afg.TaskID]float64) []afg.TaskID {
	out := append([]afg.TaskID(nil), ids...)
	sort.Slice(out, func(i, j int) bool {
		ri, rj := rank[out[i]], rank[out[j]]
		if ri != rj {
			return ri > rj
		}
		return out[i] < out[j]
	})
	return out
}

// oracleEarliest is the original linear-scan insertion lookup.
func oracleEarliest(t *timeline, ready, dur float64) float64 {
	start := ready
	for _, s := range t.busy {
		if start+dur <= s.start {
			break
		}
		if s.end > start {
			start = s.end
		}
	}
	return start
}

// oPlacement is the original map-keyed HEFT/CPOP placement state.
type oPlacement struct {
	g      *afg.Graph
	net    *netsim.Network
	ledger *LoadLedger
	lines  map[string]*timeline
	finish map[afg.TaskID]float64
	table  *AllocationTable
}

func newOPlacement(g *afg.Graph, net *netsim.Network, ledger *LoadLedger) *oPlacement {
	return &oPlacement{
		g:      g,
		net:    net,
		ledger: ledger,
		lines:  make(map[string]*timeline),
		finish: make(map[afg.TaskID]float64, g.Len()),
		table:  NewAllocationTable(g.Name),
	}
}

func (p *oPlacement) line(host string) *timeline {
	t, ok := p.lines[host]
	if !ok {
		t = &timeline{}
		if p.ledger != nil {
			if busy := p.ledger.Busy(host); busy > 0 {
				t.busy = append(t.busy, span{0, busy})
			}
		}
		p.lines[host] = t
	}
	return t
}

func (p *oPlacement) readyAt(id afg.TaskID, site string, hosts []string) float64 {
	var ready float64
	for _, l := range p.g.Parents(id) {
		parent, ok := p.table.Get(l.From)
		if !ok {
			continue
		}
		arrive := p.finish[l.From]
		if p.net != nil {
			if bytes := transferBytes(p.g, l); bytes > 0 && !sharesHost(effectiveHosts(parent), hosts) {
				arrive += p.net.TransferTime(parent.Site, site, bytes).Seconds()
			}
		}
		if arrive > ready {
			ready = arrive
		}
	}
	return ready
}

func (p *oPlacement) place(id afg.TaskID, cands []Choice, restrict map[string]bool) error {
	task := p.g.Task(id)
	if task.Mode == afg.Parallel && task.Processors > 1 {
		return p.placeParallel(id, task, cands, restrict)
	}
	var best Choice
	var bestStart float64
	bestFinish := math.Inf(1)
	found := false
	for _, c := range cands {
		if restrict != nil && !restrict[c.Host] {
			continue
		}
		ready := p.readyAt(id, c.Site, []string{c.Host})
		start := oracleEarliest(p.line(c.Host), ready, c.Predicted)
		fin := start + c.Predicted
		better := fin < bestFinish
		if fin == bestFinish {
			better = c.Site < best.Site || (c.Site == best.Site && c.Host < best.Host)
		}
		if better {
			best, bestStart, bestFinish, found = c, start, fin, true
		}
	}
	if !found {
		if restrict != nil {
			return p.place(id, cands, nil)
		}
		return fmt.Errorf("%w: %q", ErrNoEligibleHost, id)
	}
	p.commit(id, Assignment{
		Task:      id,
		Site:      best.Site,
		Host:      best.Host,
		Hosts:     []string{best.Host},
		Predicted: best.Predicted,
	}, bestStart, bestFinish)
	return nil
}

func (p *oPlacement) placeParallel(id afg.TaskID, task *afg.Task, cands []Choice, restrict map[string]bool) error {
	bySite := map[string][]Choice{}
	var siteNames []string
	for _, c := range cands {
		if restrict != nil && !restrict[c.Host] {
			continue
		}
		if _, ok := bySite[c.Site]; !ok {
			siteNames = append(siteNames, c.Site)
		}
		bySite[c.Site] = append(bySite[c.Site], c)
	}
	if len(bySite) == 0 {
		if restrict != nil {
			return p.placeParallel(id, task, cands, nil)
		}
		return fmt.Errorf("%w: %q", ErrNoEligibleHost, id)
	}
	sort.Strings(siteNames)

	var bestAssign Assignment
	var bestStart float64
	bestFinish := math.Inf(1)
	for _, site := range siteNames {
		group := bySite[site]
		n := task.Processors
		if n > len(group) {
			n = len(group)
		}
		sort.Slice(group, func(i, j int) bool {
			ei, ej := p.line(group[i].Host).end(), p.line(group[j].Host).end()
			if ei != ej {
				return ei < ej
			}
			return group[i].Host < group[j].Host
		})
		chosen := group[:n]
		hosts := make([]string, n)
		var maxPred, free float64
		for i, c := range chosen {
			hosts[i] = c.Host
			if c.Predicted > maxPred {
				maxPred = c.Predicted
			}
			if e := p.line(c.Host).end(); e > free {
				free = e
			}
		}
		pred := maxPred / float64(n)
		start := math.Max(p.readyAt(id, site, hosts), free)
		fin := start + pred
		if fin < bestFinish || (fin == bestFinish && site < bestAssign.Site) {
			bestAssign = Assignment{Task: id, Site: site, Host: hosts[0], Hosts: hosts, Predicted: pred}
			bestStart, bestFinish = start, fin
		}
	}
	p.commit(id, bestAssign, bestStart, bestFinish)
	return nil
}

func (p *oPlacement) commit(id afg.TaskID, a Assignment, start, fin float64) {
	p.table.Set(a)
	p.finish[id] = fin
	for _, h := range effectiveHosts(a) {
		p.line(h).add(start, fin)
	}
}

func (p *oPlacement) reserveLedger() {
	if p.ledger == nil {
		return
	}
	for _, id := range p.table.Order() {
		a, _ := p.table.Get(id)
		for _, h := range effectiveHosts(a) {
			p.ledger.Reserve(h, a.Predicted)
		}
	}
}

// oracleHEFT is the original map-keyed heftPolicy.Schedule.
func oracleHEFT(ctx context.Context, req *Request) (*AllocationTable, error) {
	g := req.Graph
	if err := g.Validate(); err != nil {
		return nil, err
	}
	cands, err := oracleCollectCandidates(g, req)
	if err != nil {
		return nil, err
	}
	cm := oracleAverageComm(req.Net, cands)
	rank, err := oracleUpwardRanks(g, cands, cm)
	if err != nil {
		return nil, err
	}
	p := newOPlacement(g, req.Net, req.Config.Ledger)
	for _, id := range oracleByRankDesc(g.TaskIDs(), rank) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := p.place(id, cands[id], nil); err != nil {
			return nil, err
		}
	}
	p.reserveLedger()
	return p.table, nil
}

// oracleCPOP is the original map-keyed cpopPolicy.Schedule.
func oracleCPOP(ctx context.Context, req *Request) (*AllocationTable, error) {
	g := req.Graph
	if err := g.Validate(); err != nil {
		return nil, err
	}
	cands, err := oracleCollectCandidates(g, req)
	if err != nil {
		return nil, err
	}
	cm := oracleAverageComm(req.Net, cands)
	up, err := oracleUpwardRanks(g, cands, cm)
	if err != nil {
		return nil, err
	}
	down, err := oracleDownwardRanks(g, cands, cm)
	if err != nil {
		return nil, err
	}
	prio := make(map[afg.TaskID]float64, g.Len())
	for _, id := range g.TaskIDs() {
		prio[id] = up[id] + down[id]
	}

	cp := oracleCriticalPath(g, prio)
	restrict := oracleCriticalHost(cands, cp)

	p := newOPlacement(g, req.Net, req.Config.Ledger)
	tracker := afg.NewTracker(g)
	for !tracker.AllDone() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		ready := tracker.Ready()
		if len(ready) == 0 {
			return nil, fmt.Errorf("scheduler: ready set empty with %d tasks remaining", tracker.Remaining())
		}
		sort.Slice(ready, func(i, j int) bool {
			pi, pj := prio[ready[i]], prio[ready[j]]
			if pi != pj {
				return pi > pj
			}
			return ready[i] < ready[j]
		})
		id := ready[0]
		var pin map[string]bool
		if cp[id] {
			pin = restrict
		}
		if err := p.place(id, cands[id], pin); err != nil {
			return nil, err
		}
		tracker.Complete(id)
	}
	p.reserveLedger()
	return p.table, nil
}

// oracleCriticalPath walks one maximum-priority chain (original).
func oracleCriticalPath(g *afg.Graph, prio map[afg.TaskID]float64) map[afg.TaskID]bool {
	var cur afg.TaskID
	best := math.Inf(-1)
	for _, id := range g.Entries() {
		if p := prio[id]; p > best || (p == best && id < cur) {
			cur, best = id, p
		}
	}
	cp := map[afg.TaskID]bool{}
	if best == math.Inf(-1) {
		return cp
	}
	cp[cur] = true
	for {
		children := g.Children(cur)
		if len(children) == 0 {
			return cp
		}
		next := children[0].To
		for _, l := range children[1:] {
			if prio[l.To] > prio[next] || (prio[l.To] == prio[next] && l.To < next) {
				next = l.To
			}
		}
		cur = next
		cp[cur] = true
	}
}

// oracleCriticalHost picks the critical-path processor (original), except
// that the critical tasks are visited in sorted order rather than map
// order — per-host sums are order-sensitive float additions, and the
// original's random map iteration made the oracle itself nondeterministic.
// The dense path visits tasks in ascending index (= id) order, so the
// oracle does the same.
func oracleCriticalHost(cands map[afg.TaskID][]Choice, cp map[afg.TaskID]bool) map[string]bool {
	type agg struct {
		sum float64
		cnt int
	}
	cpIDs := make([]afg.TaskID, 0, len(cp))
	for id := range cp {
		cpIDs = append(cpIDs, id)
	}
	sort.Slice(cpIDs, func(i, j int) bool { return cpIDs[i] < cpIDs[j] })
	per := map[string]*agg{}
	for _, id := range cpIDs {
		for _, c := range cands[id] {
			a := per[c.Host]
			if a == nil {
				a = &agg{}
				per[c.Host] = a
			}
			a.sum += c.Predicted
			a.cnt++
		}
	}
	var bestHost string
	bestCnt, bestSum := 0, math.Inf(1)
	hosts := make([]string, 0, len(per))
	for h := range per {
		hosts = append(hosts, h)
	}
	sort.Strings(hosts)
	for _, h := range hosts {
		a := per[h]
		if a.cnt > bestCnt || (a.cnt == bestCnt && a.sum < bestSum) {
			bestHost, bestCnt, bestSum = h, a.cnt, a.sum
		}
	}
	if bestHost == "" {
		return nil
	}
	return map[string]bool{bestHost: true}
}

// oracleSiteRun is the original SiteScheduler engine: map-keyed site
// results, Tracker ready sets re-sorted per step, and (in availability
// mode) a live per-candidate ledger probe.
func oracleSiteRun(s *SiteScheduler, g *afg.Graph) (*AllocationTable, error) {
	if s.Local == nil {
		return nil, ErrNoSites
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}

	selectors := []HostSelector{s.Local}
	selectors = append(selectors, s.nearestRemotes()...)
	if s.AvailabilityAware {
		propagated := make([]HostSelector, len(selectors))
		for i, sel := range selectors {
			if ls, ok := sel.(*LocalSelector); ok {
				c := *ls
				c.AvailabilityAware = true
				if c.Ledger == nil {
					c.Ledger = s.Ledger
				}
				propagated[i] = &c
			} else {
				propagated[i] = sel
			}
		}
		selectors = propagated
	}
	var results []oracleSiteResult
	for _, sel := range selectors {
		if choices, err := sel.SelectHosts(g); err == nil {
			results = append(results, oracleSiteResult{sel.SiteName(), choices})
		}
	}
	if len(results) == 0 {
		return nil, ErrNoSites
	}
	sort.Slice(results, func(i, j int) bool { return results[i].name < results[j].name })

	levels, err := g.Levels()
	if err != nil {
		return nil, err
	}

	if s.AvailabilityAware {
		return oracleAvailabilityAware(s, g, results, levels)
	}

	table := NewAllocationTable(g.Name)
	prio := s.Priority
	if prio == nil {
		prio = ByLevel
	}
	tracker := afg.NewTracker(g)
	for !tracker.AllDone() {
		ready := prio(tracker.Ready(), levels)
		if len(ready) == 0 {
			return nil, fmt.Errorf("scheduler: ready set empty with %d tasks remaining", tracker.Remaining())
		}
		id := ready[0]

		best := Choice{Predicted: math.Inf(1)}
		bestTotal := math.Inf(1)
		found := false
		for _, sr := range results {
			choice, ok := sr.choices[id]
			if !ok {
				continue
			}
			total := choice.Predicted
			if s.TransferAware && !isEntryLike(g, id) {
				total += s.transferCost(g, id, sr.name, table)
			}
			if total < bestTotal || (total == bestTotal && sr.name < best.Site) {
				best, bestTotal, found = choice, total, true
			}
		}
		if !found {
			return nil, fmt.Errorf("%w: %q", ErrNoEligibleHost, id)
		}
		table.Set(Assignment{
			Task:      id,
			Site:      best.Site,
			Host:      best.Host,
			Hosts:     best.Hosts,
			Predicted: best.Predicted,
		})
		tracker.Complete(id)
	}
	return table, nil
}

type oracleSiteResult struct {
	name    string
	choices map[afg.TaskID]Choice
}

// oracleAvailabilityAware is the original EFT walk with live per-candidate
// ledger probes.
func oracleAvailabilityAware(s *SiteScheduler, g *afg.Graph, results []oracleSiteResult, levels map[afg.TaskID]float64) (*AllocationTable, error) {
	table := NewAllocationTable(g.Name)
	prio := s.Priority
	if prio == nil {
		prio = ByLevel
	}
	estFinish := make(map[afg.TaskID]float64, g.Len())
	hostFree := map[string]float64{}
	own := map[string]float64{}
	freeAt := func(h string) float64 {
		f := hostFree[h]
		if s.Ledger != nil {
			if other := s.Ledger.Busy(h) - own[h]; other > f {
				f = other
			}
		}
		return f
	}
	releaseOwn := func() {
		if s.Ledger == nil {
			return
		}
		for h, sec := range own {
			s.Ledger.Release(h, sec)
		}
	}

	tracker := afg.NewTracker(g)
	for !tracker.AllDone() {
		ready := prio(tracker.Ready(), levels)
		if len(ready) == 0 {
			releaseOwn()
			return nil, fmt.Errorf("scheduler: ready set empty with %d tasks remaining", tracker.Remaining())
		}
		id := ready[0]

		var best Choice
		var bestHosts []string
		bestFinish := math.Inf(1)
		found := false
		for _, sr := range results {
			choice, ok := sr.choices[id]
			if !ok {
				continue
			}
			hosts := effectiveHosts(Assignment{Host: choice.Host, Hosts: choice.Hosts})
			start := 0.0
			for _, l := range g.Parents(id) {
				arrive := estFinish[l.From]
				if s.Net != nil {
					if p, ok := table.Get(l.From); ok {
						if bytes := transferBytes(g, l); bytes > 0 && !sharesHost(effectiveHosts(p), hosts) {
							arrive += s.Net.TransferTime(p.Site, sr.name, bytes).Seconds()
						}
					}
				}
				start = math.Max(start, arrive)
			}
			for _, h := range hosts {
				start = math.Max(start, freeAt(h))
			}
			finish := start + choice.Predicted
			if finish < bestFinish || (finish == bestFinish && sr.name < best.Site) {
				best, bestHosts, bestFinish, found = choice, hosts, finish, true
			}
		}
		if !found {
			releaseOwn()
			return nil, fmt.Errorf("%w: %q", ErrNoEligibleHost, id)
		}
		table.Set(Assignment{
			Task:      id,
			Site:      best.Site,
			Host:      best.Host,
			Hosts:     best.Hosts,
			Predicted: best.Predicted,
		})
		estFinish[id] = bestFinish
		for _, h := range bestHosts {
			hostFree[h] = bestFinish
			if s.Ledger != nil {
				s.Ledger.Reserve(h, best.Predicted)
				own[h] += best.Predicted
			}
		}
		tracker.Complete(id)
	}
	return table, nil
}
