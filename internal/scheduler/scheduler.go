// Package scheduler implements the VDCE Application Scheduler (paper §2.2):
// level-priority list scheduling driven by per-(task, resource) performance
// prediction, with the paper's two built-in algorithms — the Host Selection
// Algorithm (Fig 5) run at every site, and the Site Scheduler Algorithm
// (Fig 4) run at the local site — plus the baseline schedulers used by the
// evaluation benchmarks.
package scheduler

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/afg"
	"repro/internal/predict"
	"repro/internal/repository"
)

// Common errors.
var (
	ErrNoEligibleHost = errors.New("scheduler: no eligible host for task")
	ErrNoSites        = errors.New("scheduler: no sites available")
)

// Assignment maps one task to its execution resources.
type Assignment struct {
	Task      afg.TaskID `json:"task"`
	Site      string     `json:"site"`
	Host      string     `json:"host"`            // primary host
	Hosts     []string   `json:"hosts,omitempty"` // all hosts for parallel tasks
	Predicted float64    `json:"predicted"`       // predicted execution seconds
}

// AllocationTable is the scheduler's output: the resource allocation table
// the Site Manager multicasts to the Group Managers involved in execution.
type AllocationTable struct {
	App     string                    `json:"app"`
	Entries map[afg.TaskID]Assignment `json:"entries"`
	order   []afg.TaskID              // assignment order, for inspection
}

// NewAllocationTable returns an empty table for the named application.
func NewAllocationTable(app string) *AllocationTable {
	return &AllocationTable{App: app, Entries: make(map[afg.TaskID]Assignment)}
}

// NewAllocationTableSized is NewAllocationTable with a capacity hint:
// callers that know the task count up front (dense placement, table
// merges) size the map and order slice once instead of growing them
// assignment by assignment.
func NewAllocationTableSized(app string, n int) *AllocationTable {
	return &AllocationTable{
		App:     app,
		Entries: make(map[afg.TaskID]Assignment, n),
		order:   make([]afg.TaskID, 0, n),
	}
}

// Set records an assignment.
//
//vdce:ignore allocflow the allocation table is the published id-keyed artifact (the JSON wire form the Site Manager multicasts); one probe plus an amortized append per placement committed
func (t *AllocationTable) Set(a Assignment) {
	if _, ok := t.Entries[a.Task]; !ok {
		t.order = append(t.order, a.Task)
	}
	t.Entries[a.Task] = a
}

// Get returns the assignment for a task.
//
//vdce:ignore allocflow id-keyed boundary read; hot consumers (Simulate) resolve the table into dense arrays once up front
func (t *AllocationTable) Get(id afg.TaskID) (Assignment, bool) {
	a, ok := t.Entries[id]
	return a, ok
}

// Order returns task ids in assignment order.
//
//vdce:ignore allocflow defensive copy, one allocation per call; callers take it once per table, not per task
func (t *AllocationTable) Order() []afg.TaskID {
	return append([]afg.TaskID(nil), t.order...)
}

// Sites returns the distinct sites used, sorted.
func (t *AllocationTable) Sites() []string {
	seen := map[string]bool{}
	for _, a := range t.Entries {
		seen[a.Site] = true
	}
	out := make([]string, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// PerSite extracts the "related portion of the resource allocation table"
// for one site (§2.3.1: the Site Manager multicasts it to Group Managers).
func (t *AllocationTable) PerSite(site string) []Assignment {
	var out []Assignment
	for _, id := range t.order {
		if a := t.Entries[id]; a.Site == site {
			out = append(out, a)
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Host Selection Algorithm (paper Fig 5)
// ---------------------------------------------------------------------------

// Choice is a host-selection result for one task at one site.
type Choice struct {
	Site      string   `json:"site"`
	Host      string   `json:"host"`
	Hosts     []string `json:"hosts,omitempty"` // parallel-mode machine set
	Predicted float64  `json:"predicted"`
}

// HostSelector is a site-local scheduling service: given an AFG it returns,
// for every task, the best machine within the site and its predicted
// execution time. The Site Scheduler multicasts the AFG and collects these
// (local call in-process; RPC across real sites via internal/site).
type HostSelector interface {
	SiteName() string
	SelectHosts(g *afg.Graph) (map[afg.TaskID]Choice, error)
}

// LocalSelector implements the Host Selection Algorithm against a site
// repository: it retrieves task-specific parameters from the
// task-performance database, resource-specific parameters from the
// resource-performance database, and assigns each task the resource
// minimising Predict(task, R).
type LocalSelector struct {
	Site string
	Repo *repository.Repository

	// Cache optionally memoizes assembled prediction inputs per
	// (task kind, size, host) so repeated walks skip the task- and
	// resource-database lookups. The owner (site.Manager) invalidates a
	// host's entries whenever a monitor update changes its dynamic state.
	// Cached entries hold the raw recorded load; Forecast composes freely
	// with the cache because it is applied at lookup time, never stored.
	Cache *predict.Cache

	// Forecast optionally maps a host's last recorded load to the load
	// value used in predictions (workload forecasting, §2.2.1). nil uses
	// the recorded value directly. Applied per prediction, after any
	// cache lookup, so stateful forecasters always see fresh calls.
	Forecast func(host string, recorded float64) float64

	// AvailabilityAware switches the Fig 5 walk from queued-load bumps to
	// an estimated host-free timeline: each task takes the host(s)
	// minimising earliest finish time (free time + predicted execution),
	// and its finish pushes those hosts' free times out. Off by default —
	// the paper-faithful mode is the ablation baseline.
	AvailabilityAware bool

	// Ledger, when non-nil and AvailabilityAware is set, seeds each
	// walk's host timeline with the cross-application busy seconds other
	// schedules have reserved, so even a single-site batch offers later
	// applications different hosts. Installed by SiteScheduler's
	// availability propagation; reservations themselves are made by the
	// site-level walk, never here.
	Ledger *LoadLedger

	// Priority orders the task queue for the Fig 5 walk; nil uses the
	// paper's level rule (ByLevel). Because each assignment bumps its
	// host's queued load, the walk order decides which tasks get the
	// fastest machines — FIFOPriority here is the level-rule ablation.
	Priority PriorityFunc
}

// HostCoster is an optional HostSelector extension: per-task pure predicted
// execution seconds for EVERY eligible host at the site, not just the
// minimiser SelectHosts reports. The HEFT/CPOP policies use it for their
// rank computations and per-host placement; selectors without it (RPC
// remotes) degrade to the single best offer per site.
type HostCoster interface {
	HostCosts(g *afg.Graph) (map[afg.TaskID][]Choice, error)
}

// SiteName implements HostSelector.
func (s *LocalSelector) SiteName() string { return s.Site }

// SelectHosts implements HostSelector (the paper's Fig 5 loop). The task
// queue is walked in level-priority order and each assignment updates the
// selector's own view of its chosen host(s) — one queued-load unit in the
// paper-faithful mode, an estimated host-free time in availability-aware
// mode — so a wide application does not dog-pile the single best machine.
//
//vdce:ignore allocflow generic HostSelector form, invoked once per (site, schedule): walk state is host-keyed (sites hold few hosts) and the id-keyed output map is the interface contract — selectHostsDense is the allocation-policed twin
func (s *LocalSelector) SelectHosts(g *afg.Graph) (map[afg.TaskID]Choice, error) {
	// Generation snapshot BEFORE the repository read: a monitor update
	// landing between List() and a Store() bumps the generation past the
	// snapshot, so stale inputs are never cached as current.
	var gens map[string]uint64
	if s.Cache != nil {
		gens = s.Cache.Generations()
	}
	resources := s.Repo.Resources.List()
	levels, err := g.Levels()
	if err != nil {
		return nil, err
	}
	prio := s.Priority
	if prio == nil {
		prio = ByLevel
	}
	queued := make(map[string]float64) // paper mode: placed tasks per host
	freeAt := make(map[string]float64) // availability mode: est host-free times
	if s.AvailabilityAware && s.Ledger != nil {
		freeAt = s.Ledger.Snapshot()
	}
	out := make(map[afg.TaskID]Choice, g.Len())
	var buf []scored
	// One host-name slab backs every sequential task's committed host set
	// (schedule output): one allocation per walk instead of one per task.
	slab := make([]string, g.Len())
	for _, id := range prio(g.TaskIDs(), levels) {
		task := g.Task(id)
		var choice Choice
		var finish float64
		choice, finish, buf, slab, err = s.selectFor(task, resources, queued, freeAt, gens, buf, slab)
		if err != nil {
			return nil, fmt.Errorf("task %q at site %s: %w", id, s.Site, err)
		}
		for _, h := range choice.Hosts {
			if s.AvailabilityAware {
				freeAt[h] = finish
			} else {
				queued[h]++
			}
		}
		out[id] = choice
	}
	return out, nil
}

// scored is one candidate of a selectFor evaluation.
type scored struct {
	host string
	pred float64 // predicted execution seconds
	key  float64 // ranking key (finish time in availability mode)
}

// selectFor evaluates Predict(task, R) for every eligible resource and
// returns the minimiser — of the prediction alone in the paper-faithful
// mode, of the earliest finish time (host free time + prediction) in
// availability-aware mode — plus the estimated finish of the choice.
// Parallel tasks select task.Processors machines (the paper's "the host
// selection algorithm is updated to select the number of machines required
// within the site"). buf is a caller-owned scratch slice and slab a
// caller-owned host-name arena for the committed sets, both returned
// (maybe consumed or grown) for reuse across the walk: the steady-state
// sequential walk step allocates nothing at all.
func (s *LocalSelector) selectFor(task *afg.Task, resources []repository.ResourceRecord, queued, freeAt map[string]float64, gens map[string]uint64, buf []scored, slab []string) (Choice, float64, []scored, []string, error) {
	cands := buf[:0]
	for _, r := range resources {
		if !s.eligible(task, r) {
			continue
		}
		host := r.Static.HostName
		//vdce:ignore allocflow queued and freeAt are host-keyed walk state (a site's hosts are few); the probes allocate nothing
		pred := s.predictOn(task, r, queued[host], gens)
		key := pred
		if s.AvailabilityAware {
			//vdce:ignore allocflow host-keyed walk state, one probe per candidate
			key = freeAt[host] + pred
		}
		//vdce:ignore allocflow cands reuses the caller-owned scratch buf: growth amortizes across the walk and the steady state appends in place
		cands = append(cands, scored{host, pred, key})
	}
	if len(cands) == 0 {
		return Choice{}, 0, cands, slab, ErrNoEligibleHost
	}
	n := task.Processors
	if task.Mode != afg.Parallel {
		n = 1
	}
	if n > len(cands) {
		n = len(cands)
	}
	// Partial selection by (key, host): only the n winners matter, so each
	// of the n rounds swaps the minimum of the remainder into place —
	// O(n·C) against the former full insertion sort's O(C²), and n is 1
	// for every sequential task. The (key, host) pair is a strict total
	// order (host names are unique), so the selected prefix and its order
	// are identical to any comparison sort of the whole candidate list.
	for i := 0; i < n; i++ {
		m := i
		for j := i + 1; j < len(cands); j++ {
			if cands[j].key < cands[m].key || (cands[j].key == cands[m].key && cands[j].host < cands[m].host) {
				m = j
			}
		}
		cands[i], cands[m] = cands[m], cands[i]
	}
	var hosts []string
	if n == 1 && len(slab) > 0 {
		// Carve the single-host set from the caller's slab: full-capacity
		// reslice, so the committed set can never grow into its neighbour.
		hosts = slab[:1:1]
		slab = slab[1:]
	} else {
		//vdce:ignore allocflow parallel machine sets (and a drained slab) are the rare path; the set is schedule output escaping inside the Choice
		hosts = make([]string, n)
	}
	var maxPred, start float64
	for i := 0; i < n; i++ {
		hosts[i] = cands[i].host
		if cands[i].pred > maxPred {
			maxPred = cands[i].pred
		}
		//vdce:ignore allocflow host-keyed walk state, one probe per selected host
		if f := freeAt[cands[i].host]; f > start {
			start = f
		}
	}
	// Parallel-mode prediction: the slowest selected machine bounds each
	// share; an ideal row split divides the work n ways.
	pred := maxPred / float64(n)
	return Choice{Site: s.Site, Host: hosts[0], Hosts: hosts, Predicted: pred}, start + pred, cands, slab, nil
}

// eligible applies the Fig 5 resource filters: the host is up, matches the
// task's machine-type preference, and passes the constraint database.
func (s *LocalSelector) eligible(task *afg.Task, r repository.ResourceRecord) bool {
	if r.Dynamic.Down {
		return false
	}
	if task.MachineType != "" && r.Static.Arch != task.MachineType {
		return false
	}
	//vdce:ignore allocflow the constraint database is name-keyed by contract (the paper's cut-through checks); one probe per candidate, no allocation
	return s.Repo.Constraints.CanRun(task.Function, r.Static.HostName)
}

// HostCosts implements HostCoster: for every task, the pure predicted
// execution seconds on every eligible host at this site, sorted by host
// name. Unlike SelectHosts it models no queueing — no queued-load bumps, no
// free-time timeline — because the caller (HEFT/CPOP placement) prices
// contention itself; the Forecast hook and prediction cache apply as usual.
//
//vdce:ignore allocflow map-keyed HostCoster compatibility form (the RPC selector contract), once per (site, schedule); the local hot path is denseHostCosts's contiguous slab
func (s *LocalSelector) HostCosts(g *afg.Graph) (map[afg.TaskID][]Choice, error) {
	var gens map[string]uint64
	if s.Cache != nil {
		gens = s.Cache.Generations()
	}
	resources := s.Repo.Resources.List()
	out := make(map[afg.TaskID][]Choice, g.Len())
	for _, id := range g.TaskIDs() {
		task := g.Task(id)
		var choices []Choice
		for _, r := range resources {
			if !s.eligible(task, r) {
				continue
			}
			choices = append(choices, Choice{
				Site:      s.Site,
				Host:      r.Static.HostName,
				Predicted: s.predictOn(task, r, 0, gens),
			})
		}
		if len(choices) == 0 {
			return nil, fmt.Errorf("task %q at site %s: %w", id, s.Site, ErrNoEligibleHost)
		}
		sort.Slice(choices, func(i, j int) bool { return choices[i].Host < choices[j].Host })
		out[id] = choices
	}
	return out, nil
}

// denseHostCosts implements denseCoster: the batched form of HostCosts.
// One pass over (task × resource) fills a contiguous prediction slab —
// columns are the site's hosts ascending by name (the repository's List
// order), NaN marks ineligible pairs — with no per-task map or slice
// allocation. A task no host can run fails the whole site, exactly like
// HostCosts.
func (s *LocalSelector) denseHostCosts(ix *afg.Index) ([]string, []float64, error) {
	var gens map[string]uint64
	if s.Cache != nil {
		gens = s.Cache.Generations()
	}
	//vdce:ignore allocflow resource-list snapshot, one repository read per site walk
	resources := s.Repo.Resources.List() // sorted by host name
	hosts := make([]string, len(resources))
	for k, r := range resources {
		hosts[k] = r.Static.HostName
	}
	v := ix.Len()
	pred := make([]float64, v*len(resources))
	for t := 0; t < v; t++ {
		task := ix.Task(t)
		row := pred[t*len(resources) : (t+1)*len(resources)]
		eligible := 0
		for k, r := range resources {
			if !s.eligible(task, r) {
				row[k] = math.NaN()
				continue
			}
			row[k] = s.predictOn(task, r, 0, gens)
			eligible++
		}
		if eligible == 0 {
			//vdce:ignore allocflow cold failure path: the error aborts the whole site walk
			return nil, nil, fmt.Errorf("task %q at site %s: %w", ix.ID(t), s.Site, ErrNoEligibleHost)
		}
	}
	return hosts, pred, nil
}

// selectHostsDense is the slice-indexed form of SelectHosts: the same
// Fig 5 walk, but the priority order comes from dense levels sorted by
// integer index and the result is addressed by dense task index — no
// level map, no id sort, no output map. A selector carrying its own
// Priority rule falls back to the generic walk.
func (s *LocalSelector) selectHostsDense(g *afg.Graph) ([]Choice, error) {
	ix, err := g.Index()
	if err != nil {
		return nil, err
	}
	if s.Priority != nil {
		m, err := s.SelectHosts(g)
		if err != nil {
			return nil, err
		}
		return denseChoices(ix, m), nil
	}
	var gens map[string]uint64
	if s.Cache != nil {
		gens = s.Cache.Generations()
	}
	resources := s.Repo.Resources.List()
	queued := make(map[string]float64)
	freeAt := make(map[string]float64)
	if s.AvailabilityAware && s.Ledger != nil {
		freeAt = s.Ledger.Snapshot()
	}
	sc := getScratch()
	defer sc.release()
	out := make([]Choice, ix.Len()) // schedule output
	sc.order = rankOrderDesc(ix.Levels(), sc.order)
	// One host-name slab backs every sequential task's committed host set
	// (schedule output): one allocation per walk instead of one per task.
	slab := make([]string, ix.Len())
	buf := sc.scored
	for _, t := range sc.order {
		task := ix.Task(int(t))
		var choice Choice
		var finish float64
		choice, finish, buf, slab, err = s.selectFor(task, resources, queued, freeAt, gens, buf, slab)
		if err != nil {
			sc.scored = buf
			return nil, fmt.Errorf("task %q at site %s: %w", ix.ID(int(t)), s.Site, err)
		}
		for _, h := range choice.Hosts {
			if s.AvailabilityAware {
				freeAt[h] = finish
			} else {
				queued[h]++
			}
		}
		out[t] = choice
	}
	sc.scored = buf
	return out, nil
}

// predictOn evaluates the prediction function for one task on one resource;
// queuedLoad is the load contribution of tasks this selector already placed
// on the resource during the current SelectHosts walk. gens is the cache
// generation snapshot taken at walk start (nil when caching is off). The
// cache stores raw recorded loads; Forecast is applied here, per call, so
// memoized entries never bake in a store-time forecast value.
func (s *LocalSelector) predictOn(task *afg.Task, r repository.ResourceRecord, queuedLoad float64, gens map[string]uint64) float64 {
	var in predict.Inputs
	if s.Cache == nil {
		//vdce:ignore allocflow cache-off compatibility mode pays the repository probes per prediction by design; production walks install a Cache
		in = s.assembleInputs(task, r)
	} else {
		key := predict.CacheKey{
			Kind:     task.Function,
			Cost:     task.ComputeCost,
			MemReq:   task.MemReq,
			Resource: r.Static.HostName,
		}
		var ok bool
		//vdce:ignore allocflow the prediction cache is the amortizing boundary: a hit is one struct-keyed probe and no allocation
		in, ok = s.Cache.Lookup(key)
		//vdce:ignore allocflow the miss path assembles and stores once per (task kind, host, generation); every later prediction on the pair hits the cache
		if !ok {
			in = s.assembleInputs(task, r)
			s.Cache.Store(key, in, gens[key.Resource])
		}
	}
	if s.Forecast != nil {
		in.CPULoad = s.Forecast(r.Static.HostName, in.CPULoad)
	}
	in.CPULoad += queuedLoad
	return predict.Seconds(in)
}

// assembleInputs gathers the prediction parameters for one (task, resource)
// pair from the task- and resource-performance databases — the per-pair
// repository work the prediction cache memoizes. The queued-load and
// Forecast terms are deliberately excluded: both are per-evaluation state,
// applied by predictOn after any cache lookup.
func (s *LocalSelector) assembleInputs(task *afg.Task, r repository.ResourceRecord) predict.Inputs {
	base := task.ComputeCost
	memReq := task.MemReq
	weight, haveWeight := s.Repo.Tasks.Weight(task.Function, r.Static.HostName)
	if rec, err := s.Repo.Tasks.Get(task.Function); err == nil {
		if base <= 0 {
			base = rec.BaseTime
		}
		if memReq <= 0 {
			memReq = rec.MemReq
		}
	}
	if base <= 0 {
		base = 1e-6 // unknown task: negligible but positive cost
	}
	if !haveWeight {
		weight = predict.WeightFromSpeed(r.Static.SpeedFactor)
	}
	return predict.Inputs{
		BaseTime: base,
		Weight:   weight,
		MemReq:   memReq,
		MemAvail: r.Dynamic.AvailableMemory,
		CPULoad:  r.Dynamic.Load, // raw recorded load; Forecast applies at lookup
	}
}

// ---------------------------------------------------------------------------
// Priorities
// ---------------------------------------------------------------------------

// ByLevel sorts ready task ids by descending level (the paper's priority:
// "the node with a higher level value will have a higher priority"), with
// id as the deterministic tie-break.
func ByLevel(ids []afg.TaskID, levels map[afg.TaskID]float64) []afg.TaskID {
	out := append([]afg.TaskID(nil), ids...)
	sort.Slice(out, func(i, j int) bool {
		li, lj := levels[out[i]], levels[out[j]]
		if li != lj {
			return li > lj
		}
		return out[i] < out[j]
	})
	return out
}
