package scheduler

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/afg"
)

func benchGraph(n int) *afg.Graph {
	g := afg.New("bench")
	var prev afg.TaskID
	for i := 0; i < n; i++ {
		id := afg.TaskID(fmt.Sprintf("t%04d", i))
		g.AddTask(&afg.Task{ID: id, Function: "f", ComputeCost: 1 + float64(i%7), OutputBytes: 1 << 12})
		if i > 0 && i%3 != 0 {
			g.AddLink(afg.Link{From: prev, To: id, Bytes: 1 << 12})
		}
		prev = id
	}
	return g
}

func BenchmarkHostSelection64Tasks16Hosts(b *testing.B) {
	hosts := map[string][2]float64{}
	for i := 0; i < 16; i++ {
		hosts[fmt.Sprintf("h%02d", i)] = [2]float64{1 + float64(i%5), float64(i % 3)}
	}
	repo := makeRepo(b, "syr", hosts)
	sel := &LocalSelector{Site: "syr", Repo: repo}
	g := benchGraph(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sel.SelectHosts(g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSiteSchedule64Tasks2Sites(b *testing.B) {
	s, _, _, _ := twoSiteSetup(b, 10*time.Millisecond)
	g := benchGraph(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Schedule(g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulate64Tasks(b *testing.B) {
	s, _, _, net := twoSiteSetup(b, 10*time.Millisecond)
	g := benchGraph(64)
	table, err := s.Schedule(g)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(g, table, unitModel, net); err != nil {
			b.Fatal(err)
		}
	}
}
