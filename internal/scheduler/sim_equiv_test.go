package scheduler

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/afg"
	"repro/internal/netsim"
	"repro/internal/workload"
)

// referenceSimulate is the pre-incremental simulator — the full ready-set
// rebuild per committed task, O(V²·log V) — kept as the oracle for the
// equivalence tests and the speedup benchmark. Semantics match Simulate
// exactly (including the full-host-set transfer comparison); only the
// algorithm differs.
func referenceSimulate(g *afg.Graph, table *AllocationTable, model TimeModel, net *netsim.Network) (float64, error) {
	if err := g.Validate(); err != nil {
		return 0, err
	}
	order, err := g.TopoOrder()
	if err != nil {
		return 0, err
	}
	hostFree := map[string]float64{}
	finish := map[afg.TaskID]float64{}
	pending := map[afg.TaskID]bool{}
	for _, id := range order {
		pending[id] = true
	}
	ready := func(id afg.TaskID) bool {
		for _, l := range g.Parents(id) {
			if _, ok := finish[l.From]; !ok {
				return false
			}
		}
		return true
	}
	startTime := func(id afg.TaskID) (float64, error) {
		a, ok := table.Get(id)
		if !ok {
			return 0, fmt.Errorf("scheduler: task %q missing from allocation table", id)
		}
		var earliest float64
		for _, l := range g.Parents(id) {
			p, _ := table.Get(l.From)
			arrive := finish[l.From]
			if net != nil && !sharesHost(effectiveHosts(p), effectiveHosts(a)) {
				arrive += net.TransferTime(p.Site, a.Site, transferBytes(g, l)).Seconds()
			}
			earliest = math.Max(earliest, arrive)
		}
		for _, h := range effectiveHosts(a) {
			earliest = math.Max(earliest, hostFree[h])
		}
		return earliest, nil
	}
	var makespan float64
	for len(pending) > 0 {
		var q refPq
		heap.Init(&q)
		for _, id := range order {
			if pending[id] && ready(id) {
				st, err := startTime(id)
				if err != nil {
					return 0, err
				}
				heap.Push(&q, refItem{id: id, start: st})
			}
		}
		if q.Len() == 0 {
			return 0, fmt.Errorf("scheduler: simulation deadlock with %d tasks pending", len(pending))
		}
		it := heap.Pop(&q).(refItem)
		a, _ := table.Get(it.id)
		dur := model(g.Task(it.id), a.Host)
		hosts := effectiveHosts(a)
		if len(hosts) > 1 {
			dur /= float64(len(hosts))
		}
		end := it.start + dur
		for _, h := range hosts {
			hostFree[h] = end
		}
		finish[it.id] = end
		delete(pending, it.id)
		makespan = math.Max(makespan, end)
	}
	return makespan, nil
}

// refPq is the reference simulator's id-keyed candidate heap (the live
// simulator's pq is dense-indexed; the oracle stays map/string-keyed).
type refItem struct {
	id    afg.TaskID
	start float64
}

type refPq []refItem

func (q refPq) Len() int { return len(q) }
func (q refPq) Less(i, j int) bool {
	if q[i].start != q[j].start {
		return q[i].start < q[j].start
	}
	return q[i].id < q[j].id
}
func (q refPq) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *refPq) Push(x any)   { *q = append(*q, x.(refItem)) }
func (q *refPq) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// randomTable assigns every task of g to a random host in a small
// multi-site pool; a fraction of tasks get multi-host (parallel-style)
// assignments so the host-set paths are exercised.
func randomTable(g *afg.Graph, sites, hostsPerSite int, rng *rand.Rand) *AllocationTable {
	table := NewAllocationTable(g.Name)
	host := func(s, h int) string { return fmt.Sprintf("s%02d-h%02d", s, h) }
	for _, id := range g.TaskIDs() {
		s := rng.Intn(sites)
		h := rng.Intn(hostsPerSite)
		a := Assignment{
			Task: id, Site: fmt.Sprintf("s%02d", s), Host: host(s, h),
			Predicted: 1,
		}
		if rng.Intn(4) == 0 { // multi-host task
			n := 2 + rng.Intn(2)
			seen := map[int]bool{h: true}
			a.Hosts = []string{a.Host}
			for len(a.Hosts) < n && len(seen) < hostsPerSite {
				k := rng.Intn(hostsPerSite)
				if !seen[k] {
					seen[k] = true
					a.Hosts = append(a.Hosts, host(s, k))
				}
			}
		}
		table.Set(a)
	}
	return table
}

func equivNet() *netsim.Network {
	net := netsim.New(netsim.DefaultLAN, 1)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			net.Connect(fmt.Sprintf("s%02d", i), fmt.Sprintf("s%02d", j), netsim.PathSpec{
				Latency:   time.Duration(1+i+j) * time.Millisecond,
				Bandwidth: 1e6,
			})
		}
	}
	return net
}

// TestSimulateMatchesReference replays randomized workload.Scale graphs
// under randomized (multi-host, multi-site) allocation tables through the
// incremental simulator and the quadratic reference; makespans must be
// identical, not merely close — both compute the same maxima and sums.
func TestSimulateMatchesReference(t *testing.T) {
	net := equivNet()
	model := func(task *afg.Task, host string) float64 {
		return task.ComputeCost * (1 + float64(len(host)%3)*0.25)
	}
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed * 977))
		tasks := 40 + rng.Intn(160)
		width := 1 + rng.Intn(12)
		g := workload.Scale(tasks, width, 6, seed)
		table := randomTable(g, 4, 6, rng)
		want, err := referenceSimulate(g, table, model, net)
		if err != nil {
			t.Fatalf("seed %d: reference: %v", seed, err)
		}
		got, err := Simulate(g, table, model, net)
		if err != nil {
			t.Fatalf("seed %d: incremental: %v", seed, err)
		}
		if got != want {
			t.Fatalf("seed %d (%d tasks, width %d): incremental makespan %v != reference %v",
				seed, tasks, width, got, want)
		}
	}
}

// TestSimulateMatchesReferenceScheduledTables repeats the equivalence check
// on tables produced by the real Site Scheduler rather than random ones.
func TestSimulateMatchesReferenceScheduledTables(t *testing.T) {
	s, _, _, net := twoSiteSetup(t, 10*time.Millisecond)
	for seed := int64(1); seed <= 4; seed++ {
		g := workload.Scale(120, 8, 5, seed)
		table, err := s.Schedule(g)
		if err != nil {
			t.Fatal(err)
		}
		want, err := referenceSimulate(g, table, unitModel, net)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Simulate(g, table, unitModel, net)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("seed %d: incremental %v != reference %v", seed, got, want)
		}
	}
}

// TestSimulateCoHostedParallelLinkIsFree pins the parallel-task transfer
// fix: a link whose endpoints share ANY host — not just the primary —
// moves no data, so a child landing on its parallel parent's secondary
// host pays no WAN time even across a glacial link.
func TestSimulateCoHostedParallelLinkIsFree(t *testing.T) {
	net := netsim.New(netsim.DefaultLAN, 1)
	net.Connect("syr", "rome", netsim.PathSpec{Latency: 100 * time.Second, Bandwidth: 1e3})
	g := afg.New("par")
	g.AddTask(&afg.Task{ID: "p", Function: "f", ComputeCost: 2, Mode: afg.Parallel, Processors: 2, OutputBytes: 1 << 20})
	g.AddTask(&afg.Task{ID: "c", Function: "f", ComputeCost: 1})
	g.AddLink(afg.Link{From: "p", To: "c", Bytes: 1 << 20})
	table := NewAllocationTable("par")
	table.Set(Assignment{Task: "p", Site: "syr", Host: "h1", Hosts: []string{"h1", "h2"}})
	table.Set(Assignment{Task: "c", Site: "rome", Host: "h2"})
	mk, err := Simulate(g, table, unitModel, net)
	if err != nil {
		t.Fatal(err)
	}
	// p runs 2/2 hosts = 1 s; c shares h2 with p, so no transfer: 1 + 1.
	if mk != 2 {
		t.Fatalf("co-hosted link charged transfer: makespan = %v, want 2", mk)
	}
	if v := CommVolume(g, table, net); v != 0 {
		t.Fatalf("CommVolume charged a co-hosted link: %v", v)
	}
	// Control: move the child off the shared hosts and the WAN bites.
	table.Set(Assignment{Task: "c", Site: "rome", Host: "h3"})
	mk, err = Simulate(g, table, unitModel, net)
	if err != nil {
		t.Fatal(err)
	}
	if mk < 100 {
		t.Fatalf("disjoint-host link not charged: makespan = %v", mk)
	}
	if v := CommVolume(g, table, net); v <= 0 {
		t.Fatalf("CommVolume missed a disjoint-host link: %v", v)
	}
}

func simBenchSetup(b *testing.B) (*afg.Graph, *AllocationTable, *netsim.Network) {
	b.Helper()
	g := workload.Scale(1000, 25, 12, 42)
	rng := rand.New(rand.NewSource(42))
	return g, randomTable(g, 4, 8, rng), equivNet()
}

// BenchmarkSimulate1000Tasks measures the incremental simulator on the
// scale experiment's graph shape; compare against the Reference variant
// below for the O(V²·log V) → O((V+E)·log V) effect.
func BenchmarkSimulate1000Tasks(b *testing.B) {
	g, table, net := simBenchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(g, table, unitModel, net); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulateReference1000Tasks is the pre-rewrite algorithm on the
// identical input — the baseline the ≥5× claim is measured against.
func BenchmarkSimulateReference1000Tasks(b *testing.B) {
	g, table, net := simBenchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := referenceSimulate(g, table, unitModel, net); err != nil {
			b.Fatal(err)
		}
	}
}
