//vdce:ignore-file floateq validator equivalence file: the independent audit must reproduce simulator makespans bit for bit
package scheduler

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/afg"
	"repro/internal/dagen"
	"repro/internal/netsim"
	"repro/internal/repository"
)

// dagenEnv builds a two-site environment whose host speeds come from the
// generator's heterogeneity knob β, so the validator property tests sweep
// the same axis the RANKING experiment does.
func dagenEnv(t testing.TB, beta float64, seed int64) (Request, map[string]*repository.Repository, *netsim.Network) {
	t.Helper()
	const hostsPerSite = 3
	repos := map[string]*repository.Repository{}
	siteNames := []string{"east", "west"}
	for si, name := range siteNames {
		speeds := dagen.SpeedFactors(hostsPerSite, beta, seed+int64(si)*31)
		hosts := map[string][2]float64{}
		for hi, sp := range speeds {
			hosts[fmt.Sprintf("%s-%d", name, hi)] = [2]float64{sp, 0}
		}
		repos[name] = makeRepo(t, name, hosts)
	}
	net := netsim.StarTopology(siteNames, 5*time.Millisecond, 1e7, 1)
	local := &LocalSelector{Site: "east", Repo: repos["east"]}
	remotes := []HostSelector{&LocalSelector{Site: "west", Repo: repos["west"]}}
	env := Request{Local: local, Remotes: remotes, Net: net, Sites: repos,
		Config: NewConfig(WithSeed(seed))}
	return env, repos, net
}

func TestValidateScheduleAcceptsFaithfulSchedule(t *testing.T) {
	env, repos, net := dagenEnv(t, 1, 1)
	g := dagen.Random(dagen.Params{Tasks: 25, CCR: 1, Seed: 3})
	p, err := Lookup("faithful")
	if err != nil {
		t.Fatal(err)
	}
	table, err := Bind(p, env).Schedule(g)
	if err != nil {
		t.Fatal(err)
	}
	audit, err := ValidateSchedule(g, table, heftTruth(repos), net)
	if err != nil {
		t.Fatal(err)
	}
	if len(audit.Spans) != g.Len() {
		t.Fatalf("spans = %d, want %d", len(audit.Spans), g.Len())
	}
	if audit.Makespan <= 0 {
		t.Fatalf("makespan = %v", audit.Makespan)
	}
	if _, ok := audit.Span(g.TaskIDs()[0]); !ok {
		t.Fatal("Span lookup failed")
	}
}

func TestValidateScheduleRejectsMalformedTables(t *testing.T) {
	env, repos, net := dagenEnv(t, 1, 1)
	g := dagen.Random(dagen.Params{Tasks: 10, CCR: 1, Seed: 5})
	p, _ := Lookup("faithful")
	table, err := Bind(p, env).Schedule(g)
	if err != nil {
		t.Fatal(err)
	}
	truth := heftTruth(repos)

	if _, err := ValidateSchedule(g, nil, truth, net); err == nil {
		t.Fatal("nil table accepted")
	}
	if _, err := ValidateSchedule(afg.New("empty"), table, truth, net); !errors.Is(err, afg.ErrEmpty) {
		t.Fatalf("empty graph: %v", err)
	}

	// A missing task.
	incomplete := NewAllocationTable(g.Name)
	for i, id := range table.Order() {
		if i == 3 {
			continue
		}
		a, _ := table.Get(id)
		incomplete.Set(a)
	}
	if _, err := ValidateSchedule(g, incomplete, truth, net); err == nil {
		t.Fatal("missing task accepted")
	}

	// An assignment for a task the graph does not know.
	stray := NewAllocationTable(g.Name)
	for _, id := range table.Order() {
		a, _ := table.Get(id)
		stray.Set(a)
	}
	stray.Set(Assignment{Task: "ghost", Site: "east", Host: "east-0"})
	if _, err := ValidateSchedule(g, stray, truth, net); err == nil {
		t.Fatal("stray assignment accepted")
	}

	// An empty host.
	hostless := NewAllocationTable(g.Name)
	for _, id := range table.Order() {
		a, _ := table.Get(id)
		hostless.Set(a)
	}
	bad, _ := hostless.Get(table.Order()[0])
	bad.Host, bad.Hosts = "", nil
	hostless.Set(bad)
	if _, err := ValidateSchedule(g, hostless, truth, net); err == nil {
		t.Fatal("empty host accepted")
	}

	// A primary host outside the parallel host set.
	split := NewAllocationTable(g.Name)
	for _, id := range table.Order() {
		a, _ := table.Get(id)
		split.Set(a)
	}
	bad, _ = split.Get(table.Order()[1])
	bad.Hosts = []string{"west-0", "west-1"}
	bad.Host = "east-0"
	split.Set(bad)
	if _, err := ValidateSchedule(g, split, truth, net); err == nil {
		t.Fatal("primary host outside host set accepted")
	}
}

// The invariant checkers must catch corrupted realized schedules — they are
// what makes the validator an oracle rather than a replay.
func TestValidateCheckersCatchViolations(t *testing.T) {
	g := afg.New("pair")
	g.AddTask(&afg.Task{ID: "a", Function: "f", ComputeCost: 1, OutputBytes: 1 << 20})
	g.AddTask(&afg.Task{ID: "b", Function: "f", ComputeCost: 1})
	g.AddLink(afg.Link{From: "a", To: "b"})
	table := NewAllocationTable("pair")
	table.Set(Assignment{Task: "a", Site: "east", Host: "h0", Hosts: []string{"h0"}})
	table.Set(Assignment{Task: "b", Site: "west", Host: "h1", Hosts: []string{"h1"}})
	net := netsim.StarTopology([]string{"east", "west"}, 10*time.Millisecond, 1e6, 1)

	// Child starting before the parent's finish + WAN transfer.
	bad := &ScheduleAudit{Spans: []ScheduledSpan{
		{Task: "a", Site: "east", Hosts: []string{"h0"}, Start: 0, End: 1},
		{Task: "b", Site: "west", Hosts: []string{"h1"}, Start: 1, End: 2}, // transfer ignored
	}}
	if err := checkPrecedence(g, net, bad); err == nil {
		t.Fatal("transfer-blind schedule accepted")
	}
	// Same instant, same host: double-booked.
	overlap := &ScheduleAudit{Spans: []ScheduledSpan{
		{Task: "a", Hosts: []string{"h0"}, Start: 0, End: 2},
		{Task: "b", Hosts: []string{"h0"}, Start: 1, End: 3},
	}}
	if err := checkHostExclusive(overlap); err == nil {
		t.Fatal("double-booked host accepted")
	}
	// The honest replay of the same table passes both checkers.
	audit, err := ValidateSchedule(g, table, func(task *afg.Task, host string) float64 {
		return task.ComputeCost
	}, net)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 + net.TransferTime("east", "west", 1<<20).Seconds() + 1
	if audit.Makespan != want {
		t.Fatalf("makespan = %v, want %v", audit.Makespan, want)
	}
}

// The property the evaluation stands on: every registered policy, across a
// ~50-graph dagen grid spanning size × CCR × shape × heterogeneity (with a
// sprinkling of parallel-mode tasks), yields a table that passes the
// independent validator, and the validator's makespan equals Simulate's bit
// for bit — two implementations of the execution semantics agreeing.
func TestEveryPolicyPassesValidatorOnDagenGrid(t *testing.T) {
	// Registry tests register erroring "test-" stubs in this binary; the
	// property quantifies over the real policies.
	var names []string
	for _, n := range Policies() {
		if !strings.HasPrefix(n, "test-") {
			names = append(names, n)
		}
	}
	if len(names) < 9 {
		t.Fatalf("only %d policies registered: %v", len(names), names)
	}
	graphs := 0
	for _, beta := range []float64{0.25, 1.25} {
		env, repos, net := dagenEnv(t, beta, 17)
		truth := heftTruth(repos)
		for _, tasks := range []int{8, 20, 40} {
			for _, ccr := range []float64{0.1, 1, 5} {
				for _, alpha := range []float64{0.5, 2} {
					seed := int64(graphs)
					g := dagen.Random(dagen.Params{
						Tasks: tasks, CCR: ccr, Alpha: alpha, OutDegree: 3,
						Beta: beta, Seed: seed,
					})
					if graphs%7 == 3 { // exercise the parallel placement paths
						id := g.TaskIDs()[tasks/2]
						g.Task(id).Mode = afg.Parallel
						g.Task(id).Processors = 2
					}
					graphs++
					for _, name := range names {
						p, err := Lookup(name)
						if err != nil {
							t.Fatal(err)
						}
						items := (&Batch{Scheduler: Bind(p, env), Workers: 1}).Schedule([]*afg.Graph{g})
						if items[0].Err != nil {
							t.Fatalf("%s on v=%d ccr=%g α=%g β=%g: %v", name, tasks, ccr, alpha, beta, items[0].Err)
						}
						table := items[0].Table
						audit, err := ValidateSchedule(g, table, truth, net)
						if err != nil {
							t.Fatalf("%s on v=%d ccr=%g α=%g β=%g: validator: %v", name, tasks, ccr, alpha, beta, err)
						}
						mk, err := Simulate(g, table, truth, net)
						if err != nil {
							t.Fatalf("%s: simulate: %v", name, err)
						}
						if audit.Makespan != mk {
							t.Fatalf("%s on v=%d ccr=%g α=%g β=%g: validator makespan %v != simulator %v",
								name, tasks, ccr, alpha, beta, audit.Makespan, mk)
						}
					}
				}
			}
		}
	}
	if graphs < 36 {
		t.Fatalf("grid shrank to %d graphs", graphs)
	}
}

// The structured application graphs go through the same gauntlet: every
// policy's schedule of the Gaussian-elimination and FFT task graphs passes
// the validator and agrees with the simulator.
func TestEveryPolicyPassesValidatorOnStructuredGraphs(t *testing.T) {
	ge, err := dagen.GaussianElimination(6, dagen.Params{CCR: 1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	fft, err := dagen.FFT(8, dagen.Params{CCR: 0.5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	env, repos, net := dagenEnv(t, 1, 23)
	truth := heftTruth(repos)
	for _, g := range []*afg.Graph{ge, fft} {
		for _, name := range Policies() {
			if strings.HasPrefix(name, "test-") {
				continue
			}
			p, err := Lookup(name)
			if err != nil {
				t.Fatal(err)
			}
			items := (&Batch{Scheduler: Bind(p, env), Workers: 1}).Schedule([]*afg.Graph{g})
			if items[0].Err != nil {
				t.Fatalf("%s on %s: %v", name, g.Name, items[0].Err)
			}
			audit, err := ValidateSchedule(g, items[0].Table, truth, net)
			if err != nil {
				t.Fatalf("%s on %s: validator: %v", name, g.Name, err)
			}
			mk, err := Simulate(g, items[0].Table, truth, net)
			if err != nil {
				t.Fatalf("%s on %s: simulate: %v", name, g.Name, err)
			}
			if audit.Makespan != mk {
				t.Fatalf("%s on %s: validator makespan %v != simulator %v", name, g.Name, audit.Makespan, mk)
			}
		}
	}
}
