package scheduler

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/afg"
	"repro/internal/repository"
)

// Baseline schedulers for the evaluation benchmarks. Each implements the
// same contract as the Site Scheduler — an AFG in, an allocation table out —
// but replaces the prediction-driven placement with a naive policy, which is
// what the paper's scheduling claims are measured against.

// Scheduler is anything that can map an AFG to resources.
type Scheduler interface {
	Schedule(g *afg.Graph) (*AllocationTable, error)
}

// hostList flattens repositories into (site, host) pairs with static data.
type hostEntry struct {
	site string
	host string
	rec  repository.ResourceRecord
}

func collectHosts(sites map[string]*repository.Repository) []hostEntry {
	var names []string
	for s := range sites {
		names = append(names, s)
	}
	sort.Strings(names)
	var out []hostEntry
	for _, s := range names {
		for _, r := range sites[s].Resources.List() {
			if r.Dynamic.Down {
				continue
			}
			out = append(out, hostEntry{site: s, host: r.Static.HostName, rec: r})
		}
	}
	return out
}

// RandomScheduler assigns every task to a uniformly random up host.
type RandomScheduler struct {
	Sites map[string]*repository.Repository
	Seed  int64
}

// Schedule implements Scheduler.
func (r *RandomScheduler) Schedule(g *afg.Graph) (*AllocationTable, error) {
	hosts := collectHosts(r.Sites)
	if len(hosts) == 0 {
		return nil, ErrNoEligibleHost
	}
	rng := rand.New(rand.NewSource(r.Seed))
	table := NewAllocationTable(g.Name)
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	for _, id := range order {
		h := hosts[rng.Intn(len(hosts))]
		table.Set(Assignment{Task: id, Site: h.site, Host: h.host, Hosts: []string{h.host}})
	}
	return table, nil
}

// RoundRobinScheduler cycles through hosts in name order. The cursor is
// mutex-guarded so concurrent batch scheduling stays race-free (though the
// offset each graph starts at then depends on completion order).
type RoundRobinScheduler struct {
	Sites map[string]*repository.Repository

	mu   sync.Mutex
	next int
}

// Schedule implements Scheduler.
func (r *RoundRobinScheduler) Schedule(g *afg.Graph) (*AllocationTable, error) {
	hosts := collectHosts(r.Sites)
	if len(hosts) == 0 {
		return nil, ErrNoEligibleHost
	}
	table := NewAllocationTable(g.Name)
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, id := range order {
		h := hosts[r.next%len(hosts)]
		r.next++
		table.Set(Assignment{Task: id, Site: h.site, Host: h.host, Hosts: []string{h.host}})
	}
	return table, nil
}

// MinLoadScheduler greedily places each task on the host with the lowest
// recorded load, ignoring heterogeneity (speed/weights) and transfers. It
// tracks its own placements so it does not dog-pile one idle host.
type MinLoadScheduler struct {
	Sites map[string]*repository.Repository
}

// Schedule implements Scheduler.
func (m *MinLoadScheduler) Schedule(g *afg.Graph) (*AllocationTable, error) {
	hosts := collectHosts(m.Sites)
	if len(hosts) == 0 {
		return nil, ErrNoEligibleHost
	}
	load := make([]float64, len(hosts))
	for i, h := range hosts {
		load[i] = h.rec.Dynamic.Load
	}
	table := NewAllocationTable(g.Name)
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	for _, id := range order {
		best := 0
		for i := range hosts {
			if load[i] < load[best] {
				best = i
			}
		}
		load[best]++ // a placed task adds one load unit
		h := hosts[best]
		table.Set(Assignment{Task: id, Site: h.site, Host: h.host, Hosts: []string{h.host}})
	}
	return table, nil
}

// FastestHostScheduler puts every task on the host with the highest static
// speed factor — the "prediction-blind" policy that ignores load entirely.
type FastestHostScheduler struct {
	Sites map[string]*repository.Repository
}

// Schedule implements Scheduler.
func (f *FastestHostScheduler) Schedule(g *afg.Graph) (*AllocationTable, error) {
	hosts := collectHosts(f.Sites)
	if len(hosts) == 0 {
		return nil, ErrNoEligibleHost
	}
	best := 0
	for i, h := range hosts {
		if h.rec.Static.SpeedFactor > hosts[best].rec.Static.SpeedFactor {
			best = i
		}
	}
	table := NewAllocationTable(g.Name)
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	h := hosts[best]
	for _, id := range order {
		table.Set(Assignment{Task: id, Site: h.site, Host: h.host, Hosts: []string{h.host}})
	}
	return table, nil
}

// FIFOPriority is the level-priority ablation: ready tasks in plain id
// order, ignoring levels. Install it as SiteScheduler.Priority to measure
// what the paper's level rule buys.
func FIFOPriority(ids []afg.TaskID, _ map[afg.TaskID]float64) []afg.TaskID {
	out := append([]afg.TaskID(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// baselinePolicy exposes the naive schedulers through the policy registry.
// Host inventories come from the request's site repositories (the explicit
// Sites map, or any in-process LocalSelector); remote-only deployments see
// just the hosts their RPC peers expose locally. Each Schedule call builds
// a fresh scheduler, so the round-robin cursor restarts per application and
// the random policy is a pure function of Config.Seed.
type baselinePolicy struct {
	kind string
}

// Name implements Policy.
func (b baselinePolicy) Name() string { return b.kind }

// Schedule implements Policy.
func (b baselinePolicy) Schedule(ctx context.Context, req *Request) (*AllocationTable, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sites := req.siteRepos()
	if len(sites) == 0 {
		return nil, ErrNoSites
	}
	var s Scheduler
	switch b.kind {
	case "random":
		s = &RandomScheduler{Sites: sites, Seed: req.Config.Seed}
	case "roundrobin":
		s = &RoundRobinScheduler{Sites: sites}
	case "minload":
		s = &MinLoadScheduler{Sites: sites}
	case "fastest":
		s = &FastestHostScheduler{Sites: sites}
	default:
		return nil, fmt.Errorf("%w %q", ErrUnknownPolicy, b.kind)
	}
	return s.Schedule(req.Graph)
}
