package scheduler

import (
	"errors"
	"testing"
	"time"

	"repro/internal/afg"
	"repro/internal/netsim"
)

// reschedEnv is a two-site, four-host environment with distinct speeds so
// the re-planners have real choices: a-1 is the fast machine, b-1 the
// slow one.
func reschedEnv() ([]HostRef, TimeModel, *netsim.Network) {
	speed := map[string]float64{"a-0": 1, "a-1": 2, "b-0": 1.5, "b-1": 0.5}
	hosts := []HostRef{
		{Site: "alpha", Host: "a-0"}, {Site: "alpha", Host: "a-1"},
		{Site: "beta", Host: "b-0"}, {Site: "beta", Host: "b-1"},
	}
	model := func(task *afg.Task, host string) float64 {
		return task.ComputeCost / speed[host]
	}
	net := netsim.StarTopology([]string{"alpha", "beta"}, 2*time.Millisecond, 1e7, 1)
	return hosts, model, net
}

// diamondGraph is A → {B, C} → D.
func diamondGraph(t testing.TB) *afg.Graph {
	t.Helper()
	g := afg.New("diamond")
	costs := map[string]float64{"A": 2, "B": 3, "C": 4, "D": 2}
	for _, id := range []string{"A", "B", "C", "D"} {
		if err := g.AddTask(&afg.Task{
			ID: afg.TaskID(id), Function: "synthetic.noop",
			ComputeCost: costs[id], OutputBytes: 1 << 10,
		}); err != nil {
			t.Fatal(err)
		}
	}
	for _, l := range [][2]string{{"A", "B"}, {"A", "C"}, {"B", "D"}, {"C", "D"}} {
		if err := g.AddLink(afg.Link{From: afg.TaskID(l[0]), To: afg.TaskID(l[1])}); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

// tableOn maps every task of g onto one host.
func tableOn(g *afg.Graph, model TimeModel, site, host string) *AllocationTable {
	tbl := NewAllocationTable(g.Name)
	for _, id := range g.TaskIDs() {
		task := g.Task(id)
		tbl.Set(Assignment{Task: id, Site: site, Host: host,
			Hosts: []string{host}, Predicted: model(task, host)})
	}
	return tbl
}

// tableRoundRobin distributes tasks over the host pool in id order.
func tableRoundRobin(g *afg.Graph, model TimeModel, hosts []HostRef) *AllocationTable {
	tbl := NewAllocationTable(g.Name)
	for i, id := range g.TaskIDs() {
		h := hosts[i%len(hosts)]
		tbl.Set(Assignment{Task: id, Site: h.Site, Host: h.Host,
			Hosts: []string{h.Host}, Predicted: model(g.Task(id), h.Host)})
	}
	return tbl
}

func TestReplannerRegistry(t *testing.T) {
	names := Replanners()
	want := []string{"dup", "eft", "heft"}
	if len(names) != len(want) {
		t.Fatalf("Replanners() = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Replanners() = %v, want %v (sorted)", names, want)
		}
	}
	if _, err := LookupReplanner("nope"); !errors.Is(err, ErrUnknownReplanner) {
		t.Fatalf("LookupReplanner(nope) err = %v, want ErrUnknownReplanner", err)
	}
	if _, err := LookupReplanner("heft"); err != nil {
		t.Fatalf("LookupReplanner(heft) err = %v", err)
	}
}

// A HostDown deviation must clear the frontier off the dead machine while
// settled assignments survive verbatim — for every registered re-planner.
func TestReplanHostDownAvoidsDownHost(t *testing.T) {
	hosts, model, net := reschedEnv()
	for _, name := range Replanners() {
		t.Run(name, func(t *testing.T) {
			g := diamondGraph(t)
			tbl := tableOn(g, model, "alpha", "a-0")
			rp, err := LookupReplanner(name)
			if err != nil {
				t.Fatal(err)
			}
			req := &ReplanRequest{
				Graph: g,
				Table: tbl,
				Done:  map[afg.TaskID]float64{"A": 2},
				Down:  map[string]bool{"a-0": true},
				Event: Deviation{Kind: DeviationHostDown, Host: "a-0", At: 2},
				Costs: model,
				Hosts: hosts,
				Net:   net,
			}
			pl, err := rp.Replan(req)
			if err != nil {
				t.Fatal(err)
			}
			for _, id := range []afg.TaskID{"B", "C", "D"} {
				a, ok := pl.Table.Get(id)
				if !ok {
					t.Fatalf("task %s missing from re-planned table", id)
				}
				if a.Host == "a-0" {
					t.Fatalf("task %s still on the down host", id)
				}
			}
			a, _ := pl.Table.Get("A")
			if a.Host != "a-0" || a.Site != "alpha" {
				t.Fatalf("done task A moved: %+v", a)
			}
			if pl.Moved != 3 {
				t.Fatalf("Moved = %d, want 3", pl.Moved)
			}
			if _, err := CertifyReplan(g, pl.Table, model, net); err != nil {
				t.Fatalf("certification failed: %v", err)
			}
		})
	}
}

// Running tasks must keep their assignment even when another host dies.
func TestReplanPreservesSettled(t *testing.T) {
	hosts, model, net := reschedEnv()
	for _, name := range Replanners() {
		t.Run(name, func(t *testing.T) {
			g := diamondGraph(t)
			tbl := tableOn(g, model, "alpha", "a-0")
			// C and D live on the doomed host.
			cost := func(id afg.TaskID, h string) float64 { return model(g.Task(id), h) }
			tbl.Set(Assignment{Task: "C", Site: "beta", Host: "b-0", Hosts: []string{"b-0"}, Predicted: cost("C", "b-0")})
			tbl.Set(Assignment{Task: "D", Site: "beta", Host: "b-0", Hosts: []string{"b-0"}, Predicted: cost("D", "b-0")})
			rp, _ := LookupReplanner(name)
			pl, err := rp.Replan(&ReplanRequest{
				Graph:   g,
				Table:   tbl,
				Done:    map[afg.TaskID]float64{"A": 2},
				Running: map[afg.TaskID]float64{"B": 5},
				Down:    map[string]bool{"b-0": true},
				Event:   Deviation{Kind: DeviationHostDown, Host: "b-0", At: 3},
				Costs:   model,
				Hosts:   hosts,
				Net:     net,
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, id := range []afg.TaskID{"A", "B"} {
				was, _ := tbl.Get(id)
				is, _ := pl.Table.Get(id)
				if was.Host != is.Host || was.Site != is.Site {
					t.Fatalf("settled task %s moved: %+v -> %+v", id, was, is)
				}
			}
			for _, id := range []afg.TaskID{"C", "D"} {
				if a, _ := pl.Table.Get(id); a.Host == "b-0" {
					t.Fatalf("frontier task %s still on down host", id)
				}
			}
			if _, err := CertifyReplan(g, pl.Table, model, net); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// The cheap patch moves only tasks touching a suspect host.
func TestEFTMovesOnlySuspectTasks(t *testing.T) {
	hosts, model, net := reschedEnv()
	g := diamondGraph(t)
	cost := func(id afg.TaskID, h string) float64 { return model(g.Task(id), h) }
	tbl := NewAllocationTable(g.Name)
	tbl.Set(Assignment{Task: "A", Site: "alpha", Host: "a-0", Hosts: []string{"a-0"}, Predicted: cost("A", "a-0")})
	tbl.Set(Assignment{Task: "B", Site: "beta", Host: "b-0", Hosts: []string{"b-0"}, Predicted: cost("B", "b-0")})
	tbl.Set(Assignment{Task: "C", Site: "alpha", Host: "a-1", Hosts: []string{"a-1"}, Predicted: cost("C", "a-1")})
	tbl.Set(Assignment{Task: "D", Site: "beta", Host: "b-1", Hosts: []string{"b-1"}, Predicted: cost("D", "b-1")})
	rp, _ := LookupReplanner("eft")
	pl, err := rp.Replan(&ReplanRequest{
		Graph: g,
		Table: tbl,
		Done:  map[afg.TaskID]float64{"A": 2},
		Down:  map[string]bool{"b-0": true},
		Event: Deviation{Kind: DeviationHostDown, Host: "b-0", At: 2},
		Costs: model,
		Hosts: hosts,
		Net:   net,
	})
	if err != nil {
		t.Fatal(err)
	}
	if pl.Moved != 1 {
		t.Fatalf("Moved = %d, want 1 (only B touches the down host)", pl.Moved)
	}
	for _, id := range []afg.TaskID{"C", "D"} {
		was, _ := tbl.Get(id)
		is, _ := pl.Table.Get(id)
		if was.Host != is.Host {
			t.Fatalf("unaffected task %s moved %s -> %s", id, was.Host, is.Host)
		}
	}
	if b, _ := pl.Table.Get("B"); b.Host == "b-0" {
		t.Fatal("B still on down host")
	}
}

// An overrun deviation routes frontier work away from the straggling host
// without touching the running straggler itself.
func TestOverrunPatchAvoidsStragglerHost(t *testing.T) {
	hosts, model, net := reschedEnv()
	g := diamondGraph(t)
	tbl := tableOn(g, model, "alpha", "a-1")
	rp, _ := LookupReplanner("eft")
	pl, err := rp.Replan(&ReplanRequest{
		Graph:   g,
		Table:   tbl,
		Done:    map[afg.TaskID]float64{"A": 1},
		Running: map[afg.TaskID]float64{"B": 4},
		Event:   Deviation{Kind: DeviationOverrun, Host: "a-1", Task: "B", At: 3, Ratio: 2},
		Costs:   model,
		Hosts:   hosts,
		Net:     net,
	})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := pl.Table.Get("B")
	if b.Host != "a-1" {
		t.Fatalf("running straggler B moved to %s", b.Host)
	}
	for _, id := range []afg.TaskID{"C", "D"} {
		if a, _ := pl.Table.Get(id); a.Host == "a-1" {
			t.Fatalf("frontier task %s left on the straggling host", id)
		}
	}
	if _, err := CertifyReplan(g, pl.Table, model, net); err != nil {
		t.Fatal(err)
	}
}

// dup hedges each re-placed task on an idle host, off the certified table.
func TestDupReplannerHedges(t *testing.T) {
	hosts, model, net := reschedEnv()
	g := afg.New("pair")
	for _, id := range []string{"A", "B"} {
		if err := g.AddTask(&afg.Task{ID: afg.TaskID(id), Function: "synthetic.noop",
			ComputeCost: 3, OutputBytes: 1 << 10}); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.AddLink(afg.Link{From: "A", To: "B"}); err != nil {
		t.Fatal(err)
	}
	tbl := tableOn(g, model, "alpha", "a-0")
	rp, _ := LookupReplanner("dup")
	pl, err := rp.Replan(&ReplanRequest{
		Graph: g,
		Table: tbl,
		Done:  map[afg.TaskID]float64{"A": 3},
		Down:  map[string]bool{"a-0": true},
		Event: Deviation{Kind: DeviationHostDown, Host: "a-0", At: 3},
		Costs: model,
		Hosts: hosts,
		Net:   net,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.Duplicates) != 1 || pl.Duplicates[0].Task != "B" {
		t.Fatalf("Duplicates = %+v, want one hedge for B", pl.Duplicates)
	}
	primary, _ := pl.Table.Get("B")
	d := pl.Duplicates[0]
	if d.Host == primary.Host || d.Host == "a-0" {
		t.Fatalf("duplicate landed on %s (primary %s)", d.Host, primary.Host)
	}
	// The hedge is not part of the certified table.
	if _, err := CertifyReplan(g, pl.Table, model, net); err != nil {
		t.Fatal(err)
	}
}

// Satellite: every re-planned table passes ValidateSchedule bit-for-bit
// against Simulate, across re-planners and random layered DAGs.
func TestReplanCertifiedBitForBit(t *testing.T) {
	hosts, model, net := reschedEnv()
	for _, name := range Replanners() {
		for seed := int64(1); seed <= 3; seed++ {
			g := layeredDAG(t, 4, 5, seed)
			tbl := tableRoundRobin(g, model, hosts)
			ids := g.TaskIDs()
			done := map[afg.TaskID]float64{ids[0]: 1.5}
			rp, _ := LookupReplanner(name)
			pl, err := rp.Replan(&ReplanRequest{
				Graph: g,
				Table: tbl,
				Done:  done,
				Down:  map[string]bool{"a-0": true},
				Event: Deviation{Kind: DeviationHostDown, Host: "a-0", At: 1.5},
				Costs: model,
				Hosts: hosts,
				Net:   net,
			})
			if err != nil {
				t.Fatalf("%s seed %d: %v", name, seed, err)
			}
			mk, err := Simulate(g, pl.Table, model, net)
			if err != nil {
				t.Fatalf("%s seed %d: simulate: %v", name, seed, err)
			}
			audit, err := CertifyReplan(g, pl.Table, model, net)
			if err != nil {
				t.Fatalf("%s seed %d: certify: %v", name, seed, err)
			}
			if audit.Makespan != mk { //vdce:ignore floateq bit-identity between the two replay paths is the certification contract
				t.Fatalf("%s seed %d: validator %v != simulator %v", name, seed, audit.Makespan, mk)
			}
		}
	}
}

// No eligible host at all is a hard error, not a silent no-op.
func TestReplanNoEligibleHost(t *testing.T) {
	hosts, model, net := reschedEnv()
	g := diamondGraph(t)
	tbl := tableOn(g, model, "alpha", "a-0")
	down := map[string]bool{}
	for _, h := range hosts {
		down[h.Host] = true
	}
	rp, _ := LookupReplanner("heft")
	_, err := rp.Replan(&ReplanRequest{
		Graph: g, Table: tbl, Down: down,
		Event: Deviation{Kind: DeviationHostDown, Host: "a-0"},
		Costs: model, Hosts: hosts, Net: net,
	})
	if !errors.Is(err, ErrNoEligibleHost) {
		t.Fatalf("err = %v, want ErrNoEligibleHost", err)
	}
}
