package scheduler

import (
	"testing"
	"time"

	"repro/internal/afg"
)

// wideGraph builds n independent equal-cost tasks.
func wideGraph(n int, cost float64) *afg.Graph {
	g := afg.New("wide")
	for i := 0; i < n; i++ {
		g.AddTask(&afg.Task{ID: afg.TaskID(rune('a' + i)), Function: "f", ComputeCost: cost})
	}
	return g
}

// TestAvailabilityAwareOverflowsToSlowSite: the paper-faithful walk sends
// every independent task to the 4×-fast remote site (queued-load bumps
// notwithstanding, its per-task prediction stays lowest), serialising on
// its two hosts. The availability-aware walk counts the wait: once the
// fast hosts' timelines push a task's finish past the slow site's raw
// prediction, the overflow runs locally — lower simulated makespan.
func TestAvailabilityAwareOverflowsToSlowSite(t *testing.T) {
	truth := func(task *afg.Task, host string) float64 {
		speed := 1.0
		if host == "rome-1" || host == "rome-2" {
			speed = 4
		}
		return task.ComputeCost / speed
	}
	g := wideGraph(12, 5)

	faithful, _, _, net := twoSiteSetup(t, time.Millisecond)
	ft, err := faithful.Schedule(g)
	if err != nil {
		t.Fatal(err)
	}
	fmk, err := Simulate(g, ft, truth, net)
	if err != nil {
		t.Fatal(err)
	}

	eft, _, _, net2 := twoSiteSetup(t, time.Millisecond)
	eft.AvailabilityAware = true
	et, err := eft.Schedule(g)
	if err != nil {
		t.Fatal(err)
	}
	emk, err := Simulate(g, et, truth, net2)
	if err != nil {
		t.Fatal(err)
	}

	sites := map[string]int{}
	for _, a := range et.Entries {
		sites[a.Site]++
	}
	if sites["syr"] == 0 {
		t.Fatalf("availability-aware walk never overflowed to the slow site: %v", sites)
	}
	for _, a := range ft.Entries {
		if a.Site != "rome" {
			t.Fatalf("faithful walk unexpectedly used %s — test premise broken", a.Site)
		}
	}
	if emk >= fmk {
		t.Fatalf("availability-aware makespan %v not better than faithful %v", emk, fmk)
	}
}

// TestAvailabilityAwareChargesTransferWait: a data-heavy child must stay
// with its parent when shipping the input would dominate, exactly like the
// transfer-aware faithful mode.
func TestAvailabilityAwareChargesTransferWait(t *testing.T) {
	s, _, _, _ := twoSiteSetup(t, 2*time.Second)
	s.AvailabilityAware = true
	g := afg.New("app")
	g.AddTask(&afg.Task{ID: "parent", Function: "f", ComputeCost: 10})
	g.AddTask(&afg.Task{ID: "child", Function: "f", ComputeCost: 0.1})
	g.AddLink(afg.Link{From: "parent", To: "child", Bytes: 100 << 20})
	table, err := s.Schedule(g)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := table.Get("parent")
	c, _ := table.Get("child")
	if p.Site != c.Site {
		t.Fatalf("heavy-comm child split across sites: parent=%s child=%s", p.Site, c.Site)
	}
}

// ledgerSetup builds two single-host sites of equal speed: without a
// ledger, every application's walk deterministically picks the same
// (tie-broken) site; with one, later applications see the reserved busy
// seconds and divert.
func ledgerSetup(t *testing.T) *SiteScheduler {
	t.Helper()
	a := makeRepo(t, "sa", map[string][2]float64{"sa-1": {1, 0}})
	b := makeRepo(t, "sb", map[string][2]float64{"sb-1": {1, 0}})
	s := NewSiteScheduler(
		&LocalSelector{Site: "sa", Repo: a},
		[]HostSelector{&LocalSelector{Site: "sb", Repo: b}},
		nil, 0)
	s.AvailabilityAware = true
	return s
}

func TestBatchLedgerSpreadsApplications(t *testing.T) {
	graphs := []*afg.Graph{wideGraph(1, 4), wideGraph(1, 4)}

	s := ledgerSetup(t)
	plain := (&Batch{Scheduler: s, Workers: 1}).Schedule(graphs)
	pa, _ := plain[0].Table.Get("a")
	pb, _ := plain[1].Table.Get("a")
	if pa.Host != pb.Host {
		t.Fatalf("ledger-free batch should dog-pile deterministically: %q vs %q", pa.Host, pb.Host)
	}

	s = ledgerSetup(t)
	led := (&Batch{Scheduler: s, Workers: 1, Ledger: NewLoadLedger()}).Schedule(graphs)
	if led[0].Err != nil || led[1].Err != nil {
		t.Fatalf("ledger batch errored: %v / %v", led[0].Err, led[1].Err)
	}
	la, _ := led[0].Table.Get("a")
	lb, _ := led[1].Table.Get("a")
	if la.Host == lb.Host {
		t.Fatalf("shared ledger failed to spread the batch: both on %q", la.Host)
	}
}

// TestLedgerErrorPathReleasesReservations: a walk that dies mid-graph must
// give back what it reserved, or the ledger slowly poisons every host.
func TestLedgerErrorPathReleasesReservations(t *testing.T) {
	s := ledgerSetup(t)
	ledger := NewLoadLedger()
	s.Ledger = ledger
	g := afg.New("half")
	g.AddTask(&afg.Task{ID: "ok", Function: "f", ComputeCost: 3})
	g.AddTask(&afg.Task{ID: "bad", Function: "f", ComputeCost: 3, MachineType: "cray"})
	if _, err := s.Schedule(g); err == nil {
		t.Fatal("unschedulable graph accepted")
	}
	for _, h := range []string{"sa-1", "sb-1"} {
		if b := ledger.Busy(h); b != 0 {
			t.Fatalf("ledger leaked %v busy seconds on %s after failed schedule", b, h)
		}
	}
}

func TestLoadLedgerAccounting(t *testing.T) {
	l := NewLoadLedger()
	l.Reserve("h1", 2.5)
	l.Reserve("h1", 1.5)
	l.Reserve("h2", 1)
	if b := l.Busy("h1"); b != 4 {
		t.Fatalf("Busy(h1) = %v, want 4", b)
	}
	l.Release("h1", 1.5)
	if b := l.Busy("h1"); b != 2.5 {
		t.Fatalf("Busy(h1) = %v, want 2.5", b)
	}
	l.Release("h1", 99) // over-release clamps at zero
	if b := l.Busy("h1"); b != 0 {
		t.Fatalf("Busy(h1) = %v, want 0 after clamped release", b)
	}
	snap := l.Snapshot()
	if len(snap) != 1 || snap["h2"] != 1 {
		t.Fatalf("snapshot = %v", snap)
	}
	table := NewAllocationTable("x")
	table.Set(Assignment{Task: "t", Host: "h2", Predicted: 1})
	l.ReleaseTable(table)
	if b := l.Busy("h2"); b != 0 {
		t.Fatalf("ReleaseTable left %v on h2", b)
	}
}

// TestLocalSelectorAvailabilityAware: the selector's own walk switches
// from queued-load bumps to a host-free timeline — the fast host absorbs
// work until its backlog matches the slow host's single-task time.
func TestLocalSelectorAvailabilityAware(t *testing.T) {
	repo := makeRepo(t, "syr", map[string][2]float64{
		"fast": {4, 0}, "slow": {1, 0},
	})
	sel := &LocalSelector{Site: "syr", Repo: repo, AvailabilityAware: true}
	choices, err := sel.SelectHosts(wideGraph(5, 4))
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, c := range choices {
		counts[c.Host]++
	}
	// pred(fast)=1, pred(slow)=4: finishes 1,2,3,4 on fast, then the tie
	// at 4+1 vs 4 sends the fifth task to slow.
	if counts["fast"] != 4 || counts["slow"] != 1 {
		t.Fatalf("availability-aware selector split = %v, want fast:4 slow:1", counts)
	}
}

// TestConcurrentLedgerBatchIsComplete races many availability-aware
// schedules through one shared ledger (the -race exercise for the
// Reserve/Busy/Release paths) and checks every graph still gets a full
// table; placement then legitimately depends on completion order, so only
// completeness is asserted.
func TestConcurrentLedgerBatchIsComplete(t *testing.T) {
	s, _ := multiSiteScheduler(t, 6, true)
	s.AvailabilityAware = true
	graphs := randomGraphs(12, 30, 17)
	items := (&Batch{Scheduler: s, Workers: 6, Ledger: NewLoadLedger()}).Schedule(graphs)
	for i, it := range items {
		if it.Err != nil {
			t.Fatalf("graph %d: %v", i, it.Err)
		}
		if len(it.Table.Order()) != graphs[i].Len() {
			t.Fatalf("graph %d: %d of %d tasks", i, len(it.Table.Order()), graphs[i].Len())
		}
	}
}
