package scheduler

import (
	"reflect"
	"testing"

	"repro/internal/afg"
)

// With no faults and no stragglers the churn executor is Simulate: same
// start rule, same transfer rule, same tie-breaks — bit-identical makespan.
func TestChurnFaultFreeMatchesSimulate(t *testing.T) {
	hosts, model, net := reschedEnv()
	for seed := int64(1); seed <= 4; seed++ {
		g := layeredDAG(t, 4, 5, seed)
		tbl := tableRoundRobin(g, model, hosts)
		want, err := Simulate(g, tbl, model, net)
		if err != nil {
			t.Fatal(err)
		}
		out, err := RunChurn(g, tbl, model, net, hosts, ChurnTrace{}, ChurnConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if out.Makespan != want { //vdce:ignore floateq fault-free parity with Simulate is the executor's correctness pin
			t.Fatalf("seed %d: churn makespan %v != simulate %v", seed, out.Makespan, want)
		}
		if out.Replans != 0 || out.Killed != 0 || out.DupRuns != 0 {
			t.Fatalf("seed %d: fault-free run produced events: %+v", seed, out)
		}
	}
}

// Satellite: a straggler host triggers frontier re-planning exactly once —
// the overrun is detected at threshold × predicted, the frontier moves off
// the host, and no second deviation fires.
func TestChurnStragglerReplansOnce(t *testing.T) {
	hosts, model, net := reschedEnv()
	g := afg.New("chain")
	for _, id := range []string{"A", "B", "C"} {
		if err := g.AddTask(&afg.Task{ID: afg.TaskID(id), Function: "synthetic.noop",
			ComputeCost: 4, OutputBytes: 1 << 10}); err != nil {
			t.Fatal(err)
		}
	}
	for _, l := range [][2]string{{"A", "B"}, {"B", "C"}} {
		if err := g.AddLink(afg.Link{From: afg.TaskID(l[0]), To: afg.TaskID(l[1])}); err != nil {
			t.Fatal(err)
		}
	}
	tbl := tableOn(g, model, "alpha", "a-0")
	trace := ChurnTrace{Straggle: map[string]float64{"a-0": 2.0}}
	for _, name := range Replanners() {
		t.Run(name, func(t *testing.T) {
			out, err := RunChurn(g, tbl, model, net, hosts, trace,
				ChurnConfig{OverrunThreshold: 1.5, Replanner: name})
			if err != nil {
				t.Fatal(err)
			}
			if out.OverrunReplans != 1 || out.Replans != 1 {
				t.Fatalf("replans = %+v, want exactly one overrun re-plan", out)
			}
			if out.HostDownReplans != 0 || out.Killed != 0 {
				t.Fatalf("unexpected failure handling in straggler run: %+v", out)
			}
			// A runs 8s on the straggler; B and C moved to clean machines.
			fair, _ := Simulate(g, tbl, model, net)
			if out.Makespan <= fair {
				t.Fatalf("makespan %v not degraded vs fault-free %v", out.Makespan, fair)
			}
		})
	}
}

// A host failure kills the running task, the re-planner moves it, and the
// run completes on the surviving machines.
func TestChurnHostDownKillsAndReschedules(t *testing.T) {
	hosts, model, net := reschedEnv()
	g := afg.New("single")
	if err := g.AddTask(&afg.Task{ID: "A", Function: "synthetic.noop", ComputeCost: 4}); err != nil {
		t.Fatal(err)
	}
	tbl := tableOn(g, model, "alpha", "a-0")
	trace := ChurnTrace{Events: []ChurnEvent{{At: 2, Host: "a-0", Down: true}}}
	out, err := RunChurn(g, tbl, model, net, hosts, trace, ChurnConfig{Replanner: "eft"})
	if err != nil {
		t.Fatal(err)
	}
	if out.Killed != 1 || out.HostDownReplans != 1 {
		t.Fatalf("outcome = %+v, want one kill and one host-down re-plan", out)
	}
	// A restarts at t=2 on the fast machine a-1 (4/2 = 2s): makespan 4.
	if out.Makespan != 4 { //vdce:ignore floateq exact arithmetic on round inputs pins the restart accounting
		t.Fatalf("makespan = %v, want 4", out.Makespan)
	}
}

// A promoted duplicate absorbs a second failure: when the re-placed copy's
// host dies too, the dup re-planner's hedge becomes the primary placement.
func TestChurnDuplicatePromoted(t *testing.T) {
	hosts, model, net := reschedEnv()
	g := afg.New("single")
	if err := g.AddTask(&afg.Task{ID: "A", Function: "synthetic.noop", ComputeCost: 4}); err != nil {
		t.Fatal(err)
	}
	tbl := tableOn(g, model, "alpha", "a-0")
	trace := ChurnTrace{Events: []ChurnEvent{
		{At: 2, Host: "a-0", Down: true},
		{At: 3, Host: "a-1", Down: true},
	}}
	out, err := RunChurn(g, tbl, model, net, hosts, trace, ChurnConfig{Replanner: "dup"})
	if err != nil {
		t.Fatal(err)
	}
	if out.Killed != 2 || out.DupRuns != 1 {
		t.Fatalf("outcome = %+v, want two kills and one promoted duplicate", out)
	}
	if out.Makespan <= 4 {
		t.Fatalf("makespan = %v, want > 4 after two failures", out.Makespan)
	}
}

// Fixed seed + fixed config ⇒ bit-identical outcomes, per re-planner.
func TestChurnDeterminism(t *testing.T) {
	hosts, model, net := reschedEnv()
	names := make([]string, len(hosts))
	for i, h := range hosts {
		names[i] = h.Host
	}
	for _, name := range Replanners() {
		t.Run(name, func(t *testing.T) {
			g := layeredDAG(t, 5, 4, 7)
			tbl := tableRoundRobin(g, model, hosts)
			fair, err := Simulate(g, tbl, model, net)
			if err != nil {
				t.Fatal(err)
			}
			trace := GenerateChurnTrace(names, fair, ChurnTraceConfig{
				FailFraction: 0.25, RepairAfter: fair, StraggleFraction: 0.25, StraggleFactor: 2,
			}, 42)
			a, err := RunChurn(g, tbl, model, net, hosts, trace, ChurnConfig{Replanner: name})
			if err != nil {
				t.Fatal(err)
			}
			b, err := RunChurn(g, tbl, model, net, hosts, trace, ChurnConfig{Replanner: name})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("nondeterministic churn outcome:\n%+v\n%+v", a, b)
			}
		})
	}
}

func TestGenerateChurnTrace(t *testing.T) {
	names := []string{"h1", "h2", "h3", "h4"}
	a := GenerateChurnTrace(names, 100, DefaultChurnTrace, 1)
	b := GenerateChurnTrace(names, 100, DefaultChurnTrace, 1)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("trace generation not deterministic for a fixed seed")
	}
	for i := 1; i < len(a.Events); i++ {
		if a.Events[i].At < a.Events[i-1].At {
			t.Fatal("events not sorted by time")
		}
	}
	// Even at FailFraction 1 a survivor remains.
	full := GenerateChurnTrace(names, 100, ChurnTraceConfig{FailFraction: 1}, 2)
	failed := map[string]bool{}
	for _, ev := range full.Events {
		if ev.Down {
			failed[ev.Host] = true
		}
	}
	if len(failed) >= len(names) {
		t.Fatalf("no survivor: %d of %d hosts fail", len(failed), len(names))
	}
}
