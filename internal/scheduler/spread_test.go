package scheduler

import (
	"testing"
	"time"

	"repro/internal/afg"
)

// TestSelectorSpreadsIndependentTasks guards the queue-aware walk: a wide
// application must not dog-pile the single best machine.
func TestSelectorSpreadsIndependentTasks(t *testing.T) {
	repo := makeRepo(t, "syr", map[string][2]float64{
		"fast": {4, 0}, "mid": {2, 0}, "slow": {1, 0},
	})
	g := afg.New("wide")
	for i := 0; i < 9; i++ {
		g.AddTask(&afg.Task{ID: afg.TaskID(rune('a' + i)), Function: "f", ComputeCost: 1})
	}
	sel := &LocalSelector{Site: "syr", Repo: repo}
	choices, err := sel.SelectHosts(g)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, c := range choices {
		counts[c.Host]++
	}
	if counts["fast"] == 9 {
		t.Fatalf("all tasks dog-piled the fast host: %v", counts)
	}
	// The fast host should still get the largest share.
	if counts["fast"] < counts["slow"] {
		t.Fatalf("fast host under-used: %v", counts)
	}
	if counts["fast"]+counts["mid"]+counts["slow"] != 9 {
		t.Fatalf("tasks lost: %v", counts)
	}
}

// TestSelectorQueueAccountsParallelTasks: a parallel task bumps all of its
// hosts, steering later tasks elsewhere.
func TestSelectorQueueAccountsParallelTasks(t *testing.T) {
	repo := makeRepo(t, "syr", map[string][2]float64{
		"h1": {2, 0}, "h2": {2, 0}, "h3": {2, 0},
	})
	g := afg.New("parfirst")
	// The high-level parallel task is walked first (cost dominates) and
	// claims two hosts; the second task should land on the third.
	g.AddTask(&afg.Task{ID: "big", Function: "f", ComputeCost: 100, Mode: afg.Parallel, Processors: 2})
	g.AddTask(&afg.Task{ID: "small", Function: "f", ComputeCost: 1})
	sel := &LocalSelector{Site: "syr", Repo: repo}
	choices, err := sel.SelectHosts(g)
	if err != nil {
		t.Fatal(err)
	}
	bigHosts := map[string]bool{}
	for _, h := range choices["big"].Hosts {
		bigHosts[h] = true
	}
	if len(bigHosts) != 2 {
		t.Fatalf("big hosts = %v", choices["big"].Hosts)
	}
	if bigHosts[choices["small"].Host] {
		t.Fatalf("small task stacked on a parallel host: %+v vs %+v",
			choices["small"], choices["big"])
	}
}

// TestSelectorPriorityAblation: with FIFO priority the queue walk order
// changes, so a low-ID cheap task can steal the fast host from the
// critical-path task.
func TestSelectorPriorityAblation(t *testing.T) {
	repo := makeRepo(t, "syr", map[string][2]float64{
		"fast": {10, 0}, "slow": {1, 0},
	})
	g := afg.New("prio")
	// "aa" sorts first but is trivial; "zz" is the critical task.
	g.AddTask(&afg.Task{ID: "aa", Function: "f", ComputeCost: 1})
	g.AddTask(&afg.Task{ID: "zz", Function: "f", ComputeCost: 100})
	level := &LocalSelector{Site: "syr", Repo: repo}
	fifo := &LocalSelector{Site: "syr", Repo: repo, Priority: FIFOPriority}

	lc, err := level.SelectHosts(g)
	if err != nil {
		t.Fatal(err)
	}
	if lc["zz"].Host != "fast" {
		t.Fatalf("level priority gave the critical task %q", lc["zz"].Host)
	}
	fc, err := fifo.SelectHosts(g)
	if err != nil {
		t.Fatal(err)
	}
	if fc["aa"].Host != "fast" {
		t.Fatalf("FIFO should hand the fast host to the first id, got %q", fc["aa"].Host)
	}
}

// TestSiteSchedulerBurstPlacement: with a uniformly faster remote site,
// independent equal tasks all go there (each site's Fig 5 walk advances
// its queues in lockstep, so the faster site wins every per-task
// comparison), and the load is balanced across that site's hosts.
func TestSiteSchedulerBurstPlacement(t *testing.T) {
	s, _, _, _ := twoSiteSetup(t, time.Millisecond)
	g := afg.New("burst")
	for i := 0; i < 12; i++ {
		g.AddTask(&afg.Task{ID: afg.TaskID(rune('a' + i)), Function: "f", ComputeCost: 5})
	}
	table, err := s.Schedule(g)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, a := range table.Entries {
		if a.Site != "rome" {
			t.Fatalf("task %s left the 4x-fast site: %+v", a.Task, a)
		}
		counts[a.Host]++
	}
	if len(counts) != 2 || counts["rome-1"] != 6 || counts["rome-2"] != 6 {
		t.Fatalf("queue-aware walk should balance the site's hosts: %v", counts)
	}
}
