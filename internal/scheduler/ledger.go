package scheduler

import "sync"

// LoadLedger is the shared cross-application view of in-flight placements:
// for every host it tracks the predicted busy seconds of tasks that have
// been scheduled onto it but not (as far as the scheduler knows) finished.
// One ledger threaded through a scheduler.Batch lets concurrent application
// flow graphs see each other's placements during the availability-aware
// walk, instead of every walk independently dog-piling the same best
// machines. It is mutex-guarded: many Schedule goroutines reserve and read
// concurrently.
//
// The ledger is an estimate, not a clock: Busy(h) answers "how many seconds
// of already-promised work stand between now and h being free", which the
// availability-aware walk folds into its earliest-finish-time objective.
//
// Lifecycle: the built-in users (Batch.Ledger, site.Manager's SharedLedger
// batches) create one ledger per batch and discard it afterwards —
// reservations only need to outlive the scheduling episode they coordinate.
// An owner holding a ledger across episodes must release completed or
// abandoned work itself (Release / ReleaseTable); nothing in the runtime
// does so automatically, and unreleased reservations accumulate until
// every host looks equally busy.
type LoadLedger struct {
	mu   sync.Mutex
	busy map[string]float64 // host -> reserved busy seconds
}

// NewLoadLedger returns an empty ledger.
func NewLoadLedger() *LoadLedger {
	return &LoadLedger{busy: make(map[string]float64)}
}

// Reserve records `seconds` of predicted work placed on host.
func (l *LoadLedger) Reserve(host string, seconds float64) {
	if seconds <= 0 {
		return
	}
	l.mu.Lock()
	l.busy[host] += seconds
	l.mu.Unlock()
}

// Release removes `seconds` of previously reserved work from host,
// clamping at zero (a release may race a monitor-driven reset).
func (l *LoadLedger) Release(host string, seconds float64) {
	if seconds <= 0 {
		return
	}
	l.mu.Lock()
	if l.busy[host] -= seconds; l.busy[host] <= 0 {
		delete(l.busy, host)
	}
	l.mu.Unlock()
}

// Busy returns the reserved busy seconds currently standing on host.
func (l *LoadLedger) Busy(host string) float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.busy[host]
}

// ReleaseTable releases every assignment of a completed (or abandoned)
// application: each occupied host gives back the predicted duration the
// availability-aware walk reserved on it.
func (l *LoadLedger) ReleaseTable(t *AllocationTable) {
	if t == nil {
		return
	}
	for _, a := range t.Entries {
		for _, h := range effectiveHosts(a) {
			l.Release(h, a.Predicted)
		}
	}
}

// Snapshot copies the current host -> busy-seconds map (diagnostics and
// experiment reporting).
func (l *LoadLedger) Snapshot() map[string]float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[string]float64, len(l.busy))
	for h, b := range l.busy {
		out[h] = b
	}
	return out
}
