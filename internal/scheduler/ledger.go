package scheduler

import (
	"hash/maphash"
	"sync"
	"sync/atomic"
)

// LoadLedger is the shared cross-application view of in-flight placements:
// for every host it tracks the predicted busy seconds of tasks that have
// been scheduled onto it but not (as far as the scheduler knows) finished.
// One ledger threaded through a scheduler.Batch lets concurrent application
// flow graphs see each other's placements during the availability-aware
// walk, instead of every walk independently dog-piling the same best
// machines.
//
// The ledger is an estimate, not a clock: Busy(h) answers "how many seconds
// of already-promised work stand between now and h being free", which the
// availability-aware walk folds into its earliest-finish-time objective.
//
// Concurrency: the host map is sharded across independently locked stripes
// (hosts hash to stripes by name), so concurrent Reserve/Busy traffic from
// parallel Schedule goroutines contends only when two walks touch hosts on
// the same stripe — not on one global mutex. A monotonic version counter
// advances on every mutation; View/Refresh use it to serve bulk snapshots
// ("what is every host's busy time right now?") without re-reading the
// stripes when nothing changed.
//
// Lifecycle: the built-in users (Batch.Ledger, site.Manager's SharedLedger
// batches) create one ledger per batch and discard it afterwards —
// reservations only need to outlive the scheduling episode they coordinate.
// An owner holding a ledger across episodes must release completed or
// abandoned work itself (Release / ReleaseTable); nothing in the runtime
// does so automatically, and unreleased reservations accumulate until
// every host looks equally busy.
type LoadLedger struct {
	version atomic.Uint64
	shards  [ledgerShards]ledgerShard
}

const ledgerShards = 32

type ledgerShard struct {
	mu   sync.Mutex
	busy map[string]float64 // host -> reserved busy seconds; guarded by mu
	// Pad the 16 bytes of state to a full 64-byte cache line so
	// neighbouring shards' locks never false-share.
	_ [48]byte
}

// ledgerSeed makes the shard hash stable within a process but unpredictable
// across runs (no host-name distribution can degenerate deterministically).
var ledgerSeed = maphash.MakeSeed()

func (l *LoadLedger) shard(host string) *ledgerShard {
	return &l.shards[maphash.String(ledgerSeed, host)%ledgerShards]
}

// NewLoadLedger returns an empty ledger.
func NewLoadLedger() *LoadLedger {
	l := &LoadLedger{}
	for i := range l.shards {
		l.shards[i].busy = make(map[string]float64)
	}
	return l
}

// Reserve records `seconds` of predicted work placed on host.
//
//vdce:unit seconds=seconds
//vdce:ignore allocflow the ledger is host-name-keyed by contract (host names are the cross-application identity); one probe per reservation, stripes hold few hosts
func (l *LoadLedger) Reserve(host string, seconds float64) {
	if seconds <= 0 {
		return
	}
	s := l.shard(host)
	s.mu.Lock()
	s.busy[host] += seconds
	s.mu.Unlock()
	l.version.Add(1)
}

// Release removes `seconds` of previously reserved work from host,
// clamping at zero (a release may race a monitor-driven reset).
//
//vdce:unit seconds=seconds
//vdce:ignore allocflow the ledger is host-name-keyed by contract; one probe per release and the delete shrinks, never grows, the stripe
func (l *LoadLedger) Release(host string, seconds float64) {
	if seconds <= 0 {
		return
	}
	s := l.shard(host)
	s.mu.Lock()
	if s.busy[host] -= seconds; s.busy[host] <= 0 {
		delete(s.busy, host)
	}
	s.mu.Unlock()
	l.version.Add(1)
}

// Busy returns the reserved busy seconds currently standing on host.
//
//vdce:unit seconds
//vdce:ignore allocflow host-name-keyed ledger probe, O(1) and allocation-free; bulk hot reads go through LedgerView instead
func (l *LoadLedger) Busy(host string) float64 {
	s := l.shard(host)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.busy[host]
}

// ReleaseTable releases every assignment of a completed (or abandoned)
// application: each occupied host gives back the predicted duration the
// availability-aware walk reserved on it. Releases run in assignment
// order — several tasks can share a host, and the busy value is a float
// sum, so the subtraction order must be deterministic.
func (l *LoadLedger) ReleaseTable(t *AllocationTable) {
	if t == nil {
		return
	}
	for _, id := range t.Order() {
		a, ok := t.Entries[id]
		if !ok {
			continue
		}
		for _, h := range effectiveHosts(a) {
			l.Release(h, a.Predicted)
		}
	}
}

// Snapshot copies the current host -> busy-seconds map (diagnostics and
// experiment reporting). The copy is not atomic across shards: concurrent
// mutations may land in some shards and not others — the same estimate
// semantics per-host reads always had.
func (l *LoadLedger) Snapshot() map[string]float64 {
	out := make(map[string]float64)
	l.snapshotInto(out)
	return out
}

//vdce:ignore allocflow one pass over the host-keyed stripes into a caller-owned map; runs only when the version moved, so the warm path never reaches it
func (l *LoadLedger) snapshotInto(dst map[string]float64) {
	for i := range l.shards {
		s := &l.shards[i]
		s.mu.Lock()
		for h, b := range s.busy {
			dst[h] = b
		}
		s.mu.Unlock()
	}
}

// Version returns the mutation counter: it advances on every Reserve and
// Release, so equal versions bracket an unchanged ledger.
func (l *LoadLedger) Version() uint64 { return l.version.Load() }

// LedgerView is a bulk read-side cache over a ledger: one snapshot of every
// host's busy seconds, revalidated against the ledger's version counter.
// The EFT walk refreshes its view once per task and then reads candidates
// lock-free, instead of taking a ledger lock per (task, candidate) probe.
// A view expecting its own writes (the walk reserves as it places) absorbs
// them via its Reserve method, so a serial walk never re-snapshots.
//
// Views are single-goroutine; each walk owns its own.
type LedgerView struct {
	l      *LoadLedger
	expect uint64
	busy   map[string]float64
	stale  bool
}

// View returns a fresh view over l, or nil for a nil ledger.
func (l *LoadLedger) View() *LedgerView {
	if l == nil {
		return nil
	}
	return &LedgerView{l: l, busy: make(map[string]float64), stale: true}
}

// Refresh revalidates the view: if the ledger's version moved past what the
// view expects (a concurrent walk reserved or released), the whole busy
// table is re-read in one pass over the stripes. The warm path (version
// unchanged) must stay allocation-free — it runs once per task placed.
//
//vdce:hot allocs=0
func (v *LedgerView) Refresh() {
	if v == nil {
		return
	}
	cur := v.l.version.Load()
	if !v.stale && cur == v.expect {
		return
	}
	clear(v.busy)
	v.l.snapshotInto(v.busy)
	// Expect the version observed BEFORE the snapshot: a mutation racing
	// the stripe reads may or may not be in the copy, but its bump is
	// past cur either way, so the next Refresh re-reads rather than
	// trusting a possibly torn snapshot. (Worst case is one redundant
	// re-read; the reverse order could absorb a missed write forever.)
	v.expect = cur
	v.stale = false
}

// Busy returns the viewed busy seconds for host (as of the last Refresh).
//
//vdce:hot allocs=0
//vdce:ignore allocflow the view cache is host-name-keyed like the ledger it mirrors; the read is one probe and the allocs=0 budget is enforced by AllocsPerRun
func (v *LedgerView) Busy(host string) float64 {
	if v == nil {
		return 0
	}
	return v.busy[host]
}

// Reserve forwards to the underlying ledger and keeps the view current:
// the local copy absorbs the write and the expected version advances, so
// an uncontended walk's next Refresh is a version check, not a snapshot.
//
//vdce:hot allocs=0
//vdce:ignore allocflow absorbing the write into the host-keyed local copy is one probe on a key Refresh already materialised; allocs=0 is enforced by AllocsPerRun
func (v *LedgerView) Reserve(host string, seconds float64) {
	if v == nil || seconds <= 0 {
		return
	}
	v.l.Reserve(host, seconds)
	v.busy[host] += seconds
	v.expect++
}
