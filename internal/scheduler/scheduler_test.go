package scheduler

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/afg"
	"repro/internal/netsim"
	"repro/internal/repository"
)

// makeRepo builds a site repository with the given hosts.
// hosts: name -> [speedFactor, load].
func makeRepo(t testing.TB, site string, hosts map[string][2]float64) *repository.Repository {
	t.Helper()
	repo := repository.New()
	for name, sf := range hosts {
		err := repo.Resources.Register(repository.ResourceStatic{
			HostName: name, Site: site, Arch: "solaris", TotalMemory: 1 << 30, SpeedFactor: sf[0],
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := repo.Resources.UpdateDynamic(name, sf[1], 1<<30, time.Now()); err != nil {
			t.Fatal(err)
		}
	}
	return repo
}

func chainGraph(t testing.TB, costs []float64, bytes int64) *afg.Graph {
	t.Helper()
	g := afg.New("chain")
	var prev afg.TaskID
	for i, c := range costs {
		id := afg.TaskID(rune('a' + i))
		if err := g.AddTask(&afg.Task{ID: id, Function: "synthetic.noop", ComputeCost: c, OutputBytes: bytes}); err != nil {
			t.Fatal(err)
		}
		if i > 0 {
			if err := g.AddLink(afg.Link{From: prev, To: id, Bytes: bytes}); err != nil {
				t.Fatal(err)
			}
		}
		prev = id
	}
	return g
}

func TestLocalSelectorPicksFastestIdleHost(t *testing.T) {
	repo := makeRepo(t, "syr", map[string][2]float64{
		"slow": {1, 0}, "fast": {4, 0}, "loaded": {8, 3},
	})
	sel := &LocalSelector{Site: "syr", Repo: repo}
	g := chainGraph(t, []float64{10}, 0)
	choices, err := sel.SelectHosts(g)
	if err != nil {
		t.Fatal(err)
	}
	c := choices["a"]
	// fast: 10×(1/4)×1 = 2.5; loaded: 10×(1/8)×4 = 5; slow: 10.
	if c.Host != "fast" {
		t.Fatalf("chose %q (pred %v)", c.Host, c.Predicted)
	}
	if c.Predicted != 2.5 {
		t.Fatalf("pred = %v", c.Predicted)
	}
}

func TestLocalSelectorSkipsDownHosts(t *testing.T) {
	repo := makeRepo(t, "syr", map[string][2]float64{"fast": {4, 0}, "slow": {1, 0}})
	repo.Resources.SetDown("fast", true)
	sel := &LocalSelector{Site: "syr", Repo: repo}
	choices, err := sel.SelectHosts(chainGraph(t, []float64{1}, 0))
	if err != nil {
		t.Fatal(err)
	}
	if choices["a"].Host != "slow" {
		t.Fatalf("chose %q", choices["a"].Host)
	}
}

func TestLocalSelectorMachineTypePreference(t *testing.T) {
	repo := makeRepo(t, "syr", map[string][2]float64{"fast": {8, 0}})
	repo.Resources.Register(repository.ResourceStatic{
		HostName: "sgibox", Site: "syr", Arch: "sgi", TotalMemory: 1 << 30, SpeedFactor: 1,
	})
	repo.Resources.UpdateDynamic("sgibox", 0, 1<<30, time.Now())
	g := chainGraph(t, []float64{1}, 0)
	g.Task("a").MachineType = "sgi"
	sel := &LocalSelector{Site: "syr", Repo: repo}
	choices, err := sel.SelectHosts(g)
	if err != nil {
		t.Fatal(err)
	}
	if choices["a"].Host != "sgibox" {
		t.Fatalf("machine-type preference ignored: %q", choices["a"].Host)
	}
}

func TestLocalSelectorTaskConstraints(t *testing.T) {
	repo := makeRepo(t, "syr", map[string][2]float64{"fast": {8, 0}, "slow": {1, 0}})
	repo.Constraints.SetLocation("synthetic.noop", "slow", "/bin/noop")
	sel := &LocalSelector{Site: "syr", Repo: repo}
	choices, err := sel.SelectHosts(chainGraph(t, []float64{1}, 0))
	if err != nil {
		t.Fatal(err)
	}
	if choices["a"].Host != "slow" {
		t.Fatalf("constraint ignored: %q", choices["a"].Host)
	}
}

func TestLocalSelectorNoEligibleHost(t *testing.T) {
	repo := makeRepo(t, "syr", map[string][2]float64{"h": {1, 0}})
	repo.Resources.SetDown("h", true)
	sel := &LocalSelector{Site: "syr", Repo: repo}
	_, err := sel.SelectHosts(chainGraph(t, []float64{1}, 0))
	if !errors.Is(err, ErrNoEligibleHost) {
		t.Fatalf("err = %v", err)
	}
}

func TestLocalSelectorTrialWeightOverridesSpeed(t *testing.T) {
	repo := makeRepo(t, "syr", map[string][2]float64{"a": {1, 0}, "b": {2, 0}})
	// Trial runs discovered that for this function host a is unusually
	// good (weight 0.1) despite its low generic speed — the paper's
	// "a processor may give the best execution time for a specific
	// application, but the worst for another".
	repo.Tasks.Put(repository.TaskRecord{Function: "synthetic.noop", BaseTime: 1})
	repo.Tasks.SetWeight("synthetic.noop", "a", 0.1)
	sel := &LocalSelector{Site: "syr", Repo: repo}
	choices, err := sel.SelectHosts(chainGraph(t, []float64{1}, 0))
	if err != nil {
		t.Fatal(err)
	}
	if choices["a"].Host != "a" {
		t.Fatalf("trial weight ignored: %+v", choices["a"])
	}
}

func TestLocalSelectorMemoryPenalty(t *testing.T) {
	repo := repository.New()
	repo.Resources.Register(repository.ResourceStatic{HostName: "big", Site: "s", TotalMemory: 1 << 30, SpeedFactor: 1})
	repo.Resources.Register(repository.ResourceStatic{HostName: "small", Site: "s", TotalMemory: 1 << 20, SpeedFactor: 2})
	repo.Resources.UpdateDynamic("big", 0, 1<<30, time.Now())
	repo.Resources.UpdateDynamic("small", 0, 1<<20, time.Now())
	g := chainGraph(t, []float64{1}, 0)
	g.Task("a").MemReq = 1 << 29 // fits big, starves small
	sel := &LocalSelector{Site: "s", Repo: repo}
	choices, err := sel.SelectHosts(g)
	if err != nil {
		t.Fatal(err)
	}
	if choices["a"].Host != "big" {
		t.Fatalf("memory penalty ignored: %+v", choices["a"])
	}
}

func TestLocalSelectorParallelTask(t *testing.T) {
	repo := makeRepo(t, "syr", map[string][2]float64{
		"h1": {4, 0}, "h2": {4, 0}, "h3": {1, 0},
	})
	g := chainGraph(t, []float64{8}, 0)
	g.Task("a").Mode = afg.Parallel
	g.Task("a").Processors = 2
	sel := &LocalSelector{Site: "syr", Repo: repo}
	choices, err := sel.SelectHosts(g)
	if err != nil {
		t.Fatal(err)
	}
	c := choices["a"]
	if len(c.Hosts) != 2 {
		t.Fatalf("hosts = %v", c.Hosts)
	}
	for _, h := range c.Hosts {
		if h == "h3" {
			t.Fatal("slow host selected for parallel pair")
		}
	}
	// 8×0.25 = 2 on each fast host, /2 processors = 1.
	if c.Predicted != 1 {
		t.Fatalf("pred = %v", c.Predicted)
	}
}

func TestLocalSelectorForecastHook(t *testing.T) {
	repo := makeRepo(t, "syr", map[string][2]float64{"a": {1, 5}, "b": {1, 0}})
	// Forecast says host a's recorded load 5 is transient and actually 0,
	// and b's 0 is actually 10.
	sel := &LocalSelector{Site: "syr", Repo: repo, Forecast: func(h string, rec float64) float64 {
		if h == "a" {
			return 0
		}
		return 10
	}}
	choices, err := sel.SelectHosts(chainGraph(t, []float64{1}, 0))
	if err != nil {
		t.Fatal(err)
	}
	if choices["a"].Host != "a" {
		t.Fatalf("forecast ignored: %+v", choices["a"])
	}
}

// twoSiteSetup builds local site "syr" (slow hosts) and remote "rome"
// (fast hosts) connected by a configurable-latency WAN.
func twoSiteSetup(t testing.TB, wanLatency time.Duration) (*SiteScheduler, *repository.Repository, *repository.Repository, *netsim.Network) {
	t.Helper()
	syr := makeRepo(t, "syr", map[string][2]float64{"syr-1": {1, 0}, "syr-2": {1, 0}})
	rome := makeRepo(t, "rome", map[string][2]float64{"rome-1": {4, 0}, "rome-2": {4, 0}})
	net := netsim.New(netsim.DefaultLAN, 1)
	net.Connect("syr", "rome", netsim.PathSpec{Latency: wanLatency, Bandwidth: 1e6})
	s := NewSiteScheduler(
		&LocalSelector{Site: "syr", Repo: syr},
		[]HostSelector{&LocalSelector{Site: "rome", Repo: rome}},
		net, 0)
	return s, syr, rome, net
}

func TestSiteSchedulerEntryTaskGoesToFastestSite(t *testing.T) {
	s, _, _, _ := twoSiteSetup(t, 5*time.Millisecond)
	g := chainGraph(t, []float64{10}, 0)
	table, err := s.Schedule(g)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := table.Get("a")
	if a.Site != "rome" {
		t.Fatalf("entry task should go to the fast site: %+v", a)
	}
}

func TestSiteSchedulerCoLocatesHeavyCommunication(t *testing.T) {
	// Child is cheap but its input is huge: shipping it across a slow WAN
	// dwarfs any compute gain, so the child must stay at the parent site.
	s, _, _, _ := twoSiteSetup(t, 2*time.Second)
	g := afg.New("app")
	g.AddTask(&afg.Task{ID: "parent", Function: "f", ComputeCost: 10})
	g.AddTask(&afg.Task{ID: "child", Function: "f", ComputeCost: 0.1})
	g.AddLink(afg.Link{From: "parent", To: "child", Bytes: 100 << 20})
	table, err := s.Schedule(g)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := table.Get("parent")
	c, _ := table.Get("child")
	if p.Site != c.Site {
		t.Fatalf("heavy-comm child split across sites: parent=%s child=%s", p.Site, c.Site)
	}
}

func TestSiteSchedulerTransferAblation(t *testing.T) {
	// Same setup, but with TransferAware off the child chases the faster
	// remote host, ignoring the transfer.
	s, _, _, _ := twoSiteSetup(t, 2*time.Second)
	s.TransferAware = false
	g := afg.New("app")
	g.AddTask(&afg.Task{ID: "parent", Function: "f", ComputeCost: 10})
	g.AddTask(&afg.Task{ID: "child", Function: "f", ComputeCost: 8})
	g.AddLink(afg.Link{From: "parent", To: "child", Bytes: 100 << 20})
	table, err := s.Schedule(g)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := table.Get("child")
	if c.Site != "rome" {
		t.Fatalf("transfer-blind child should chase fast site, got %s", c.Site)
	}
}

func TestSiteSchedulerZeroByteLinksAreEntryLike(t *testing.T) {
	// A child whose inputs carry no data ("does not require any input
	// file") is placed like an entry task: best predicted site.
	s, _, _, _ := twoSiteSetup(t, 2*time.Second)
	g := afg.New("app")
	g.AddTask(&afg.Task{ID: "parent", Function: "f", ComputeCost: 1})
	g.AddTask(&afg.Task{ID: "child", Function: "f", ComputeCost: 10})
	g.AddLink(afg.Link{From: "parent", To: "child", Bytes: 0})
	table, err := s.Schedule(g)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := table.Get("child")
	if c.Site != "rome" {
		t.Fatalf("zero-byte child should go to fast site, got %s", c.Site)
	}
}

func TestSiteSchedulerKNearestLimitsFanOut(t *testing.T) {
	syr := makeRepo(t, "syr", map[string][2]float64{"syr-1": {1, 0}})
	near := makeRepo(t, "near", map[string][2]float64{"near-1": {2, 0}})
	far := makeRepo(t, "far", map[string][2]float64{"far-1": {100, 0}})
	net := netsim.New(netsim.DefaultLAN, 1)
	net.Connect("syr", "near", netsim.PathSpec{Latency: time.Millisecond, Bandwidth: 1e9})
	net.Connect("syr", "far", netsim.PathSpec{Latency: time.Second, Bandwidth: 1e9})
	s := NewSiteScheduler(
		&LocalSelector{Site: "syr", Repo: syr},
		[]HostSelector{
			&LocalSelector{Site: "far", Repo: far},
			&LocalSelector{Site: "near", Repo: near},
		}, net, 1)
	table, err := s.Schedule(chainGraph(t, []float64{10}, 0))
	if err != nil {
		t.Fatal(err)
	}
	a, _ := table.Get("a")
	// k=1 restricts the search to the nearest remote ("near"), so the
	// blazing-fast "far" site must not be used.
	if a.Site == "far" {
		t.Fatal("k-nearest fan-out not honoured")
	}
}

func TestSiteSchedulerValidatesGraph(t *testing.T) {
	s, _, _, _ := twoSiteSetup(t, time.Millisecond)
	if _, err := s.Schedule(afg.New("empty")); err == nil {
		t.Fatal("empty graph accepted")
	}
}

func TestSiteSchedulerNoSites(t *testing.T) {
	s := &SiteScheduler{}
	if _, err := s.Schedule(chainGraph(t, []float64{1}, 0)); !errors.Is(err, ErrNoSites) {
		t.Fatalf("err = %v", err)
	}
}

func TestSiteSchedulerFIFOPriority(t *testing.T) {
	s, _, _, _ := twoSiteSetup(t, time.Millisecond)
	s.Priority = FIFOPriority
	g := chainGraph(t, []float64{1, 2, 3}, 10)
	table, err := s.Schedule(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Entries) != 3 {
		t.Fatalf("entries = %d", len(table.Entries))
	}
}

func TestByLevelOrdering(t *testing.T) {
	levels := map[afg.TaskID]float64{"a": 1, "b": 5, "c": 5, "d": 2}
	got := ByLevel([]afg.TaskID{"a", "c", "d", "b"}, levels)
	want := []afg.TaskID{"b", "c", "d", "a"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v", got)
		}
	}
}

func TestAllocationTablePerSite(t *testing.T) {
	table := NewAllocationTable("app")
	table.Set(Assignment{Task: "a", Site: "syr", Host: "h1"})
	table.Set(Assignment{Task: "b", Site: "rome", Host: "h2"})
	table.Set(Assignment{Task: "c", Site: "syr", Host: "h3"})
	syr := table.PerSite("syr")
	if len(syr) != 2 || syr[0].Task != "a" || syr[1].Task != "c" {
		t.Fatalf("per-site = %+v", syr)
	}
	sites := table.Sites()
	if len(sites) != 2 || sites[0] != "rome" {
		t.Fatalf("sites = %v", sites)
	}
	// Overwriting keeps order stable.
	table.Set(Assignment{Task: "a", Site: "rome", Host: "h9"})
	if o := table.Order(); len(o) != 3 || o[0] != "a" {
		t.Fatalf("order = %v", o)
	}
}

func TestBaselinesProduceCompleteTables(t *testing.T) {
	syr := makeRepo(t, "syr", map[string][2]float64{"s1": {1, 0.5}, "s2": {2, 0.1}})
	rome := makeRepo(t, "rome", map[string][2]float64{"r1": {4, 2}})
	sites := map[string]*repository.Repository{"syr": syr, "rome": rome}
	g := chainGraph(t, []float64{1, 2, 3, 4}, 10)
	for name, s := range map[string]Scheduler{
		"random":     &RandomScheduler{Sites: sites, Seed: 1},
		"roundrobin": &RoundRobinScheduler{Sites: sites},
		"minload":    &MinLoadScheduler{Sites: sites},
		"fastest":    &FastestHostScheduler{Sites: sites},
	} {
		table, err := s.Schedule(g)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(table.Entries) != 4 {
			t.Fatalf("%s: entries = %d", name, len(table.Entries))
		}
	}
}

func TestFastestHostSchedulerSerialises(t *testing.T) {
	syr := makeRepo(t, "syr", map[string][2]float64{"s1": {1, 0}, "s2": {9, 0}})
	f := &FastestHostScheduler{Sites: map[string]*repository.Repository{"syr": syr}}
	table, err := f.Schedule(chainGraph(t, []float64{1, 1}, 0))
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range table.Entries {
		if a.Host != "s2" {
			t.Fatalf("fastest host not used: %+v", a)
		}
	}
}

func TestMinLoadSpreadsTasks(t *testing.T) {
	syr := makeRepo(t, "syr", map[string][2]float64{"s1": {1, 0}, "s2": {1, 0}})
	m := &MinLoadScheduler{Sites: map[string]*repository.Repository{"syr": syr}}
	g := afg.New("wide")
	for i := 0; i < 4; i++ {
		g.AddTask(&afg.Task{ID: afg.TaskID(rune('a' + i)), Function: "f", ComputeCost: 1})
	}
	table, err := m.Schedule(g)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, a := range table.Entries {
		counts[a.Host]++
	}
	if counts["s1"] != 2 || counts["s2"] != 2 {
		t.Fatalf("min-load did not spread: %v", counts)
	}
}

func TestBaselinesEmptySites(t *testing.T) {
	g := chainGraph(t, []float64{1}, 0)
	empty := map[string]*repository.Repository{}
	if _, err := (&RandomScheduler{Sites: empty}).Schedule(g); !errors.Is(err, ErrNoEligibleHost) {
		t.Fatalf("err = %v", err)
	}
	if _, err := (&MinLoadScheduler{Sites: empty}).Schedule(g); !errors.Is(err, ErrNoEligibleHost) {
		t.Fatalf("err = %v", err)
	}
}

// --- Simulation ------------------------------------------------------------

func unitModel(task *afg.Task, host string) float64 { return task.ComputeCost }

func TestSimulateChainMakespan(t *testing.T) {
	g := chainGraph(t, []float64{1, 2, 3}, 0)
	table := NewAllocationTable("chain")
	for _, id := range g.TaskIDs() {
		table.Set(Assignment{Task: id, Site: "s", Host: "h"})
	}
	mk, err := Simulate(g, table, unitModel, nil)
	if err != nil {
		t.Fatal(err)
	}
	if mk != 6 {
		t.Fatalf("makespan = %v, want 6", mk)
	}
}

func TestSimulateParallelBranchesOverlap(t *testing.T) {
	g := afg.New("fork")
	g.AddTask(&afg.Task{ID: "a", Function: "f", ComputeCost: 1})
	g.AddTask(&afg.Task{ID: "b", Function: "f", ComputeCost: 5})
	g.AddTask(&afg.Task{ID: "c", Function: "f", ComputeCost: 5})
	g.AddLink(afg.Link{From: "a", To: "b"})
	g.AddLink(afg.Link{From: "a", To: "c"})
	table := NewAllocationTable("fork")
	table.Set(Assignment{Task: "a", Site: "s", Host: "h1"})
	table.Set(Assignment{Task: "b", Site: "s", Host: "h1"})
	table.Set(Assignment{Task: "c", Site: "s", Host: "h2"})
	mk, err := Simulate(g, table, unitModel, nil)
	if err != nil {
		t.Fatal(err)
	}
	if mk != 6 { // branches overlap on different hosts
		t.Fatalf("makespan = %v, want 6", mk)
	}
	// Same host: serialised.
	table.Set(Assignment{Task: "c", Site: "s", Host: "h1"})
	mk, err = Simulate(g, table, unitModel, nil)
	if err != nil {
		t.Fatal(err)
	}
	if mk != 11 {
		t.Fatalf("serialised makespan = %v, want 11", mk)
	}
}

func TestSimulateChargesWANTransfers(t *testing.T) {
	net := netsim.New(netsim.DefaultLAN, 1)
	net.Connect("syr", "rome", netsim.PathSpec{Latency: time.Second, Bandwidth: 1e9})
	g := chainGraph(t, []float64{1, 1}, 10)
	table := NewAllocationTable("x")
	table.Set(Assignment{Task: "a", Site: "syr", Host: "h1"})
	table.Set(Assignment{Task: "b", Site: "rome", Host: "h2"})
	mk, err := Simulate(g, table, unitModel, net)
	if err != nil {
		t.Fatal(err)
	}
	if mk < 3 { // 1 + ~1s transfer + 1
		t.Fatalf("makespan = %v, WAN transfer not charged", mk)
	}
}

func TestSimulateParallelTaskUsesAllHosts(t *testing.T) {
	g := afg.New("par")
	g.AddTask(&afg.Task{ID: "p", Function: "f", ComputeCost: 8, Mode: afg.Parallel, Processors: 4})
	table := NewAllocationTable("par")
	table.Set(Assignment{Task: "p", Site: "s", Host: "h1", Hosts: []string{"h1", "h2", "h3", "h4"}})
	mk, err := Simulate(g, table, unitModel, nil)
	if err != nil {
		t.Fatal(err)
	}
	if mk != 2 { // 8 / 4 hosts
		t.Fatalf("makespan = %v, want 2", mk)
	}
}

func TestSimulateMissingAssignment(t *testing.T) {
	g := chainGraph(t, []float64{1}, 0)
	if _, err := Simulate(g, NewAllocationTable("x"), unitModel, nil); err == nil {
		t.Fatal("missing assignment accepted")
	}
}

func TestCommVolume(t *testing.T) {
	net := netsim.New(netsim.DefaultLAN, 1)
	net.Connect("syr", "rome", netsim.PathSpec{Latency: time.Second, Bandwidth: 1e6})
	g := chainGraph(t, []float64{1, 1, 1}, 1000)
	table := NewAllocationTable("x")
	table.Set(Assignment{Task: "a", Site: "syr", Host: "h1"})
	table.Set(Assignment{Task: "b", Site: "syr", Host: "h1"}) // same host: free
	table.Set(Assignment{Task: "c", Site: "rome", Host: "h2"})
	v := CommVolume(g, table, net)
	want := net.TransferTime("syr", "rome", 1000).Seconds()
	if v != want { //vdce:ignore floateq single-link graph: CommVolume is exactly one TransferTime term, no accumulation
		t.Fatalf("comm = %v, want %v", v, want)
	}
	if CommVolume(g, table, nil) != 0 {
		t.Fatal("nil net should report 0")
	}
}

// Property: the site scheduler produces a complete, valid table for random
// DAGs and its simulated makespan is at least the critical path on the
// fastest effective host.
func TestPropertySiteSchedulerComplete(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s, _, _, net := twoSiteSetup(t, 10*time.Millisecond)
		g := afg.New("rand")
		layers := 2 + rng.Intn(4)
		var prev []afg.TaskID
		n := 0
		for l := 0; l < layers; l++ {
			width := 1 + rng.Intn(4)
			var cur []afg.TaskID
			for w := 0; w < width; w++ {
				id := afg.TaskID(string(rune('a'+l)) + string(rune('0'+w)))
				g.AddTask(&afg.Task{ID: id, Function: "f", ComputeCost: 0.5 + rng.Float64()*4,
					OutputBytes: int64(rng.Intn(1 << 20))})
				cur = append(cur, id)
				n++
			}
			for _, c := range cur {
				for _, p := range prev {
					if rng.Float64() < 0.4 {
						g.AddLink(afg.Link{From: p, To: c})
					}
				}
			}
			prev = cur
		}
		table, err := s.Schedule(g)
		if err != nil {
			return false
		}
		if len(table.Entries) != n {
			return false
		}
		mk, err := Simulate(g, table, func(task *afg.Task, host string) float64 {
			return task.ComputeCost / 4 // fastest hosts are 4x
		}, net)
		if err != nil {
			return false
		}
		cp, _ := g.CriticalPathLength()
		return mk >= cp/4-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPredictionBeatsBaselinesUnderSkew(t *testing.T) {
	// Heterogeneous, skew-loaded pool: the prediction-driven scheduler
	// should find a makespan no worse than random placement. This is the
	// paper's central scheduling claim in miniature.
	rng := rand.New(rand.NewSource(7))
	hosts := map[string][2]float64{}
	for i := 0; i < 8; i++ {
		hosts[string(rune('a'+i))] = [2]float64{1 + rng.Float64()*7, rng.Float64() * 4}
	}
	repo := makeRepo(t, "syr", hosts)
	net := netsim.New(netsim.DefaultLAN, 1)
	vdce := NewSiteScheduler(&LocalSelector{Site: "syr", Repo: repo}, nil, net, 0)
	sites := map[string]*repository.Repository{"syr": repo}

	g := afg.New("load")
	for i := 0; i < 30; i++ {
		g.AddTask(&afg.Task{ID: afg.TaskID(rune('A' + i)), Function: "f", ComputeCost: 1 + rng.Float64()*5})
	}
	truth := func(task *afg.Task, host string) float64 {
		h := hosts[host]
		return task.ComputeCost / h[0] * (1 + h[1])
	}
	vdceTable, err := vdce.Schedule(g)
	if err != nil {
		t.Fatal(err)
	}
	vdceMk, err := Simulate(g, vdceTable, truth, net)
	if err != nil {
		t.Fatal(err)
	}
	randTable, err := (&RandomScheduler{Sites: sites, Seed: 42}).Schedule(g)
	if err != nil {
		t.Fatal(err)
	}
	randMk, err := Simulate(g, randTable, truth, net)
	if err != nil {
		t.Fatal(err)
	}
	if vdceMk > randMk {
		t.Fatalf("prediction-driven makespan %v worse than random %v", vdceMk, randMk)
	}
}
