// Package repository implements the VDCE Site Repository: the web-based
// storage environment within a VDCE site (paper §2), consisting of four
// databases — user accounts, resource performance, task performance, and
// task constraints. All databases are safe for concurrent use (the Site
// Manager, Application Scheduler, and Monitor daemons all read/write them)
// and the whole repository serialises to JSON for persistence.
package repository

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Sentinel errors.
var (
	ErrNotFound      = errors.New("repository: not found")
	ErrDuplicate     = errors.New("repository: duplicate entry")
	ErrAuthFailed    = errors.New("repository: authentication failed")
	ErrInvalidRecord = errors.New("repository: invalid record")
)

// ---------------------------------------------------------------------------
// User-accounts database
// ---------------------------------------------------------------------------

// UserAccount is the paper's 5-tuple: user name, password, user ID,
// priority, and access domain type.
type UserAccount struct {
	UserName     string `json:"userName"`
	Password     string `json:"password"` // the 1997 paper stores it plainly; so do we
	UserID       int    `json:"userID"`
	Priority     int    `json:"priority"`
	AccessDomain string `json:"accessDomain"` // e.g. "local", "wide-area"
}

// UserAccountsDB handles user authentication.
type UserAccountsDB struct {
	mu       sync.RWMutex
	accounts map[string]UserAccount
	nextID   int
}

// NewUserAccountsDB returns an empty accounts database.
func NewUserAccountsDB() *UserAccountsDB {
	return &UserAccountsDB{accounts: make(map[string]UserAccount), nextID: 1}
}

// Add registers a new account, assigning the next user ID if a.UserID == 0.
func (db *UserAccountsDB) Add(a UserAccount) (UserAccount, error) {
	if a.UserName == "" {
		return a, fmt.Errorf("%w: empty user name", ErrInvalidRecord)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.accounts[a.UserName]; ok {
		return a, fmt.Errorf("%w: user %q", ErrDuplicate, a.UserName)
	}
	if a.UserID == 0 {
		a.UserID = db.nextID
	}
	if a.UserID >= db.nextID {
		db.nextID = a.UserID + 1
	}
	db.accounts[a.UserName] = a
	return a, nil
}

// Authenticate checks a user/password pair and returns the account.
func (db *UserAccountsDB) Authenticate(user, password string) (UserAccount, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	a, ok := db.accounts[user]
	if !ok || a.Password != password {
		return UserAccount{}, ErrAuthFailed
	}
	return a, nil
}

// Get returns the account for user.
func (db *UserAccountsDB) Get(user string) (UserAccount, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	a, ok := db.accounts[user]
	if !ok {
		return UserAccount{}, fmt.Errorf("%w: user %q", ErrNotFound, user)
	}
	return a, nil
}

// Len returns the number of accounts.
func (db *UserAccountsDB) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.accounts)
}

func (db *UserAccountsDB) snapshot() []UserAccount {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]UserAccount, 0, len(db.accounts))
	for _, a := range db.accounts {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].UserName < out[j].UserName })
	return out
}

// ---------------------------------------------------------------------------
// Resource-performance database
// ---------------------------------------------------------------------------

// ResourceStatic holds the attributes "stored in the database once during
// the initial configuration of VDCE".
type ResourceStatic struct {
	HostName    string  `json:"hostName"`
	IPAddr      string  `json:"ipAddr"`
	Site        string  `json:"site"`
	Arch        string  `json:"arch"`
	OSType      string  `json:"osType"`
	TotalMemory int64   `json:"totalMemory"`
	SpeedFactor float64 `json:"speedFactor"`
}

// ResourceDynamic holds the periodically updated attributes: "recent load
// measurement and available memory size", plus up/down state from the
// failure detector.
type ResourceDynamic struct {
	Load            float64   `json:"load"`
	AvailableMemory int64     `json:"availableMemory"`
	Down            bool      `json:"down"`
	UpdatedAt       time.Time `json:"updatedAt"`
}

// ResourceRecord is one host's full entry.
type ResourceRecord struct {
	Static  ResourceStatic  `json:"static"`
	Dynamic ResourceDynamic `json:"dynamic"`
}

// ResourcePerfDB is the resource-performance database.
type ResourcePerfDB struct {
	mu      sync.RWMutex
	records map[string]*ResourceRecord
	updates int // count of dynamic updates, for monitoring-traffic accounting
}

// NewResourcePerfDB returns an empty resource database.
func NewResourcePerfDB() *ResourcePerfDB {
	return &ResourcePerfDB{records: make(map[string]*ResourceRecord)}
}

// Register inserts a host's static attributes (initial configuration).
func (db *ResourcePerfDB) Register(s ResourceStatic) error {
	if s.HostName == "" {
		return fmt.Errorf("%w: empty host name", ErrInvalidRecord)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.records[s.HostName]; ok {
		return fmt.Errorf("%w: host %q", ErrDuplicate, s.HostName)
	}
	db.records[s.HostName] = &ResourceRecord{
		Static:  s,
		Dynamic: ResourceDynamic{AvailableMemory: s.TotalMemory},
	}
	return nil
}

// Remove deletes a host entirely ("whenever a resource is added or removed
// from the VDCE").
func (db *ResourcePerfDB) Remove(host string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.records[host]; !ok {
		return fmt.Errorf("%w: host %q", ErrNotFound, host)
	}
	delete(db.records, host)
	return nil
}

// UpdateDynamic stores a new load/memory measurement for host.
func (db *ResourcePerfDB) UpdateDynamic(host string, load float64, availMem int64, at time.Time) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	r, ok := db.records[host]
	if !ok {
		return fmt.Errorf("%w: host %q", ErrNotFound, host)
	}
	r.Dynamic.Load = load
	r.Dynamic.AvailableMemory = availMem
	r.Dynamic.UpdatedAt = at
	db.updates++
	return nil
}

// SetDown marks a host down (failure detected) or up (recovered).
func (db *ResourcePerfDB) SetDown(host string, down bool) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	r, ok := db.records[host]
	if !ok {
		return fmt.Errorf("%w: host %q", ErrNotFound, host)
	}
	r.Dynamic.Down = down
	return nil
}

// Get returns a copy of the record for host.
func (db *ResourcePerfDB) Get(host string) (ResourceRecord, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	r, ok := db.records[host]
	if !ok {
		return ResourceRecord{}, fmt.Errorf("%w: host %q", ErrNotFound, host)
	}
	return *r, nil
}

// List returns all records sorted by host name.
func (db *ResourcePerfDB) List() []ResourceRecord {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]ResourceRecord, 0, len(db.records))
	for _, r := range db.records {
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Static.HostName < out[j].Static.HostName })
	return out
}

// UpHosts returns the names of hosts not marked down, sorted.
func (db *ResourcePerfDB) UpHosts() []string {
	var out []string
	for _, r := range db.List() {
		if !r.Dynamic.Down {
			out = append(out, r.Static.HostName)
		}
	}
	return out
}

// UpdateCount returns the number of dynamic updates applied; the Fig 6
// monitoring benchmark uses it to quantify update traffic saved by
// change filtering.
func (db *ResourcePerfDB) UpdateCount() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.updates
}

// ---------------------------------------------------------------------------
// Task-performance database
// ---------------------------------------------------------------------------

// ExecutionSample is one measured run of a task, appended after application
// execution completes ("the newly measured execution time of each
// application task is stored in the task-performance database").
type ExecutionSample struct {
	Host    string        `json:"host"`
	Elapsed time.Duration `json:"elapsed"`
	At      time.Time     `json:"at"`
}

// TaskRecord holds a task implementation's performance characteristics:
// computation size (base time), communication size, required memory, the
// per-host computing-power weights obtained from trial runs, and the
// history of measured executions.
type TaskRecord struct {
	Function  string             `json:"function"`
	BaseTime  float64            `json:"baseTime"` // seconds on base processor, unit input
	MemReq    int64              `json:"memReq"`
	CommBytes int64              `json:"commBytes"`
	Weights   map[string]float64 `json:"weights,omitempty"` // host -> weight vs base
	History   []ExecutionSample  `json:"history,omitempty"`
}

// TaskPerfDB is the task-performance database.
type TaskPerfDB struct {
	mu      sync.RWMutex
	records map[string]*TaskRecord
	maxHist int
}

// NewTaskPerfDB returns an empty task-performance database keeping at most
// maxHistory samples per task (0 means a sensible default).
func NewTaskPerfDB(maxHistory int) *TaskPerfDB {
	if maxHistory <= 0 {
		maxHistory = 256
	}
	return &TaskPerfDB{records: make(map[string]*TaskRecord), maxHist: maxHistory}
}

// Put installs or replaces a task record (weights map is copied).
func (db *TaskPerfDB) Put(r TaskRecord) error {
	if r.Function == "" {
		return fmt.Errorf("%w: empty function", ErrInvalidRecord)
	}
	cp := r
	cp.Weights = make(map[string]float64, len(r.Weights))
	for k, v := range r.Weights {
		cp.Weights[k] = v
	}
	cp.History = append([]ExecutionSample(nil), r.History...)
	db.mu.Lock()
	defer db.mu.Unlock()
	db.records[r.Function] = &cp
	return nil
}

// Get returns a copy of the record for function.
func (db *TaskPerfDB) Get(function string) (TaskRecord, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	r, ok := db.records[function]
	if !ok {
		return TaskRecord{}, fmt.Errorf("%w: task %q", ErrNotFound, function)
	}
	cp := *r
	cp.Weights = make(map[string]float64, len(r.Weights))
	for k, v := range r.Weights {
		cp.Weights[k] = v
	}
	cp.History = append([]ExecutionSample(nil), r.History...)
	return cp, nil
}

// SetWeight records the computing-power weight of host for function.
func (db *TaskPerfDB) SetWeight(function, host string, weight float64) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	r, ok := db.records[function]
	if !ok {
		return fmt.Errorf("%w: task %q", ErrNotFound, function)
	}
	if r.Weights == nil {
		r.Weights = make(map[string]float64)
	}
	r.Weights[host] = weight
	return nil
}

// Weight returns the computing-power weight of host for function; ok
// reports whether a trial-run weight exists.
func (db *TaskPerfDB) Weight(function, host string) (float64, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	r, ok := db.records[function]
	if !ok || r.Weights == nil {
		return 0, false
	}
	w, ok := r.Weights[host]
	return w, ok
}

// RecordExecution appends a measured sample, trimming history to the cap.
func (db *TaskPerfDB) RecordExecution(function string, s ExecutionSample) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	r, ok := db.records[function]
	if !ok {
		return fmt.Errorf("%w: task %q", ErrNotFound, function)
	}
	r.History = append(r.History, s)
	if len(r.History) > db.maxHist {
		r.History = r.History[len(r.History)-db.maxHist:]
	}
	return nil
}

// Functions returns all known function names, sorted.
func (db *TaskPerfDB) Functions() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.records))
	for f := range db.records {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// ---------------------------------------------------------------------------
// Task-constraints database
// ---------------------------------------------------------------------------

// TaskConstraintsDB maps each task function to the hosts that hold its
// executable and the absolute path there ("Due to specific library
// requirements, some task executables may reside only on some of the
// hosts").
type TaskConstraintsDB struct {
	mu    sync.RWMutex
	paths map[string]map[string]string // function -> host -> executable path
}

// NewTaskConstraintsDB returns an empty constraints database.
func NewTaskConstraintsDB() *TaskConstraintsDB {
	return &TaskConstraintsDB{paths: make(map[string]map[string]string)}
}

// SetLocation records that function's executable lives at path on host.
func (db *TaskConstraintsDB) SetLocation(function, host, path string) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.paths[function] == nil {
		db.paths[function] = make(map[string]string)
	}
	db.paths[function][host] = path
}

// Location returns the executable path of function on host.
func (db *TaskConstraintsDB) Location(function, host string) (string, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	p, ok := db.paths[function][host]
	return p, ok
}

// EligibleHosts returns the hosts that can run function, sorted. An empty
// constraints entry means the function is available everywhere; in that
// case nil is returned and the caller treats every host as eligible.
func (db *TaskConstraintsDB) EligibleHosts(function string) []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	m, ok := db.paths[function]
	if !ok {
		return nil
	}
	out := make([]string, 0, len(m))
	for h := range m {
		out = append(out, h)
	}
	sort.Strings(out)
	return out
}

// CanRun reports whether host may execute function (true when the function
// is unconstrained).
func (db *TaskConstraintsDB) CanRun(function, host string) bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	m, ok := db.paths[function]
	if !ok {
		return true
	}
	_, ok = m[host]
	return ok
}

// ---------------------------------------------------------------------------
// Aggregate repository with JSON persistence
// ---------------------------------------------------------------------------

// Repository bundles the four site databases plus the stored-application
// shelf ("the user may store the application flow graph for future use").
type Repository struct {
	Users       *UserAccountsDB
	Resources   *ResourcePerfDB
	Tasks       *TaskPerfDB
	Constraints *TaskConstraintsDB
	Apps        *AppStore
}

// New returns a repository with all databases empty.
func New() *Repository {
	return &Repository{
		Users:       NewUserAccountsDB(),
		Resources:   NewResourcePerfDB(),
		Tasks:       NewTaskPerfDB(0),
		Constraints: NewTaskConstraintsDB(),
		Apps:        NewAppStore(),
	}
}

type wireRepo struct {
	Users       []UserAccount                `json:"users"`
	Resources   []ResourceRecord             `json:"resources"`
	Tasks       []TaskRecord                 `json:"tasks"`
	Constraints map[string]map[string]string `json:"constraints"`
	Apps        []StoredApp                  `json:"apps,omitempty"`
}

// MarshalJSON serialises the full repository deterministically.
func (r *Repository) MarshalJSON() ([]byte, error) {
	w := wireRepo{
		Users:     r.Users.snapshot(),
		Resources: r.Resources.List(),
	}
	for _, f := range r.Tasks.Functions() {
		rec, err := r.Tasks.Get(f)
		if err != nil {
			return nil, err
		}
		w.Tasks = append(w.Tasks, rec)
	}
	r.Constraints.mu.RLock()
	w.Constraints = make(map[string]map[string]string, len(r.Constraints.paths))
	for f, m := range r.Constraints.paths {
		cp := make(map[string]string, len(m))
		for h, p := range m {
			cp[h] = p
		}
		w.Constraints[f] = cp
	}
	r.Constraints.mu.RUnlock()
	r.Apps.mu.RLock()
	for _, app := range r.Apps.apps {
		w.Apps = append(w.Apps, app)
	}
	r.Apps.mu.RUnlock()
	sort.Slice(w.Apps, func(i, j int) bool {
		if w.Apps[i].Owner != w.Apps[j].Owner {
			return w.Apps[i].Owner < w.Apps[j].Owner
		}
		return w.Apps[i].Name < w.Apps[j].Name
	})
	return json.Marshal(w)
}

// UnmarshalJSON restores a repository serialised by MarshalJSON.
func (r *Repository) UnmarshalJSON(data []byte) error {
	var w wireRepo
	if err := json.Unmarshal(data, &w); err != nil {
		return fmt.Errorf("repository: decode: %w", err)
	}
	fresh := New()
	for _, a := range w.Users {
		if _, err := fresh.Users.Add(a); err != nil {
			return err
		}
	}
	for _, rec := range w.Resources {
		if err := fresh.Resources.Register(rec.Static); err != nil {
			return err
		}
		d := rec.Dynamic
		if err := fresh.Resources.UpdateDynamic(rec.Static.HostName, d.Load, d.AvailableMemory, d.UpdatedAt); err != nil {
			return err
		}
		if d.Down {
			if err := fresh.Resources.SetDown(rec.Static.HostName, true); err != nil {
				return err
			}
		}
	}
	for _, tr := range w.Tasks {
		if err := fresh.Tasks.Put(tr); err != nil {
			return err
		}
	}
	//vdce:ignore maporder SetLocation writes each (function, host) key exactly once; call order commutes
	for f, m := range w.Constraints {
		for h, p := range m { //vdce:ignore maporder same: one keyed write per (function, host) pair
			fresh.Constraints.SetLocation(f, h, p)
		}
	}
	for _, app := range w.Apps {
		if err := fresh.Apps.Save(app.Owner, app.Name, app.AFG, app.SavedAt); err != nil {
			return err
		}
	}
	*r = *fresh
	return nil
}
