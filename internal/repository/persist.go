package repository

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// File persistence for the "web-based storage environment": the paper's
// site repository survives across server restarts. SaveFile writes
// atomically (temp file + rename) so a crash mid-save never corrupts the
// repository.

// SaveFile serialises the repository to path.
func (r *Repository) SaveFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("repository: encode: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".repo-*.json")
	if err != nil {
		return fmt.Errorf("repository: temp file: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("repository: write: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("repository: rename: %w", err)
	}
	return nil
}

// LoadFile restores a repository saved by SaveFile.
func LoadFile(path string) (*Repository, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("repository: read: %w", err)
	}
	r := New()
	if err := json.Unmarshal(data, r); err != nil {
		return nil, err
	}
	return r, nil
}
