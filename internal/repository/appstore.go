package repository

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// AppStore holds stored application flow graphs: "the user may either
// submit the application for execution in the VDCE or he/she may store the
// application flow graph for future use" (§2.1). Graphs are stored as their
// JSON wire form, keyed by (owner, name), so the store does not depend on
// the afg package.
type AppStore struct {
	mu   sync.RWMutex
	apps map[string]StoredApp
}

// StoredApp is one saved application.
type StoredApp struct {
	Owner   string    `json:"owner"` // user name from the accounts DB
	Name    string    `json:"name"`
	AFG     []byte    `json:"afg"` // JSON wire form
	SavedAt time.Time `json:"savedAt"`
}

func appKey(owner, name string) string { return owner + "\x00" + name }

// NewAppStore returns an empty store.
func NewAppStore() *AppStore {
	return &AppStore{apps: make(map[string]StoredApp)}
}

// Save stores (or overwrites) an application.
func (s *AppStore) Save(owner, name string, afgJSON []byte, at time.Time) error {
	if owner == "" || name == "" {
		return fmt.Errorf("%w: owner and name required", ErrInvalidRecord)
	}
	if len(afgJSON) == 0 {
		return fmt.Errorf("%w: empty graph", ErrInvalidRecord)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.apps[appKey(owner, name)] = StoredApp{
		Owner: owner, Name: name,
		AFG:     append([]byte(nil), afgJSON...),
		SavedAt: at,
	}
	return nil
}

// Load retrieves a stored application.
func (s *AppStore) Load(owner, name string) (StoredApp, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	app, ok := s.apps[appKey(owner, name)]
	if !ok {
		return StoredApp{}, fmt.Errorf("%w: app %s/%s", ErrNotFound, owner, name)
	}
	app.AFG = append([]byte(nil), app.AFG...)
	return app, nil
}

// Delete removes a stored application.
func (s *AppStore) Delete(owner, name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	k := appKey(owner, name)
	if _, ok := s.apps[k]; !ok {
		return fmt.Errorf("%w: app %s/%s", ErrNotFound, owner, name)
	}
	delete(s.apps, k)
	return nil
}

// List returns the owner's stored application names, sorted.
func (s *AppStore) List(owner string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []string
	for _, app := range s.apps {
		if app.Owner == owner {
			out = append(out, app.Name)
		}
	}
	sort.Strings(out)
	return out
}
