package repository

import (
	"encoding/json"
	"errors"
	"testing"
	"time"
)

func TestAppStoreSaveLoadDelete(t *testing.T) {
	s := NewAppStore()
	at := time.Unix(100, 0).UTC()
	if err := s.Save("haluk", "solver", []byte(`{"name":"solver"}`), at); err != nil {
		t.Fatal(err)
	}
	app, err := s.Load("haluk", "solver")
	if err != nil {
		t.Fatal(err)
	}
	if string(app.AFG) != `{"name":"solver"}` || !app.SavedAt.Equal(at) {
		t.Fatalf("app = %+v", app)
	}
	// Returned bytes do not alias the store.
	app.AFG[0] = 'X'
	again, _ := s.Load("haluk", "solver")
	if again.AFG[0] == 'X' {
		t.Fatal("store aliased")
	}
	if err := s.Delete("haluk", "solver"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Load("haluk", "solver"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	if err := s.Delete("haluk", "solver"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestAppStoreValidation(t *testing.T) {
	s := NewAppStore()
	if err := s.Save("", "x", []byte("{}"), time.Now()); !errors.Is(err, ErrInvalidRecord) {
		t.Fatalf("err = %v", err)
	}
	if err := s.Save("u", "", []byte("{}"), time.Now()); !errors.Is(err, ErrInvalidRecord) {
		t.Fatalf("err = %v", err)
	}
	if err := s.Save("u", "x", nil, time.Now()); !errors.Is(err, ErrInvalidRecord) {
		t.Fatalf("err = %v", err)
	}
}

func TestAppStoreListPerOwner(t *testing.T) {
	s := NewAppStore()
	s.Save("a", "z-app", []byte("{}"), time.Now())
	s.Save("a", "a-app", []byte("{}"), time.Now())
	s.Save("b", "other", []byte("{}"), time.Now())
	got := s.List("a")
	if len(got) != 2 || got[0] != "a-app" || got[1] != "z-app" {
		t.Fatalf("list = %v", got)
	}
	if len(s.List("nobody")) != 0 {
		t.Fatal("phantom apps")
	}
}

func TestAppStoreSurvivesRepositoryRoundTrip(t *testing.T) {
	r := New()
	at := time.Unix(42, 0).UTC()
	r.Apps.Save("u", "stored", []byte(`{"name":"g"}`), at)
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	back := New()
	if err := json.Unmarshal(data, back); err != nil {
		t.Fatal(err)
	}
	app, err := back.Apps.Load("u", "stored")
	if err != nil || string(app.AFG) != `{"name":"g"}` || !app.SavedAt.Equal(at) {
		t.Fatalf("app = %+v err=%v", app, err)
	}
}
