package repository

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "site.json")

	r := New()
	r.Users.Add(UserAccount{UserName: "u", Password: "p", Priority: 2})
	r.Resources.Register(ResourceStatic{HostName: "n1", Site: "syr", SpeedFactor: 3, TotalMemory: 1 << 20})
	r.Resources.UpdateDynamic("n1", 0.8, 1<<19, time.Unix(55, 0).UTC())
	r.Tasks.Put(TaskRecord{Function: "matrix.lu", BaseTime: 0.02, Weights: map[string]float64{"n1": 0.33}})
	r.Constraints.SetLocation("matrix.lu", "n1", "/opt/lu")

	if err := r.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := back.Users.Authenticate("u", "p"); err != nil {
		t.Fatal("user lost")
	}
	rec, err := back.Resources.Get("n1")
	if err != nil || rec.Dynamic.Load != 0.8 || rec.Static.SpeedFactor != 3 {
		t.Fatalf("resource lost: %+v err=%v", rec, err)
	}
	if w, ok := back.Tasks.Weight("matrix.lu", "n1"); !ok || w != 0.33 {
		t.Fatal("weight lost")
	}
	if p, ok := back.Constraints.Location("matrix.lu", "n1"); !ok || p != "/opt/lu" {
		t.Fatal("constraint lost")
	}
}

func TestSaveFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "site.json")
	r := New()
	r.Resources.Register(ResourceStatic{HostName: "keep"})
	if err := r.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	// Overwrite succeeds and leaves no temp droppings.
	r.Resources.Register(ResourceStatic{HostName: "more"})
	if err := r.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("leftover files: %v", entries)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Resources.List()) != 2 {
		t.Fatal("second save lost data")
	}
}

func TestLoadFileErrors(t *testing.T) {
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
	path := filepath.Join(t.TempDir(), "garbage.json")
	os.WriteFile(path, []byte("{nope"), 0o644)
	if _, err := LoadFile(path); err == nil {
		t.Fatal("garbage accepted")
	}
}
