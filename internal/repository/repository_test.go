package repository

import (
	"encoding/json"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestUserAddAndAuthenticate(t *testing.T) {
	db := NewUserAccountsDB()
	a, err := db.Add(UserAccount{UserName: "haluk", Password: "pw", Priority: 5, AccessDomain: "wide-area"})
	if err != nil {
		t.Fatal(err)
	}
	if a.UserID != 1 {
		t.Fatalf("assigned id = %d", a.UserID)
	}
	got, err := db.Authenticate("haluk", "pw")
	if err != nil {
		t.Fatal(err)
	}
	if got.Priority != 5 || got.AccessDomain != "wide-area" {
		t.Fatalf("got %+v", got)
	}
}

func TestUserAuthenticateFailures(t *testing.T) {
	db := NewUserAccountsDB()
	db.Add(UserAccount{UserName: "u", Password: "right"})
	if _, err := db.Authenticate("u", "wrong"); !errors.Is(err, ErrAuthFailed) {
		t.Fatalf("err = %v", err)
	}
	if _, err := db.Authenticate("nobody", "x"); !errors.Is(err, ErrAuthFailed) {
		t.Fatalf("err = %v", err)
	}
}

func TestUserDuplicateAndIDSequence(t *testing.T) {
	db := NewUserAccountsDB()
	db.Add(UserAccount{UserName: "a"})
	if _, err := db.Add(UserAccount{UserName: "a"}); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("err = %v", err)
	}
	b, _ := db.Add(UserAccount{UserName: "b", UserID: 10})
	if b.UserID != 10 {
		t.Fatalf("explicit id lost: %d", b.UserID)
	}
	c, _ := db.Add(UserAccount{UserName: "c"})
	if c.UserID != 11 {
		t.Fatalf("sequence should continue after explicit id: %d", c.UserID)
	}
	if _, err := db.Add(UserAccount{}); !errors.Is(err, ErrInvalidRecord) {
		t.Fatalf("err = %v", err)
	}
}

func TestResourceRegisterAndUpdate(t *testing.T) {
	db := NewResourcePerfDB()
	s := ResourceStatic{HostName: "n1", Site: "syr", Arch: "solaris", TotalMemory: 1 << 26, SpeedFactor: 2}
	if err := db.Register(s); err != nil {
		t.Fatal(err)
	}
	r, err := db.Get("n1")
	if err != nil {
		t.Fatal(err)
	}
	if r.Dynamic.AvailableMemory != 1<<26 {
		t.Fatalf("initial avail mem = %d", r.Dynamic.AvailableMemory)
	}
	now := time.Now()
	if err := db.UpdateDynamic("n1", 0.7, 1<<25, now); err != nil {
		t.Fatal(err)
	}
	r, _ = db.Get("n1")
	if r.Dynamic.Load != 0.7 || r.Dynamic.AvailableMemory != 1<<25 || !r.Dynamic.UpdatedAt.Equal(now) {
		t.Fatalf("dynamic = %+v", r.Dynamic)
	}
	if db.UpdateCount() != 1 {
		t.Fatalf("updates = %d", db.UpdateCount())
	}
}

func TestResourceErrors(t *testing.T) {
	db := NewResourcePerfDB()
	if err := db.Register(ResourceStatic{}); !errors.Is(err, ErrInvalidRecord) {
		t.Fatalf("err = %v", err)
	}
	db.Register(ResourceStatic{HostName: "n1"})
	if err := db.Register(ResourceStatic{HostName: "n1"}); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("err = %v", err)
	}
	if err := db.UpdateDynamic("ghost", 0, 0, time.Now()); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	if err := db.SetDown("ghost", true); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	if err := db.Remove("ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestResourceDownAndRemove(t *testing.T) {
	db := NewResourcePerfDB()
	db.Register(ResourceStatic{HostName: "a"})
	db.Register(ResourceStatic{HostName: "b"})
	db.SetDown("a", true)
	up := db.UpHosts()
	if len(up) != 1 || up[0] != "b" {
		t.Fatalf("up = %v", up)
	}
	db.SetDown("a", false)
	if len(db.UpHosts()) != 2 {
		t.Fatal("host a should be back up")
	}
	if err := db.Remove("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get("a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestTaskPerfPutGetIsolation(t *testing.T) {
	db := NewTaskPerfDB(0)
	rec := TaskRecord{Function: "matrix.lu", BaseTime: 2.5, MemReq: 1 << 20, Weights: map[string]float64{"h1": 0.5}}
	if err := db.Put(rec); err != nil {
		t.Fatal(err)
	}
	// Mutating the caller's map must not affect the stored record.
	rec.Weights["h1"] = 99
	got, err := db.Get("matrix.lu")
	if err != nil {
		t.Fatal(err)
	}
	if got.Weights["h1"] != 0.5 {
		t.Fatal("stored weights aliased caller's map")
	}
	// Mutating the returned map must not affect the store either.
	got.Weights["h1"] = 77
	again, _ := db.Get("matrix.lu")
	if again.Weights["h1"] != 0.5 {
		t.Fatal("returned weights alias store")
	}
}

func TestTaskPerfWeights(t *testing.T) {
	db := NewTaskPerfDB(0)
	db.Put(TaskRecord{Function: "f", BaseTime: 1})
	if _, ok := db.Weight("f", "h1"); ok {
		t.Fatal("weight should be absent")
	}
	if err := db.SetWeight("f", "h1", 0.25); err != nil {
		t.Fatal(err)
	}
	w, ok := db.Weight("f", "h1")
	if !ok || w != 0.25 {
		t.Fatalf("w = %v ok = %v", w, ok)
	}
	if err := db.SetWeight("ghost", "h1", 1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	if _, ok := db.Weight("ghost", "h1"); ok {
		t.Fatal("ghost weight")
	}
}

func TestTaskPerfHistoryTrim(t *testing.T) {
	db := NewTaskPerfDB(3)
	db.Put(TaskRecord{Function: "f", BaseTime: 1})
	for i := 0; i < 5; i++ {
		if err := db.RecordExecution("f", ExecutionSample{Host: "h", Elapsed: time.Duration(i)}); err != nil {
			t.Fatal(err)
		}
	}
	got, _ := db.Get("f")
	if len(got.History) != 3 {
		t.Fatalf("history len = %d", len(got.History))
	}
	if got.History[0].Elapsed != 2 || got.History[2].Elapsed != 4 {
		t.Fatalf("history = %v", got.History)
	}
	if err := db.RecordExecution("ghost", ExecutionSample{}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestTaskPerfValidation(t *testing.T) {
	db := NewTaskPerfDB(0)
	if err := db.Put(TaskRecord{}); !errors.Is(err, ErrInvalidRecord) {
		t.Fatalf("err = %v", err)
	}
	if _, err := db.Get("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestConstraints(t *testing.T) {
	db := NewTaskConstraintsDB()
	// Unconstrained function: anywhere.
	if !db.CanRun("free", "anyhost") {
		t.Fatal("unconstrained function should run anywhere")
	}
	if db.EligibleHosts("free") != nil {
		t.Fatal("unconstrained function should return nil hosts")
	}
	db.SetLocation("fft", "h2", "/opt/vdce/bin/fft")
	db.SetLocation("fft", "h1", "/usr/local/bin/fft")
	if db.CanRun("fft", "h3") {
		t.Fatal("h3 should not run fft")
	}
	if !db.CanRun("fft", "h1") {
		t.Fatal("h1 should run fft")
	}
	hosts := db.EligibleHosts("fft")
	if len(hosts) != 2 || hosts[0] != "h1" || hosts[1] != "h2" {
		t.Fatalf("hosts = %v", hosts)
	}
	p, ok := db.Location("fft", "h2")
	if !ok || p != "/opt/vdce/bin/fft" {
		t.Fatalf("path = %q ok = %v", p, ok)
	}
	if _, ok := db.Location("fft", "h3"); ok {
		t.Fatal("h3 location should be absent")
	}
}

func TestRepositoryJSONRoundTrip(t *testing.T) {
	r := New()
	r.Users.Add(UserAccount{UserName: "u1", Password: "p", Priority: 3, AccessDomain: "local"})
	r.Resources.Register(ResourceStatic{HostName: "n1", Site: "syr", Arch: "sgi", TotalMemory: 1024, SpeedFactor: 1.5})
	r.Resources.UpdateDynamic("n1", 0.4, 512, time.Unix(100, 0).UTC())
	r.Resources.Register(ResourceStatic{HostName: "n2", Site: "rome"})
	r.Resources.SetDown("n2", true)
	r.Tasks.Put(TaskRecord{Function: "matrix.lu", BaseTime: 3, MemReq: 64, CommBytes: 128,
		Weights: map[string]float64{"n1": 0.66}})
	r.Tasks.RecordExecution("matrix.lu", ExecutionSample{Host: "n1", Elapsed: time.Second, At: time.Unix(200, 0).UTC()})
	r.Constraints.SetLocation("matrix.lu", "n1", "/bin/lu")

	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	back := New()
	if err := json.Unmarshal(data, back); err != nil {
		t.Fatal(err)
	}
	if _, err := back.Users.Authenticate("u1", "p"); err != nil {
		t.Fatal("user lost in round trip")
	}
	rec, err := back.Resources.Get("n1")
	if err != nil || rec.Dynamic.Load != 0.4 || rec.Static.SpeedFactor != 1.5 {
		t.Fatalf("resource lost: %+v err=%v", rec, err)
	}
	n2, _ := back.Resources.Get("n2")
	if !n2.Dynamic.Down {
		t.Fatal("down flag lost")
	}
	tr, err := back.Tasks.Get("matrix.lu")
	if err != nil || tr.BaseTime != 3 || tr.Weights["n1"] != 0.66 || len(tr.History) != 1 {
		t.Fatalf("task lost: %+v err=%v", tr, err)
	}
	if p, ok := back.Constraints.Location("matrix.lu", "n1"); !ok || p != "/bin/lu" {
		t.Fatal("constraint lost")
	}
}

func TestRepositoryUnmarshalGarbage(t *testing.T) {
	r := New()
	if err := json.Unmarshal([]byte("{bad"), r); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestConcurrentRepositoryAccess(t *testing.T) {
	r := New()
	for i := 0; i < 8; i++ {
		r.Resources.Register(ResourceStatic{HostName: string(rune('a' + i)), TotalMemory: 1 << 20})
	}
	r.Tasks.Put(TaskRecord{Function: "f", BaseTime: 1})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			host := string(rune('a' + w))
			for i := 0; i < 100; i++ {
				r.Resources.UpdateDynamic(host, float64(i), int64(i), time.Now())
				r.Resources.Get(host)
				r.Resources.UpHosts()
				r.Tasks.SetWeight("f", host, float64(i))
				r.Tasks.Weight("f", host)
				r.Tasks.RecordExecution("f", ExecutionSample{Host: host})
			}
		}(w)
	}
	wg.Wait()
	if r.Resources.UpdateCount() != 800 {
		t.Fatalf("updates = %d", r.Resources.UpdateCount())
	}
}
