package experiments

import (
	"encoding/json"
	"reflect"
	"testing"
)

// smallChurnConfig keeps the sweep cheap for unit tests.
func smallChurnConfig(seed int64) ChurnConfig {
	cfg := DefaultChurnConfig(seed)
	cfg.Sizes = []int{10, 20}
	cfg.CCRs = []float64{0.5, 2}
	cfg.GraphsPerCell = 2
	return cfg
}

func TestChurnCellsDeterministicAcrossWorkers(t *testing.T) {
	serial := smallChurnConfig(7)
	serial.Workers = 1
	a, namesA, err := ChurnCells(serial)
	if err != nil {
		t.Fatal(err)
	}
	parallel := smallChurnConfig(7)
	parallel.Workers = 4
	b, namesB, err := ChurnCells(parallel)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(namesA, namesB) {
		t.Fatalf("re-planner order differs: %v vs %v", namesA, namesB)
	}
	// Byte-identical, not merely approximately equal: the JSON encoding is
	// the committed artifact shape.
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Fatalf("parallel sweep diverges from serial:\n%s\n%s", ja, jb)
	}
}

func TestChurnCellsSane(t *testing.T) {
	cfg := smallChurnConfig(3)
	cfg.Workers = 1
	cells, names, err := ChurnCells(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 3 {
		t.Fatalf("names = %v, want the three registered re-planners", names)
	}
	if len(cells) != len(cfg.Sizes)*len(cfg.CCRs)*cfg.GraphsPerCell {
		t.Fatalf("cells = %d", len(cells))
	}
	for _, c := range cells {
		if c.FaultFree <= 0 {
			t.Fatalf("cell %+v: non-positive fault-free makespan", c)
		}
		for p := range names {
			// Degradation can dip below 1 — a deviation-triggered re-plan
			// may genuinely beat the baseline placement — but must stay a
			// positive, finite ratio.
			if c.Degradation[p] <= 0 {
				t.Fatalf("cell v=%d ccr=%g: %s degradation %v",
					c.Size, c.CCR, names[p], c.Degradation[p])
			}
			if c.Replans[p] < 0 || c.Killed[p] < 0 {
				t.Fatalf("negative counters in %+v", c)
			}
		}
	}
}

func TestChurnResultShape(t *testing.T) {
	cfg := smallChurnConfig(5)
	cfg.Workers = 2
	res, err := ChurnWith(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != "CHURN" {
		t.Fatalf("ID = %s", res.ID)
	}
	if len(res.Series.Rows) != len(cfg.Sizes)*len(cfg.CCRs) {
		t.Fatalf("rows = %d", len(res.Series.Rows))
	}
	for _, key := range []string{"degradation_eft", "degradation_heft", "degradation_dup",
		"replans_eft", "killed_dup", "runs"} {
		if _, ok := res.Metrics[key]; !ok {
			t.Fatalf("missing metric %s in %v", key, res.Metrics)
		}
	}
}
