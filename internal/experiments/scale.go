package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/afg"
	"repro/internal/dagen"
	"repro/internal/predict"
	"repro/internal/repository"
	"repro/internal/scheduler"
	"repro/internal/vis"
)

// Scale-scheduling experiment parameters: well past the paper's testbed
// (which topped out at a handful of sites) and at the floor the scale
// benchmark promises — ≥1000-task graphs against ≥32 sites.
const (
	scaleSites        = 32
	scaleHostsPerSite = 4
	scaleTasks        = 1000
	scaleGraphs       = 6
	scaleKinds        = 12
)

// repoScaleSite builds one site's repository the way a live site.Manager
// leaves it: hosts registered with dynamic load data, trial-run weights for
// the synthetic task, and a tail of measured execution history — the
// repository copies the prediction cache exists to avoid.
func repoScaleSite(name string, hosts int, seed int64) *repository.Repository {
	repo := repoSiteSkewed(name, hosts, 6, seed)
	rec := repository.TaskRecord{Function: "synthetic.noop", BaseTime: 0.5, MemReq: 1 << 20}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < 64; i++ {
		rec.History = append(rec.History, repository.ExecutionSample{
			Host:    fmt.Sprintf("%s-%02d", name, rng.Intn(hosts)),
			Elapsed: time.Duration(rng.Intn(1000)) * time.Millisecond,
		})
	}
	repo.Tasks.Put(rec)
	for i := 0; i < hosts; i++ {
		host := fmt.Sprintf("%s-%02d", name, i)
		repo.Tasks.SetWeight("synthetic.noop", host, 0.5+rng.Float64())
	}
	return repo
}

// scaleSelectors builds the SCALE workload's multi-site environment: one
// LocalSelector per site over fresh (seed-deterministic) repositories,
// returned with the repositories by site name for truth-model building.
// cached attaches a prediction cache to every selector.
func scaleSelectors(seed int64, cached bool) (local *scheduler.LocalSelector, remotes []scheduler.HostSelector, caches []*predict.Cache, repos map[string]*repository.Repository) {
	repos = make(map[string]*repository.Repository, scaleSites)
	selector := func(i int) *scheduler.LocalSelector {
		name := fmt.Sprintf("site%02d", i)
		repos[name] = repoScaleSite(name, scaleHostsPerSite, seed+int64(i))
		sel := &scheduler.LocalSelector{Site: name, Repo: repos[name]}
		if cached {
			sel.Cache = predict.NewCache()
			caches = append(caches, sel.Cache)
		}
		return sel
	}
	local = selector(0)
	for i := 1; i < scaleSites; i++ {
		remotes = append(remotes, selector(i))
	}
	return local, remotes, caches, repos
}

// scaleScheduler assembles the multi-site Site Scheduler over the
// scaleSelectors environment; concurrency is the fan-out worker bound
// (1 = the serial path).
func scaleScheduler(seed int64, cached bool, concurrency int) (*scheduler.SiteScheduler, []*predict.Cache, map[string]*repository.Repository) {
	local, remotes, caches, repos := scaleSelectors(seed, cached)
	s := scheduler.NewSiteScheduler(local, remotes, nil, 0)
	s.Concurrency = concurrency
	return s, caches, repos
}

func scaleGraphSet(seed int64) []*afg.Graph {
	graphs := make([]*afg.Graph, scaleGraphs)
	for i := range graphs {
		graphs[i] = dagen.Scale(scaleTasks, 25, scaleKinds, seed+int64(i)*101)
	}
	return graphs
}

// tablesMatch reports whether two allocation tables assign every task
// identically, in the same order.
func tablesMatch(a, b *scheduler.AllocationTable) bool {
	ao, bo := a.Order(), b.Order()
	if len(ao) != len(bo) {
		return false
	}
	for i := range ao {
		if ao[i] != bo[i] {
			return false
		}
		x, _ := a.Get(ao[i])
		y, _ := b.Get(bo[i])
		//vdce:ignore floateq bit-identity is the contract: concurrent scheduling must reproduce the serial tables exactly
		if x.Site != y.Site || x.Host != y.Host || x.Predicted != y.Predicted || len(x.Hosts) != len(y.Hosts) {
			return false
		}
		for j := range x.Hosts {
			if x.Hosts[j] != y.Hosts[j] {
				return false
			}
		}
	}
	return true
}

// ScaleScheduling (not a paper figure — the ROADMAP's scale direction):
// dispatch throughput of the Application Scheduler on 6×1000-task graphs
// against 32 sites, serial walk (the seed's code path: one site at a time,
// every prediction recomputed) versus the concurrent subsystem (bounded
// fan-out across sites, memoized predictions, batch scheduling of all
// graphs at once). The merge is deterministic, so both paths must produce
// identical allocation tables — the experiment fails loudly if they differ.
func ScaleScheduling(seed int64) (*Result, error) {
	res := &Result{ID: "SCALE", Metrics: map[string]float64{}}
	res.Series = vis.Series{
		Title: fmt.Sprintf("Scale — batch scheduling throughput, %d×%d tasks on %d sites (serial vs concurrent)",
			scaleGraphs, scaleTasks, scaleSites),
		XLabel:  "config", // 1 = serial, 2 = concurrent
		YLabels: []string{"sched_s", "tasks_per_s"},
	}
	graphs := scaleGraphSet(seed)
	totalTasks := 0
	for _, g := range graphs {
		totalTasks += g.Len()
	}

	// Serial path: no cache, fan-out bound 1, one graph at a time.
	serial, _, _ := scaleScheduler(seed, false, 1)
	t0 := time.Now()
	serialItems := scheduler.ScheduleBatch(serial, graphs, 1)
	serialSec := time.Since(t0).Seconds()

	// Concurrent path: prediction caches, GOMAXPROCS fan-out and batch
	// workers, all graphs in flight against shared site state.
	conc, caches, _ := scaleScheduler(seed, true, 0)
	t1 := time.Now()
	concItems := (&scheduler.Batch{Scheduler: conc}).Schedule(graphs)
	concSec := time.Since(t1).Seconds()

	for i := range graphs {
		if serialItems[i].Err != nil {
			return nil, fmt.Errorf("scale: serial graph %d: %w", i, serialItems[i].Err)
		}
		if concItems[i].Err != nil {
			return nil, fmt.Errorf("scale: concurrent graph %d: %w", i, concItems[i].Err)
		}
		if !tablesMatch(serialItems[i].Table, concItems[i].Table) {
			return nil, fmt.Errorf("scale: graph %d: concurrent table diverges from serial", i)
		}
	}

	var hits, misses uint64
	for _, c := range caches {
		st := c.Stats()
		hits += st.Hits
		misses += st.Misses
	}
	hitPct := 0.0
	if hits+misses > 0 {
		hitPct = 100 * float64(hits) / float64(hits+misses)
	}

	res.Series.Rows = [][]float64{
		{1, serialSec, float64(totalTasks) / serialSec},
		{2, concSec, float64(totalTasks) / concSec},
	}
	res.Metrics["serial_s"] = serialSec
	res.Metrics["concurrent_s"] = concSec
	res.Metrics["speedup"] = serialSec / concSec
	res.Metrics["tasks_per_s"] = float64(totalTasks) / concSec
	res.Metrics["cache_hit_pct"] = hitPct
	return res, nil
}
