package experiments

import (
	"fmt"
	"time"

	"repro/internal/afg"
	"repro/internal/scheduler"
	"repro/internal/vis"
)

// mergeForSimulation folds a batch of independently scheduled applications
// into one disjoint-union graph and one allocation table, so a single
// Simulate run charges the cross-application host contention that per-graph
// replays cannot see: two applications that both promised the same fast
// host really do queue on it.
func mergeForSimulation(graphs []*afg.Graph, items []scheduler.BatchItem) (*afg.Graph, *scheduler.AllocationTable, error) {
	merged, err := mergeGraphs(graphs)
	if err != nil {
		return nil, nil, err
	}
	table, err := mergeTables(graphs, items)
	if err != nil {
		return nil, nil, err
	}
	return merged, table, nil
}

// mergeGraphs builds the disjoint-union graph (tasks prefixed per source
// graph). Split from the table merge so harnesses replaying many policies
// over one batch build the union — and its dense index — once.
func mergeGraphs(graphs []*afg.Graph) (*afg.Graph, error) {
	total := 0
	for _, g := range graphs {
		total += g.Len()
	}
	merged := afg.NewSized("combined", total)
	for gi, g := range graphs {
		prefix := fmt.Sprintf("g%02d/", gi)
		for _, id := range g.TaskIDs() {
			t := g.Task(id).Clone()
			t.ID = afg.TaskID(prefix + string(id))
			if err := merged.AddTask(t); err != nil {
				return nil, err
			}
		}
		for _, l := range g.Links() {
			err := merged.AddLinkExact(afg.Link{
				From:  afg.TaskID(prefix + string(l.From)),
				To:    afg.TaskID(prefix + string(l.To)),
				Bytes: l.Bytes,
				Port:  l.Port,
			})
			if err != nil {
				return nil, err
			}
		}
	}
	return merged, nil
}

// mergeTables folds the batch's per-graph allocation tables onto the
// union graph's prefixed task ids.
func mergeTables(graphs []*afg.Graph, items []scheduler.BatchItem) (*scheduler.AllocationTable, error) {
	total := 0
	for _, g := range graphs {
		total += g.Len()
	}
	table := scheduler.NewAllocationTableSized("combined", total)
	for gi := range graphs {
		if items[gi].Err != nil {
			return nil, fmt.Errorf("graph %d: %w", gi, items[gi].Err)
		}
		prefix := fmt.Sprintf("g%02d/", gi)
		for _, id := range items[gi].Table.Order() {
			a, _ := items[gi].Table.Get(id)
			a.Task = afg.TaskID(prefix + string(id))
			table.Set(a)
		}
	}
	return table, nil
}

// ledgerConfig is one placement configuration of the LEDGER experiment.
type ledgerConfig struct {
	name   string
	avail  bool
	ledger bool
}

// runLedgerConfig schedules graphs under one configuration against fresh
// (seed-identical) site repositories and returns the combined simulated
// makespan plus the scheduling wall time.
func runLedgerConfig(seed int64, cfg ledgerConfig, graphs []*afg.Graph) (mk, wall float64, err error) {
	sched, _, repos := scaleScheduler(seed, true, 1)
	sched.AvailabilityAware = cfg.avail
	// Serial batch for every configuration: the ledger path needs it for
	// determinism (each graph sees exactly the reservations of the graphs
	// before it; with concurrent workers the spreading still happens, but
	// the tables depend on completion order), and the others match so the
	// per-config wall times compare placement modes, not worker counts.
	b := &scheduler.Batch{Scheduler: sched, Workers: 1}
	if cfg.ledger {
		b.Ledger = scheduler.NewLoadLedger()
	}
	t0 := time.Now()
	items := b.Schedule(graphs)
	wall = time.Since(t0).Seconds()

	merged, table, err := mergeForSimulation(graphs, items)
	if err != nil {
		return 0, 0, fmt.Errorf("%s: %w", cfg.name, err)
	}
	mk, err = scheduler.Simulate(merged, table, truthFromRepos(repos), nil)
	if err != nil {
		return 0, 0, fmt.Errorf("%s: simulate: %w", cfg.name, err)
	}
	return mk, wall, nil
}

// AvailabilityScheduling (the ROADMAP's scale direction, round two): the
// SCALE workload — 6×1000-task graphs batched against 32 sites × 4 hosts —
// scored on combined simulated makespan (all applications replayed against
// the same host pool at once) instead of dispatch wall time, across three
// placement configurations:
//
//  1. paper-faithful — predicted + transfer, every graph scheduled blind
//     to the others (the ledger-free concurrent batch of PR 1);
//  2. availability-aware (EFT) — earliest-finish-time placement, but each
//     graph still walks its own private host timeline, so the batch's
//     graphs queue behind each other on the same attractive hosts;
//  3. shared ledger — earliest-finish-time with one cross-application
//     load ledger threaded through the batch, so each graph spreads
//     around the busy seconds the others already promised.
//
// The claim: EFT recovers most of the intra-application queueing cost the
// faithful objective cannot see (an order of magnitude here), and the
// shared ledger takes the rest — the cross-application dog-pile — for a
// further double-digit percentage.
func AvailabilityScheduling(seed int64) (*Result, error) {
	res := &Result{ID: "LEDGER", Metrics: map[string]float64{}}
	res.Series = vis.Series{
		Title: fmt.Sprintf("Ledger — combined makespan of %d×%d-task apps on %d sites (faithful vs EFT vs shared ledger)",
			scaleGraphs, scaleTasks, scaleSites),
		XLabel:  "config", // 1 = faithful, 2 = EFT no ledger, 3 = EFT shared ledger
		YLabels: []string{"combined_makespan_s", "sched_wall_s"},
	}
	configs := []ledgerConfig{
		{"faithful", false, false},
		{"eft", true, false},
		{"ledger", true, true},
	}
	graphs := scaleGraphSet(seed)
	for ci, cfg := range configs {
		mk, wall, err := runLedgerConfig(seed, cfg, graphs)
		if err != nil {
			return nil, fmt.Errorf("ledger: %w", err)
		}
		res.Series.Rows = append(res.Series.Rows, []float64{float64(ci + 1), mk, wall})
		res.Metrics["makespan_"+cfg.name] = mk
	}
	res.Metrics["ledger_over_faithful"] =
		res.Metrics["makespan_faithful"] / res.Metrics["makespan_ledger"]
	res.Metrics["ledger_improvement_pct"] =
		100 * (1 - res.Metrics["makespan_ledger"]/res.Metrics["makespan_eft"])
	return res, nil
}
