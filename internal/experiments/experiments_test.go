package experiments

import (
	"math"
	"testing"

	"repro/internal/scheduler"
)

// Each experiment must run, produce a non-empty series, and support the
// qualitative claim it encodes. These are the repository's "does the
// evaluation reproduce" tests.

func TestFig1MultiSite(t *testing.T) {
	r, err := Fig1MultiSite(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Series.Rows))
	}
	for _, row := range r.Series.Rows {
		if row[1] <= 0 {
			t.Fatalf("non-positive makespan: %v", row)
		}
	}
}

func TestFig2PipelineStagesCheap(t *testing.T) {
	r, err := Fig2Pipeline(1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Metrics["editor_ms"] <= 0 || r.Metrics["scheduler_ms"] <= 0 {
		t.Fatalf("metrics = %v", r.Metrics)
	}
	// Middleware stages must be sub-second.
	if r.Metrics["editor_ms"] > 1000 || r.Metrics["scheduler_ms"] > 1000 {
		t.Fatalf("middleware too slow: %v", r.Metrics)
	}
}

func TestFig3SolverCorrectAndScales(t *testing.T) {
	r, err := Fig3LinearSolver(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Series.Rows {
		if row[3] > 1e-6 {
			t.Fatalf("residual too large at n=%v: %v", row[0], row[3])
		}
	}
	// Larger problems take longer sequentially.
	if r.Series.Rows[2][1] <= r.Series.Rows[0][1] {
		t.Fatalf("n=256 not slower than n=64: %v", r.Series.Rows)
	}
}

func TestFig4TransferAwarenessWins(t *testing.T) {
	r, err := Fig4SiteScheduler(1)
	if err != nil {
		t.Fatal(err)
	}
	// At the slowest WAN, the blind scheduler must be strictly worse.
	last := r.Series.Rows[len(r.Series.Rows)-1]
	aware, blind := last[1], last[2]
	if blind <= aware {
		t.Fatalf("transfer-blind (%v) should lose to aware (%v) on slow WAN", blind, aware)
	}
	// And the blind schedule must move strictly more data across hosts.
	if last[4] <= last[3] {
		t.Fatalf("blind comm (%v) should exceed aware comm (%v)", last[4], last[3])
	}
	// The gap should widen with latency.
	first := r.Series.Rows[0]
	if (blind / aware) <= (first[2]/first[1])*0.9 {
		t.Fatalf("gap did not grow: first ratio %v, last ratio %v",
			first[2]/first[1], blind/aware)
	}
}

func TestFig5PredictionBeatsBaselines(t *testing.T) {
	r, err := Fig5HostSelection(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Series.Rows {
		vdce := row[1]
		for i, name := range []string{"random", "roundrobin", "minload", "fastest"} {
			if row[2+i] < vdce*0.999 {
				t.Fatalf("%d hosts: %s (%v) beat vdce (%v)", int(row[0]), name, row[2+i], vdce)
			}
		}
	}
}

func TestFig6FilterSavesTraffic(t *testing.T) {
	r, err := Fig6Monitoring(1)
	if err != nil {
		t.Fatal(err)
	}
	// An all-idle site suppresses nearly everything.
	if r.Metrics["saving_pct_busy0.00"] < 90 {
		t.Fatalf("idle-site saving too small: %v", r.Metrics)
	}
	// Savings shrink as more hosts actually change.
	if r.Metrics["saving_pct_busy1.00"] >= r.Metrics["saving_pct_busy0.00"] {
		t.Fatalf("savings did not shrink with busy fraction: %v", r.Metrics)
	}
	// Failure detected within one round.
	if r.Metrics["failure_detect_rounds"] != 1 {
		t.Fatalf("failure detection rounds = %v", r.Metrics["failure_detect_rounds"])
	}
}

func TestFig7SetupScales(t *testing.T) {
	r, err := Fig7ExecSetup(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Series.Rows))
	}
	for _, row := range r.Series.Rows {
		if row[1] <= 0 {
			t.Fatalf("non-positive time: %v", row)
		}
	}
}

func TestPredictionAccuracyReasonable(t *testing.T) {
	r, err := PredictionAccuracy(1)
	if err != nil {
		t.Fatal(err)
	}
	// At low volatility every forecaster should be well under 10% MAPE.
	low := r.Series.Rows[0]
	for i := 1; i < len(low); i++ {
		if low[i] > 10 {
			t.Fatalf("low-volatility MAPE too high: %v", low)
		}
	}
	// Error grows with volatility for every forecaster.
	high := r.Series.Rows[len(r.Series.Rows)-1]
	if high[1] <= low[1] {
		t.Fatalf("volatility did not raise error: %v vs %v", low, high)
	}
}

func TestScheduleQualityLevelPriority(t *testing.T) {
	r, err := ScheduleQuality(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Series.Rows {
		level, random := row[1], row[3]
		if level < 0.999 {
			t.Fatalf("schedule beat the critical-path lower bound: %v", row)
		}
		if random < level*0.999 {
			t.Fatalf("random (%v) beat level scheduling (%v)", random, level)
		}
	}
	// On the largest graph the level rule must beat the FIFO ablation
	// (small graphs are heuristic noise either way).
	last := r.Series.Rows[len(r.Series.Rows)-1]
	if last[2] < last[1] {
		t.Fatalf("FIFO (%v) beat level priority (%v) on the largest graph", last[2], last[1])
	}
}

func TestFig1AggregationHelps(t *testing.T) {
	r, err := Fig1MultiSite(1)
	if err != nil {
		t.Fatal(err)
	}
	// More sites = more capacity = shorter makespan for this
	// compute-bound workload.
	rows := r.Series.Rows
	if rows[len(rows)-1][1] >= rows[0][1] {
		t.Fatalf("4 sites (%v) not faster than 1 site (%v)", rows[len(rows)-1][1], rows[0][1])
	}
}

func TestLedgerBeatsLedgerFreeBatch(t *testing.T) {
	if testing.Short() {
		t.Skip("6×1000-task batches ×3 configurations in short mode")
	}
	r, err := AvailabilityScheduling(1)
	if err != nil {
		t.Fatal(err)
	}
	faithful := r.Metrics["makespan_faithful"]
	eft := r.Metrics["makespan_eft"]
	ledger := r.Metrics["makespan_ledger"]
	if faithful <= 0 || eft <= 0 || ledger <= 0 {
		t.Fatalf("non-positive makespans: %v", r.Metrics)
	}
	// The shared-ledger batch must beat the ledger-free concurrent batch
	// (the PR 1 code path) on combined simulated makespan...
	if ledger >= faithful {
		t.Fatalf("shared ledger (%v) did not beat the ledger-free faithful batch (%v)", ledger, faithful)
	}
	// ...and also the availability-aware-but-private-timeline ablation,
	// since the ledger's whole job is cross-application contention.
	if ledger >= eft {
		t.Fatalf("shared ledger (%v) did not beat private-timeline EFT (%v)", ledger, eft)
	}
}

func TestPolicyComparisonCoversRegistry(t *testing.T) {
	if testing.Short() {
		t.Skip("6×1000-task batches per registered policy in short mode")
	}
	r, err := PolicyComparison(1)
	if err != nil {
		t.Fatal(err)
	}
	names := scheduler.Policies()
	if len(r.Series.Rows) != len(names) {
		t.Fatalf("rows = %d, want one per registered policy (%d)", len(r.Series.Rows), len(names))
	}
	for _, name := range names {
		mk, ok := r.Metrics["makespan_"+name]
		if !ok {
			t.Fatalf("no makespan metric for registered policy %q", name)
		}
		if mk <= 0 || math.IsInf(mk, 0) || math.IsNaN(mk) {
			t.Fatalf("policy %q: bad combined makespan %v", name, mk)
		}
	}
	// The paper's headline heuristics must beat the contention-blind
	// faithful batch on combined makespan — that is their whole pitch.
	faithful := r.Metrics["makespan_faithful"]
	for _, h := range []string{"heft", "cpop"} {
		if r.Metrics["makespan_"+h] >= faithful {
			t.Fatalf("%s (%v) did not beat the faithful batch (%v)", h, r.Metrics["makespan_"+h], faithful)
		}
	}
}

// TestPolicyComparisonForSubset exercises the restricted form vdce-bench's
// -policies flag uses, on a cheap subset.
func TestPolicyComparisonForSubset(t *testing.T) {
	if testing.Short() {
		t.Skip("1000-task batches in short mode")
	}
	r, err := PolicyComparisonFor(1, []string{"fastest", "minload"})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(r.Series.Rows))
	}
	if _, ok := r.Metrics["makespan_fastest"]; !ok {
		t.Fatalf("missing subset metric: %v", r.Metrics)
	}
}

func TestAllRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep in short mode")
	}
	results, err := All(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 14 {
		t.Fatalf("results = %d", len(results))
	}
	seen := map[string]bool{}
	for _, r := range results {
		if seen[r.ID] {
			t.Fatalf("duplicate id %s", r.ID)
		}
		seen[r.ID] = true
		if r.Series.Render() == "" || len(r.Series.Rows) == 0 {
			t.Fatalf("experiment %s empty", r.ID)
		}
	}
}
