// Package experiments implements the evaluation harness: one experiment per
// paper figure (the paper has no numeric tables — its figures are
// architecture and algorithm descriptions, so each experiment quantifies
// the behavioural claim the figure makes). cmd/vdce-bench prints the
// series; the root bench_test.go wraps each experiment in a testing.B.
package experiments

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/afg"
	"repro/internal/core"
	"repro/internal/monitor"
	"repro/internal/netsim"
	"repro/internal/predict"
	"repro/internal/repository"
	"repro/internal/resource"
	"repro/internal/scheduler"
	"repro/internal/site"
	"repro/internal/vis"
	"repro/internal/workload"
)

// Result is one experiment's rendered output plus headline numbers the
// benchmarks report as metrics.
type Result struct {
	ID      string
	Series  vis.Series
	Metrics map[string]float64
}

// Fig1MultiSite (paper Fig 1: the multi-site VDCE overview): end-to-end
// application completion as sites join the environment, 4 hosts per site.
// Claim: the metacomputing pitch — aggregating geographically distributed
// resources shortens compute-bound applications despite the WAN between
// them (the per-branch data is small; Fig 4 covers the data-heavy regime).
func Fig1MultiSite(seed int64) (*Result, error) {
	res := &Result{ID: "FIG1", Metrics: map[string]float64{}}
	res.Series = vis.Series{
		Title:   "Fig 1 — multi-site aggregation (4 hosts/site, fork-join width 24)",
		XLabel:  "sites",
		YLabels: []string{"makespan_s", "sites_used"},
	}
	for _, sites := range []int{1, 2, 4} {
		env := core.NewEnvironment(core.Options{Seed: seed})
		for s := 0; s < sites; s++ {
			if _, err := env.AddSite(fmt.Sprintf("site%d", s), 4); err != nil {
				return nil, err
			}
		}
		g := workload.ForkJoin(24, 0.5, 1<<10)
		sched, err := env.Scheduler("site0")
		if err != nil {
			return nil, err
		}
		table, err := sched.Schedule(g)
		if err != nil {
			return nil, err
		}
		mk, err := scheduler.Simulate(g, table, env.TruthModel(), env.Net())
		if err != nil {
			return nil, err
		}
		res.Series.Rows = append(res.Series.Rows, []float64{
			float64(sites), mk, float64(len(table.Sites())),
		})
		res.Metrics[fmt.Sprintf("makespan_s_%dsites", sites)] = mk
	}
	return res, nil
}

// Fig2Pipeline (paper Fig 2: module interactions): the latency of each stage
// of the software-development cycle — editor validation + level computation,
// distributed scheduling, and runtime execution — for the linear solver.
// Claim: the middleware stages are cheap relative to execution.
func Fig2Pipeline(seed int64) (*Result, error) {
	env := core.NewEnvironment(core.Options{Seed: seed})
	for _, s := range []string{"syracuse", "rome"} {
		if _, err := env.AddSite(s, 4); err != nil {
			return nil, err
		}
	}
	res := &Result{ID: "FIG2", Metrics: map[string]float64{}}
	res.Series = vis.Series{
		Title:   "Fig 2 — editor→scheduler→runtime stage latency (linear solver, n=64)",
		XLabel:  "stage#",
		YLabels: []string{"latency_ms"},
	}
	g, err := workload.LinearSolver(nil, 64, int(seed), false, 0)
	if err != nil {
		return nil, err
	}

	t0 := time.Now()
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if _, err := g.Levels(); err != nil {
		return nil, err
	}
	editorMS := float64(time.Since(t0).Microseconds()) / 1000

	sched, err := env.Scheduler("syracuse")
	if err != nil {
		return nil, err
	}
	t1 := time.Now()
	table, err := sched.Schedule(g)
	if err != nil {
		return nil, err
	}
	schedMS := float64(time.Since(t1).Microseconds()) / 1000

	t2 := time.Now()
	m, _ := env.Site("syracuse")
	if _, err := executeOn(env, m, g, table); err != nil {
		return nil, err
	}
	runMS := float64(time.Since(t2).Microseconds()) / 1000

	res.Series.Rows = [][]float64{{1, editorMS}, {2, schedMS}, {3, runMS}}
	res.Metrics["editor_ms"] = editorMS
	res.Metrics["scheduler_ms"] = schedMS
	res.Metrics["runtime_ms"] = runMS
	return res, nil
}

func executeOn(env *core.Environment, m *site.Manager, g *afg.Graph, table *scheduler.AllocationTable) (float64, error) {
	ctx := context.Background()
	res, _, err := m.ExecuteLocal(ctx, g, nil, env.ResolveHost)
	if err != nil {
		return 0, err
	}
	_ = table
	return res.Makespan.Seconds(), nil
}

// Fig3LinearSolver (paper Fig 3: the Linear Equation Solver application):
// end-to-end wall time of the flagship application across problem sizes,
// sequential vs parallel LU mode. Claim: the application runs correctly
// (residual ≈ 0) and parallel task mode helps at large n.
func Fig3LinearSolver(seed int64) (*Result, error) {
	env := core.NewEnvironment(core.Options{Seed: seed})
	if _, err := env.AddSite("syracuse", 4); err != nil {
		return nil, err
	}
	res := &Result{ID: "FIG3", Metrics: map[string]float64{}}
	res.Series = vis.Series{
		Title:   "Fig 3 — linear equation solver, sequential vs parallel LU",
		XLabel:  "n",
		YLabels: []string{"seq_ms", "par_ms", "residual"},
	}
	for _, n := range []int{64, 128, 256} {
		var row []float64
		row = append(row, float64(n))
		var residual float64
		for _, par := range []bool{false, true} {
			g, err := workload.LinearSolver(nil, n, int(seed), par, 4)
			if err != nil {
				return nil, err
			}
			start := time.Now()
			out, _, err := env.Submit(context.Background(), "syracuse", g)
			if err != nil {
				return nil, err
			}
			row = append(row, float64(time.Since(start).Microseconds())/1000)
			residual = out.Outputs["check"].Scalar
		}
		row = append(row, residual)
		res.Series.Rows = append(res.Series.Rows, row)
		res.Metrics[fmt.Sprintf("speedup_n%d", n)] = row[1] / row[2]
	}
	return res, nil
}

// Fig4SiteScheduler (paper Fig 4: the Site Scheduler Algorithm): simulated
// makespan and inter-site communication time of transfer-aware site
// selection vs the transfer-blind ablation, as WAN latency grows. Claim:
// charging transfer_time(Sparent, Sj) keeps communicating tasks together
// and wins increasingly as the WAN gets slower.
func Fig4SiteScheduler(seed int64) (*Result, error) {
	res := &Result{ID: "FIG4", Metrics: map[string]float64{}}
	res.Series = vis.Series{
		Title:   "Fig 4 — transfer-aware vs transfer-blind site selection (2 sites, data-heavy pipeline)",
		XLabel:  "wan_ms",
		YLabels: []string{"aware_s", "blind_s", "aware_comm_s", "blind_comm_s"},
	}
	for _, wanMS := range []int{5, 20, 50, 100} {
		net := netsim.New(netsim.DefaultLAN, 1)
		net.Connect("syr", "rome", netsim.PathSpec{
			Latency:   time.Duration(wanMS) * time.Millisecond,
			Bandwidth: 2e6,
		})
		// The local site has one fast machine whose queue fills up; the
		// remote site's machines are slightly faster than the local
		// leftovers. The transfer-blind scheduler hops to whichever host
		// predicts fastest, ping-ponging the 1 MB payload across the WAN;
		// the transfer-aware scheduler keeps the chain with its parent.
		syr := repoSiteSpeeds("syr", []float64{5, 1, 1, 1})
		rome := repoSiteSpeeds("rome", []float64{1.3, 1.3, 1.3, 1.3})
		g := workload.Pipeline(12, 0.05, 1<<20) // 1 MB between stages

		truth := truthFromRepos(map[string]*repository.Repository{"syr": syr, "rome": rome})
		var mks, comms [2]float64
		for i, aware := range []bool{true, false} {
			s := scheduler.NewSiteScheduler(
				&scheduler.LocalSelector{Site: "syr", Repo: syr},
				[]scheduler.HostSelector{&scheduler.LocalSelector{Site: "rome", Repo: rome}},
				net, 0)
			s.TransferAware = aware
			table, err := s.Schedule(g)
			if err != nil {
				return nil, err
			}
			mk, err := scheduler.Simulate(g, table, truth, net)
			if err != nil {
				return nil, err
			}
			mks[i] = mk
			comms[i] = scheduler.CommVolume(g, table, net)
		}
		res.Series.Rows = append(res.Series.Rows, []float64{
			float64(wanMS), mks[0], mks[1], comms[0], comms[1],
		})
		res.Metrics[fmt.Sprintf("blind_over_aware_%dms", wanMS)] = mks[1] / mks[0]
	}
	return res, nil
}

// Fig5HostSelection (paper Fig 5: the Host Selection Algorithm):
// prediction-driven host choice vs random, round-robin, min-load, and
// fastest-host baselines on a heterogeneous, skew-loaded site. Claim:
// using Predict(task, R) — weights AND loads — beats policies that ignore
// either.
func Fig5HostSelection(seed int64) (*Result, error) {
	res := &Result{ID: "FIG5", Metrics: map[string]float64{}}
	res.Series = vis.Series{
		Title:   "Fig 5 — host selection vs baselines (30 independent tasks)",
		XLabel:  "hosts",
		YLabels: []string{"vdce_s", "random_s", "roundrobin_s", "minload_s", "fastest_s"},
	}
	for _, hosts := range []int{4, 8, 16, 32} {
		repo := repoSiteSkewed("syr", hosts, 8, seed)
		sites := map[string]*repository.Repository{"syr": repo}
		net := netsim.New(netsim.DefaultLAN, 1)
		g := independentTasks(30, 2.0, seed)
		truth := truthFromRepos(sites)

		vdce := scheduler.NewSiteScheduler(&scheduler.LocalSelector{Site: "syr", Repo: repo}, nil, net, 0)
		schedulers := []scheduler.Scheduler{
			vdce,
			&scheduler.RandomScheduler{Sites: sites, Seed: seed},
			&scheduler.RoundRobinScheduler{Sites: sites},
			&scheduler.MinLoadScheduler{Sites: sites},
			&scheduler.FastestHostScheduler{Sites: sites},
		}
		row := []float64{float64(hosts)}
		for _, s := range schedulers {
			table, err := s.Schedule(g)
			if err != nil {
				return nil, err
			}
			mk, err := scheduler.Simulate(g, table, truth, net)
			if err != nil {
				return nil, err
			}
			row = append(row, mk)
		}
		res.Series.Rows = append(res.Series.Rows, row)
		res.Metrics[fmt.Sprintf("random_over_vdce_%dhosts", hosts)] = row[2] / row[1]
	}
	return res, nil
}

// Fig6Monitoring (paper Fig 6: Resource Controller interactions): update
// traffic with and without the confidence-interval change filter as the
// fraction of busy (load-varying) hosts grows, plus failure-detection
// latency in monitoring rounds. Claim: with the filter, update traffic
// tracks the number of hosts whose workload actually changes — idle
// workstations cost (almost) nothing — and failures are detected within
// one round.
func Fig6Monitoring(seed int64) (*Result, error) {
	res := &Result{ID: "FIG6", Metrics: map[string]float64{}}
	res.Series = vis.Series{
		Title:   "Fig 6 — monitoring traffic: change filter vs send-all (32 hosts, 100 rounds)",
		XLabel:  "busy_frac",
		YLabels: []string{"filtered_msgs", "unfiltered_msgs", "saving_pct"},
	}
	for _, busy := range []float64{0, 0.25, 0.5, 1} {
		filtered := runMonitorRounds(busy, false, seed)
		unfiltered := runMonitorRounds(busy, true, seed)
		saving := 100 * (1 - float64(filtered)/float64(unfiltered))
		res.Series.Rows = append(res.Series.Rows, []float64{
			busy, float64(filtered), float64(unfiltered), saving,
		})
		res.Metrics[fmt.Sprintf("saving_pct_busy%.2f", busy)] = saving
	}
	// Failure detection: kill one host, count rounds until the sink hears.
	hosts := genHosts(8, 0.2, seed)
	sink := &countingSink{}
	gm := monitor.NewGroupManager("g", "syr", hosts, sink, monitor.DefaultConfig, nil)
	gm.Tick()
	hosts[3].SetDown(true)
	rounds := 0
	for sink.downs == 0 && rounds < 10 {
		gm.Tick()
		rounds++
	}
	res.Metrics["failure_detect_rounds"] = float64(rounds)
	return res, nil
}

// Fig7ExecSetup (paper Fig 7: setting up the application execution
// environment): wall time of the Data Manager channel-setup handshake as
// the task count grows, and socket-path transfer throughput across message
// sizes. Claim: setup scales roughly linearly in channels and the socket
// path sustains high throughput.
func Fig7ExecSetup(seed int64) (*Result, error) {
	res := &Result{ID: "FIG7", Metrics: map[string]float64{}}
	res.Series = vis.Series{
		Title:   "Fig 7 — execution environment setup time vs task count (socket mode pipeline)",
		XLabel:  "tasks",
		YLabels: []string{"setup+run_ms"},
	}
	env := core.NewEnvironment(core.Options{Seed: seed, SiteConfig: site.Config{UseSockets: true}})
	if _, err := env.AddSite("syracuse", 8); err != nil {
		return nil, err
	}
	for _, tasks := range []int{2, 8, 24, 48} {
		g := workload.Pipeline(tasks, 0, 1<<12)
		start := time.Now()
		if _, _, err := env.Submit(context.Background(), "syracuse", g); err != nil {
			return nil, err
		}
		ms := float64(time.Since(start).Microseconds()) / 1000
		res.Series.Rows = append(res.Series.Rows, []float64{float64(tasks), ms})
		res.Metrics[fmt.Sprintf("setup_ms_%dtasks", tasks)] = ms
	}
	return res, nil
}

// PredictionAccuracy (§2.2.1, the prediction model): mean absolute
// percentage error of Predict() against ground truth under the three
// forecasting policies, as load volatility grows. Claim: forecasting from
// a window of recent measurements keeps predictions useful even on
// volatile hosts.
func PredictionAccuracy(seed int64) (*Result, error) {
	res := &Result{ID: "TAB-PRED", Metrics: map[string]float64{}}
	res.Series = vis.Series{
		Title:   "Prediction accuracy — MAPE%% by forecaster vs load volatility",
		XLabel:  "volatility",
		YLabels: []string{"lastvalue", "windowmean", "expsmooth", "ar1"},
	}
	for _, vol := range []float64{0.02, 0.1, 0.3} {
		host := resource.NewHost(resource.HostSpec{Name: "h", TotalMemory: 1 << 30, SpeedFactor: 2},
			resource.LoadModel{Baseline: 0.5, Volatility: vol, Rho: 0.8}, seed)
		fcs := []predict.Forecaster{
			&predict.LastValue{}, predict.NewWindow(8),
			predict.NewExponentialSmoothing(0.3), predict.NewAR1(32),
		}
		errs := make([]float64, len(fcs))
		const rounds = 400
		for r := 0; r < rounds; r++ {
			actualLoad := host.StepLoad()
			truth := 2.0 * 0.5 * (1 + actualLoad) // base 2 s × weight 0.5
			for i, f := range fcs {
				pred := predict.Seconds(predict.Inputs{BaseTime: 2, Weight: 0.5, CPULoad: f.Forecast()})
				errs[i] += math.Abs(pred-truth) / truth
				f.Observe(actualLoad)
			}
		}
		row := []float64{vol}
		for _, e := range errs {
			row = append(row, 100*e/rounds)
		}
		res.Series.Rows = append(res.Series.Rows, row)
		res.Metrics[fmt.Sprintf("mape_window_vol%.2f", vol)] = row[2]
	}
	return res, nil
}

// ScheduleQuality (§2.2, "minimise the schedule length"): level-priority
// list scheduling vs the FIFO-priority ablation and random placement on
// layered random DAGs of growing size. Claim: level priority shortens
// schedules.
func ScheduleQuality(seed int64) (*Result, error) {
	res := &Result{ID: "TAB-SCHED", Metrics: map[string]float64{}}
	res.Series = vis.Series{
		Title:   "Schedule quality — level priority vs FIFO vs random (ratio to CP lower bound)",
		XLabel:  "tasks",
		YLabels: []string{"level_ratio", "fifo_ratio", "random_ratio"},
	}
	for _, layers := range []int{4, 8, 16} {
		g := workload.LayeredRandom(workload.LayeredConfig{
			Layers: layers, Width: 6, Density: 0.35,
			MinCost: 0.5, MaxCost: 5, MaxBytes: 1 << 14, Seed: seed + int64(layers),
		})
		repo := repoSiteSkewed("syr", 8, 4, seed)
		sites := map[string]*repository.Repository{"syr": repo}
		net := netsim.New(netsim.DefaultLAN, 1)
		truth := truthFromRepos(sites)
		cp, err := g.CriticalPathLength()
		if err != nil {
			return nil, err
		}
		// True lower bound: the critical path executed end-to-end on the
		// fastest idle host in the pool.
		lb := cp
		for _, rec := range repo.Resources.List() {
			if v := cp / rec.Static.SpeedFactor; v < lb {
				lb = v
			}
		}
		level := scheduler.NewSiteScheduler(&scheduler.LocalSelector{Site: "syr", Repo: repo}, nil, net, 0)
		fifoSel := &scheduler.LocalSelector{Site: "syr", Repo: repo, Priority: scheduler.FIFOPriority}
		fifo := scheduler.NewSiteScheduler(fifoSel, nil, net, 0)
		fifo.Priority = scheduler.FIFOPriority
		rnd := &scheduler.RandomScheduler{Sites: sites, Seed: seed}

		row := []float64{float64(g.Len())}
		for _, s := range []scheduler.Scheduler{level, fifo, rnd} {
			table, err := s.Schedule(g)
			if err != nil {
				return nil, err
			}
			mk, err := scheduler.Simulate(g, table, truth, net)
			if err != nil {
				return nil, err
			}
			row = append(row, mk/lb)
		}
		res.Series.Rows = append(res.Series.Rows, row)
		res.Metrics[fmt.Sprintf("fifo_over_level_%dlayers", layers)] = row[2] / row[1]
	}
	return res, nil
}

// All runs every experiment in figure order.
func All(seed int64) ([]*Result, error) {
	funcs := []func(int64) (*Result, error){
		Fig1MultiSite, Fig2Pipeline, Fig3LinearSolver, Fig4SiteScheduler,
		Fig5HostSelection, Fig6Monitoring, Fig7ExecSetup,
		PredictionAccuracy, ScheduleQuality, ScaleScheduling,
		AvailabilityScheduling, PolicyComparison, Ranking, Churn,
	}
	var out []*Result
	for _, f := range funcs {
		r, err := f(seed)
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}
