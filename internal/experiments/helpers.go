package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/afg"
	"repro/internal/monitor"
	"repro/internal/repository"
	"repro/internal/resource"
	"repro/internal/scheduler"
)

// repoSite builds a repository for a homogeneous-speed site with uniform
// random loads in [0, loadMax).
func repoSite(name string, hosts int, speed, loadMax float64, seed int64) *repository.Repository {
	repo := repository.New()
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < hosts; i++ {
		host := fmt.Sprintf("%s-%02d", name, i)
		repo.Resources.Register(repository.ResourceStatic{
			HostName: host, Site: name, Arch: "solaris",
			TotalMemory: 1 << 30, SpeedFactor: speed,
		})
		repo.Resources.UpdateDynamic(host, rng.Float64()*loadMax, 1<<30, time.Now())
	}
	return repo
}

// repoSiteSpeeds builds a site with explicit per-host speed factors and
// idle loads (fully deterministic — used by the Fig 4 experiment).
func repoSiteSpeeds(name string, speeds []float64) *repository.Repository {
	repo := repository.New()
	for i, sp := range speeds {
		host := fmt.Sprintf("%s-%02d", name, i)
		repo.Resources.Register(repository.ResourceStatic{
			HostName: host, Site: name, Arch: "solaris",
			TotalMemory: 1 << 30, SpeedFactor: sp,
		})
		repo.Resources.UpdateDynamic(host, 0, 1<<30, time.Now())
	}
	return repo
}

// repoSiteSkewed builds a heterogeneous site with speed spread and a heavy
// load skew: half the hosts idle, half heavily loaded.
func repoSiteSkewed(name string, hosts int, spread float64, seed int64) *repository.Repository {
	repo := repository.New()
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < hosts; i++ {
		host := fmt.Sprintf("%s-%02d", name, i)
		speed := 1 + rng.Float64()*(spread-1)
		repo.Resources.Register(repository.ResourceStatic{
			HostName: host, Site: name, Arch: "solaris",
			TotalMemory: 1 << 30, SpeedFactor: speed,
		})
		load := rng.Float64() * 0.3
		if i%2 == 1 {
			load = 2 + rng.Float64()*3
		}
		repo.Resources.UpdateDynamic(host, load, 1<<30, time.Now())
	}
	return repo
}

// truthFromRepos builds the ground-truth time model directly from the
// repositories' recorded speeds/loads (the repositories ARE the truth in
// these closed-world experiments).
func truthFromRepos(sites map[string]*repository.Repository) scheduler.TimeModel {
	specs := map[string]repository.ResourceRecord{}
	// Sorted site order: duplicate host names across repositories resolve
	// by last write, which must not depend on map iteration order.
	names := make([]string, 0, len(sites))
	for name := range sites {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		for _, rec := range sites[name].Resources.List() {
			specs[rec.Static.HostName] = rec
		}
	}
	return func(task *afg.Task, host string) float64 {
		rec, ok := specs[host]
		if !ok {
			return task.ComputeCost
		}
		return task.ComputeCost / rec.Static.SpeedFactor * (1 + rec.Dynamic.Load)
	}
}

// independentTasks builds a graph of n unconnected tasks (pure placement
// benchmark: no precedence effects).
func independentTasks(n int, maxCost float64, seed int64) *afg.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := afg.New(fmt.Sprintf("independent-%d", n))
	for i := 0; i < n; i++ {
		g.AddTask(&afg.Task{
			ID:          afg.TaskID(fmt.Sprintf("t%03d", i)),
			Function:    "synthetic.noop",
			ComputeCost: 0.2 + rng.Float64()*maxCost,
		})
	}
	return g
}

// genHosts builds n hosts; the first busyFrac×n are volatile shared
// machines, the rest are idle workstations with constant load.
func genHosts(n int, busyFrac float64, seed int64) []*resource.Host {
	busy := int(busyFrac*float64(n) + 0.5)
	var out []*resource.Host
	for i := 0; i < n; i++ {
		model := resource.LoadModel{Baseline: 0.05, Volatility: 0, Rho: 0.9}
		if i < busy {
			model = resource.LoadModel{Baseline: 0.6, Volatility: 0.3, Rho: 0.6}
		}
		out = append(out, resource.NewHost(
			resource.HostSpec{Name: fmt.Sprintf("h%02d", i), Site: "syr", TotalMemory: 1 << 30},
			model, seed+int64(i)))
	}
	return out
}

// countingSink tallies Group Manager output.
type countingSink struct {
	updates int
	downs   int
	ups     int
}

func (s *countingSink) UpdateWorkload(monitor.Measurement) { s.updates++ }
func (s *countingSink) HostDown(string, time.Time)         { s.downs++ }
func (s *countingSink) HostUp(string, time.Time)           { s.ups++ }

// runMonitorRounds runs 100 monitoring rounds over 32 hosts (busyFrac of
// them volatile) and returns the number of forwarded updates.
func runMonitorRounds(busyFrac float64, disableFilter bool, seed int64) int {
	hosts := genHosts(32, busyFrac, seed)
	cfg := monitor.DefaultConfig
	cfg.DisableFilter = disableFilter
	sink := &countingSink{}
	gm := monitor.NewGroupManager("g", "syr", hosts, sink, cfg, nil)
	for r := 0; r < 100; r++ {
		gm.Tick()
	}
	return gm.Stats().Forwarded
}
