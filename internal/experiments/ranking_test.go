//vdce:ignore-file floateq golden regression file: exact equality against the blessed RANKING grid is the contract
package experiments

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/scheduler"
)

// update rewrites the golden files instead of comparing against them:
//
//	go test ./internal/experiments -run Golden -update
var update = flag.Bool("update", false, "rewrite golden files")

func TestRankingCoversGridAndRegistry(t *testing.T) {
	cfg := DefaultRankingConfig(1)
	cfg.Sizes = []int{10, 25}
	cfg.CCRs = []float64{0.5, 2}
	cfg.GraphsPerCell = 2
	r, err := RankingWith(cfg)
	if err != nil {
		t.Fatal(err)
	}
	names := scheduler.Policies()
	if want := len(cfg.Sizes) * len(cfg.CCRs); len(r.Series.Rows) != want {
		t.Fatalf("rows = %d, want %d", len(r.Series.Rows), want)
	}
	if len(r.Series.YLabels) != 1+len(names) { // "ccr" + one SLR column per policy
		t.Fatalf("ylabels = %v", r.Series.YLabels)
	}
	if got := int(r.Metrics["runs"]); got != len(cfg.Sizes)*len(cfg.CCRs)*cfg.GraphsPerCell {
		t.Fatalf("runs = %d", got)
	}
	bestTotal := 0
	for _, name := range names {
		slr := r.Metrics["slr_"+name]
		if slr < 1 {
			t.Fatalf("policy %s: mean SLR %v below the lower bound", name, slr)
		}
		sp := r.Metrics["speedup_"+name]
		if sp <= 0 {
			t.Fatalf("policy %s: speedup %v", name, sp)
		}
		bestTotal += int(r.Metrics["best_"+name])
	}
	// Joint bests may double-count, but every run crowns at least one.
	if bestTotal < int(r.Metrics["runs"]) {
		t.Fatalf("best counts %d < runs %v", bestTotal, r.Metrics["runs"])
	}
	// Pairwise counts are consistent: wins(a,b) + wins(b,a) <= runs.
	for _, a := range names {
		for _, b := range names {
			if a == b {
				continue
			}
			ab := int(r.Metrics["wins_"+a+"_vs_"+b])
			ba := int(r.Metrics["wins_"+b+"_vs_"+a])
			if ab+ba > int(r.Metrics["runs"]) {
				t.Fatalf("pairwise %s/%s inconsistent: %d + %d > %v", a, b, ab, ba, r.Metrics["runs"])
			}
		}
	}
}

// Every run of a cell scores every selected policy, and per-run SLR stays
// at or above 1 — the critical-path bound is a real lower bound.
func TestRankingCellsSLRBound(t *testing.T) {
	cfg := DefaultRankingConfig(3)
	cfg.Sizes = []int{15}
	cfg.CCRs = []float64{1}
	cfg.GraphsPerCell = 2
	cfg.Policies = []string{"heft", "cpop", "random"}
	cells, names, err := RankingCells(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 3 || len(cells) != 2 {
		t.Fatalf("names %v, cells %d", names, len(cells))
	}
	for _, c := range cells {
		if len(c.Makespan) != len(names) || len(c.SLR) != len(names) || len(c.Speedup) != len(names) {
			t.Fatalf("ragged cell %+v", c)
		}
		for p := range names {
			if c.SLR[p] < 1 {
				t.Fatalf("%s: SLR %v < 1 (v=%d ccr=%g)", names[p], c.SLR[p], c.Size, c.CCR)
			}
		}
	}
}

// rankingGolden is the committed shape of the golden run.
type rankingGolden struct {
	Policies []string      `json:"policies"`
	Cells    []RankingCell `json:"cells"`
}

// goldenConfig is the fixed-seed mini-grid whose makespans and SLRs are
// committed under testdata. Any PR that changes these numbers changed
// scheduling or simulation behavior and must either fix the regression or
// consciously re-bless the file with -update.
func goldenConfig() RankingConfig {
	cfg := DefaultRankingConfig(7)
	cfg.Sizes = []int{10, 20, 30}
	cfg.CCRs = []float64{0.5, 1, 2}
	cfg.GraphsPerCell = 1
	return cfg
}

func TestRankingGolden(t *testing.T) {
	cells, names, err := RankingCells(goldenConfig())
	if err != nil {
		t.Fatal(err)
	}
	got := rankingGolden{Policies: names, Cells: cells}
	path := filepath.Join("testdata", "ranking_golden.json")
	if *update {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d cells × %d policies)", path, len(cells), len(names))
		return
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	var want rankingGolden
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(want.Policies) != len(got.Policies) {
		t.Fatalf("policy set changed: golden %v, now %v — re-bless with -update if intended",
			want.Policies, got.Policies)
	}
	for i := range want.Policies {
		if want.Policies[i] != got.Policies[i] {
			t.Fatalf("policy set changed: golden %v, now %v — re-bless with -update if intended",
				want.Policies, got.Policies)
		}
	}
	if len(want.Cells) != len(got.Cells) {
		t.Fatalf("cell count changed: golden %d, now %d", len(want.Cells), len(got.Cells))
	}
	for i, w := range want.Cells {
		g := got.Cells[i]
		if w.Size != g.Size || w.CCR != g.CCR || w.Graph != g.Graph {
			t.Fatalf("cell %d identity changed: golden {v=%d ccr=%g g=%d}, now {v=%d ccr=%g g=%d}",
				i, w.Size, w.CCR, w.Graph, g.Size, g.CCR, g.Graph)
		}
		for p := range want.Policies {
			if w.Makespan[p] != g.Makespan[p] {
				t.Errorf("cell v=%d ccr=%g: %s makespan drifted: golden %v, now %v",
					w.Size, w.CCR, want.Policies[p], w.Makespan[p], g.Makespan[p])
			}
			if w.SLR[p] != g.SLR[p] {
				t.Errorf("cell v=%d ccr=%g: %s SLR drifted: golden %v, now %v",
					w.Size, w.CCR, want.Policies[p], w.SLR[p], g.SLR[p])
			}
			if w.Speedup[p] != g.Speedup[p] {
				t.Errorf("cell v=%d ccr=%g: %s speedup drifted: golden %v, now %v",
					w.Size, w.CCR, want.Policies[p], w.Speedup[p], g.Speedup[p])
			}
		}
	}
	if t.Failed() {
		t.Log("behavior drifted from the golden run; if the change is intended, re-bless with: go test ./internal/experiments -run RankingGolden -update")
	}
}

// TestRankingWorkersDeterminism holds the parallel grid to its bit-identity
// contract: Workers = 1, 4, and NumCPU must produce byte-identical cell
// slices — and therefore byte-identical golden-file output, which is also
// checked against the committed file so the contract is anchored to the
// same artifact TestRankingGolden blesses.
func TestRankingWorkersDeterminism(t *testing.T) {
	encode := func(workers int) []byte {
		t.Helper()
		cfg := goldenConfig()
		cfg.Workers = workers
		cells, names, err := RankingCells(cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		data, err := json.MarshalIndent(rankingGolden{Policies: names, Cells: cells}, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	serial := encode(1)
	for _, w := range []int{4, runtime.NumCPU()} {
		if got := encode(w); !bytes.Equal(got, serial) {
			t.Fatalf("workers=%d cells differ from the serial run", w)
		}
	}
	want, err := os.ReadFile(filepath.Join("testdata", "ranking_golden.json"))
	if err != nil {
		t.Fatalf("%v (run TestRankingGolden with -update to create it)", err)
	}
	if !bytes.Equal(append(serial, '\n'), want) {
		t.Fatal("serial cells differ from the committed golden file; re-bless with -update if intended")
	}
}
