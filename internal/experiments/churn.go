package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"repro/internal/afg"
	"repro/internal/dagen"
	"repro/internal/netsim"
	"repro/internal/scheduler"
	"repro/internal/vis"
)

// The CHURN experiment is the fault-tolerance twin of RANKING: the same
// parametric dagen grid (task count × CCR), but instead of comparing
// scheduling policies on a healthy environment it schedules each cell once
// (with a baseline policy) and then replays the plan under a seeded churn
// trace — hosts failing mid-run, stragglers overrunning their predictions —
// once per registered frontier re-planner. Scores are makespan degradation
// versus the fault-free replay of the same table, plus re-plan and
// kill counts. Every adopted re-plan inside the executor is certified by
// scheduler.CertifyReplan, so a table that breaks precedence or host
// exclusivity fails the experiment rather than producing a data point.

// ChurnConfig parameterises the CHURN sweep. Zero fields take the
// DefaultChurnConfig values (Beta: only negative selects the default, as
// in RankingConfig).
type ChurnConfig struct {
	Sizes         []int
	CCRs          []float64
	Alpha         float64
	OutDegree     int
	Beta          float64
	GraphsPerCell int
	Sites         int
	HostsPerSite  int

	// Policy schedules the baseline plan each re-planner repairs.
	Policy string
	// Replanners selects the frontier re-planners to compare; nil means
	// every registered one.
	Replanners []string
	// Threshold is the overrun detection threshold (actual > threshold ×
	// predicted raises a deviation); default 1.5.
	Threshold float64
	// Trace tunes the fault injector; a zero value takes
	// scheduler.DefaultChurnTrace.
	Trace scheduler.ChurnTraceConfig

	Seed int64

	// Workers bounds the cell fan-out pool. Cells are independent and each
	// worker builds its own seeded environment, so results are
	// bit-identical to the serial order for any count (1 = serial,
	// 0/negative = GOMAXPROCS).
	Workers int
}

// DefaultChurnConfig is the smoke grid the CHURN experiment runs by
// default: 2 sizes × 2 CCRs × 2 graphs on 3 sites of 3 hosts.
func DefaultChurnConfig(seed int64) ChurnConfig {
	return ChurnConfig{
		Sizes:         []int{20, 40},
		CCRs:          []float64{0.5, 2},
		Alpha:         1,
		OutDegree:     4,
		Beta:          1,
		GraphsPerCell: 2,
		Sites:         3,
		HostsPerSite:  3,
		Policy:        "heft",
		Threshold:     1.5,
		Trace:         scheduler.DefaultChurnTrace,
		Seed:          seed,
	}
}

func (c ChurnConfig) withDefaults() ChurnConfig {
	d := DefaultChurnConfig(c.Seed)
	if len(c.Sizes) == 0 {
		c.Sizes = d.Sizes
	}
	if len(c.CCRs) == 0 {
		c.CCRs = d.CCRs
	}
	if c.Alpha <= 0 {
		c.Alpha = d.Alpha
	}
	if c.OutDegree <= 0 {
		c.OutDegree = d.OutDegree
	}
	if c.Beta < 0 {
		c.Beta = d.Beta
	}
	if c.GraphsPerCell <= 0 {
		c.GraphsPerCell = d.GraphsPerCell
	}
	if c.Sites <= 0 {
		c.Sites = d.Sites
	}
	if c.HostsPerSite <= 0 {
		c.HostsPerSite = d.HostsPerSite
	}
	if c.Policy == "" {
		c.Policy = d.Policy
	}
	if c.Threshold <= 0 {
		c.Threshold = d.Threshold
	}
	if c.Trace == (scheduler.ChurnTraceConfig{}) {
		c.Trace = d.Trace
	}
	return c
}

// ChurnCell is one (size, CCR, graph-seed) run: the fault-free makespan of
// the baseline plan and, per re-planner in the run's name order, the
// makespan under churn, its degradation ratio, and the event counts.
type ChurnCell struct {
	Size  int     `json:"size"`
	CCR   float64 `json:"ccr"`
	Graph int     `json:"graph"`
	//vdce:unit seconds
	FaultFree float64 `json:"fault_free"`
	//vdce:unit seconds
	Makespan    []float64 `json:"makespan"`
	Degradation []float64 `json:"degradation"`
	Replans     []int     `json:"replans"`
	Moved       []int     `json:"moved"`
	Killed      []int     `json:"killed"`
	DupRuns     []int     `json:"dup_runs"`
}

// churnHostRefs rebuilds the dense candidate pool from the ranking
// environment's host list ("siteNN-MM" names own their site prefix).
func churnHostRefs(hosts []string) []scheduler.HostRef {
	refs := make([]scheduler.HostRef, len(hosts))
	for i, h := range hosts {
		site := h
		if j := strings.LastIndex(h, "-"); j > 0 {
			site = h[:j]
		}
		refs[i] = scheduler.HostRef{Site: site, Host: h}
	}
	sort.Slice(refs, func(i, j int) bool {
		if refs[i].Site != refs[j].Site {
			return refs[i].Site < refs[j].Site
		}
		return refs[i].Host < refs[j].Host
	})
	return refs
}

// churnCell scores one grid cell: schedule the seeded graph once with the
// baseline policy, replay it fault-free for the denominator, then run the
// churn executor once per re-planner on the same seeded trace.
func churnCell(cfg ChurnConfig, r rankingRun, names []string, policy scheduler.Policy,
	env scheduler.Request, net *netsim.Network, hosts []string,
	refs []scheduler.HostRef, truth scheduler.TimeModel) (ChurnCell, error) {
	cellSeed := cfg.Seed + int64(r.size)*1_000_003 + int64(r.gi)*7919 + int64(r.ccr*1000)
	g := dagen.Random(dagen.Params{
		Tasks: r.size, CCR: r.ccr, Alpha: cfg.Alpha,
		OutDegree: cfg.OutDegree, Beta: cfg.Beta,
		CommBandwidth: policyWANBand,
		Seed:          cellSeed,
	})
	items := (&scheduler.Batch{Scheduler: scheduler.Bind(policy, env), Workers: 1}).
		Schedule([]*afg.Graph{g})
	if items[0].Err != nil {
		return ChurnCell{}, fmt.Errorf("churn: %s on v=%d ccr=%g: %w", cfg.Policy, r.size, r.ccr, items[0].Err)
	}
	table := items[0].Table
	fair, err := scheduler.Simulate(g, table, truth, net)
	if err != nil {
		return ChurnCell{}, fmt.Errorf("churn: fault-free simulate: %w", err)
	}
	trace := scheduler.GenerateChurnTrace(hosts, fair, cfg.Trace, cellSeed+1)
	cell := ChurnCell{Size: r.size, CCR: r.ccr, Graph: r.gi, FaultFree: fair}
	for _, name := range names {
		out, err := scheduler.RunChurn(g, table, truth, net, refs, trace, scheduler.ChurnConfig{
			OverrunThreshold: cfg.Threshold,
			Replanner:        name,
		})
		if err != nil {
			return ChurnCell{}, fmt.Errorf("churn: %s on v=%d ccr=%g: %w", name, r.size, r.ccr, err)
		}
		cell.Makespan = append(cell.Makespan, out.Makespan)
		cell.Degradation = append(cell.Degradation, out.Makespan/fair)
		cell.Replans = append(cell.Replans, out.Replans)
		cell.Moved = append(cell.Moved, out.Moved)
		cell.Killed = append(cell.Killed, out.Killed)
		cell.DupRuns = append(cell.DupRuns, out.DupRuns)
	}
	return cell, nil
}

// ChurnCells runs the sweep and returns the per-run scores plus the
// resolved re-planner order. The worker-pool contract matches
// RankingCells: each worker owns a seeded environment, each cell writes
// only its own index, and the result is byte-identical to a serial run for
// any worker count.
func ChurnCells(cfg ChurnConfig) ([]ChurnCell, []string, error) {
	cfg = cfg.withDefaults()
	names := cfg.Replanners
	if len(names) == 0 {
		names = scheduler.Replanners()
	} else {
		names = append([]string(nil), names...)
		sort.Strings(names)
	}
	for _, name := range names {
		if _, err := scheduler.LookupReplanner(name); err != nil {
			return nil, nil, err
		}
	}
	policy, err := scheduler.Lookup(cfg.Policy)
	if err != nil {
		return nil, nil, err
	}

	rcfg := RankingConfig{
		Sizes: cfg.Sizes, CCRs: cfg.CCRs, Alpha: cfg.Alpha,
		OutDegree: cfg.OutDegree, Beta: cfg.Beta,
		GraphsPerCell: cfg.GraphsPerCell, Sites: cfg.Sites,
		HostsPerSite: cfg.HostsPerSite, Seed: cfg.Seed,
	}
	runs := rankingGrid(rcfg)
	cells := make([]ChurnCell, len(runs))
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(runs) {
		workers = len(runs)
	}

	if workers <= 1 {
		env, repos, net, hosts := rankingEnv(rcfg)
		truth := truthFromRepos(repos)
		refs := churnHostRefs(hosts)
		for i, r := range runs {
			cell, err := churnCell(cfg, r, names, policy, env, net, hosts, refs, truth)
			if err != nil {
				return nil, nil, err
			}
			cells[i] = cell
		}
		return cells, names, nil
	}

	errs := make([]error, len(runs))
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			env, repos, net, hosts := rankingEnv(rcfg)
			truth := truthFromRepos(repos)
			refs := churnHostRefs(hosts)
			for i := range idx {
				cells[i], errs[i] = churnCell(cfg, runs[i], names, policy, env, net, hosts, refs, truth)
			}
		}()
	}
	for i := range runs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	return cells, names, nil
}

// Churn runs the default fault-injection sweep (DefaultChurnConfig).
func Churn(seed int64) (*Result, error) {
	return ChurnWith(DefaultChurnConfig(seed))
}

// ChurnWith runs the sweep under cfg and folds the cells into a Result:
// one series row per (size, CCR) cell carrying the mean makespan
// degradation of every re-planner, and metrics aggregating degradation,
// re-plan, kill, and duplicate-promotion counts across all runs.
func ChurnWith(cfg ChurnConfig) (*Result, error) {
	cfg = cfg.withDefaults()
	cells, names, err := ChurnCells(cfg)
	if err != nil {
		return nil, err
	}
	res := &Result{ID: "CHURN", Metrics: map[string]float64{}}
	yl := []string{"ccr"}
	for _, n := range names {
		yl = append(yl, "deg_"+n)
	}
	res.Series = vis.Series{
		Title: fmt.Sprintf("Churn — mean makespan degradation per re-planner over a %d-size × %d-CCR dagen grid, %d graphs/cell (policy %s, threshold %g, fail %g, straggle %g×%g; re-planners: %s)",
			len(cfg.Sizes), len(cfg.CCRs), cfg.GraphsPerCell, cfg.Policy, cfg.Threshold,
			cfg.Trace.FailFraction, cfg.Trace.StraggleFraction, cfg.Trace.StraggleFactor,
			strings.Join(names, ", ")),
		XLabel:  "tasks",
		YLabels: yl,
	}

	// Per-cell mean degradation rows, grid order (sizes outer, CCRs inner).
	ci := 0
	for _, size := range cfg.Sizes {
		for _, ccr := range cfg.CCRs {
			row := []float64{float64(size), ccr}
			sums := make([]float64, len(names))
			n := 0
			//vdce:ignore floateq grouping rows by grid axis value: CCRs are copied from the config verbatim, never recomputed
			for ; ci < len(cells) && cells[ci].Size == size && cells[ci].CCR == ccr; ci++ {
				for p, v := range cells[ci].Degradation {
					sums[p] += v
				}
				n++
			}
			for _, s := range sums {
				row = append(row, s/float64(n))
			}
			res.Series.Rows = append(res.Series.Rows, row)
		}
	}

	for p, name := range names {
		var deg, rp, mv, kl, dp float64
		for _, c := range cells {
			deg += c.Degradation[p]
			rp += float64(c.Replans[p])
			mv += float64(c.Moved[p])
			kl += float64(c.Killed[p])
			dp += float64(c.DupRuns[p])
		}
		n := float64(len(cells))
		res.Metrics["degradation_"+name] = deg / n
		res.Metrics["replans_"+name] = rp / n
		res.Metrics["moved_"+name] = mv / n
		res.Metrics["killed_"+name] = kl / n
		res.Metrics["dup_runs_"+name] = dp / n
	}
	res.Metrics["runs"] = float64(len(cells))
	return res, nil
}
