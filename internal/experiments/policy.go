package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/netsim"
	"repro/internal/scheduler"
	"repro/internal/vis"
)

// policyWANLatency/policyWANBandwidth shape the star WAN connecting the 32
// sites of the POLICY experiment, so the heuristics' transfer terms (HEFT's
// mean communication costs, the faithful walk's transfer_time) price real
// network distance instead of free communication.
const (
	policyWANLatency  = 5 * time.Millisecond
	policyWANBand     = 1e7 // bytes/second
	policyConfigLabel = "policy#"
)

// PolicyComparison scores every registered scheduling policy on the SCALE
// workload — 6×1000-task graphs batched against 32 sites × 4 hosts over a
// star WAN — by combined simulated makespan: all applications replayed
// against the same host pool at once, so cross-application contention
// counts. One row per policy, in registry (sorted-name) order.
func PolicyComparison(seed int64) (*Result, error) {
	return PolicyComparisonFor(seed, nil)
}

// PolicyComparisonFor is PolicyComparison restricted to the named policies
// (nil = every registered policy). Every policy runs against one shared,
// seed-deterministic environment — policies never mutate the repositories,
// so sharing is observationally identical to the old fresh-per-policy
// rebuild — and one shared cost-matrix cache, so the batched per-(task,
// host) gather happens once per graph across the whole comparison instead
// of once per policy per graph. Scheduling is serial so the ledger
// policy's tables are deterministic and the wall times compare algorithms,
// not worker counts.
func PolicyComparisonFor(seed int64, names []string) (*Result, error) {
	if len(names) == 0 {
		names = scheduler.Policies()
	} else {
		names = append([]string(nil), names...)
		sort.Strings(names)
	}
	res := &Result{ID: "POLICY", Metrics: map[string]float64{}}
	res.Series = vis.Series{
		Title: fmt.Sprintf("Policy comparison — combined makespan of %d×%d-task apps on %d sites (%s)",
			scaleGraphs, scaleTasks, scaleSites, strings.Join(names, ", ")),
		XLabel:  policyConfigLabel,
		YLabels: []string{"combined_makespan_s", "sched_wall_s"},
	}
	graphs := scaleGraphSet(seed)

	local, remotes, _, repos := scaleSelectors(seed, true)
	var siteNames []string
	for name := range repos {
		siteNames = append(siteNames, name)
	}
	sort.Strings(siteNames)
	net := netsim.StarTopology(siteNames, policyWANLatency, policyWANBand, 1)
	env := scheduler.Request{Local: local, Remotes: remotes, Net: net,
		Sites: repos,
		Config: scheduler.NewConfig(scheduler.WithSeed(seed),
			scheduler.WithCostCache(scheduler.NewCostCache()))}
	truth := truthFromRepos(repos)
	merged, err := mergeGraphs(graphs)
	if err != nil {
		return nil, err
	}
	// Charge the shared gather work to setup, not to whichever policy
	// happens to run first: PrewarmCosts fills the cost-matrix cache AND,
	// as a side effect, warms the shared prediction caches for every
	// (task kind, host) pair — so the per-policy sched_wall_s column
	// compares algorithms, not cold-vs-warm cache state, whatever subset
	// of policies is selected.
	for _, g := range graphs {
		req := env
		req.Graph = g
		if err := req.PrewarmCosts(); err != nil {
			return nil, fmt.Errorf("prewarm costs: %w", err)
		}
	}

	for pi, name := range names {
		p, err := scheduler.Lookup(name)
		if err != nil {
			return nil, err
		}
		// A Bind-wrapped "ledger" policy gets its batch-wide shared ledger
		// from Batch.Schedule itself — cross-application awareness is its
		// point.
		b := &scheduler.Batch{Scheduler: scheduler.Bind(p, env), Workers: 1}
		t0 := time.Now()
		items := b.Schedule(graphs)
		wall := time.Since(t0).Seconds()

		table, err := mergeTables(graphs, items)
		if err != nil {
			return nil, fmt.Errorf("policy %s: %w", name, err)
		}
		mk, err := scheduler.Simulate(merged, table, truth, net)
		if err != nil {
			return nil, fmt.Errorf("policy %s: simulate: %w", name, err)
		}
		res.Series.Rows = append(res.Series.Rows, []float64{float64(pi + 1), mk, wall})
		res.Metrics["makespan_"+name] = mk
	}
	if f, ok := res.Metrics["makespan_faithful"]; ok {
		if h, ok := res.Metrics["makespan_heft"]; ok && h > 0 {
			res.Metrics["faithful_over_heft"] = f / h
		}
		if c, ok := res.Metrics["makespan_cpop"]; ok && c > 0 {
			res.Metrics["faithful_over_cpop"] = f / c
		}
	}
	return res, nil
}
