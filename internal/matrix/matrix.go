// Package matrix provides the dense linear-algebra substrate used by the
// VDCE task libraries: matrix construction, arithmetic, LU decomposition
// with partial pivoting, triangular solves, inversion, and norms.
//
// The paper's flagship application (Fig 3) is a Linear Equation Solver
// built from LU decomposition, matrix inversion, and matrix multiplication
// tasks; this package supplies those kernels with real computational load.
package matrix

import (
	"errors"
	"fmt"
	"math"
)

// Matrix is a dense, row-major matrix of float64 values.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// ErrDimension is returned when operand dimensions are incompatible.
var ErrDimension = errors.New("matrix: incompatible dimensions")

// ErrSingular is returned when a factorization or solve encounters a
// (numerically) singular matrix.
var ErrSingular = errors.New("matrix: singular matrix")

// New returns a zero-initialised r×c matrix.
func New(r, c int) *Matrix {
	if r <= 0 || c <= 0 {
		panic(fmt.Sprintf("matrix: invalid dimensions %dx%d", r, c))
	}
	return &Matrix{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 || len(rows[0]) == 0 {
		return nil, ErrDimension
	}
	m := New(len(rows), len(rows[0]))
	for i, row := range rows {
		if len(row) != m.Cols {
			return nil, ErrDimension
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], row)
	}
	return m, nil
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Equal reports whether m and n have identical shape and elements within tol.
func (m *Matrix) Equal(n *Matrix, tol float64) bool {
	if m.Rows != n.Rows || m.Cols != n.Cols {
		return false
	}
	for i := range m.Data {
		if math.Abs(m.Data[i]-n.Data[i]) > tol {
			return false
		}
	}
	return true
}

// Add returns m + n.
func (m *Matrix) Add(n *Matrix) (*Matrix, error) {
	if m.Rows != n.Rows || m.Cols != n.Cols {
		return nil, ErrDimension
	}
	out := New(m.Rows, m.Cols)
	for i := range m.Data {
		out.Data[i] = m.Data[i] + n.Data[i]
	}
	return out, nil
}

// Sub returns m - n.
func (m *Matrix) Sub(n *Matrix) (*Matrix, error) {
	if m.Rows != n.Rows || m.Cols != n.Cols {
		return nil, ErrDimension
	}
	out := New(m.Rows, m.Cols)
	for i := range m.Data {
		out.Data[i] = m.Data[i] - n.Data[i]
	}
	return out, nil
}

// Scale returns s*m.
func (m *Matrix) Scale(s float64) *Matrix {
	out := New(m.Rows, m.Cols)
	for i := range m.Data {
		out.Data[i] = s * m.Data[i]
	}
	return out
}

// Mul returns the matrix product m*n using a cache-friendly ikj loop order.
func (m *Matrix) Mul(n *Matrix) (*Matrix, error) {
	if m.Cols != n.Rows {
		return nil, ErrDimension
	}
	out := New(m.Rows, n.Cols)
	for i := 0; i < m.Rows; i++ {
		mrow := m.Data[i*m.Cols : (i+1)*m.Cols]
		orow := out.Data[i*out.Cols : (i+1)*out.Cols]
		for k, mv := range mrow {
			if mv == 0 {
				continue
			}
			nrow := n.Data[k*n.Cols : (k+1)*n.Cols]
			for j, nv := range nrow {
				orow[j] += mv * nv
			}
		}
	}
	return out, nil
}

// MulVec returns the matrix-vector product m*x.
func (m *Matrix) MulVec(x []float64) ([]float64, error) {
	if m.Cols != len(x) {
		return nil, ErrDimension
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out, nil
}

// Transpose returns mᵀ.
func (m *Matrix) Transpose() *Matrix {
	out := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Data[j*out.Cols+i] = m.Data[i*m.Cols+j]
		}
	}
	return out
}

// NormInf returns the infinity (max absolute row sum) norm.
func (m *Matrix) NormInf() float64 {
	var max float64
	for i := 0; i < m.Rows; i++ {
		var s float64
		for _, v := range m.Data[i*m.Cols : (i+1)*m.Cols] {
			s += math.Abs(v)
		}
		if s > max {
			max = s
		}
	}
	return max
}

// LU holds an LU factorization with partial pivoting: P*A = L*U, where L is
// unit lower triangular and U is upper triangular, packed into LU.
type LU struct {
	N     int
	LU    *Matrix // combined L (strict lower, unit diagonal implied) and U
	Pivot []int   // row permutation: row i of P*A is row Pivot[i] of A
	Signs int     // +1 or -1, sign of the permutation (for determinants)
}

// Factor computes the LU decomposition of the square matrix a with partial
// pivoting. It returns ErrSingular if a zero pivot is encountered.
func Factor(a *Matrix) (*LU, error) {
	if a.Rows != a.Cols {
		return nil, ErrDimension
	}
	n := a.Rows
	lu := a.Clone()
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	sign := 1
	for k := 0; k < n; k++ {
		// Partial pivot: largest |value| in column k at or below row k.
		p := k
		max := math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := math.Abs(lu.At(i, k)); v > max {
				max, p = v, i
			}
		}
		if max == 0 {
			return nil, ErrSingular
		}
		if p != k {
			r1 := lu.Data[k*n : (k+1)*n]
			r2 := lu.Data[p*n : (p+1)*n]
			for j := range r1 {
				r1[j], r2[j] = r2[j], r1[j]
			}
			piv[k], piv[p] = piv[p], piv[k]
			sign = -sign
		}
		pivVal := lu.At(k, k)
		for i := k + 1; i < n; i++ {
			mult := lu.At(i, k) / pivVal
			lu.Set(i, k, mult)
			if mult == 0 {
				continue
			}
			irow := lu.Data[i*n : (i+1)*n]
			krow := lu.Data[k*n : (k+1)*n]
			for j := k + 1; j < n; j++ {
				irow[j] -= mult * krow[j]
			}
		}
	}
	return &LU{N: n, LU: lu, Pivot: piv, Signs: sign}, nil
}

// Solve solves A*x = b for x given the factorization.
func (f *LU) Solve(b []float64) ([]float64, error) {
	if len(b) != f.N {
		return nil, ErrDimension
	}
	n := f.N
	x := make([]float64, n)
	// Apply permutation, then forward substitution (L is unit lower).
	for i := 0; i < n; i++ {
		x[i] = b[f.Pivot[i]]
	}
	for i := 1; i < n; i++ {
		row := f.LU.Data[i*n : (i+1)*n]
		s := x[i]
		for j := 0; j < i; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s
	}
	// Back substitution (U).
	for i := n - 1; i >= 0; i-- {
		row := f.LU.Data[i*n : (i+1)*n]
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= row[j] * x[j]
		}
		if row[i] == 0 {
			return nil, ErrSingular
		}
		x[i] = s / row[i]
	}
	return x, nil
}

// SolveMatrix solves A*X = B column by column.
func (f *LU) SolveMatrix(b *Matrix) (*Matrix, error) {
	if b.Rows != f.N {
		return nil, ErrDimension
	}
	out := New(b.Rows, b.Cols)
	col := make([]float64, b.Rows)
	for j := 0; j < b.Cols; j++ {
		for i := 0; i < b.Rows; i++ {
			col[i] = b.At(i, j)
		}
		x, err := f.Solve(col)
		if err != nil {
			return nil, err
		}
		for i := 0; i < b.Rows; i++ {
			out.Set(i, j, x[i])
		}
	}
	return out, nil
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	d := float64(f.Signs)
	for i := 0; i < f.N; i++ {
		d *= f.LU.At(i, i)
	}
	return d
}

// L extracts the unit lower-triangular factor.
func (f *LU) L() *Matrix {
	n := f.N
	l := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			l.Set(i, j, f.LU.At(i, j))
		}
		l.Set(i, i, 1)
	}
	return l
}

// U extracts the upper-triangular factor.
func (f *LU) U() *Matrix {
	n := f.N
	u := New(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			u.Set(i, j, f.LU.At(i, j))
		}
	}
	return u
}

// PermutedCopy returns P*A for the original matrix a (a convenience used by
// tests to verify P*A = L*U).
func (f *LU) PermutedCopy(a *Matrix) *Matrix {
	n := f.N
	out := New(n, n)
	for i := 0; i < n; i++ {
		copy(out.Data[i*n:(i+1)*n], a.Data[f.Pivot[i]*n:(f.Pivot[i]+1)*n])
	}
	return out
}

// Inverse computes A⁻¹ via LU decomposition.
func Inverse(a *Matrix) (*Matrix, error) {
	f, err := Factor(a)
	if err != nil {
		return nil, err
	}
	return f.SolveMatrix(Identity(a.Rows))
}

// Solve solves A*x = b directly (factor + solve).
func Solve(a *Matrix, b []float64) ([]float64, error) {
	f, err := Factor(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}

// Residual returns ||A*x - b||∞, a correctness measure for solver results.
func Residual(a *Matrix, x, b []float64) (float64, error) {
	ax, err := a.MulVec(x)
	if err != nil {
		return 0, err
	}
	if len(b) != len(ax) {
		return 0, ErrDimension
	}
	var max float64
	for i := range ax {
		if d := math.Abs(ax[i] - b[i]); d > max {
			max = d
		}
	}
	return max, nil
}

// String renders a small matrix for debugging.
func (m *Matrix) String() string {
	s := fmt.Sprintf("Matrix %dx%d", m.Rows, m.Cols)
	if m.Rows*m.Cols <= 64 {
		for i := 0; i < m.Rows; i++ {
			s += "\n "
			for j := 0; j < m.Cols; j++ {
				s += fmt.Sprintf("%8.3f", m.At(i, j))
			}
		}
	}
	return s
}
