package matrix

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomMatrix(rng *rand.Rand, r, c int) *Matrix {
	m := New(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

// diagonally dominant matrices are comfortably non-singular.
func randomDominant(rng *rand.Rand, n int) *Matrix {
	m := randomMatrix(rng, n, n)
	for i := 0; i < n; i++ {
		var s float64
		for j := 0; j < n; j++ {
			s += math.Abs(m.At(i, j))
		}
		m.Set(i, i, s+1)
	}
	return m
}

func TestNewZeroInitialised(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("bad shape: %+v", m)
	}
	for i, v := range m.Data {
		if v != 0 {
			t.Fatalf("Data[%d] = %v, want 0", i, v)
		}
	}
}

func TestNewPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for 0x0 matrix")
		}
	}()
	New(0, 0)
}

func TestFromRows(t *testing.T) {
	m, err := FromRows([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Fatalf("wrong elements: %v", m)
	}
}

func TestFromRowsRagged(t *testing.T) {
	if _, err := FromRows([][]float64{{1, 2}, {3}}); err != ErrDimension {
		t.Fatalf("err = %v, want ErrDimension", err)
	}
	if _, err := FromRows(nil); err != ErrDimension {
		t.Fatalf("err = %v, want ErrDimension", err)
	}
}

func TestIdentity(t *testing.T) {
	id := Identity(4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := 0.0
			if i == j {
				want = 1.0
			}
			if id.At(i, j) != want { //vdce:ignore floateq identity matrix entries are exact 0/1 constants
				t.Fatalf("I(%d,%d) = %v", i, j, id.At(i, j))
			}
		}
	}
}

func TestAddSubScale(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := FromRows([][]float64{{5, 6}, {7, 8}})
	sum, err := a.Add(b)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := FromRows([][]float64{{6, 8}, {10, 12}})
	if !sum.Equal(want, 0) {
		t.Fatalf("sum = %v", sum)
	}
	diff, _ := sum.Sub(b)
	if !diff.Equal(a, 0) {
		t.Fatalf("diff = %v", diff)
	}
	sc := a.Scale(2)
	want2, _ := FromRows([][]float64{{2, 4}, {6, 8}})
	if !sc.Equal(want2, 0) {
		t.Fatalf("scale = %v", sc)
	}
}

func TestAddDimensionMismatch(t *testing.T) {
	a := New(2, 2)
	b := New(3, 2)
	if _, err := a.Add(b); err != ErrDimension {
		t.Fatalf("err = %v", err)
	}
	if _, err := a.Sub(b); err != ErrDimension {
		t.Fatalf("err = %v", err)
	}
}

func TestMulKnown(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := FromRows([][]float64{{5, 6}, {7, 8}})
	c, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := FromRows([][]float64{{19, 22}, {43, 50}})
	if !c.Equal(want, 1e-12) {
		t.Fatalf("c = %v", c)
	}
}

func TestMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randomMatrix(rng, 7, 7)
	c, err := a.Mul(Identity(7))
	if err != nil {
		t.Fatal(err)
	}
	if !c.Equal(a, 1e-12) {
		t.Fatal("A*I != A")
	}
}

func TestMulDimensionMismatch(t *testing.T) {
	a := New(2, 3)
	b := New(2, 3)
	if _, err := a.Mul(b); err != ErrDimension {
		t.Fatalf("err = %v", err)
	}
}

func TestMulVec(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	y, err := a.MulVec([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if y[0] != 3 || y[1] != 7 {
		t.Fatalf("y = %v", y)
	}
	if _, err := a.MulVec([]float64{1}); err != ErrDimension {
		t.Fatalf("err = %v", err)
	}
}

func TestTranspose(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	at := a.Transpose()
	if at.Rows != 3 || at.Cols != 2 {
		t.Fatalf("shape %dx%d", at.Rows, at.Cols)
	}
	if at.At(2, 1) != 6 || at.At(0, 1) != 4 {
		t.Fatalf("at = %v", at)
	}
	if !at.Transpose().Equal(a, 0) {
		t.Fatal("(Aᵀ)ᵀ != A")
	}
}

func TestLUReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 2, 3, 5, 16, 33} {
		a := randomDominant(rng, n)
		f, err := Factor(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		lu, err := f.L().Mul(f.U())
		if err != nil {
			t.Fatal(err)
		}
		pa := f.PermutedCopy(a)
		if !lu.Equal(pa, 1e-9*float64(n)) {
			t.Fatalf("n=%d: P*A != L*U", n)
		}
	}
}

func TestFactorSingular(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := Factor(a); err != ErrSingular {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestFactorNonSquare(t *testing.T) {
	if _, err := Factor(New(2, 3)); err != ErrDimension {
		t.Fatalf("err = %v, want ErrDimension", err)
	}
}

func TestSolveKnown(t *testing.T) {
	// 2x + y = 5 ; x + 3y = 10 → x = 1, y = 3
	a, _ := FromRows([][]float64{{2, 1}, {1, 3}})
	x, err := Solve(a, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Fatalf("x = %v", x)
	}
}

func TestSolveResidual(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{4, 32, 100} {
		a := randomDominant(rng, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := Solve(a, b)
		if err != nil {
			t.Fatal(err)
		}
		r, err := Residual(a, x, b)
		if err != nil {
			t.Fatal(err)
		}
		if r > 1e-8 {
			t.Fatalf("n=%d: residual %g too large", n, r)
		}
	}
}

func TestSolveWrongLength(t *testing.T) {
	a := Identity(3)
	f, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Solve([]float64{1, 2}); err != ErrDimension {
		t.Fatalf("err = %v", err)
	}
}

func TestInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randomDominant(rng, 8)
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	prod, err := a.Mul(inv)
	if err != nil {
		t.Fatal(err)
	}
	if !prod.Equal(Identity(8), 1e-9) {
		t.Fatal("A*A⁻¹ != I")
	}
}

func TestDeterminant(t *testing.T) {
	a, _ := FromRows([][]float64{{3, 0}, {0, 2}})
	f, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Det()-6) > 1e-12 {
		t.Fatalf("det = %v", f.Det())
	}
	// Permutation changes sign bookkeeping but not the determinant value.
	b, _ := FromRows([][]float64{{0, 2}, {3, 0}})
	fb, err := Factor(b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fb.Det()+6) > 1e-12 {
		t.Fatalf("det = %v, want -6", fb.Det())
	}
}

func TestNormInf(t *testing.T) {
	a, _ := FromRows([][]float64{{1, -2}, {-3, 4}})
	if a.NormInf() != 7 {
		t.Fatalf("norm = %v", a.NormInf())
	}
}

func TestSolveMatrixAgainstInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randomDominant(rng, 6)
	f, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	x, err := f.SolveMatrix(Identity(6))
	if err != nil {
		t.Fatal(err)
	}
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	if !x.Equal(inv, 1e-10) {
		t.Fatal("SolveMatrix(I) != Inverse")
	}
}

func TestParallelMulMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := randomMatrix(rng, 37, 23)
	b := randomMatrix(rng, 23, 41)
	seq, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{1, 2, 4, 100} {
		par, err := a.ParallelMul(b, p)
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if !par.Equal(seq, 1e-12) {
			t.Fatalf("p=%d: parallel result differs", p)
		}
	}
}

func TestParallelFactorMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randomDominant(rng, 96)
	seq, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	par, err := ParallelFactor(a, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !par.LU.Equal(seq.LU, 1e-9) {
		t.Fatal("parallel LU differs from sequential")
	}
	for i := range par.Pivot {
		if par.Pivot[i] != seq.Pivot[i] {
			t.Fatalf("pivot[%d] differs: %d vs %d", i, par.Pivot[i], seq.Pivot[i])
		}
	}
}

func TestParallelFactorSmallFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := randomDominant(rng, 8)
	f, err := ParallelFactor(a, 4)
	if err != nil {
		t.Fatal(err)
	}
	x, err := f.Solve(make([]float64, 8))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range x {
		if v != 0 {
			t.Fatal("A*x=0 should give x=0")
		}
	}
}

// Property: (A+B)ᵀ == Aᵀ+Bᵀ for random small matrices.
func TestPropertyTransposeAdd(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := 1 + rng.Intn(6)
		c := 1 + rng.Intn(6)
		a := randomMatrix(rng, r, c)
		b := randomMatrix(rng, r, c)
		sum, _ := a.Add(b)
		lhs := sum.Transpose()
		rhs, _ := a.Transpose().Add(b.Transpose())
		return lhs.Equal(rhs, 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: solving with a random dominant matrix keeps residual tiny.
func TestPropertySolveResidual(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(24)
		a := randomDominant(rng, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := Solve(a, b)
		if err != nil {
			return false
		}
		r, err := Residual(a, x, b)
		return err == nil && r < 1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: det(A) from LU matches cofactor expansion for 2x2.
func TestPropertyDet2x2(t *testing.T) {
	f := func(a0, a1, a2, a3 float64) bool {
		for _, v := range []float64{a0, a1, a2, a3} {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e6 {
				return true // skip pathological inputs
			}
		}
		m, _ := FromRows([][]float64{{a0, a1}, {a2, a3}})
		want := a0*a3 - a1*a2
		f2, err := Factor(m)
		if err != nil {
			return math.Abs(want) < 1e-6 // singular is acceptable iff det ~ 0
		}
		got := f2.Det()
		scale := math.Max(1, math.Abs(want))
		return math.Abs(got-want)/scale < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMul128(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	x := randomMatrix(rng, 128, 128)
	y := randomMatrix(rng, 128, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := x.Mul(y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParallelMul128(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	x := randomMatrix(rng, 128, 128)
	y := randomMatrix(rng, 128, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := x.ParallelMul(y, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFactor128(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	x := randomDominant(rng, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Factor(x); err != nil {
			b.Fatal(err)
		}
	}
}
