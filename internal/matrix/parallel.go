package matrix

import (
	"runtime"
	"sync"
)

// ParallelMul returns m*n computed with p worker goroutines splitting the
// output rows. p <= 0 selects GOMAXPROCS workers. This is the "parallel
// execution mode" kernel the paper's Application Editor exposes per task
// (Fig 3: LU Decomposition run in parallel on two nodes).
func (m *Matrix) ParallelMul(n *Matrix, p int) (*Matrix, error) {
	if m.Cols != n.Rows {
		return nil, ErrDimension
	}
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p > m.Rows {
		p = m.Rows
	}
	out := New(m.Rows, n.Cols)
	var wg sync.WaitGroup
	chunk := (m.Rows + p - 1) / p
	for w := 0; w < p; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > m.Rows {
			hi = m.Rows
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				mrow := m.Data[i*m.Cols : (i+1)*m.Cols]
				orow := out.Data[i*out.Cols : (i+1)*out.Cols]
				for k, mv := range mrow {
					if mv == 0 {
						continue
					}
					nrow := n.Data[k*n.Cols : (k+1)*n.Cols]
					for j, nv := range nrow {
						orow[j] += mv * nv
					}
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	return out, nil
}

// ParallelFactor computes an LU decomposition with partial pivoting where
// each elimination step's row updates are split across p goroutines.
// For small n it falls back to the sequential Factor.
func ParallelFactor(a *Matrix, p int) (*LU, error) {
	if a.Rows != a.Cols {
		return nil, ErrDimension
	}
	n := a.Rows
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if n < 64 || p == 1 {
		return Factor(a)
	}
	lu := a.Clone()
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	sign := 1
	var wg sync.WaitGroup
	for k := 0; k < n; k++ {
		p0 := k
		max := abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := abs(lu.At(i, k)); v > max {
				max, p0 = v, i
			}
		}
		if max == 0 {
			return nil, ErrSingular
		}
		if p0 != k {
			r1 := lu.Data[k*n : (k+1)*n]
			r2 := lu.Data[p0*n : (p0+1)*n]
			for j := range r1 {
				r1[j], r2[j] = r2[j], r1[j]
			}
			piv[k], piv[p0] = piv[p0], piv[k]
			sign = -sign
		}
		pivVal := lu.At(k, k)
		rows := n - (k + 1)
		if rows <= 0 {
			continue
		}
		workers := p
		if workers > rows {
			workers = rows
		}
		chunk := (rows + workers - 1) / workers
		krow := lu.Data[k*n : (k+1)*n]
		for w := 0; w < workers; w++ {
			lo := k + 1 + w*chunk
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				for i := lo; i < hi; i++ {
					irow := lu.Data[i*n : (i+1)*n]
					mult := irow[k] / pivVal
					irow[k] = mult
					if mult == 0 {
						continue
					}
					for j := k + 1; j < n; j++ {
						irow[j] -= mult * krow[j]
					}
				}
			}(lo, hi)
		}
		wg.Wait()
	}
	return &LU{N: n, LU: lu, Pivot: piv, Signs: sign}, nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
