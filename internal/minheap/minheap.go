// Package minheap is the one binary min-heap under every dense hot loop —
// the graph index's topological frontier, the simulator's event queue, the
// ready-set walks' priority heaps. It is deliberately not container/heap:
// elements order themselves through a concrete LessThan method, so pushes
// and pops stay boxing-free and the comparisons inline into the loops.
package minheap

// Ordered is the element contract: a strict-weak "a sorts before b".
type Ordered[T any] interface{ LessThan(T) bool }

// Heap is a slice-backed binary min-heap. The zero value is ready to use;
// bulk-load by appending, then Init.
type Heap[T Ordered[T]] []T

// Init establishes the heap order over the current contents.
func (h Heap[T]) Init() {
	for i := len(h)/2 - 1; i >= 0; i-- {
		h.down(i)
	}
}

// Push adds v, keeping the heap order.
func (h *Heap[T]) Push(v T) {
	//vdce:ignore allocflow amortized doubling: the backing array reaches the walk's high-water mark and stays; hot callers bulk-load with preallocated capacity before Init
	*h = append(*h, v)
	s := *h
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !s[i].LessThan(s[p]) {
			break
		}
		s[p], s[i] = s[i], s[p]
		i = p
	}
}

// Pop removes and returns the minimum element.
func (h *Heap[T]) Pop() T {
	s := *h
	v := s[0]
	n := len(s) - 1
	s[0], s[n] = s[n], s[0]
	*h = s[:n]
	(*h).down(0)
	return v
}

func (h Heap[T]) down(i int) {
	for {
		l := 2*i + 1
		if l >= len(h) {
			return
		}
		m := l
		if r := l + 1; r < len(h) && h[r].LessThan(h[l]) {
			m = r
		}
		if !h[m].LessThan(h[i]) {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}
