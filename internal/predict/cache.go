package predict

import (
	"sync"
	"sync/atomic"
)

// CacheKey identifies one memoized prediction: the task kind (library
// function), the task "size" (its explicit compute-cost and memory-
// requirement overrides — zero means "take it from the task-performance
// database"), and the resource the prediction is for. Two tasks with the
// same key produce the same prediction against the same repository state,
// so the scheduler can reuse the assembled Inputs instead of re-walking the
// task- and resource-performance databases for every (task, resource) pair.
type CacheKey struct {
	Kind     string  // task-library function name
	Cost     float64 // task's explicit ComputeCost (0 = from task DB)
	MemReq   int64   // task's explicit MemReq (0 = from task DB)
	Resource string  // host name
}

// CacheStats reports cache effectiveness.
type CacheStats struct {
	Hits          uint64
	Misses        uint64
	Entries       int
	Invalidations uint64
}

type cacheEntry struct {
	in  Inputs
	gen uint64
}

// Cache memoizes prediction inputs per (task kind, size, resource). It is
// safe for concurrent use by many scheduling goroutines.
//
// Invalidation is per resource and generation-based: every monitor update
// for a host bumps that host's generation, which makes all entries stored
// under an older generation invisible (they are overwritten lazily on the
// next store). Callers snapshot the generations *before* reading repository
// state and pass the snapshot to Store, so an update that lands between the
// repository read and the store is never cached as current — the store is
// simply discarded.
type Cache struct {
	mu      sync.RWMutex
	entries map[CacheKey]cacheEntry
	gens    map[string]uint64 // resource -> current generation
	byRes   map[string]map[CacheKey]struct{}

	hits    atomic.Uint64
	misses  atomic.Uint64
	invalid atomic.Uint64
}

// NewCache returns an empty prediction cache.
func NewCache() *Cache {
	return &Cache{
		entries: make(map[CacheKey]cacheEntry),
		gens:    make(map[string]uint64),
		byRes:   make(map[string]map[CacheKey]struct{}),
	}
}

// Generations returns a snapshot of every resource's current generation.
// Resources never invalidated are at generation 0 and may be absent from
// the map; Store treats a missing snapshot entry as 0.
//
//vdce:ignore allocflow generation snapshot, one host-keyed copy per site walk, amortized across every prediction the walk makes
func (c *Cache) Generations() map[string]uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make(map[string]uint64, len(c.gens))
	for r, g := range c.gens {
		out[r] = g
	}
	return out
}

// Lookup returns the memoized Inputs for k if one is stored under the
// resource's current generation.
func (c *Cache) Lookup(k CacheKey) (Inputs, bool) {
	c.mu.RLock()
	e, ok := c.entries[k]
	valid := ok && e.gen == c.gens[k.Resource]
	c.mu.RUnlock()
	if !valid {
		c.misses.Add(1)
		return Inputs{}, false
	}
	c.hits.Add(1)
	return e.in, true
}

// Store memoizes in under k, tagged with the generation the caller
// snapshotted before assembling it. A store whose generation is stale —
// the resource was invalidated after the snapshot — is discarded.
func (c *Cache) Store(k CacheKey, in Inputs, gen uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if gen != c.gens[k.Resource] {
		return
	}
	c.entries[k] = cacheEntry{in: in, gen: gen}
	keys := c.byRes[k.Resource]
	if keys == nil {
		keys = make(map[CacheKey]struct{})
		c.byRes[k.Resource] = keys
	}
	keys[k] = struct{}{}
}

// Invalidate evicts every entry for one resource (a monitor load/memory
// update or an up/down transition arrived for that host). Entries are
// deleted, not just hidden — a long-running site's cache stays bounded by
// the live (kind, size, resource) working set.
func (c *Cache) Invalidate(resource string) {
	c.mu.Lock()
	c.gens[resource]++
	for k := range c.byRes[resource] {
		delete(c.entries, k)
	}
	delete(c.byRes, resource)
	c.mu.Unlock()
	c.invalid.Add(1)
}

// InvalidateAll evicts everything.
func (c *Cache) InvalidateAll() {
	c.mu.Lock()
	for r := range c.gens {
		c.gens[r]++
	}
	c.entries = make(map[CacheKey]cacheEntry)
	c.byRes = make(map[string]map[CacheKey]struct{})
	c.mu.Unlock()
	c.invalid.Add(1)
}

// Stats returns a point-in-time view of the counters.
func (c *Cache) Stats() CacheStats {
	c.mu.RLock()
	n := len(c.entries)
	c.mu.RUnlock()
	return CacheStats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Entries:       n,
		Invalidations: c.invalid.Load(),
	}
}
