package predict

import (
	"fmt"
	"sync"
	"testing"
)

func TestCacheHitMiss(t *testing.T) {
	c := NewCache()
	k := CacheKey{Kind: "matrix.lu", Cost: 2, MemReq: 1 << 20, Resource: "h1"}
	if _, ok := c.Lookup(k); ok {
		t.Fatal("lookup on empty cache hit")
	}
	in := Inputs{BaseTime: 2, Weight: 0.5, CPULoad: 0.3}
	c.Store(k, in, c.Generations()["h1"])
	got, ok := c.Lookup(k)
	if !ok || got != in {
		t.Fatalf("lookup = %+v, %v; want %+v, true", got, ok, in)
	}
	// A different size is a different key.
	k2 := k
	k2.Cost = 3
	if _, ok := c.Lookup(k2); ok {
		t.Fatal("different cost hit the same entry")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheInvalidateResource(t *testing.T) {
	c := NewCache()
	k1 := CacheKey{Kind: "f", Resource: "h1"}
	k2 := CacheKey{Kind: "f", Resource: "h2"}
	gens := c.Generations()
	c.Store(k1, Inputs{BaseTime: 1}, gens[k1.Resource])
	c.Store(k2, Inputs{BaseTime: 2}, gens[k2.Resource])
	c.Invalidate("h1")
	if _, ok := c.Lookup(k1); ok {
		t.Fatal("h1 entry survived invalidation")
	}
	if _, ok := c.Lookup(k2); !ok {
		t.Fatal("h2 entry was evicted by h1's invalidation")
	}
	// Invalidation frees the entries, it does not just hide them.
	if st := c.Stats(); st.Entries != 1 {
		t.Fatalf("entries = %d after invalidation, want 1", st.Entries)
	}
	// Re-store under the new generation works.
	c.Store(k1, Inputs{BaseTime: 3}, c.Generations()["h1"])
	if in, ok := c.Lookup(k1); !ok || in.BaseTime != 3 {
		t.Fatalf("re-store after invalidation: %+v, %v", in, ok)
	}
}

func TestCacheStaleStoreDiscarded(t *testing.T) {
	c := NewCache()
	k := CacheKey{Kind: "f", Resource: "h1"}
	gens := c.Generations() // snapshot before "reading the repository"
	c.Invalidate("h1")      // monitor update lands in between
	c.Store(k, Inputs{BaseTime: 1}, gens[k.Resource])
	if _, ok := c.Lookup(k); ok {
		t.Fatal("stale store became visible")
	}
}

func TestCacheInvalidateAll(t *testing.T) {
	c := NewCache()
	for i := 0; i < 4; i++ {
		k := CacheKey{Kind: "f", Resource: fmt.Sprintf("h%d", i)}
		c.Store(k, Inputs{BaseTime: float64(i)}, 0)
	}
	c.InvalidateAll()
	for i := 0; i < 4; i++ {
		if _, ok := c.Lookup(CacheKey{Kind: "f", Resource: fmt.Sprintf("h%d", i)}); ok {
			t.Fatalf("entry h%d survived InvalidateAll", i)
		}
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("entries = %d after InvalidateAll", st.Entries)
	}
}

// TestCacheConcurrent hammers the cache from readers, writers, and
// invalidators at once; run with -race.
func TestCacheConcurrent(t *testing.T) {
	c := NewCache()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := CacheKey{Kind: "f", Cost: float64(i % 7), Resource: fmt.Sprintf("h%d", i%3)}
				gens := c.Generations()
				if _, ok := c.Lookup(k); !ok {
					c.Store(k, Inputs{BaseTime: k.Cost}, gens[k.Resource])
				}
				if i%50 == w {
					c.Invalidate(k.Resource)
				}
			}
		}(w)
	}
	wg.Wait()
	// Sanity: surviving entries are readable and consistent.
	for i := 0; i < 7; i++ {
		k := CacheKey{Kind: "f", Cost: float64(i), Resource: "h0"}
		if in, ok := c.Lookup(k); ok && in.BaseTime != k.Cost { //vdce:ignore floateq cache must store the keyed cost verbatim; any drift is corruption
			t.Fatalf("entry %v corrupted: %+v", k, in)
		}
	}
}
