package predict

import (
	"math"
	"math/rand"
	"testing"
)

func TestAR1EmptyAndWarmup(t *testing.T) {
	f := NewAR1(8)
	if f.Forecast() != 0 {
		t.Fatal("empty forecast should be 0")
	}
	f.Observe(0.5)
	f.Observe(0.6)
	// Too few pairs: falls back to window mean.
	if got := f.Forecast(); math.Abs(got-0.55) > 1e-12 {
		t.Fatalf("warmup forecast = %v, want window mean 0.55", got)
	}
}

func TestAR1LearnsExactProcess(t *testing.T) {
	// Noise-free AR(1): load(t+1) = 0.1 + 0.8·load(t). The fitted model
	// must forecast the next value almost exactly.
	f := NewAR1(16)
	v := 0.9
	for i := 0; i < 20; i++ {
		f.Observe(v)
		v = 0.1 + 0.8*v
	}
	if got := f.Forecast(); math.Abs(got-v) > 1e-6 {
		t.Fatalf("forecast %v, want %v", got, v)
	}
}

func TestAR1ConstantSeriesDegenerateFit(t *testing.T) {
	f := NewAR1(8)
	for i := 0; i < 10; i++ {
		f.Observe(0.4)
	}
	// Constant input makes the regression singular: fall back to mean.
	if got := f.Forecast(); math.Abs(got-0.4) > 1e-12 {
		t.Fatalf("forecast = %v", got)
	}
}

func TestAR1NonNegative(t *testing.T) {
	f := NewAR1(8)
	// Steeply decreasing series would extrapolate below zero.
	for _, v := range []float64{3, 2, 1, 0.2, 0.01, 0.001} {
		f.Observe(v)
	}
	if f.Forecast() < 0 {
		t.Fatal("forecast went negative")
	}
}

func TestAR1MinimumWindow(t *testing.T) {
	f := NewAR1(0)
	if f.capacity != 4 {
		t.Fatalf("capacity = %d", f.capacity)
	}
}

func TestAR1BeatsLastValueOnMeanRevertingLoad(t *testing.T) {
	// For a strongly mean-reverting process (low rho), AR(1) should beat
	// naive persistence, which keeps chasing the noise.
	rng := rand.New(rand.NewSource(4))
	ar := NewAR1(32)
	last := &LastValue{}
	v := 0.5
	var errAR, errLast float64
	const n = 3000
	for i := 0; i < n; i++ {
		pa, pl := ar.Forecast(), last.Forecast()
		v = 0.3*v + 0.7*0.5 + rng.NormFloat64()*0.15
		if v < 0 {
			v = 0
		}
		if i > 100 { // skip warmup
			errAR += math.Abs(pa - v)
			errLast += math.Abs(pl - v)
		}
		ar.Observe(v)
		last.Observe(v)
	}
	if errAR >= errLast {
		t.Fatalf("AR(1) (%v) should beat last-value (%v) on mean-reverting load",
			errAR/n, errLast/n)
	}
}
