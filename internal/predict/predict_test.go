package predict

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSecondsBasic(t *testing.T) {
	// 10 s base × weight 0.5 × (1+1) load = 10 s.
	got := Seconds(Inputs{BaseTime: 10, Weight: 0.5, CPULoad: 1})
	if math.Abs(got-10) > 1e-12 {
		t.Fatalf("got %v", got)
	}
}

func TestSecondsDefaults(t *testing.T) {
	// Zero weight defaults to 1; negative load clamps to 0.
	got := Seconds(Inputs{BaseTime: 3, Weight: 0, CPULoad: -5})
	if got != 3 {
		t.Fatalf("got %v", got)
	}
}

func TestSecondsInputScale(t *testing.T) {
	unit := Seconds(Inputs{BaseTime: 2, Weight: 1})
	scaled := Seconds(Inputs{BaseTime: 2, Weight: 1, InputSize: 4})
	if scaled != 4*unit { //vdce:ignore floateq scaling by a power-of-two input ratio is exact in binary floating point
		t.Fatalf("unit=%v scaled=%v", unit, scaled)
	}
}

func TestMemoryPenalty(t *testing.T) {
	fits := Seconds(Inputs{BaseTime: 1, Weight: 1, MemReq: 100, MemAvail: 100})
	if fits != 1 {
		t.Fatalf("fits = %v", fits)
	}
	// Full deficit: avail = 0 → ×(1+4).
	starved := Seconds(Inputs{BaseTime: 1, Weight: 1, MemReq: 100, MemAvail: 0})
	if math.Abs(starved-5) > 1e-12 {
		t.Fatalf("starved = %v", starved)
	}
	// Half deficit → ×(1+2).
	half := Seconds(Inputs{BaseTime: 1, Weight: 1, MemReq: 100, MemAvail: 50})
	if math.Abs(half-3) > 1e-12 {
		t.Fatalf("half = %v", half)
	}
	// No requirement → no penalty even with zero memory.
	if Seconds(Inputs{BaseTime: 1, Weight: 1, MemAvail: 0}) != 1 {
		t.Fatal("zero-req task penalised")
	}
}

func TestWeightFromSpeed(t *testing.T) {
	if WeightFromSpeed(2) != 0.5 {
		t.Fatal("2x speed should be weight 0.5")
	}
	if WeightFromSpeed(0) != 1 || WeightFromSpeed(-1) != 1 {
		t.Fatal("invalid speed should default to weight 1")
	}
}

func TestLastValue(t *testing.T) {
	var f LastValue
	if f.Forecast() != 0 {
		t.Fatal("empty forecast should be 0")
	}
	f.Observe(0.3)
	f.Observe(0.9)
	if f.Forecast() != 0.9 {
		t.Fatalf("forecast = %v", f.Forecast())
	}
}

func TestWindowMeanStd(t *testing.T) {
	w := NewWindow(4)
	if w.Mean() != 0 || w.Std() != 0 || w.Len() != 0 {
		t.Fatal("empty window stats should be zero")
	}
	for _, v := range []float64{1, 2, 3, 4} {
		w.Observe(v)
	}
	if w.Mean() != 2.5 {
		t.Fatalf("mean = %v", w.Mean())
	}
	wantStd := math.Sqrt((2.25 + 0.25 + 0.25 + 2.25) / 3)
	if math.Abs(w.Std()-wantStd) > 1e-12 {
		t.Fatalf("std = %v, want %v", w.Std(), wantStd)
	}
}

func TestWindowEviction(t *testing.T) {
	w := NewWindow(2)
	w.Observe(10)
	w.Observe(20)
	w.Observe(30) // evicts 10
	if w.Len() != 2 {
		t.Fatalf("len = %d", w.Len())
	}
	if w.Mean() != 25 {
		t.Fatalf("mean = %v", w.Mean())
	}
}

func TestWindowMinimumSize(t *testing.T) {
	w := NewWindow(0)
	w.Observe(5)
	if w.Mean() != 5 {
		t.Fatal("size-0 window should clamp to 1")
	}
}

func TestConfidenceWidth(t *testing.T) {
	w := NewWindow(10)
	w.Observe(1)
	if w.ConfidenceWidth(1.96) != 0 {
		t.Fatal("single sample should have zero width")
	}
	for _, v := range []float64{1, 1, 1, 1} {
		w.Observe(v)
	}
	if w.ConfidenceWidth(1.96) != 0 {
		t.Fatal("constant series should have zero width")
	}
	w2 := NewWindow(10)
	for _, v := range []float64{0, 1, 0, 1} {
		w2.Observe(v)
	}
	if w2.ConfidenceWidth(1.96) <= 0 {
		t.Fatal("varying series should have positive width")
	}
}

func TestExponentialSmoothing(t *testing.T) {
	f := NewExponentialSmoothing(0.5)
	if f.Forecast() != 0 {
		t.Fatal("empty forecast should be 0")
	}
	f.Observe(1) // init: s = 1
	f.Observe(0) // s = 0.5
	if f.Forecast() != 0.5 {
		t.Fatalf("forecast = %v", f.Forecast())
	}
	bad := NewExponentialSmoothing(7)
	if bad.Alpha != 0.5 {
		t.Fatalf("alpha fallback = %v", bad.Alpha)
	}
}

func TestSignificantChange(t *testing.T) {
	if SignificantChange(0.5, 0.55, 0.1) {
		t.Fatal("change within band reported significant")
	}
	if !SignificantChange(0.5, 0.65, 0.1) {
		t.Fatal("upward break not reported")
	}
	if !SignificantChange(0.5, 0.35, 0.1) {
		t.Fatal("downward break not reported")
	}
	if SignificantChange(0.5, 0.6, 0.1) {
		t.Fatal("boundary should be inside the band")
	}
}

// Property: prediction is monotone in load, weight, and base time.
func TestPropertyMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		base := rng.Float64() * 10
		w := 0.1 + rng.Float64()*3
		l1 := rng.Float64() * 2
		l2 := l1 + rng.Float64()
		p1 := Seconds(Inputs{BaseTime: base, Weight: w, CPULoad: l1})
		p2 := Seconds(Inputs{BaseTime: base, Weight: w, CPULoad: l2})
		if p2 < p1 {
			return false
		}
		p3 := Seconds(Inputs{BaseTime: base, Weight: w * 1.5, CPULoad: l1})
		if p3 < p1 {
			return false
		}
		p4 := Seconds(Inputs{BaseTime: base * 2, Weight: w, CPULoad: l1})
		return p4 >= p1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: window mean lies within [min, max] of observed values.
func TestPropertyWindowMeanBounded(t *testing.T) {
	f := func(vals []float64) bool {
		if len(vals) == 0 {
			return true
		}
		w := NewWindow(len(vals))
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				return true // avoid float overflow in the sum
			}
			w.Observe(v)
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		m := w.Mean()
		return m >= lo-1e-9 && m <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Forecast accuracy on an AR(1)-like series: smoothing should beat or match
// the naive last-value forecaster on average for noisy series.
func TestForecastersTrackNoisySeries(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	last := &LastValue{}
	smooth := NewExponentialSmoothing(0.3)
	win := NewWindow(8)
	var errLast, errSmooth, errWin float64
	v := 0.5
	n := 2000
	for i := 0; i < n; i++ {
		pl, ps, pw := last.Forecast(), smooth.Forecast(), win.Forecast()
		// AR(1) around 0.5 with noise.
		v = 0.8*v + 0.2*0.5 + rng.NormFloat64()*0.2
		if v < 0 {
			v = 0
		}
		errLast += math.Abs(pl - v)
		errSmooth += math.Abs(ps - v)
		errWin += math.Abs(pw - v)
		last.Observe(v)
		smooth.Observe(v)
		win.Observe(v)
	}
	// For a highly persistent AR(1) the last value is already near-optimal;
	// smoothing should stay in its neighbourhood, not beat it.
	if errSmooth > errLast*1.25 {
		t.Fatalf("smoothing (%v) much worse than last-value (%v)", errSmooth/float64(n), errLast/float64(n))
	}
	if errWin > errLast*1.5 {
		t.Fatalf("window mean (%v) unreasonably worse than last-value (%v)", errWin/float64(n), errLast/float64(n))
	}
}
