// Package predict implements VDCE's performance-prediction functions, the
// "core of the built-in scheduling algorithms" (paper §2.2.1).
//
// The prediction of task i on resource j combines analytical modelling with
// measurements of experimental runs:
//
//	Predict(taskᵢ, Rⱼ) = MeasuredTime(taskᵢ, R_base)
//	                     × Weight(taskᵢ, Rⱼ)
//	                     × (1 + CPUload(Rⱼ))
//	                     × MemoryPenalty(MemReq(taskᵢ), MemAvail(Rⱼ))
//
// where Weight is the computing-power weight of Rⱼ relative to the base
// processor for this task (obtained from trial runs) and CPUload is a
// forecast computed from a window of recent workload measurements.
package predict

import (
	"math"
)

// MemoryPenaltyFactor controls how strongly a memory deficit inflates the
// prediction; a task needing twice the available memory pays
// 1 + MemoryPenaltyFactor. The paper lists memory requirement/availability
// among the prediction inputs without giving a closed form; a linear
// thrashing penalty is the simplest model that makes memory-starved hosts
// unattractive without forbidding them.
const MemoryPenaltyFactor = 4.0

// Inputs carries the parameters of one prediction, mirroring the paper's
// list: measured base time, computing-power weight, memory requirement,
// available memory, and (forecast) CPU load.
type Inputs struct {
	BaseTime  float64 // MeasuredTime(task, R_base), seconds for unit input
	Weight    float64 // Weight(task, Rj); 1.0 = same speed as base
	MemReq    int64   // bytes required by the task
	MemAvail  int64   // bytes available on the host
	CPULoad   float64 // forecast load on the host
	InputSize float64 // input scale factor; 0 or 1 = unit input
}

// Seconds evaluates the prediction function.
func Seconds(in Inputs) float64 {
	base := in.BaseTime
	if in.InputSize > 0 {
		base *= in.InputSize
	}
	w := in.Weight
	if w <= 0 {
		w = 1
	}
	load := in.CPULoad
	if load < 0 {
		load = 0
	}
	return base * w * (1 + load) * memoryPenalty(in.MemReq, in.MemAvail)
}

func memoryPenalty(req, avail int64) float64 {
	if req <= 0 || req <= avail {
		return 1
	}
	if avail <= 0 {
		return 1 + MemoryPenaltyFactor
	}
	deficit := float64(req-avail) / float64(req)
	return 1 + MemoryPenaltyFactor*deficit
}

// WeightFromSpeed converts a host's raw speed factor into a default
// computing-power weight (time ratio vs base processor). Used as the
// fallback when no trial-run weight exists in the task-performance DB.
func WeightFromSpeed(speedFactor float64) float64 {
	if speedFactor <= 0 {
		return 1
	}
	return 1 / speedFactor
}

// ---------------------------------------------------------------------------
// Workload forecasting ("computed using forecasting techniques based on a
// window of most recent workload measurements", §2.2.1)
// ---------------------------------------------------------------------------

// Forecaster predicts the next workload value from observed history.
type Forecaster interface {
	// Observe records a new measurement.
	Observe(v float64)
	// Forecast returns the predicted next value. With no observations it
	// returns 0 (idle assumption).
	Forecast() float64
}

// LastValue forecasts the most recent observation (the naive baseline used
// in the forecasting ablation).
type LastValue struct{ last float64 }

// Observe implements Forecaster.
func (f *LastValue) Observe(v float64) { f.last = v }

// Forecast implements Forecaster.
func (f *LastValue) Forecast() float64 { return f.last }

// Window is a fixed-capacity ring of recent measurements supporting mean,
// standard deviation, and a z-based confidence-interval width. The Group
// Manager's significant-change rule (§2.3.1) compares a new measurement
// against the previous one plus the confidence-interval width.
type Window struct {
	buf  []float64
	n    int // count of valid entries (≤ cap)
	next int // ring cursor
}

// NewWindow creates a window holding up to size samples (size ≥ 1).
func NewWindow(size int) *Window {
	if size < 1 {
		size = 1
	}
	return &Window{buf: make([]float64, size)}
}

// Observe appends a measurement, evicting the oldest when full.
func (w *Window) Observe(v float64) {
	w.buf[w.next] = v
	w.next = (w.next + 1) % len(w.buf)
	if w.n < len(w.buf) {
		w.n++
	}
}

// Len returns the number of stored samples.
func (w *Window) Len() int { return w.n }

// Mean returns the sample mean (0 when empty).
func (w *Window) Mean() float64 {
	if w.n == 0 {
		return 0
	}
	var s float64
	for i := 0; i < w.n; i++ {
		s += w.buf[i]
	}
	return s / float64(w.n)
}

// Std returns the sample standard deviation (0 when fewer than 2 samples).
func (w *Window) Std() float64 {
	if w.n < 2 {
		return 0
	}
	m := w.Mean()
	var ss float64
	for i := 0; i < w.n; i++ {
		d := w.buf[i] - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(w.n-1))
}

// ConfidenceWidth returns z·s/√n, the half-width of the confidence interval
// around the mean. z = 1.96 gives the usual 95% interval.
func (w *Window) ConfidenceWidth(z float64) float64 {
	if w.n < 2 {
		return 0
	}
	return z * w.Std() / math.Sqrt(float64(w.n))
}

// Forecast returns the window mean, making *Window a Forecaster.
func (w *Window) Forecast() float64 { return w.Mean() }

// ExponentialSmoothing forecasts with s ← α·v + (1−α)·s.
type ExponentialSmoothing struct {
	Alpha float64
	s     float64
	init  bool
}

// NewExponentialSmoothing creates a smoother with the given α ∈ (0, 1].
func NewExponentialSmoothing(alpha float64) *ExponentialSmoothing {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.5
	}
	return &ExponentialSmoothing{Alpha: alpha}
}

// Observe implements Forecaster.
func (f *ExponentialSmoothing) Observe(v float64) {
	if !f.init {
		f.s = v
		f.init = true
		return
	}
	f.s = f.Alpha*v + (1-f.Alpha)*f.s
}

// Forecast implements Forecaster.
func (f *ExponentialSmoothing) Forecast() float64 {
	if !f.init {
		return 0
	}
	return f.s
}

// AR1 fits a first-order autoregressive model load(t+1) ≈ c + ρ·load(t) to
// the observation window by least squares and forecasts one step ahead.
// This is the strongest of the provided forecasters for the persistent
// load processes shared workstations exhibit.
type AR1 struct {
	win      *Window
	prev     float64
	has      bool
	capacity int
	pairs    [][2]float64 // (previous, next) observation pairs
}

// NewAR1 creates an AR(1) forecaster fitting over the last `window` pairs.
func NewAR1(window int) *AR1 {
	if window < 4 {
		window = 4
	}
	return &AR1{win: NewWindow(window), capacity: window}
}

// Observe implements Forecaster.
func (f *AR1) Observe(v float64) {
	f.win.Observe(v)
	if f.has {
		f.pairs = append(f.pairs, [2]float64{f.prev, v})
		if len(f.pairs) > f.capacity {
			f.pairs = f.pairs[1:]
		}
	}
	f.prev = v
	f.has = true
}

// Forecast implements Forecaster: ĉ + ρ̂·last, falling back to the window
// mean while too few pairs exist or the fit is degenerate.
func (f *AR1) Forecast() float64 {
	if len(f.pairs) < 3 {
		return f.win.Mean()
	}
	var sx, sy, sxy, sxx float64
	n := float64(len(f.pairs))
	for _, p := range f.pairs {
		sx += p[0]
		sy += p[1]
		sxy += p[0] * p[1]
		sxx += p[0] * p[0]
	}
	den := n*sxx - sx*sx
	if den < 1e-12 {
		return f.win.Mean()
	}
	rho := (n*sxy - sx*sy) / den
	c := (sy - rho*sx) / n
	// Clamp to a stable, sane model; wild fits fall back to persistence.
	if rho < -1 || rho > 1.2 {
		return f.prev
	}
	pred := c + rho*f.prev
	if pred < 0 {
		pred = 0
	}
	return pred
}

// SignificantChange implements the Group Manager filtering rule: a workload
// measurement is significant iff it lies outside
// [previous − width, previous + width] where width is the confidence-
// interval half-width of the recent window (§2.3.1: "the up-to-date
// measurement is higher or lower than the summation of the previous
// measurement and the width of the confidence interval").
func SignificantChange(previous, current, width float64) bool {
	return current > previous+width || current < previous-width
}

// Interface conformance checks.
var (
	_ Forecaster = (*LastValue)(nil)
	_ Forecaster = (*Window)(nil)
	_ Forecaster = (*ExponentialSmoothing)(nil)
	_ Forecaster = (*AR1)(nil)
)
