package site

import (
	"context"
	"testing"
	"time"

	"repro/internal/afg"
	"repro/internal/netsim"
	"repro/internal/repository"
	"repro/internal/resource"
	"repro/internal/scheduler"
)

func newTestSite(t *testing.T, name string, hosts int, seed int64) *Manager {
	t.Helper()
	pool := resource.GenerateSite(name, hosts, 4, seed)
	m, err := NewManager(name, pool, netsim.NYNET(0.0001), nil, Config{GroupSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func solverGraph(t *testing.T) *afg.Graph {
	t.Helper()
	g := afg.New("linsolver")
	g.AddTask(&afg.Task{ID: "genA", Function: "matrix.generate", Params: map[string]string{"n": "16", "seed": "1"}, ComputeCost: 0.01, OutputBytes: 2048})
	g.AddTask(&afg.Task{ID: "genB", Function: "matrix.vector", Params: map[string]string{"n": "16", "seed": "2"}, ComputeCost: 0.001, OutputBytes: 128})
	g.AddTask(&afg.Task{ID: "solve", Function: "matrix.solve", ComputeCost: 0.01, OutputBytes: 128})
	g.AddLink(afg.Link{From: "genA", To: "solve", Bytes: 2048})
	g.AddLink(afg.Link{From: "genB", To: "solve", Bytes: 128})
	return g
}

func TestNewManagerRegistersEverything(t *testing.T) {
	m := newTestSite(t, "syracuse", 7, 1)
	if got := len(m.Repo.Resources.List()); got != 7 {
		t.Fatalf("resources = %d", got)
	}
	if got := len(m.Groups); got != 3 { // ceil(7/3)
		t.Fatalf("groups = %d", got)
	}
	if len(m.Repo.Tasks.Functions()) < 15 {
		t.Fatalf("task db not seeded: %v", m.Repo.Tasks.Functions())
	}
	rec, err := m.Repo.Tasks.Get("matrix.lu")
	if err != nil || rec.BaseTime <= 0 {
		t.Fatalf("matrix.lu record = %+v err=%v", rec, err)
	}
}

func TestMonitoringUpdatesRepository(t *testing.T) {
	m := newTestSite(t, "syracuse", 4, 2)
	m.TickMonitors()
	for _, rec := range m.Repo.Resources.List() {
		if rec.Dynamic.UpdatedAt.IsZero() {
			t.Fatalf("host %s never updated", rec.Static.HostName)
		}
	}
}

func TestFailureMarksHostDownInRepo(t *testing.T) {
	m := newTestSite(t, "syracuse", 4, 3)
	victim := m.Pool.Names()[0]
	m.TickMonitors()
	m.Pool.Get(victim).SetDown(true)
	m.TickMonitors()
	rec, err := m.Repo.Resources.Get(victim)
	if err != nil || !rec.Dynamic.Down {
		t.Fatalf("down not recorded: %+v err=%v", rec, err)
	}
	m.Pool.Get(victim).SetDown(false)
	m.TickMonitors()
	rec, _ = m.Repo.Resources.Get(victim)
	if rec.Dynamic.Down {
		t.Fatal("recovery not recorded")
	}
}

func TestAuthenticateViaRepo(t *testing.T) {
	m := newTestSite(t, "syracuse", 2, 4)
	m.Repo.Users.Add(repository.UserAccount{UserName: "haluk", Password: "pw"})
	if _, err := m.Authenticate("haluk", "pw"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Authenticate("haluk", "nope"); err == nil {
		t.Fatal("bad password accepted")
	}
}

func TestExecuteLocalSolver(t *testing.T) {
	m := newTestSite(t, "syracuse", 4, 5)
	m.TickMonitors()
	res, table, err := m.ExecuteLocal(context.Background(), solverGraph(t), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Entries) != 3 {
		t.Fatalf("table = %+v", table.Entries)
	}
	if res.Outputs["solve"].Kind != "vector" {
		t.Fatalf("solve output = %+v", res.Outputs["solve"])
	}
	// Measured execution times must land in the task-performance DB.
	rec, err := m.Repo.Tasks.Get("matrix.solve")
	if err != nil || len(rec.History) == 0 {
		t.Fatalf("history not recorded: %+v err=%v", rec, err)
	}
}

func TestExecuteLocalSurvivesHostFailure(t *testing.T) {
	m := newTestSite(t, "syracuse", 4, 6)
	m.TickMonitors()
	// Make the sole survivor look unattractive so the scheduler picks a
	// doomed host first, then fail every other host in the pool — but do
	// not tell the repository: the runtime must discover the failures and
	// reschedule onto the survivor.
	names := m.Pool.Names()
	survivor := names[3]
	m.Repo.Resources.UpdateDynamic(survivor, 50, 1<<30, time.Now())
	for _, n := range names[:3] {
		m.Pool.Get(n).SetDown(true)
	}
	res, _, err := m.ExecuteLocal(context.Background(), solverGraph(t), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range res.TaskResults {
		if tr.Host != survivor {
			t.Fatalf("task ran on %s, want %s: %+v", tr.Host, survivor, tr)
		}
	}
	if res.Rescheduled == 0 {
		t.Fatal("no rescheduling recorded")
	}
}

func TestReschedulerExcludesHosts(t *testing.T) {
	m := newTestSite(t, "syracuse", 3, 7)
	m.TickMonitors()
	resched := m.Rescheduler()
	names := m.Pool.Names()
	a, err := resched(context.Background(), "t", names[:2])
	if err != nil {
		t.Fatal(err)
	}
	if a.Host != names[2] {
		t.Fatalf("rescheduled to %s, want %s", a.Host, names[2])
	}
	if _, err := resched(context.Background(), "t", names); err == nil {
		t.Fatal("all-hosts-excluded should fail")
	}
}

func TestRunTrialWeights(t *testing.T) {
	m := newTestSite(t, "syracuse", 4, 8)
	m.RunTrialWeights()
	host := m.Pool.Names()[0]
	w, ok := m.Repo.Tasks.Weight("matrix.lu", host)
	if !ok || w <= 0 {
		t.Fatalf("weight = %v ok=%v", w, ok)
	}
	// Affinity differentiates libraries on the same host.
	h := m.Pool.Get(host)
	if string(h.Spec.Arch) == "sgi" {
		wf, _ := m.Repo.Tasks.Weight("fourier.spectrum", host)
		if wf <= w {
			t.Fatalf("sgi should be relatively better at matrix (%v) than fourier (%v)", w, wf)
		}
	}
}

func TestRPCSelectHosts(t *testing.T) {
	m := newTestSite(t, "rome", 4, 9)
	m.TickMonitors()
	addr, stop, err := m.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	remote := NewRemoteSelector("rome", addr)
	defer remote.Close()
	choices, err := remote.SelectHosts(solverGraph(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(choices) != 3 {
		t.Fatalf("choices = %+v", choices)
	}
	for id, c := range choices {
		if c.Site != "rome" || c.Host == "" || c.Predicted <= 0 {
			t.Fatalf("choice[%s] = %+v", id, c)
		}
	}
}

func TestRPCDistributedScheduling(t *testing.T) {
	local := newTestSite(t, "syracuse", 3, 10)
	remote := newTestSite(t, "rome", 3, 11)
	local.TickMonitors()
	remote.TickMonitors()
	addr, stop, err := remote.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	rsel := NewRemoteSelector("rome", addr)
	defer rsel.Close()

	sched := scheduler.NewSiteScheduler(local.Selector, []scheduler.HostSelector{rsel}, local.Net, 0)
	table, err := sched.Schedule(solverGraph(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Entries) != 3 {
		t.Fatalf("entries = %d", len(table.Entries))
	}
	// Assignments must reference real hosts of whichever site they chose.
	for _, a := range table.Entries {
		var pool *resource.Pool
		switch a.Site {
		case "syracuse":
			pool = local.Pool
		case "rome":
			pool = remote.Pool
		default:
			t.Fatalf("unknown site %q", a.Site)
		}
		if pool.Get(a.Host) == nil {
			t.Fatalf("assignment names unknown host %q", a.Host)
		}
	}
}

func TestRPCAuthenticate(t *testing.T) {
	m := newTestSite(t, "syracuse", 2, 12)
	m.Repo.Users.Add(repository.UserAccount{UserName: "u", Password: "p", Priority: 2})
	addr, stop, err := m.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	sel := NewRemoteSelector("syracuse", addr)
	defer sel.Close()
	client, err := sel.conn()
	if err != nil {
		t.Fatal(err)
	}
	var reply AuthReply
	if err := client.Call("Site.Authenticate", AuthArgs{User: "u", Password: "p"}, &reply); err != nil {
		t.Fatal(err)
	}
	if reply.Account.Priority != 2 {
		t.Fatalf("account = %+v", reply.Account)
	}
	if err := client.Call("Site.Authenticate", AuthArgs{User: "u", Password: "x"}, &reply); err == nil {
		t.Fatal("bad password accepted over RPC")
	}
}

func TestRPCSubmit(t *testing.T) {
	m := newTestSite(t, "syracuse", 4, 13)
	m.TickMonitors()
	addr, stop, err := m.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	sel := NewRemoteSelector("syracuse", addr)
	defer sel.Close()
	client, err := sel.conn()
	if err != nil {
		t.Fatal(err)
	}
	data, err := solverGraph(t).Encode()
	if err != nil {
		t.Fatal(err)
	}
	var reply SubmitReply
	if err := client.Call("Site.Submit", SubmitArgs{AFG: data}, &reply); err != nil {
		t.Fatal(err)
	}
	if len(reply.Table) != 3 {
		t.Fatalf("table = %+v", reply.Table)
	}
	if reply.Outputs["solve"] == "" {
		t.Fatalf("outputs = %+v", reply.Outputs)
	}
	if reply.MakespanSec <= 0 {
		t.Fatalf("makespan = %v", reply.MakespanSec)
	}
}

func TestStartMonitorsRuns(t *testing.T) {
	m := newTestSite(t, "syracuse", 3, 14)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m.StartMonitors(ctx, time.Millisecond)
	deadline := time.After(2 * time.Second)
	for {
		updated := true
		for _, rec := range m.Repo.Resources.List() {
			if rec.Dynamic.UpdatedAt.IsZero() {
				updated = false
			}
		}
		if updated {
			return
		}
		select {
		case <-deadline:
			t.Fatal("monitors never updated the repository")
		case <-time.After(2 * time.Millisecond):
		}
	}
}
