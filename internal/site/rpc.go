package site

import (
	"errors"
	"fmt"
	"net"
	"net/rpc"
	"sync"

	"repro/internal/afg"
	"repro/internal/repository"
	"repro/internal/scheduler"
	"repro/internal/tasklib"
)

// Inter-site coordination (paper §2.3.1 "Inter-site Coordination"): the
// local site's Application Scheduler multicasts the application flow graph
// to remote sites, whose Site Managers run the Host Selection Algorithm and
// return the (machine, predicted time) pairs. We carry that exchange over
// net/rpc — the moral equivalent of the paper's Java-servlet site server.

// Service is the RPC surface a Site Manager exposes to peers and clients.
type Service struct {
	m     *Manager
	peers []*RemoteSelector // other sites, for distributed Submit
}

// SelectArgs carries a JSON-encoded application flow graph (JSON because the
// AFG wire format is the editor/site contract).
type SelectArgs struct {
	AFG []byte
}

// SelectReply returns the host selection for every task.
type SelectReply struct {
	Site    string
	Choices map[afg.TaskID]scheduler.Choice
}

// SelectHosts runs the site's Host Selection Algorithm on the multicast AFG.
func (s *Service) SelectHosts(args SelectArgs, reply *SelectReply) error {
	g, err := afg.Decode(args.AFG)
	if err != nil {
		return err
	}
	choices, err := s.m.Selector.SelectHosts(g)
	if err != nil {
		return err
	}
	reply.Site = s.m.Site
	reply.Choices = choices
	return nil
}

// BatchArgs carries many JSON-encoded application flow graphs for
// concurrent scheduling against this site and its configured peers.
// Policy selects the scheduling policy by registry name ("" = the site's
// configured default); AvailabilityAware requests earliest-finish-time
// placement (a false value defers to the site's configured default);
// SharedLedger threads a cross-application load ledger through the batch
// so its graphs spread around each other's in-flight placements.
type BatchArgs struct {
	AFGs              [][]byte
	Policy            string
	AvailabilityAware bool
	SharedLedger      bool
	Seed              int64 // feeds the randomized policies ("random")
}

// BatchReply returns one allocation table (or error string) per input AFG,
// in input order. Exactly one of Tables[i]/Errs[i] is non-zero. Orders[i]
// carries the table's assignment order (lost by the bare entries map);
// scheduler.RebuildTable(app, Tables[i], Orders[i]) reconstructs the full
// ordered table client-side.
type BatchReply struct {
	Tables []map[afg.TaskID]scheduler.Assignment
	Orders [][]afg.TaskID
	Errs   []string
}

// ScheduleBatch schedules a batch of applications concurrently against
// shared site state (the scheduler.Batch API over RPC). It returns the
// allocation tables only — execution stays with the caller, which lets a
// client probe placements for many candidate applications in one round
// trip. Failures are per item — a graph that does not decode or schedule
// reports through Errs[i] without sinking the rest of the batch — except an
// unknown policy name, which fails the whole call with the registry's
// error listing the available policies.
func (s *Service) ScheduleBatch(args BatchArgs, reply *BatchReply) error {
	reply.Tables = make([]map[afg.TaskID]scheduler.Assignment, len(args.AFGs))
	reply.Orders = make([][]afg.TaskID, len(args.AFGs))
	reply.Errs = make([]string, len(args.AFGs))
	var graphs []*afg.Graph
	var indices []int // position of graphs[j] in the reply
	for i, raw := range args.AFGs {
		g, err := afg.Decode(raw)
		if err != nil {
			reply.Errs[i] = fmt.Sprintf("site: batch graph %d: %v", i, err)
			continue
		}
		graphs = append(graphs, g)
		indices = append(indices, i)
	}
	var remotes []scheduler.HostSelector
	for _, p := range s.peers {
		remotes = append(remotes, p)
	}
	opts := BatchOptions{
		Policy:            args.Policy,
		AvailabilityAware: args.AvailabilityAware,
		SharedLedger:      args.SharedLedger,
		Seed:              args.Seed,
	}
	items, err := s.m.ScheduleBatchOpts(graphs, remotes, opts)
	if err != nil {
		return err
	}
	for j, it := range items {
		i := indices[j]
		if it.Err != nil {
			reply.Errs[i] = it.Err.Error()
			continue
		}
		reply.Tables[i] = it.Table.Entries
		reply.Orders[i] = it.Table.Order()
	}
	return nil
}

// PoliciesArgs is empty; PoliciesReply lists the registered policy names.
type PoliciesArgs struct{}

// PoliciesReply carries the registry contents (sorted).
type PoliciesReply struct{ Names []string }

// Policies reports the scheduling policies this site can run, so clients
// can validate -policy values before submitting.
func (s *Service) Policies(_ PoliciesArgs, reply *PoliciesReply) error {
	reply.Names = scheduler.Policies()
	return nil
}

// AuthArgs is a user/password pair.
type AuthArgs struct{ User, Password string }

// AuthReply returns the authenticated account.
type AuthReply struct{ Account repository.UserAccount }

// Authenticate validates a user against the site's user-accounts database.
func (s *Service) Authenticate(args AuthArgs, reply *AuthReply) error {
	acct, err := s.m.Authenticate(args.User, args.Password)
	if err != nil {
		return err
	}
	reply.Account = acct
	return nil
}

// ResourcesArgs is empty; ResourcesReply lists the site's resource records.
type ResourcesArgs struct{}

// ResourcesReply carries the resource-performance database contents.
type ResourcesReply struct{ Records []repository.ResourceRecord }

// Resources dumps the site's resource-performance database (workload
// visualization feeds from this).
func (s *Service) Resources(_ ResourcesArgs, reply *ResourcesReply) error {
	reply.Records = s.m.Repo.Resources.List()
	return nil
}

// RunTaskArgs carries one task invocation for cross-site execution: the
// local site's Application Controller forwards a task assigned to a remote
// host to that host's Site Manager.
type RunTaskArgs struct {
	Function   string
	Params     map[string]string
	Processors int
	Host       string
	MemReq     int64
	Inputs     [][]byte // encoded tasklib.Values in parent order
}

// RunTaskReply returns the encoded output value.
type RunTaskReply struct {
	Output []byte
}

// RunTask executes one library task on a named local host (the remote half
// of the cross-site execution path).
func (s *Service) RunTask(args RunTaskArgs, reply *RunTaskReply) error {
	h := s.m.Pool.Get(args.Host)
	if h == nil {
		return fmt.Errorf("site %s: unknown host %q", s.m.Site, args.Host)
	}
	if err := h.BeginTask(args.MemReq); err != nil {
		return err
	}
	defer h.EndTask(args.MemReq)
	inputs := make([]tasklib.Value, len(args.Inputs))
	for i, raw := range args.Inputs {
		v, err := tasklib.DecodeValue(raw)
		if err != nil {
			return err
		}
		inputs[i] = v
	}
	out, err := s.m.Registry.Execute(contextBackground(), args.Function, tasklib.Args{
		Params: args.Params, Inputs: inputs, Processors: args.Processors,
	})
	if err != nil {
		return err
	}
	data, err := out.Encode()
	if err != nil {
		return err
	}
	reply.Output = data
	return nil
}

// SubmitArgs carries an application for scheduling + local execution.
// Policy optionally names the scheduling policy ("" = site default).
type SubmitArgs struct {
	AFG    []byte
	Policy string
}

// SubmitReply summarises the execution.
type SubmitReply struct {
	Table       map[afg.TaskID]scheduler.Assignment
	MakespanSec float64
	Rescheduled int
	Outputs     map[afg.TaskID]string // rendered exit outputs
}

// Submit schedules an application across this site and its configured
// peers, executing local tasks directly and remote tasks through the
// owning site's RunTask endpoint (cmd/vdce-submit's entry point).
//
//vdce:ignore detflow the reply reports a real execution: measured elapsed runtime and observed reschedules, not schedule decisions
func (s *Service) Submit(args SubmitArgs, reply *SubmitReply) error {
	g, err := afg.Decode(args.AFG)
	if err != nil {
		return err
	}
	res, table, err := s.m.ExecuteDistributedPolicy(contextBackground(), g, s.peers, args.Policy)
	if err != nil {
		return err
	}
	reply.Table = table.Entries
	reply.MakespanSec = res.Makespan.Seconds()
	reply.Rescheduled = res.Rescheduled
	reply.Outputs = map[afg.TaskID]string{}
	for id, v := range res.Outputs {
		if len(s.m.Repo.Resources.List()) >= 0 { // keep output compact: exits only
			for _, ex := range g.Exits() {
				if ex == id {
					reply.Outputs[id] = renderValue(v)
				}
			}
		}
	}
	return nil
}

// Serve starts the site's RPC endpoint on addr ("127.0.0.1:0" for an
// ephemeral port). It returns the bound address and a shutdown function.
func (m *Manager) Serve(addr string) (string, func(), error) {
	return m.ServeWithPeers(addr, nil)
}

// ServeWithPeers starts the RPC endpoint with a set of peer sites used for
// distributed scheduling/execution of submitted applications.
func (m *Manager) ServeWithPeers(addr string, peers []*RemoteSelector) (string, func(), error) {
	srv := rpc.NewServer()
	if err := srv.RegisterName("Site", &Service{m: m, peers: peers}); err != nil {
		return "", nil, err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("site: listen %s: %w", addr, err)
	}
	var wg sync.WaitGroup
	done := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				srv.ServeConn(conn)
			}()
		}
	}()
	stop := func() {
		close(done)
		ln.Close()
	}
	_ = done
	return ln.Addr().String(), stop, nil
}

// RemoteSelector makes a remote site's Host Selection service usable as a
// scheduler.HostSelector: the multicast step of the Site Scheduler
// Algorithm becomes an RPC to each neighbour.
type RemoteSelector struct {
	Name string // remote site name
	Addr string // RPC endpoint

	mu     sync.Mutex
	client *rpc.Client
}

// NewRemoteSelector returns a lazy-dialling remote selector.
func NewRemoteSelector(name, addr string) *RemoteSelector {
	return &RemoteSelector{Name: name, Addr: addr}
}

// SiteName implements scheduler.HostSelector.
func (r *RemoteSelector) SiteName() string { return r.Name }

// SelectHosts implements scheduler.HostSelector over RPC.
func (r *RemoteSelector) SelectHosts(g *afg.Graph) (map[afg.TaskID]scheduler.Choice, error) {
	data, err := g.Encode()
	if err != nil {
		return nil, err
	}
	client, err := r.conn()
	if err != nil {
		return nil, err
	}
	var reply SelectReply
	if err := client.Call("Site.SelectHosts", SelectArgs{AFG: data}, &reply); err != nil {
		r.dropConn(client)
		return nil, fmt.Errorf("site: remote %s: %w", r.Name, err)
	}
	return reply.Choices, nil
}

// RunTask executes one task on a remote site's host over RPC (the client
// half of the cross-site execution path).
func (r *RemoteSelector) RunTask(host string, task *afg.Task, inputs []tasklib.Value) (tasklib.Value, error) {
	encoded := make([][]byte, len(inputs))
	for i, v := range inputs {
		data, err := v.Encode()
		if err != nil {
			return tasklib.Value{}, err
		}
		encoded[i] = data
	}
	procs := 1
	if task.Mode == afg.Parallel {
		procs = task.Processors
	}
	client, err := r.conn()
	if err != nil {
		return tasklib.Value{}, err
	}
	var reply RunTaskReply
	err = client.Call("Site.RunTask", RunTaskArgs{
		Function:   task.Function,
		Params:     task.Params,
		Processors: procs,
		Host:       host,
		MemReq:     task.MemReq,
		Inputs:     encoded,
	}, &reply)
	if err != nil {
		r.dropConn(client)
		return tasklib.Value{}, fmt.Errorf("site: remote run on %s/%s: %w", r.Name, host, err)
	}
	return tasklib.DecodeValue(reply.Output)
}

func (r *RemoteSelector) conn() (*rpc.Client, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.client != nil {
		return r.client, nil
	}
	c, err := rpc.Dial("tcp", r.Addr)
	if err != nil {
		return nil, fmt.Errorf("site: dial %s (%s): %w", r.Name, r.Addr, err)
	}
	r.client = c
	return c, nil
}

func (r *RemoteSelector) dropConn(c *rpc.Client) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.client == c {
		r.client.Close()
		r.client = nil
	}
}

// Close shuts the cached connection.
func (r *RemoteSelector) Close() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.client != nil {
		r.client.Close()
		r.client = nil
	}
}

var _ scheduler.HostSelector = (*RemoteSelector)(nil)

// ErrBadValue reports an unrenderable output value.
var ErrBadValue = errors.New("site: unrenderable value")
