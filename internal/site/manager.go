// Package site implements the VDCE Site Manager: "the server software ...
// which handles the inter-site communications and bridges the VDCE modules
// to the web-based repository" (paper §2). One Manager runs per VDCE site;
// it owns the site repository, the host pool with its Group Managers
// (Resource Controller, Fig 6), the site-local Host Selection service, and
// the RPC endpoint remote sites use during distributed scheduling.
package site

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/afg"
	"repro/internal/datamgr"
	"repro/internal/monitor"
	"repro/internal/netsim"
	"repro/internal/predict"
	"repro/internal/repository"
	"repro/internal/resource"
	"repro/internal/runtime"
	"repro/internal/scheduler"
	"repro/internal/tasklib"
)

// Config tunes a site manager.
type Config struct {
	// GroupSize is the number of hosts per Group Manager (0 = 8).
	GroupSize int
	// Monitor is the Group Manager configuration.
	Monitor monitor.Config
	// LoadThreshold is the runtime QoS bound passed to executions.
	LoadThreshold float64
	// UseSockets makes executions ship data through real TCP proxies.
	UseSockets bool
	// SchedulerConcurrency bounds the Site Scheduler's fan-out worker
	// pool and the batch endpoint's per-application workers
	// (0 = GOMAXPROCS, 1 = serial).
	SchedulerConcurrency int
	// AvailabilityAware makes this site's schedulers place by earliest
	// finish time (predicted + transfer + host wait) instead of the
	// paper-faithful predicted + transfer objective.
	//
	// Deprecated: set Policy to "eft" instead; the flag remains as the
	// default-policy fallback for existing configurations.
	AvailabilityAware bool

	// Policy names the scheduling policy this site runs by default
	// (scheduler.Lookup name: "faithful", "eft", "heft", "cpop", ...).
	// Empty selects "eft" when AvailabilityAware is set, else "faithful".
	Policy string

	// Replanner names the frontier re-planner this site's executions run
	// after a mid-execution host failure (scheduler.LookupReplanner name:
	// "heft", "eft", "dup"). Empty selects "eft"; "off" disables frontier
	// re-planning so only the per-task Rescheduler path remains.
	Replanner string
}

// BatchOptions tunes one ScheduleBatchOpts call; the zero value follows
// the site Config.
type BatchOptions struct {
	// Policy selects the scheduling policy by registry name for this
	// batch; empty follows the site default (Config.Policy).
	Policy string
	// AvailabilityAware forces earliest-finish-time placement for this
	// batch even if the site default is paper-faithful. Ignored when a
	// Policy is named explicitly.
	AvailabilityAware bool
	// SharedLedger threads one cross-application load ledger through the
	// batch (implies availability-aware placement for the site policies):
	// the batch's graphs see each other's in-flight placements and
	// spread accordingly. The "ledger" policy shares a batch-wide ledger
	// even without this flag — that sharing is its whole point.
	SharedLedger bool
	// Seed feeds the randomized policies ("random"), so probing clients
	// can vary placements between otherwise identical calls.
	Seed int64
}

// Manager is one VDCE site.
type Manager struct {
	Site     string
	Repo     *repository.Repository
	Pool     *resource.Pool
	Groups   []*monitor.GroupManager
	Selector *scheduler.LocalSelector
	Cache    *predict.Cache // prediction memo shared by the site's selectors
	Net      *netsim.Network
	Registry *tasklib.Registry
	Gate     *datamgr.Gate

	cfg Config

	// Deviation fan-out: in-flight executions subscribe here and receive
	// the names of hosts the monitoring plane reports down (§2.3.1).
	subMu   sync.Mutex
	subs    map[int]chan string
	nextSub int
}

// NewManager builds a site around an existing host pool: every host is
// registered in the resource-performance database, hosts are partitioned
// into groups with a Group Manager each, and the task-performance database
// is seeded from the task registry ("measured time on the base processor").
func NewManager(siteName string, pool *resource.Pool, nw *netsim.Network, reg *tasklib.Registry, cfg Config) (*Manager, error) {
	if reg == nil {
		reg = tasklib.Default()
	}
	if cfg.GroupSize <= 0 {
		cfg.GroupSize = 8
	}
	m := &Manager{
		Site:     siteName,
		Repo:     repository.New(),
		Pool:     pool,
		Cache:    predict.NewCache(),
		Net:      nw,
		Registry: reg,
		Gate:     datamgr.NewGate(),
		cfg:      cfg,
	}
	for _, h := range pool.Hosts() {
		err := m.Repo.Resources.Register(repository.ResourceStatic{
			HostName:    h.Spec.Name,
			IPAddr:      h.Spec.IPAddr,
			Site:        siteName,
			Arch:        string(h.Spec.Arch),
			OSType:      h.Spec.OSType,
			TotalMemory: h.Spec.TotalMemory,
			SpeedFactor: h.Spec.SpeedFactor,
		})
		if err != nil {
			return nil, err
		}
	}
	// Partition hosts into monitor groups.
	hosts := pool.Hosts()
	for i := 0; i < len(hosts); i += cfg.GroupSize {
		end := i + cfg.GroupSize
		if end > len(hosts) {
			end = len(hosts)
		}
		gm := monitor.NewGroupManager(
			fmt.Sprintf("%s-group%d", siteName, i/cfg.GroupSize),
			siteName, hosts[i:end], m, cfg.Monitor, nw)
		m.Groups = append(m.Groups, gm)
	}
	m.Selector = &scheduler.LocalSelector{Site: siteName, Repo: m.Repo, Cache: m.Cache}
	m.seedTaskDatabase()
	return m, nil
}

// seedTaskDatabase installs every registry task's cost metadata into the
// task-performance database.
func (m *Manager) seedTaskDatabase() {
	for _, name := range m.Registry.Names() {
		spec, err := m.Registry.Get(name)
		if err != nil {
			continue
		}
		m.Repo.Tasks.Put(repository.TaskRecord{
			Function:  spec.Name,
			BaseTime:  spec.BaseTime,
			MemReq:    spec.MemReq,
			CommBytes: spec.OutputBytes,
		})
	}
}

// monitor.Sink implementation ------------------------------------------------

// UpdateWorkload stores a significantly changed measurement in the
// resource-performance database ("the Site Manager stores/updates the
// relevant VDCE database with the received values") and evicts the host's
// memoized predictions, which baked in the old load.
func (m *Manager) UpdateWorkload(ms monitor.Measurement) {
	m.Repo.Resources.UpdateDynamic(ms.Host, ms.Load, ms.AvailMem, ms.At)
	m.Cache.Invalidate(ms.Host)
}

// HostDown marks the host "down" in the repository so no further tasks are
// mapped onto it, and notifies subscribed in-flight executions so they can
// re-plan their unstarted frontier off the dead host.
func (m *Manager) HostDown(host string, at time.Time) {
	m.Repo.Resources.SetDown(host, true)
	m.Cache.Invalidate(host)
	m.subMu.Lock()
	ids := make([]int, 0, len(m.subs))
	for id := range m.subs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		select {
		case m.subs[id] <- host:
		default: // subscriber lagging: it will see the repo mark instead
		}
	}
	m.subMu.Unlock()
}

// HostUp clears the down mark after recovery.
func (m *Manager) HostUp(host string, at time.Time) {
	m.Repo.Resources.SetDown(host, false)
	m.Cache.Invalidate(host)
}

var _ monitor.Sink = (*Manager)(nil)

// -----------------------------------------------------------------------------

// TickMonitors runs one synchronous monitoring round over all groups.
func (m *Manager) TickMonitors() {
	for _, g := range m.Groups {
		g.Tick()
	}
}

// StartMonitors runs all group managers until ctx is cancelled.
func (m *Manager) StartMonitors(ctx context.Context, period time.Duration) {
	for _, g := range m.Groups {
		go g.Run(ctx, period)
	}
}

// Authenticate validates a user against the user-accounts database; the
// Application Editor calls this before loading (§2.1).
func (m *Manager) Authenticate(user, password string) (repository.UserAccount, error) {
	return m.Repo.Users.Authenticate(user, password)
}

// Host resolves a host by name for the runtime.
func (m *Manager) Host(name string) *resource.Host { return m.Pool.Get(name) }

// Rescheduler returns the site's task-rescheduling service: it re-runs host
// selection for the single task, excluding the hosts already tried (the
// Application Controller → Group Manager rescheduling request, §2.3.1).
func (m *Manager) Rescheduler() runtime.Rescheduler {
	return func(ctx context.Context, id afg.TaskID, exclude []string) (scheduler.Assignment, error) {
		bad := make(map[string]bool, len(exclude))
		for _, h := range exclude {
			bad[h] = true
			// A host excluded because it is actually down gets marked in
			// the repository immediately ("the machine is marked as
			// 'down' and the Site Manager is informed in order to
			// prevent further task mappings", §2.3.1) rather than
			// waiting for the next monitor round.
			if ph := m.Pool.Get(h); ph != nil && ph.IsDown() {
				m.Repo.Resources.SetDown(h, true)
				m.Cache.Invalidate(h)
			}
		}
		var best scheduler.Assignment
		found := false
		for _, rec := range m.Repo.Resources.List() {
			if rec.Dynamic.Down || bad[rec.Static.HostName] {
				continue
			}
			pred := predict.Seconds(predict.Inputs{
				BaseTime: 1,
				Weight:   predict.WeightFromSpeed(rec.Static.SpeedFactor),
				CPULoad:  rec.Dynamic.Load,
			})
			if !found || pred < best.Predicted {
				best = scheduler.Assignment{
					Task: id, Site: m.Site, Host: rec.Static.HostName, Predicted: pred,
				}
				found = true
			}
		}
		if !found {
			return scheduler.Assignment{}, scheduler.ErrNoEligibleHost
		}
		return best, nil
	}
}

// SubscribeDeviations registers a listener for monitor-reported host
// failures. The returned cancel must be called when the execution ends;
// sends never block (a lagging subscriber just misses the nudge and relies
// on the repository's down marks instead).
func (m *Manager) SubscribeDeviations() (<-chan string, func()) {
	m.subMu.Lock()
	defer m.subMu.Unlock()
	if m.subs == nil {
		m.subs = make(map[int]chan string)
	}
	id := m.nextSub
	m.nextSub++
	ch := make(chan string, 16)
	m.subs[id] = ch
	return ch, func() {
		m.subMu.Lock()
		defer m.subMu.Unlock()
		delete(m.subs, id)
	}
}

// FrontierReplanner builds the runtime's whole-frontier rescheduling
// callback from the site's configured re-planner: candidate hosts and the
// cost model come from the resource-performance database (the same data the
// original placement used), settled tasks are modelled as running to their
// predicted finish, and the repaired table is certified by ValidateSchedule
// before any assignment is adopted. Returns nil when Config.Replanner is
// "off".
func (m *Manager) FrontierReplanner() runtime.FrontierReplan {
	name := m.cfg.Replanner
	if name == "off" {
		return nil
	}
	if name == "" {
		name = "eft"
	}
	rp, lookupErr := scheduler.LookupReplanner(name)
	return func(ctx context.Context, g *afg.Graph, table *scheduler.AllocationTable, settled map[afg.TaskID]bool, failedHost string) (map[afg.TaskID]scheduler.Assignment, error) {
		if lookupErr != nil {
			return nil, lookupErr
		}
		down := map[string]bool{failedHost: true}
		var hosts []scheduler.HostRef
		speed := make(map[string]float64)
		load := make(map[string]float64)
		for _, rec := range m.Repo.Resources.List() {
			// Down hosts keep cost-model entries — settled work already
			// sitting on them must still simulate — but contribute no
			// candidate columns.
			speed[rec.Static.HostName] = rec.Static.SpeedFactor
			load[rec.Static.HostName] = rec.Dynamic.Load
			if rec.Dynamic.Down {
				down[rec.Static.HostName] = true
				continue
			}
			hosts = append(hosts, scheduler.HostRef{Site: rec.Static.Site, Host: rec.Static.HostName})
		}
		sort.Slice(hosts, func(i, j int) bool {
			if hosts[i].Site != hosts[j].Site {
				return hosts[i].Site < hosts[j].Site
			}
			return hosts[i].Host < hosts[j].Host
		})
		costs := func(task *afg.Task, host string) float64 {
			sf, ok := speed[host]
			if !ok || sf <= 0 {
				return math.NaN()
			}
			cost := task.ComputeCost
			if cost <= 0 {
				// Graphs built from the task registry carry no abstract
				// compute cost; fall back to the per-task prediction the
				// committed table was placed with.
				if a, ok := table.Get(task.ID); ok && a.Predicted > 0 {
					cost = a.Predicted
				} else {
					cost = 1
				}
			}
			return cost / sf * (1 + load[host])
		}
		// Settled tasks keep their slots: model each as running until its
		// predicted finish so the re-planner seeds host timelines from them
		// (sorted walk: the request must not depend on map order).
		running := make(map[afg.TaskID]float64, len(settled))
		for _, id := range g.TaskIDs() {
			if !settled[id] {
				continue
			}
			if a, ok := table.Get(id); ok {
				running[id] = a.Predicted
			}
		}
		rep, err := rp.Replan(&scheduler.ReplanRequest{
			Graph:   g,
			Table:   table,
			Running: running,
			Down:    down,
			Event:   scheduler.Deviation{Kind: scheduler.DeviationHostDown, Host: failedHost},
			Costs:   costs,
			Hosts:   hosts,
			Net:     m.Net,
		})
		if err != nil {
			return nil, err
		}
		if _, err := scheduler.CertifyReplan(g, rep.Table, costs, m.Net); err != nil {
			return nil, err
		}
		moved := make(map[afg.TaskID]scheduler.Assignment)
		for _, id := range g.TaskIDs() {
			if settled[id] {
				continue
			}
			if na, ok := rep.Table.Get(id); ok {
				moved[id] = na
			}
		}
		return moved, nil
	}
}

// SiteScheduler builds this site's distributed Site Scheduler over the given
// remote selectors, with the configured fan-out concurrency and placement
// mode.
//
// Deprecated: use Policy (or SchedulePolicy) — the struct remains for
// callers tuning engine fields directly.
func (m *Manager) SiteScheduler(remotes []scheduler.HostSelector) *scheduler.SiteScheduler {
	sched := scheduler.NewSiteScheduler(m.Selector, remotes, m.Net, 0)
	sched.Concurrency = m.cfg.SchedulerConcurrency
	sched.AvailabilityAware = m.cfg.AvailabilityAware
	return sched
}

// Policy resolves the scheduling policy one call should run: the explicit
// override, else the site's configured default, else the mode implied by
// the deprecated AvailabilityAware flag.
func (m *Manager) Policy(override string) (scheduler.Policy, error) {
	name := override
	if name == "" {
		name = m.cfg.Policy
	}
	if name == "" {
		if m.cfg.AvailabilityAware {
			name = "eft"
		} else {
			name = "faithful"
		}
	}
	return scheduler.Lookup(name)
}

// policyRequest assembles the policy environment for this site: the local
// Host Selection service, the given remotes, the network model, and the
// fan-out concurrency. The deprecated AvailabilityAware site flag is NOT
// folded in here — it acts only through the default-policy fallback in
// Policy(), so an explicitly named policy (e.g. "faithful" as the ablation
// baseline) always runs exactly what its name says.
func (m *Manager) policyRequest(g *afg.Graph, remotes []scheduler.HostSelector, concurrency int, seed int64) *scheduler.Request {
	return scheduler.NewRequest(g, m.Selector, remotes, m.Net,
		scheduler.WithConcurrency(concurrency), scheduler.WithSeed(seed))
}

// SchedulePolicy schedules one application under the named policy (empty =
// the site default) against this site plus the given remote selectors.
func (m *Manager) SchedulePolicy(ctx context.Context, policy string, g *afg.Graph, remotes []scheduler.HostSelector) (*scheduler.AllocationTable, error) {
	p, err := m.Policy(policy)
	if err != nil {
		return nil, err
	}
	return p.Schedule(ctx, m.policyRequest(g, remotes, m.cfg.SchedulerConcurrency, 0))
}

// ScheduleBatch schedules many applications concurrently against this site
// (plus the given remote selectors), sharing the repository and prediction
// cache across all of them, with the site's default batch options. Results
// come back in input order.
func (m *Manager) ScheduleBatch(graphs []*afg.Graph, remotes []scheduler.HostSelector) ([]scheduler.BatchItem, error) {
	return m.ScheduleBatchOpts(graphs, remotes, BatchOptions{})
}

// ScheduleBatchOpts is ScheduleBatch with per-call options (the
// Site.ScheduleBatch RPC surfaces them to clients). It fails fast on an
// unknown policy name; per-graph failures report through the items.
// SchedulerConcurrency is one budget, not two: with several graphs in
// flight it bounds the batch workers and each schedule fans out serially;
// a single graph gets the whole budget as fan-out instead. Without this,
// the effective parallelism would be the square of the configured bound.
func (m *Manager) ScheduleBatchOpts(graphs []*afg.Graph, remotes []scheduler.HostSelector, opts BatchOptions) ([]scheduler.BatchItem, error) {
	policyName := opts.Policy
	if policyName == "" && opts.AvailabilityAware {
		policyName = "eft"
	}
	p, err := m.Policy(policyName)
	if err != nil {
		return nil, err
	}
	concurrency := m.cfg.SchedulerConcurrency
	if len(graphs) > 1 {
		concurrency = 1
	}
	env := m.policyRequest(nil, remotes, concurrency, opts.Seed)
	b := &scheduler.Batch{Scheduler: scheduler.Bind(p, *env), Workers: m.cfg.SchedulerConcurrency}
	if opts.SharedLedger {
		b.Ledger = scheduler.NewLoadLedger()
	}
	return b.Schedule(graphs), nil
}

// ExecuteLocal schedules (against this site only, plus the given remote
// selectors) and executes an application whose tasks all resolve to hosts
// this manager can reach through resolve. It also records measured
// execution times back into the task-performance database ("After an
// application execution is completed, the newly measured execution time of
// each application task is stored").
func (m *Manager) ExecuteLocal(ctx context.Context, g *afg.Graph, remotes []scheduler.HostSelector, resolve func(string) *resource.Host) (*runtime.Result, *scheduler.AllocationTable, error) {
	table, err := m.SchedulePolicy(ctx, "", g, remotes)
	if err != nil {
		return nil, nil, err
	}
	if resolve == nil {
		resolve = m.Host
	}
	dev, cancelDev := m.SubscribeDeviations()
	defer cancelDev()
	res, err := runtime.Execute(ctx, g, table, runtime.Options{
		Registry:       m.Registry,
		Hosts:          resolve,
		Net:            m.Net,
		Gate:           m.Gate,
		UseSockets:     m.cfg.UseSockets,
		LoadThreshold:  m.cfg.LoadThreshold,
		Reschedule:     m.Rescheduler(),
		FrontierReplan: m.FrontierReplanner(),
		Deviations:     dev,
		MaxAttempts:    m.Pool.Len() + 1, // worst case: every other host fails first
	})
	if err != nil {
		return res, table, err
	}
	m.recordExecutions(g, res)
	return res, table, nil
}

// recordExecutions feeds completed task timings into the task-performance
// database, in sorted task order so the recorded sample history is
// reproducible run to run.
func (m *Manager) recordExecutions(g *afg.Graph, res *runtime.Result) {
	ids := make([]afg.TaskID, 0, len(res.TaskResults))
	for id := range res.TaskResults {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		tr := res.TaskResults[id]
		task := g.Task(id)
		if task == nil || tr.Err != nil {
			continue
		}
		m.Repo.Tasks.RecordExecution(task.Function, repository.ExecutionSample{
			Host: tr.Host, Elapsed: tr.Elapsed, At: time.Now(),
		})
	}
}

// ExecuteDistributed schedules an application across this site and the
// given RPC peers, then executes it: tasks assigned locally run on this
// site's hosts, tasks assigned to a peer are forwarded to that peer's
// RunTask endpoint — the full multi-process execution path of Fig 6/7.
func (m *Manager) ExecuteDistributed(ctx context.Context, g *afg.Graph, peers []*RemoteSelector) (*runtime.Result, *scheduler.AllocationTable, error) {
	return m.ExecuteDistributedPolicy(ctx, g, peers, "")
}

// ExecuteDistributedPolicy is ExecuteDistributed scheduling under the named
// policy (empty = the site default).
func (m *Manager) ExecuteDistributedPolicy(ctx context.Context, g *afg.Graph, peers []*RemoteSelector, policy string) (*runtime.Result, *scheduler.AllocationTable, error) {
	var remotes []scheduler.HostSelector
	byName := make(map[string]*RemoteSelector, len(peers))
	for _, p := range peers {
		remotes = append(remotes, p)
		byName[p.Name] = p
	}
	table, err := m.SchedulePolicy(ctx, policy, g, remotes)
	if err != nil {
		return nil, nil, err
	}
	dev, cancelDev := m.SubscribeDeviations()
	defer cancelDev()
	res, err := runtime.Execute(ctx, g, table, runtime.Options{
		Registry:       m.Registry,
		Hosts:          m.Host, // local hosts only; remote hosts go via RemoteExec
		Net:            m.Net,
		Gate:           m.Gate,
		UseSockets:     m.cfg.UseSockets,
		LoadThreshold:  m.cfg.LoadThreshold,
		Reschedule:     m.Rescheduler(),
		FrontierReplan: m.FrontierReplanner(),
		Deviations:     dev,
		MaxAttempts:    m.Pool.Len() + 1,
		RemoteExec: func(ctx context.Context, assign scheduler.Assignment, task *afg.Task, inputs []tasklib.Value) (tasklib.Value, error) {
			peer, ok := byName[assign.Site]
			if !ok {
				return tasklib.Value{}, fmt.Errorf("site: no peer for site %q", assign.Site)
			}
			if m.Net != nil {
				var bytes int64
				for _, v := range inputs {
					bytes += v.SizeBytes()
				}
				m.Net.InjectDelay(m.Site, assign.Site, bytes)
			}
			return peer.RunTask(assign.Host, task, inputs)
		},
	})
	if err != nil {
		return res, table, err
	}
	m.recordExecutions(g, res)
	return res, table, nil
}

// RunTrialWeights performs the paper's "trial runs ... to obtain the
// computing power weights of processors for each task": it derives a weight
// for every (function, host) pair from the host's speed factor plus a
// deterministic per-(arch, library) affinity, and stores it in the
// task-performance database. The affinity models the observation that "the
// performance of the processors changes from one application to another".
func (m *Manager) RunTrialWeights() {
	for _, name := range m.Registry.Names() {
		spec, err := m.Registry.Get(name)
		if err != nil {
			continue
		}
		for _, h := range m.Pool.Hosts() {
			w := predict.WeightFromSpeed(h.Spec.SpeedFactor) * archAffinity(string(h.Spec.Arch), spec.Library)
			m.Repo.Tasks.SetWeight(name, h.Spec.Name, w)
		}
	}
}

// archAffinity is the deterministic task-architecture interaction used by
// trial runs: e.g. SGI boxes shine on matrix code, Alphas on FFTs.
func archAffinity(arch, library string) float64 {
	type key struct{ a, l string }
	table := map[key]float64{
		{"sgi", "matrix"}:      0.8,
		{"sgi", "fourier"}:     1.1,
		{"alpha", "fourier"}:   0.75,
		{"alpha", "matrix"}:    1.05,
		{"solaris", "c3i"}:     0.9,
		{"linux", "synthetic"}: 0.85,
	}
	if f, ok := table[key{arch, library}]; ok {
		return f
	}
	return 1
}
