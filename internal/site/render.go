package site

import (
	"context"
	"fmt"

	"repro/internal/tasklib"
)

func contextBackground() context.Context { return context.Background() }

// renderValue formats a task output compactly for RPC replies and console
// display (the I/O service's console-facing representation).
func renderValue(v tasklib.Value) string {
	switch v.Kind {
	case tasklib.KindScalar:
		return fmt.Sprintf("scalar %.6g", v.Scalar)
	case tasklib.KindVector:
		return fmt.Sprintf("vector[%d]", len(v.Vector))
	case tasklib.KindMatrix:
		return fmt.Sprintf("matrix %dx%d", v.Matrix.Rows, v.Matrix.Cols)
	case tasklib.KindLU:
		return fmt.Sprintf("lu %dx%d", v.Matrix.Rows, v.Matrix.Cols)
	case tasklib.KindText:
		return fmt.Sprintf("text %q", v.Text)
	default:
		return "none"
	}
}
