package site

import (
	"context"
	"testing"

	"repro/internal/afg"
	"repro/internal/tasklib"
)

// TestExecuteDistributedAcrossRPC wires two site managers through real RPC
// endpoints and forces tasks onto the remote site, exercising the full
// cross-site path: multicast scheduling + RunTask forwarding.
func TestExecuteDistributedAcrossRPC(t *testing.T) {
	local := newTestSite(t, "syracuse", 2, 20)
	remote := newTestSite(t, "rome", 2, 21)
	local.TickMonitors()
	remote.TickMonitors()
	// Make the remote site irresistibly fast in the repositories.
	for _, rec := range remote.Repo.Resources.List() {
		rec.Static.SpeedFactor = 100
		remote.Repo.Resources.Remove(rec.Static.HostName)
		remote.Repo.Resources.Register(rec.Static)
		remote.Repo.Resources.UpdateDynamic(rec.Static.HostName, 0, rec.Static.TotalMemory, rec.Dynamic.UpdatedAt)
	}

	addr, stop, err := remote.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	peer := NewRemoteSelector("rome", addr)
	defer peer.Close()

	res, table, err := local.ExecuteDistributed(context.Background(), solverGraph(t), []*RemoteSelector{peer})
	if err != nil {
		t.Fatal(err)
	}
	usedRemote := false
	for _, a := range table.Entries {
		if a.Site == "rome" {
			usedRemote = true
		}
	}
	if !usedRemote {
		t.Fatalf("remote site never used: %+v", table.Entries)
	}
	if res.Outputs["solve"].Kind != tasklib.KindVector {
		t.Fatalf("solve output = %+v", res.Outputs["solve"])
	}
	// Remote hosts must have actually executed tasks.
	remoteRan := 0
	for _, h := range remote.Pool.Hosts() {
		remoteRan += h.Completed()
	}
	if remoteRan == 0 {
		t.Fatal("no task ran on the remote pool")
	}
}

// TestRPCSubmitDistributed submits through the RPC front door of a site
// configured with a peer.
func TestRPCSubmitDistributed(t *testing.T) {
	local := newTestSite(t, "syracuse", 2, 22)
	remote := newTestSite(t, "rome", 2, 23)
	local.TickMonitors()
	remote.TickMonitors()
	raddr, rstop, err := remote.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer rstop()
	peer := NewRemoteSelector("rome", raddr)
	defer peer.Close()
	laddr, lstop, err := local.ServeWithPeers("127.0.0.1:0", []*RemoteSelector{peer})
	if err != nil {
		t.Fatal(err)
	}
	defer lstop()

	client := NewRemoteSelector("syracuse", laddr)
	defer client.Close()
	c, err := client.conn()
	if err != nil {
		t.Fatal(err)
	}
	data, err := solverGraph(t).Encode()
	if err != nil {
		t.Fatal(err)
	}
	var reply SubmitReply
	if err := c.Call("Site.Submit", SubmitArgs{AFG: data}, &reply); err != nil {
		t.Fatal(err)
	}
	if len(reply.Table) != 3 || reply.Outputs["solve"] == "" {
		t.Fatalf("reply = %+v", reply)
	}
}

// TestRunTaskRPCDirect exercises the RunTask endpoint in isolation,
// including its error paths.
func TestRunTaskRPCDirect(t *testing.T) {
	m := newTestSite(t, "rome", 2, 24)
	addr, stop, err := m.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	peer := NewRemoteSelector("rome", addr)
	defer peer.Close()

	host := m.Pool.Names()[0]
	task := &afg.Task{ID: "g", Function: "matrix.generate",
		Params: map[string]string{"n": "8", "seed": "1"}}
	out, err := peer.RunTask(host, task, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Kind != tasklib.KindMatrix || out.Matrix.Rows != 8 {
		t.Fatalf("out = %+v", out)
	}
	// Unknown host fails.
	if _, err := peer.RunTask("ghost", task, nil); err == nil {
		t.Fatal("unknown host accepted")
	}
	// Task error propagates.
	bad := &afg.Task{ID: "b", Function: "matrix.generate",
		Params: map[string]string{"n": "oops"}}
	if _, err := peer.RunTask(host, bad, nil); err == nil {
		t.Fatal("bad params accepted")
	}
}
