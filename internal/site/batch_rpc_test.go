package site

import (
	"net/rpc"
	"testing"

	"repro/internal/workload"
)

// TestScheduleBatchOverRPC drives the Site.ScheduleBatch endpoint — the
// scheduler.Batch API as exposed by cmd/vdce-server — and checks per-item
// results come back in input order.
func TestScheduleBatchOverRPC(t *testing.T) {
	m := newTestSite(t, "syracuse", 4, 31)
	m.TickMonitors()
	addr, stop, err := m.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	client, err := rpc.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	graphs := []interface{ Encode() ([]byte, error) }{
		workload.Scale(50, 5, 4, 1),
		workload.Pipeline(8, 0.1, 1<<10),
		workload.ForkJoin(6, 0.2, 1<<10),
	}
	var args BatchArgs
	for _, g := range graphs {
		raw, err := g.Encode()
		if err != nil {
			t.Fatal(err)
		}
		args.AFGs = append(args.AFGs, raw)
	}
	// One malformed AFG mid-batch must fail alone, not sink the batch.
	args.AFGs = append(args.AFGs, []byte("{not json"))
	var reply BatchReply
	if err := client.Call("Site.ScheduleBatch", args, &reply); err != nil {
		t.Fatal(err)
	}
	if len(reply.Tables) != 4 || len(reply.Errs) != 4 {
		t.Fatalf("got %d tables / %d errs, want 4", len(reply.Tables), len(reply.Errs))
	}
	for i, want := range []int{50, 8, 8} {
		if reply.Errs[i] != "" {
			t.Fatalf("item %d errored: %s", i, reply.Errs[i])
		}
		if len(reply.Tables[i]) != want {
			t.Fatalf("item %d: %d assignments, want %d", i, len(reply.Tables[i]), want)
		}
	}
	// (gob delivers the nil table slot as an empty map)
	if reply.Errs[3] == "" || len(reply.Tables[3]) != 0 {
		t.Fatalf("malformed item: errs=%q tables=%v", reply.Errs[3], reply.Tables[3])
	}
}
