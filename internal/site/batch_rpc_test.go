package site

import (
	"fmt"
	"net/rpc"
	"testing"

	"repro/internal/afg"
	"repro/internal/netsim"
	"repro/internal/resource"
	"repro/internal/workload"
)

// TestScheduleBatchOverRPC drives the Site.ScheduleBatch endpoint — the
// scheduler.Batch API as exposed by cmd/vdce-server — and checks per-item
// results come back in input order.
func TestScheduleBatchOverRPC(t *testing.T) {
	m := newTestSite(t, "syracuse", 4, 31)
	m.TickMonitors()
	addr, stop, err := m.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	client, err := rpc.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	graphs := []interface{ Encode() ([]byte, error) }{
		workload.Scale(50, 5, 4, 1),
		workload.Pipeline(8, 0.1, 1<<10),
		workload.ForkJoin(6, 0.2, 1<<10),
	}
	var args BatchArgs
	for _, g := range graphs {
		raw, err := g.Encode()
		if err != nil {
			t.Fatal(err)
		}
		args.AFGs = append(args.AFGs, raw)
	}
	// One malformed AFG mid-batch must fail alone, not sink the batch.
	args.AFGs = append(args.AFGs, []byte("{not json"))
	var reply BatchReply
	if err := client.Call("Site.ScheduleBatch", args, &reply); err != nil {
		t.Fatal(err)
	}
	if len(reply.Tables) != 4 || len(reply.Errs) != 4 {
		t.Fatalf("got %d tables / %d errs, want 4", len(reply.Tables), len(reply.Errs))
	}
	for i, want := range []int{50, 8, 8} {
		if reply.Errs[i] != "" {
			t.Fatalf("item %d errored: %s", i, reply.Errs[i])
		}
		if len(reply.Tables[i]) != want {
			t.Fatalf("item %d: %d assignments, want %d", i, len(reply.Tables[i]), want)
		}
	}
	// (gob delivers the nil table slot as an empty map)
	if reply.Errs[3] == "" || len(reply.Tables[3]) != 0 {
		t.Fatalf("malformed item: errs=%q tables=%v", reply.Errs[3], reply.Tables[3])
	}
}

// TestScheduleBatchOverRPCWithLedger drives the batch endpoint with the
// availability-aware + shared-ledger options: every graph must still
// schedule completely, and the ledger must actually steer the batch —
// identical single-task applications may not all land on the same host.
// The site runs serial batch workers so each application deterministically
// sees the previous applications' reservations (with concurrent workers
// the walks could all snapshot the ledger before any reservation lands).
func TestScheduleBatchOverRPCWithLedger(t *testing.T) {
	pool := resource.GenerateSite("syracuse", 4, 4, 31)
	m, err := NewManager("syracuse", pool, netsim.NYNET(0.0001), nil,
		Config{GroupSize: 3, SchedulerConcurrency: 1})
	if err != nil {
		t.Fatal(err)
	}
	m.TickMonitors()
	addr, stop, err := m.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	client, err := rpc.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	args := BatchArgs{AvailabilityAware: true, SharedLedger: true}
	for i := 0; i < 4; i++ {
		g := afg.New(fmt.Sprintf("single%d", i))
		g.AddTask(&afg.Task{ID: "t", Function: "synthetic.noop", ComputeCost: 5})
		raw, err := g.Encode()
		if err != nil {
			t.Fatal(err)
		}
		args.AFGs = append(args.AFGs, raw)
	}
	var reply BatchReply
	if err := client.Call("Site.ScheduleBatch", args, &reply); err != nil {
		t.Fatal(err)
	}
	hosts := map[string]bool{}
	for i := range args.AFGs {
		if reply.Errs[i] != "" {
			t.Fatalf("item %d errored: %s", i, reply.Errs[i])
		}
		a, ok := reply.Tables[i]["t"]
		if !ok {
			t.Fatalf("item %d missing assignment", i)
		}
		hosts[a.Host] = true
	}
	if len(hosts) < 2 {
		t.Fatalf("shared ledger over RPC did not spread identical apps: %v", hosts)
	}
}
