package site

import (
	"fmt"
	"net/rpc"
	"strings"
	"testing"

	"repro/internal/afg"
	"repro/internal/netsim"
	"repro/internal/resource"
	"repro/internal/scheduler"
	"repro/internal/workload"
)

// TestScheduleBatchOverRPC drives the Site.ScheduleBatch endpoint — the
// scheduler.Batch API as exposed by cmd/vdce-server — and checks per-item
// results come back in input order.
func TestScheduleBatchOverRPC(t *testing.T) {
	m := newTestSite(t, "syracuse", 4, 31)
	m.TickMonitors()
	addr, stop, err := m.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	client, err := rpc.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	graphs := []interface{ Encode() ([]byte, error) }{
		workload.Scale(50, 5, 4, 1),
		workload.Pipeline(8, 0.1, 1<<10),
		workload.ForkJoin(6, 0.2, 1<<10),
	}
	var args BatchArgs
	for _, g := range graphs {
		raw, err := g.Encode()
		if err != nil {
			t.Fatal(err)
		}
		args.AFGs = append(args.AFGs, raw)
	}
	// One malformed AFG mid-batch must fail alone, not sink the batch.
	args.AFGs = append(args.AFGs, []byte("{not json"))
	var reply BatchReply
	if err := client.Call("Site.ScheduleBatch", args, &reply); err != nil {
		t.Fatal(err)
	}
	if len(reply.Tables) != 4 || len(reply.Errs) != 4 {
		t.Fatalf("got %d tables / %d errs, want 4", len(reply.Tables), len(reply.Errs))
	}
	for i, want := range []int{50, 8, 8} {
		if reply.Errs[i] != "" {
			t.Fatalf("item %d errored: %s", i, reply.Errs[i])
		}
		if len(reply.Tables[i]) != want {
			t.Fatalf("item %d: %d assignments, want %d", i, len(reply.Tables[i]), want)
		}
		// The assignment order crosses the wire alongside the entries —
		// RebuildTable must reproduce a fully ordered table client-side.
		if len(reply.Orders[i]) != want {
			t.Fatalf("item %d: order has %d ids, want %d", i, len(reply.Orders[i]), want)
		}
		rebuilt := scheduler.RebuildTable("app", reply.Tables[i], reply.Orders[i])
		if got := rebuilt.Order(); len(got) != want {
			t.Fatalf("item %d: rebuilt order has %d ids, want %d", i, len(got), want)
		}
		for j, id := range rebuilt.Order() {
			if id != reply.Orders[i][j] {
				t.Fatalf("item %d: rebuilt order diverges at %d: %v vs %v", i, j, id, reply.Orders[i][j])
			}
		}
	}
	// (gob delivers the nil table slot as an empty map)
	if reply.Errs[3] == "" || len(reply.Tables[3]) != 0 {
		t.Fatalf("malformed item: errs=%q tables=%v", reply.Errs[3], reply.Tables[3])
	}
}

// TestScheduleBatchOverRPCByPolicy selects schedulers by name through the
// RPC options: every registered policy must schedule the batch, and an
// unknown name must fail the call with the registry's listing error.
func TestScheduleBatchOverRPCByPolicy(t *testing.T) {
	m := newTestSite(t, "syracuse", 4, 31)
	m.TickMonitors()
	addr, stop, err := m.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	client, err := rpc.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	g := workload.Pipeline(10, 0.1, 1<<10)
	raw, err := g.Encode()
	if err != nil {
		t.Fatal(err)
	}

	var policies PoliciesReply
	if err := client.Call("Site.Policies", PoliciesArgs{}, &policies); err != nil {
		t.Fatal(err)
	}
	if len(policies.Names) == 0 {
		t.Fatal("Site.Policies returned nothing")
	}
	for _, name := range policies.Names {
		args := BatchArgs{AFGs: [][]byte{raw}, Policy: name}
		var reply BatchReply
		if err := client.Call("Site.ScheduleBatch", args, &reply); err != nil {
			t.Fatalf("policy %q: %v", name, err)
		}
		if reply.Errs[0] != "" {
			t.Fatalf("policy %q: item errored: %s", name, reply.Errs[0])
		}
		if len(reply.Tables[0]) != g.Len() {
			t.Fatalf("policy %q: %d assignments, want %d", name, len(reply.Tables[0]), g.Len())
		}
	}

	var reply BatchReply
	err = client.Call("Site.ScheduleBatch", BatchArgs{AFGs: [][]byte{raw}, Policy: "nope"}, &reply)
	if err == nil {
		t.Fatal("unknown policy did not fail the call")
	}
	for _, want := range []string{"unknown policy", "heft", "cpop"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("unknown-policy error %q missing %q", err, want)
		}
	}
}

// TestScheduleBatchOverRPCWithLedger drives the batch endpoint with the
// availability-aware + shared-ledger options: every graph must still
// schedule completely, and the ledger must actually steer the batch —
// identical single-task applications may not all land on the same host.
// The site runs serial batch workers so each application deterministically
// sees the previous applications' reservations (with concurrent workers
// the walks could all snapshot the ledger before any reservation lands).
func TestScheduleBatchOverRPCWithLedger(t *testing.T) {
	pool := resource.GenerateSite("syracuse", 4, 4, 31)
	m, err := NewManager("syracuse", pool, netsim.NYNET(0.0001), nil,
		Config{GroupSize: 3, SchedulerConcurrency: 1})
	if err != nil {
		t.Fatal(err)
	}
	m.TickMonitors()
	addr, stop, err := m.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	client, err := rpc.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	args := BatchArgs{AvailabilityAware: true, SharedLedger: true}
	for i := 0; i < 4; i++ {
		g := afg.New(fmt.Sprintf("single%d", i))
		g.AddTask(&afg.Task{ID: "t", Function: "synthetic.noop", ComputeCost: 5})
		raw, err := g.Encode()
		if err != nil {
			t.Fatal(err)
		}
		args.AFGs = append(args.AFGs, raw)
	}
	var reply BatchReply
	if err := client.Call("Site.ScheduleBatch", args, &reply); err != nil {
		t.Fatal(err)
	}
	hosts := map[string]bool{}
	for i := range args.AFGs {
		if reply.Errs[i] != "" {
			t.Fatalf("item %d errored: %s", i, reply.Errs[i])
		}
		a, ok := reply.Tables[i]["t"]
		if !ok {
			t.Fatalf("item %d missing assignment", i)
		}
		hosts[a.Host] = true
	}
	if len(hosts) < 2 {
		t.Fatalf("shared ledger over RPC did not spread identical apps: %v", hosts)
	}
}

// An explicitly named "faithful" policy must run paper-faithful placement
// even on a site configured availability-aware: the deprecated site flag is
// a default, not an override of the caller's explicit choice.
func TestExplicitFaithfulIgnoresAvailabilityAwareDefault(t *testing.T) {
	graphs := []*afg.Graph{workload.Scale(60, 6, 4, 5)}
	tables := make([]*scheduler.AllocationTable, 2)
	for i, avail := range []bool{false, true} {
		pool := resource.GenerateSite("syracuse", 4, 4, 31)
		m, err := NewManager("syracuse", pool, netsim.NYNET(0.0001), nil,
			Config{GroupSize: 3, AvailabilityAware: avail, SchedulerConcurrency: 1})
		if err != nil {
			t.Fatal(err)
		}
		items, err := m.ScheduleBatchOpts(graphs, nil, BatchOptions{Policy: "faithful"})
		if err != nil {
			t.Fatal(err)
		}
		if items[0].Err != nil {
			t.Fatal(items[0].Err)
		}
		tables[i] = items[0].Table
	}
	for _, id := range tables[0].Order() {
		a, _ := tables[0].Get(id)
		b, ok := tables[1].Get(id)
		//vdce:ignore floateq explicit-vs-implicit policy equivalence: tables must match bit for bit
		if !ok || a.Host != b.Host || a.Predicted != b.Predicted {
			t.Fatalf("explicit faithful diverges on avail-aware site at %q: %+v vs %+v", id, a, b)
		}
	}
}

// Selecting Policy "ledger" must share one ledger across the whole batch
// even without the SharedLedger flag — otherwise it degenerates to eft.
func TestLedgerPolicySharesAcrossBatchWithoutFlag(t *testing.T) {
	pool := resource.GenerateSite("syracuse", 4, 4, 31)
	m, err := NewManager("syracuse", pool, netsim.NYNET(0.0001), nil,
		Config{GroupSize: 3, SchedulerConcurrency: 1})
	if err != nil {
		t.Fatal(err)
	}
	m.TickMonitors()
	var graphs []*afg.Graph
	for i := 0; i < 4; i++ {
		g := afg.New(fmt.Sprintf("single%d", i))
		g.AddTask(&afg.Task{ID: "t", Function: "synthetic.noop", ComputeCost: 5})
		graphs = append(graphs, g)
	}
	items, err := m.ScheduleBatchOpts(graphs, nil, BatchOptions{Policy: "ledger"})
	if err != nil {
		t.Fatal(err)
	}
	hosts := map[string]bool{}
	for i, it := range items {
		if it.Err != nil {
			t.Fatalf("item %d: %v", i, it.Err)
		}
		a, _ := it.Table.Get("t")
		hosts[a.Host] = true
	}
	if len(hosts) < 2 {
		t.Fatalf("ledger policy without SharedLedger flag did not spread identical apps: %v", hosts)
	}
}
