package metrics

import (
	"math"
	"testing"

	"repro/internal/afg"
	"repro/internal/dagen"
)

// chain builds a 3-task pipeline with costs 1, 2, 3.
func chain(t *testing.T) *afg.Graph {
	t.Helper()
	g := afg.New("chain")
	for i, c := range []float64{1, 2, 3} {
		id := afg.TaskID(rune('a' + i))
		if err := g.AddTask(&afg.Task{ID: id, Function: "f", ComputeCost: c}); err != nil {
			t.Fatal(err)
		}
	}
	g.AddLink(afg.Link{From: "a", To: "b"})
	g.AddLink(afg.Link{From: "b", To: "c"})
	return g
}

func TestCPLowerBound(t *testing.T) {
	g := chain(t)
	// Host h2 runs everything at half cost; the bound must use the per-task
	// minimum, i.e. the fast host throughout: (1+2+3)/2 = 3.
	model := func(task *afg.Task, host string) float64 {
		if host == "h2" {
			return task.ComputeCost / 2
		}
		return task.ComputeCost
	}
	lb, err := CPLowerBound(g, []string{"h1", "h2"}, model)
	if err != nil {
		t.Fatal(err)
	}
	if lb != 3 {
		t.Fatalf("lb = %v, want 3", lb)
	}
	if _, err := CPLowerBound(g, nil, model); err != ErrNoHosts {
		t.Fatalf("err = %v", err)
	}
	// A fork: a→b, a→c. Bound is max path, not sum: 1 + max(2,3) = 4 on h1.
	fork := afg.New("fork")
	for i, c := range []float64{1, 2, 3} {
		fork.AddTask(&afg.Task{ID: afg.TaskID(rune('a' + i)), Function: "f", ComputeCost: c})
	}
	fork.AddLink(afg.Link{From: "a", To: "b"})
	fork.AddLink(afg.Link{From: "a", To: "c"})
	lb, err = CPLowerBound(fork, []string{"h1"}, model)
	if err != nil {
		t.Fatal(err)
	}
	if lb != 4 {
		t.Fatalf("fork lb = %v, want 4", lb)
	}
}

func TestSLRSpeedupEfficiency(t *testing.T) {
	if v := SLR(6, 3); v != 2 {
		t.Fatalf("SLR = %v", v)
	}
	if v := SLR(6, 0); !math.IsInf(v, 1) {
		t.Fatalf("SLR with zero bound = %v", v)
	}
	g := chain(t)
	model := func(task *afg.Task, host string) float64 {
		if host == "fast" {
			return task.ComputeCost / 3
		}
		return task.ComputeCost
	}
	serial, err := BestSerial(g, []string{"slow", "fast"}, model)
	if err != nil {
		t.Fatal(err)
	}
	if serial != 2 { // (1+2+3)/3
		t.Fatalf("best serial = %v, want 2", serial)
	}
	if v := Speedup(serial, 1); v != 2 {
		t.Fatalf("speedup = %v", v)
	}
	if v := Efficiency(2, 4); v != 0.5 {
		t.Fatalf("efficiency = %v", v)
	}
}

func TestPairwiseAndBestCounts(t *testing.T) {
	// Two policies, three runs: A wins, tie (within tol), B wins.
	runs := [][]float64{
		{1.0, 2.0},
		{3.0, 3.0000001},
		{5.0, 4.0},
	}
	pw := Pairwise(runs, 1e-6)
	ab := pw[0][1]
	if ab.Better != 1 || ab.Equal != 1 || ab.Worse != 1 {
		t.Fatalf("A vs B = %+v", ab)
	}
	ba := pw[1][0]
	if ba.Better != 1 || ba.Equal != 1 || ba.Worse != 1 {
		t.Fatalf("B vs A = %+v", ba)
	}
	if d := pw[0][0]; d.Equal != 3 || d.Better != 0 || d.Worse != 0 {
		t.Fatalf("diagonal = %+v", d)
	}
	best := BestCounts(runs, 1e-6)
	if best[0] != 2 || best[1] != 2 { // the tie counts for both
		t.Fatalf("best counts = %v", best)
	}
	if Pairwise(nil, 0) != nil || BestCounts(nil, 0) != nil {
		t.Fatal("empty runs must return nil")
	}
}

// On any generated DAG, the SLR of a schedule charged by the same model can
// never dip below 1 when every task runs serially on one host.
func TestSLRNeverBelowOneOnSerialSchedule(t *testing.T) {
	model := func(task *afg.Task, host string) float64 { return task.ComputeCost }
	for seed := int64(0); seed < 10; seed++ {
		g := dagen.Random(dagen.Params{Tasks: 30, CCR: 1, Seed: seed})
		lb, err := CPLowerBound(g, []string{"h"}, model)
		if err != nil {
			t.Fatal(err)
		}
		makespan := g.TotalWork() // serial execution on the single host
		if s := SLR(makespan, lb); s < 1 {
			t.Fatalf("seed %d: SLR %v < 1", seed, s)
		}
	}
}

// runtimeSum adds at float64 precision; writing 0.1 + 0.2 inline would be
// folded exactly by Go's arbitrary-precision constant arithmetic.
func runtimeSum(a, b float64) float64 { return a + b }

func TestApproxEqual(t *testing.T) {
	inf := math.Inf(1)
	cases := []struct {
		name string
		a, b float64
		tol  float64
		want bool
	}{
		{"exact zero tol", 1.5, 1.5, 0, true},
		{"zero vs zero", 0, 0, 0, true},
		{"tiny relative error accepted", 1, 1 + 1e-12, 1e-9, true},
		{"large relative error rejected", 1, 1.1, 1e-3, false},
		{"zero tol rejects last-bit gap", runtimeSum(0.1, 0.2), 0.3, 0, false},
		{"relative, not absolute", 1e12, 1e12 + 1, 1e-9, true},
		{"equal infinities", inf, inf, 0, true},
		{"opposite infinities", inf, -inf, 1e9, false},
		{"nan never equal", math.NaN(), math.NaN(), 1e9, false},
	}
	for _, c := range cases {
		if got := ApproxEqual(c.a, c.b, c.tol); got != c.want {
			t.Errorf("%s: ApproxEqual(%v, %v, %v) = %v, want %v", c.name, c.a, c.b, c.tol, got, c.want)
		}
	}
}
