// Package metrics implements the schedule-quality metrics of the paper's
// evaluation methodology: Schedule Length Ratio (makespan over the
// critical-path lower bound), speedup against the best serial host,
// efficiency, and the pairwise better/equal/worse counts used to rank
// scheduling heuristics across a parameter grid. The metrics are pure
// arithmetic over a cost model — they take a ground-truth execution-time
// function, never a scheduler — so the same numbers score any policy's
// allocation table.
package metrics

import (
	"errors"
	"math"

	"repro/internal/afg"
)

// CostModel returns the execution seconds of a task on a named host — the
// same shape as scheduler.TimeModel, redeclared here so the metrics stay
// free of scheduler internals.
type CostModel func(task *afg.Task, host string) float64

// ErrNoHosts reports a metric evaluated over an empty host pool.
var ErrNoHosts = errors.New("metrics: no hosts")

// CPLowerBound is the denominator of the SLR: the length of the graph's
// critical path when every task runs at its minimum cost over the host
// pool and communication is free — no schedule on these hosts can beat it.
//
//vdce:unit seconds
func CPLowerBound(g *afg.Graph, hosts []string, model CostModel) (float64, error) {
	if len(hosts) == 0 {
		return 0, ErrNoHosts
	}
	order, err := g.TopoOrder()
	if err != nil {
		return 0, err
	}
	minCost := func(t *afg.Task) float64 {
		best := math.Inf(1)
		for _, h := range hosts {
			if c := model(t, h); c < best {
				best = c
			}
		}
		return best
	}
	longest := make(map[afg.TaskID]float64, g.Len())
	var cp float64
	for _, id := range order {
		var in float64
		for _, l := range g.Parents(id) {
			if v := longest[l.From]; v > in {
				in = v
			}
		}
		longest[id] = in + minCost(g.Task(id))
		if longest[id] > cp {
			cp = longest[id]
		}
	}
	return cp, nil
}

// SLR is the Schedule Length Ratio: makespan over the critical-path lower
// bound. 1.0 is unbeatable; lower is better among schedulers.
//
//vdce:unit makespan=seconds cpLowerBound=seconds result=ratio
func SLR(makespan, cpLowerBound float64) float64 {
	if cpLowerBound <= 0 {
		return math.Inf(1)
	}
	return makespan / cpLowerBound
}

// BestSerial is the numerator of the speedup: the shortest time any single
// host needs to run every task of the graph back to back.
//
//vdce:unit seconds
func BestSerial(g *afg.Graph, hosts []string, model CostModel) (float64, error) {
	if len(hosts) == 0 {
		return 0, ErrNoHosts
	}
	best := math.Inf(1)
	for _, h := range hosts {
		var sum float64
		for _, id := range g.TaskIDs() {
			sum += model(g.Task(id), h)
		}
		if sum < best {
			best = sum
		}
	}
	return best, nil
}

// Speedup is the serial-over-parallel ratio: best serial host time over the
// schedule's makespan. Higher is better; values above the host count mean
// the model is inconsistent.
//
//vdce:unit bestSerial=seconds makespan=seconds result=ratio
func Speedup(bestSerial, makespan float64) float64 {
	if makespan <= 0 {
		return math.Inf(1)
	}
	return bestSerial / makespan
}

// Efficiency is speedup per host: Speedup / |hosts|, in [0, 1] for
// consistent models.
//
//vdce:unit speedup=ratio result=ratio
func Efficiency(speedup float64, hosts int) float64 {
	if hosts <= 0 {
		return 0
	}
	return speedup / float64(hosts)
}

// Tally is one directed cell of the pairwise comparison: how often the row
// policy's makespan was better (smaller), equal, or worse than the column
// policy's across a set of runs.
type Tally struct {
	Better, Equal, Worse int
}

// Pairwise compares every policy pair across runs: runs[r][p] is policy p's
// makespan in run r (every row must have the same width). tol is the
// relative tolerance under which two makespans count as equal (the paper
// counts float ties as "equal", not coin-flip wins). The result is square:
// out[a][b] tallies policy a against policy b; out[a][a] is all-Equal.
func Pairwise(runs [][]float64, tol float64) [][]Tally {
	if len(runs) == 0 {
		return nil
	}
	n := len(runs[0])
	out := make([][]Tally, n)
	for a := range out {
		out[a] = make([]Tally, n)
	}
	for _, row := range runs {
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				switch {
				case ApproxEqual(row[a], row[b], tol):
					out[a][b].Equal++
				case row[a] < row[b]:
					out[a][b].Better++
				default:
					out[a][b].Worse++
				}
			}
		}
	}
	return out
}

// BestCounts returns, per policy, the number of runs in which it produced
// the (possibly jointly) best makespan — the paper's "occurrences of best
// result" column. Joint bests within tol all count.
func BestCounts(runs [][]float64, tol float64) []int {
	if len(runs) == 0 {
		return nil
	}
	out := make([]int, len(runs[0]))
	for _, row := range runs {
		best := math.Inf(1)
		for _, v := range row {
			if v < best {
				best = v
			}
		}
		for p, v := range row {
			if ApproxEqual(v, best, tol) {
				out[p]++
			}
		}
	}
	return out
}

// ApproxEqual reports |a−b| ≤ tol·max(|a|,|b|) (exact equality when
// tol=0). It is the repo's sanctioned way to compare computed float64
// quantities — makespans, ranks, EFTs — where exact ==/!= is a tolerance
// bug waiting to happen (the floateq analyzer flags those sites).
func ApproxEqual(a, b, tol float64) bool {
	//vdce:ignore floateq exact fast path: equal infinities would otherwise produce a NaN difference and compare false
	if a == b {
		return true
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		// Distinct infinities are never close: the relative formula below
		// would accept ±Inf for any tol > 0 (Inf ≤ tol·Inf).
		return false
	}
	return math.Abs(a-b) <= tol*math.Max(math.Abs(a), math.Abs(b))
}
