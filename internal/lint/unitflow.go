package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// UnitFlow returns the unitflow analyzer.
//
// The scheduler's cost model is bare float64 end to end — predicted
// execution seconds, transfer bytes, bandwidth in bytes per second, CCR
// ratios — and nothing in the type system stops a bandwidth from being
// added to a deadline. unitflow attaches physical units to those floats and
// checks the arithmetic dimensionally, interprocedurally:
//
// Units are seeded two ways. Explicitly, with the directive vocabulary
//
//	//vdce:unit seconds|bytes|bytes/s|flops|flops/s|ratio
//
// on a struct field, variable, or (in a function's doc comment, with
// `name=unit` and `result=unit` tokens) on parameters and results.
// Implicitly, from declaration comments that already state the unit in
// prose ("bytes per second", "reserved busy seconds") on plain numeric
// fields. Seeds then propagate through assignments, call arguments,
// results, and the unit algebra:
//
//	bytes ÷ bytes/s → seconds     flops ÷ flops/s → seconds
//	bytes ÷ seconds → bytes/s     flops ÷ seconds → flops/s
//	U ÷ U → ratio                 ratio × U → U
//	seconds × bytes/s → bytes     seconds × flops/s → flops
//
// Constants are dimensionless scalars: they multiply anything and adopt
// the other side's unit under addition. A finding is reported only when
// two KNOWN units meet incompatibly — seconds + bytes, a bytes/s value
// assigned to a seconds field, a ratio passed as a seconds parameter —
// so unannotated code stays silent rather than noisy.
func UnitFlow() *Analyzer {
	a := &Analyzer{
		Name: "unitflow",
		Doc:  "float64 cost arithmetic must be dimensionally consistent with declared //vdce:unit units",
	}
	a.RunProgram = func(pass *ProgramPass) {
		uf := &unitflow{
			pass:    pass,
			env:     map[types.Object]unit{},
			results: map[*types.Func]unit{},
			emitted: map[string]bool{},
		}
		uf.seed()
		for round := 0; round < 32; round++ {
			uf.changed = false
			for _, fi := range pass.Prog.Funcs() {
				uf.infer(fi)
			}
			if !uf.changed {
				break
			}
		}
		for _, fi := range pass.Prog.Funcs() {
			uf.check(fi)
		}
	}
	return a
}

type unit string

const (
	unitUnknown unit = ""
	unitScalar  unit = "scalar" // constants: dimensionless, compatible with everything
)

var knownUnits = map[unit]bool{
	"seconds": true, "bytes": true, "bytes/s": true,
	"flops": true, "flops/s": true, "ratio": true,
}

// dimensioned reports whether u participates in mismatch checks.
func dimensioned(u unit) bool { return u != unitUnknown && u != unitScalar }

// mulUnit is the × algebra; unitUnknown when the product has no name.
func mulUnit(a, b unit) unit {
	if a == unitScalar || a == "ratio" {
		return b
	}
	if b == unitScalar || b == "ratio" {
		return a
	}
	switch {
	case a == "seconds" && b == "bytes/s", a == "bytes/s" && b == "seconds":
		return "bytes"
	case a == "seconds" && b == "flops/s", a == "flops/s" && b == "seconds":
		return "flops"
	}
	return unitUnknown
}

// divUnit is the ÷ algebra.
func divUnit(a, b unit) unit {
	if b == unitScalar || b == "ratio" {
		return a
	}
	if a == unitUnknown || b == unitUnknown || a == unitScalar {
		return unitUnknown
	}
	if a == b {
		return "ratio"
	}
	switch {
	case a == "bytes" && b == "bytes/s":
		return "seconds"
	case a == "bytes" && b == "seconds":
		return "bytes/s"
	case a == "flops" && b == "flops/s":
		return "seconds"
	case a == "flops" && b == "seconds":
		return "flops/s"
	}
	return unitUnknown
}

// addUnit is the +/- algebra; mismatch is true when two distinct
// dimensioned units meet.
func addUnit(a, b unit) (u unit, mismatch bool) {
	switch {
	case a == b:
		return a, false
	case a == unitUnknown || b == unitUnknown:
		return unitUnknown, false
	case a == unitScalar:
		return b, false
	case b == unitScalar:
		return a, false
	}
	return unitUnknown, true
}

const unitDirective = "//vdce:unit"

// nlUnitPatterns recognize units already written in prose on numeric
// declarations. Rates are matched before their numerators so "bytes per
// second" seeds bytes/s, not bytes.
var nlUnitPatterns = []struct {
	re *regexp.Regexp
	u  unit
}{
	{regexp.MustCompile(`(?i)\bbytes\s*(?:per\s+second|/\s*s(?:ec(?:ond)?)?\b)`), "bytes/s"},
	{regexp.MustCompile(`(?i)\bflops\s*(?:per\s+second|/\s*s(?:ec(?:ond)?)?\b)`), "flops/s"},
	{regexp.MustCompile(`(?i)\bseconds\b`), "seconds"},
	{regexp.MustCompile(`(?i)\bbytes\b`), "bytes"},
	{regexp.MustCompile(`(?i)\bflops\b`), "flops"},
}

type unitflow struct {
	pass    *ProgramPass
	env     map[types.Object]unit // fields, vars, params → element unit
	results map[*types.Func]unit  // first (or only) result unit
	changed bool
	emitted map[string]bool
}

func (uf *unitflow) setEnv(obj types.Object, u unit) {
	if obj == nil || !dimensioned(u) {
		return
	}
	if uf.env[obj] == unitUnknown {
		uf.env[obj] = u
		uf.changed = true
	}
}

func (uf *unitflow) setResult(f *types.Func, u unit) {
	if f == nil || !dimensioned(u) {
		return
	}
	if uf.results[f] == unitUnknown {
		uf.results[f] = u
		uf.changed = true
	}
}

// numericCarrier reports whether t can carry a unit: an unnamed basic
// numeric type, possibly behind pointers/slices/arrays/maps (a container's
// unit is its element's unit). Named types — time.Duration in particular —
// are excluded: their semantics are theirs, not a bare number's.
func numericCarrier(t types.Type) bool {
	switch v := t.(type) {
	case *types.Basic:
		return v.Info()&types.IsNumeric != 0
	case *types.Pointer:
		return numericCarrier(v.Elem())
	case *types.Slice:
		return numericCarrier(v.Elem())
	case *types.Array:
		return numericCarrier(v.Elem())
	case *types.Map:
		return numericCarrier(v.Elem())
	}
	return false
}

// unitFromComments extracts a unit from a declaration's doc/trailing
// comments: an explicit //vdce:unit directive wins, then prose patterns.
func unitFromComments(groups ...*ast.CommentGroup) (unit, *ast.Comment) {
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			if rest, ok := strings.CutPrefix(c.Text, unitDirective); ok {
				fields := strings.Fields(rest)
				if len(fields) == 1 && !strings.Contains(fields[0], "=") {
					return unit(fields[0]), c
				}
				return unitUnknown, c // malformed or func-form in the wrong place
			}
		}
	}
	for _, g := range groups {
		if g == nil {
			continue
		}
		text := g.Text()
		for _, p := range nlUnitPatterns {
			if p.re.MatchString(text) {
				return p.u, nil
			}
		}
	}
	return unitUnknown, nil
}

// seed walks every non-test file and installs declared units.
func (uf *unitflow) seed() {
	for _, pkg := range uf.pass.Prog.Pkgs {
		for _, sf := range pkg.Files {
			if sf.Test {
				continue
			}
			ast.Inspect(sf.AST, func(n ast.Node) bool {
				switch v := n.(type) {
				case *ast.StructType:
					for _, field := range v.Fields.List {
						uf.seedNames(pkg, field.Names, field.Doc, field.Comment)
					}
				case *ast.GenDecl:
					for _, spec := range v.Specs {
						vs, ok := spec.(*ast.ValueSpec)
						if !ok {
							continue
						}
						doc := vs.Doc
						if doc == nil && len(v.Specs) == 1 {
							doc = v.Doc
						}
						uf.seedNames(pkg, vs.Names, doc, vs.Comment)
					}
				case *ast.FuncDecl:
					uf.seedFunc(pkg, v)
				}
				return true
			})
		}
	}
}

func (uf *unitflow) seedNames(pkg *Package, names []*ast.Ident, doc, trailing *ast.CommentGroup) {
	u, directive := unitFromComments(doc, trailing)
	if directive != nil && !knownUnits[u] {
		uf.pass.Reportf(directive.Pos(), "%s wants exactly one of seconds|bytes|bytes/s|flops|flops/s|ratio (got %q)",
			unitDirective, strings.TrimSpace(strings.TrimPrefix(directive.Text, unitDirective)))
		return
	}
	if !dimensioned(u) {
		return
	}
	// Prose-seeded units only attach to numeric carriers; an explicit
	// directive on a non-numeric declaration is reported, not ignored.
	for _, name := range names {
		obj := pkg.Info.Defs[name]
		if obj == nil {
			continue
		}
		if !numericCarrier(obj.Type()) {
			if directive != nil {
				uf.pass.Reportf(directive.Pos(), "%s %s on non-numeric %s (type %s)", unitDirective, u, name.Name, obj.Type())
			}
			continue
		}
		uf.setEnv(obj, u)
	}
}

// seedFunc applies a function doc directive: bare `//vdce:unit seconds`
// declares the result unit; `//vdce:unit bytes=bytes result=seconds` names
// parameters explicitly.
func (uf *unitflow) seedFunc(pkg *Package, fd *ast.FuncDecl) {
	if fd.Doc == nil {
		return
	}
	obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
	if obj == nil {
		return
	}
	params := map[string]types.Object{}
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				params[name.Name] = pkg.Info.Defs[name]
			}
		}
	}
	for _, c := range fd.Doc.List {
		rest, ok := strings.CutPrefix(c.Text, unitDirective)
		if !ok {
			continue
		}
		for _, tok := range strings.Fields(rest) {
			name, val, hasEq := strings.Cut(tok, "=")
			switch {
			case !hasEq:
				if !knownUnits[unit(name)] {
					uf.pass.Reportf(c.Pos(), "%s: unknown unit %q", unitDirective, name)
					continue
				}
				uf.setResult(obj, unit(name))
			case name == "result":
				if !knownUnits[unit(val)] {
					uf.pass.Reportf(c.Pos(), "%s: unknown unit %q", unitDirective, val)
					continue
				}
				uf.setResult(obj, unit(val))
			default:
				if !knownUnits[unit(val)] {
					uf.pass.Reportf(c.Pos(), "%s: unknown unit %q", unitDirective, val)
					continue
				}
				p, found := params[name]
				if !found {
					uf.pass.Reportf(c.Pos(), "%s: %s names no parameter of %s", unitDirective, tok, fd.Name.Name)
					continue
				}
				uf.setEnv(p, unit(val))
			}
		}
	}
}

// unitOf evaluates an expression's unit under the current environment.
func (uf *unitflow) unitOf(pkg *Package, e ast.Expr) unit {
	if e == nil {
		return unitUnknown
	}
	e = ast.Unparen(e)
	if tv, ok := pkg.Info.Types[e]; ok && tv.Value != nil {
		// Constant-folded expression. A named constant may carry a declared
		// unit; bare literals and arithmetic over them are scalars.
		if id, ok := e.(*ast.Ident); ok {
			if u := uf.env[pkg.Info.Uses[id]]; dimensioned(u) {
				return u
			}
		}
		return unitScalar
	}
	switch v := e.(type) {
	case *ast.Ident:
		obj := pkg.Info.Uses[v]
		if obj == nil {
			obj = pkg.Info.Defs[v]
		}
		return uf.env[obj]
	case *ast.SelectorExpr:
		if obj := pkg.Info.Uses[v.Sel]; obj != nil {
			return uf.env[obj]
		}
	case *ast.IndexExpr:
		return uf.unitOf(pkg, v.X) // container unit = element unit
	case *ast.StarExpr:
		return uf.unitOf(pkg, v.X)
	case *ast.UnaryExpr:
		if v.Op == token.SUB || v.Op == token.ADD || v.Op == token.AND {
			return uf.unitOf(pkg, v.X)
		}
	case *ast.BinaryExpr:
		x, y := uf.unitOf(pkg, v.X), uf.unitOf(pkg, v.Y)
		switch v.Op {
		case token.MUL:
			return mulUnit(x, y)
		case token.QUO:
			return divUnit(x, y)
		case token.ADD, token.SUB:
			u, _ := addUnit(x, y)
			return u
		case token.REM:
			return x
		}
	case *ast.CallExpr:
		return uf.callUnit(pkg, v)
	}
	return unitUnknown
}

func (uf *unitflow) callUnit(pkg *Package, call *ast.CallExpr) unit {
	fun := ast.Unparen(call.Fun)
	// Conversions preserve the operand's unit: float64(bytes) is still bytes.
	if tv, ok := pkg.Info.Types[fun]; ok && tv.IsType() && len(call.Args) == 1 {
		return uf.unitOf(pkg, call.Args[0])
	}
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		if f, ok := pkg.Info.Uses[sel.Sel].(*types.Func); ok {
			switch {
			case stdFunc(f, "time", "Seconds"): // (time.Duration).Seconds
				return "seconds"
			case stdFunc(f, "math", "Abs"), stdFunc(f, "math", "Floor"),
				stdFunc(f, "math", "Ceil"), stdFunc(f, "math", "Round"):
				if len(call.Args) == 1 {
					return uf.unitOf(pkg, call.Args[0])
				}
			case stdFunc(f, "math", "Max"), stdFunc(f, "math", "Min"):
				if len(call.Args) == 2 {
					u, _ := addUnit(uf.unitOf(pkg, call.Args[0]), uf.unitOf(pkg, call.Args[1]))
					return u
				}
			}
		}
	}
	if id, ok := fun.(*ast.Ident); ok {
		if _, builtin := pkg.Info.Uses[id].(*types.Builtin); builtin {
			if (id.Name == "min" || id.Name == "max") && len(call.Args) >= 2 {
				u := uf.unitOf(pkg, call.Args[0])
				for _, a := range call.Args[1:] {
					u, _ = addUnit(u, uf.unitOf(pkg, a))
				}
				return u
			}
			return unitUnknown
		}
	}
	site := uf.pass.Prog.ResolveCall(pkg, call)
	if site == nil || site.Unresolved || len(site.Callees) == 0 {
		return unitUnknown
	}
	// All possible callees must agree for the result unit to be known.
	u := uf.results[site.Callees[0]]
	for _, callee := range site.Callees[1:] {
		if uf.results[callee] != u {
			return unitUnknown
		}
	}
	return u
}

// assignTarget resolves the object a store writes through: the root
// variable for an ident, the field for a selector, the container's object
// for an index expression.
func assignTarget(pkg *Package, lhs ast.Expr) types.Object {
	switch v := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if obj := pkg.Info.Defs[v]; obj != nil {
			return obj
		}
		return pkg.Info.Uses[v]
	case *ast.SelectorExpr:
		return pkg.Info.Uses[v.Sel]
	case *ast.IndexExpr:
		return assignTarget(pkg, v.X)
	case *ast.StarExpr:
		return assignTarget(pkg, v.X)
	}
	return nil
}

// mapIndexStore reports whether lhs writes through a map index.
func mapIndexStore(pkg *Package, lhs ast.Expr) bool {
	ix, ok := ast.Unparen(lhs).(*ast.IndexExpr)
	if !ok {
		return false
	}
	t := pkg.Info.TypeOf(ix.X)
	if t == nil {
		return false
	}
	_, isMap := t.Underlying().(*types.Map)
	return isMap
}

// infer is one propagation pass over a function: stores, returns, and call
// arguments flow units into unannotated objects (first writer wins; the
// check pass reports disagreements).
func (uf *unitflow) infer(fi *FuncInfo) {
	pkg := fi.Pkg
	// Rooted at the declaration so enclosingFuncBody sees the FuncDecl for
	// the function's own returns (a body-rooted walk would hide it).
	inspectWithStack(fi.Decl, func(n ast.Node, stack []ast.Node) bool {
		switch v := n.(type) {
		case *ast.AssignStmt:
			if len(v.Lhs) == len(v.Rhs) {
				for i, lhs := range v.Lhs {
					// A store through a map index must not infer the map's
					// element unit: string-keyed metric maps are
					// heterogeneous by nature (makespans next to ratios).
					// Only an explicit seed gives a map a unit.
					if mapIndexStore(pkg, lhs) {
						continue
					}
					if u := uf.unitOf(pkg, v.Rhs[i]); dimensioned(u) {
						uf.setEnv(assignTarget(pkg, lhs), u)
					}
				}
			}
		case *ast.ReturnStmt:
			if len(v.Results) >= 1 && enclosingFuncBody(stack) == fi.Decl.Body {
				uf.setResult(fi.Obj, uf.unitOf(pkg, v.Results[0]))
			}
		case *ast.CallExpr:
			uf.inferCall(pkg, v)
		}
		return true
	})
}

// inferCall flows known argument units into a static in-load callee's
// unannotated parameters.
func (uf *unitflow) inferCall(pkg *Package, call *ast.CallExpr) {
	site := uf.pass.Prog.ResolveCall(pkg, call)
	if site == nil || site.Unresolved || site.Interface || len(site.Callees) != 1 {
		return
	}
	params := uf.paramObjects(site.Callees[0])
	if params == nil || len(call.Args) != len(params) {
		return // out of load, variadic, or method-value shapes: skip
	}
	for i, arg := range call.Args {
		if u := uf.unitOf(pkg, arg); dimensioned(u) && params[i] != nil && numericCarrier(params[i].Type()) {
			uf.setEnv(params[i], u)
		}
	}
}

// paramObjects returns the callee's declared parameter objects in order,
// nil when the body is outside the load.
func (uf *unitflow) paramObjects(f *types.Func) []types.Object {
	fi := uf.pass.Prog.FuncInfoOf(f)
	if fi == nil || fi.Decl.Type.Params == nil {
		return nil
	}
	var out []types.Object
	for _, field := range fi.Decl.Type.Params.List {
		if len(field.Names) == 0 {
			out = append(out, nil)
			continue
		}
		for _, name := range field.Names {
			out = append(out, fi.Pkg.Info.Defs[name])
		}
	}
	return out
}

// check is the reporting pass: every known-known incompatibility is a
// finding.
func (uf *unitflow) check(fi *FuncInfo) {
	pkg := fi.Pkg
	inspectWithStack(fi.Decl, func(n ast.Node, stack []ast.Node) bool {
		switch v := n.(type) {
		case *ast.BinaryExpr:
			switch v.Op {
			case token.ADD, token.SUB, token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
				x, y := uf.unitOf(pkg, v.X), uf.unitOf(pkg, v.Y)
				if _, bad := addUnit(x, y); bad {
					uf.emit(v.OpPos, "unit mismatch: %s %s %s", x, v.Op, y)
				}
			}
		case *ast.AssignStmt:
			uf.checkAssign(pkg, v)
		case *ast.ReturnStmt:
			if len(v.Results) >= 1 && enclosingFuncBody(stack) == fi.Decl.Body {
				want := uf.results[fi.Obj]
				got := uf.unitOf(pkg, v.Results[0])
				if dimensioned(want) && dimensioned(got) && want != got {
					uf.emit(v.Pos(), "returning %s value from a function declared to return %s", got, want)
				}
			}
		case *ast.CallExpr:
			uf.checkCall(pkg, v)
		}
		return true
	})
}

func (uf *unitflow) checkAssign(pkg *Package, s *ast.AssignStmt) {
	if len(s.Lhs) != len(s.Rhs) {
		return
	}
	for i, lhs := range s.Lhs {
		want := uf.env[assignTarget(pkg, lhs)]
		got := uf.unitOf(pkg, s.Rhs[i])
		switch s.Tok {
		case token.ASSIGN, token.DEFINE, token.ADD_ASSIGN, token.SUB_ASSIGN:
			if dimensioned(want) && dimensioned(got) && want != got {
				uf.emit(s.Rhs[i].Pos(), "assigning %s value to %s (%s)", got, want, exprString(lhs))
			}
		case token.MUL_ASSIGN, token.QUO_ASSIGN:
			// x *= ratio keeps x's unit; anything else dimensioned changes it.
			if dimensioned(want) && dimensioned(got) && got != "ratio" {
				uf.emit(s.Rhs[i].Pos(), "%s %s= %s changes the variable's unit", want, s.Tok.String()[:1], got)
			}
		}
	}
}

func (uf *unitflow) checkCall(pkg *Package, call *ast.CallExpr) {
	fun := ast.Unparen(call.Fun)
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		if f, ok := pkg.Info.Uses[sel.Sel].(*types.Func); ok &&
			(stdFunc(f, "math", "Max") || stdFunc(f, "math", "Min")) && len(call.Args) == 2 {
			x, y := uf.unitOf(pkg, call.Args[0]), uf.unitOf(pkg, call.Args[1])
			if _, bad := addUnit(x, y); bad {
				uf.emit(call.Pos(), "unit mismatch: math.%s(%s, %s)", f.Name(), x, y)
			}
			return
		}
	}
	site := uf.pass.Prog.ResolveCall(pkg, call)
	if site == nil || site.Unresolved || site.Interface || len(site.Callees) != 1 {
		return
	}
	params := uf.paramObjects(site.Callees[0])
	if params == nil || len(call.Args) != len(params) {
		return
	}
	for i, arg := range call.Args {
		if params[i] == nil {
			continue
		}
		want := uf.env[params[i]]
		got := uf.unitOf(pkg, arg)
		if dimensioned(want) && dimensioned(got) && want != got {
			uf.emit(arg.Pos(), "passing %s value as %s parameter %s of %s",
				got, want, params[i].Name(), site.Callees[0].Name())
		}
	}
}

func (uf *unitflow) emit(pos token.Pos, format string, args ...any) {
	key := uf.pass.Prog.fset().Position(pos).String() + "|" + format
	if uf.emitted[key] {
		return
	}
	uf.emitted[key] = true
	uf.pass.Reportf(pos, format, args...)
}
