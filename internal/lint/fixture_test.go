package lint

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"
)

// Fixture tests: each directory under testdata/src holds a tiny package with
// `// want "regexp"` comments on the lines where an analyzer must report, and
// deliberately clean code where it must stay silent. A line may carry several
// quoted regexps when distinct findings land on it. Directive-hygiene findings
// cannot carry want comments (a want cannot share the directive's own line),
// so TestSuppressionHygiene states its expectations directly.

// wantTailRE matches the trailing `// want "a" "b"` clause of a fixture line.
var wantTailRE = regexp.MustCompile(`// want ((?:"(?:[^"\\]|\\.)*"\s*)+)$`)

// wantArgRE pulls the individual quoted regexps out of the clause.
var wantArgRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

type wantKey struct {
	base string // file basename; findings may carry relative or absolute paths
	line int
}

type want struct {
	re      *regexp.Regexp
	matched bool
}

func parseWants(t *testing.T, dir string) map[wantKey][]*want {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		t.Fatal(err)
	}
	wants := map[wantKey][]*want{}
	for _, name := range names {
		f, err := os.Open(name)
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			m := wantTailRE.FindStringSubmatch(sc.Text())
			if m == nil {
				continue
			}
			key := wantKey{base: filepath.Base(name), line: line}
			for _, arg := range wantArgRE.FindAllStringSubmatch(m[1], -1) {
				re, err := regexp.Compile(arg[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", name, line, arg[1], err)
				}
				wants[key] = append(wants[key], &want{re: re})
			}
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	if len(wants) == 0 {
		t.Fatalf("fixture %s declares no wants; a fixture must hold at least one true positive", dir)
	}
	return wants
}

// fixtureLoader is shared across every fixture test in the process: the
// loader caches `go list` metadata and type-checked imports by import path,
// so the standard-library resolution work happens once instead of once per
// analyzer fixture.
var (
	fixtureLoaderMu sync.Mutex
	fixtureLoader   = NewLoader("")
)

func loadFixture(t *testing.T, dir string) *Package {
	t.Helper()
	fixtureLoaderMu.Lock()
	defer fixtureLoaderMu.Unlock()
	pkg, err := fixtureLoader.LoadDir(dir)
	if err != nil {
		t.Fatalf("load fixture %s: %v", dir, err)
	}
	return pkg
}

func runFixture(t *testing.T, dir string, analyzers ...*Analyzer) []Finding {
	t.Helper()
	return Run([]*Package{loadFixture(t, dir)}, analyzers)
}

// checkFixture runs the analyzers over dir and requires an exact bijection
// between findings and want comments.
func checkFixture(t *testing.T, dir string, analyzers ...*Analyzer) {
	t.Helper()
	findings := runFixture(t, dir, analyzers...)
	wants := parseWants(t, dir)

	var errs []string
	for _, f := range findings {
		key := wantKey{base: filepath.Base(f.Pos.Filename), line: f.Pos.Line}
		ok := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(f.Msg) {
				w.matched = true
				ok = true
				break
			}
		}
		if !ok {
			errs = append(errs, fmt.Sprintf("unexpected finding: %s", f))
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				errs = append(errs, fmt.Sprintf("%s:%d: want %q matched no finding", key.base, key.line, w.re))
			}
		}
	}
	if len(errs) > 0 {
		sort.Strings(errs)
		t.Errorf("fixture %s:\n  %s", dir, strings.Join(errs, "\n  "))
	}
}

func TestMapOrderFixture(t *testing.T) {
	checkFixture(t, filepath.Join("testdata", "src", "maporder"), MapOrder())
}

func TestFloatEqFixture(t *testing.T) {
	checkFixture(t, filepath.Join("testdata", "src", "floateq"), FloatEq())
}

func TestLockDisciplineFixture(t *testing.T) {
	checkFixture(t, filepath.Join("testdata", "src", "lockdiscipline"), LockDiscipline())
}

func TestRegistryCheckFixture(t *testing.T) {
	// Paths resolve against the fixture package's own directory.
	checkFixture(t, filepath.Join("testdata", "src", "registrycheck"), RegistryCheck("golden.json", "validator.txt"))
}

func TestDetFlowFixture(t *testing.T) {
	checkFixture(t, filepath.Join("testdata", "src", "detflow"), DetFlow())
}

func TestLockOrderFixture(t *testing.T) {
	checkFixture(t, filepath.Join("testdata", "src", "lockorder"), LockOrder())
}

func TestUnitFlowFixture(t *testing.T) {
	checkFixture(t, filepath.Join("testdata", "src", "unitflow"), UnitFlow())
}

func TestAllocFlowFixture(t *testing.T) {
	checkFixture(t, filepath.Join("testdata", "src", "allocflow"), AllocFlow())
}

// TestHotDirectiveHygiene checks that malformed or misplaced //vdce:hot
// directives are allocflow findings (stated directly: the finding lands on
// the directive's own comment line, where a want clause cannot live).
func TestHotDirectiveHygiene(t *testing.T) {
	findings := runFixture(t, filepath.Join("testdata", "src", "allocflowhot"), AllocFlow())
	expect := []string{
		"bad allocation budget",
		"unknown token",
		"must sit in the doc comment",
	}
	var unmatched []string
	for _, f := range findings {
		if f.Rule != "allocflow" {
			t.Errorf("unexpected rule %q in finding %s", f.Rule, f)
		}
		ok := false
		for i, pat := range expect {
			if pat != "" && strings.Contains(f.Msg, pat) {
				expect[i] = ""
				ok = true
				break
			}
		}
		if !ok {
			unmatched = append(unmatched, f.String())
		}
	}
	for _, pat := range expect {
		if pat != "" {
			t.Errorf("no hot-directive finding containing %q; got %v", pat, findings)
		}
	}
	if len(unmatched) > 0 {
		t.Errorf("unexpected hot-directive findings:\n  %s", strings.Join(unmatched, "\n  "))
	}
}

// TestSuppressionSpanFixture pins the span rule: a directive above a
// multi-line node waives findings on every line of the node, and an
// identical unwaived expression still reports on all of its lines.
func TestSuppressionSpanFixture(t *testing.T) {
	checkFixture(t, filepath.Join("testdata", "src", "suppressspan"), FloatEq())
}

// TestSuppressionHygiene checks that malformed directives are findings in
// their own right, even when no analyzer is selected.
func TestSuppressionHygiene(t *testing.T) {
	findings := runFixture(t, filepath.Join("testdata", "src", "suppression"))
	expect := []string{
		"needs a rule name and a reason",
		"needs a reason",
		"names unknown rule",
	}
	var unmatched []string
	for _, f := range findings {
		if f.Rule != suppressionRule {
			t.Errorf("unexpected rule %q in finding %s", f.Rule, f)
		}
		ok := false
		for i, pat := range expect {
			if pat != "" && strings.Contains(f.Msg, pat) {
				expect[i] = ""
				ok = true
				break
			}
		}
		if !ok {
			unmatched = append(unmatched, f.String())
		}
	}
	for _, pat := range expect {
		if pat != "" {
			t.Errorf("no suppression finding containing %q; got %v", pat, findings)
		}
	}
	if len(unmatched) > 0 {
		t.Errorf("unexpected suppression findings:\n  %s", strings.Join(unmatched, "\n  "))
	}
}
