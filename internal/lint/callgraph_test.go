package lint

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// findFunc returns the FuncInfo whose qualified name ends with suffix,
// failing the test on zero or several matches.
func findFunc(t *testing.T, prog *Program, suffix string) *FuncInfo {
	t.Helper()
	var got *FuncInfo
	for _, fi := range prog.Funcs() {
		if strings.HasSuffix(FuncKey(fi.Obj), suffix) {
			if got != nil {
				t.Fatalf("several functions match %q: %s and %s", suffix, FuncKey(got.Obj), FuncKey(fi.Obj))
			}
			got = fi
		}
	}
	if got == nil {
		t.Fatalf("no function matches %q", suffix)
	}
	return got
}

// siteSummary renders one call site compactly for golden comparison.
func siteSummary(s *CallSite) string {
	switch {
	case s.Unresolved:
		return "unresolved"
	case s.Interface:
		return "iface{" + strings.Join(s.CalleeKeys(), ", ") + "}"
	default:
		return strings.Join(s.CalleeKeys(), ", ")
	}
}

// TestCallGraphShapes pins ResolveCall's behaviour on every call shape the
// fixture exercises: static, concrete-method, CHA interface dispatch,
// dynamic values, and the non-sites (conversions, builtins, IIFE heads).
func TestCallGraphShapes(t *testing.T) {
	pkg := loadFixture(t, filepath.Join("testdata", "src", "callgraph"))
	prog := BuildProgram([]*Package{pkg})

	drive := findFunc(t, prog, "callgraph.drive")
	var got []string
	for _, s := range drive.Calls {
		got = append(got, siteSummary(s))
	}
	want := []string{
		"fixture/callgraph.helper",
		"iface{(*fixture/callgraph.Slow).Run, (fixture/callgraph.Fast).Run}",
		"unresolved",
		"unresolved",
		"fixture/callgraph.narrow",
		"(fixture/callgraph.Fast).Run",
		"fixture/callgraph.helper", // inside the IIFE, attributed to drive
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("drive call sites:\n got %q\nwant %q", got, want)
	}

	// An interface nobody implements resolves to an EMPTY callee set — a
	// resolution, not an Unresolved: analyzers may trust the emptiness.
	none := findFunc(t, prog, "callgraph.none")
	if len(none.Calls) != 1 {
		t.Fatalf("none: want 1 call site, got %d", len(none.Calls))
	}
	s := none.Calls[0]
	if !s.Interface || s.Unresolved || len(s.Callees) != 0 {
		t.Errorf("none call site: want empty interface resolution, got %s (iface=%v unresolved=%v)",
			siteSummary(s), s.Interface, s.Unresolved)
	}

	// narrow's body holds only a conversion: no call sites at all.
	if narrow := findFunc(t, prog, "callgraph.narrow"); len(narrow.Calls) != 0 {
		t.Errorf("narrow: conversion produced call sites: %v", narrow.Calls)
	}
}

// interfaceSite returns fn's unique interface-dispatched call site on the
// named method.
func interfaceSite(t *testing.T, fi *FuncInfo, method string) *CallSite {
	t.Helper()
	var got *CallSite
	for _, s := range fi.Calls {
		if !s.Interface {
			continue
		}
		sel, ok := ast.Unparen(s.Call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != method {
			continue
		}
		if got != nil {
			t.Fatalf("%s: several interface calls on %s", FuncKey(fi.Obj), method)
		}
		got = s
	}
	if got == nil {
		t.Fatalf("%s: no interface call on %s", FuncKey(fi.Obj), method)
	}
	return got
}

// TestCallGraphGolden resolves the repo's own interface-heavy dispatch
// points — the Policy registry, the HostSelector multicast, the HostCoster
// extension — against the production packages and pins the callee sets.
// A new Policy or selector implementation must show up here.
func TestCallGraphGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks production packages")
	}
	pkgs, err := NewLoader("../..").Load("./internal/scheduler", "./internal/site")
	if err != nil {
		t.Fatalf("load production packages: %v", err)
	}
	prog := BuildProgram(pkgs)

	cases := []struct {
		fn, method string
		want       []string
	}{
		// The name→Policy registry dispatch: every scheduling heuristic in
		// the module.
		{"boundPolicy).Schedule", "Schedule", []string{
			"(repro/internal/scheduler.baselinePolicy).Schedule",
			"(repro/internal/scheduler.cpopPolicy).Schedule",
			"(repro/internal/scheduler.heftPolicy).Schedule",
			"(repro/internal/scheduler.sitePolicy).Schedule",
		}},
		// The Site Scheduler's multicast: the in-process selector and the
		// RPC stub.
		{"SiteScheduler).collectSelections", "SelectHosts", []string{
			"(*repro/internal/scheduler.LocalSelector).SelectHosts",
			"(*repro/internal/site.RemoteSelector).SelectHosts",
		}},
		// The HEFT/CPOP per-host cost extension: local sites only (RPC
		// remotes degrade to the single best offer).
		{"scheduler.gatherCostMatrix", "HostCosts", []string{
			"(*repro/internal/scheduler.LocalSelector).HostCosts",
		}},
	}
	for _, c := range cases {
		site := interfaceSite(t, findFunc(t, prog, c.fn), c.method)
		if got := site.CalleeKeys(); !reflect.DeepEqual(got, c.want) {
			t.Errorf("%s calling %s:\n got %q\nwant %q", c.fn, c.method, got, c.want)
		}
	}
}

// TestDetFlowSummaries pins the value-flow summaries the detflow fixpoint
// computes over the detflow fixture: source taint crossing function
// boundaries, parameter labels reaching results and sinks, and the
// //vdce:ignore certification stripping source taint from a producer.
func TestDetFlowSummaries(t *testing.T) {
	pkg := loadFixture(t, filepath.Join("testdata", "src", "detflow"))
	prog := BuildProgram([]*Package{pkg})
	pass := &ProgramPass{Analyzer: DetFlow(), Prog: prog, findings: &[]Finding{}}
	d := &detflow{pass: pass, sums: map[*types.Func]*flowSummary{}}
	d.collectWaivers()
	for round := 0; round < 32; round++ {
		changed := false
		for _, fi := range prog.Funcs() {
			if d.analyze(fi) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	sumOf := func(suffix string) *flowSummary {
		t.Helper()
		s := d.sums[findFunc(t, prog, suffix).Obj]
		if s == nil {
			t.Fatalf("no summary for %q", suffix)
		}
		return s
	}

	// A helper that launders the wall clock exports the source taint in its
	// result contract.
	if s := sumOf("detflow.nowSeconds"); s.result.sources()&taintNondet == 0 {
		t.Errorf("nowSeconds: result sources = %b, want nondet bit", s.result.sources())
	}

	// The certified producer sheds its map-order taint but keeps the plain
	// parameter flow (param 0 = the map) to its result.
	if s := sumOf("detflow.keyedFlatten"); s.result.sources() != 0 || !s.result.hasParam(0) {
		t.Errorf("keyedFlatten: result = %b, want no sources and param 0", s.result)
	}

	// A function storing params into a schedule output records the sink
	// obligation for its callers: param 0 is the ranged map, param 1 the
	// table receiver-argument.
	if s := sumOf("detflow.badMapOrder"); !s.sink.hasParam(0) || !s.sink.hasParam(1) {
		t.Errorf("badMapOrder: sink = %b, want params 0 and 1", s.sink)
	}

	// Seed-threaded rand is clean of sources, but the seed parameter still
	// reaches the output: the determinism obligation moves to the callers.
	if s := sumOf("detflow.goodSeeded"); s.result.sources() != 0 || !s.sink.hasParam(0) {
		t.Errorf("goodSeeded: result=%b sink=%b, want no sources and sink param 0", s.result, s.sink)
	}
}
