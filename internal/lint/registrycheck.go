package lint

import (
	"encoding/json"
	"go/ast"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
)

// Default evaluation-coverage artifacts, relative to the module root.
const (
	defaultGoldenPath    = "internal/experiments/testdata/ranking_golden.json"
	defaultValidatorPath = "internal/scheduler/validate_test.go"
)

// RegistryCheck returns the registrycheck analyzer.
//
// Invariant: every policy handed to scheduler.Register appears in the
// RANKING golden grid and is exercised by the validator property test. Both
// enumerate scheduler.Policies() dynamically, so at run time a new policy
// joins automatically — but the committed golden file pins the grid, and a
// policy registered without re-blessing it is a silent coverage hole: no
// SLR row, no validator certification, no regression net. The analyzer
// statically resolves each Register call's policy name (constant Name()
// methods and name-field passthroughs) and cross-checks the artifacts.
//
// goldenPath and validatorPath override the artifact locations (fixture
// tests use this); empty strings select the repo defaults.
func RegistryCheck(goldenPath, validatorPath string) *Analyzer {
	if goldenPath == "" {
		goldenPath = defaultGoldenPath
	}
	if validatorPath == "" {
		validatorPath = defaultValidatorPath
	}
	a := &Analyzer{
		Name: "registrycheck",
		Doc:  "every Register'd policy appears in the RANKING golden grid and the validator property test",
	}
	a.Run = func(pass *Pass) {
		calls := registerCalls(pass)
		if len(calls) == 0 {
			return
		}
		golden, goldenErr := loadGoldenPolicies(filepath.Join(pass.Pkg.RootDir, goldenPath))
		validator, validatorErr := os.ReadFile(filepath.Join(pass.Pkg.RootDir, validatorPath))
		dynamicValidator := validatorErr == nil && dynamicPoliciesRE.Match(validator)
		for _, call := range calls {
			name, ok := resolvePolicyName(pass, call)
			if !ok {
				continue // already reported
			}
			if goldenErr != nil {
				pass.Reportf(call.Pos(), "policy %q: cannot read RANKING golden %s: %v", name, goldenPath, goldenErr)
			} else if !golden[name] {
				pass.Reportf(call.Pos(),
					"policy %q is registered but missing from the RANKING golden grid (%s); re-bless the golden so the policy is ranked and regression-pinned",
					name, goldenPath)
			}
			if validatorErr != nil {
				pass.Reportf(call.Pos(), "policy %q: cannot read validator property test %s: %v", name, validatorPath, validatorErr)
			} else if !dynamicValidator && !regexp.MustCompile(`"`+regexp.QuoteMeta(name)+`"`).Match(validator) {
				pass.Reportf(call.Pos(),
					"policy %q is registered but the validator property test (%s) neither enumerates Policies() nor names it",
					name, validatorPath)
			}
		}
	}
	return a
}

// dynamicPoliciesRE detects the property test enumerating the registry
// dynamically, which covers every policy by construction.
var dynamicPoliciesRE = regexp.MustCompile(`\bPolicies\(\)`)

// registerCalls finds non-test calls to this package's top-level Register
// function (method calls, e.g. tasklib's (*Registry).Register, don't count).
func registerCalls(pass *Pass) []*ast.CallExpr {
	var calls []*ast.CallExpr
	for _, sf := range pass.Pkg.Files {
		if sf.Test {
			continue // test-local stub registrations are not evaluation coverage
		}
		ast.Inspect(sf.AST, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "Register" {
				return true
			}
			fn, ok := pass.Pkg.Info.Uses[id].(*types.Func)
			if !ok || fn.Pkg() != pass.Pkg.Types {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true
			}
			calls = append(calls, call)
			return true
		})
	}
	return calls
}

// resolvePolicyName statically evaluates the registered policy's Name().
// Supported shapes (everything the repo uses, kept deliberately narrow so
// registrations stay analyzable):
//
//	Register(heftPolicy{})                  + func (heftPolicy) Name() string { return "heft" }
//	Register(sitePolicy{name: "faithful"})  + func (p sitePolicy) Name() string { return p.name }
func resolvePolicyName(pass *Pass, call *ast.CallExpr) (string, bool) {
	arg := call.Args[0]
	if u, ok := arg.(*ast.UnaryExpr); ok {
		arg = u.X
	}
	lit, ok := arg.(*ast.CompositeLit)
	if !ok {
		pass.Reportf(call.Pos(), "cannot statically resolve the registered policy's name: pass a composite literal of a type with a constant Name()")
		return "", false
	}
	named, ok := pass.TypeOf(lit).(*types.Named)
	if !ok {
		pass.Reportf(call.Pos(), "cannot statically resolve the registered policy's type")
		return "", false
	}
	ret := nameMethodReturn(pass, named.Obj().Name())
	if ret == nil {
		pass.Reportf(call.Pos(), "cannot find a single-return Name() method on %s", named.Obj().Name())
		return "", false
	}
	switch r := ret.(type) {
	case *ast.BasicLit:
		if name, err := strconv.Unquote(r.Value); err == nil {
			return name, true
		}
	case *ast.SelectorExpr:
		field := r.Sel.Name
		for _, elt := range lit.Elts {
			kv, ok := elt.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			if key, ok := kv.Key.(*ast.Ident); ok && key.Name == field {
				if bl, ok := kv.Value.(*ast.BasicLit); ok {
					if name, err := strconv.Unquote(bl.Value); err == nil {
						return name, true
					}
				}
			}
		}
		pass.Reportf(call.Pos(), "Name() returns the %q field but the literal does not set it to a string constant", field)
		return "", false
	}
	pass.Reportf(call.Pos(), "Name() method body is not statically resolvable (want `return \"lit\"` or `return recv.field`)")
	return "", false
}

// nameMethodReturn finds `func (recv T) Name() string { return <expr> }`
// for the named type and returns the expression.
func nameMethodReturn(pass *Pass, typeName string) ast.Expr {
	for _, sf := range pass.Pkg.Files {
		for _, decl := range sf.AST.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "Name" || fd.Recv == nil || len(fd.Recv.List) != 1 {
				continue
			}
			recv := fd.Recv.List[0].Type
			if s, ok := recv.(*ast.StarExpr); ok {
				recv = s.X
			}
			id, ok := recv.(*ast.Ident)
			if !ok || id.Name != typeName {
				continue
			}
			if fd.Body == nil || len(fd.Body.List) != 1 {
				return nil
			}
			ret, ok := fd.Body.List[0].(*ast.ReturnStmt)
			if !ok || len(ret.Results) != 1 {
				return nil
			}
			return ret.Results[0]
		}
	}
	return nil
}

func loadGoldenPolicies(path string) (map[string]bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc struct {
		Policies []string `json:"policies"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, err
	}
	out := make(map[string]bool, len(doc.Policies))
	for _, p := range doc.Policies {
		out[p] = true
	}
	return out, nil
}
