package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// This file is the performance-contract foundation shared by allocflow and
// the escapes cross-check harness: parsing of //vdce:hot annotations and the
// interprocedural hot-cone walk over the PR-7 call graph.
//
// A hot annotation lives in a function's doc comment:
//
//	//vdce:hot
//	//vdce:hot allocs=N
//
// and declares the function a hot root: the function and everything
// reachable from it through the call graph form the root's hot cone, inside
// which allocflow polices allocation and dense-index discipline. The
// optional allocs=N budget is the function's dynamic allocation budget per
// op — checked at run time by testing.AllocsPerRun assertions next to the
// micro-benchmarks; the static tier records it in inventories and messages.
//
// Cone growth is pruned by certification: a //vdce:ignore allocflow span
// covering a call site keeps the walk from descending through that call, so
// one reviewed waiver at an amortized boundary (a per-graph setup gather, a
// cached index build) clears the entire callee subtree instead of demanding
// a waiver on every allocation inside it.

const hotDirective = "//vdce:hot"

// HotRoot is one //vdce:hot-annotated function.
type HotRoot struct {
	Fn        *types.Func
	Label     string // short diagnostic label, e.g. "scheduler.Simulate"
	Budget    int    // allocs=N budget; meaningful only when HasBudget
	HasBudget bool
	Pos       token.Pos
}

// hotNote is a parse-time diagnostic about a malformed or misplaced
// directive, reported by allocflow.
type hotNote struct {
	pos token.Pos
	msg string
}

// funcLabel is the short human label used in hot-cone messages:
// "scheduler.Simulate", "scheduler.timeline.earliest".
func funcLabel(f *types.Func) string {
	name := f.Name()
	if recv := recvTypeName(f); recv != "" {
		name = recv + "." + name
	}
	if f.Pkg() != nil {
		path := f.Pkg().Path()
		if i := strings.LastIndexByte(path, '/'); i >= 0 {
			path = path[i+1:]
		}
		return path + "." + name
	}
	return name
}

// parseHotRoots scans every analyzed function's doc comment for //vdce:hot
// directives. It returns the roots in FuncKey order plus diagnostics for
// malformed budgets and directives not attached to a function declaration.
func parseHotRoots(prog *Program) ([]HotRoot, []hotNote) {
	var roots []HotRoot
	var notes []hotNote
	consumed := map[*ast.Comment]bool{}
	for _, fi := range prog.Funcs() {
		if fi.Decl.Doc == nil {
			continue
		}
		for _, c := range fi.Decl.Doc.List {
			if !strings.HasPrefix(c.Text, hotDirective) {
				continue
			}
			rest := strings.TrimPrefix(c.Text, hotDirective)
			if rest != "" && !strings.HasPrefix(rest, " ") {
				continue // e.g. //vdce:hotfix — not ours
			}
			consumed[c] = true
			root := HotRoot{Fn: fi.Obj, Label: funcLabel(fi.Obj), Pos: c.Pos()}
			ok := true
			for _, field := range strings.Fields(rest) {
				val, found := strings.CutPrefix(field, "allocs=")
				if !found {
					notes = append(notes, hotNote{c.Pos(), fmt.Sprintf("//vdce:hot: unknown token %q (want a bare directive or allocs=N)", field)})
					ok = false
					continue
				}
				n, err := strconv.Atoi(val)
				if err != nil || n < 0 {
					notes = append(notes, hotNote{c.Pos(), fmt.Sprintf("//vdce:hot: bad allocation budget %q (want a non-negative integer)", val)})
					ok = false
					continue
				}
				root.Budget, root.HasBudget = n, true
			}
			if ok {
				roots = append(roots, root)
			}
		}
	}
	// A //vdce:hot anywhere else (a stray line, a type, a test file left
	// out of the program) silently annotates nothing: that is a finding.
	for _, pkg := range prog.Pkgs {
		for _, sf := range pkg.Files {
			if sf.Test {
				continue
			}
			for _, cg := range sf.AST.Comments {
				for _, c := range cg.List {
					if strings.HasPrefix(c.Text, hotDirective) && !consumed[c] {
						rest := strings.TrimPrefix(c.Text, hotDirective)
						if rest == "" || strings.HasPrefix(rest, " ") {
							notes = append(notes, hotNote{c.Pos(), "//vdce:hot must sit in the doc comment of a function declaration"})
						}
					}
				}
			}
		}
	}
	fset := prog.fset()
	sort.SliceStable(roots, func(i, j int) bool { return funcLess(fset, roots[i].Fn, roots[j].Fn) })
	sort.SliceStable(notes, func(i, j int) bool { return fset.Position(notes[i].pos).Offset < fset.Position(notes[j].pos).Offset })
	return roots, notes
}

// HotRoots returns the load's //vdce:hot-annotated functions in
// deterministic order (inventories, the escapes harness, tests).
func HotRoots(prog *Program) []HotRoot {
	roots, _ := parseHotRoots(prog)
	return roots
}

// coneEntry is one function's membership in the hot cone.
type coneEntry struct {
	fi *FuncInfo
	// looped marks a per-iteration context: some call path from a root
	// reaches this function through a call site nested in a loop, so even
	// its straight-line allocations execute once per hot iteration.
	looped bool
	// roots are the labels of the hot roots whose cones include the
	// function, sorted.
	roots []string
}

// hotCone is the reachable cone of every hot root, with per-function loop
// context.
type hotCone struct {
	prog    *Program
	roots   []HotRoot
	notes   []hotNote
	members map[*types.Func]*coneEntry
	order   []*coneEntry // deterministic FuncKey order
	// prune holds the //vdce:ignore allocflow spans: call sites inside one
	// are certified amortized and the walk does not descend through them.
	prune map[string][][2]int
}

// buildHotCone parses the annotations and walks the call graph to a
// fixpoint over the (reached, looped) lattice.
func buildHotCone(prog *Program) *hotCone {
	hc := &hotCone{
		prog:    prog,
		members: map[*types.Func]*coneEntry{},
		prune:   ignoreSpans(prog, "allocflow"),
	}
	hc.roots, hc.notes = parseHotRoots(prog)

	type workItem struct {
		fn     *types.Func
		looped bool
		root   string
	}
	var queue []workItem
	for _, r := range hc.roots {
		queue = append(queue, workItem{fn: r.Fn, root: r.Label})
	}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		fi := prog.FuncInfoOf(it.fn)
		if fi == nil {
			continue // out of load (stdlib) — nothing to analyze
		}
		e := hc.members[it.fn.Origin()]
		grew := false
		if e == nil {
			e = &coneEntry{fi: fi, looped: it.looped}
			hc.members[it.fn.Origin()] = e
			grew = true
		} else if it.looped && !e.looped {
			e.looped = true
			grew = true
		}
		if !hasString(e.roots, it.root) {
			e.roots = append(e.roots, it.root)
			sort.Strings(e.roots)
			grew = true
		}
		if !grew {
			continue
		}
		// Descend: every resolvable call site expands the cone, with the
		// looped flag joined from this function's context and the site's
		// syntactic loop nesting. Certified (pruned) sites stop the walk.
		hc.eachCall(fi, func(site *CallSite, inLoop bool) {
			if hc.pruned(site.Call.Pos()) {
				return
			}
			for _, callee := range site.Callees {
				queue = append(queue, workItem{fn: callee.Origin(), looped: e.looped || inLoop, root: it.root})
			}
		})
	}
	// Funcs() is already in FuncKey order; filtering it keeps the cone
	// deterministic without sorting map keys.
	for _, fi := range prog.Funcs() {
		if e := hc.members[fi.Obj.Origin()]; e != nil && e.fi == fi {
			hc.order = append(hc.order, e)
		}
	}
	return hc
}

// eachCall visits every resolved call site in fi's body with its syntactic
// loop nesting (whether a for/range statement sits between the declaration
// and the call).
func (hc *hotCone) eachCall(fi *FuncInfo, fn func(site *CallSite, inLoop bool)) {
	inspectWithStack(fi.Decl, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		site := hc.prog.ResolveCall(fi.Pkg, call)
		if site == nil || len(site.Callees) == 0 {
			return true
		}
		fn(site, stackInLoop(stack))
		return true
	})
}

// pruned reports whether pos falls in a //vdce:ignore allocflow span.
func (hc *hotCone) pruned(pos token.Pos) bool {
	return coveredBySpans(hc.prune, hc.prog.fset(), pos)
}

// entry returns fn's cone membership, nil when outside every hot cone.
func (hc *hotCone) entry(fn *types.Func) *coneEntry {
	if fn == nil {
		return nil
	}
	return hc.members[fn.Origin()]
}

// stackInLoop reports whether a for or range statement encloses the node
// in a per-iteration position within its declaration (the walk never
// crosses declarations, so any qualifying loop on the stack means
// per-iteration execution — including loops outside a nested function
// literal, which the enclosing hot loop re-creates or re-invokes each
// pass). A range expression and a for-init run once: nodes inside them do
// not inherit that loop's iteration count.
func stackInLoop(stack []ast.Node) bool {
	for i, n := range stack {
		var child ast.Node
		if i+1 < len(stack) {
			child = stack[i+1]
		}
		switch loop := n.(type) {
		case *ast.ForStmt:
			if child == nil || child != loop.Init {
				return true
			}
		case *ast.RangeStmt:
			if child == nil || (child != loop.X && child != loop.Key && child != loop.Value) {
				return true
			}
		}
	}
	return false
}

// ignoreSpans indexes every //vdce:ignore span naming rule across the load,
// per file, as (firstLine, lastLine) line intervals. File-wide directives
// cover the whole file.
func ignoreSpans(prog *Program, rule string) map[string][][2]int {
	out := map[string][][2]int{}
	fset := prog.fset()
	for _, pkg := range prog.Pkgs {
		for _, sf := range pkg.Files {
			for _, s := range parseSuppressions(fset, sf.AST) {
				if !hasString(s.rules, rule) {
					continue
				}
				span := [2]int{s.line, s.endLine}
				if s.fileWide {
					span = [2]int{1, int(^uint(0) >> 1)}
				}
				out[s.file] = append(out[s.file], span)
			}
		}
	}
	return out
}

// coveredBySpans reports whether pos falls inside one of the indexed spans.
func coveredBySpans(spans map[string][][2]int, fset *token.FileSet, pos token.Pos) bool {
	p := fset.Position(pos)
	for _, span := range spans[p.Filename] {
		if p.Line >= span[0] && p.Line <= span[1] {
			return true
		}
	}
	return false
}

// hasString reports whether s contains v (tiny slices; no allocation).
func hasString(s []string, v string) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
