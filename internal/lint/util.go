package lint

import (
	"go/ast"
	"go/types"
)

// inspectWithStack walks the AST like ast.Inspect but hands the callback
// the stack of ancestor nodes (outermost first, not including n).
func inspectWithStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		recurse := fn(n, stack)
		if recurse {
			stack = append(stack, n)
		}
		return recurse
	})
}

// enclosingFuncBody returns the body of the nearest enclosing function
// declaration or literal on the stack.
func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch f := stack[i].(type) {
		case *ast.FuncDecl:
			return f.Body
		case *ast.FuncLit:
			return f.Body
		}
	}
	return nil
}

// outermostFuncBody returns the body of the outermost enclosing function
// declaration (crossing function literals), for flow-insensitive "does this
// function take the lock" checks.
func outermostFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := 0; i < len(stack); i++ {
		if f, ok := stack[i].(*ast.FuncDecl); ok {
			return f.Body
		}
	}
	// A func literal at top level (package var initializer).
	for i := 0; i < len(stack); i++ {
		if f, ok := stack[i].(*ast.FuncLit); ok {
			return f.Body
		}
	}
	return nil
}

// exprString renders an expression compactly for messages and for matching
// lock-receiver paths against field-access paths.
func exprString(e ast.Expr) string {
	return types.ExprString(e)
}

// namedStruct unwraps a type to its underlying struct, following pointers
// and aliases; ok is false for non-struct types.
func namedStruct(t types.Type) (*types.Struct, bool) {
	if t == nil {
		return nil, false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	s, ok := t.Underlying().(*types.Struct)
	return s, ok
}

// syncType reports whether t is the named sync type (e.g. "Mutex").
func syncType(t types.Type, names ...string) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	for _, name := range names {
		if obj.Name() == name {
			return true
		}
	}
	return false
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex.
func isMutexType(t types.Type) bool {
	return syncType(t, "Mutex", "RWMutex")
}

// lockHolder reports whether a value of type t embeds lock state that must
// not be copied: any sync primitive with by-value identity, directly or
// through nested structs and arrays. seen guards against recursive types.
func lockHolder(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	if syncType(t, "Mutex", "RWMutex", "Once", "WaitGroup", "Cond", "Map", "Pool") {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if lockHolder(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return lockHolder(u.Elem(), seen)
	}
	return false
}
