package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder returns the maporder analyzer.
//
// Invariant: non-test code never lets Go's randomized map iteration order
// escape. Every deterministic site merge, golden file, and bit-identical
// equivalence claim in this repo depends on it. A `for … range` over a map
// is accepted only when the analyzer can prove the order cannot be
// observed:
//
//   - the loop only collects keys/values into slices that the same
//     function later passes to sort.* or slices.Sort* (the canonical
//     collect-then-sort idiom), or
//   - the loop body is order-insensitive: map stores keyed by the range
//     key, constant map stores (`seen[k] = true`), integer/boolean
//     accumulation, delete, continue, nested ifs of the same shape, and
//     returns that do not leak the iteration variables.
//
// Anything else — calls, float accumulation (float addition does not
// commute bitwise), appends that are never sorted, early exits capturing a
// key — is flagged and needs a sort, a restructure, or a reasoned
// //vdce:ignore maporder suppression.
func MapOrder() *Analyzer {
	a := &Analyzer{
		Name: "maporder",
		Doc:  "range over a map in non-test code must not let iteration order escape",
	}
	a.Run = func(pass *Pass) {
		for _, sf := range pass.Pkg.Files {
			if sf.Test {
				continue
			}
			inspectWithStack(sf.AST, func(n ast.Node, stack []ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				t := pass.TypeOf(rs.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					return true
				}
				if mapRangeIsSafe(pass, rs, stack) {
					return true
				}
				pass.Reportf(rs.For,
					"iteration over map %s has order-dependent effects; sort the keys, restructure, or add //vdce:ignore maporder <reason>",
					exprString(rs.X))
				return true
			})
		}
	}
	return a
}

func mapRangeIsSafe(pass *Pass, rs *ast.RangeStmt, stack []ast.Node) bool {
	if collectThenSort(pass, rs, stack) {
		return true
	}
	key := identObj(pass, rs.Key)
	val := identObj(pass, rs.Value)
	for _, stmt := range rs.Body.List {
		if !orderInsensitiveStmt(pass, stmt, key, val) {
			return false
		}
	}
	return true
}

// collectThenSort accepts loops whose body only appends to slices (possibly
// behind `if` filters, dedup sets, and nested ranges over slice values),
// each of which the enclosing function later hands to a sort call.
// Destinations are matched by access path (exprString), so
// `w.Apps = append(w.Apps, …)` pairs with `sort.Slice(w.Apps, …)`.
func collectThenSort(pass *Pass, rs *ast.RangeStmt, stack []ast.Node) bool {
	var collected []string
	var walk func(stmts []ast.Stmt) bool
	walk = func(stmts []ast.Stmt) bool {
		for _, stmt := range stmts {
			switch s := stmt.(type) {
			case *ast.AssignStmt:
				// Side-effect-free local bindings (`p := name[4:]`) ride
				// along: they can only leak through a later statement the
				// walk already polices.
				if s.Tok == token.DEFINE && allNewLocals(pass, s.Lhs) && allSideEffectFree(s.Rhs) {
					continue
				}
				if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
					return false
				}
				// Dedup-set bookkeeping (`seen[h] = true`) rides along.
				if constMapStore(pass, s.Lhs[0], s.Rhs[0]) {
					continue
				}
				call, ok := s.Rhs[0].(*ast.CallExpr)
				if !ok || !isBuiltin(pass, call.Fun, "append") || len(call.Args) == 0 {
					return false
				}
				dst := exprString(s.Lhs[0])
				if exprString(call.Args[0]) != dst {
					return false
				}
				collected = append(collected, dst)
			case *ast.IfStmt:
				if s.Else != nil {
					return false
				}
				if s.Init != nil {
					// Only a fresh define (`if _, ok := seen[h]; !ok`) —
					// a plain assignment in the init would leak state.
					in, ok := s.Init.(*ast.AssignStmt)
					if !ok || in.Tok != token.DEFINE {
						return false
					}
				}
				if !walk(s.Body.List) {
					return false
				}
			case *ast.RangeStmt:
				if !walk(s.Body.List) {
					return false
				}
			default:
				return false
			}
		}
		return true
	}
	if !walk(rs.Body.List) || len(collected) == 0 {
		return false
	}
	body := enclosingFuncBody(stack)
	if body == nil {
		return false
	}
	for _, dst := range collected {
		if !sortedInFunc(pass, body, dst) {
			return false
		}
	}
	return true
}

// sortedInFunc reports whether the function body contains a sort.* or
// slices.Sort* call with the access path among its arguments.
func sortedInFunc(pass *Pass, body *ast.BlockStmt, path string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok || (pkg.Name != "sort" && pkg.Name != "slices") {
			return true
		}
		if o, isPkg := pass.Pkg.Info.Uses[pkg].(*types.PkgName); !isPkg || o == nil {
			return true
		}
		for _, arg := range call.Args {
			root := arg
			if u, isAddr := arg.(*ast.UnaryExpr); isAddr && u.Op == token.AND {
				root = u.X
			}
			if exprString(root) == path {
				found = true
			}
		}
		return !found
	})
	return found
}

// orderInsensitiveStmt reports whether executing stmt for the map's entries
// in any order produces identical state. key/val are the iteration
// variables; anything that leaks them out of the loop is order-sensitive.
func orderInsensitiveStmt(pass *Pass, stmt ast.Stmt, key, val types.Object) bool {
	switch s := stmt.(type) {
	case *ast.AssignStmt:
		if len(s.Lhs) != len(s.Rhs) && len(s.Rhs) != 1 {
			return false
		}
		switch s.Tok {
		case token.ASSIGN, token.DEFINE:
			// `cp := make(…)` / `x := T{…}`: a fresh per-iteration value
			// carries no cross-iteration state.
			if s.Tok == token.DEFINE && allFreshValues(pass, s.Rhs) {
				return true
			}
			for i, lhs := range s.Lhs {
				if len(s.Rhs) == len(s.Lhs) && constMapStore(pass, lhs, s.Rhs[i]) {
					continue
				}
				if !(keyedMapStore(pass, lhs, key) || isBlank(lhs) || boolIdent(pass, lhs)) {
					return false
				}
			}
			return true
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN,
			token.XOR_ASSIGN, token.AND_NOT_ASSIGN:
			// Integer accumulation commutes; float accumulation does not
			// (bitwise). A store keyed by the range key touches each slot
			// exactly once, so any element type is fine there.
			lhs := s.Lhs[0]
			return keyedMapStore(pass, lhs, key) || isIntegerExpr(pass, lhs)
		}
		return false
	case *ast.IncDecStmt:
		return keyedMapStore(pass, s.X, key) || isIntegerExpr(pass, s.X)
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		return ok && isBuiltin(pass, call.Fun, "delete")
	case *ast.IfStmt:
		if maxMinFold(pass, s, key, val) {
			return true
		}
		if s.Else != nil && !orderInsensitiveStmt(pass, s.Else, key, val) {
			return false
		}
		return orderInsensitiveStmt(pass, s.Body, key, val)
	case *ast.RangeStmt:
		t := pass.TypeOf(s.X)
		if t == nil {
			return false
		}
		switch t.Underlying().(type) {
		case *types.Map:
			// A nested range over another map: order-insensitive iff its
			// own body is, with the inner iteration variables in play.
			innerKey := identObj(pass, s.Key)
			innerVal := identObj(pass, s.Value)
			for _, sub := range s.Body.List {
				if !orderInsensitiveStmt(pass, sub, innerKey, innerVal) {
					return false
				}
			}
			return true
		case *types.Slice, *types.Array, *types.Basic:
			// A nested range over an ordered collection runs in a fixed
			// order per outer entry; what matters is still the outer
			// iteration variables.
			for _, sub := range s.Body.List {
				if !orderInsensitiveStmt(pass, sub, key, val) {
					return false
				}
			}
			return true
		}
		return false
	case *ast.BlockStmt:
		for _, sub := range s.List {
			if !orderInsensitiveStmt(pass, sub, key, val) {
				return false
			}
		}
		return true
	case *ast.BranchStmt:
		return s.Tok == token.CONTINUE
	case *ast.ReturnStmt:
		// `return true` from an existence scan is fine; `return k` leaks
		// whichever entry the runtime visited first.
		for _, res := range s.Results {
			if usesObject(pass, res, key) || usesObject(pass, res, val) {
				return false
			}
		}
		return true
	}
	return false
}

// maxMinFold recognizes `if v > best { best = v }` (any of > < >= <=):
// max/min of a set does not depend on visit order, even for floats.
func maxMinFold(pass *Pass, s *ast.IfStmt, key, val types.Object) bool {
	if s.Init != nil || s.Else != nil || len(s.Body.List) != 1 {
		return false
	}
	cond, ok := s.Cond.(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch cond.Op {
	case token.GTR, token.LSS, token.GEQ, token.LEQ:
	default:
		return false
	}
	as, ok := s.Body.List[0].(*ast.AssignStmt)
	if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	lhs, rhs := exprString(as.Lhs[0]), exprString(as.Rhs[0])
	x, y := exprString(cond.X), exprString(cond.Y)
	// The compared pair must be exactly the accumulated pair, and the
	// accumulator must live outside the loop variables.
	if !(x == rhs && y == lhs || x == lhs && y == rhs) {
		return false
	}
	return !usesObject(pass, as.Lhs[0], key) && !usesObject(pass, as.Lhs[0], val)
}

// allNewLocals reports whether every expression is an identifier freshly
// defined by the enclosing := statement.
func allNewLocals(pass *Pass, exprs []ast.Expr) bool {
	for _, e := range exprs {
		id, ok := e.(*ast.Ident)
		if !ok {
			return false
		}
		if id.Name != "_" && pass.Pkg.Info.Defs[id] == nil {
			return false
		}
	}
	return true
}

func allSideEffectFree(exprs []ast.Expr) bool {
	for _, e := range exprs {
		if !sideEffectFree(e) {
			return false
		}
	}
	return true
}

// allFreshValues reports whether every expression creates a new value
// (make/new call, composite literal, or basic literal).
func allFreshValues(pass *Pass, exprs []ast.Expr) bool {
	for _, e := range exprs {
		switch v := e.(type) {
		case *ast.CompositeLit, *ast.BasicLit:
		case *ast.UnaryExpr:
			if _, lit := v.X.(*ast.CompositeLit); !lit {
				return false
			}
		case *ast.CallExpr:
			if !isBuiltin(pass, v.Fun, "make") && !isBuiltin(pass, v.Fun, "new") {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// constMapStore reports whether lhs = rhs is a map store of a compile-time
// constant (`seen[a.Site] = true`): every visit writes the identical value,
// so colliding keys and visit order are both irrelevant.
func constMapStore(pass *Pass, lhs, rhs ast.Expr) bool {
	ix, ok := lhs.(*ast.IndexExpr)
	if !ok {
		return false
	}
	t := pass.TypeOf(ix.X)
	if t == nil {
		return false
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return false
	}
	return isConstant(pass, rhs)
}

// keyedMapStore reports whether e is m[k] where m is a map and the index
// mentions the range key (each entry then writes its own slot exactly once).
func keyedMapStore(pass *Pass, e ast.Expr, key types.Object) bool {
	ix, ok := e.(*ast.IndexExpr)
	if !ok {
		return false
	}
	t := pass.TypeOf(ix.X)
	if t == nil {
		return false
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return false
	}
	return key != nil && usesObject(pass, ix.Index, key)
}

func boolIdent(pass *Pass, e ast.Expr) bool {
	if identObj(pass, e) == nil {
		return false
	}
	t := pass.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsBoolean != 0
}

func isIntegerExpr(pass *Pass, e ast.Expr) bool {
	t := pass.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

func isBuiltin(pass *Pass, fun ast.Expr, name string) bool {
	id, ok := fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, isBuiltin := pass.Pkg.Info.Uses[id].(*types.Builtin)
	return isBuiltin
}

func usesObject(pass *Pass, e ast.Expr, obj types.Object) bool {
	if obj == nil || e == nil {
		return false
	}
	used := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.Pkg.Info.Uses[id] == obj {
			used = true
		}
		return !used
	})
	return used
}

func identObj(pass *Pass, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := pass.Pkg.Info.Defs[id]; obj != nil {
		return obj
	}
	return pass.Pkg.Info.Uses[id]
}
