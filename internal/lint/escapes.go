package lint

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// The compiler cross-check harness behind `vdce-vet -escapes`: allocflow's
// verdicts are a static model of what the gc backend will do, and a model
// drifts. This file anchors it to ground truth by running the compiler's
// own escape analysis (`go build -gcflags='-m -m'`) over every package that
// contains hot-cone functions, attributing each "escapes to heap" / "moved
// to heap" diagnostic to the cone function whose body contains it, and
// diff-reporting the two views:
//
//   - agreement: both the analyzer and the compiler see an allocation there;
//   - analyzer-only: allocflow flags a line the compiler proves stack-safe
//     (or polices for contract reasons the compiler does not model, which
//     the diff excludes up front — the dense-index rules);
//   - compiler-only: the compiler heap-allocates where allocflow is silent
//     (typically straight-line setup in a root, which the contract allows).
//
// The attributed inventory — message texts only, no line numbers, so
// unrelated edits above a site do not churn it — is pinned by
// testdata/escapes_golden.json: any new allocation appearing in a
// scheduler/afg/netsim hot path is a reviewable golden diff.

// EscapeFunc is one hot-cone function's compiler-reported allocation sites:
// normalized messages, sorted, duplicates kept (two identical makes are two
// allocations).
type EscapeFunc struct {
	Func  string   `json:"func"`
	Sites []string `json:"sites"`
}

// EscapePackage groups the hot-cone functions of one package.
type EscapePackage struct {
	ImportPath string       `json:"importPath"`
	Funcs      []EscapeFunc `json:"funcs"`
}

// EscapeInventory is the golden-pinned view: the compiler's allocation
// sites inside hot cones, keyed by package and function.
type EscapeInventory struct {
	// GoVersion is the minor toolchain version ("go1.24") the inventory was
	// recorded with: escape analysis changes across minor releases, so the
	// golden comparison is gated on it (the CI smoke step still runs the
	// harness on any toolchain).
	GoVersion string          `json:"goVersion"`
	Packages  []EscapePackage `json:"packages"`
}

// EscapeDiff is one line-level disagreement (or agreement) between
// allocflow and the compiler.
type EscapeDiff struct {
	File string // module-relative
	Line int
	Msg  string
}

func (d EscapeDiff) String() string { return fmt.Sprintf("%s:%d: %s", d.File, d.Line, d.Msg) }

// EscapeReport is everything `vdce-vet -escapes` prints.
type EscapeReport struct {
	Inventory *EscapeInventory
	Roots     []HotRoot
	ConeFuncs int
	// TotalSites is the hot-cone allocation-site count (the CI job summary
	// number).
	TotalSites   int
	Agreement    []EscapeDiff
	AnalyzerOnly []EscapeDiff
	CompilerOnly []EscapeDiff
}

// goMinorVersion reduces runtime.Version() to its minor component
// ("go1.24.0" → "go1.24"); devel toolchains pass through verbatim.
func goMinorVersion() string {
	v := runtime.Version()
	parts := strings.SplitN(v, ".", 3)
	if len(parts) < 2 || !strings.HasPrefix(v, "go") {
		return v
	}
	return parts[0] + "." + parts[1]
}

// escapeDiagRE matches one compiler diagnostic line.
var escapeDiagRE = regexp.MustCompile(`^([^ \t].*\.go):(\d+):(\d+): (.*)$`)

// escapeSite is one deduplicated compiler diagnostic.
type escapeSite struct {
	file string // absolute
	line int
	col  int
	msg  string
}

// isEscapeMsg keeps only the allocation verdicts, dropping inlining chatter,
// "does not escape" proofs, and the indented flow-explanation lines -m -m
// adds (those fail escapeDiagRE's no-leading-space anchor anyway).
func isEscapeMsg(msg string) bool {
	return strings.HasSuffix(msg, "escapes to heap") || strings.HasPrefix(msg, "moved to heap:")
}

// Escapes loads the patterns, builds the hot cone, runs the compiler's
// escape analysis over every package containing cone functions, and returns
// the attributed inventory plus the analyzer/compiler diff.
func Escapes(dir string, patterns ...string) (*EscapeReport, error) {
	pkgs, err := Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	return EscapesFor(pkgs)
}

// EscapesFor is Escapes over an already-loaded package set.
func EscapesFor(pkgs []*Package) (*EscapeReport, error) {
	prog := BuildProgram(pkgs)
	hc := buildHotCone(prog)
	rep := &EscapeReport{
		Inventory: &EscapeInventory{GoVersion: goMinorVersion()},
		Roots:     hc.roots,
		ConeFuncs: len(hc.order),
	}
	fset := prog.fset()

	// The build targets: every package holding at least one cone function.
	// Generic cone functions (the boxing-free minheap) emit their
	// diagnostics from the instantiating package's build, so sites are
	// deduplicated globally and attributed by cone membership, not by which
	// build printed them.
	byPkg := map[*Package][]*coneEntry{}
	var targets []*Package
	for _, e := range hc.order {
		if byPkg[e.fi.Pkg] == nil {
			targets = append(targets, e.fi.Pkg)
		}
		byPkg[e.fi.Pkg] = append(byPkg[e.fi.Pkg], e)
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	seen := map[escapeSite]bool{}
	var sites []escapeSite
	for _, pkg := range targets {
		diags, err := compileForEscapes(pkg.RootDir, pkg.ImportPath)
		if err != nil {
			return nil, err
		}
		for _, s := range diags {
			if !seen[s] {
				seen[s] = true
				sites = append(sites, s)
			}
		}
	}

	// Attribute each site to the cone function whose declaration spans it.
	type funcSites struct {
		entry *coneEntry
		msgs  []string
	}
	attributed := map[*coneEntry]*funcSites{}
	var coneHits []escapeSite
	for _, s := range sites {
		for _, e := range hc.order {
			declFile := fset.Position(e.fi.Decl.Pos()).Filename
			if declFile != s.file {
				continue
			}
			start := fset.Position(e.fi.Decl.Pos()).Line
			end := fset.Position(e.fi.Decl.End()).Line
			if s.line < start || s.line > end {
				continue
			}
			fs := attributed[e]
			if fs == nil {
				fs = &funcSites{entry: e}
				attributed[e] = fs
			}
			fs.msgs = append(fs.msgs, s.msg)
			coneHits = append(coneHits, s)
			break
		}
	}

	// Inventory: packages in import-path order, functions in cone (FuncKey)
	// order, site messages sorted.
	for _, pkg := range targets {
		ep := EscapePackage{ImportPath: pkg.ImportPath}
		for _, e := range byPkg[pkg] {
			fs := attributed[e]
			if fs == nil {
				continue
			}
			sort.Strings(fs.msgs)
			ep.Funcs = append(ep.Funcs, EscapeFunc{Func: funcLabel(e.fi.Obj), Sites: fs.msgs})
			rep.TotalSites += len(fs.msgs)
		}
		if len(ep.Funcs) > 0 {
			rep.Inventory.Packages = append(rep.Inventory.Packages, ep)
		}
	}

	rep.diff(prog, hc, coneHits)
	return rep, nil
}

// diff classifies allocflow findings against the compiler sites per
// (file, line). Contract-only categories the compiler does not model — the
// dense-index map rules and the hot-directive hygiene notes — are excluded.
func (rep *EscapeReport) diff(prog *Program, hc *hotCone, coneHits []escapeSite) {
	a := AllocFlow()
	var raw []Finding
	a.RunProgram(&ProgramPass{Analyzer: a, Prog: prog, findings: &raw})

	rel := func(abs string) string {
		root := ""
		if len(prog.Pkgs) > 0 {
			root = prog.Pkgs[0].RootDir
		}
		if r, err := filepath.Rel(root, abs); err == nil && !strings.HasPrefix(r, "..") {
			return r
		}
		return abs
	}

	compiler := map[string][]escapeSite{}
	for _, s := range coneHits {
		key := s.file + ":" + strconv.Itoa(s.line)
		compiler[key] = append(compiler[key], s)
	}
	analyzerSeen := map[string]bool{}
	for _, f := range raw {
		if strings.Contains(f.Msg, "prefer a dense index") || strings.Contains(f.Msg, "//vdce:hot") {
			continue
		}
		key := f.Pos.Filename + ":" + strconv.Itoa(f.Pos.Line)
		analyzerSeen[key] = true
		d := EscapeDiff{File: rel(f.Pos.Filename), Line: f.Pos.Line, Msg: f.Msg}
		if len(compiler[key]) > 0 {
			rep.Agreement = append(rep.Agreement, d)
		} else {
			rep.AnalyzerOnly = append(rep.AnalyzerOnly, d)
		}
	}
	for _, s := range coneHits {
		key := s.file + ":" + strconv.Itoa(s.line)
		if !analyzerSeen[key] {
			rep.CompilerOnly = append(rep.CompilerOnly, EscapeDiff{File: rel(s.file), Line: s.line, Msg: s.msg})
		}
	}
	for _, list := range [][]EscapeDiff{rep.Agreement, rep.AnalyzerOnly, rep.CompilerOnly} {
		sort.Slice(list, func(i, j int) bool {
			if list[i].File != list[j].File {
				return list[i].File < list[j].File
			}
			if list[i].Line != list[j].Line {
				return list[i].Line < list[j].Line
			}
			return list[i].Msg < list[j].Msg
		})
	}
}

// compileForEscapes builds one package with the escape-analysis diagnostics
// enabled and parses the allocation verdicts. Diagnostics replay from the
// build cache, so repeated runs do not recompile.
func compileForEscapes(rootDir, importPath string) ([]escapeSite, error) {
	cmd := exec.Command("go", "build", "-gcflags=-m -m", "--", importPath)
	cmd.Dir = rootDir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go build -gcflags=-m %s: %w\n%s", importPath, err, stderr.String())
	}
	var out []escapeSite
	for _, line := range strings.Split(stderr.String(), "\n") {
		m := escapeDiagRE.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		msg := strings.TrimSuffix(m[4], ":")
		if !isEscapeMsg(msg) {
			continue
		}
		file := m[1]
		if !filepath.IsAbs(file) {
			file = filepath.Join(rootDir, file)
		}
		ln, _ := strconv.Atoi(m[2])
		col, _ := strconv.Atoi(m[3])
		out = append(out, escapeSite{file: file, line: ln, col: col, msg: msg})
	}
	return out, nil
}

// WriteTo renders the human-readable report (the -escapes output).
func (rep *EscapeReport) WriteTo(w *strings.Builder) {
	fmt.Fprintf(w, "hot roots (%d):\n", len(rep.Roots))
	for _, r := range rep.Roots {
		budget := ""
		if r.HasBudget {
			budget = fmt.Sprintf(" allocs=%d", r.Budget)
		}
		fmt.Fprintf(w, "  %s%s\n", r.Label, budget)
	}
	fmt.Fprintf(w, "hot cone: %d function(s) in %d package(s)\n", rep.ConeFuncs, len(rep.Inventory.Packages))
	for _, p := range rep.Inventory.Packages {
		fmt.Fprintf(w, "%s\n", p.ImportPath)
		for _, f := range p.Funcs {
			fmt.Fprintf(w, "  %s\n", f.Func)
			for _, s := range f.Sites {
				fmt.Fprintf(w, "    %s\n", s)
			}
		}
	}
	fmt.Fprintf(w, "agreement: %d  analyzer-only: %d  compiler-only: %d\n",
		len(rep.Agreement), len(rep.AnalyzerOnly), len(rep.CompilerOnly))
	for _, d := range rep.AnalyzerOnly {
		fmt.Fprintf(w, "  analyzer-only: %s\n", d)
	}
	for _, d := range rep.CompilerOnly {
		fmt.Fprintf(w, "  compiler-only: %s\n", d)
	}
	fmt.Fprintf(w, "hot-cone allocation sites (compiler): %d\n", rep.TotalSites)
}
