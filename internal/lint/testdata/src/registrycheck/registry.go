// Fixture for the registrycheck analyzer. golden.json in this directory
// blesses only "good"; validator.txt names "good" explicitly and does not
// enumerate Policies().
package registrycheck

type policy interface{ Name() string }

type goodPolicy struct{}

func (goodPolicy) Name() string { return "good" }

type namedPolicy struct{ name string }

func (p namedPolicy) Name() string { return p.name }

var registered []policy

// Register mimics the scheduler registry entry point.
func Register(p policy) { registered = append(registered, p) }

func mk() policy { return goodPolicy{} }

func init() {
	Register(goodPolicy{})
	Register(namedPolicy{name: "missing"}) // want "missing from the RANKING golden grid" "neither enumerates"
	Register(mk())                         // want "cannot statically resolve"
	//vdce:ignore registrycheck fixture: blessed by an external harness, not this golden
	Register(namedPolicy{name: "waived"})
}
