// Fixture for the detflow analyzer: nondeterminism sources reaching
// schedule outputs — directly, through helpers, and through map iteration —
// plus the sanctioned shapes (seeded rand, sort-before-store, wall-clock
// measurement into non-output types) as true negatives.
package detflow

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
	"unsafe"
)

// AllocationTable mirrors the scheduler's output type by name: stores into
// it are schedule outputs.
type AllocationTable struct {
	Start float64
	Order []string
}

// Assignment is likewise a schedule-output type.
type Assignment struct {
	Predicted float64
}

// DebugReply is an RPC reply (the *Reply suffix marks it an output).
type DebugReply struct {
	Addr     string
	Makespan float64
}

// record is NOT an output type: measurements may land here freely.
type record struct {
	At float64
}

// Direct wall-clock leak into a schedule output.
func badClock(t *AllocationTable) {
	t.Start = float64(time.Now().UnixNano()) // want "value derived from wall clock"
}

// nowSeconds launders the clock through a helper; the summary carries the
// taint back to the caller.
func nowSeconds() float64 {
	return time.Since(time.Time{}).Seconds()
}

func badHelper(a *Assignment) {
	a.Predicted = nowSeconds() // want "value derived from wall clock"
}

// Global math/rand is unseeded process-wide state.
func badRand(r *DebugReply) {
	r.Makespan = rand.Float64() // want "value derived from wall clock, global rand"
}

// A seed-threaded *rand.Rand is deterministic: no finding here, and the
// obligation ("seed must itself be deterministic") moves to the callers.
func goodSeeded(seed int64, t *AllocationTable) {
	rng := rand.New(rand.NewSource(seed))
	t.Start = rng.Float64()
}

// Map iteration order leaking into the schedule's task order.
func badMapOrder(m map[string]float64, t *AllocationTable) {
	for k := range m {
		t.Order = append(t.Order, k) // want "value derived from map iteration order"
	}
}

// Sorting kills the order taint.
func goodSorted(m map[string]float64, t *AllocationTable) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	t.Order = keys
}

// Pointer identity rendered into an RPC reply.
func badPointer(r *DebugReply, x *Assignment) {
	r.Addr = fmt.Sprintf("%p", x) // want "pointer identity"
}

// Pointer identity through a uintptr conversion.
func badUintptr(t *AllocationTable, x *Assignment) {
	t.Start = float64(uintptr(unsafe.Pointer(x))) // want "pointer identity"
}

// Wall-clock measurement into a non-output type is the legitimate use.
func goodMeasurement(rec *record) {
	rec.At = float64(time.Now().UnixNano())
}

// keyedFlatten writes each key to a slot of its own: order-independent by
// construction but unprovable statically, so the producer certifies the
// loop once. The waiver strips the taint from the summary itself.
func keyedFlatten(m map[int]float64) []float64 {
	out := make([]float64, 8)
	//vdce:ignore detflow injective keyed writes: each key owns one slot, so visit order is unobservable
	for k, v := range m {
		out[k%8] = v
	}
	return out
}

// goodCertified consumes the certified producer: no finding anywhere in the
// downstream cone, however far from the waiver the sink store sits.
func goodCertified(m map[int]float64, t *AllocationTable) {
	t.Start = keyedFlatten(m)[0]
}
