// Fixture for the lockdiscipline analyzer.
package lockdiscipline

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

func sinkCounter(*counter) {}

// Locked access participates in the protocol: fine.
func (c *counter) Inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// Unlocked read of a guarded field.
func (c *counter) Peek() int {
	return c.n // want "guarded by c.mu, but this function never locks it"
}

// Freshly allocated value: no other goroutine can hold it yet.
func newCounter() *counter {
	c := &counter{}
	c.n = 1
	return c
}

// A reviewed suppression waives the finding.
func peekSuppressed(c *counter) int {
	//vdce:ignore lockdiscipline fixture: every caller holds c.mu
	return c.n
}

// By-value receiver copies the mutex.
func (c counter) badRecv() {} // want "by-value receiver of a lock-holding type"

// By-value parameter and result copies (the result is vet's blind spot).
func badSig(c counter) counter { // want "parameter passes a lock-holding type by value" "result returns a lock-holding type by value"
	return c
}

// Range-value and assignment copies.
func badCopies(cs []counter) {
	for _, c := range cs { // want "range value copies a lock-holding element"
		sinkCounter(&c)
	}
	var x counter
	y := x // want "assignment copies lock-holding value x"
	sinkCounter(&y)
}

// An annotation naming a mutex the struct does not have is a finding.
type broken struct {
	data int // guarded by missing // want "no sync.Mutex/RWMutex field named"
}
