// Fixture for the lockorder analyzer: a two-class cycle closed through a
// call, a transitive self-acquisition, and the clean shapes — a fixed
// global order and the early-return branch that releases via defer.
package lockorder

import "sync"

type A struct {
	mu sync.Mutex
	n  int // guarded by mu
}

type B struct {
	mu sync.Mutex
	n  int // guarded by mu
}

// lockB acquires B on its own: fine in isolation.
func lockB(b *B) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.n++
}

// aThenB acquires B (through lockB) while holding A.
func aThenB(a *A, b *B) {
	a.mu.Lock()
	defer a.mu.Unlock()
	lockB(b) // want "lock-order cycle"
	a.n++
}

// bThenA takes the locks in the reverse order, closing the A↔B cycle.
func bThenA(a *A, b *B) {
	b.mu.Lock()
	defer b.mu.Unlock()
	a.mu.Lock()
	a.n++
	a.mu.Unlock()
}

type C struct {
	mu sync.Mutex
	n  int // guarded by mu
}

func (c *C) bump() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// badNested re-enters the class it already holds: sync.Mutex is not
// reentrant, and two instances of one class can be locked in either order
// from concurrent goroutines.
func badNested(c *C) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.bump() // want "lock-order cycle"
}

type D struct {
	mu sync.Mutex
	n  int // guarded by mu
}

// ordered nests two classes in one fixed order only: an edge, not a cycle.
func ordered(a *A, d *D) {
	a.mu.Lock()
	d.mu.Lock()
	d.n++
	d.mu.Unlock()
	a.mu.Unlock()
}

type E struct {
	mu  sync.RWMutex
	val int // guarded by mu
}

// get's early-return branch takes and releases the lock via defer; the
// fallthrough acquisition must not be mistaken for a nested one.
func (e *E) get(fast bool) int {
	if fast {
		e.mu.RLock()
		defer e.mu.RUnlock()
		return e.val
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.val * 2
}
