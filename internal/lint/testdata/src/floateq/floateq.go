// Fixture for the floateq analyzer.
package floateq

// Computed-vs-computed exact comparison is the core violation.
func bad(a, b float64) bool {
	return a == b // want "exact float64 comparison"
}

func badNeq(a, b float64) bool {
	return a+1 != b*2 // want "exact float64 comparison"
}

// Switching on a float compares every case exactly.
func badSwitch(x float64) int {
	switch x { // want "switch on float64"
	case 1.5:
		return 1
	}
	return 0
}

// Constant-operand comparisons are sentinel/assertion checks, not
// tolerance bugs.
func goodConst(x float64) bool {
	return x == 0
}

// The portable NaN test.
func goodNaN(x float64) bool {
	return x != x
}

// Tie-break prelude of a total order: the same pair is also ordered.
func goodTieBreak(a, b float64, i, j int) bool {
	if a != b {
		return a < b
	}
	return i < j
}

// A reviewed suppression waives the finding.
func suppressed(a, b float64) bool {
	//vdce:ignore floateq fixture: bit identity is the property under test
	return a == b
}
