// An oracle test file: on the allowlist, exact comparison IS the
// invariant under test, so nothing here is flagged.
package floateq

func oracleCompare(got, want float64) bool {
	return got == want
}
