// Fixture for the call-graph engine: every call shape ResolveCall
// distinguishes — static function, concrete method, interface dispatch
// (CHA over in-load implementers), dynamic func values, conversions, and
// immediately-invoked literals.
package callgraph

// Runner has two in-load implementers, one by value and one by pointer.
type Runner interface{ Run() int }

type Fast struct{}

func (Fast) Run() int { return 1 }

type Slow struct{}

func (*Slow) Run() int { return 2 }

// nobody has no implementer: an interface call on it has an empty callee
// set (and is not Unresolved — the emptiness is the resolution).
type nobody interface{ Nothing() }

func helper() int { return 0 }

type box struct{ f func() int }

// drive exercises each shape in source order; the engine test pins the
// resulting call-site list.
func drive(r Runner, fn func() int, b box) int {
	n := helper() // static
	n += r.Run()  // interface: {Fast.Run, (*Slow).Run}
	n += fn()     // dynamic func value: Unresolved
	n += b.f()    // func-typed field: Unresolved
	n += narrow(3.5)
	f := Fast{}
	n += f.Run()                          // concrete method
	n += func() int { return helper() }() // IIFE: inner call attributed to drive
	return n
}

func narrow(x float64) int { return int(x) } // conversion: not a call site

func none(n nobody) { n.Nothing() }
