// Fixture for suppression spans: a //vdce:ignore above a multi-line
// expression covers the node's whole source span, not just its first line.
package suppressspan

func approx(a, b, c, d float64) bool {
	//vdce:ignore floateq span demo: the whole disjunction is waived
	ok := a == b ||
		c == d
	_ = ok
	ok2 := a == b || // want "exact float64 comparison"
		c == d // want "exact float64 comparison"
	return ok2
}
