// Fixture for suppression hygiene: each malformed directive below is a
// finding of the "suppression" pseudo-rule (expectations live in the test,
// not in want comments — a want comment cannot share a directive's line).
package suppression

func count(m map[string]int) int {
	n := 0
	//vdce:ignore maporder
	for range m {
		n++
	}
	//vdce:ignore bogusrule the rule name does not exist
	for range m {
		n++
	}
	//vdce:ignore
	for range m {
		n++
	}
	return n
}
