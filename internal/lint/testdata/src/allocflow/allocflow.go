// Fixture for the allocflow analyzer: heap-allocation sources inside
// //vdce:hot cones — in the root's own loops, on per-iteration paths in
// callees (including CHA-resolved interface callees), and through every
// flagged category — plus the sanctioned shapes (straight-line setup in a
// root, certified amortized calls, cold functions) as true negatives.
package allocflow

import "fmt"

var sink string

// Host is a dense-indexed host row.
type Host struct {
	free []float64
}

// coster dispatches through an interface: the cone must follow CHA edges.
type coster interface {
	cost(k string) float64
}

// localCoster is the one in-load implementer.
type localCoster struct {
	m map[string]float64
}

func (c localCoster) cost(k string) float64 {
	return c.m[k] // want "map read — prefer a dense index on a per-iteration hot path \(hot: allocflow.Sum\)"
}

// Sum is a hot root: straight-line code is setup, the loop is the contract.
//
//vdce:hot allocs=0
func Sum(hosts []Host, col map[string]int, c coster) float64 {
	defer release() // straight-line defer: open-coded, free
	total := 0.0
	acc := make([]float64, len(hosts)) // setup allocation outside the loop: fine
	for i := range hosts {
		acc[i] = perHost(&hosts[i])
		buf := make([]float64, 4)           // want "heap allocation \(make\) in a hot loop \(hot: allocflow.Sum\)"
		total += float64(col["x"]) + buf[0] // want "map read — prefer a dense index in a hot loop \(hot: allocflow.Sum\)"
		total += c.cost("x")
		msg := fmt.Sprint(i)        // want "variadic call allocates its argument slice in a hot loop" "interface conversion boxes int in a hot loop"
		name := msg + "!"           // want "string concatenation allocates in a hot loop"
		b := []byte(name)           // want "string/\[\]byte conversion copies and allocates in a hot loop"
		iv := interface{}(hosts[i]) // want "interface conversion boxes allocflow.Host in a hot loop"
		//vdce:ignore allocflow gather is certified amortized here: the cone walk must not descend through this call
		total += gather(i)[0]
		sink = name
		_, _ = b, iv
	}
	return total + acc[0]
}

// Walk is a second hot root sharing perHost: findings there must name both
// cones, sorted.
//
//vdce:hot
func Walk(hosts []Host) {
	for i := range hosts {
		_ = perHost(&hosts[i])
	}
}

// perHost is reached only through loops: even its straight-line allocation
// runs once per hot iteration.
func perHost(h *Host) float64 {
	z := make([]float64, 1) // want "heap allocation \(make\) on a per-iteration hot path \(hot: allocflow.Sum, allocflow.Walk\)"
	z[0] = h.free[0]
	return z[0]
}

// Mutate exercises the remaining categories inside a syntactic hot loop.
//
//vdce:hot
func Mutate(hosts []Host, m map[string]int) {
	for i := range hosts {
		s := []float64{1, 2}         // want "slice literal allocates in a hot loop \(hot: allocflow.Mutate\)"
		mm := map[string]int{"a": 1} // want "map literal allocates in a hot loop"
		h := &Host{}                 // want "&composite literal allocates in a hot loop"
		p := new(Host)               // want "heap allocation \(new\) in a hot loop"
		s = append(s, 3)             // want "append may grow its backing array in a hot loop"
		m["k"] = i                   // want "map write — prefer a dense index in a hot loop"
		delete(m, "k")               // want "map write — prefer a dense index in a hot loop"
		for k := range mm {          // want "map iteration — prefer a dense index in a hot loop"
			_ = k
		}
		fn := func() int { return i } // want "closure allocates in a hot loop"
		defer release()               // want "defer heap-allocates its frame in a hot loop"
		_, _, _, _ = s, h, p, fn
	}
}

// gather allocates freely: the certified call site in Sum prunes it out of
// the cone, so nothing here is flagged.
func gather(i int) []float64 {
	out := make([]float64, i+1)
	for j := range out {
		out[j] = float64(j)
	}
	return out
}

func release() {}

// cold is outside every hot cone: allocation is unconstrained.
func cold(n int) []int {
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}

var _ = cold
