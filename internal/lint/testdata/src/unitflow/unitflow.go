// Fixture for the unitflow analyzer: units seeded by directive and by
// prose, the ×/÷ algebra, inference through assignments and calls, and one
// finding per known-known mismatch class.
package unitflow

import "math"

type Path struct {
	Bandwidth float64 // bytes per second
}

type Cost struct {
	//vdce:unit seconds
	Exec float64
	//vdce:unit bytes
	Vol float64
}

// transfer is dimensionally sound: bytes ÷ bytes/s → seconds.
//
//vdce:unit bytes=bytes result=seconds
func transfer(p *Path, bytes float64) float64 {
	return bytes / p.Bandwidth
}

// volume recovers bytes from a rate × duration product.
//
//vdce:unit result=bytes
func volume(p *Path, c *Cost) float64 {
	return p.Bandwidth * c.Exec
}

//vdce:unit d=seconds result=seconds
func wait(d float64) float64 { return d }

// badAdd mixes dimensions across +.
func badAdd(c *Cost) float64 {
	return c.Exec + c.Vol // want "unit mismatch: seconds \+ bytes"
}

// badAssign stores a ratio into a seconds field.
func badAssign(c *Cost) {
	c.Exec = c.Vol / (c.Vol + 1) // want "assigning ratio value to seconds"
}

// badArg passes bytes where the callee declares seconds.
func badArg(c *Cost) float64 {
	return wait(c.Vol) // want "passing bytes value as seconds parameter d of wait"
}

// badMax compares across dimensions.
func badMax(c *Cost) float64 {
	return math.Max(c.Exec, c.Vol) // want "unit mismatch: math.Max\(seconds, bytes\)"
}

// badReturn violates its declared result unit.
//
//vdce:unit ratio
func badReturn(c *Cost) float64 {
	return c.Exec // want "returning seconds value from a function declared to return ratio"
}

// badInferred: rate's unit is derived (bytes ÷ seconds → bytes/s), then
// misused downstream.
func badInferred(c *Cost) {
	rate := c.Vol / c.Exec
	c.Exec = rate // want "assigning bytes/s value to seconds"
}

type Wrong struct {
	//vdce:unit parsecs // want "wants exactly one of"
	X float64
}

// Wire's prose spells the rate out: "bytes/second" must seed bytes/s, not
// bytes (the declared result unit below would mismatch otherwise).
type Wire struct {
	Rate float64 // bytes/second
}

//vdce:unit result=bytes
func carried(w *Wire, c *Cost) float64 {
	return w.Rate * c.Exec
}
