// Fixture for the maporder analyzer: one violation per order-leaking
// shape, plus the accepted idioms as true negatives.
package maporder

import "sort"

func sink(string, int) {}

// Leaked key order: append without a later sort.
func badCollect(m map[string]int) []string {
	var out []string
	for k := range m { // want "iteration over map m has order-dependent effects"
		out = append(out, k)
	}
	return out
}

// Float accumulation does not commute bitwise.
func badFloatSum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m { // want "iteration over map m has order-dependent effects"
		sum += v
	}
	return sum
}

// Calls observe iteration order directly.
func badCall(m map[string]int) {
	for k, v := range m { // want "iteration over map m has order-dependent effects"
		sink(k, v)
	}
}

// Collect-then-sort is the canonical safe idiom.
func goodCollectSort(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Integer accumulation, max folds, and constant set stores all commute.
func goodFolds(m map[string]float64) (int, float64, map[string]bool) {
	n := 0
	best := 0.0
	seen := map[string]bool{}
	for k, v := range m {
		n++
		if v > best {
			best = v
		}
		seen[k] = true
	}
	return n, best, seen
}

// Keyed stores write each slot exactly once.
func goodKeyed(m map[string]int) map[string]int {
	cp := make(map[string]int, len(m))
	for k, v := range m {
		cp[k] = v * 2
	}
	return cp
}

// A reviewed suppression waives the finding.
func suppressed(m map[string]int) {
	//vdce:ignore maporder fixture: the sink is an order-insensitive test double
	for k, v := range m {
		sink(k, v)
	}
}
