// Test files are exempt: t.Fatalf on whichever entry is wrong first is
// fine in a test.
package maporder

func testOnlyLeak(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
