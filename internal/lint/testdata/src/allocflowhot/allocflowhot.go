// Fixture for //vdce:hot directive hygiene: malformed budgets and
// misplaced directives are allocflow findings. Expectations live in
// TestHotDirectiveHygiene rather than want comments, because each finding
// lands on the directive's own comment line.
package allocflowhot

//vdce:hot allocs=banana
func BadBudget() {}

//vdce:hot allocs
func BadToken() {}

// A directive that annotates nothing:
//
//vdce:hot
var X = 1
