package lint

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// updateEscapes regenerates testdata/escapes_golden.json from the live
// compiler:
//
//	go test ./internal/lint -run TestEscapesGolden -update-escapes
var updateEscapes = flag.Bool("update-escapes", false, "rewrite the escapes golden from the current toolchain")

const escapesGolden = "testdata/escapes_golden.json"

// TestEscapesGolden pins the hot-cone allocation-site inventory against the
// compiler's own escape analysis (-gcflags='-m -m'). The golden records the
// toolchain minor version it was generated with: a different toolchain still
// exercises the whole harness (annotations parse, cones build, diagnostics
// parse, sites attribute) but skips the exact diff, because escape-analysis
// output legitimately shifts between compiler releases.
func TestEscapesGolden(t *testing.T) {
	rep, err := Escapes("../..", "./internal/...")
	if err != nil {
		t.Fatalf("Escapes: %v", err)
	}
	inv := rep.Inventory
	if len(rep.Roots) == 0 {
		t.Fatal("no //vdce:hot roots found — annotations missing?")
	}
	if rep.ConeFuncs == 0 {
		t.Fatal("hot cone is empty")
	}
	if len(inv.Packages) == 0 || rep.TotalSites == 0 {
		t.Fatalf("empty inventory: %d packages, %d sites — compiler diagnostics not parsed?", len(inv.Packages), rep.TotalSites)
	}

	if *updateEscapes {
		data, err := json.MarshalIndent(inv, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.FromSlash(escapesGolden), append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d packages, %d sites, %s)", escapesGolden, len(inv.Packages), rep.TotalSites, inv.GoVersion)
		return
	}

	data, err := os.ReadFile(filepath.FromSlash(escapesGolden))
	if err != nil {
		t.Fatalf("missing golden (run with -update-escapes): %v", err)
	}
	var want EscapeInventory
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("corrupt golden: %v", err)
	}
	if want.GoVersion != inv.GoVersion {
		t.Skipf("golden was generated with %s, toolchain is %s: harness validated, exact diff skipped", want.GoVersion, inv.GoVersion)
	}
	got, err := json.MarshalIndent(inv, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	if string(got) != string(data) {
		t.Errorf("hot-cone escape inventory drifted from golden.\nRegenerate with -update-escapes if the change is intended.\ngot:\n%s", got)
	}
}

// TestEscapesDiffShape checks the analyzer-vs-compiler diff classification:
// every diff entry lands in exactly one bucket and agreement sites carry
// both a compiler message and an analyzer finding location.
func TestEscapesDiffShape(t *testing.T) {
	rep, err := Escapes("../..", "./internal/scheduler")
	if err != nil {
		t.Fatalf("Escapes: %v", err)
	}
	seen := map[string]bool{}
	for _, bucket := range [][]EscapeDiff{rep.Agreement, rep.AnalyzerOnly, rep.CompilerOnly} {
		for _, d := range bucket {
			if d.File == "" || d.Line <= 0 || d.Msg == "" {
				t.Errorf("malformed diff entry: %+v", d)
			}
			key := d.String()
			if seen[key] {
				t.Errorf("diff entry %s appears in more than one bucket", key)
			}
			seen[key] = true
		}
	}
}
