package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is the interprocedural tier's foundation: a deterministic,
// whole-load view of every function body with its call sites resolved —
// statically where the callee is a named function or a concrete method, and
// CHA-style (class-hierarchy analysis) where the call goes through an
// interface method, in which case the callee set is every in-load named
// type implementing the interface. Resolution is deliberately restricted to
// the packages under analysis: a schedule can only dispatch to policies
// compiled into this module, so out-of-module implementers would be noise.
//
// Determinism contract: Funcs(), CallSite.Callees, and every index built
// here iterate in FuncKey order (full name, then position), never in map
// order, so analyzer findings and golden callee lists are bit-stable.

// Program is the whole-load view backing interprocedural analyzers.
type Program struct {
	Pkgs []*Package

	funcs map[*types.Func]*FuncInfo
	order []*FuncInfo

	// namedTypes are the in-load, non-test, non-interface named types, in
	// (package, name) order — the CHA implementer universe.
	namedTypes []*types.Named

	implCache map[implKey][]*types.Func
}

type implKey struct {
	iface  *types.Interface
	method string
}

// FuncInfo is one analyzed function body (test-file functions are excluded:
// production analyzers must not see test-only flows or lock orders).
type FuncInfo struct {
	Obj  *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
	// Calls lists every call expression in the body — including bodies of
	// nested function literals, which are attributed to the enclosing
	// declaration — in source order.
	Calls []*CallSite
}

// CallSite is one resolved call expression.
type CallSite struct {
	Call *ast.CallExpr
	// Callees holds the Origin-canonical callee set in FuncKey order: one
	// entry for a static call, every in-load implementer's method for an
	// interface call, empty for an interface nobody in the load implements.
	Callees []*types.Func
	// Interface marks CHA-resolved calls (the callee set is a may-dispatch
	// over-approximation, not a proof of reachability).
	Interface bool
	// Unresolved marks dynamic calls through func values, method values,
	// or fields of func type: the callee set is unknown, and analyzers
	// must treat the call conservatively.
	Unresolved bool
}

// FuncKey is the deterministic sort key for function objects: the
// qualified name ("(repro/internal/scheduler.heftPolicy).Schedule") — with
// the source position as tiebreak for same-name objects in distinct loads.
func FuncKey(f *types.Func) string {
	return f.FullName()
}

func funcLess(fset *token.FileSet, a, b *types.Func) bool {
	ka, kb := FuncKey(a), FuncKey(b)
	if ka != kb {
		return ka < kb
	}
	pa, pb := fset.Position(a.Pos()), fset.Position(b.Pos())
	if pa.Filename != pb.Filename {
		return pa.Filename < pb.Filename
	}
	return pa.Offset < pb.Offset
}

// BuildProgram assembles the whole-load view over the given packages.
func BuildProgram(pkgs []*Package) *Program {
	p := &Program{
		Pkgs:      pkgs,
		funcs:     map[*types.Func]*FuncInfo{},
		implCache: map[implKey][]*types.Func{},
	}
	for _, pkg := range pkgs {
		testFile := map[string]bool{}
		for _, sf := range pkg.Files {
			testFile[sf.Path] = sf.Test
		}
		for _, sf := range pkg.Files {
			if sf.Test {
				continue
			}
			for _, decl := range sf.AST.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fi := &FuncInfo{Obj: obj, Decl: fd, Pkg: pkg}
				p.funcs[obj] = fi
				p.order = append(p.order, fi)
			}
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() { // Scope.Names is sorted
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || types.IsInterface(named) || named.TypeParams().Len() > 0 {
				continue
			}
			if testFile[pkg.Fset.Position(tn.Pos()).Filename] {
				continue // test-only stubs are not production implementers
			}
			p.namedTypes = append(p.namedTypes, named)
		}
	}
	fset := p.fset()
	sort.SliceStable(p.order, func(i, j int) bool {
		return funcLess(fset, p.order[i].Obj, p.order[j].Obj)
	})
	for _, fi := range p.order {
		fi.Calls = p.collectCalls(fi)
	}
	return p
}

func (p *Program) fset() *token.FileSet {
	if len(p.Pkgs) > 0 {
		return p.Pkgs[0].Fset
	}
	return token.NewFileSet()
}

// Funcs returns every analyzed function in deterministic order.
func (p *Program) Funcs() []*FuncInfo { return p.order }

// FuncInfoOf returns the body info for a callee, nil for functions outside
// the load (standard library, test files) or without a body.
func (p *Program) FuncInfoOf(f *types.Func) *FuncInfo {
	if f == nil {
		return nil
	}
	return p.funcs[f.Origin()]
}

func (p *Program) collectCalls(fi *FuncInfo) []*CallSite {
	var out []*CallSite
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if site := p.ResolveCall(fi.Pkg, call); site != nil {
			out = append(out, site)
		}
		return true
	})
	return out
}

// ResolveCall resolves one call expression against the load. It returns nil
// for non-calls (conversions, builtins); otherwise a CallSite whose callee
// set is static, CHA-resolved, or explicitly Unresolved.
func (p *Program) ResolveCall(pkg *Package, call *ast.CallExpr) *CallSite {
	fun := ast.Unparen(call.Fun)
	if tv, ok := pkg.Info.Types[fun]; ok && tv.IsType() {
		return nil // conversion
	}
	switch f := fun.(type) {
	case *ast.Ident:
		switch obj := pkg.Info.Uses[f].(type) {
		case *types.Func:
			return &CallSite{Call: call, Callees: []*types.Func{obj.Origin()}}
		case *types.Builtin:
			return nil
		}
		return &CallSite{Call: call, Unresolved: true}
	case *ast.SelectorExpr:
		if sel := pkg.Info.Selections[f]; sel != nil {
			if sel.Kind() != types.MethodVal {
				// Method expression or func-typed field used as the callee.
				return &CallSite{Call: call, Unresolved: true}
			}
			m := sel.Obj().(*types.Func).Origin()
			recv := sel.Recv()
			if iface, ok := recv.Underlying().(*types.Interface); ok {
				return &CallSite{
					Call:      call,
					Callees:   p.Implementers(iface, m),
					Interface: true,
				}
			}
			return &CallSite{Call: call, Callees: []*types.Func{m}}
		}
		// Package-qualified call (fmt.Sprintf, time.Now, ...).
		if obj, ok := pkg.Info.Uses[f.Sel].(*types.Func); ok {
			return &CallSite{Call: call, Callees: []*types.Func{obj.Origin()}}
		}
		return &CallSite{Call: call, Unresolved: true}
	}
	// Calling the result of an expression (closure literal, call result...).
	if lit, ok := fun.(*ast.FuncLit); ok {
		_ = lit // immediately-invoked literal: body is walked by the caller anyway
		return nil
	}
	return &CallSite{Call: call, Unresolved: true}
}

// Implementers returns, in deterministic order, the declared method m of
// every in-load named type whose value or pointer implements iface.
func (p *Program) Implementers(iface *types.Interface, m *types.Func) []*types.Func {
	key := implKey{iface: iface, method: m.Id()}
	if got, ok := p.implCache[key]; ok {
		return got
	}
	var out []*types.Func
	for _, named := range p.namedTypes {
		if !types.Implements(named, iface) && !types.Implements(types.NewPointer(named), iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(named), true, m.Pkg(), m.Name())
		if f, ok := obj.(*types.Func); ok {
			out = append(out, f.Origin())
		}
	}
	fset := p.fset()
	sort.SliceStable(out, func(i, j int) bool { return funcLess(fset, out[i], out[j]) })
	// Promoted methods can resolve several implementers to one declaration.
	dedup := out[:0]
	for i, f := range out {
		if i == 0 || f != out[i-1] {
			dedup = append(dedup, f)
		}
	}
	p.implCache[key] = dedup
	return dedup
}

// CalleeKeys renders a call site's callee set as sorted FuncKeys (golden
// tests and messages).
func (s *CallSite) CalleeKeys() []string {
	out := make([]string, len(s.Callees))
	for i, f := range s.Callees {
		out[i] = FuncKey(f)
	}
	return out
}

// stdFunc reports whether f is the named function or method of a standard
// library (or otherwise out-of-load) package, e.g. stdFunc(f, "time", "Now")
// or stdFunc(f, "math/rand", "Intn").
func stdFunc(f *types.Func, pkgPath, name string) bool {
	if f == nil || f.Name() != name {
		return false
	}
	pkg := f.Pkg()
	return pkg != nil && pkg.Path() == pkgPath
}

// recvTypeName returns the bare receiver type name of a method ("" for
// plain functions): "(*scheduler.LoadLedger).Reserve" → "LoadLedger".
func recvTypeName(f *types.Func) string {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// packageOf returns the *Package a function body lives in, nil if outside
// the load.
func (p *Program) packageOf(f *types.Func) *Package {
	if fi := p.FuncInfoOf(f); fi != nil {
		return fi.Pkg
	}
	return nil
}

// moduleTypeName reports the named type's "pkgname.TypeName" label used in
// messages, trimming the import path to its base.
func moduleTypeName(named *types.Named) string {
	obj := named.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	path := obj.Pkg().Path()
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		path = path[i+1:]
	}
	return path + "." + obj.Name()
}
