package lint

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// LockDiscipline returns the lockdiscipline analyzer.
//
// Invariant: mutex-guarded state is only touched with the mutex held. A
// struct field opts in with a `guarded by <mutexField>` marker in its field
// comment (the LoadLedger stripes and the datamgr proxy use it); the
// analyzer then flags every read or write of that field from a function
// that never takes the named mutex on the same access path. The check is
// flow-insensitive by design — it enforces the *protocol* (this function
// participates in locking) rather than simulating execution, which keeps it
// fast and predictable. Accesses to freshly allocated, not-yet-shared
// values (`l := &LoadLedger{}` in a constructor) are exempt.
//
// It also flags lock-state copies beyond what `go vet` copylocks reports:
// by-value receivers, parameters, *results*, range-value copies, and plain
// assignments of any type that transitively contains a sync primitive with
// by-value identity (Mutex, RWMutex, Once, WaitGroup, Cond, Map, Pool).
func LockDiscipline() *Analyzer {
	a := &Analyzer{
		Name: "lockdiscipline",
		Doc:  "`guarded by mu` fields only touched under their mutex; no lock-state copies",
	}
	a.Run = func(pass *Pass) {
		guards := collectGuards(pass)
		for _, sf := range pass.Pkg.Files {
			checkGuardedAccesses(pass, sf, guards)
			checkLockCopies(pass, sf)
		}
	}
	return a
}

var guardedByRE = regexp.MustCompile(`guarded by (\w+)`)

// A guard maps a struct field to the name of the sibling mutex field that
// protects it.
type guard struct {
	mutex string
}

// collectGuards scans struct declarations for `guarded by <mu>` field
// comments and validates that the named mutex field exists.
func collectGuards(pass *Pass) map[types.Object]guard {
	guards := map[types.Object]guard{}
	for _, sf := range pass.Pkg.Files {
		ast.Inspect(sf.AST, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mu := guardAnnotation(field)
				if mu == "" {
					continue
				}
				if !structHasMutexField(pass, st, mu) {
					pass.Reportf(field.Pos(),
						"field marked `guarded by %s` but the struct has no sync.Mutex/RWMutex field named %q", mu, mu)
					continue
				}
				for _, name := range field.Names {
					if obj := pass.Pkg.Info.Defs[name]; obj != nil {
						guards[obj] = guard{mutex: mu}
					}
				}
			}
			return true
		})
	}
	return guards
}

func guardAnnotation(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedByRE.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

func structHasMutexField(pass *Pass, st *ast.StructType, name string) bool {
	for _, field := range st.Fields.List {
		for _, n := range field.Names {
			if n.Name == name {
				return isMutexType(pass.TypeOf(field.Type))
			}
		}
		if len(field.Names) == 0 { // embedded sync.Mutex
			if isMutexType(pass.TypeOf(field.Type)) && strings.HasSuffix(exprString(field.Type), name) {
				return true
			}
		}
	}
	return false
}

var lockOps = map[string]bool{
	"Lock": true, "RLock": true, "TryLock": true, "TryRLock": true,
	"Unlock": true, "RUnlock": true,
}

func checkGuardedAccesses(pass *Pass, sf SourceFile, guards map[types.Object]guard) {
	if len(guards) == 0 {
		return
	}
	inspectWithStack(sf.AST, func(n ast.Node, stack []ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection := pass.Pkg.Info.Selections[sel]
		if selection == nil || selection.Kind() != types.FieldVal {
			return true
		}
		g, guarded := guards[selection.Obj()]
		if !guarded {
			return true
		}
		base := exprString(sel.X)
		body := outermostFuncBody(stack)
		if body == nil {
			return true // package-level initializer: nothing is concurrent yet
		}
		if funcTakesLock(pass, body, base, g.mutex) {
			return true
		}
		if freshlyAllocated(pass, body, sel.X) {
			return true
		}
		pass.Reportf(sel.Sel.Pos(),
			"%s.%s is guarded by %s.%s, but this function never locks it",
			base, sel.Sel.Name, base, g.mutex)
		return true
	})
}

// funcTakesLock reports whether body contains any lock-protocol call
// (<base>.<mu>.Lock/RLock/Unlock/...) on the same access path. Unlock
// counts: a `defer x.mu.Unlock()` marks the function as a participant.
func funcTakesLock(pass *Pass, body *ast.BlockStmt, base, mutex string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		op, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !lockOps[op.Sel.Name] {
			return true
		}
		mu, ok := op.X.(*ast.SelectorExpr)
		if !ok || mu.Sel.Name != mutex {
			return true
		}
		if exprString(mu.X) == base {
			found = true
		}
		return !found
	})
	return found
}

// freshlyAllocated reports whether the access path's root variable is a
// local defined in this function from a new allocation (&T{...}, T{...} or
// new(T)) — a value no other goroutine can hold yet.
func freshlyAllocated(pass *Pass, body *ast.BlockStmt, baseExpr ast.Expr) bool {
	root := rootIdent(baseExpr)
	if root == nil {
		return false
	}
	obj := pass.Pkg.Info.Uses[root]
	if obj == nil {
		return false
	}
	fresh := false
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || fresh {
			return !fresh
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || pass.Pkg.Info.Defs[id] != obj {
				continue
			}
			if i < len(as.Rhs) && isFreshAlloc(pass, as.Rhs[i]) {
				fresh = true
			}
		}
		return !fresh
	})
	return fresh
}

func isFreshAlloc(pass *Pass, e ast.Expr) bool {
	switch v := e.(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		_, lit := v.X.(*ast.CompositeLit)
		return lit
	case *ast.CallExpr:
		return isBuiltin(pass, v.Fun, "new")
	}
	return false
}

func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// checkLockCopies flags by-value traffic in lock-holding types.
func checkLockCopies(pass *Pass, sf SourceFile) {
	holds := func(e ast.Expr) bool {
		t := pass.TypeOf(e)
		if t == nil {
			return false
		}
		if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
			return false
		}
		// The guard map must be per-query: lockHolder uses it to break
		// recursive types, and a map shared across queries would cache the
		// first answer for every type it visited — including "true" ones.
		return lockHolder(t, map[types.Type]bool{})
	}
	ast.Inspect(sf.AST, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncDecl:
			if v.Recv != nil {
				for _, f := range v.Recv.List {
					if holds(f.Type) {
						pass.Reportf(f.Pos(), "method %s has a by-value receiver of a lock-holding type; use a pointer receiver", v.Name.Name)
					}
				}
			}
			checkFuncSig(pass, v.Type, holds)
		case *ast.FuncLit:
			checkFuncSig(pass, v.Type, holds)
		case *ast.RangeStmt:
			if v.Value != nil && !isBlank(v.Value) && holds(v.Value) {
				pass.Reportf(v.Value.Pos(), "range value copies a lock-holding element each iteration; range over indices or pointers")
			}
		case *ast.AssignStmt:
			if len(v.Lhs) != len(v.Rhs) {
				return true
			}
			for i, rhs := range v.Rhs {
				if copiesLockValue(pass, rhs, holds) {
					pass.Reportf(v.Rhs[i].Pos(), "assignment copies lock-holding value %s; take a pointer instead", exprString(rhs))
				}
			}
		}
		return true
	})
}

func checkFuncSig(pass *Pass, ft *ast.FuncType, holds func(ast.Expr) bool) {
	if ft.Params != nil {
		for _, f := range ft.Params.List {
			if holds(f.Type) {
				pass.Reportf(f.Pos(), "parameter passes a lock-holding type by value; use a pointer")
			}
		}
	}
	if ft.Results != nil {
		for _, f := range ft.Results.List {
			if holds(f.Type) {
				pass.Reportf(f.Pos(), "result returns a lock-holding type by value (uncaught by vet copylocks); return a pointer")
			}
		}
	}
}

// copiesLockValue reports whether evaluating rhs yields a *copy* of an
// existing lock-holding value (identifier, field, element, or deref — not a
// fresh composite literal or a call result already flagged at its decl).
func copiesLockValue(pass *Pass, rhs ast.Expr, holds func(ast.Expr) bool) bool {
	switch rhs.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return holds(rhs)
	}
	return false
}
