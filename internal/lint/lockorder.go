package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder returns the lockorder analyzer.
//
// Invariant: the static mutex-acquisition graph is acyclic. Nodes are lock
// CLASSES — a named struct's mutex field ("scheduler.ledgerShard.mu",
// binding every instance of the stripe array to one node) or a package-
// level mutex ("scheduler.registryMu"). An edge A→B is recorded whenever B
// is acquired while A is held: directly, or transitively through any call
// chain (callee lock sets are a fixpoint over the call graph, interface
// calls resolved CHA-style to the in-load implementers). Any cycle —
// including a self-edge, since sync.Mutex is not reentrant and two
// instances of one class can be locked in either order from concurrent
// goroutines — is a potential deadlock and is reported once, at its first
// witness position.
//
// The held-set tracking is deliberately syntactic: statements are walked in
// source order, Lock/RLock push a class, Unlock/RUnlock pop it, and a
// deferred Unlock holds to the end of the function. `go` statements start a
// fresh held set (a spawned goroutine's acquisitions are not ordered after
// the spawner's), while function literals called synchronously (sort.Slice
// comparators and the like) inherit the caller's held set. The existing
// `guarded by <mu>` annotations bind each mutex class to the state it
// protects, which is how the classes got their names in the first place —
// lockdiscipline enforces the binding per access, lockorder orders the
// classes globally.
func LockOrder() *Analyzer {
	a := &Analyzer{
		Name: "lockorder",
		Doc:  "the static mutex-acquisition graph (direct + transitive via calls) must be acyclic",
	}
	a.RunProgram = func(pass *ProgramPass) {
		lo := &lockorder{
			pass:   pass,
			direct: map[*types.Func]map[string]bool{},
			may:    map[*types.Func]map[string]bool{},
			edges:  map[[2]string]*lockEdge{},
		}
		for _, fi := range pass.Prog.Funcs() {
			lo.direct[fi.Obj] = lo.directLocks(fi)
		}
		lo.fixpointMayLock()
		for _, fi := range pass.Prog.Funcs() {
			lo.walkFunc(fi)
		}
		lo.reportCycles()
	}
	return a
}

type lockEdge struct {
	from, to string
	pos      token.Pos
	via      string // "" for a direct acquisition, else the callee chain hint
}

type lockorder struct {
	pass   *ProgramPass
	direct map[*types.Func]map[string]bool
	may    map[*types.Func]map[string]bool
	edges  map[[2]string]*lockEdge
}

// lockAcq describes one Lock/RLock/Unlock/RUnlock call: its mutex class
// and whether it acquires or releases.
type lockAcq struct {
	class   string
	acquire bool
}

// classifyLockCall recognizes a sync lock-protocol call and names its
// mutex class; ok is false for everything else.
func classifyLockCall(pkg *Package, call *ast.CallExpr) (lockAcq, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !lockOps[sel.Sel.Name] {
		return lockAcq{}, false
	}
	obj, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return lockAcq{}, false
	}
	cls, ok := mutexClass(pkg, sel.X)
	if !ok {
		return lockAcq{}, false
	}
	acquire := strings.HasPrefix(sel.Sel.Name, "Lock") || strings.HasPrefix(sel.Sel.Name, "RLock") ||
		strings.HasPrefix(sel.Sel.Name, "Try")
	return lockAcq{class: cls, acquire: acquire}, true
}

// mutexClass names the lock class of a mutex-valued expression:
//
//	l.shards[i].mu  → "scheduler.ledgerShard.mu"   (field of a named struct)
//	registryMu      → "scheduler.registryMu"       (package-level var)
//	m (embedded)    → "datamgr.Manager.Mutex"      (embedded sync.Mutex)
func mutexClass(pkg *Package, e ast.Expr) (string, bool) {
	e = ast.Unparen(e)
	switch v := e.(type) {
	case *ast.SelectorExpr:
		if selection := pkg.Info.Selections[v]; selection != nil && selection.Kind() == types.FieldVal {
			owner := selection.Recv()
			if ptr, ok := owner.(*types.Pointer); ok {
				owner = ptr.Elem()
			}
			if named, ok := owner.(*types.Named); ok {
				return moduleTypeName(named) + "." + v.Sel.Name, true
			}
			return "", false
		}
		// Package-qualified var (pkg.GlobalMu).
		if obj, ok := pkg.Info.Uses[v.Sel].(*types.Var); ok && isMutexType(obj.Type()) {
			return varClass(obj), true
		}
	case *ast.Ident:
		obj, ok := pkg.Info.Uses[v].(*types.Var)
		if !ok || !isMutexType(obj.Type()) {
			return "", false
		}
		if obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
			return varClass(obj), true
		}
		// A local mutex variable cannot be classified (no stable identity
		// across functions); ignore it.
		return "", false
	}
	return "", false
}

func varClass(obj *types.Var) string {
	path := obj.Pkg().Path()
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		path = path[i+1:]
	}
	return path + "." + obj.Name()
}

// lockTarget maps a promoted Lock call (`m.Lock()` on a struct embedding
// sync.Mutex) to the embedded field's class.
func embeddedMutexClass(pkg *Package, call *ast.CallExpr) (lockAcq, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !lockOps[sel.Sel.Name] {
		return lockAcq{}, false
	}
	selection := pkg.Info.Selections[sel]
	if selection == nil || selection.Kind() != types.MethodVal {
		return lockAcq{}, false
	}
	m, ok := selection.Obj().(*types.Func)
	if !ok || m.Pkg() == nil || m.Pkg().Path() != "sync" {
		return lockAcq{}, false
	}
	recv := selection.Recv()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || isMutexType(named) {
		return lockAcq{}, false // direct mutex receiver: classified via sel.X instead
	}
	// Promoted through an embedded field: name the first hop.
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return lockAcq{}, false
	}
	idx := selection.Index()
	if len(idx) < 2 || idx[0] >= st.NumFields() {
		return lockAcq{}, false
	}
	field := st.Field(idx[0])
	acquire := strings.HasPrefix(sel.Sel.Name, "Lock") || strings.HasPrefix(sel.Sel.Name, "RLock") ||
		strings.HasPrefix(sel.Sel.Name, "Try")
	return lockAcq{class: moduleTypeName(named) + "." + field.Name(), acquire: acquire}, true
}

// acqOf classifies call as a lock-protocol operation on a nameable class.
func acqOf(pkg *Package, call *ast.CallExpr) (lockAcq, bool) {
	if acq, ok := classifyLockCall(pkg, call); ok {
		return acq, true
	}
	return embeddedMutexClass(pkg, call)
}

// directLocks collects every class the function may acquire anywhere in its
// body (function literals included: even a goroutine's acquisition makes
// the class reachable from this function for transitive purposes).
func (lo *lockorder) directLocks(fi *FuncInfo) map[string]bool {
	out := map[string]bool{}
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if acq, ok := acqOf(fi.Pkg, call); ok && acq.acquire {
			out[acq.class] = true
		}
		return true
	})
	return out
}

// fixpointMayLock closes the per-function lock sets over the call graph.
func (lo *lockorder) fixpointMayLock() {
	for f, d := range lo.direct {
		m := map[string]bool{}
		for c := range d {
			m[c] = true
		}
		lo.may[f] = m
	}
	for {
		changed := false
		for _, fi := range lo.pass.Prog.Funcs() {
			mine := lo.may[fi.Obj]
			for _, site := range fi.Calls {
				for _, callee := range site.Callees {
					for c := range lo.may[callee.Origin()] {
						if !mine[c] {
							mine[c] = true
							changed = true
						}
					}
				}
			}
		}
		if !changed {
			return
		}
	}
}

func (lo *lockorder) addEdge(from, to string, pos token.Pos, via string) {
	key := [2]string{from, to}
	if _, ok := lo.edges[key]; ok {
		return
	}
	lo.edges[key] = &lockEdge{from: from, to: to, pos: pos, via: via}
}

// walkFunc drives the held-set walk over one function body.
func (lo *lockorder) walkFunc(fi *FuncInfo) {
	held := map[string]int{}
	lo.walkStmts(fi, fi.Decl.Body.List, held)
}

func (lo *lockorder) walkStmts(fi *FuncInfo, stmts []ast.Stmt, held map[string]int) {
	for _, s := range stmts {
		lo.walkStmt(fi, s, held)
	}
}

func (lo *lockorder) walkStmt(fi *FuncInfo, s ast.Stmt, held map[string]int) {
	switch v := s.(type) {
	case nil:
	case *ast.ExprStmt:
		lo.walkExpr(fi, v.X, held)
	case *ast.AssignStmt:
		for _, e := range v.Rhs {
			lo.walkExpr(fi, e, held)
		}
		for _, e := range v.Lhs {
			lo.walkExpr(fi, e, held)
		}
	case *ast.DeferStmt:
		// A deferred Unlock releases at return: the class stays held for
		// the remainder of the walk, which is exactly the conservative
		// reading. A deferred Lock (pathological) or ordinary deferred
		// call is treated as a call made here.
		if acq, ok := acqOf(fi.Pkg, v.Call); ok {
			if acq.acquire {
				lo.acquire(fi, acq.class, v.Call.Pos(), held)
			}
			return
		}
		lo.walkExpr(fi, v.Call, held)
	case *ast.GoStmt:
		// The goroutine's acquisitions are unordered wrt the spawner's
		// held set; its body is walked with a fresh one.
		for _, a := range v.Call.Args {
			lo.walkExpr(fi, a, held)
		}
		if lit, ok := ast.Unparen(v.Call.Fun).(*ast.FuncLit); ok {
			lo.walkStmts(fi, lit.Body.List, map[string]int{})
		}
	case *ast.ReturnStmt:
		for _, e := range v.Results {
			lo.walkExpr(fi, e, held)
		}
	case *ast.IfStmt:
		lo.walkStmt(fi, v.Init, held)
		lo.walkExpr(fi, v.Cond, held)
		lo.walkBranch(fi, v.Body.List, held)
		if eb, ok := v.Else.(*ast.BlockStmt); ok {
			lo.walkBranch(fi, eb.List, held)
		} else if v.Else != nil {
			lo.walkStmt(fi, v.Else, held) // else-if: recurses into its own branches
		}
	case *ast.ForStmt:
		lo.walkStmt(fi, v.Init, held)
		if v.Cond != nil {
			lo.walkExpr(fi, v.Cond, held)
		}
		lo.walkStmts(fi, v.Body.List, held)
		lo.walkStmt(fi, v.Post, held)
	case *ast.RangeStmt:
		lo.walkExpr(fi, v.X, held)
		lo.walkStmts(fi, v.Body.List, held)
	case *ast.BlockStmt:
		lo.walkStmts(fi, v.List, held)
	case *ast.SwitchStmt:
		lo.walkStmt(fi, v.Init, held)
		if v.Tag != nil {
			lo.walkExpr(fi, v.Tag, held)
		}
		for _, c := range v.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					lo.walkExpr(fi, e, held)
				}
				lo.walkBranch(fi, cc.Body, held)
			}
		}
	case *ast.TypeSwitchStmt:
		lo.walkStmt(fi, v.Init, held)
		lo.walkStmt(fi, v.Assign, held)
		for _, c := range v.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				lo.walkBranch(fi, cc.Body, held)
			}
		}
	case *ast.SelectStmt:
		for _, c := range v.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				lo.walkStmt(fi, cc.Comm, held)
				lo.walkBranch(fi, cc.Body, held)
			}
		}
	case *ast.LabeledStmt:
		lo.walkStmt(fi, v.Stmt, held)
	case *ast.SendStmt:
		lo.walkExpr(fi, v.Chan, held)
		lo.walkExpr(fi, v.Value, held)
	case *ast.IncDecStmt:
		lo.walkExpr(fi, v.X, held)
	case *ast.DeclStmt:
		if gd, ok := v.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						lo.walkExpr(fi, e, held)
					}
				}
			}
		}
	}
}

// walkBranch walks a conditional branch with its own copy of the held set.
// A branch that falls through merges its acquisitions back (max per class,
// order-independent); a branch that terminates — ends in return or panic —
// discards them, so the `if special { mu.RLock(); defer mu.RUnlock();
// return ... }` early-exit shape does not fabricate a self-edge with the
// lock taken on the fallthrough path.
func (lo *lockorder) walkBranch(fi *FuncInfo, stmts []ast.Stmt, held map[string]int) {
	branch := make(map[string]int, len(held))
	for _, c := range heldClasses(held) {
		branch[c] = held[c]
	}
	lo.walkStmts(fi, stmts, branch)
	if branchTerminates(stmts) {
		return
	}
	for _, c := range heldClasses(branch) {
		if branch[c] > held[c] {
			held[c] = branch[c]
		}
	}
}

// branchTerminates reports whether a statement list always exits the
// function (return or panic as the last statement).
func branchTerminates(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	switch last := stmts[len(stmts)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// heldClasses returns the classes held at least once, sorted.
func heldClasses(held map[string]int) []string {
	var out []string
	for c, n := range held {
		if n > 0 {
			out = append(out, c)
		}
	}
	sort.Strings(out)
	return out
}

// walkExpr processes calls nested in an expression in evaluation order.
func (lo *lockorder) walkExpr(fi *FuncInfo, e ast.Expr, held map[string]int) {
	if e == nil {
		return
	}
	switch v := e.(type) {
	case *ast.CallExpr:
		for _, a := range v.Args {
			lo.walkExpr(fi, a, held)
			// A function literal passed to a call runs synchronously for
			// every caller in this repo (sort comparators, walk callbacks):
			// its body inherits the held set.
			if lit, ok := ast.Unparen(a).(*ast.FuncLit); ok {
				lo.walkStmts(fi, lit.Body.List, held)
			}
		}
		lo.walkExpr(fi, v.Fun, held)
		lo.callSite(fi, v, held)
	case *ast.SelectorExpr:
		lo.walkExpr(fi, v.X, held)
	case *ast.BinaryExpr:
		lo.walkExpr(fi, v.X, held)
		lo.walkExpr(fi, v.Y, held)
	case *ast.UnaryExpr:
		lo.walkExpr(fi, v.X, held)
	case *ast.ParenExpr:
		lo.walkExpr(fi, v.X, held)
	case *ast.StarExpr:
		lo.walkExpr(fi, v.X, held)
	case *ast.IndexExpr:
		lo.walkExpr(fi, v.X, held)
		lo.walkExpr(fi, v.Index, held)
	case *ast.SliceExpr:
		lo.walkExpr(fi, v.X, held)
	case *ast.TypeAssertExpr:
		lo.walkExpr(fi, v.X, held)
	case *ast.CompositeLit:
		for _, elt := range v.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				lo.walkExpr(fi, kv.Value, held)
				continue
			}
			lo.walkExpr(fi, elt, held)
		}
	}
}

// callSite applies one call's lock effects under the current held set.
func (lo *lockorder) callSite(fi *FuncInfo, call *ast.CallExpr, held map[string]int) {
	if acq, ok := acqOf(fi.Pkg, call); ok {
		if acq.acquire {
			lo.acquire(fi, acq.class, call.Pos(), held)
		} else if held[acq.class] > 0 {
			held[acq.class]--
		}
		return
	}
	if len(held) == 0 {
		return
	}
	site := lo.pass.Prog.ResolveCall(fi.Pkg, call)
	if site == nil {
		return
	}
	for _, callee := range site.Callees {
		inner := lo.may[callee.Origin()]
		if len(inner) == 0 {
			continue
		}
		for _, b := range sortedKeys(inner) {
			for _, a := range heldClasses(held) {
				lo.addEdge(a, b, call.Pos(), FuncKey(callee))
			}
		}
	}
}

func (lo *lockorder) acquire(fi *FuncInfo, class string, pos token.Pos, held map[string]int) {
	for _, a := range heldClasses(held) {
		lo.addEdge(a, class, pos, "")
	}
	held[class]++
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// reportCycles finds strongly connected components of the acquisition
// graph and reports each cycle (SCC of size > 1, or a self-edge) once.
func (lo *lockorder) reportCycles() {
	adj := map[string][]string{}
	nodes := map[string]bool{}
	for key := range lo.edges {
		adj[key[0]] = append(adj[key[0]], key[1])
		nodes[key[0]], nodes[key[1]] = true, true
	}
	order := sortedKeys(nodes)
	for _, k := range order {
		sort.Strings(adj[k])
	}

	// Tarjan SCC, deterministic by visiting nodes and successors in sorted
	// order.
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	var sccs [][]string
	next := 0
	var strong func(v string)
	strong = func(v string) {
		index[v], low[v] = next, next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, seen := index[w]; !seen {
				strong(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sort.Strings(scc)
			sccs = append(sccs, scc)
		}
	}
	for _, v := range order {
		if _, seen := index[v]; !seen {
			strong(v)
		}
	}

	for _, scc := range sccs {
		if len(scc) == 1 {
			if _, self := lo.edges[[2]string{scc[0], scc[0]}]; !self {
				continue
			}
		}
		lo.reportCycle(scc)
	}
}

func (lo *lockorder) reportCycle(scc []string) {
	in := map[string]bool{}
	for _, c := range scc {
		in[c] = true
	}
	var parts []string
	var witness *lockEdge
	for _, from := range scc {
		for _, to := range scc {
			e, ok := lo.edges[[2]string{from, to}]
			if !ok || !in[e.from] || !in[e.to] {
				continue
			}
			loc := lo.pass.Prog.fset().Position(e.pos)
			hop := fmt.Sprintf("%s→%s (%s:%d", e.from, e.to, filepathBase(loc.Filename), loc.Line)
			if e.via != "" {
				hop += " via " + e.via
			}
			hop += ")"
			parts = append(parts, hop)
			if witness == nil {
				witness = e
			}
		}
	}
	if witness == nil {
		return
	}
	lo.pass.Reportf(witness.pos,
		"lock-order cycle (potential deadlock) among {%s}: %s; acquire these classes in one global order",
		strings.Join(scc, ", "), strings.Join(parts, ", "))
}

func filepathBase(p string) string {
	if i := strings.LastIndexByte(p, '/'); i >= 0 {
		return p[i+1:]
	}
	return p
}
