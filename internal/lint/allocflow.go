package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AllocFlow returns the allocflow analyzer: the performance-contract tier.
//
// Invariant: code inside a //vdce:hot cone must not allocate per iteration.
// The dense scheduling core (CSR adjacency, V×H cost matrix, binary-search
// timelines, striped ledger) wins exactly because its inner loops run at
// memory-system speed; every new policy family is a fresh chance to re-box
// that path, and nothing before this tier enforced that it stays dense.
//
// Starting from every //vdce:hot function, allocflow walks the call graph
// and flags, anywhere in the reachable cone:
//
//   - make / new / composite literals / growing append per hot iteration,
//   - interface boxing at call sites and conversions (a concrete value
//     handed to an interface parameter heap-allocates its box),
//   - map reads, writes, deletes, and iteration on the per-task path (the
//     PR-4 dense-index invariant: hot state is indexed by dense int, not by
//     string key),
//   - closures and defers materialized per iteration,
//   - string concatenation and string/[]byte conversions (copy + alloc),
//   - variadic calls that allocate their argument slice (fmt on hot paths).
//
// Two contexts produce two wordings: a site physically inside a for/range
// statement is "in a hot loop"; a straight-line site in a function that
// some call path reaches from inside a loop is "on a per-iteration hot
// path" — it runs once per iteration all the same.
//
// An allocflow waiver is a certification with pruning power: a
// //vdce:ignore allocflow span covering a call site stops the cone walk at
// that call, so one reviewed waiver at an amortized boundary (a per-graph
// gather, a generation-cached index build, a cold error path) clears the
// whole callee subtree. The compiler cross-check (`vdce-vet -escapes`,
// escapes.go) anchors these verdicts to `go build -gcflags='-m -m'` ground
// truth.
func AllocFlow() *Analyzer {
	a := &Analyzer{
		Name: "allocflow",
		Doc:  "//vdce:hot cones must not allocate per iteration: no loop allocs, boxing, or map traffic on the dense path",
	}
	a.RunProgram = func(pass *ProgramPass) {
		hc := buildHotCone(pass.Prog)
		for _, n := range hc.notes {
			pass.Reportf(n.pos, "%s", n.msg)
		}
		for _, e := range hc.order {
			checkHotFunc(pass, e)
		}
	}
	return a
}

// checkHotFunc scans one cone member's body for allocation sources.
func checkHotFunc(pass *ProgramPass, e *coneEntry) {
	info := e.fi.Pkg.Info
	cone := strings.Join(e.roots, ", ")
	report := func(pos token.Pos, inLoop bool, what string) {
		where := "on a per-iteration hot path"
		if inLoop {
			where = "in a hot loop"
		}
		pass.Reportf(pos, "%s %s (hot: %s)", what, where, cone)
	}
	inspectWithStack(e.fi.Decl, func(n ast.Node, stack []ast.Node) bool {
		inLoop := stackInLoop(stack)
		hotIter := e.looped || inLoop
		switch n := n.(type) {
		case *ast.CallExpr:
			fun := ast.Unparen(n.Fun)
			if tv, ok := info.Types[fun]; ok && tv.IsType() {
				if hotIter {
					checkConversion(report, info, n, tv.Type, inLoop)
				}
				return true
			}
			if id, ok := fun.(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok {
					if hotIter {
						switch b.Name() {
						case "make":
							report(n.Pos(), inLoop, "heap allocation (make)")
						case "new":
							report(n.Pos(), inLoop, "heap allocation (new)")
						case "append":
							report(n.Pos(), inLoop, "append may grow its backing array")
						case "delete":
							report(n.Pos(), inLoop, "map write — prefer a dense index")
						}
					}
					return true
				}
			}
			if hotIter {
				checkCallAlloc(report, info, n, inLoop)
			}
		case *ast.CompositeLit:
			if !hotIter {
				return true
			}
			addr := false
			if len(stack) > 0 {
				if u, ok := stack[len(stack)-1].(*ast.UnaryExpr); ok && u.Op == token.AND {
					addr = true
				}
			}
			switch info.TypeOf(n).Underlying().(type) {
			case *types.Slice:
				report(n.Pos(), inLoop, "slice literal allocates")
			case *types.Map:
				report(n.Pos(), inLoop, "map literal allocates")
			default:
				if addr {
					report(n.Pos(), inLoop, "&composite literal allocates")
				}
			}
		case *ast.IndexExpr:
			if !hotIter {
				return true
			}
			t := info.TypeOf(n.X)
			if t == nil {
				return true
			}
			if _, ok := t.Underlying().(*types.Map); ok {
				what := "map read — prefer a dense index"
				if isAssignTarget(stack, n) {
					what = "map write — prefer a dense index"
				}
				report(n.Pos(), inLoop, what)
			}
		case *ast.RangeStmt:
			if !hotIter {
				return true
			}
			if t := info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Map); ok {
					report(n.Pos(), inLoop, "map iteration — prefer a dense index")
				}
			}
		case *ast.FuncLit:
			if hotIter {
				report(n.Pos(), inLoop, "closure allocates")
			}
		case *ast.DeferStmt:
			// Straight-line defers are open-coded (free); only a defer inside
			// a loop heap-allocates its frame and queues work per iteration.
			if inLoop {
				report(n.Pos(), true, "defer heap-allocates its frame")
			}
		case *ast.BinaryExpr:
			if !hotIter || n.Op != token.ADD {
				return true
			}
			t := info.TypeOf(n)
			if t == nil || !isString(t) {
				return true
			}
			if tv, ok := info.Types[n]; ok && tv.Value != nil {
				return true // constant-folded
			}
			// Flag the outermost + of a concatenation chain once, not every
			// nested BinaryExpr inside it.
			if len(stack) > 0 {
				if p, ok := stack[len(stack)-1].(*ast.BinaryExpr); ok && p.Op == token.ADD {
					if pt := info.TypeOf(p); pt != nil && isString(pt) {
						return true
					}
				}
			}
			report(n.Pos(), inLoop, "string concatenation allocates")
		}
		return true
	})
}

// checkConversion flags hot conversions that allocate: boxing into an
// interface type and string<->[]byte/[]rune copies.
func checkConversion(report func(token.Pos, bool, string), info *types.Info, call *ast.CallExpr, to types.Type, inLoop bool) {
	if len(call.Args) != 1 {
		return
	}
	arg := call.Args[0]
	if tv, ok := info.Types[arg]; ok && tv.Value != nil {
		return // constant conversion, folded at compile time
	}
	from := info.TypeOf(arg)
	if from == nil {
		return
	}
	if types.IsInterface(to.Underlying()) && !types.IsInterface(from.Underlying()) && boxAllocates(from) {
		report(call.Pos(), inLoop, "interface conversion boxes "+shortTypeString(from))
		return
	}
	if stringBytesConv(from, to) {
		report(call.Pos(), inLoop, "string/[]byte conversion copies and allocates")
	}
}

// checkCallAlloc flags allocation forced by a call's argument passing:
// variadic slices and interface-parameter boxing.
func checkCallAlloc(report func(token.Pos, bool, string), info *types.Info, call *ast.CallExpr, inLoop bool) {
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	if sig.Variadic() && call.Ellipsis == token.NoPos && len(call.Args) >= params.Len() {
		report(call.Pos(), inLoop, "variadic call allocates its argument slice")
	}
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < params.Len()-1 || (!sig.Variadic() && i < params.Len()):
			pt = params.At(i).Type()
		case sig.Variadic() && call.Ellipsis == token.NoPos:
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case sig.Variadic() && i == params.Len()-1:
			pt = params.At(i).Type() // arg... passed through, no boxing here
			continue
		default:
			continue
		}
		if !types.IsInterface(pt.Underlying()) {
			continue
		}
		if tv, ok := info.Types[arg]; ok && tv.Value != nil {
			continue // constants box to read-only statics
		}
		at := info.TypeOf(arg)
		if at == nil || types.IsInterface(at.Underlying()) || !boxAllocates(at) {
			continue
		}
		if bt, ok := at.(*types.Basic); ok && bt.Kind() == types.UntypedNil {
			continue
		}
		report(call.Pos(), inLoop, "interface conversion boxes "+shortTypeString(at))
		return // one boxing finding per call site is enough to review it
	}
}

// shortTypeString renders a type with bare package names ("scheduler.Host",
// not the full import path) for messages.
func shortTypeString(t types.Type) string {
	return types.TypeString(t, func(p *types.Package) string {
		path := p.Path()
		if i := strings.LastIndexByte(path, '/'); i >= 0 {
			path = path[i+1:]
		}
		return path
	})
}

// boxAllocates reports whether converting a value of concrete type t to an
// interface heap-allocates the box. Pointer-shaped types (pointers,
// channels, maps, funcs, unsafe.Pointer) fit in the interface word.
func boxAllocates(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	case *types.Basic:
		return u.Kind() != types.UnsafePointer && u.Kind() != types.UntypedNil
	}
	return true
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// stringBytesConv reports a string <-> []byte/[]rune conversion (copies).
func stringBytesConv(from, to types.Type) bool {
	return (isString(from) && byteOrRuneSlice(to)) || (isString(to) && byteOrRuneSlice(from))
}

func byteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// isAssignTarget reports whether n is written through: it appears on the
// left of an assignment or under ++/--.
func isAssignTarget(stack []ast.Node, n ast.Expr) bool {
	if len(stack) == 0 {
		return false
	}
	switch p := stack[len(stack)-1].(type) {
	case *ast.AssignStmt:
		for _, lhs := range p.Lhs {
			if lhs == n {
				return true
			}
		}
	case *ast.IncDecStmt:
		return p.X == n
	}
	return false
}
