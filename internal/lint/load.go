package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// The loader is deliberately self-contained: the module has no third-party
// dependencies and the build environment has no module proxy, so instead of
// golang.org/x/tools/go/packages it shells out to `go list -json -deps` for
// package metadata and type-checks everything — the repo and the slice of
// the standard library it imports — from source with go/parser + go/types.

// SourceFile is one parsed file of an analyzed package.
type SourceFile struct {
	AST  *ast.File
	Path string // absolute path on disk
	Test bool   // from a _test.go file
}

// Package is a loaded, type-checked package presented to analyzers.
type Package struct {
	ImportPath string
	Name       string
	Dir        string
	RootDir    string // module root (fixture dir for LoadDir packages)
	Files      []SourceFile
	Fset       *token.FileSet
	Types      *types.Package
	Info       *types.Info
}

// listMeta is the subset of `go list -json` output the loader consumes.
type listMeta struct {
	ImportPath  string
	Name        string
	Dir         string
	GoFiles     []string
	TestGoFiles []string
	Imports     []string
	ImportMap   map[string]string // source import path -> resolved (stdlib vendoring)
	TestImports []string
	Standard    bool
	DepOnly     bool
	Module      *struct{ Dir string }
	Error       *struct{ Err string }
}

// Loader caches type-checked packages (the repo's and the standard
// library's) across Load and LoadDir calls so test fixtures and repeated
// loads re-check nothing.
type Loader struct {
	Fset *token.FileSet
	Dir  string // working directory for `go list` (defaults to the process cwd)

	metas    map[string]*listMeta
	checked  map[string]*types.Package
	checking map[string]bool
	pkgs     map[string]*Package // fully-checked targets (with Info), by import path
}

// NewLoader returns a loader running `go list` in dir ("" = process cwd).
func NewLoader(dir string) *Loader {
	return &Loader{
		Fset:     token.NewFileSet(),
		Dir:      dir,
		metas:    map[string]*listMeta{},
		checked:  map[string]*types.Package{},
		checking: map[string]bool{},
		pkgs:     map[string]*Package{},
	}
}

// Load resolves the patterns with `go list`, type-checks every matched
// package (with its in-package test files) and all transitive dependencies,
// and returns the matched packages sorted by import path.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	metas, err := l.goList(patterns...)
	if err != nil {
		return nil, err
	}
	var targets []*listMeta
	for _, m := range metas {
		if !m.DepOnly && !m.Standard {
			targets = append(targets, m)
		}
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("lint: no packages match %v", patterns)
	}
	// Test files can import packages the non-test dependency graph never
	// reaches (testing, repro fixtures, ...): list them in one extra pass.
	var missing []string
	for _, m := range targets {
		for _, imp := range m.TestImports {
			if imp != "C" && l.metas[imp] == nil {
				missing = append(missing, imp)
			}
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		missing = compactStrings(missing)
		if _, err := l.goList(missing...); err != nil {
			return nil, err
		}
	}
	// Check targets in dependency order — regular and test imports alike —
	// and publish each result into the import cache immediately. A target
	// that imports another target must resolve it to the IDENTICAL
	// *types.Package: a second type-check of the same path produces a
	// distinct object, and with it every cross-package type identity (and
	// CHA interface resolution over the implementer universe) silently
	// fails.
	isTarget := map[string]*listMeta{}
	for _, m := range targets {
		isTarget[m.ImportPath] = m
	}
	var order []*listMeta
	seen := map[string]bool{}
	var visit func(path string)
	visit = func(path string) {
		if seen[path] {
			return
		}
		seen[path] = true
		m := l.metas[path]
		if m == nil || m.Standard {
			return
		}
		for _, imp := range m.Imports {
			visit(imp)
		}
		if t := isTarget[path]; t != nil {
			for _, imp := range t.TestImports {
				visit(imp)
			}
			order = append(order, t)
		}
	}
	for _, m := range targets {
		visit(m.ImportPath)
	}
	var out []*Package
	for _, m := range order {
		pkg, err := l.checkTarget(m)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ImportPath < out[j].ImportPath })
	return out, nil
}

// LoadDir parses and type-checks a plain directory of Go files (a lint test
// fixture, typically under testdata where the go tool does not look) as a
// single package. Imports are resolved through the regular loader, so
// fixtures may import the standard library freely.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	var files []SourceFile
	var imports []string
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, SourceFile{AST: f, Path: name, Test: strings.HasSuffix(name, "_test.go")})
		for _, spec := range f.Imports {
			if p, err := strconv.Unquote(spec.Path.Value); err == nil && p != "unsafe" && p != "C" {
				imports = append(imports, p)
			}
		}
	}
	sort.Strings(imports)
	imports = compactStrings(imports)
	var missing []string
	for _, imp := range imports {
		if l.metas[imp] == nil {
			missing = append(missing, imp)
		}
	}
	if len(missing) > 0 {
		if _, err := l.goList(missing...); err != nil {
			return nil, err
		}
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	path := "fixture/" + filepath.Base(dir)
	info := newInfo()
	tpkg, err := l.typeCheck(path, sourceASTs(files), info, nil)
	if err != nil {
		return nil, fmt.Errorf("lint: fixture %s: %w", dir, err)
	}
	return &Package{
		ImportPath: path,
		Name:       tpkg.Name(),
		Dir:        abs,
		RootDir:    abs,
		Files:      files,
		Fset:       l.Fset,
		Types:      tpkg,
		Info:       info,
	}, nil
}

// Load is the one-shot convenience used by the CLI.
func Load(dir string, patterns ...string) ([]*Package, error) {
	return NewLoader(dir).Load(patterns...)
}

// goList runs `go list -e -json -deps` on the arguments and merges the
// returned metadata into the loader's cache.
func (l *Loader) goList(args ...string) ([]*listMeta, error) {
	cmd := exec.Command("go", append([]string{"list", "-e", "-json", "-deps", "--"}, args...)...)
	cmd.Dir = l.Dir
	// CGO_ENABLED=0 keeps GoFiles self-contained: no cgo-generated
	// declarations the type-checker would miss.
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list %s: %w\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var out []*listMeta
	dec := json.NewDecoder(&stdout)
	for dec.More() {
		m := new(listMeta)
		if err := dec.Decode(m); err != nil {
			return nil, fmt.Errorf("lint: decode go list output: %w", err)
		}
		if m.Error != nil && !m.DepOnly {
			return nil, fmt.Errorf("lint: %s: %s", m.ImportPath, m.Error.Err)
		}
		if prev, ok := l.metas[m.ImportPath]; ok {
			// Keep the first sighting: later passes may re-list a target
			// as a plain named package and lose the DepOnly distinction.
			out = append(out, prev)
			continue
		}
		l.metas[m.ImportPath] = m
		out = append(out, m)
	}
	return out, nil
}

// checkTarget type-checks a matched package including its in-package test
// files, with full type information recorded for the analyzers.
func (l *Loader) checkTarget(m *listMeta) (*Package, error) {
	if pkg, ok := l.pkgs[m.ImportPath]; ok {
		return pkg, nil
	}
	var files []SourceFile
	for _, name := range m.GoFiles {
		f, err := l.parse(filepath.Join(m.Dir, name))
		if err != nil {
			return nil, err
		}
		files = append(files, SourceFile{AST: f, Path: filepath.Join(m.Dir, name)})
	}
	for _, name := range m.TestGoFiles {
		f, err := l.parse(filepath.Join(m.Dir, name))
		if err != nil {
			return nil, err
		}
		files = append(files, SourceFile{AST: f, Path: filepath.Join(m.Dir, name), Test: true})
	}
	info := newInfo()
	tpkg, err := l.typeCheck(m.ImportPath, sourceASTs(files), info, m.ImportMap)
	if err != nil {
		return nil, err
	}
	root := m.Dir
	if m.Module != nil && m.Module.Dir != "" {
		root = m.Module.Dir
	}
	pkg := &Package{
		ImportPath: m.ImportPath,
		Name:       tpkg.Name(),
		Dir:        m.Dir,
		RootDir:    root,
		Files:      files,
		Fset:       l.Fset,
		Types:      tpkg,
		Info:       info,
	}
	l.pkgs[m.ImportPath] = pkg
	// Publish into the import cache so later packages importing this one
	// resolve to the identical *types.Package. (If a dependency-only copy
	// already slipped in — possible only when an earlier Load on this
	// loader pulled the path in as a plain dep — the full copy replaces it
	// for future importers.)
	l.checked[m.ImportPath] = tpkg
	return pkg, nil
}

// importPkg type-checks a dependency (no test files, no recorded info),
// listing it on demand if an earlier pass never saw it.
func (l *Loader) importPkg(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if tp, ok := l.checked[path]; ok {
		return tp, nil
	}
	if l.checking[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	m := l.metas[path]
	if m == nil {
		if _, err := l.goList(path); err != nil {
			return nil, err
		}
		if m = l.metas[path]; m == nil {
			return nil, fmt.Errorf("lint: cannot resolve import %q", path)
		}
	}
	if m.Error != nil {
		return nil, fmt.Errorf("lint: %s: %s", path, m.Error.Err)
	}
	l.checking[path] = true
	defer delete(l.checking, path)
	var files []*ast.File
	for _, name := range m.GoFiles {
		f, err := l.parse(filepath.Join(m.Dir, name))
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	tp, err := l.typeCheck(path, files, nil, m.ImportMap)
	if err != nil {
		return nil, err
	}
	l.checked[path] = tp
	return tp, nil
}

func (l *Loader) parse(path string) (*ast.File, error) {
	f, err := parser.ParseFile(l.Fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		return nil, fmt.Errorf("lint: parse %s: %w", path, err)
	}
	return f, nil
}

func (l *Loader) typeCheck(path string, files []*ast.File, info *types.Info, importMap map[string]string) (*types.Package, error) {
	conf := types.Config{
		Importer: importerFunc(func(p string) (*types.Package, error) {
			if mapped, ok := importMap[p]; ok {
				p = mapped
			}
			return l.importPkg(p)
		}),
		Sizes:       types.SizesFor("gc", runtime.GOARCH),
		FakeImportC: true,
	}
	tp, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-check %s: %w", path, err)
	}
	return tp, nil
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Instances:  map[*ast.Ident]types.Instance{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

func sourceASTs(files []SourceFile) []*ast.File {
	out := make([]*ast.File, len(files))
	for i, f := range files {
		out[i] = f.AST
	}
	return out
}

// compactStrings deduplicates a sorted slice in place.
func compactStrings(s []string) []string {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}
