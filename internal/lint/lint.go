// Package lint is vdce-vet's analyzer suite: domain-specific static
// analysis that mechanically enforces the invariants the reproduction's
// claims rest on — deterministic iteration wherever output is observable,
// bit-exact float comparison only where it is the point, lock discipline on
// mutex-guarded state, and full evaluation coverage of every registered
// scheduling policy.
//
// Analyzers are deliberately conservative: they flag everything they cannot
// prove safe and rely on an explicit, reviewable suppression to waive a
// finding. A suppression is a comment of the form
//
//	//vdce:ignore <rule>[,<rule>...] <reason>
//
// on the offending line or the line directly above it, or
//
//	//vdce:ignore-file <rule>[,<rule>...] <reason>
//
// anywhere in a file to waive a rule file-wide. The reason is mandatory:
// a suppression without one is itself a finding.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named rule. Run analyzes one type-checked package at a
// time; RunProgram analyzes the whole load at once through the
// interprocedural tier (call graph + value-flow summaries). An analyzer
// sets exactly one of the two.
type Analyzer struct {
	Name       string
	Doc        string // one-line invariant statement, shown by vdce-vet -list
	Run        func(*Pass)
	RunProgram func(*ProgramPass)
}

// A Finding is one rule violation at a position.
type Finding struct {
	Rule string
	Pos  token.Position
	Msg  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Rule, f.Msg)
}

// A Pass carries one analyzer's run over one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Rule: p.Analyzer.Name,
		Pos:  p.Pkg.Fset.Position(pos),
		Msg:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil if the checker did not record one.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.Pkg.Info.TypeOf(e)
}

// A ProgramPass carries one interprocedural analyzer's run over the whole
// load.
type ProgramPass struct {
	Analyzer *Analyzer
	Prog     *Program
	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *ProgramPass) Reportf(pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Rule: p.Analyzer.Name,
		Pos:  p.Prog.fset().Position(pos),
		Msg:  fmt.Sprintf(format, args...),
	})
}

// The suppression rule name: malformed //vdce:ignore comments are reported
// under it so the "every suppression carries a reason" policy is itself
// machine-checked.
const suppressionRule = "suppression"

const (
	ignoreDirective     = "//vdce:ignore "
	ignoreFileDirective = "//vdce:ignore-file "
)

type suppression struct {
	rules     []string
	line      int
	endLine   int // last line covered: the directive's node span (see below)
	fileWide  bool
	hasReason bool
	reason    string
	pos       token.Pos
	file      string
}

func (s suppression) covers(rule string, f Finding) bool {
	if f.Pos.Filename != s.file {
		return false
	}
	found := false
	for _, r := range s.rules {
		if r == rule {
			found = true
		}
	}
	if !found {
		return false
	}
	return s.fileWide || (f.Pos.Line >= s.line && f.Pos.Line <= s.endLine)
}

// parseSuppressions scans a file's comments for //vdce:ignore directives.
//
// A directive attaches to the node that starts on its own line (trailing
// comment) or on the line directly below (comment-above), and covers that
// node's *entire* source span: a //vdce:ignore above a three-line call
// suppresses findings reported against any of the three lines, not just the
// first. With no node starting there, coverage falls back to the directive
// line and the next.
func parseSuppressions(fset *token.FileSet, f *ast.File) []suppression {
	var out []suppression
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, fileWide := "", false
			switch {
			case strings.HasPrefix(c.Text, ignoreFileDirective):
				text, fileWide = c.Text[len(ignoreFileDirective):], true
			case c.Text == strings.TrimSpace(ignoreFileDirective):
				text, fileWide = "", true
			case strings.HasPrefix(c.Text, ignoreDirective):
				text = c.Text[len(ignoreDirective):]
			case c.Text == strings.TrimSpace(ignoreDirective):
				text = ""
			default:
				continue
			}
			fields := strings.Fields(text)
			s := suppression{
				fileWide: fileWide,
				line:     fset.Position(c.Pos()).Line,
				pos:      c.Pos(),
				file:     fset.Position(c.Pos()).Filename,
			}
			s.endLine = s.line + 1
			if len(fields) > 0 {
				s.rules = strings.Split(fields[0], ",")
				s.hasReason = len(fields) > 1
				s.reason = strings.Join(fields[1:], " ")
			}
			out = append(out, s)
		}
	}
	if len(out) == 0 {
		return nil
	}
	// Extend each directive to the full span of its node: the deepest walk
	// finds every node starting on the directive's line or the next one and
	// takes the furthest end line among them.
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || n == f {
			return true
		}
		start := fset.Position(n.Pos()).Line
		end := fset.Position(n.End()).Line
		if end <= start {
			return true
		}
		for i := range out {
			s := &out[i]
			if (start == s.line || start == s.line+1) && end > s.endLine {
				s.endLine = end
			}
		}
		return true
	})
	return out
}

// Directive is one //vdce:ignore occurrence, as surfaced by Inventory: the
// machine-readable waiver ledger (vdce-vet -inventory, the CI lint summary).
type Directive struct {
	File     string   `json:"file"`
	Line     int      `json:"line"`
	FileWide bool     `json:"fileWide"`
	Rules    []string `json:"rules"`
	Reason   string   `json:"reason"`
}

// Inventory lists every suppression directive in the packages, sorted by
// file and line. Malformed directives are included (empty Rules or Reason):
// the inventory reports what is written, Run reports what is wrong with it.
func Inventory(pkgs []*Package) []Directive {
	var out []Directive
	for _, pkg := range pkgs {
		for _, sf := range pkg.Files {
			for _, s := range parseSuppressions(pkg.Fset, sf.AST) {
				out = append(out, Directive{
					File:     s.file,
					Line:     s.line,
					FileWide: s.fileWide,
					Rules:    s.rules,
					Reason:   s.reason,
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		return out[i].Line < out[j].Line
	})
	return out
}

// Run executes the analyzers over the packages, applies suppressions, and
// returns the surviving findings sorted by position. Malformed suppressions
// (no rule, no reason, or an unknown rule name) are reported as findings of
// the "suppression" pseudo-rule, so `vdce-vet` clean means every waiver in
// the tree names a real rule and carries a reason.
func Run(pkgs []*Package, analyzers []*Analyzer) []Finding {
	known := map[string]bool{}
	for _, a := range Analyzers() {
		known[a.Name] = true
	}

	var findings []Finding
	var sups []suppression
	for _, pkg := range pkgs {
		for _, sf := range pkg.Files {
			sups = append(sups, parseSuppressions(pkg.Fset, sf.AST)...)
		}
	}
	fset := token.NewFileSet()
	if len(pkgs) > 0 {
		fset = pkgs[0].Fset
	}
	for _, s := range sups {
		if len(s.rules) == 0 {
			findings = append(findings, Finding{
				Rule: suppressionRule,
				Pos:  fset.Position(s.pos),
				Msg:  "//vdce:ignore needs a rule name and a reason",
			})
			continue
		}
		for _, r := range s.rules {
			if !known[r] {
				findings = append(findings, Finding{
					Rule: suppressionRule,
					Pos:  fset.Position(s.pos),
					Msg:  fmt.Sprintf("//vdce:ignore names unknown rule %q (known: %s)", r, strings.Join(RuleNames(), ", ")),
				})
			}
		}
		if !s.hasReason {
			findings = append(findings, Finding{
				Rule: suppressionRule,
				Pos:  fset.Position(s.pos),
				Msg:  fmt.Sprintf("//vdce:ignore %s needs a reason", strings.Join(s.rules, ",")),
			})
		}
	}

	var raw []Finding
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			pass := &Pass{Analyzer: a, Pkg: pkg, findings: &raw}
			a.Run(pass)
		}
	}
	var prog *Program
	for _, a := range analyzers {
		if a.RunProgram == nil {
			continue
		}
		if prog == nil {
			prog = BuildProgram(pkgs)
		}
		a.RunProgram(&ProgramPass{Analyzer: a, Prog: prog, findings: &raw})
	}
	for _, f := range raw {
		suppressed := false
		for _, s := range sups {
			if s.covers(f.Rule, f) {
				suppressed = true
				break
			}
		}
		if !suppressed {
			findings = append(findings, f)
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Msg < b.Msg
	})
	// Deduplicate: overlapping analyzers may land on the same position.
	out := findings[:0]
	for i, f := range findings {
		if i == 0 || f != findings[i-1] {
			out = append(out, f)
		}
	}
	return out
}

// Analyzers returns the full suite with repo-default configuration: the
// per-package tier (PR 6), the interprocedural tier (detflow, lockorder,
// unitflow) built on the call-graph engine, and the performance-contract
// tier (allocflow) over the //vdce:hot cones.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		MapOrder(),
		FloatEq(),
		LockDiscipline(),
		RegistryCheck("", ""),
		DetFlow(),
		LockOrder(),
		UnitFlow(),
		AllocFlow(),
	}
}

// RuleNames returns every rule a //vdce:ignore directive (or a -rules
// filter) may name — the analyzers plus the "suppression" pseudo-rule —
// sorted.
func RuleNames() []string {
	var out []string
	for _, a := range Analyzers() {
		out = append(out, a.Name)
	}
	out = append(out, suppressionRule)
	sort.Strings(out)
	return out
}
