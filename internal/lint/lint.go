// Package lint is vdce-vet's analyzer suite: domain-specific static
// analysis that mechanically enforces the invariants the reproduction's
// claims rest on — deterministic iteration wherever output is observable,
// bit-exact float comparison only where it is the point, lock discipline on
// mutex-guarded state, and full evaluation coverage of every registered
// scheduling policy.
//
// Analyzers are deliberately conservative: they flag everything they cannot
// prove safe and rely on an explicit, reviewable suppression to waive a
// finding. A suppression is a comment of the form
//
//	//vdce:ignore <rule>[,<rule>...] <reason>
//
// on the offending line or the line directly above it, or
//
//	//vdce:ignore-file <rule>[,<rule>...] <reason>
//
// anywhere in a file to waive a rule file-wide. The reason is mandatory:
// a suppression without one is itself a finding.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named rule over a type-checked package.
type Analyzer struct {
	Name string
	Doc  string // one-line invariant statement, shown by vdce-vet -list
	Run  func(*Pass)
}

// A Finding is one rule violation at a position.
type Finding struct {
	Rule string
	Pos  token.Position
	Msg  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Rule, f.Msg)
}

// A Pass carries one analyzer's run over one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Rule: p.Analyzer.Name,
		Pos:  p.Pkg.Fset.Position(pos),
		Msg:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil if the checker did not record one.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.Pkg.Info.TypeOf(e)
}

// The suppression rule name: malformed //vdce:ignore comments are reported
// under it so the "every suppression carries a reason" policy is itself
// machine-checked.
const suppressionRule = "suppression"

const (
	ignoreDirective     = "//vdce:ignore "
	ignoreFileDirective = "//vdce:ignore-file "
)

type suppression struct {
	rules     []string
	line      int
	fileWide  bool
	hasReason bool
	pos       token.Pos
	file      string
}

func (s suppression) covers(rule string, f Finding) bool {
	if f.Pos.Filename != s.file {
		return false
	}
	found := false
	for _, r := range s.rules {
		if r == rule {
			found = true
		}
	}
	if !found {
		return false
	}
	return s.fileWide || f.Pos.Line == s.line || f.Pos.Line == s.line+1
}

// parseSuppressions scans a file's comments for //vdce:ignore directives.
func parseSuppressions(fset *token.FileSet, f *ast.File) []suppression {
	var out []suppression
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, fileWide := "", false
			switch {
			case strings.HasPrefix(c.Text, ignoreFileDirective):
				text, fileWide = c.Text[len(ignoreFileDirective):], true
			case c.Text == strings.TrimSpace(ignoreFileDirective):
				text, fileWide = "", true
			case strings.HasPrefix(c.Text, ignoreDirective):
				text = c.Text[len(ignoreDirective):]
			case c.Text == strings.TrimSpace(ignoreDirective):
				text = ""
			default:
				continue
			}
			fields := strings.Fields(text)
			s := suppression{
				fileWide: fileWide,
				line:     fset.Position(c.Pos()).Line,
				pos:      c.Pos(),
				file:     fset.Position(c.Pos()).Filename,
			}
			if len(fields) > 0 {
				s.rules = strings.Split(fields[0], ",")
				s.hasReason = len(fields) > 1
			}
			out = append(out, s)
		}
	}
	return out
}

// Run executes the analyzers over the packages, applies suppressions, and
// returns the surviving findings sorted by position. Malformed suppressions
// (no rule, no reason, or an unknown rule name) are reported as findings of
// the "suppression" pseudo-rule, so `vdce-vet` clean means every waiver in
// the tree names a real rule and carries a reason.
func Run(pkgs []*Package, analyzers []*Analyzer) []Finding {
	known := map[string]bool{}
	for _, a := range Analyzers() {
		known[a.Name] = true
	}

	var findings []Finding
	for _, pkg := range pkgs {
		var sups []suppression
		for _, sf := range pkg.Files {
			sups = append(sups, parseSuppressions(pkg.Fset, sf.AST)...)
		}
		for _, s := range sups {
			if len(s.rules) == 0 {
				findings = append(findings, Finding{
					Rule: suppressionRule,
					Pos:  pkg.Fset.Position(s.pos),
					Msg:  "//vdce:ignore needs a rule name and a reason",
				})
				continue
			}
			for _, r := range s.rules {
				if !known[r] {
					findings = append(findings, Finding{
						Rule: suppressionRule,
						Pos:  pkg.Fset.Position(s.pos),
						Msg:  fmt.Sprintf("//vdce:ignore names unknown rule %q (known: %s)", r, strings.Join(ruleNames(), ", ")),
					})
				}
			}
			if !s.hasReason {
				findings = append(findings, Finding{
					Rule: suppressionRule,
					Pos:  pkg.Fset.Position(s.pos),
					Msg:  fmt.Sprintf("//vdce:ignore %s needs a reason", strings.Join(s.rules, ",")),
				})
			}
		}

		var raw []Finding
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg, findings: &raw}
			a.Run(pass)
		}
		for _, f := range raw {
			suppressed := false
			for _, s := range sups {
				if s.covers(f.Rule, f) {
					suppressed = true
					break
				}
			}
			if !suppressed {
				findings = append(findings, f)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Msg < b.Msg
	})
	// Deduplicate: overlapping analyzers may land on the same position.
	out := findings[:0]
	for i, f := range findings {
		if i == 0 || f != findings[i-1] {
			out = append(out, f)
		}
	}
	return out
}

// Analyzers returns the full suite with repo-default configuration.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		MapOrder(),
		FloatEq(),
		LockDiscipline(),
		RegistryCheck("", ""),
	}
}

func ruleNames() []string {
	var out []string
	for _, a := range Analyzers() {
		out = append(out, a.Name)
	}
	out = append(out, suppressionRule)
	sort.Strings(out)
	return out
}
