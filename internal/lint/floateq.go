package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// FloatEq returns the floateq analyzer.
//
// Invariant: makespans, ranks, and EFTs are float64, and exact `==`/`!=` on
// them is meaningful only where bit-identical reproduction is the point —
// the oracle/equivalence tests that pin the dense core to the map-keyed
// originals and the validator to the simulator. Everywhere else a raw float
// comparison is a latent tolerance bug, and metrics.ApproxEqual (or a
// restructure) is the right tool.
//
// Allowlisted files, where exact comparison IS the invariant under test:
// _test.go files whose name contains "oracle", "equiv", or "golden". Other
// intentional sites use //vdce:ignore floateq <reason> (line) or
// //vdce:ignore-file floateq <reason> (whole file).
//
// The NaN self-comparison idiom (x != x on a side-effect-free operand) is
// recognized and allowed, and so is any comparison with a compile-time
// constant operand (`x == 0` unset-sentinel checks, exact pivot tests, and
// test assertions against exactly representable literals): the invariant
// this rule protects is about *computed* quantities meeting each other,
// where equal-in-exact-arithmetic values differ in floating point.
//
// Also allowed is the ordering tie-break idiom: an exact ==/!= whose
// operand pair is elsewhere in the same function compared with </>/<=/>=
// (`if ri != rj { return ri > rj }; return i < j`, running minima with
// name tie-breaks). Those comparisons define a total order, and replacing
// them with a tolerance would break strict weak ordering — sort.Slice
// would see a < b, b < c, but not a < c.
//
// extraAllow adds file base-name substrings to the allowlist (tests use
// this; the repo default is the empty set).
func FloatEq(extraAllow ...string) *Analyzer {
	a := &Analyzer{
		Name: "floateq",
		Doc:  "no exact float64 ==/!=/switch outside the oracle/equivalence allowlist",
	}
	a.Run = func(pass *Pass) {
		for _, sf := range pass.Pkg.Files {
			if floatEqAllowedFile(sf, extraAllow) {
				continue
			}
			inspectWithStack(sf.AST, func(n ast.Node, stack []ast.Node) bool {
				switch e := n.(type) {
				case *ast.BinaryExpr:
					if e.Op != token.EQL && e.Op != token.NEQ {
						return true
					}
					if !isFloatExpr(pass, e.X) && !isFloatExpr(pass, e.Y) {
						return true
					}
					if isConstant(pass, e.X) || isConstant(pass, e.Y) {
						return true
					}
					if nanSelfCheck(e) {
						return true
					}
					if orderedTieBreak(e, stack) {
						return true
					}
					pass.Reportf(e.OpPos,
						"exact float64 comparison (%s %s %s); use metrics.ApproxEqual or //vdce:ignore floateq <reason> if bit-identity is intended",
						exprString(e.X), e.Op, exprString(e.Y))
				case *ast.SwitchStmt:
					if e.Tag != nil && isFloatExpr(pass, e.Tag) {
						pass.Reportf(e.Switch,
							"switch on float64 value %s compares exactly; restructure as if/else with tolerances",
							exprString(e.Tag))
					}
				}
				return true
			})
		}
	}
	return a
}

func floatEqAllowedFile(sf SourceFile, extraAllow []string) bool {
	base := filepath.Base(sf.Path)
	if sf.Test {
		for _, marker := range []string{"oracle", "equiv", "golden"} {
			if strings.Contains(base, marker) {
				return true
			}
		}
	}
	for _, marker := range extraAllow {
		if strings.Contains(base, marker) {
			return true
		}
	}
	return false
}

func isFloatExpr(pass *Pass, e ast.Expr) bool {
	t := pass.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isConstant(pass *Pass, e ast.Expr) bool {
	return pass.Pkg.Info.Types[e].Value != nil
}

// orderedTieBreak reports whether the exact comparison's operand pair is
// also compared with a relational operator somewhere in the enclosing
// function — the comparator/running-minimum shape where exact equality
// selects the deterministic tie-break arm of a total order.
func orderedTieBreak(e *ast.BinaryExpr, stack []ast.Node) bool {
	body := enclosingFuncBody(stack)
	if body == nil {
		return false
	}
	x, y := exprString(e.X), exprString(e.Y)
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		b, ok := n.(*ast.BinaryExpr)
		if !ok || found {
			return !found
		}
		switch b.Op {
		case token.LSS, token.GTR, token.LEQ, token.GEQ:
		default:
			return true
		}
		bx, by := exprString(b.X), exprString(b.Y)
		if (bx == x && by == y) || (bx == y && by == x) {
			found = true
		}
		return !found
	})
	return found
}

// nanSelfCheck recognizes `x != x` / `x == x` on a pure operand — the
// portable NaN test.
func nanSelfCheck(e *ast.BinaryExpr) bool {
	if exprString(e.X) != exprString(e.Y) {
		return false
	}
	return sideEffectFree(e.X)
}

func sideEffectFree(e ast.Expr) bool {
	pure := true
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.CallExpr); ok {
			pure = false
		}
		return pure
	})
	return pure
}
