package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// DetFlow returns the detflow analyzer.
//
// Invariant: values derived from nondeterminism sources must not reach
// schedule outputs through ANY call chain. The sources:
//
//   - the wall clock (time.Now / Since / Until),
//   - the global math/rand generator (package-level rand.Intn and friends;
//     a *rand.Rand threaded from an explicit seed — the Config.Seed
//     discipline — is fine, because its methods only taint when the
//     generator itself was built from a tainted seed),
//   - pointer identity (%p formatting, pointer→uintptr conversions,
//     reflect's Pointer/UnsafeAddr),
//   - map iteration order (an append accumulated across a map range that no
//     sort in the same function re-orders).
//
// The sinks are the repro's observable schedule outputs: the allocation
// table and its assignments (scheduler.AllocationTable / Assignment /
// Choice), the RANKING golden cells (experiments.RankingCell), and every
// RPC reply struct (*Reply). Where maporder polices one function at a time,
// detflow follows values across calls: a helper that returns an unsorted
// map-keyed slice is flagged at the point where a caller finally stores it
// into a schedule output, however many hops away.
//
// The engine is a whole-load taint propagation over the call graph:
// per-function value-flow summaries (which params reach the results, which
// params reach a sink store) are iterated to a fixpoint, with conservative
// joins — result tainted if any argument is — for calls that leave the
// load (standard library) or cannot be resolved (func values).
//
// A //vdce:ignore detflow span is a certification, not just a silencer:
// values stored or returned inside it shed their source taint in the
// summaries, so one reviewed waiver at a producer (an injective keyed-write
// loop, say) clears every consumer downstream instead of demanding a waiver
// at each sink the value eventually reaches.
func DetFlow() *Analyzer {
	a := &Analyzer{
		Name: "detflow",
		Doc:  "wall clock, global rand, pointer identity, and map order must not reach schedule outputs",
	}
	a.RunProgram = func(pass *ProgramPass) {
		d := &detflow{pass: pass, sums: map[*types.Func]*flowSummary{}}
		d.collectWaivers()
		for round := 0; round < 32; round++ {
			changed := false
			for _, fi := range pass.Prog.Funcs() {
				if d.analyze(fi) {
					changed = true
				}
			}
			if !changed {
				break
			}
		}
		for _, fi := range pass.Prog.Funcs() {
			d.report(fi)
		}
	}
	return a
}

// taint is a label set: two source bits plus one bit per parameter
// (receiver = param 0 for methods).
type taint uint64

const (
	taintNondet taint = 1 << 0 // wall clock / global rand / pointer identity
	taintMapOrd taint = 1 << 1 // map iteration order
	paramBit0         = 2
	maxParams         = 61
)

func paramBit(i int) taint {
	if i >= maxParams {
		i = maxParams - 1 // merge overflow params into the last bit (conservative)
	}
	return 1 << (paramBit0 + i)
}

func (t taint) sources() taint { return t & (taintNondet | taintMapOrd) }
func (t taint) params() taint  { return t &^ (taintNondet | taintMapOrd) }
func (t taint) hasParam(i int) bool {
	return t&paramBit(i) != 0
}

func sourceLabel(t taint) string {
	var parts []string
	if t&taintNondet != 0 {
		parts = append(parts, "wall clock, global rand, or pointer identity")
	}
	if t&taintMapOrd != 0 {
		parts = append(parts, "map iteration order")
	}
	return strings.Join(parts, "; ")
}

// flowSummary is one function's value-flow contract: which labels reach its
// results, and which parameters reach a schedule-output store inside it
// (directly or through further calls).
type flowSummary struct {
	result taint
	sink   taint // param bits only
}

type detflow struct {
	pass *ProgramPass
	sums map[*types.Func]*flowSummary

	// waive holds the //vdce:ignore spans that name detflow, per file as
	// (firstLine, lastLine) intervals. A waiver is a certification, not
	// just a silencer: values stored or returned inside a waived span shed
	// their source taint, so a reviewed waiver at the producer (say, an
	// injective keyed-write loop over a map) clears the whole downstream
	// cone instead of forcing one waiver per consumer.
	waive map[string][][2]int
}

// collectWaivers indexes the detflow suppression spans across the load.
func (d *detflow) collectWaivers() {
	d.waive = ignoreSpans(d.pass.Prog, "detflow")
}

// waived reports whether pos falls inside a //vdce:ignore detflow span.
func (st *funcState) waived(pos token.Pos) bool {
	return coveredBySpans(st.d.waive, st.d.pass.Prog.fset(), pos)
}

// sinkTypeNames are the schedule-output types by bare name (the fixture
// packages mirror them); any struct named *Reply — an RPC reply — is a sink
// as well.
var sinkTypeNames = map[string]bool{
	"AllocationTable": true,
	"Assignment":      true,
	"Choice":          true,
	"RankingCell":     true,
}

func isSinkType(t types.Type) bool {
	for {
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
			continue
		}
		break
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	name := named.Obj().Name()
	if sinkTypeNames[name] {
		return true
	}
	if _, isStruct := named.Underlying().(*types.Struct); isStruct && strings.HasSuffix(name, "Reply") {
		return true
	}
	return false
}

// funcState is one intra-function propagation: a flow-insensitive taint
// environment iterated to a local fixpoint.
type funcState struct {
	d       *detflow
	fi      *FuncInfo
	env     map[types.Object]taint
	sorted  map[types.Object]bool // objects some sort call re-orders: immune to map-order taint
	summary flowSummary
	changed bool
	emit    func(pos token.Pos, format string, args ...any)
}

func (d *detflow) summaryOf(f *types.Func) *flowSummary {
	if f == nil {
		return nil
	}
	return d.sums[f.Origin()]
}

// analyze recomputes fi's summary; reports whether it grew.
func (d *detflow) analyze(fi *FuncInfo) bool {
	st := d.newState(fi)
	st.converge()
	prev := d.sums[fi.Obj]
	if prev == nil {
		d.sums[fi.Obj] = &flowSummary{result: st.summary.result, sink: st.summary.sink}
		return st.summary.result != 0 || st.summary.sink != 0
	}
	grew := st.summary.result&^prev.result != 0 || st.summary.sink&^prev.sink != 0
	prev.result |= st.summary.result
	prev.sink |= st.summary.sink
	return grew
}

// report re-runs fi against the converged summaries, emitting findings.
func (d *detflow) report(fi *FuncInfo) {
	st := d.newState(fi)
	st.converge()
	seen := map[string]bool{}
	st.emit = func(pos token.Pos, format string, args ...any) {
		key := d.pass.Prog.fset().Position(pos).String() + "|" + format
		if seen[key] {
			return
		}
		seen[key] = true
		d.pass.Reportf(pos, format, args...)
	}
	st.changed = false
	st.walk()
}

func (d *detflow) newState(fi *FuncInfo) *funcState {
	st := &funcState{
		d:      d,
		fi:     fi,
		env:    map[types.Object]taint{},
		sorted: map[types.Object]bool{},
	}
	for i, obj := range paramObjects(fi) {
		if obj != nil {
			st.env[obj] = paramBit(i)
		}
	}
	st.findSorted()
	return st
}

// paramObjects lists the function's parameter objects, receiver first.
func paramObjects(fi *FuncInfo) []types.Object {
	var out []types.Object
	info := fi.Pkg.Info
	if fi.Decl.Recv != nil {
		for _, f := range fi.Decl.Recv.List {
			if len(f.Names) == 0 {
				out = append(out, nil)
			}
			for _, n := range f.Names {
				out = append(out, info.Defs[n])
			}
		}
	}
	if fi.Decl.Type.Params != nil {
		for _, f := range fi.Decl.Type.Params.List {
			if len(f.Names) == 0 {
				out = append(out, nil)
			}
			for _, n := range f.Names {
				out = append(out, info.Defs[n])
			}
		}
	}
	return out
}

// findSorted pre-scans the body for sort.*/slices.Sort* calls and records
// the re-ordered objects: a slice the function sorts cannot carry
// map-iteration order out, wherever in the body the sort sits.
func (st *funcState) findSorted() {
	ast.Inspect(st.fi.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok || (pkg.Name != "sort" && pkg.Name != "slices") {
			return true
		}
		if _, isPkg := st.fi.Pkg.Info.Uses[pkg].(*types.PkgName); !isPkg {
			return true
		}
		for _, arg := range call.Args {
			root := arg
			if u, isAddr := arg.(*ast.UnaryExpr); isAddr && u.Op == token.AND {
				root = u.X
			}
			if id := rootIdent(root); id != nil {
				if obj := identObj2(st.fi.Pkg, id); obj != nil {
					st.sorted[obj] = true
				}
			}
		}
		return true
	})
}

func identObj2(pkg *Package, id *ast.Ident) types.Object {
	if obj := pkg.Info.Defs[id]; obj != nil {
		return obj
	}
	return pkg.Info.Uses[id]
}

// converge iterates the body walk until the environment and summary stop
// growing (monotone: bounded by the label-set height).
func (st *funcState) converge() {
	for i := 0; i < 32; i++ {
		st.changed = false
		st.walk()
		if !st.changed {
			break
		}
	}
}

func (st *funcState) walk() {
	// Root the walk at the declaration, not the body, so the FuncDecl is on
	// the stack and enclosingFuncBody distinguishes the function's own
	// returns from a nested literal's.
	inspectWithStack(st.fi.Decl, func(n ast.Node, stack []ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			st.assign(s)
		case *ast.RangeStmt:
			st.rangeStmt(s)
		case *ast.ReturnStmt:
			// Only returns of THIS function: a nested literal's returns
			// describe the closure, not the declaration.
			if enclosingFuncBody(stack) == st.fi.Decl.Body {
				st.returnStmt(s)
			}
		case *ast.CallExpr:
			st.call(s)
		}
		return true
	})
}

func (st *funcState) mark(obj types.Object, t taint) {
	if obj == nil || t == 0 {
		return
	}
	if st.sorted[obj] {
		t &^= taintMapOrd
	}
	if st.env[obj]&t != t {
		st.env[obj] |= t
		st.changed = true
	}
}

func (st *funcState) assign(s *ast.AssignStmt) {
	var rhs []taint
	switch {
	case len(s.Lhs) == len(s.Rhs):
		for _, r := range s.Rhs {
			rhs = append(rhs, st.taintOf(r))
		}
	case len(s.Rhs) == 1:
		t := st.taintOf(s.Rhs[0])
		for range s.Lhs {
			rhs = append(rhs, t)
		}
	default:
		return
	}
	for i, lhs := range s.Lhs {
		st.store(lhs, rhs[i], s.Rhs[min(i, len(s.Rhs)-1)].Pos())
	}
}

// store propagates taint into an assignment destination, detecting
// schedule-output stores along the access path.
func (st *funcState) store(lhs ast.Expr, t taint, pos token.Pos) {
	if isBlank(lhs) {
		return
	}
	if st.waived(pos) {
		// Certified span: the stored value is declared order-independent,
		// so only the parameter labels (plain data flow) survive.
		t = t.params()
	}
	if id, ok := lhs.(*ast.Ident); ok {
		st.mark(identObj2(st.fi.Pkg, id), t)
		return
	}
	// Walk the access path: a store through a sink-typed prefix is a
	// schedule-output store. A map store keyed by the destination's own key
	// writes each slot exactly once, so map-order taint does not survive it.
	sink := false
	for e := lhs; ; {
		tt := st.fi.Pkg.Info.TypeOf(e)
		if tt != nil && isSinkType(tt) {
			sink = true
		}
		switch v := e.(type) {
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			if xt := st.fi.Pkg.Info.TypeOf(v.X); xt != nil {
				if _, isMap := xt.Underlying().(*types.Map); isMap {
					t &^= taintMapOrd
				}
			}
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		default:
			if id, ok := e.(*ast.Ident); ok {
				st.mark(identObj2(st.fi.Pkg, id), t)
			}
			goto done
		}
	}
done:
	if sink {
		st.sinkEvent(t, pos)
	}
}

// sinkEvent handles taint meeting a schedule output: sources are findings,
// parameter labels become summary obligations for the callers.
func (st *funcState) sinkEvent(t taint, pos token.Pos) {
	if st.waived(pos) {
		// A certified sink store imposes no obligation on callers either.
		return
	}
	if src := t.sources(); src != 0 && st.emit != nil {
		st.emit(pos, "value derived from %s reaches a schedule output; thread a seeded source or sort first (//vdce:ignore detflow <reason> to waive)", sourceLabel(src))
	}
	if p := t.params(); p != 0 && st.summary.sink&p != p {
		st.summary.sink |= p
		st.changed = true
	}
}

func (st *funcState) rangeStmt(s *ast.RangeStmt) {
	coll := st.taintOf(s.X)
	t := st.fi.Pkg.Info.TypeOf(s.X)
	overMap := false
	if t != nil {
		_, overMap = t.Underlying().(*types.Map)
	}
	keyT, valT := coll, coll
	if overMap {
		keyT |= taintMapOrd
		valT |= taintMapOrd
	}
	if s.Key != nil {
		if id, ok := s.Key.(*ast.Ident); ok {
			st.mark(identObj2(st.fi.Pkg, id), keyT)
		}
	}
	if s.Value != nil {
		if id, ok := s.Value.(*ast.Ident); ok {
			st.mark(identObj2(st.fi.Pkg, id), valT)
		}
	}
}

func (st *funcState) returnStmt(s *ast.ReturnStmt) {
	waived := st.waived(s.Pos())
	note := func(t taint) {
		if waived {
			t = t.params()
		}
		st.noteResult(t)
	}
	if len(s.Results) == 0 {
		// Bare return: named results carry whatever was assigned to them.
		if res := st.fi.Decl.Type.Results; res != nil {
			for _, f := range res.List {
				for _, n := range f.Names {
					if obj := st.fi.Pkg.Info.Defs[n]; obj != nil {
						note(st.env[obj])
					}
				}
			}
		}
		return
	}
	for _, r := range s.Results {
		note(st.taintOf(r))
	}
}

func (st *funcState) noteResult(t taint) {
	if st.summary.result&t != t {
		st.summary.result |= t
		st.changed = true
	}
}

// call computes a call's result taint, applying callee summaries and
// checking sink obligations; the return value is the taint of the call's
// results.
func (st *funcState) call(call *ast.CallExpr) taint {
	info := st.fi.Pkg.Info
	fun := ast.Unparen(call.Fun)
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		// Conversion. A pointer flattened to uintptr is identity escaping.
		t := st.taintOf(call.Args[0])
		if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Kind() == types.Uintptr {
			at := info.TypeOf(call.Args[0])
			if at != nil {
				switch at.Underlying().(type) {
				case *types.Pointer:
					t |= taintNondet
				case *types.Basic:
					if at.Underlying().(*types.Basic).Kind() == types.UnsafePointer {
						t |= taintNondet
					}
				}
			}
		}
		return t
	}
	if id, ok := fun.(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "append":
				var t taint
				for _, a := range call.Args {
					t |= st.taintOf(a)
				}
				return t
			case "len", "cap", "delete", "make", "new", "clear", "copy", "panic", "print", "println":
				return 0
			default:
				var t taint
				for _, a := range call.Args {
					t |= st.taintOf(a)
				}
				return t
			}
		}
	}

	site := st.d.pass.Prog.ResolveCall(st.fi.Pkg, call)
	args := st.callArgs(call)

	// Conservative default: the result joins every input.
	join := func() taint {
		var t taint
		for _, a := range args {
			t |= st.taintOf(a)
		}
		return t
	}
	if site == nil || site.Unresolved {
		return join()
	}

	var result taint
	resolvedAll := len(site.Callees) > 0
	for _, callee := range site.Callees {
		if src := nondetSource(callee, call, st.fi.Pkg); src != 0 {
			result |= src
			continue
		}
		if mapOrderKiller(callee) {
			// sort.* re-orders in place: handled by the sorted pre-scan.
			continue
		}
		sum := st.d.summaryOf(callee)
		if sum == nil {
			resolvedAll = false
			continue
		}
		// Map the callee's parameter labels onto this site's arguments.
		result |= sum.result.sources()
		for i, a := range args {
			at := st.taintOf(a)
			if sum.result.hasParam(i) {
				result |= at
			}
			if sum.sink.hasParam(i) {
				st.sinkEvent(at, a.Pos())
			}
		}
	}
	if !resolvedAll {
		result |= join()
	}
	return result
}

// callArgs lists a call's value inputs: the receiver (for method calls)
// followed by the arguments — index-aligned with paramObjects.
func (st *funcState) callArgs(call *ast.CallExpr) []ast.Expr {
	var out []ast.Expr
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s := st.fi.Pkg.Info.Selections[sel]; s != nil && s.Kind() == types.MethodVal {
			out = append(out, sel.X)
		}
	}
	return append(out, call.Args...)
}

// nondetSource classifies callee as a nondeterminism source at this site.
func nondetSource(callee *types.Func, call *ast.CallExpr, pkg *Package) taint {
	if callee == nil || callee.Pkg() == nil {
		return 0
	}
	path, name := callee.Pkg().Path(), callee.Name()
	sig, _ := callee.Type().(*types.Signature)
	pkgLevel := sig != nil && sig.Recv() == nil
	switch path {
	case "time":
		if pkgLevel && (name == "Now" || name == "Since" || name == "Until") {
			return taintNondet
		}
	case "math/rand", "math/rand/v2":
		if pkgLevel && name != "New" && name != "NewSource" && name != "NewZipf" && name != "NewPCG" && name != "NewChaCha8" && name != "Seed" {
			return taintNondet
		}
	case "reflect":
		if !pkgLevel && (name == "Pointer" || name == "UnsafeAddr" || name == "UnsafePointer") {
			return taintNondet
		}
	case "fmt":
		if pkgLevel && pointerFormat(call, pkg) {
			return taintNondet
		}
	}
	return 0
}

// pointerFormat reports whether a fmt call's constant format string prints
// pointer identity (%p).
func pointerFormat(call *ast.CallExpr, pkg *Package) bool {
	for _, a := range call.Args {
		tv, ok := pkg.Info.Types[a]
		if !ok || tv.Value == nil {
			continue
		}
		if s, err := strconv.Unquote(tv.Value.ExactString()); err == nil && strings.Contains(s, "%p") {
			return true
		}
	}
	return false
}

// mapOrderKiller reports whether callee re-orders its argument (sorting):
// map-iteration taint does not survive it.
func mapOrderKiller(callee *types.Func) bool {
	if callee == nil || callee.Pkg() == nil {
		return false
	}
	switch callee.Pkg().Path() {
	case "sort", "slices":
		return true
	}
	return false
}

// taintOf evaluates an expression's taint.
func (st *funcState) taintOf(e ast.Expr) taint {
	switch v := e.(type) {
	case *ast.Ident:
		if obj := identObj2(st.fi.Pkg, v); obj != nil {
			return st.env[obj]
		}
		return 0
	case nil:
		return 0
	case *ast.BasicLit, *ast.FuncLit:
		return 0
	case *ast.CallExpr:
		return st.call(v)
	case *ast.SelectorExpr:
		// Field read or method value: coarse — the root object's taint.
		return st.taintOf(v.X)
	case *ast.IndexExpr:
		return st.taintOf(v.X) | st.taintOf(v.Index)
	case *ast.IndexListExpr:
		return st.taintOf(v.X)
	case *ast.SliceExpr:
		t := st.taintOf(v.X)
		for _, ix := range []ast.Expr{v.Low, v.High, v.Max} {
			if ix != nil {
				t |= st.taintOf(ix)
			}
		}
		return t
	case *ast.StarExpr:
		return st.taintOf(v.X)
	case *ast.ParenExpr:
		return st.taintOf(v.X)
	case *ast.UnaryExpr:
		return st.taintOf(v.X)
	case *ast.BinaryExpr:
		return st.taintOf(v.X) | st.taintOf(v.Y)
	case *ast.CompositeLit:
		var t taint
		for _, elt := range v.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				t |= st.taintOf(kv.Value)
				continue
			}
			t |= st.taintOf(elt)
		}
		return t
	case *ast.TypeAssertExpr:
		return st.taintOf(v.X)
	}
	return 0
}
