// Package resource models the heterogeneous VDCE hosts and their dynamics.
//
// The paper's testbed was a campus network of heterogeneous workstations
// whose relevant properties reach the scheduler as numbers: architecture
// type, total/available memory, a per-task computing-power weight relative
// to a base processor, and a time-varying CPU load. This package supplies a
// synthetic but faithful stand-in: hosts with static attributes and an AR(1)
// background-load process, plus failure injection for the fault-tolerance
// paths (§2.3.1 "the machine is marked as down").
package resource

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
)

// Arch is an architecture type as stored in the resource-performance
// database's static attributes ("architecture type, OS type", §2).
type Arch string

// Architecture types used across the test environment.
const (
	ArchSolaris Arch = "solaris"
	ArchSGI     Arch = "sgi"
	ArchLinux   Arch = "linux"
	ArchAlpha   Arch = "alpha"
)

// HostSpec holds the static attributes of a VDCE machine, mirroring the
// resource-performance database's static part: host name, IP address,
// architecture type, OS type, and total memory size.
type HostSpec struct {
	Name        string
	Site        string
	IPAddr      string
	Arch        Arch
	OSType      string
	TotalMemory int64 // bytes

	// SpeedFactor is the machine's raw computing power relative to the
	// base processor (1.0 = base). Effective per-task weights are derived
	// from it by the trial-run machinery in internal/predict.
	SpeedFactor float64
}

// LoadModel parameterises the synthetic background-load process.
type LoadModel struct {
	Baseline   float64 // long-run mean load, e.g. 0.3
	Volatility float64 // noise magnitude per step
	Rho        float64 // AR(1) persistence in [0,1)
}

// DefaultLoadModel is a moderately loaded shared workstation.
var DefaultLoadModel = LoadModel{Baseline: 0.3, Volatility: 0.1, Rho: 0.8}

// Host is a simulated VDCE machine: static spec plus mutable dynamic state
// (load, available memory, up/down). All methods are safe for concurrent
// use; the Monitor daemon, Application Controller, and Data Manager all
// touch the same host.
type Host struct {
	Spec HostSpec

	mu        sync.Mutex
	rng       *rand.Rand
	model     LoadModel
	bgLoad    float64 // background load from other users (AR(1))
	taskLoad  float64 // load contributed by VDCE tasks running here
	usedMem   int64
	down      bool
	completed int // tasks completed, for bookkeeping/visualisation
}

// NewHost creates a host with the given spec, load model, and deterministic
// seed for the background-load process.
func NewHost(spec HostSpec, model LoadModel, seed int64) *Host {
	if spec.SpeedFactor <= 0 {
		spec.SpeedFactor = 1
	}
	h := &Host{
		Spec:   spec,
		rng:    rand.New(rand.NewSource(seed)),
		model:  model,
		bgLoad: model.Baseline,
	}
	return h
}

// StepLoad advances the background-load process one tick and returns the new
// total load. The Monitor daemon calls this on its measurement period.
func (h *Host) StepLoad() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	m := h.model
	noise := h.rng.NormFloat64() * m.Volatility
	h.bgLoad = m.Rho*h.bgLoad + (1-m.Rho)*m.Baseline + noise
	if h.bgLoad < 0 {
		h.bgLoad = 0
	}
	return h.bgLoad + h.taskLoad
}

// Load returns the current total CPU load (background + VDCE tasks).
func (h *Host) Load() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.bgLoad + h.taskLoad
}

// AvailableMemory returns total memory minus memory claimed by running tasks.
func (h *Host) AvailableMemory() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.Spec.TotalMemory - h.usedMem
}

// BeginTask registers a running task: one load unit and mem bytes claimed.
// It returns an error if the host is down or memory is insufficient.
func (h *Host) BeginTask(mem int64) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.down {
		return fmt.Errorf("resource: host %s is down", h.Spec.Name)
	}
	if h.usedMem+mem > h.Spec.TotalMemory {
		return fmt.Errorf("resource: host %s out of memory (%d used, %d requested, %d total)",
			h.Spec.Name, h.usedMem, mem, h.Spec.TotalMemory)
	}
	h.usedMem += mem
	h.taskLoad++
	return nil
}

// EndTask releases what BeginTask claimed.
func (h *Host) EndTask(mem int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.usedMem -= mem
	if h.usedMem < 0 {
		h.usedMem = 0
	}
	h.taskLoad--
	if h.taskLoad < 0 {
		h.taskLoad = 0
	}
	h.completed++
}

// Completed returns how many tasks have finished on this host.
func (h *Host) Completed() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.completed
}

// SetDown marks the host failed (true) or repaired (false).
func (h *Host) SetDown(down bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.down = down
}

// IsDown reports the failure state.
func (h *Host) IsDown() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.down
}

// EffectiveSeconds converts a base-processor cost into wall seconds on this
// host under its current load: cost × weight × (1 + load). weight is the
// task-specific computing-power weight relative to the base processor
// (weight < 1 ⇒ faster than base). This is the ground-truth execution model
// the prediction functions in internal/predict try to approximate.
func (h *Host) EffectiveSeconds(baseCost, weight float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	load := h.bgLoad + h.taskLoad
	return baseCost * weight * (1 + load)
}

// Pool is a named collection of hosts belonging to one site, with stable
// iteration order and group assignment (the paper's Group Manager owns a
// group of hosts with a group-leader machine).
type Pool struct {
	mu    sync.RWMutex
	hosts map[string]*Host
	order []string
}

// NewPool returns an empty host pool.
func NewPool() *Pool {
	return &Pool{hosts: make(map[string]*Host)}
}

// Add inserts a host; duplicate names are rejected.
func (p *Pool) Add(h *Host) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.hosts[h.Spec.Name]; ok {
		return fmt.Errorf("resource: duplicate host %q", h.Spec.Name)
	}
	p.hosts[h.Spec.Name] = h
	p.order = append(p.order, h.Spec.Name)
	sort.Strings(p.order)
	return nil
}

// Get returns the named host or nil.
func (p *Pool) Get(name string) *Host {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.hosts[name]
}

// Names returns all host names in sorted order.
func (p *Pool) Names() []string {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return append([]string(nil), p.order...)
}

// Hosts returns all hosts in name order.
func (p *Pool) Hosts() []*Host {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make([]*Host, 0, len(p.order))
	for _, n := range p.order {
		out = append(out, p.hosts[n])
	}
	return out
}

// Up returns the hosts currently not marked down.
func (p *Pool) Up() []*Host {
	var out []*Host
	for _, h := range p.Hosts() {
		if !h.IsDown() {
			out = append(out, h)
		}
	}
	return out
}

// Len returns the number of hosts.
func (p *Pool) Len() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.hosts)
}

// GenerateSite builds a pool of n heterogeneous hosts for the given site
// name, cycling through architecture types and spreading speed factors in
// [1, spread]. Deterministic for a given seed.
func GenerateSite(site string, n int, spread float64, seed int64) *Pool {
	if spread < 1 {
		spread = 1
	}
	rng := rand.New(rand.NewSource(seed))
	archs := []Arch{ArchSolaris, ArchSGI, ArchLinux, ArchAlpha}
	oses := map[Arch]string{ArchSolaris: "SunOS", ArchSGI: "IRIX", ArchLinux: "Linux", ArchAlpha: "OSF1"}
	pool := NewPool()
	for i := 0; i < n; i++ {
		arch := archs[i%len(archs)]
		speed := 1 + rng.Float64()*(spread-1)
		spec := HostSpec{
			Name:        fmt.Sprintf("%s-node%02d", site, i),
			Site:        site,
			IPAddr:      fmt.Sprintf("10.%d.0.%d", len(site)%255, i+1),
			Arch:        arch,
			OSType:      oses[arch],
			TotalMemory: int64(64+rng.Intn(4)*64) << 20, // 64–256 MB, 1997-flavoured
			SpeedFactor: speed,
		}
		model := LoadModel{
			Baseline:   0.1 + rng.Float64()*0.5,
			Volatility: 0.05 + rng.Float64()*0.15,
			Rho:        0.7 + rng.Float64()*0.25,
		}
		h := NewHost(spec, model, rng.Int63())
		if err := pool.Add(h); err != nil {
			panic(err) // names are generated unique; unreachable
		}
	}
	return pool
}
