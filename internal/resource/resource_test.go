package resource

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func testHost(seed int64) *Host {
	return NewHost(HostSpec{
		Name: "h1", Site: "syracuse", Arch: ArchSolaris,
		TotalMemory: 1 << 20, SpeedFactor: 2,
	}, DefaultLoadModel, seed)
}

func TestNewHostDefaultsSpeed(t *testing.T) {
	h := NewHost(HostSpec{Name: "x"}, DefaultLoadModel, 1)
	if h.Spec.SpeedFactor != 1 {
		t.Fatalf("speed = %v", h.Spec.SpeedFactor)
	}
}

func TestStepLoadStaysNonNegative(t *testing.T) {
	h := NewHost(HostSpec{Name: "x"}, LoadModel{Baseline: 0.05, Volatility: 0.5, Rho: 0.1}, 7)
	for i := 0; i < 1000; i++ {
		if l := h.StepLoad(); l < 0 {
			t.Fatalf("negative load %v at step %d", l, i)
		}
	}
}

func TestStepLoadTracksBaseline(t *testing.T) {
	h := NewHost(HostSpec{Name: "x"}, LoadModel{Baseline: 0.6, Volatility: 0.01, Rho: 0.5}, 3)
	var sum float64
	const n = 5000
	for i := 0; i < n; i++ {
		sum += h.StepLoad()
	}
	mean := sum / n
	if math.Abs(mean-0.6) > 0.1 {
		t.Fatalf("mean load %v, want ≈0.6", mean)
	}
}

func TestBeginEndTaskAccounting(t *testing.T) {
	h := testHost(1)
	if err := h.BeginTask(512 << 10); err != nil {
		t.Fatal(err)
	}
	if got := h.AvailableMemory(); got != (1<<20)-(512<<10) {
		t.Fatalf("avail = %d", got)
	}
	if h.Load() < 1 {
		t.Fatalf("task load not reflected: %v", h.Load())
	}
	h.EndTask(512 << 10)
	if got := h.AvailableMemory(); got != 1<<20 {
		t.Fatalf("avail after end = %d", got)
	}
	if h.Completed() != 1 {
		t.Fatalf("completed = %d", h.Completed())
	}
}

func TestBeginTaskOutOfMemory(t *testing.T) {
	h := testHost(2)
	if err := h.BeginTask(2 << 20); err == nil {
		t.Fatal("expected out-of-memory error")
	}
}

func TestBeginTaskOnDownHost(t *testing.T) {
	h := testHost(3)
	h.SetDown(true)
	if err := h.BeginTask(1); err == nil {
		t.Fatal("expected error on down host")
	}
	h.SetDown(false)
	if err := h.BeginTask(1); err != nil {
		t.Fatal(err)
	}
}

func TestEndTaskClampsAtZero(t *testing.T) {
	h := testHost(4)
	h.EndTask(100) // never began
	if h.AvailableMemory() != 1<<20 {
		t.Fatal("memory went negative-used")
	}
	if h.Load() < 0 {
		t.Fatal("load went negative")
	}
}

func TestEffectiveSecondsScalesWithLoad(t *testing.T) {
	h := NewHost(HostSpec{Name: "x", TotalMemory: 1 << 30}, LoadModel{}, 5)
	idle := h.EffectiveSeconds(10, 2)
	if math.Abs(idle-20) > 1e-9 { // 10 × 2 × (1+0)
		t.Fatalf("idle = %v", idle)
	}
	if err := h.BeginTask(0); err != nil {
		t.Fatal(err)
	}
	busy := h.EffectiveSeconds(10, 2)
	if math.Abs(busy-40) > 1e-9 { // 10 × 2 × (1+1)
		t.Fatalf("busy = %v", busy)
	}
}

func TestConcurrentHostAccess(t *testing.T) {
	h := NewHost(HostSpec{Name: "x", TotalMemory: 1 << 30}, DefaultLoadModel, 6)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				if err := h.BeginTask(1024); err == nil {
					h.StepLoad()
					h.EndTask(1024)
				}
			}
		}()
	}
	wg.Wait()
	if h.AvailableMemory() != 1<<30 {
		t.Fatalf("memory leaked: %d", h.AvailableMemory())
	}
	if h.Completed() != 16*200 {
		t.Fatalf("completed = %d", h.Completed())
	}
}

func TestPoolAddDuplicate(t *testing.T) {
	p := NewPool()
	if err := p.Add(testHost(1)); err != nil {
		t.Fatal(err)
	}
	if err := p.Add(testHost(2)); err == nil {
		t.Fatal("expected duplicate error")
	}
}

func TestPoolOrderAndUp(t *testing.T) {
	p := GenerateSite("rome", 6, 4, 11)
	names := p.Names()
	if len(names) != 6 {
		t.Fatalf("names = %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names unsorted: %v", names)
		}
	}
	p.Get(names[2]).SetDown(true)
	up := p.Up()
	if len(up) != 5 {
		t.Fatalf("up = %d", len(up))
	}
	for _, h := range up {
		if h.Spec.Name == names[2] {
			t.Fatal("down host included in Up()")
		}
	}
}

func TestGenerateSiteDeterministic(t *testing.T) {
	a := GenerateSite("syr", 8, 4, 99)
	b := GenerateSite("syr", 8, 4, 99)
	for _, name := range a.Names() {
		ha, hb := a.Get(name), b.Get(name)
		if ha.Spec != hb.Spec {
			t.Fatalf("specs differ for %s: %+v vs %+v", name, ha.Spec, hb.Spec)
		}
	}
}

func TestGenerateSiteSpreadClamped(t *testing.T) {
	p := GenerateSite("x", 4, 0.1, 1)
	for _, h := range p.Hosts() {
		if h.Spec.SpeedFactor < 1 || h.Spec.SpeedFactor > 1.0001 {
			t.Fatalf("speed %v outside clamped spread", h.Spec.SpeedFactor)
		}
	}
}

// Property: speed factors land in [1, spread] and memory is one of the
// generated sizes.
func TestPropertyGenerateSiteBounds(t *testing.T) {
	f := func(seed int64) bool {
		p := GenerateSite("s", 10, 8, seed)
		for _, h := range p.Hosts() {
			if h.Spec.SpeedFactor < 1 || h.Spec.SpeedFactor > 8 {
				return false
			}
			mb := h.Spec.TotalMemory >> 20
			if mb < 64 || mb > 256 {
				return false
			}
			if h.Spec.Site != "s" {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
