// Package runtime implements the VDCE Runtime System's application
// execution plane (paper §2.3): the Application Controller sets up the
// execution environment for a scheduled application (activating Data
// Managers, creating point-to-point communication channels, collecting
// acknowledgements, and releasing the execution startup signal — Fig 7),
// runs every task on its assigned machine, and maintains the performance
// and fault-tolerance requirements: a task on an overloaded or failed host
// is terminated and rescheduled through the Group Manager (§2.3.1).
package runtime

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/afg"
	"repro/internal/datamgr"
	"repro/internal/netsim"
	"repro/internal/resource"
	"repro/internal/scheduler"
	"repro/internal/tasklib"
)

// Common errors.
var (
	ErrUnknownHost    = errors.New("runtime: assignment names unknown host")
	ErrHostFailed     = errors.New("runtime: host failed")
	ErrOverloaded     = errors.New("runtime: host over QoS load threshold")
	ErrNoReschedule   = errors.New("runtime: no rescheduler available")
	ErrTooManyRetries = errors.New("runtime: task exceeded retry budget")
)

// TaskResult records one task's execution outcome.
type TaskResult struct {
	Task     afg.TaskID
	Host     string
	Site     string
	Started  time.Time     // when the task left the input-gather barrier
	Elapsed  time.Duration // placement attempts + execution
	Attempts int           // 1 = no rescheduling was needed
	Err      error
}

// Result is a completed application execution.
type Result struct {
	App             string
	Outputs         map[afg.TaskID]tasklib.Value
	TaskResults     map[afg.TaskID]TaskResult
	Makespan        time.Duration
	Rescheduled     int // number of per-task reschedule events
	FrontierReplans int // number of whole-frontier re-plan events
}

// Rescheduler supplies a fresh assignment when a task's host is failed or
// overloaded — the paper's "sends a task rescheduling request to the Group
// Manager". exclude lists hosts already tried.
type Rescheduler func(ctx context.Context, id afg.TaskID, exclude []string) (scheduler.Assignment, error)

// FrontierReplan re-plans every not-yet-started task after a host failure —
// the Group Manager's frontier rescheduling path (§2.3.1), backed by a
// scheduler.Replanner. settled lists tasks whose placements must be
// preserved (started or finished); the returned map carries the new
// assignments for the unstarted frontier. An error falls back to the
// per-task Rescheduler.
type FrontierReplan func(ctx context.Context, g *afg.Graph, table *scheduler.AllocationTable, settled map[afg.TaskID]bool, failedHost string) (map[afg.TaskID]scheduler.Assignment, error)

// Options configures an execution.
type Options struct {
	// Registry resolves task functions; nil uses tasklib.Default().
	Registry *tasklib.Registry
	// Hosts resolves a host name from the allocation table to its
	// simulated machine. Required.
	Hosts func(name string) *resource.Host
	// Net injects WAN delays on cross-site transfers (socket mode) and is
	// informational otherwise. May be nil.
	Net *netsim.Network
	// Gate is the console service; nil means never paused.
	Gate *datamgr.Gate
	// UseSockets ships inter-task values through Data Manager
	// communication proxies (real TCP). False hands values over in
	// memory — the fast path for scheduler-focused experiments.
	UseSockets bool
	// LoadThreshold is the QoS bound: a task landing on a host whose
	// current load exceeds it is rescheduled ("If the current load on any
	// of these machines is more than a predefined threshold value").
	// 0 disables the check.
	LoadThreshold float64
	// Reschedule handles failed/overloaded placements; nil fails the task.
	Reschedule Rescheduler
	// FrontierReplan, if set, re-plans the whole unstarted frontier when a
	// host fails, before the per-task Reschedule fallback patches the one
	// failing task. At most one frontier re-plan fires per failed host.
	FrontierReplan FrontierReplan
	// Deviations, if set, feeds monitor-reported failed-host names into the
	// execution: each received host triggers a frontier re-plan even before
	// any of this application's tasks touches the dead host. The channel is
	// drained until closed or the execution ends.
	Deviations <-chan string
	// RemoteExec runs a task whose assigned host is not locally
	// resolvable — the cross-site execution path: the local Application
	// Controller forwards the invocation to the owning site's Manager
	// (over RPC in multi-process deployments). nil means unresolvable
	// hosts are an error.
	RemoteExec func(ctx context.Context, assign scheduler.Assignment, task *afg.Task, inputs []tasklib.Value) (tasklib.Value, error)
	// MaxAttempts bounds placements per task (0 = 3).
	MaxAttempts int
	// OnTaskDone, if set, observes each task completion (visualization
	// service feed).
	OnTaskDone func(TaskResult)
}

type taskOutcome struct {
	id  afg.TaskID
	val tasklib.Value
	res TaskResult
}

// Execute runs a scheduled application to completion.
func Execute(ctx context.Context, g *afg.Graph, table *scheduler.AllocationTable, opts Options) (*Result, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if opts.Hosts == nil {
		return nil, fmt.Errorf("runtime: Options.Hosts is required")
	}
	if opts.Registry == nil {
		opts.Registry = tasklib.Default()
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = 3
	}
	for _, id := range g.TaskIDs() {
		if _, ok := table.Get(id); !ok {
			return nil, fmt.Errorf("runtime: task %q missing from allocation table", id)
		}
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	env, err := newExecEnv(g, table, opts)
	if err != nil {
		return nil, err
	}
	defer env.close()

	if opts.Deviations != nil {
		go func() {
			for {
				select {
				case h, ok := <-opts.Deviations:
					if !ok {
						return
					}
					env.frontierReplan(ctx, h)
				case <-ctx.Done():
					return
				}
			}
		}()
	}

	start := time.Now()
	outcomes := make(chan taskOutcome, g.Len())
	var wg sync.WaitGroup
	for _, id := range g.TaskIDs() {
		wg.Add(1)
		go func(id afg.TaskID) {
			defer wg.Done()
			env.runTask(ctx, id, outcomes)
		}(id)
	}
	go func() {
		wg.Wait()
		close(outcomes)
	}()

	res := &Result{
		App:         g.Name,
		Outputs:     make(map[afg.TaskID]tasklib.Value, g.Len()),
		TaskResults: make(map[afg.TaskID]TaskResult, g.Len()),
	}
	var firstErr error
	for o := range outcomes {
		res.TaskResults[o.id] = o.res
		res.Rescheduled += o.res.Attempts - 1
		if o.res.Err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("task %q: %w", o.id, o.res.Err)
				cancel() // abort the rest of the application
			}
			continue
		}
		res.Outputs[o.id] = o.val
		if opts.OnTaskDone != nil {
			opts.OnTaskDone(o.res)
		}
	}
	res.Makespan = time.Since(start)
	res.FrontierReplans = env.replanCount()
	if firstErr != nil {
		return res, firstErr
	}
	return res, nil
}

// execEnv is the per-application execution environment (Fig 7): the wiring
// that moves values between tasks, in memory or through sockets.
type execEnv struct {
	g     *afg.Graph
	table *scheduler.AllocationTable
	opts  Options

	// Live placement state: the current assignment per task (frontier
	// re-plans move unstarted entries), which tasks have started (settled,
	// not movable), and which failed hosts already triggered a re-plan.
	mu        sync.Mutex
	cur       map[afg.TaskID]scheduler.Assignment
	started   map[afg.TaskID]bool
	replanned map[string]bool
	replans   int

	// in-memory mode: one buffered channel per link.
	mem map[afg.Link]chan tasklib.Value

	// socket mode: one communication proxy per task.
	proxies map[afg.TaskID]*datamgr.Proxy
}

func newExecEnv(g *afg.Graph, table *scheduler.AllocationTable, opts Options) (*execEnv, error) {
	env := &execEnv{
		g: g, table: table, opts: opts,
		cur:       make(map[afg.TaskID]scheduler.Assignment, g.Len()),
		started:   make(map[afg.TaskID]bool, g.Len()),
		replanned: make(map[string]bool),
	}
	for _, id := range g.TaskIDs() {
		a, _ := table.Get(id)
		env.cur[id] = a
	}
	if !opts.UseSockets {
		env.mem = make(map[afg.Link]chan tasklib.Value)
		for _, l := range g.Links() {
			env.mem[l] = make(chan tasklib.Value, 1)
		}
		return env, nil
	}
	// Phase 1 (Fig 7 steps 1–2): activate a Data Manager proxy per task.
	env.proxies = make(map[afg.TaskID]*datamgr.Proxy, g.Len())
	for _, id := range g.TaskIDs() {
		a, _ := table.Get(id)
		p, err := datamgr.NewProxy(string(id), a.Site, opts.Net)
		if err != nil {
			env.close()
			return nil, err
		}
		env.proxies[id] = p
	}
	// Phase 2 (steps 3–4): create point-to-point channels parent→child and
	// collect the acknowledgements; ConnectTo returning nil is the ACK.
	for _, l := range g.Links() {
		child := env.proxies[l.To]
		ca, _ := table.Get(l.To)
		if err := env.proxies[l.From].ConnectTo(datamgr.PeerInfo{
			Task: string(l.To),
			Addr: child.Addr(),
			Site: ca.Site,
		}); err != nil {
			env.close()
			return nil, fmt.Errorf("runtime: channel setup %s->%s: %w", l.From, l.To, err)
		}
	}
	// All ACKs in: the caller proceeding to runTask goroutines is the
	// execution startup signal (step 5).
	return env, nil
}

// claim marks the task started and returns its current assignment — which a
// frontier re-plan may have moved since the table was multicast.
func (e *execEnv) claim(id afg.TaskID) scheduler.Assignment {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.started[id] = true
	return e.cur[id]
}

// release returns a killed task to the frontier: its result is lost, so a
// re-plan is free to move it.
func (e *execEnv) release(id afg.TaskID) {
	e.mu.Lock()
	defer e.mu.Unlock()
	delete(e.started, id)
}

// frontierReplan fires at most one frontier re-plan per failed host and
// installs the new assignments for every still-unstarted task. It reports
// whether a re-plan (this one or an earlier one for the same host) ran, so
// the caller knows to re-read its assignment before falling back to the
// per-task path.
func (e *execEnv) frontierReplan(ctx context.Context, host string) bool {
	if e.opts.FrontierReplan == nil {
		return false
	}
	e.mu.Lock()
	if e.replanned[host] {
		e.mu.Unlock()
		return true
	}
	e.replanned[host] = true
	settled := make(map[afg.TaskID]bool, len(e.started))
	for id := range e.started {
		settled[id] = true
	}
	e.mu.Unlock()
	moved, err := e.opts.FrontierReplan(ctx, e.g, e.table, settled, host)
	if err != nil || len(moved) == 0 {
		return false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.replans++
	for id, a := range moved {
		if !e.started[id] {
			e.cur[id] = a
		}
	}
	return true
}

func (e *execEnv) replanCount() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.replans
}

func (e *execEnv) close() {
	ids := make([]afg.TaskID, 0, len(e.proxies))
	for id := range e.proxies {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		e.proxies[id].Close()
	}
}

// gatherInputs blocks until all parent values have arrived, returning them
// in deterministic parent-link order.
func (e *execEnv) gatherInputs(ctx context.Context, id afg.TaskID) ([]tasklib.Value, error) {
	parents := e.g.Parents(id)
	if len(parents) == 0 {
		return nil, nil
	}
	if !e.opts.UseSockets {
		vals := make([]tasklib.Value, len(parents))
		for i, l := range parents {
			select {
			case v := <-e.mem[l]:
				vals[i] = v
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		return vals, nil
	}
	proxy := e.proxies[id]
	byFrom := make(map[string]tasklib.Value, len(parents))
	type recvResult struct {
		m  datamgr.Message
		ok bool
	}
	for len(byFrom) < len(parents) {
		ch := make(chan recvResult, 1)
		go func() {
			m, ok := proxy.Recv()
			ch <- recvResult{m, ok}
		}()
		select {
		case r := <-ch:
			if !r.ok {
				return nil, fmt.Errorf("runtime: channel closed while gathering inputs for %q", id)
			}
			v, err := tasklib.DecodeValue(r.m.Payload)
			if err != nil {
				return nil, err
			}
			byFrom[r.m.From] = v
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	vals := make([]tasklib.Value, len(parents))
	for i, l := range parents {
		vals[i] = byFrom[string(l.From)]
	}
	return vals, nil
}

// deliver sends a task's output to all its children.
func (e *execEnv) deliver(ctx context.Context, id afg.TaskID, v tasklib.Value) error {
	children := e.g.Children(id)
	if !e.opts.UseSockets {
		for _, l := range children {
			select {
			case e.mem[l] <- v:
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		return nil
	}
	payload, err := v.Encode()
	if err != nil {
		return err
	}
	proxy := e.proxies[id]
	for _, l := range children {
		if err := proxy.Send(string(l.To), payload); err != nil {
			return err
		}
	}
	return nil
}

// runTask executes one task: gather inputs, wait at the console gate, pick
// (and if necessary re-pick) a host, run the function, deliver outputs.
func (e *execEnv) runTask(ctx context.Context, id afg.TaskID, out chan<- taskOutcome) {
	task := e.g.Task(id)
	res := TaskResult{Task: id}
	fail := func(err error) {
		res.Err = err
		out <- taskOutcome{id: id, res: res}
	}

	inputs, err := e.gatherInputs(ctx, id)
	if err != nil {
		fail(err)
		return
	}
	if e.opts.Gate != nil {
		if err := e.opts.Gate.Wait(ctx); err != nil {
			fail(err)
			return
		}
	}

	assign := e.claim(id)
	var tried []string
	begin := time.Now()
	res.Started = begin
	for attempt := 1; ; attempt++ {
		res.Attempts = attempt
		if attempt > e.opts.MaxAttempts {
			fail(fmt.Errorf("%w (%d attempts, hosts %v)", ErrTooManyRetries, attempt-1, tried))
			return
		}
		host := e.opts.Hosts(assign.Host)
		if host == nil {
			if e.opts.RemoteExec == nil {
				fail(fmt.Errorf("%w: %q", ErrUnknownHost, assign.Host))
				return
			}
			val, err := e.opts.RemoteExec(ctx, assign, task, inputs)
			if err != nil {
				fail(fmt.Errorf("runtime: remote execution on %s/%s: %w", assign.Site, assign.Host, err))
				return
			}
			res.Host = assign.Host
			res.Site = assign.Site
			res.Elapsed = time.Since(begin)
			if err := e.deliver(ctx, id, val); err != nil {
				fail(err)
				return
			}
			out <- taskOutcome{id: id, val: val, res: res}
			return
		}
		placeErr := e.checkPlacement(host)
		if placeErr == nil {
			val, runErr := e.runOn(ctx, host, task, inputs)
			if runErr == nil && host.IsDown() {
				// The host died while the task ran: its result is lost,
				// exactly the failure Fig 6's keep-alive packets detect.
				runErr = ErrHostFailed
			}
			if runErr == nil {
				res.Host = assign.Host
				res.Site = assign.Site
				res.Elapsed = time.Since(begin)
				if err := e.deliver(ctx, id, val); err != nil {
					fail(err)
					return
				}
				out <- taskOutcome{id: id, val: val, res: res}
				return
			}
			if !errors.Is(runErr, ErrHostFailed) {
				fail(runErr) // genuine task error: no point rescheduling
				return
			}
			placeErr = runErr
		}
		// Host unusable: request rescheduling. A dead host first gets one
		// frontier re-plan (repairing every unstarted task in one pass);
		// if that moved this task, retry on the new placement, otherwise
		// fall through to the per-task path.
		tried = append(tried, assign.Host)
		if errors.Is(placeErr, ErrHostFailed) {
			e.release(id)
			if e.frontierReplan(ctx, assign.Host) {
				if na := e.claim(id); na.Host != assign.Host {
					assign = na
					continue
				}
			} else {
				e.claim(id) // no re-plan ran: re-settle under the old slot
			}
		}
		if e.opts.Reschedule == nil {
			fail(fmt.Errorf("%w: host %s: %v", ErrNoReschedule, assign.Host, placeErr))
			return
		}
		na, err := e.opts.Reschedule(ctx, id, tried)
		if err != nil {
			fail(fmt.Errorf("runtime: reschedule %q: %w", id, err))
			return
		}
		assign = na
	}
}

// checkPlacement enforces the Application Controller's QoS checks before a
// task starts on a host.
func (e *execEnv) checkPlacement(h *resource.Host) error {
	if h.IsDown() {
		return ErrHostFailed
	}
	if e.opts.LoadThreshold > 0 && h.Load() > e.opts.LoadThreshold {
		return ErrOverloaded
	}
	return nil
}

// runOn claims the host, executes the task function, and releases the host.
func (e *execEnv) runOn(ctx context.Context, h *resource.Host, task *afg.Task, inputs []tasklib.Value) (tasklib.Value, error) {
	if err := h.BeginTask(task.MemReq); err != nil {
		return tasklib.Value{}, fmt.Errorf("%w: %v", ErrHostFailed, err)
	}
	defer h.EndTask(task.MemReq)
	procs := 1
	if task.Mode == afg.Parallel {
		procs = task.Processors
	}
	return e.opts.Registry.Execute(ctx, task.Function, tasklib.Args{
		Params:     task.Params,
		Inputs:     inputs,
		Processors: procs,
	})
}

// ExitOutputs filters a result down to the graph's exit-task outputs — the
// values the I/O/visualization services present to the user.
func ExitOutputs(g *afg.Graph, r *Result) map[afg.TaskID]tasklib.Value {
	out := make(map[afg.TaskID]tasklib.Value)
	var exits []afg.TaskID
	exits = append(exits, g.Exits()...)
	sort.Slice(exits, func(i, j int) bool { return exits[i] < exits[j] })
	for _, id := range exits {
		if v, ok := r.Outputs[id]; ok {
			out[id] = v
		}
	}
	return out
}
