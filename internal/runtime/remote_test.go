package runtime

import (
	"context"
	"errors"
	"sync"
	"testing"

	"repro/internal/afg"
	"repro/internal/scheduler"
	"repro/internal/tasklib"
)

// TestRemoteExecPath exercises the cross-site execution hook: hosts the
// resolver does not know are forwarded to RemoteExec with the gathered
// inputs in parent order.
func TestRemoteExecPath(t *testing.T) {
	g := linSolverGraph(t, 16)
	_, resolve := testCluster(1) // only host "A" exists locally
	table := scheduler.NewAllocationTable(g.Name)
	for i, id := range g.TaskIDs() {
		host := "A"
		site := "syr"
		if i%2 == 1 {
			host = "remote-host"
			site = "rome"
		}
		table.Set(scheduler.Assignment{Task: id, Site: site, Host: host})
	}
	reg := tasklib.Default()
	var mu sync.Mutex
	remoteRuns := 0
	res, err := Execute(context.Background(), g, table, Options{
		Hosts: resolve,
		RemoteExec: func(ctx context.Context, assign scheduler.Assignment, task *afg.Task, inputs []tasklib.Value) (tasklib.Value, error) {
			mu.Lock()
			remoteRuns++
			mu.Unlock()
			procs := 1
			if task.Mode == afg.Parallel {
				procs = task.Processors
			}
			return reg.Execute(ctx, task.Function, tasklib.Args{
				Params: task.Params, Inputs: inputs, Processors: procs,
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if remoteRuns == 0 {
		t.Fatal("remote exec never invoked")
	}
	if res.Outputs["check"].Scalar > 1e-8 {
		t.Fatalf("residual = %v", res.Outputs["check"].Scalar)
	}
	for id, tr := range res.TaskResults {
		want := table.Entries[id]
		if tr.Host != want.Host || tr.Site != want.Site {
			t.Fatalf("task %s result %+v does not match assignment %+v", id, tr, want)
		}
	}
}

func TestRemoteExecErrorFailsTask(t *testing.T) {
	g := afg.New("one")
	g.AddTask(&afg.Task{ID: "t", Function: "synthetic.noop"})
	_, resolve := testCluster(1)
	table := scheduler.NewAllocationTable(g.Name)
	table.Set(scheduler.Assignment{Task: "t", Site: "rome", Host: "nowhere"})
	boom := errors.New("wire cut")
	_, err := Execute(context.Background(), g, table, Options{
		Hosts: resolve,
		RemoteExec: func(ctx context.Context, a scheduler.Assignment, task *afg.Task, in []tasklib.Value) (tasklib.Value, error) {
			return tasklib.Value{}, boom
		},
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestSocketModeWithFailureRescheduling(t *testing.T) {
	// Sockets + failure + rescheduling together: the communication
	// proxies must keep working when a task moves host.
	g := linSolverGraph(t, 8)
	hosts, resolve := testCluster(2)
	hosts["A"].SetDown(true)
	table := spreadTable(g, []string{"A"})
	res, err := Execute(context.Background(), g, table, Options{
		Hosts:      resolve,
		UseSockets: true,
		Reschedule: func(ctx context.Context, id afg.TaskID, exclude []string) (scheduler.Assignment, error) {
			return scheduler.Assignment{Task: id, Site: "syr", Host: "B"}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rescheduled != 5 {
		t.Fatalf("rescheduled = %d", res.Rescheduled)
	}
	if res.Outputs["check"].Scalar > 1e-8 {
		t.Fatalf("residual = %v", res.Outputs["check"].Scalar)
	}
}

func TestConcurrentApplications(t *testing.T) {
	// Several applications share the same host pool concurrently; host
	// accounting must stay balanced and results correct.
	hosts, resolve := testCluster(4)
	const apps = 6
	var wg sync.WaitGroup
	errs := make([]error, apps)
	for i := 0; i < apps; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			g := linSolverGraph(t, 12)
			table := spreadTable(g, []string{"A", "B", "C", "D"})
			res, err := Execute(context.Background(), g, table, Options{Hosts: resolve})
			if err != nil {
				errs[i] = err
				return
			}
			if res.Outputs["check"].Scalar > 1e-8 {
				errs[i] = errors.New("bad residual")
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("app %d: %v", i, err)
		}
	}
	for name, h := range hosts {
		if h.Load() != 0 {
			t.Fatalf("host %s load leaked: %v", name, h.Load())
		}
	}
}
