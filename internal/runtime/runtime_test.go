package runtime

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/afg"
	"repro/internal/datamgr"
	"repro/internal/resource"
	"repro/internal/scheduler"
	"repro/internal/tasklib"
)

// testCluster builds n hosts and a resolver.
func testCluster(n int) (map[string]*resource.Host, func(string) *resource.Host) {
	hosts := map[string]*resource.Host{}
	for i := 0; i < n; i++ {
		name := string(rune('A' + i))
		hosts[name] = resource.NewHost(resource.HostSpec{
			Name: name, Site: "syr", TotalMemory: 1 << 30, SpeedFactor: 1,
		}, resource.LoadModel{}, int64(i))
	}
	return hosts, func(name string) *resource.Host { return hosts[name] }
}

// linSolverGraph builds the paper's Fig 3 linear equation solver AFG.
func linSolverGraph(t *testing.T, n int) *afg.Graph {
	t.Helper()
	g := afg.New("linsolver")
	add := func(id afg.TaskID, fn string, params map[string]string) {
		if err := g.AddTask(&afg.Task{ID: id, Function: fn, Params: params, ComputeCost: 1, OutputBytes: 1 << 10}); err != nil {
			t.Fatal(err)
		}
	}
	ns := map[string]string{"n": itoa(n), "seed": "1"}
	add("genA", "matrix.generate", ns)
	add("genB", "matrix.vector", map[string]string{"n": itoa(n), "seed": "2"})
	add("lu", "matrix.lu", nil)
	add("solve", "matrix.solve", nil)
	add("check", "matrix.residual", nil)
	for _, l := range []afg.Link{
		{From: "genA", To: "lu", Bytes: 1 << 10},
		{From: "lu", To: "solve", Bytes: 1 << 10},
		{From: "genB", To: "solve", Bytes: 1 << 10},
		{From: "genA", To: "check", Bytes: 1 << 10},
		{From: "solve", To: "check", Bytes: 1 << 10},
		{From: "genB", To: "check", Bytes: 1 << 10},
	} {
		if err := g.AddLink(l); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

// spreadTable assigns tasks round-robin over hosts.
func spreadTable(g *afg.Graph, hosts []string) *scheduler.AllocationTable {
	table := scheduler.NewAllocationTable(g.Name)
	for i, id := range g.TaskIDs() {
		h := hosts[i%len(hosts)]
		table.Set(scheduler.Assignment{Task: id, Site: "syr", Host: h})
	}
	return table
}

func TestExecuteLinearSolverInMemory(t *testing.T) {
	g := linSolverGraph(t, 24)
	_, resolve := testCluster(3)
	table := spreadTable(g, []string{"A", "B", "C"})
	res, err := Execute(context.Background(), g, table, Options{Hosts: resolve})
	if err != nil {
		t.Fatal(err)
	}
	check := res.Outputs["check"]
	if check.Kind != tasklib.KindScalar || check.Scalar > 1e-8 {
		t.Fatalf("residual = %+v", check)
	}
	if len(res.TaskResults) != 5 {
		t.Fatalf("task results = %d", len(res.TaskResults))
	}
	if res.Rescheduled != 0 {
		t.Fatalf("unexpected rescheduling: %d", res.Rescheduled)
	}
}

func TestExecuteLinearSolverOverSockets(t *testing.T) {
	g := linSolverGraph(t, 16)
	_, resolve := testCluster(3)
	table := spreadTable(g, []string{"A", "B", "C"})
	res, err := Execute(context.Background(), g, table, Options{Hosts: resolve, UseSockets: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs["check"].Scalar > 1e-8 {
		t.Fatalf("residual = %v", res.Outputs["check"].Scalar)
	}
}

func TestExecuteValidatesTable(t *testing.T) {
	g := linSolverGraph(t, 8)
	_, resolve := testCluster(1)
	table := scheduler.NewAllocationTable(g.Name) // empty
	if _, err := Execute(context.Background(), g, table, Options{Hosts: resolve}); err == nil {
		t.Fatal("incomplete table accepted")
	}
}

func TestExecuteRequiresHostResolver(t *testing.T) {
	g := linSolverGraph(t, 8)
	table := spreadTable(g, []string{"A"})
	if _, err := Execute(context.Background(), g, table, Options{}); err == nil {
		t.Fatal("nil Hosts accepted")
	}
}

func TestExecuteUnknownHostFails(t *testing.T) {
	g := linSolverGraph(t, 8)
	_, resolve := testCluster(1)
	table := spreadTable(g, []string{"ZZ"})
	_, err := Execute(context.Background(), g, table, Options{Hosts: resolve})
	if !errors.Is(err, ErrUnknownHost) {
		t.Fatalf("err = %v", err)
	}
}

func TestFailedHostTriggersReschedule(t *testing.T) {
	g := linSolverGraph(t, 16)
	hosts, resolve := testCluster(2)
	hosts["A"].SetDown(true) // everything assigned to A must move to B
	table := spreadTable(g, []string{"A"})
	var mu sync.Mutex
	var requests []afg.TaskID
	res, err := Execute(context.Background(), g, table, Options{
		Hosts: resolve,
		Reschedule: func(ctx context.Context, id afg.TaskID, exclude []string) (scheduler.Assignment, error) {
			mu.Lock()
			requests = append(requests, id)
			mu.Unlock()
			return scheduler.Assignment{Task: id, Site: "syr", Host: "B"}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rescheduled != 5 {
		t.Fatalf("rescheduled = %d, want 5", res.Rescheduled)
	}
	for _, tr := range res.TaskResults {
		if tr.Host != "B" || tr.Attempts != 2 {
			t.Fatalf("task result = %+v", tr)
		}
	}
	if len(requests) != 5 {
		t.Fatalf("requests = %v", requests)
	}
}

func TestFailedHostWithoutReschedulerFails(t *testing.T) {
	g := linSolverGraph(t, 8)
	hosts, resolve := testCluster(1)
	hosts["A"].SetDown(true)
	table := spreadTable(g, []string{"A"})
	_, err := Execute(context.Background(), g, table, Options{Hosts: resolve})
	if !errors.Is(err, ErrNoReschedule) {
		t.Fatalf("err = %v", err)
	}
}

func TestRetryBudgetExhausted(t *testing.T) {
	g := afg.New("one")
	g.AddTask(&afg.Task{ID: "t", Function: "synthetic.noop", ComputeCost: 1})
	hosts, resolve := testCluster(2)
	hosts["A"].SetDown(true)
	hosts["B"].SetDown(true)
	table := spreadTable(g, []string{"A"})
	_, err := Execute(context.Background(), g, table, Options{
		Hosts:       resolve,
		MaxAttempts: 2,
		Reschedule: func(ctx context.Context, id afg.TaskID, exclude []string) (scheduler.Assignment, error) {
			return scheduler.Assignment{Task: id, Site: "syr", Host: "B"}, nil
		},
	})
	if !errors.Is(err, ErrTooManyRetries) {
		t.Fatalf("err = %v", err)
	}
}

func TestOverloadedHostTriggersReschedule(t *testing.T) {
	g := afg.New("one")
	g.AddTask(&afg.Task{ID: "t", Function: "synthetic.noop", ComputeCost: 1})
	hosts, resolve := testCluster(2)
	// Pile synthetic running tasks onto A to push its load over threshold.
	for i := 0; i < 5; i++ {
		if err := hosts["A"].BeginTask(0); err != nil {
			t.Fatal(err)
		}
	}
	table := spreadTable(g, []string{"A"})
	res, err := Execute(context.Background(), g, table, Options{
		Hosts:         resolve,
		LoadThreshold: 3,
		Reschedule: func(ctx context.Context, id afg.TaskID, exclude []string) (scheduler.Assignment, error) {
			return scheduler.Assignment{Task: id, Site: "syr", Host: "B"}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr := res.TaskResults["t"]; tr.Host != "B" {
		t.Fatalf("overloaded host not avoided: %+v", tr)
	}
}

func TestTaskErrorAbortsApplication(t *testing.T) {
	g := afg.New("bad")
	g.AddTask(&afg.Task{ID: "gen", Function: "matrix.generate",
		Params: map[string]string{"n": "not-a-number"}, ComputeCost: 1})
	_, resolve := testCluster(1)
	table := spreadTable(g, []string{"A"})
	_, err := Execute(context.Background(), g, table, Options{Hosts: resolve})
	if !errors.Is(err, tasklib.ErrBadParam) {
		t.Fatalf("err = %v", err)
	}
}

func TestDownstreamAbortsWhenUpstreamFails(t *testing.T) {
	g := afg.New("chainfail")
	g.AddTask(&afg.Task{ID: "a", Function: "matrix.generate", Params: map[string]string{"n": "xx"}})
	g.AddTask(&afg.Task{ID: "b", Function: "matrix.lu"})
	g.AddLink(afg.Link{From: "a", To: "b", Bytes: 1})
	_, resolve := testCluster(1)
	table := spreadTable(g, []string{"A"})
	res, err := Execute(context.Background(), g, table, Options{Hosts: resolve})
	if err == nil {
		t.Fatal("expected failure")
	}
	if res == nil || len(res.TaskResults) != 2 {
		t.Fatalf("expected both tasks accounted, got %+v", res)
	}
}

func TestConsoleGatePausesExecution(t *testing.T) {
	gate := datamgr.NewGate()
	gate.Pause()
	g := afg.New("gated")
	g.AddTask(&afg.Task{ID: "t", Function: "synthetic.noop"})
	_, resolve := testCluster(1)
	table := spreadTable(g, []string{"A"})
	done := make(chan *Result, 1)
	go func() {
		res, _ := Execute(context.Background(), g, table, Options{Hosts: resolve, Gate: gate})
		done <- res
	}()
	select {
	case <-done:
		t.Fatal("execution finished while paused")
	case <-time.After(30 * time.Millisecond):
	}
	gate.Resume()
	select {
	case res := <-done:
		if res == nil || res.TaskResults["t"].Err != nil {
			t.Fatalf("res = %+v", res)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("resume did not unblock execution")
	}
}

func TestContextCancellation(t *testing.T) {
	g := afg.New("slow")
	g.AddTask(&afg.Task{ID: "t", Function: "synthetic.spin", Params: map[string]string{"work": "100000"}})
	_, resolve := testCluster(1)
	table := spreadTable(g, []string{"A"})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := Execute(ctx, g, table, Options{Hosts: resolve})
	if err == nil {
		t.Fatal("cancellation ignored")
	}
}

func TestParallelTaskMode(t *testing.T) {
	g := afg.New("par")
	g.AddTask(&afg.Task{ID: "genA", Function: "matrix.generate", Params: map[string]string{"n": "64", "seed": "1"}})
	g.AddTask(&afg.Task{ID: "genB", Function: "matrix.generate", Params: map[string]string{"n": "64", "seed": "2"}})
	g.AddTask(&afg.Task{ID: "mult", Function: "matrix.multiply", Mode: afg.Parallel, Processors: 4})
	g.AddLink(afg.Link{From: "genA", To: "mult", Bytes: 1})
	g.AddLink(afg.Link{From: "genB", To: "mult", Bytes: 1})
	_, resolve := testCluster(2)
	table := spreadTable(g, []string{"A", "B"})
	res, err := Execute(context.Background(), g, table, Options{Hosts: resolve})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs["mult"].Matrix == nil || res.Outputs["mult"].Matrix.Rows != 64 {
		t.Fatalf("mult output = %+v", res.Outputs["mult"])
	}
}

func TestOnTaskDoneObserver(t *testing.T) {
	g := linSolverGraph(t, 8)
	_, resolve := testCluster(2)
	table := spreadTable(g, []string{"A", "B"})
	var mu sync.Mutex
	seen := map[afg.TaskID]bool{}
	_, err := Execute(context.Background(), g, table, Options{
		Hosts: resolve,
		OnTaskDone: func(tr TaskResult) {
			mu.Lock()
			seen[tr.Task] = true
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 5 {
		t.Fatalf("observer saw %d tasks", len(seen))
	}
}

func TestExitOutputs(t *testing.T) {
	g := linSolverGraph(t, 8)
	_, resolve := testCluster(1)
	table := spreadTable(g, []string{"A"})
	res, err := Execute(context.Background(), g, table, Options{Hosts: resolve})
	if err != nil {
		t.Fatal(err)
	}
	exits := ExitOutputs(g, res)
	if len(exits) != 1 {
		t.Fatalf("exits = %v", exits)
	}
	if _, ok := exits["check"]; !ok {
		t.Fatal("check output missing")
	}
}

func TestHostAccountingBalanced(t *testing.T) {
	g := linSolverGraph(t, 16)
	hosts, resolve := testCluster(2)
	table := spreadTable(g, []string{"A", "B"})
	if _, err := Execute(context.Background(), g, table, Options{Hosts: resolve}); err != nil {
		t.Fatal(err)
	}
	for name, h := range hosts {
		if h.Load() != 0 {
			t.Fatalf("host %s load leaked: %v", name, h.Load())
		}
		if h.AvailableMemory() != 1<<30 {
			t.Fatalf("host %s memory leaked: %d", name, h.AvailableMemory())
		}
	}
	if hosts["A"].Completed()+hosts["B"].Completed() != 5 {
		t.Fatal("completed-task accounting wrong")
	}
}

// TestFrontierReplanMovesWholeFrontier: when a host is dead, the first
// failing task fires ONE whole-frontier re-plan and every task lands on the
// replacement host without any per-task Reschedule (Options.Reschedule is
// nil, so falling back would fail the run).
func TestFrontierReplanMovesWholeFrontier(t *testing.T) {
	g := linSolverGraph(t, 16)
	hosts, resolve := testCluster(2)
	hosts["A"].SetDown(true)
	table := spreadTable(g, []string{"A"})
	var mu sync.Mutex
	calls := 0
	res, err := Execute(context.Background(), g, table, Options{
		Hosts: resolve,
		FrontierReplan: func(ctx context.Context, g *afg.Graph, table *scheduler.AllocationTable, settled map[afg.TaskID]bool, failedHost string) (map[afg.TaskID]scheduler.Assignment, error) {
			mu.Lock()
			calls++
			mu.Unlock()
			if failedHost != "A" {
				t.Errorf("failedHost = %q", failedHost)
			}
			moved := map[afg.TaskID]scheduler.Assignment{}
			for _, id := range g.TaskIDs() {
				if !settled[id] {
					moved[id] = scheduler.Assignment{Task: id, Site: "syr", Host: "B"}
				}
			}
			return moved, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("frontier re-plan fired %d times, want once per failed host", calls)
	}
	if res.FrontierReplans != 1 {
		t.Fatalf("FrontierReplans = %d", res.FrontierReplans)
	}
	for id, tr := range res.TaskResults {
		if tr.Host != "B" {
			t.Fatalf("task %s ran on %s, want B", id, tr.Host)
		}
	}
}

// TestDeviationsChannelTriggersReplan: a monitor-reported host failure
// arriving on Options.Deviations re-plans the frontier before any task of
// this application touches the dead host.
func TestDeviationsChannelTriggersReplan(t *testing.T) {
	g := linSolverGraph(t, 16)
	hosts, resolve := testCluster(2)
	table := spreadTable(g, []string{"B"}) // everything planned onto B
	gate := datamgr.NewGate()
	gate.Pause()
	dev := make(chan string, 1)
	done := make(chan struct {
		res *Result
		err error
	}, 1)
	go func() {
		res, err := Execute(context.Background(), g, table, Options{
			Hosts:      resolve,
			Gate:       gate,
			Deviations: dev,
			FrontierReplan: func(ctx context.Context, g *afg.Graph, table *scheduler.AllocationTable, settled map[afg.TaskID]bool, failedHost string) (map[afg.TaskID]scheduler.Assignment, error) {
				moved := map[afg.TaskID]scheduler.Assignment{}
				for _, id := range g.TaskIDs() {
					if !settled[id] {
						moved[id] = scheduler.Assignment{Task: id, Site: "syr", Host: "A"}
					}
				}
				return moved, nil
			},
		})
		done <- struct {
			res *Result
			err error
		}{res, err}
	}()
	dev <- "B" // monitor reports B down while all tasks wait at the gate
	time.Sleep(50 * time.Millisecond)
	gate.Resume()
	out := <-done
	if out.err != nil {
		t.Fatal(out.err)
	}
	if out.res.FrontierReplans != 1 {
		t.Fatalf("FrontierReplans = %d", out.res.FrontierReplans)
	}
	for id, tr := range out.res.TaskResults {
		if tr.Host != "A" {
			t.Fatalf("task %s ran on %s, want A after the deviation", id, tr.Host)
		}
	}
	if hosts["B"].Completed() != 0 {
		t.Fatalf("dead host still ran %d tasks", hosts["B"].Completed())
	}
}
