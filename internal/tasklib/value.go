package tasklib

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"repro/internal/matrix"
)

// Kind discriminates the payload carried by a Value.
type Kind string

// Value kinds.
const (
	KindNone   Kind = ""
	KindMatrix Kind = "matrix"
	KindVector Kind = "vector"
	KindScalar Kind = "scalar"
	KindText   Kind = "text"
	KindLU     Kind = "lu" // packed LU factor + pivot vector
)

// Value is the single data type that flows over AFG links. It is a tagged
// union of the payloads the built-in libraries exchange, and it is
// gob-serialisable so the Data Manager can ship it through sockets between
// machines (the paper's "socket-based, message-passing mechanism", §2.3.2).
type Value struct {
	Kind   Kind
	Matrix *matrix.Matrix
	Vector []float64
	Scalar float64
	Text   string
	Pivot  []int // used by KindLU
}

// MatrixValue wraps a matrix payload.
func MatrixValue(m *matrix.Matrix) Value { return Value{Kind: KindMatrix, Matrix: m} }

// VectorValue wraps a vector payload.
func VectorValue(v []float64) Value { return Value{Kind: KindVector, Vector: v} }

// ScalarValue wraps a scalar payload.
func ScalarValue(s float64) Value { return Value{Kind: KindScalar, Scalar: s} }

// TextValue wraps a text payload.
func TextValue(t string) Value { return Value{Kind: KindText, Text: t} }

// AsMatrix extracts a matrix payload or fails with ErrBadInput.
func (v Value) AsMatrix() (*matrix.Matrix, error) {
	if v.Kind != KindMatrix && v.Kind != KindLU {
		return nil, fmt.Errorf("%w: want matrix, got %q", ErrBadInput, v.Kind)
	}
	if v.Matrix == nil {
		return nil, fmt.Errorf("%w: nil matrix payload", ErrBadInput)
	}
	return v.Matrix, nil
}

// AsVector extracts a vector payload.
func (v Value) AsVector() ([]float64, error) {
	if v.Kind != KindVector {
		return nil, fmt.Errorf("%w: want vector, got %q", ErrBadInput, v.Kind)
	}
	return v.Vector, nil
}

// AsScalar extracts a scalar payload.
func (v Value) AsScalar() (float64, error) {
	if v.Kind != KindScalar {
		return 0, fmt.Errorf("%w: want scalar, got %q", ErrBadInput, v.Kind)
	}
	return v.Scalar, nil
}

// SizeBytes estimates the wire size of the payload; the Data Manager uses
// it for transfer accounting and the netsim delay injection.
func (v Value) SizeBytes() int64 {
	var n int64 = 16 // tag + framing overhead estimate
	if v.Matrix != nil {
		n += int64(len(v.Matrix.Data))*8 + 16
	}
	n += int64(len(v.Vector)) * 8
	n += int64(len(v.Text))
	n += int64(len(v.Pivot)) * 8
	return n
}

// Encode serialises the value with gob.
func (v Value) Encode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("tasklib: encode value: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeValue deserialises a value produced by Encode.
func DecodeValue(data []byte) (Value, error) {
	var v Value
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&v); err != nil {
		return Value{}, fmt.Errorf("tasklib: decode value: %w", err)
	}
	return v, nil
}
