// Package tasklib implements the VDCE task libraries: the "well-defined
// library functions that relieve end-users of tedious task implementations
// and also support reusability" (paper §1). Tasks are grouped by
// functionality — matrix operations, Fourier analysis, and C3I (command,
// control, communication, and information) applications — exactly the
// grouping the Application Editor's menus expose (§2.1).
//
// Every task is a pure function from parent outputs + parameters to one
// output value, which is what lets the Runtime System ship task work to any
// machine and pipe results through Data Manager channels.
package tasklib

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
)

// Library names (editor menu groups).
const (
	LibMatrix    = "matrix"
	LibFourier   = "fourier"
	LibC3I       = "c3i"
	LibSynthetic = "synthetic"
)

// Common errors.
var (
	ErrUnknownTask = errors.New("tasklib: unknown task function")
	ErrBadInput    = errors.New("tasklib: bad task input")
	ErrBadParam    = errors.New("tasklib: bad task parameter")
)

// Args carries a task invocation's inputs: the outputs of its parent tasks
// (in deterministic parent order) and the editor-specified parameters.
type Args struct {
	Params map[string]string
	Inputs []Value

	// Processors is the degree of parallelism requested through the task
	// properties panel; 1 for sequential mode.
	Processors int
}

// Param returns a named parameter or a default.
func (a Args) Param(key, def string) string {
	if v, ok := a.Params[key]; ok {
		return v
	}
	return def
}

// IntParam parses an integer parameter with a default.
func (a Args) IntParam(key string, def int) (int, error) {
	v, ok := a.Params[key]
	if !ok {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("%w: %s=%q: %v", ErrBadParam, key, v, err)
	}
	return n, nil
}

// FloatParam parses a float parameter with a default.
func (a Args) FloatParam(key string, def float64) (float64, error) {
	v, ok := a.Params[key]
	if !ok {
		return def, nil
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("%w: %s=%q: %v", ErrBadParam, key, v, err)
	}
	return f, nil
}

// Func is an executable task implementation.
type Func func(ctx context.Context, args Args) (Value, error)

// Spec describes one library task: identity, cost metadata for the
// task-performance database, and the executable function.
type Spec struct {
	Name        string // fully qualified, e.g. "matrix.lu"
	Library     string // menu group
	Description string

	// BaseTime is the measured execution time on the base processor for a
	// unit-size input (seconds); the task-performance DB is seeded with it.
	BaseTime float64
	// MemReq is the memory requirement for a unit-size input (bytes).
	MemReq int64
	// OutputBytes is the output volume for a unit-size input (bytes).
	OutputBytes int64

	// CostScale maps editor parameters to a multiplier on BaseTime,
	// MemReq, and OutputBytes (e.g. an n³/base³ law for LU). nil = 1.
	CostScale func(params map[string]string) float64

	Fn Func
}

// Scale evaluates the spec's cost multiplier for the given parameters.
func (s Spec) Scale(params map[string]string) float64 {
	if s.CostScale == nil {
		return 1
	}
	f := s.CostScale(params)
	if f <= 0 {
		return 1
	}
	return f
}

// Registry is a concurrency-safe catalogue of task specs.
type Registry struct {
	mu    sync.RWMutex
	specs map[string]Spec // guarded by mu
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{specs: make(map[string]Spec)}
}

// Register adds a spec; re-registering a name is an error.
func (r *Registry) Register(s Spec) error {
	if s.Name == "" || s.Fn == nil {
		return fmt.Errorf("tasklib: spec needs name and function")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.specs[s.Name]; ok {
		return fmt.Errorf("tasklib: duplicate task %q", s.Name)
	}
	r.specs[s.Name] = s
	return nil
}

// Get returns the spec for a fully qualified task name.
func (r *Registry) Get(name string) (Spec, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s, ok := r.specs[name]
	if !ok {
		return Spec{}, fmt.Errorf("%w: %q", ErrUnknownTask, name)
	}
	return s, nil
}

// Names returns every registered task name, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.specs))
	for n := range r.specs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Libraries returns the distinct library groups, sorted (the editor's menu).
func (r *Registry) Libraries() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	seen := map[string]bool{}
	for _, s := range r.specs {
		seen[s.Library] = true
	}
	out := make([]string, 0, len(seen))
	for l := range seen {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// ByLibrary returns the task names in one library group, sorted.
func (r *Registry) ByLibrary(lib string) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []string
	for n, s := range r.specs {
		if s.Library == lib {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// Execute runs the named task.
func (r *Registry) Execute(ctx context.Context, name string, args Args) (Value, error) {
	s, err := r.Get(name)
	if err != nil {
		return Value{}, err
	}
	if args.Processors < 1 {
		args.Processors = 1
	}
	return s.Fn(ctx, args)
}

var defaultOnce sync.Once
var defaultRegistry *Registry

// Default returns the registry pre-populated with every built-in VDCE task
// library (matrix, fourier, c3i, synthetic).
func Default() *Registry {
	defaultOnce.Do(func() {
		defaultRegistry = NewRegistry()
		mustRegisterBuiltins(defaultRegistry)
	})
	return defaultRegistry
}
