package tasklib

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/fourier"
	"repro/internal/matrix"
)

// Cost-scaling reference sizes: BaseTime/MemReq/OutputBytes are calibrated
// for these input sizes; CostScale extrapolates to the editor-chosen size.
const (
	baseMatrixN = 128
	baseSignalN = 1024
)

func cubeScale(params map[string]string) float64 {
	n := paramInt(params, "n", baseMatrixN)
	r := float64(n) / baseMatrixN
	return r * r * r
}

func squareScale(params map[string]string) float64 {
	n := paramInt(params, "n", baseMatrixN)
	r := float64(n) / baseMatrixN
	return r * r
}

func nlognScale(params map[string]string) float64 {
	n := paramInt(params, "n", baseSignalN)
	r := float64(n) / baseSignalN
	l := math.Log2(float64(n)+1) / math.Log2(baseSignalN)
	return r * l
}

func paramInt(params map[string]string, key string, def int) int {
	a := Args{Params: params}
	v, err := a.IntParam(key, def)
	if err != nil || v <= 0 {
		return def
	}
	return v
}

func need(args Args, n int) error {
	if len(args.Inputs) != n {
		return fmt.Errorf("%w: want %d inputs, got %d", ErrBadInput, n, len(args.Inputs))
	}
	return nil
}

func checkCtx(ctx context.Context) error {
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
		return nil
	}
}

// mustRegisterBuiltins installs every built-in library task.
func mustRegisterBuiltins(r *Registry) {
	for _, s := range builtinSpecs() {
		if err := r.Register(s); err != nil {
			panic(err)
		}
	}
}

func builtinSpecs() []Spec {
	return []Spec{
		// ----------------------------------------------------- matrix ops
		{
			Name: "matrix.generate", Library: LibMatrix,
			Description: "Generate a random diagonally dominant n×n matrix (params: n, seed).",
			BaseTime:    0.002, MemReq: 8 * baseMatrixN * baseMatrixN, OutputBytes: 8 * baseMatrixN * baseMatrixN,
			CostScale: squareScale,
			Fn: func(ctx context.Context, args Args) (Value, error) {
				n, err := args.IntParam("n", baseMatrixN)
				if err != nil {
					return Value{}, err
				}
				seed, err := args.IntParam("seed", 1)
				if err != nil {
					return Value{}, err
				}
				if n < 1 {
					return Value{}, fmt.Errorf("%w: n=%d", ErrBadParam, n)
				}
				rng := rand.New(rand.NewSource(int64(seed)))
				m := matrix.New(n, n)
				for i := range m.Data {
					m.Data[i] = rng.NormFloat64()
				}
				for i := 0; i < n; i++ {
					var s float64
					for j := 0; j < n; j++ {
						s += math.Abs(m.At(i, j))
					}
					m.Set(i, i, s+1)
				}
				return MatrixValue(m), nil
			},
		},
		{
			Name: "matrix.vector", Library: LibMatrix,
			Description: "Generate a random length-n vector (params: n, seed).",
			BaseTime:    0.0002, MemReq: 8 * baseMatrixN, OutputBytes: 8 * baseMatrixN,
			CostScale: func(p map[string]string) float64 {
				return float64(paramInt(p, "n", baseMatrixN)) / baseMatrixN
			},
			Fn: func(ctx context.Context, args Args) (Value, error) {
				n, err := args.IntParam("n", baseMatrixN)
				if err != nil {
					return Value{}, err
				}
				seed, err := args.IntParam("seed", 2)
				if err != nil {
					return Value{}, err
				}
				rng := rand.New(rand.NewSource(int64(seed)))
				v := make([]float64, n)
				for i := range v {
					v[i] = rng.NormFloat64()
				}
				return VectorValue(v), nil
			},
		},
		{
			Name: "matrix.lu", Library: LibMatrix,
			Description: "LU decomposition with partial pivoting (input: matrix).",
			BaseTime:    0.02, MemReq: 8 * baseMatrixN * baseMatrixN, OutputBytes: 8 * baseMatrixN * baseMatrixN,
			CostScale: cubeScale,
			Fn: func(ctx context.Context, args Args) (Value, error) {
				if err := need(args, 1); err != nil {
					return Value{}, err
				}
				a, err := args.Inputs[0].AsMatrix()
				if err != nil {
					return Value{}, err
				}
				var f *matrix.LU
				if args.Processors > 1 {
					f, err = matrix.ParallelFactor(a, args.Processors)
				} else {
					f, err = matrix.Factor(a)
				}
				if err != nil {
					return Value{}, err
				}
				return Value{Kind: KindLU, Matrix: f.LU, Pivot: f.Pivot}, nil
			},
		},
		{
			Name: "matrix.inverse", Library: LibMatrix,
			Description: "Matrix inversion via LU (input: matrix).",
			BaseTime:    0.06, MemReq: 16 * baseMatrixN * baseMatrixN, OutputBytes: 8 * baseMatrixN * baseMatrixN,
			CostScale: cubeScale,
			Fn: func(ctx context.Context, args Args) (Value, error) {
				if err := need(args, 1); err != nil {
					return Value{}, err
				}
				a, err := args.Inputs[0].AsMatrix()
				if err != nil {
					return Value{}, err
				}
				if err := checkCtx(ctx); err != nil {
					return Value{}, err
				}
				inv, err := matrix.Inverse(a)
				if err != nil {
					return Value{}, err
				}
				return MatrixValue(inv), nil
			},
		},
		{
			Name: "matrix.multiply", Library: LibMatrix,
			Description: "Matrix multiplication (inputs: A, B); parallel mode splits rows.",
			BaseTime:    0.015, MemReq: 24 * baseMatrixN * baseMatrixN, OutputBytes: 8 * baseMatrixN * baseMatrixN,
			CostScale: cubeScale,
			Fn: func(ctx context.Context, args Args) (Value, error) {
				if err := need(args, 2); err != nil {
					return Value{}, err
				}
				a, err := args.Inputs[0].AsMatrix()
				if err != nil {
					return Value{}, err
				}
				b, err := args.Inputs[1].AsMatrix()
				if err != nil {
					return Value{}, err
				}
				var c *matrix.Matrix
				if args.Processors > 1 {
					c, err = a.ParallelMul(b, args.Processors)
				} else {
					c, err = a.Mul(b)
				}
				if err != nil {
					return Value{}, err
				}
				return MatrixValue(c), nil
			},
		},
		{
			Name: "matrix.add", Library: LibMatrix,
			Description: "Matrix addition (inputs: A, B).",
			BaseTime:    0.001, MemReq: 24 * baseMatrixN * baseMatrixN, OutputBytes: 8 * baseMatrixN * baseMatrixN,
			CostScale: squareScale,
			Fn: func(ctx context.Context, args Args) (Value, error) {
				if err := need(args, 2); err != nil {
					return Value{}, err
				}
				a, err := args.Inputs[0].AsMatrix()
				if err != nil {
					return Value{}, err
				}
				b, err := args.Inputs[1].AsMatrix()
				if err != nil {
					return Value{}, err
				}
				c, err := a.Add(b)
				if err != nil {
					return Value{}, err
				}
				return MatrixValue(c), nil
			},
		},
		{
			Name: "matrix.transpose", Library: LibMatrix,
			Description: "Matrix transpose (input: A).",
			BaseTime:    0.001, MemReq: 16 * baseMatrixN * baseMatrixN, OutputBytes: 8 * baseMatrixN * baseMatrixN,
			CostScale: squareScale,
			Fn: func(ctx context.Context, args Args) (Value, error) {
				if err := need(args, 1); err != nil {
					return Value{}, err
				}
				a, err := args.Inputs[0].AsMatrix()
				if err != nil {
					return Value{}, err
				}
				return MatrixValue(a.Transpose()), nil
			},
		},
		{
			Name: "matrix.solve", Library: LibMatrix,
			Description: "Solve A·x = b (inputs: LU factor or matrix A, vector b).",
			BaseTime:    0.004, MemReq: 8 * baseMatrixN * baseMatrixN, OutputBytes: 8 * baseMatrixN,
			CostScale: squareScale,
			Fn: func(ctx context.Context, args Args) (Value, error) {
				if err := need(args, 2); err != nil {
					return Value{}, err
				}
				b, err := args.Inputs[1].AsVector()
				if err != nil {
					return Value{}, err
				}
				in := args.Inputs[0]
				switch in.Kind {
				case KindLU:
					f := &matrix.LU{N: in.Matrix.Rows, LU: in.Matrix, Pivot: in.Pivot}
					x, err := f.Solve(b)
					if err != nil {
						return Value{}, err
					}
					return VectorValue(x), nil
				case KindMatrix:
					x, err := matrix.Solve(in.Matrix, b)
					if err != nil {
						return Value{}, err
					}
					return VectorValue(x), nil
				default:
					return Value{}, fmt.Errorf("%w: solve wants matrix or LU, got %q", ErrBadInput, in.Kind)
				}
			},
		},
		{
			Name: "matrix.residual", Library: LibMatrix,
			Description: "Residual ‖A·x − b‖∞ (inputs: A, x, b) for solution checking.",
			BaseTime:    0.001, MemReq: 8 * baseMatrixN * baseMatrixN, OutputBytes: 8,
			CostScale: squareScale,
			Fn: func(ctx context.Context, args Args) (Value, error) {
				if err := need(args, 3); err != nil {
					return Value{}, err
				}
				a, err := args.Inputs[0].AsMatrix()
				if err != nil {
					return Value{}, err
				}
				x, err := args.Inputs[1].AsVector()
				if err != nil {
					return Value{}, err
				}
				b, err := args.Inputs[2].AsVector()
				if err != nil {
					return Value{}, err
				}
				res, err := matrix.Residual(a, x, b)
				if err != nil {
					return Value{}, err
				}
				return ScalarValue(res), nil
			},
		},

		// ------------------------------------------------ Fourier analysis
		{
			Name: "fourier.signal", Library: LibFourier,
			Description: "Generate a noisy multi-tone test signal (params: n, tone, seed).",
			BaseTime:    0.0005, MemReq: 8 * baseSignalN, OutputBytes: 8 * baseSignalN,
			CostScale: func(p map[string]string) float64 {
				return float64(paramInt(p, "n", baseSignalN)) / baseSignalN
			},
			Fn: func(ctx context.Context, args Args) (Value, error) {
				n, err := args.IntParam("n", baseSignalN)
				if err != nil {
					return Value{}, err
				}
				tone, err := args.IntParam("tone", 17)
				if err != nil {
					return Value{}, err
				}
				seed, err := args.IntParam("seed", 3)
				if err != nil {
					return Value{}, err
				}
				n = fourier.NextPowerOfTwo(n)
				rng := rand.New(rand.NewSource(int64(seed)))
				sig := make([]float64, n)
				for i := range sig {
					tt := float64(i) / float64(n)
					sig[i] = 3*math.Sin(2*math.Pi*float64(tone)*tt) +
						math.Sin(2*math.Pi*float64(tone*3)*tt)*0.5 +
						rng.NormFloat64()*0.2
				}
				return VectorValue(sig), nil
			},
		},
		{
			Name: "fourier.spectrum", Library: LibFourier,
			Description: "Power spectrum of a real signal (input: vector).",
			BaseTime:    0.002, MemReq: 32 * baseSignalN, OutputBytes: 4 * baseSignalN,
			CostScale: nlognScale,
			Fn: func(ctx context.Context, args Args) (Value, error) {
				if err := need(args, 1); err != nil {
					return Value{}, err
				}
				sig, err := args.Inputs[0].AsVector()
				if err != nil {
					return Value{}, err
				}
				ps, err := fourier.PowerSpectrum(sig)
				if err != nil {
					return Value{}, err
				}
				return VectorValue(ps), nil
			},
		},
		{
			Name: "fourier.dominant", Library: LibFourier,
			Description: "Dominant non-DC frequency bin of a signal (input: vector).",
			BaseTime:    0.002, MemReq: 32 * baseSignalN, OutputBytes: 8,
			CostScale: nlognScale,
			Fn: func(ctx context.Context, args Args) (Value, error) {
				if err := need(args, 1); err != nil {
					return Value{}, err
				}
				sig, err := args.Inputs[0].AsVector()
				if err != nil {
					return Value{}, err
				}
				k, err := fourier.DominantFrequency(sig)
				if err != nil {
					return Value{}, err
				}
				return ScalarValue(float64(k)), nil
			},
		},
		{
			Name: "fourier.convolve", Library: LibFourier,
			Description: "FFT-based convolution (inputs: signal, kernel).",
			BaseTime:    0.004, MemReq: 64 * baseSignalN, OutputBytes: 8 * baseSignalN,
			CostScale: nlognScale,
			Fn: func(ctx context.Context, args Args) (Value, error) {
				if err := need(args, 2); err != nil {
					return Value{}, err
				}
				a, err := args.Inputs[0].AsVector()
				if err != nil {
					return Value{}, err
				}
				b, err := args.Inputs[1].AsVector()
				if err != nil {
					return Value{}, err
				}
				out, err := fourier.Convolve(a, b)
				if err != nil {
					return Value{}, err
				}
				return VectorValue(out), nil
			},
		},

		// ------------------------------------------------------------ C3I
		{
			Name: "c3i.sensordata", Library: LibC3I,
			Description: "Simulate noisy multi-sensor observations of a moving target (params: sensors, samples, seed).",
			BaseTime:    0.001, MemReq: 8 * 4 * baseSignalN, OutputBytes: 8 * 4 * baseSignalN,
			CostScale: func(p map[string]string) float64 {
				return float64(paramInt(p, "sensors", 4)*paramInt(p, "samples", baseSignalN)) /
					float64(4*baseSignalN)
			},
			Fn: func(ctx context.Context, args Args) (Value, error) {
				sensors, err := args.IntParam("sensors", 4)
				if err != nil {
					return Value{}, err
				}
				samples, err := args.IntParam("samples", baseSignalN)
				if err != nil {
					return Value{}, err
				}
				seed, err := args.IntParam("seed", 4)
				if err != nil {
					return Value{}, err
				}
				if sensors < 1 || samples < 1 {
					return Value{}, fmt.Errorf("%w: sensors=%d samples=%d", ErrBadParam, sensors, samples)
				}
				rng := rand.New(rand.NewSource(int64(seed)))
				obs := matrix.New(sensors, samples)
				// Target: constant-velocity with a mid-course manoeuvre.
				for t := 0; t < samples; t++ {
					truth := 0.02 * float64(t)
					if t > samples/2 {
						truth += 0.05 * float64(t-samples/2)
					}
					for s := 0; s < sensors; s++ {
						noise := rng.NormFloat64() * (0.5 + 0.5*float64(s%3))
						obs.Set(s, t, truth+noise)
					}
				}
				return MatrixValue(obs), nil
			},
		},
		{
			Name: "c3i.fusion", Library: LibC3I,
			Description: "Fuse multi-sensor tracks into one estimate by variance-weighted averaging and smoothing (input: sensors×samples matrix).",
			BaseTime:    0.003, MemReq: 8 * 8 * baseSignalN, OutputBytes: 8 * baseSignalN,
			CostScale: func(p map[string]string) float64 {
				return float64(paramInt(p, "samples", baseSignalN)) / baseSignalN
			},
			Fn: func(ctx context.Context, args Args) (Value, error) {
				if err := need(args, 1); err != nil {
					return Value{}, err
				}
				obs, err := args.Inputs[0].AsMatrix()
				if err != nil {
					return Value{}, err
				}
				sensors, samples := obs.Rows, obs.Cols
				// Per-sensor variance estimate from first differences.
				weights := make([]float64, sensors)
				var wsum float64
				for s := 0; s < sensors; s++ {
					var ss float64
					for t := 1; t < samples; t++ {
						d := obs.At(s, t) - obs.At(s, t-1)
						ss += d * d
					}
					v := ss / float64(max(samples-1, 1))
					if v < 1e-9 {
						v = 1e-9
					}
					weights[s] = 1 / v
					wsum += weights[s]
				}
				fused := make([]float64, samples)
				for t := 0; t < samples; t++ {
					var acc float64
					for s := 0; s < sensors; s++ {
						acc += weights[s] * obs.At(s, t)
					}
					fused[t] = acc / wsum
				}
				// Exponential smoothing pass.
				const alpha = 0.15
				for t := 1; t < samples; t++ {
					fused[t] = alpha*fused[t] + (1-alpha)*fused[t-1]
				}
				return VectorValue(fused), nil
			},
		},
		{
			Name: "c3i.correlate", Library: LibC3I,
			Description: "Pearson correlation of two tracks (inputs: vector, vector) for track association.",
			BaseTime:    0.001, MemReq: 8 * 2 * baseSignalN, OutputBytes: 8,
			CostScale: func(p map[string]string) float64 {
				return float64(paramInt(p, "samples", baseSignalN)) / baseSignalN
			},
			Fn: func(ctx context.Context, args Args) (Value, error) {
				if err := need(args, 2); err != nil {
					return Value{}, err
				}
				a, err := args.Inputs[0].AsVector()
				if err != nil {
					return Value{}, err
				}
				b, err := args.Inputs[1].AsVector()
				if err != nil {
					return Value{}, err
				}
				n := len(a)
				if len(b) < n {
					n = len(b)
				}
				if n == 0 {
					return Value{}, fmt.Errorf("%w: empty track", ErrBadInput)
				}
				var ma, mb float64
				for i := 0; i < n; i++ {
					ma += a[i]
					mb += b[i]
				}
				ma /= float64(n)
				mb /= float64(n)
				var cov, va, vb float64
				for i := 0; i < n; i++ {
					da, db2 := a[i]-ma, b[i]-mb
					cov += da * db2
					va += da * da
					vb += db2 * db2
				}
				if va == 0 || vb == 0 {
					return ScalarValue(0), nil
				}
				return ScalarValue(cov / math.Sqrt(va*vb)), nil
			},
		},
		{
			Name: "c3i.threat", Library: LibC3I,
			Description: "Threat assessment: score a fused track by closing speed and proximity (input: vector).",
			BaseTime:    0.0005, MemReq: 8 * baseSignalN, OutputBytes: 8,
			CostScale: func(p map[string]string) float64 {
				return float64(paramInt(p, "samples", baseSignalN)) / baseSignalN
			},
			Fn: func(ctx context.Context, args Args) (Value, error) {
				if err := need(args, 1); err != nil {
					return Value{}, err
				}
				track, err := args.Inputs[0].AsVector()
				if err != nil {
					return Value{}, err
				}
				if len(track) < 2 {
					return ScalarValue(0), nil
				}
				// Closing speed from the last quarter of the track.
				q := len(track) / 4
				if q < 1 {
					q = 1
				}
				speed := (track[len(track)-1] - track[len(track)-1-q]) / float64(q)
				prox := math.Abs(track[len(track)-1])
				score := math.Max(0, speed*100) / (1 + prox/100)
				return ScalarValue(score), nil
			},
		},

		// ------------------------------------------------------ synthetic
		{
			Name: "synthetic.noop", Library: LibSynthetic,
			Description: "No-op task for scheduler and runtime testing.",
			BaseTime:    0.0001, MemReq: 1024, OutputBytes: 8,
			Fn: func(ctx context.Context, args Args) (Value, error) {
				return ScalarValue(0), nil
			},
		},
		{
			Name: "synthetic.spin", Library: LibSynthetic,
			Description: "Deterministic CPU-bound busy work (params: work = inner iterations ×1000); returns a checksum.",
			BaseTime:    0.001, MemReq: 1024, OutputBytes: 8,
			CostScale: func(p map[string]string) float64 {
				return float64(paramInt(p, "work", 1))
			},
			Fn: func(ctx context.Context, args Args) (Value, error) {
				work, err := args.IntParam("work", 1)
				if err != nil {
					return Value{}, err
				}
				var acc float64
				for w := 0; w < work; w++ {
					if err := checkCtx(ctx); err != nil {
						return Value{}, err
					}
					for i := 0; i < 1000; i++ {
						acc += math.Sqrt(float64(w*1000+i) + 1)
					}
				}
				return ScalarValue(acc), nil
			},
		},
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
