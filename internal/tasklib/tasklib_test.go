//vdce:ignore-file floateq round-trip file: gob/wire encoding must return scalars and matrix cells bit-identical
package tasklib

import (
	"context"
	"errors"
	"math"
	"testing"

	"repro/internal/matrix"
)

func exec(t *testing.T, name string, args Args) Value {
	t.Helper()
	v, err := Default().Execute(context.Background(), name, args)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return v
}

func TestDefaultRegistryContents(t *testing.T) {
	r := Default()
	libs := r.Libraries()
	want := []string{LibC3I, LibFourier, LibMatrix, LibSynthetic}
	if len(libs) != len(want) {
		t.Fatalf("libraries = %v", libs)
	}
	for i := range want {
		if libs[i] != want[i] {
			t.Fatalf("libraries = %v, want %v", libs, want)
		}
	}
	if len(r.ByLibrary(LibMatrix)) < 8 {
		t.Fatalf("matrix library too small: %v", r.ByLibrary(LibMatrix))
	}
	if len(r.Names()) < 15 {
		t.Fatalf("registry too small: %d", len(r.Names()))
	}
}

func TestRegistryErrors(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(Spec{}); err == nil {
		t.Fatal("empty spec accepted")
	}
	ok := Spec{Name: "x", Fn: func(context.Context, Args) (Value, error) { return Value{}, nil }}
	if err := r.Register(ok); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(ok); err == nil {
		t.Fatal("duplicate accepted")
	}
	if _, err := r.Get("ghost"); !errors.Is(err, ErrUnknownTask) {
		t.Fatalf("err = %v", err)
	}
	if _, err := r.Execute(context.Background(), "ghost", Args{}); !errors.Is(err, ErrUnknownTask) {
		t.Fatalf("err = %v", err)
	}
}

func TestArgsParamParsing(t *testing.T) {
	a := Args{Params: map[string]string{"n": "42", "bad": "xx", "f": "2.5"}}
	if v, err := a.IntParam("n", 0); err != nil || v != 42 {
		t.Fatalf("v=%d err=%v", v, err)
	}
	if v, err := a.IntParam("missing", 7); err != nil || v != 7 {
		t.Fatalf("v=%d err=%v", v, err)
	}
	if _, err := a.IntParam("bad", 0); !errors.Is(err, ErrBadParam) {
		t.Fatalf("err = %v", err)
	}
	if v, err := a.FloatParam("f", 0); err != nil || v != 2.5 {
		t.Fatalf("v=%v err=%v", v, err)
	}
	if _, err := a.FloatParam("bad", 0); !errors.Is(err, ErrBadParam) {
		t.Fatalf("err = %v", err)
	}
	if a.Param("missing", "d") != "d" {
		t.Fatal("default param")
	}
}

func TestMatrixGenerateDeterministic(t *testing.T) {
	args := Args{Params: map[string]string{"n": "16", "seed": "5"}}
	a := exec(t, "matrix.generate", args)
	b := exec(t, "matrix.generate", args)
	if !a.Matrix.Equal(b.Matrix, 0) {
		t.Fatal("same seed should give same matrix")
	}
	if a.Matrix.Rows != 16 {
		t.Fatalf("rows = %d", a.Matrix.Rows)
	}
}

func TestLinearSolverChain(t *testing.T) {
	// The paper's Fig 3 pipeline: generate A and b, LU, solve, residual.
	a := exec(t, "matrix.generate", Args{Params: map[string]string{"n": "32", "seed": "1"}})
	b := exec(t, "matrix.vector", Args{Params: map[string]string{"n": "32", "seed": "2"}})
	lu := exec(t, "matrix.lu", Args{Inputs: []Value{a}})
	if lu.Kind != KindLU || len(lu.Pivot) != 32 {
		t.Fatalf("lu = kind %q pivot %d", lu.Kind, len(lu.Pivot))
	}
	x := exec(t, "matrix.solve", Args{Inputs: []Value{lu, b}})
	res := exec(t, "matrix.residual", Args{Inputs: []Value{a, x, b}})
	if res.Scalar > 1e-8 {
		t.Fatalf("residual = %v", res.Scalar)
	}
}

func TestSolveFromRawMatrix(t *testing.T) {
	a := exec(t, "matrix.generate", Args{Params: map[string]string{"n": "8"}})
	b := exec(t, "matrix.vector", Args{Params: map[string]string{"n": "8"}})
	x := exec(t, "matrix.solve", Args{Inputs: []Value{a, b}})
	res := exec(t, "matrix.residual", Args{Inputs: []Value{a, x, b}})
	if res.Scalar > 1e-8 {
		t.Fatalf("residual = %v", res.Scalar)
	}
}

func TestMatrixInverseTask(t *testing.T) {
	a := exec(t, "matrix.generate", Args{Params: map[string]string{"n": "12"}})
	inv := exec(t, "matrix.inverse", Args{Inputs: []Value{a}})
	prod := exec(t, "matrix.multiply", Args{Inputs: []Value{a, inv}})
	if !prod.Matrix.Equal(matrix.Identity(12), 1e-8) {
		t.Fatal("A·A⁻¹ != I")
	}
}

func TestMatrixMultiplyParallelMatchesSequential(t *testing.T) {
	a := exec(t, "matrix.generate", Args{Params: map[string]string{"n": "20", "seed": "1"}})
	b := exec(t, "matrix.generate", Args{Params: map[string]string{"n": "20", "seed": "2"}})
	seq := exec(t, "matrix.multiply", Args{Inputs: []Value{a, b}})
	par := exec(t, "matrix.multiply", Args{Inputs: []Value{a, b}, Processors: 4})
	if !seq.Matrix.Equal(par.Matrix, 1e-12) {
		t.Fatal("parallel multiply differs")
	}
}

func TestMatrixAddTransposeTasks(t *testing.T) {
	a := exec(t, "matrix.generate", Args{Params: map[string]string{"n": "6", "seed": "1"}})
	sum := exec(t, "matrix.add", Args{Inputs: []Value{a, a}})
	twice := a.Matrix.Scale(2)
	if !sum.Matrix.Equal(twice, 1e-12) {
		t.Fatal("A+A != 2A")
	}
	tr := exec(t, "matrix.transpose", Args{Inputs: []Value{a}})
	if tr.Matrix.At(0, 1) != a.Matrix.At(1, 0) {
		t.Fatal("transpose wrong")
	}
}

func TestTaskInputValidation(t *testing.T) {
	reg := Default()
	_, err := reg.Execute(context.Background(), "matrix.lu", Args{})
	if !errors.Is(err, ErrBadInput) {
		t.Fatalf("missing input err = %v", err)
	}
	_, err = reg.Execute(context.Background(), "matrix.lu", Args{Inputs: []Value{ScalarValue(1)}})
	if !errors.Is(err, ErrBadInput) {
		t.Fatalf("wrong kind err = %v", err)
	}
	_, err = reg.Execute(context.Background(), "matrix.generate",
		Args{Params: map[string]string{"n": "abc"}})
	if !errors.Is(err, ErrBadParam) {
		t.Fatalf("bad param err = %v", err)
	}
	_, err = reg.Execute(context.Background(), "matrix.solve",
		Args{Inputs: []Value{VectorValue([]float64{1}), VectorValue([]float64{1})}})
	if !errors.Is(err, ErrBadInput) {
		t.Fatalf("solve kind err = %v", err)
	}
}

func TestFourierPipeline(t *testing.T) {
	sig := exec(t, "fourier.signal", Args{Params: map[string]string{"n": "256", "tone": "9"}})
	if len(sig.Vector) != 256 {
		t.Fatalf("signal len = %d", len(sig.Vector))
	}
	dom := exec(t, "fourier.dominant", Args{Inputs: []Value{sig}})
	if dom.Scalar != 9 {
		t.Fatalf("dominant = %v, want 9", dom.Scalar)
	}
	spec := exec(t, "fourier.spectrum", Args{Inputs: []Value{sig}})
	if len(spec.Vector) != 129 {
		t.Fatalf("spectrum len = %d", len(spec.Vector))
	}
}

func TestFourierConvolveTask(t *testing.T) {
	a := VectorValue([]float64{1, 2})
	b := VectorValue([]float64{3, 4})
	out := exec(t, "fourier.convolve", Args{Inputs: []Value{a, b}})
	want := []float64{3, 10, 8}
	for i, w := range want {
		if math.Abs(out.Vector[i]-w) > 1e-9 {
			t.Fatalf("conv[%d] = %v", i, out.Vector[i])
		}
	}
}

func TestC3IPipeline(t *testing.T) {
	obs := exec(t, "c3i.sensordata", Args{Params: map[string]string{"sensors": "4", "samples": "512", "seed": "7"}})
	if obs.Matrix.Rows != 4 || obs.Matrix.Cols != 512 {
		t.Fatalf("obs shape %dx%d", obs.Matrix.Rows, obs.Matrix.Cols)
	}
	fused := exec(t, "c3i.fusion", Args{Inputs: []Value{obs}})
	if len(fused.Vector) != 512 {
		t.Fatalf("fused len = %d", len(fused.Vector))
	}
	// Fusion should reduce noise: fused track closer to the underlying
	// ramp than the noisiest single sensor. Compare total variation.
	tv := func(v []float64) float64 {
		var s float64
		for i := 1; i < len(v); i++ {
			s += math.Abs(v[i] - v[i-1])
		}
		return s
	}
	raw := make([]float64, 512)
	for t2 := 0; t2 < 512; t2++ {
		raw[t2] = obs.Matrix.At(0, t2)
	}
	if tv(fused.Vector) >= tv(raw) {
		t.Fatalf("fusion did not smooth: %v vs %v", tv(fused.Vector), tv(raw))
	}
	threat := exec(t, "c3i.threat", Args{Inputs: []Value{fused}})
	if threat.Scalar <= 0 {
		t.Fatalf("closing target should score positive threat, got %v", threat.Scalar)
	}
}

func TestC3ICorrelate(t *testing.T) {
	a := VectorValue([]float64{1, 2, 3, 4})
	same := exec(t, "c3i.correlate", Args{Inputs: []Value{a, a}})
	if math.Abs(same.Scalar-1) > 1e-12 {
		t.Fatalf("self correlation = %v", same.Scalar)
	}
	anti := exec(t, "c3i.correlate", Args{Inputs: []Value{a, VectorValue([]float64{4, 3, 2, 1})}})
	if math.Abs(anti.Scalar+1) > 1e-12 {
		t.Fatalf("anti correlation = %v", anti.Scalar)
	}
	flat := exec(t, "c3i.correlate", Args{Inputs: []Value{a, VectorValue([]float64{5, 5, 5, 5})}})
	if flat.Scalar != 0 {
		t.Fatalf("flat correlation = %v", flat.Scalar)
	}
}

func TestSyntheticSpinCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Default().Execute(ctx, "synthetic.spin", Args{Params: map[string]string{"work": "100000"}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestSyntheticSpinDeterministic(t *testing.T) {
	args := Args{Params: map[string]string{"work": "3"}}
	a := exec(t, "synthetic.spin", args)
	b := exec(t, "synthetic.spin", args)
	if a.Scalar != b.Scalar {
		t.Fatal("spin checksum not deterministic")
	}
}

func TestCostScaling(t *testing.T) {
	r := Default()
	lu, err := r.Get("matrix.lu")
	if err != nil {
		t.Fatal(err)
	}
	small := lu.Scale(map[string]string{"n": "128"})
	big := lu.Scale(map[string]string{"n": "256"})
	if math.Abs(small-1) > 1e-12 {
		t.Fatalf("base scale = %v", small)
	}
	if math.Abs(big-8) > 1e-12 {
		t.Fatalf("2x size should be 8x cost (cubic), got %v", big)
	}
	gen, _ := r.Get("matrix.generate")
	if g := gen.Scale(map[string]string{"n": "256"}); math.Abs(g-4) > 1e-12 {
		t.Fatalf("2x size should be 4x cost (square), got %v", g)
	}
	// Bad/absent params fall back to 1.
	if lu.Scale(map[string]string{"n": "garbage"}) != 1 {
		t.Fatal("garbage n should fall back to base scale")
	}
	noop, _ := r.Get("synthetic.noop")
	if noop.Scale(nil) != 1 {
		t.Fatal("nil CostScale should be 1")
	}
}

func TestValueEncodingRoundTrip(t *testing.T) {
	m := matrix.Identity(4)
	vals := []Value{
		MatrixValue(m),
		VectorValue([]float64{1, 2, 3}),
		ScalarValue(4.5),
		TextValue("hello"),
		{Kind: KindLU, Matrix: m, Pivot: []int{0, 1, 2, 3}},
	}
	for _, v := range vals {
		data, err := v.Encode()
		if err != nil {
			t.Fatalf("%s: %v", v.Kind, err)
		}
		back, err := DecodeValue(data)
		if err != nil {
			t.Fatalf("%s: %v", v.Kind, err)
		}
		if back.Kind != v.Kind {
			t.Fatalf("kind %q -> %q", v.Kind, back.Kind)
		}
		switch v.Kind {
		case KindMatrix, KindLU:
			if !back.Matrix.Equal(v.Matrix, 0) {
				t.Fatal("matrix changed")
			}
		case KindVector:
			if len(back.Vector) != len(v.Vector) {
				t.Fatal("vector changed")
			}
		case KindScalar:
			if back.Scalar != v.Scalar {
				t.Fatal("scalar changed")
			}
		case KindText:
			if back.Text != v.Text {
				t.Fatal("text changed")
			}
		}
	}
}

func TestDecodeValueGarbage(t *testing.T) {
	if _, err := DecodeValue([]byte("junk")); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestValueSizeBytes(t *testing.T) {
	small := ScalarValue(1).SizeBytes()
	big := MatrixValue(matrix.New(64, 64)).SizeBytes()
	if big <= small {
		t.Fatal("matrix should be bigger than scalar")
	}
	if big < 64*64*8 {
		t.Fatalf("matrix size underestimated: %d", big)
	}
}

func TestValueAccessorsErrors(t *testing.T) {
	if _, err := ScalarValue(1).AsMatrix(); !errors.Is(err, ErrBadInput) {
		t.Fatalf("err = %v", err)
	}
	if _, err := MatrixValue(nil).AsMatrix(); !errors.Is(err, ErrBadInput) {
		t.Fatalf("nil matrix err = %v", err)
	}
	if _, err := ScalarValue(1).AsVector(); !errors.Is(err, ErrBadInput) {
		t.Fatalf("err = %v", err)
	}
	if _, err := TextValue("x").AsScalar(); !errors.Is(err, ErrBadInput) {
		t.Fatalf("err = %v", err)
	}
}
