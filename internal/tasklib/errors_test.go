package tasklib

import (
	"context"
	"errors"
	"testing"
)

// Exhaustive input-validation matrix: every built-in task must reject
// wrong-arity and wrong-kind inputs with ErrBadInput rather than panicking.
func TestAllTasksRejectBadInputs(t *testing.T) {
	reg := Default()
	wrongKind := []Value{TextValue("nope"), TextValue("nope"), TextValue("nope")}
	for _, name := range reg.Names() {
		spec, err := reg.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		// Generators take no inputs; skip the wrong-kind check for them.
		switch name {
		case "matrix.generate", "matrix.vector", "fourier.signal",
			"c3i.sensordata", "synthetic.noop", "synthetic.spin":
			continue
		}
		for arity := 0; arity <= 3; arity++ {
			_, err := reg.Execute(context.Background(), name, Args{Inputs: wrongKind[:arity]})
			if err == nil {
				t.Errorf("%s accepted %d text inputs", name, arity)
			} else if !errors.Is(err, ErrBadInput) {
				t.Errorf("%s: err = %v, want ErrBadInput", name, err)
			}
		}
		_ = spec
	}
}

func TestGeneratorsRejectBadParams(t *testing.T) {
	reg := Default()
	cases := map[string]map[string]string{
		"matrix.generate": {"n": "-3"},
		"c3i.sensordata":  {"sensors": "0"},
	}
	for name, params := range cases {
		if _, err := reg.Execute(context.Background(), name, Args{Params: params}); !errors.Is(err, ErrBadParam) {
			t.Errorf("%s(%v): err = %v, want ErrBadParam", name, params, err)
		}
	}
}

func TestSolveDimensionMismatchSurfaces(t *testing.T) {
	reg := Default()
	a, err := reg.Execute(context.Background(), "matrix.generate", Args{Params: map[string]string{"n": "4"}})
	if err != nil {
		t.Fatal(err)
	}
	b := VectorValue([]float64{1, 2}) // wrong length
	if _, err := reg.Execute(context.Background(), "matrix.solve", Args{Inputs: []Value{a, b}}); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}

func TestC3IThreatShortTrack(t *testing.T) {
	out, err := Default().Execute(context.Background(), "c3i.threat",
		Args{Inputs: []Value{VectorValue([]float64{1})}})
	if err != nil {
		t.Fatal(err)
	}
	if out.Scalar != 0 {
		t.Fatalf("single-sample track scored %v", out.Scalar)
	}
}

func TestC3ICorrelateEmptyTrack(t *testing.T) {
	_, err := Default().Execute(context.Background(), "c3i.correlate",
		Args{Inputs: []Value{VectorValue(nil), VectorValue(nil)}})
	if !errors.Is(err, ErrBadInput) {
		t.Fatalf("err = %v", err)
	}
}

func TestFourierSpectrumOnGeneratedSignalSizes(t *testing.T) {
	reg := Default()
	for _, n := range []string{"100", "1000"} { // non-powers of two
		sig, err := reg.Execute(context.Background(), "fourier.signal",
			Args{Params: map[string]string{"n": n}})
		if err != nil {
			t.Fatal(err)
		}
		if !isPow2(len(sig.Vector)) {
			t.Fatalf("signal length %d not padded to a power of two", len(sig.Vector))
		}
		if _, err := reg.Execute(context.Background(), "fourier.spectrum",
			Args{Inputs: []Value{sig}}); err != nil {
			t.Fatal(err)
		}
	}
}

func isPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

func TestLUValueRoundTripsThroughSolve(t *testing.T) {
	// Regression for the port bug: encode/decode the LU value (as the
	// Data Manager would) before handing it to solve.
	reg := Default()
	ctx := context.Background()
	a, _ := reg.Execute(ctx, "matrix.generate", Args{Params: map[string]string{"n": "16", "seed": "9"}})
	b, _ := reg.Execute(ctx, "matrix.vector", Args{Params: map[string]string{"n": "16", "seed": "10"}})
	lu, err := reg.Execute(ctx, "matrix.lu", Args{Inputs: []Value{a}})
	if err != nil {
		t.Fatal(err)
	}
	wire, err := lu.Encode()
	if err != nil {
		t.Fatal(err)
	}
	luBack, err := DecodeValue(wire)
	if err != nil {
		t.Fatal(err)
	}
	x, err := reg.Execute(ctx, "matrix.solve", Args{Inputs: []Value{luBack, b}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := reg.Execute(ctx, "matrix.residual", Args{Inputs: []Value{a, x, b}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Scalar > 1e-9 {
		t.Fatalf("residual after wire round trip: %v", res.Scalar)
	}
}
